// Adaptive: the online adaptive power-management policy under
// popularity drift (DESIGN.md §20). The paper's prototype prefetched
// once, up front, from an offline popularity ranking; this example
// contrasts no-prefetch and that static arm with the adaptive policy —
// EWMA-estimated inter-arrival gaps, adapted spin-down thresholds under
// a transition budget, and churn-triggered re-prefetching funded by a
// savings bank — which starts cold and has no future knowledge.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"eevfs"
)

func run(w io.Writer) error {
	// Sixteen disjoint Poisson hot sets over 1600 files: each phase the
	// hot center jumps, so any one-shot top-K ranking spreads thin.
	dc := eevfs.DefaultDriftConfig()
	tr, err := eevfs.DriftWorkload(dc)
	if err != nil {
		return err
	}

	// Size the churn window to half a popularity phase so a phase change
	// floods it with misses quickly (the ext-adaptive experiments' tuning).
	params := eevfs.DefaultAdaptivePolicyParams()
	if half := dc.NumRequests / dc.Phases / 2; half < params.ChurnWindow {
		params.ChurnWindow = half
	}
	if params.ChurnWindow < 12 {
		params.ChurnWindow = 12
	}
	params.ChurnCooldown = params.ChurnWindow / 8

	sim := func(mod func(*eevfs.SimConfig)) (eevfs.SimResult, error) {
		cfg := eevfs.DefaultTestbed()
		cfg.Hints = false // threshold sleeping, like-for-like across arms
		mod(&cfg)
		return eevfs.Simulate(cfg, tr)
	}

	npf, err := sim(func(c *eevfs.SimConfig) { *c = c.NPF() })
	if err != nil {
		return err
	}
	static, err := sim(func(c *eevfs.SimConfig) {})
	if err != nil {
		return err
	}
	adaptive, err := sim(func(c *eevfs.SimConfig) {
		*c = c.AdaptiveArm()
		c.AdaptiveParams = &params
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "Online adaptive power management under popularity drift (16 phases)")
	fmt.Fprintf(w, "%-18s %12s %10s %12s %13s %10s\n",
		"policy", "energy (J)", "hit ratio", "transitions", "reprefetches", "resp (s)")
	row := func(name string, r eevfs.SimResult) {
		bar := strings.Repeat("#", int(40*r.HitRatio()))
		fmt.Fprintf(w, "%-18s %12.0f %9.1f%% %12d %13d %10.3f  %s\n",
			name, r.TotalEnergyJ, 100*r.HitRatio(), r.Transitions,
			r.AdaptiveReprefetches, r.Response.Mean, bar)
	}
	row("no prefetch", npf)
	row("static prefetch", static)
	row("adaptive", adaptive)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "The static arm ranks by whole-trace counts, so its top-70 spreads")
	fmt.Fprintln(w, "across sixteen disjoint hot sets; the adaptive arm re-ranks a sliding")
	fmt.Fprintln(w, "window whenever the churn detector sees the buffered set go stale,")
	fmt.Fprintln(w, "and spends only energy its adapted spin-downs have already banked:")
	fmt.Fprintln(w, "more hits, fewer transitions, less energy — with no future knowledge.")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
