// Adaptive: PRE-BUD's "dynamically fetch the most popular data" on a
// workload whose hot set drifts. The paper's prototype prefetched once, up
// front; this example contrasts that with windowed re-prefetching that
// follows the drift (DESIGN.md experiment X6).
package main

import (
	"fmt"
	"log"
	"strings"

	"eevfs"
)

func main() {
	// Ten popularity epochs over 1000 files: the hot center moves from
	// file ~0 to file ~900 as the trace progresses.
	tr, err := eevfs.DriftingWorkload(eevfs.DefaultDriftingConfig())
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, mod func(*eevfs.SimConfig)) eevfs.SimResult {
		cfg := eevfs.DefaultTestbed()
		cfg.Hints = false // threshold sleeping, like-for-like across arms
		mod(&cfg)
		res, err := eevfs.Simulate(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	npf := run("npf", func(c *eevfs.SimConfig) { *c = c.NPF() })
	static := run("static", func(c *eevfs.SimConfig) {})
	dynamic := run("dynamic", func(c *eevfs.SimConfig) { c.ReprefetchEvery = 25 })

	fmt.Println("Dynamic re-prefetching under popularity drift (10 epochs)")
	fmt.Printf("%-18s %12s %10s %12s %12s\n",
		"policy", "energy (J)", "hit ratio", "transitions", "resp (s)")
	row := func(name string, r eevfs.SimResult) {
		bar := strings.Repeat("#", int(40*r.HitRatio()))
		fmt.Printf("%-18s %12.0f %9.1f%% %12d %12.3f  %s\n",
			name, r.TotalEnergyJ, 100*r.HitRatio(), r.Transitions, r.Response.Mean, bar)
	}
	row("no prefetch", npf)
	row("one-shot prefetch", static)
	row("dynamic (PRE-BUD)", dynamic)
	fmt.Println()
	fmt.Println("The one-shot top-70 covers only the epochs it was computed over;")
	fmt.Println("recomputing popularity from a sliding window every 25 requests lets")
	fmt.Println("the buffer disks follow the hot set: more hits, fewer wake-ups,")
	fmt.Println("less energy, faster responses.")
}
