package main

import (
	"strings"
	"testing"
)

// TestRunAdaptiveExample smoke-tests the example end to end: it must run
// all three policy arms and print one row per arm.
func TestRunAdaptiveExample(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, row := range []string{"no prefetch", "static prefetch", "adaptive"} {
		if !strings.Contains(out, row) {
			t.Fatalf("output is missing the %q row:\n%s", row, out)
		}
	}
}
