// Capacity: the paper's Section VII claim — "we believe this number
// [energy savings] will increase as more disks are added to each EEVFS
// storage node" — explored as a capacity-planning sweep: vary the number
// of data disks per node and plot savings, using the fully-covered MU=100
// workload so every data disk can sleep.
package main

import (
	"fmt"
	"log"
	"strings"

	"eevfs"
)

func main() {
	w := eevfs.DefaultSyntheticConfig()
	w.MU = 100 // K=70 covers all of it: the best case for sleeping
	tr, err := eevfs.SyntheticWorkload(w)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Energy savings vs data disks per storage node (Section VII claim)")
	fmt.Printf("%-12s %14s %14s %10s  %s\n",
		"disks/node", "PF energy (J)", "NPF energy (J)", "savings", "")
	for _, disks := range []int{1, 2, 3, 4, 6, 8} {
		cfg := eevfs.DefaultTestbed()
		for i := range cfg.Nodes {
			cfg.Nodes[i].DataDisks = disks
		}
		pf, err := eevfs.Simulate(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		npf, err := eevfs.Simulate(cfg.NPF(), tr)
		if err != nil {
			log.Fatal(err)
		}
		savings := pf.EnergySavingsVs(npf)
		bar := strings.Repeat("#", int(savings))
		fmt.Printf("%-12d %14.0f %14.0f %9.1f%%  %s\n",
			disks, pf.TotalEnergyJ, npf.TotalEnergyJ, savings, bar)
	}
	fmt.Println()
	fmt.Println("More data disks per always-on buffer disk -> a larger share of the")
	fmt.Println("cluster's spindles can sleep -> savings grow, exactly as the paper")
	fmt.Println("predicted but could not test on its 8-node hardware.")
}
