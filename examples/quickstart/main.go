// Quickstart: simulate the paper's default workload on the default
// testbed, with (PF) and without (NPF) energy-efficient prefetching, and
// print the headline comparison — energy, power-state transitions, and
// response time (the three metrics of Section V-C).
package main

import (
	"fmt"
	"log"

	"eevfs"
)

func main() {
	// The paper's default point: 1000 files, 1000 requests, 10 MB files,
	// MU=1000 popularity, 700 ms inter-arrival delay.
	tr, err := eevfs.SyntheticWorkload(eevfs.DefaultSyntheticConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The Table I testbed: 8 storage nodes, each with 1 buffer disk and
	// 2 data disks; prefetch depth K=70; application hints enabled.
	cfg := eevfs.DefaultTestbed()

	pf, err := eevfs.Simulate(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	npf, err := eevfs.Simulate(cfg.NPF(), tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("EEVFS quickstart — PF vs NPF on the default workload")
	fmt.Printf("%-24s %14s %14s\n", "", "PF", "NPF")
	fmt.Printf("%-24s %14.0f %14.0f\n", "total energy (J)", pf.TotalEnergyJ, npf.TotalEnergyJ)
	fmt.Printf("%-24s %14d %14d\n", "power-state transitions", pf.Transitions, npf.Transitions)
	fmt.Printf("%-24s %14.3f %14.3f\n", "mean response (s)", pf.Response.Mean, npf.Response.Mean)
	fmt.Printf("%-24s %14.3f %14.3f\n", "p95 response (s)", pf.Response.P95, npf.Response.P95)
	fmt.Printf("%-24s %13.1f%% %14s\n", "buffer-disk hit ratio", 100*pf.HitRatio(), "n/a")
	fmt.Println()
	fmt.Printf("energy savings: %.1f%%   (paper reports 11-17%% across its sweeps)\n",
		pf.EnergySavingsVs(npf))
	fmt.Printf("response-time penalty: %.1f%%\n", pf.ResponsePenaltyVs(npf))
}
