// Replay: the paper's prototype methodology end to end, on the real TCP
// stack — "the implementation uses a trace to replay file access patterns"
// (Section IV). We stand up a live cluster, lay the files out in
// popularity order, replay the web-equivalent trace without prefetching,
// then prefetch the hot set and replay again, comparing client-observed
// response times, hit ratios, and the nodes' modeled disk energy.
package main

import (
	"fmt"
	"log"
	"os"

	"eevfs"
)

func main() {
	tmp, err := os.MkdirTemp("", "eevfs-replay-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	// A compact web-style workload: 40 files, an 8-file hot set, 120
	// requests. SizeScale keeps on-disk files small.
	tr, err := eevfs.BerkeleyWebWorkload(eevfs.BerkeleyWebConfig{
		NumFiles: 40, NumRequests: 120, WorkingSet: 8, ZipfExponent: 1.1,
		MeanSize: 10e6, InterArrival: 0.05, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	var nodeAddrs []string
	for i := 0; i < 2; i++ {
		node, err := eevfs.StartNode(eevfs.NodeConfig{
			Addr:             "127.0.0.1:0",
			RootDir:          fmt.Sprintf("%s/node%d", tmp, i),
			DataDisks:        2,
			DataModel:        eevfs.DiskModelType1,
			BufferModel:      eevfs.DiskModelType1,
			IdleThresholdSec: 5,
			TimeScale:        500,
			InjectLatency:    true,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		nodeAddrs = append(nodeAddrs, node.Addr())
	}
	srv, err := eevfs.StartServer(eevfs.ServerConfig{Addr: "127.0.0.1:0", NodeAddrs: nodeAddrs})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cl, err := eevfs.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	opts := eevfs.ReplayOptions{TimeScale: 50, SizeScale: 1000} // 10 MB -> 10 kB
	if err := eevfs.PopulateByPopularity(cl, tr, opts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("populated %d files across %d storage nodes (popularity order)\n\n",
		tr.NumFiles(), len(nodeAddrs))

	before, err := eevfs.Replay(cl, tr, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay without prefetch: %d reads, hit ratio %.0f%%, mean %.2f ms (p95 %.2f ms)\n",
		before.Reads, 100*before.HitRatio(),
		1000*before.Response.Mean, 1000*before.Response.P95)

	n, err := cl.Prefetch(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprefetched %d files (top-10 of the server's access log)\n\n", n)

	after, err := eevfs.Replay(cl, tr, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay with prefetch:    %d reads, hit ratio %.0f%%, mean %.2f ms (p95 %.2f ms)\n",
		after.Reads, 100*after.HitRatio(),
		1000*after.Response.Mean, 1000*after.Response.P95)

	stats, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	standby := 0
	for _, d := range stats.Disks {
		if d.State == "standby" {
			standby++
		}
	}
	fmt.Printf("\nafter the prefetched replay, %d of %d disks are in standby\n",
		standby, len(stats.Disks))
}
