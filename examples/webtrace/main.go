// Webtrace: the Fig. 6 experiment — replay the Berkeley-web-equivalent
// workload (a Zipf-skewed hot set, as the paper observed in the Berkeley
// trace) and compare EEVFS against every Section II baseline: always-on,
// threshold DPM, MAID's LRU disk cache, and PDC's popular-data
// concentration.
package main

import (
	"fmt"
	"log"

	"eevfs"
)

func main() {
	// The paper set data size to 10 MB, prefetch depth 70, and found the
	// web trace skewed enough that every data disk slept the whole trace.
	tr, err := eevfs.BerkeleyWebWorkload(eevfs.DefaultBerkeleyWebConfig())
	if err != nil {
		log.Fatal(err)
	}

	comps, err := eevfs.RunBaselines(eevfs.DefaultTestbed(), tr)
	if err != nil {
		log.Fatal(err)
	}

	var alwaysOn eevfs.SimResult
	for _, c := range comps {
		if c.Name == eevfs.BaselineAlwaysOn {
			alwaysOn = c.Result
		}
	}

	fmt.Println("Berkeley-web-equivalent trace — baseline comparison (Fig. 6 + Section II)")
	fmt.Printf("%-18s %12s %9s %12s %10s %10s\n",
		"system", "energy (J)", "savings", "transitions", "hit ratio", "resp (s)")
	for _, c := range comps {
		r := c.Result
		fmt.Printf("%-18s %12.0f %8.1f%% %12d %9.1f%% %10.3f\n",
			c.Name, r.TotalEnergyJ, r.EnergySavingsVs(alwaysOn),
			r.Transitions, 100*r.HitRatio(), r.Response.Mean)
	}
	fmt.Println()
	fmt.Println("paper: EEVFS saved ~17% on the web trace, with all data disks in")
	fmt.Println("standby for the entire run (zero spin-ups after the initial sleep).")
}
