// Distributed: stand up a real EEVFS deployment — one storage server and
// three storage-node daemons on loopback TCP, disks backed by temp
// directories — then drive it like a client: store files, build up
// popularity, trigger prefetching, and read the energy report.
//
// The daemons run the same code as cmd/eevfs-server and cmd/eevfs-node;
// this example just hosts them in one process for convenience.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"eevfs"
)

func main() {
	tmp, err := os.MkdirTemp("", "eevfs-distributed-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	// Three storage nodes, two data disks each. TimeScale 200 runs the
	// disk model 200x faster than real time so the demo finishes quickly
	// while still exercising spin-downs (5 s model threshold = 25 ms).
	var nodeAddrs []string
	var nodes []*eevfs.Node
	for i := 0; i < 3; i++ {
		node, err := eevfs.StartNode(eevfs.NodeConfig{
			Addr:             "127.0.0.1:0",
			RootDir:          fmt.Sprintf("%s/node%d", tmp, i),
			DataDisks:        2,
			DataModel:        eevfs.DiskModelType1,
			BufferModel:      eevfs.DiskModelType1,
			IdleThresholdSec: 5,
			TimeScale:        200,
			InjectLatency:    true,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		nodes = append(nodes, node)
		nodeAddrs = append(nodeAddrs, node.Addr())
	}
	_ = nodes

	srv, err := eevfs.StartServer(eevfs.ServerConfig{Addr: "127.0.0.1:0", NodeAddrs: nodeAddrs})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	cl, err := eevfs.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	fmt.Printf("cluster up: server %s, %d storage nodes\n\n", srv.Addr(), len(nodeAddrs))

	// Store 12 files; creation order spreads them round-robin over nodes.
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("file-%02d.dat", i)
		content := []byte(strings.Repeat(fmt.Sprintf("payload-%d ", i), 2000))
		if err := cl.Create(name, content); err != nil {
			log.Fatal(err)
		}
	}
	names, err := cl.List()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d files: %s ... %s\n", len(names), names[0], names[len(names)-1])

	// Make three files hot, then ask the server to prefetch the top 3.
	for round := 0; round < 6; round++ {
		for _, hot := range []string{"file-00.dat", "file-01.dat", "file-02.dat"} {
			if _, _, err := cl.Read(hot); err != nil {
				log.Fatal(err)
			}
		}
	}
	n, err := cl.Prefetch(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prefetched %d hot files into buffer disks\n", n)

	// Hot reads now come from the buffer disks; cold reads still hit
	// data disks.
	_, fromBuffer, err := cl.Read("file-00.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read file-00.dat: from buffer disk = %v\n", fromBuffer)
	_, fromBuffer, err = cl.Read("file-09.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read file-09.dat: from buffer disk = %v\n\n", fromBuffer)

	// The per-disk energy report (what eevfs-client stats prints).
	stats, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %-12s %10s %8s %8s\n", "disk", "state", "energy(J)", "spin-up", "spin-dn")
	var energy float64
	for _, d := range stats.Disks {
		fmt.Printf("%-16s %-12s %10.1f %8d %8d\n", d.Name, d.State, d.EnergyJ, d.SpinUps, d.SpinDowns)
		energy += d.EnergyJ
	}
	fmt.Printf("\ntotal disk energy (model Joules): %.1f\n", energy)
}
