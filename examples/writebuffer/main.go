// Writebuffer: Section III-C's second use of the buffer disk — "if the
// buffer disk has any available space, the free space should be used as a
// write buffer area for the other data disks". On a mixed read/write
// workload, compare acknowledging writes from the buffer-disk log against
// writing through to (and waking) the data disks.
package main

import (
	"fmt"
	"log"

	"eevfs"
)

func main() {
	w := eevfs.DefaultSyntheticConfig()
	w.MU = 100            // hot set fully prefetched: data disks want to sleep
	w.WriteFraction = 0.3 // 30% writes try to wake them anyway
	tr, err := eevfs.SyntheticWorkload(w)
	if err != nil {
		log.Fatal(err)
	}

	run := func(writeBuffer bool) eevfs.SimResult {
		cfg := eevfs.DefaultTestbed()
		cfg.WriteBuffer = writeBuffer
		res, err := eevfs.Simulate(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	buffered := run(true)
	through := run(false)

	fmt.Println("Write buffering in buffer-disk free space (30% writes, MU=100)")
	fmt.Printf("%-26s %16s %16s\n", "", "write-buffer", "write-through")
	fmt.Printf("%-26s %16.0f %16.0f\n", "total energy (J)", buffered.TotalEnergyJ, through.TotalEnergyJ)
	fmt.Printf("%-26s %16d %16d\n", "power-state transitions", buffered.Transitions, through.Transitions)
	fmt.Printf("%-26s %16.3f %16.3f\n", "mean write response (s)", buffered.WriteResponse.Mean, through.WriteResponse.Mean)
	fmt.Printf("%-26s %16d %16d\n", "writes absorbed by buffer", buffered.BufferedWrites, through.BufferedWrites)
	fmt.Printf("%-26s %16.0f %16.0f\n", "flushed to data disks (MB)",
		float64(buffered.FlushedBytes)/1e6, float64(through.FlushedBytes)/1e6)
	fmt.Println()
	fmt.Println("The log-structured buffer disk absorbs the writes (fast sequential")
	fmt.Println("appends, no wake-ups); dirty data is flushed to the data disks in")
	fmt.Println("batches when they are awake anyway, or at shutdown.")
}
