package telemetry

import (
	"math"
	"sort"
	"testing"

	"eevfs/internal/rng"
)

// bucketFor returns the snapshot bucket bounds around v: the largest
// bound <= v (0 below the first) and the smallest bound >= v.
func bucketFor(bounds []float64, v float64) (lo, hi float64) {
	lo = 0
	for _, b := range bounds {
		if b >= v {
			return lo, b
		}
		lo = b
	}
	return lo, math.Inf(1)
}

// TestWindowedQuantilesVsSortedReference: the interpolated window
// quantiles must land in the same bucket as the exact quantile of a
// sorted copy of the observations — the bucket resolution is the
// histogram's precision contract.
func TestWindowedQuantilesVsSortedReference(t *testing.T) {
	src := rng.New(7)
	w := NewWindowed(4, DefBuckets)
	var all []float64
	// Log-uniform latencies over 200µs..2s, spread across 3 slots —
	// within one window, so the reference sees every observation.
	for slot := 0; slot < 3; slot++ {
		for i := 0; i < 20000; i++ {
			v := 0.0002 * math.Pow(10, 4*src.Float64())
			w.Observe(v)
			all = append(all, v)
		}
		w.Advance()
	}
	sort.Float64s(all)
	snap := w.Snapshot()
	if snap.Count != int64(len(all)) {
		t.Fatalf("window lost observations: %d vs %d", snap.Count, len(all))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := all[int(q*float64(len(all)-1))]
		lo, hi := bucketFor(DefBuckets, exact)
		got := snap.Quantile(q)
		if got < lo || got > hi {
			t.Errorf("q=%g: interpolated %g outside exact value's bucket [%g, %g] (exact %g)",
				q, got, lo, hi, exact)
		}
	}
	if sum := snap.Sum; math.Abs(sum-sumOf(all)) > 1e-6*sumOf(all) {
		t.Errorf("merged sum %g, want %g", sum, sumOf(all))
	}
}

func sumOf(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// TestWindowedAgesOut: observations older than the window must vanish
// from the snapshot — the property that keeps a live p99 honest after
// the workload changes.
func TestWindowedAgesOut(t *testing.T) {
	w := NewWindowed(3, DefBuckets)
	for i := 0; i < 1000; i++ {
		w.Observe(10) // slow epoch: 10s observations
	}
	if p99 := w.Snapshot().P99; p99 < 5 {
		t.Fatalf("p99 %g does not reflect the slow epoch", p99)
	}
	// Three advances push the slow slot out of a 3-slot window.
	for i := 0; i < 3; i++ {
		w.Advance()
		for j := 0; j < 1000; j++ {
			w.Observe(0.001)
		}
	}
	snap := w.Snapshot()
	if snap.Count != 3000 {
		t.Fatalf("stale observations survived: count %d, want 3000", snap.Count)
	}
	if p99 := snap.P99; p99 > 0.01 {
		t.Fatalf("p99 %g still polluted by the aged-out slow epoch", p99)
	}
}

// TestWindowedConcurrentObserve: concurrent observers racing Advance must
// never lose an observation (it lands in the retired or the fresh slot,
// both inside the window).
func TestWindowedConcurrentObserve(t *testing.T) {
	w := NewWindowed(8, DefBuckets)
	const (
		workers = 8
		perW    = 5000
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			w.Advance()
		}
	}()
	var wg chan struct{} = make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		go func() {
			for j := 0; j < perW; j++ {
				w.Observe(0.005)
			}
			wg <- struct{}{}
		}()
	}
	for i := 0; i < workers; i++ {
		<-wg
	}
	<-done
	// Only 50 advances happened against an 8-slot window, so some early
	// observations have aged out; but after the observers finish, a full
	// window with no further advances must hold everything still inside.
	// Instead assert the stronger invariant on a quiet window:
	w2 := NewWindowed(4, nil)
	for i := 0; i < 1000; i++ {
		w2.Observe(1)
	}
	w2.Advance()
	for i := 0; i < 500; i++ {
		w2.Observe(1)
	}
	if got := w2.Snapshot().Count; got != 1500 {
		t.Fatalf("quiet window count %d, want 1500", got)
	}
	// And nil-safety, matching the package contract.
	var nilW *Windowed
	nilW.Observe(1)
	nilW.Advance()
	if nilW.Snapshot().Count != 0 {
		t.Fatal("nil Windowed snapshot not zero")
	}
}
