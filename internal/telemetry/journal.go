package telemetry

import "sync"

// Event kinds journaled by the simulator (and anything else that wants a
// structured timeline).
const (
	// KindState records a power-state transition: Subject is the disk
	// name, Detail the state being entered, TimeS the transition instant.
	KindState = "state"
	// KindService records one disk service: Subject is the disk name,
	// Detail the operation ("read", "write", ...), TimeS the service
	// start, DurS the service time, WaitS the queue wait before it.
	KindService = "service"
	// KindRequest records one client-visible request: Subject identifies
	// the file ("file:12"), Detail the operation, TimeS the client send
	// time, DurS the response time.
	KindRequest = "request"
)

// Event is one structured journal entry. Times are in seconds on the
// journal owner's clock (simtime for the simulator, so runs stay
// deterministic).
type Event struct {
	TimeS   float64 `json:"t"`
	Kind    string  `json:"kind"`
	Subject string  `json:"subject"`
	Detail  string  `json:"detail,omitempty"`
	DurS    float64 `json:"dur,omitempty"`
	WaitS   float64 `json:"wait,omitempty"`
}

// Journal is an append-only structured event log. A nil *Journal is a
// no-op, so callers instrument unconditionally. The mutex makes it safe
// for concurrent appenders; the single-threaded simulator pays one
// uncontended lock per event.
//
// By default the journal grows without bound — the deterministic
// simulator depends on seeing every event. Long-lived processes (soaks,
// the nightly job) call SetLimit to cap it as a ring buffer: the oldest
// events are evicted first and counted, optionally into a registry
// counter for admin visibility. SetRequestSampling additionally thins
// KindRequest events deterministically for huge timelines.
type Journal struct {
	mu     sync.Mutex
	events []Event
	limit  int // 0 = unbounded
	start  int // ring head when len(events) == limit

	evicted  int64
	evictedC *Counter

	reqRate float64 // 0 or >=1 keeps every request event
	reqSeed uint64
	reqSeen uint64
}

// SetLimit caps the journal at n events with ring (oldest-first)
// eviction; n <= 0 restores unbounded growth. If more than n events are
// already journaled, the oldest are evicted immediately.
func (j *Journal) SetLimit(n int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = j.linearizeLocked()
	j.start = 0
	if n <= 0 {
		j.limit = 0
		return
	}
	j.limit = n
	if drop := len(j.events) - n; drop > 0 {
		kept := make([]Event, n)
		copy(kept, j.events[drop:])
		j.events = kept
		j.evicted += int64(drop)
		j.evictedC.Add(int64(drop))
	}
}

// SetEvictionCounter mirrors future evictions into c (e.g. a registry
// counter named journal.evicted), for the admin endpoint.
func (j *Journal) SetEvictionCounter(c *Counter) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.evictedC = c
	j.mu.Unlock()
}

// BindRegistry surfaces the ring-cap eviction count as the registry's
// journal.evicted counter, so a capped journal's drops show up in
// /metrics and /metrics.prom instead of vanishing silently.
func (j *Journal) BindRegistry(reg *Registry) {
	if j == nil || reg == nil {
		return
	}
	j.SetEvictionCounter(reg.Counter("journal.evicted"))
}

// Evicted returns how many events have been dropped by the ring cap.
func (j *Journal) Evicted() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.evicted
}

// SetRequestSampling keeps only rate of KindRequest events (state and
// service events are never sampled — the power-state oracles need them
// all). The decision is a deterministic hash of the seed and a request
// counter, so the same run always keeps the same events. rate <= 0 or
// >= 1 disables sampling.
func (j *Journal) SetRequestSampling(rate float64, seed uint64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.reqRate = rate
	j.reqSeed = seed
	j.reqSeen = 0
	j.mu.Unlock()
}

// linearizeLocked returns the events in append order (callers hold mu).
func (j *Journal) linearizeLocked() []Event {
	if j.start == 0 {
		return j.events
	}
	out := make([]Event, 0, len(j.events))
	out = append(out, j.events[j.start:]...)
	out = append(out, j.events[:j.start]...)
	return out
}

// Append records one event.
func (j *Journal) Append(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if e.Kind == KindRequest && j.reqRate > 0 && j.reqRate < 1 {
		j.reqSeen++
		if float64(splitmix64(j.reqSeed^j.reqSeen)>>11)/(1<<53) >= j.reqRate {
			j.mu.Unlock()
			return
		}
	}
	if j.limit > 0 && len(j.events) >= j.limit {
		j.events[j.start] = e
		j.start = (j.start + 1) % len(j.events)
		j.evicted++
		c := j.evictedC
		j.mu.Unlock()
		c.Inc()
		return
	}
	j.events = append(j.events, e)
	j.mu.Unlock()
}

// Events returns a copy of the journal in append order.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, len(j.events))
	copy(out, j.linearizeLocked())
	return out
}

// Len returns the number of journaled events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// CountStates returns how many KindState events entered one of the given
// states (e.g. "spinning-up", "spinning-down" to recover the paper's
// transition count from a journal).
func (j *Journal) CountStates(states ...string) int {
	want := make(map[string]bool, len(states))
	for _, s := range states {
		want[s] = true
	}
	n := 0
	for _, e := range j.Events() {
		if e.Kind == KindState && want[e.Detail] {
			n++
		}
	}
	return n
}
