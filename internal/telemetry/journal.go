package telemetry

import "sync"

// Event kinds journaled by the simulator (and anything else that wants a
// structured timeline).
const (
	// KindState records a power-state transition: Subject is the disk
	// name, Detail the state being entered, TimeS the transition instant.
	KindState = "state"
	// KindService records one disk service: Subject is the disk name,
	// Detail the operation ("read", "write", ...), TimeS the service
	// start, DurS the service time, WaitS the queue wait before it.
	KindService = "service"
	// KindRequest records one client-visible request: Subject identifies
	// the file ("file:12"), Detail the operation, TimeS the client send
	// time, DurS the response time.
	KindRequest = "request"
)

// Event is one structured journal entry. Times are in seconds on the
// journal owner's clock (simtime for the simulator, so runs stay
// deterministic).
type Event struct {
	TimeS   float64 `json:"t"`
	Kind    string  `json:"kind"`
	Subject string  `json:"subject"`
	Detail  string  `json:"detail,omitempty"`
	DurS    float64 `json:"dur,omitempty"`
	WaitS   float64 `json:"wait,omitempty"`
}

// Journal is an append-only structured event log. A nil *Journal is a
// no-op, so callers instrument unconditionally. The mutex makes it safe
// for concurrent appenders; the single-threaded simulator pays one
// uncontended lock per event.
type Journal struct {
	mu     sync.Mutex
	events []Event
}

// Append records one event.
func (j *Journal) Append(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.events = append(j.events, e)
	j.mu.Unlock()
}

// Events returns a copy of the journal in append order.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, len(j.events))
	copy(out, j.events)
	return out
}

// Len returns the number of journaled events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// CountStates returns how many KindState events entered one of the given
// states (e.g. "spinning-up", "spinning-down" to recover the paper's
// transition count from a journal).
func (j *Journal) CountStates(states ...string) int {
	want := make(map[string]bool, len(states))
	for _, s := range states {
		want[s] = true
	}
	n := 0
	for _, e := range j.Events() {
		if e.Kind == KindState && want[e.Detail] {
			n++
		}
	}
	return n
}
