// Energy attribution: the ledger that joins trace spans against
// disk.Observer transitions. Every dwell a disk closes while serving a
// request (active service, spin-up) is attributed to the trace id the
// node recorded as the dwell's cause; dwells with no cause (idle,
// standby, timer-driven spin-downs) land in the background bucket. The
// sum over all buckets therefore tracks the disks' own integrated
// energy — the same conservation property the simulation oracles check.
package telemetry

import (
	"fmt"
	"sync"
)

// EnergySnapshot is a frozen, JSON-marshalable view of an EnergyLedger.
// Trace keys are hex-encoded trace ids.
type EnergySnapshot struct {
	TotalJ        float64            `json:"total_j"`
	BackgroundJ   float64            `json:"background_j"`
	PerArm        map[string]float64 `json:"per_arm"`
	PerFile       map[string]float64 `json:"per_file,omitempty"`
	PerTrace      map[string]float64 `json:"per_trace,omitempty"`
	EvictedTraces uint64             `json:"evicted_traces,omitempty"`
	EvictedFiles  uint64             `json:"evicted_files,omitempty"`
}

// EnergyLedger accumulates joules per request (trace id), per file, and
// per policy arm ("buffer" vs "data" disk class, split by power state).
// The per-trace and per-file maps are bounded FIFO rings so a long-lived
// daemon cannot grow them without bound; arm totals and the grand total
// are never evicted. Nil is a no-op.
type EnergyLedger struct {
	mu sync.Mutex

	capEntries int
	traces     map[uint64]float64
	traceOrder []uint64
	traceNext  int
	files      map[string]float64
	fileOrder  []string
	fileNext   int

	arms          map[string]float64
	backgroundJ   float64
	totalJ        float64
	evictedTraces uint64
	evictedFiles  uint64
}

// NewEnergyLedger builds a ledger keeping at most capEntries per-trace
// and per-file buckets each (<=0 means the default, 4096).
func NewEnergyLedger(capEntries int) *EnergyLedger {
	if capEntries <= 0 {
		capEntries = 4096
	}
	return &EnergyLedger{
		capEntries: capEntries,
		traces:     make(map[uint64]float64),
		files:      make(map[string]float64),
		arms:       make(map[string]float64),
	}
}

// Attribute credits joules to one dwell's cause: the given trace (0 =
// background), file (empty = none), and policy arm.
func (l *EnergyLedger) Attribute(traceID uint64, file, arm string, joules float64) {
	if l == nil || joules == 0 {
		return
	}
	l.mu.Lock()
	l.totalJ += joules
	if arm != "" {
		l.arms[arm] += joules
	}
	if traceID == 0 {
		l.backgroundJ += joules
	} else if _, ok := l.traces[traceID]; ok {
		l.traces[traceID] += joules
	} else {
		if len(l.traceOrder) < l.capEntries {
			l.traceOrder = append(l.traceOrder, traceID)
		} else {
			delete(l.traces, l.traceOrder[l.traceNext])
			l.traceOrder[l.traceNext] = traceID
			l.evictedTraces++
		}
		l.traceNext = (l.traceNext + 1) % l.capEntries
		l.traces[traceID] = joules
	}
	if file != "" {
		if _, ok := l.files[file]; ok {
			l.files[file] += joules
		} else {
			if len(l.fileOrder) < l.capEntries {
				l.fileOrder = append(l.fileOrder, file)
			} else {
				delete(l.files, l.fileOrder[l.fileNext])
				l.fileOrder[l.fileNext] = file
				l.evictedFiles++
			}
			l.fileNext = (l.fileNext + 1) % l.capEntries
			l.files[file] = joules
		}
	}
	l.mu.Unlock()
}

// TraceJ returns the joules attributed to one trace so far (0 when
// unknown or evicted).
func (l *EnergyLedger) TraceJ(traceID uint64) float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.traces[traceID]
}

// TotalJ returns the grand total attributed so far.
func (l *EnergyLedger) TotalJ() float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalJ
}

// Snapshot returns a frozen copy of every bucket.
func (l *EnergyLedger) Snapshot() EnergySnapshot {
	out := EnergySnapshot{
		PerArm:   map[string]float64{},
		PerFile:  map[string]float64{},
		PerTrace: map[string]float64{},
	}
	if l == nil {
		return out
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out.TotalJ = l.totalJ
	out.BackgroundJ = l.backgroundJ
	out.EvictedTraces = l.evictedTraces
	out.EvictedFiles = l.evictedFiles
	for k, v := range l.arms {
		out.PerArm[k] = v
	}
	for k, v := range l.files {
		out.PerFile[k] = v
	}
	for k, v := range l.traces {
		out.PerTrace[fmt.Sprintf("%016x", k)] = v
	}
	return out
}
