// Distributed tracing: a lock-light span recorder. A Tracer hands out
// pooled Span objects keyed by a SpanContext (trace id / span id /
// parent id) that the wire protocol can carry between processes, so one
// client request produces a span tree covering every hop it caused —
// redirects, retries, replication appends, server->node fan-out, and
// buffer-disk state transitions.
//
// Sampling is head+tail: the root span draws a head-sampling decision
// from its trace id (deterministic, so every process agrees without
// coordination), and Finish additionally retains any span that errored
// or ran longer than the slow threshold — tail capture, so the traces
// an operator actually wants never depend on the sampling dice.
//
// Recording is a fixed-size ring buffer of SpanData values under a
// short mutex; span structs recycle through a sync.Pool, so an
// unsampled request's full span tree costs a few pool round trips and
// zero retained allocations. Every method is nil-safe on a nil *Tracer
// and nil *Span, matching the registry handles: callers instrument
// unconditionally and pay only a nil check when tracing is off.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext identifies one span's position in a trace. It is the part
// of a span that crosses process boundaries (the wire carries it as a
// frame extension). The zero value means "untraced".
type SpanContext struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	// Sampled carries the root's head-sampling decision downstream, so
	// every process records (or skips) the same traces without
	// coordination. Tail capture ignores it for slow/error spans.
	Sampled bool
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// SpanData is the recorded form of a finished span.
type SpanData struct {
	TraceID  uint64  `json:"trace_id"`
	SpanID   uint64  `json:"span_id"`
	ParentID uint64  `json:"parent_id,omitempty"`
	Sampled  bool    `json:"sampled,omitempty"`
	Service  string  `json:"service"`
	Name     string  `json:"name"`
	StartNs  int64   `json:"start_ns"`
	DurS     float64 `json:"dur_s"`
	Err      string  `json:"err,omitempty"`
	EnergyJ  float64 `json:"energy_j,omitempty"`
	Attrs    []Attr  `json:"attrs,omitempty"`
}

// TracerConfig tunes a Tracer. The zero value is usable: 4096-span
// ring, sample everything, 250 ms slow threshold.
type TracerConfig struct {
	// Capacity is the span ring size (default 4096).
	Capacity int
	// SampleRate is the head-sampling fraction of traces recorded in
	// full, in [0,1]. Zero means the default (1.0 — record everything);
	// negative disables head sampling entirely (tail capture only).
	SampleRate float64
	// SlowThreshold marks a span for tail capture regardless of the
	// head decision (default 250 ms). Negative disables tail capture
	// by duration (errors are still always kept).
	SlowThreshold time.Duration
	// Seed decorrelates id sequences between processes (default 1).
	Seed uint64
}

// TracerStats counts a tracer's activity.
type TracerStats struct {
	Started  uint64  `json:"started"`
	Recorded uint64  `json:"recorded"`
	Evicted  uint64  `json:"evicted"`
	Capacity int     `json:"capacity"`
	Rate     float64 `json:"sample_rate"`
}

// Tracer mints trace/span ids, decides sampling, and records finished
// spans into a fixed-size ring. Safe for concurrent use; nil is a no-op.
type Tracer struct {
	cfg  TracerConfig
	ids  atomic.Uint64
	pool sync.Pool

	started atomic.Uint64

	mu       sync.Mutex
	ring     []SpanData
	next     int
	recorded uint64
	evicted  uint64
}

// NewTracer builds a tracer from cfg (see TracerConfig for defaults).
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	switch {
	case cfg.SampleRate == 0:
		cfg.SampleRate = 1
	case cfg.SampleRate < 0:
		cfg.SampleRate = 0
	case cfg.SampleRate > 1:
		cfg.SampleRate = 1
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	tr := &Tracer{cfg: cfg, ring: make([]SpanData, 0, cfg.Capacity)}
	tr.pool.New = func() any { return new(Span) }
	return tr
}

// splitmix64 is the id mixer: a counter fed through it yields distinct,
// well-distributed 64-bit ids without time or global randomness, so id
// sequences stay reproducible under a fixed seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (tr *Tracer) newID() uint64 {
	for {
		if id := splitmix64(tr.cfg.Seed ^ tr.ids.Add(1)); id != 0 {
			return id
		}
	}
}

// sampled maps a trace id onto the head-sampling decision: the id's top
// 53 bits as a uniform [0,1) draw, the same in every process.
func (tr *Tracer) sampled(traceID uint64) bool {
	if tr.cfg.SampleRate >= 1 {
		return true
	}
	if tr.cfg.SampleRate <= 0 {
		return false
	}
	return float64(splitmix64(traceID)>>11)/(1<<53) < tr.cfg.SampleRate
}

func (tr *Tracer) span(service, name string, traceID, spanID, parentID uint64, sampled bool) *Span {
	sp := tr.pool.Get().(*Span)
	sp.tr = tr
	sp.start = time.Now()
	sp.data = SpanData{
		TraceID: traceID, SpanID: spanID, ParentID: parentID, Sampled: sampled,
		Service: service, Name: name,
		StartNs: sp.start.UnixNano(),
		Attrs:   sp.data.Attrs[:0],
	}
	tr.started.Add(1)
	return sp
}

// StartRoot opens a new trace: a fresh trace id (the root span reuses it
// as its span id) and a head-sampling decision drawn from it.
func (tr *Tracer) StartRoot(service, name string) *Span {
	if tr == nil {
		return nil
	}
	tid := tr.newID()
	return tr.span(service, name, tid, tid, 0, tr.sampled(tid))
}

// StartRemote opens the server-side span of a request that arrived with
// sc extracted from the wire. An untraced request (zero sc) starts a
// fresh root instead, so a tracing server still sees traffic from
// clients that predate the context extension.
func (tr *Tracer) StartRemote(sc SpanContext, service, name string) *Span {
	if tr == nil {
		return nil
	}
	if sc.TraceID == 0 {
		return tr.StartRoot(service, name)
	}
	return tr.span(service, name, sc.TraceID, tr.newID(), sc.SpanID, sc.Sampled)
}

// StartChild opens a child span under an existing context, or returns
// nil when the context is untraced.
func (tr *Tracer) StartChild(sc SpanContext, service, name string) *Span {
	if tr == nil || sc.TraceID == 0 {
		return nil
	}
	return tr.span(service, name, sc.TraceID, tr.newID(), sc.SpanID, sc.Sampled)
}

// record copies a finishing span's data into the ring (deep-copying the
// annotations — the span struct is about to be pooled).
func (tr *Tracer) record(d SpanData) {
	if len(d.Attrs) > 0 {
		d.Attrs = append([]Attr(nil), d.Attrs...)
	} else {
		d.Attrs = nil
	}
	tr.mu.Lock()
	if len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, d)
	} else {
		tr.ring[tr.next] = d
		tr.evicted++
	}
	tr.next = (tr.next + 1) % cap(tr.ring)
	tr.recorded++
	tr.mu.Unlock()
}

// Spans returns the ring contents, oldest first.
func (tr *Tracer) Spans() []SpanData {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]SpanData, 0, len(tr.ring))
	if len(tr.ring) == cap(tr.ring) {
		out = append(out, tr.ring[tr.next:]...)
		out = append(out, tr.ring[:tr.next]...)
	} else {
		out = append(out, tr.ring...)
	}
	return out
}

// Traces groups the ring contents by trace id.
func (tr *Tracer) Traces() map[uint64][]SpanData {
	spans := tr.Spans()
	out := make(map[uint64][]SpanData)
	for _, d := range spans {
		out[d.TraceID] = append(out[d.TraceID], d)
	}
	return out
}

// Stats reports the tracer's activity counters.
func (tr *Tracer) Stats() TracerStats {
	if tr == nil {
		return TracerStats{}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return TracerStats{
		Started:  tr.started.Load(),
		Recorded: tr.recorded,
		Evicted:  tr.evicted,
		Capacity: cap(tr.ring),
		Rate:     tr.cfg.SampleRate,
	}
}

// Orphans returns the spans whose parent does not resolve within their
// own trace. A well-formed trace tree has none (ring eviction aside —
// check against a ring large enough to hold the workload).
func Orphans(spans []SpanData) []SpanData {
	known := make(map[uint64]map[uint64]bool)
	for _, d := range spans {
		m := known[d.TraceID]
		if m == nil {
			m = make(map[uint64]bool)
			known[d.TraceID] = m
		}
		m[d.SpanID] = true
	}
	var out []SpanData
	for _, d := range spans {
		if d.ParentID != 0 && !known[d.TraceID][d.ParentID] {
			out = append(out, d)
		}
	}
	return out
}

// Span is one in-flight operation. All methods are nil-safe, and a span
// is owned by the goroutine that started it until Finish (Child may be
// called concurrently — it only reads the immutable identity fields).
type Span struct {
	tr    *Tracer
	start time.Time
	data  SpanData
}

// Context returns the span's wire context (zero on nil).
func (sp *Span) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return SpanContext{
		TraceID: sp.data.TraceID, SpanID: sp.data.SpanID,
		ParentID: sp.data.ParentID, Sampled: sp.data.Sampled,
	}
}

// TraceID returns the span's trace id (0 on nil).
func (sp *Span) TraceID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.data.TraceID
}

// Child opens a child span in the same service.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.tr.span(sp.data.Service, name, sp.data.TraceID, sp.tr.newID(),
		sp.data.SpanID, sp.data.Sampled)
}

// Annotate attaches one key/value to the span.
func (sp *Span) Annotate(key, val string) {
	if sp == nil {
		return
	}
	sp.data.Attrs = append(sp.data.Attrs, Attr{Key: key, Val: val})
}

// AddEnergy accumulates joules attributed to this span (the energy
// ledger's per-span view of the disk observer join).
func (sp *Span) AddEnergy(j float64) {
	if sp == nil {
		return
	}
	sp.data.EnergyJ += j
}

// Fail records err on the span (nil err is a no-op). Errored spans are
// always retained, regardless of sampling.
func (sp *Span) Fail(err error) {
	if sp == nil || err == nil {
		return
	}
	sp.data.Err = err.Error()
}

// Finish closes the span: it is recorded if head-sampled, errored, or
// slower than the tail-capture threshold, and the struct returns to the
// pool either way. The span must not be used afterwards.
func (sp *Span) Finish() {
	if sp == nil {
		return
	}
	tr := sp.tr
	dur := time.Since(sp.start)
	sp.data.DurS = dur.Seconds()
	if sp.data.Sampled || sp.data.Err != "" ||
		(tr.cfg.SlowThreshold >= 0 && dur >= tr.cfg.SlowThreshold) {
		tr.record(sp.data)
	}
	sp.tr = nil
	tr.pool.Put(sp)
}

// End is Fail + Finish in one call, for defer-friendly call sites.
func (sp *Span) End(err error) {
	if sp == nil {
		return
	}
	sp.Fail(err)
	sp.Finish()
}
