package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"eevfs/internal/simtest/leak"
)

// TestAdminConcurrentLoad hammers every admin endpoint from parallel
// goroutines while spans and metrics are still being produced, asserting
// each response stays well-formed and that Close leaves no goroutines
// behind. This is the regression net for data races between the span
// ring, the energy ledger, and the HTTP handlers (run under -race in CI).
func TestAdminConcurrentLoad(t *testing.T) {
	leak.Check(t)
	reg := NewRegistry()
	reg.Counter("proto.calls").Add(1)
	reg.Histogram("fs.op.read.seconds", nil).Observe(0.01)
	jour := &Journal{}
	jour.BindRegistry(reg)
	jour.SetLimit(4)
	tracer := NewTracer(TracerConfig{Capacity: 256})
	energy := NewEnergyLedger(64)
	a, err := StartAdminConfig("127.0.0.1:0", AdminConfig{
		Registry: reg,
		Health:   func() any { return map[string]bool{"serving": true} },
		Tracer:   tracer,
		Energy:   energy,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	base := "http://" + a.Addr()
	paths := []string{"/metrics", "/metrics.prom", "/traces", "/traces?format=chrome", "/healthz"}
	const (
		writers = 4
		readers = 8
		rounds  = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers*len(paths))

	// Writers keep the tracer/ledger/registry hot while readers scrape.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				sp := tracer.StartRoot("client", "client.read")
				ch := sp.Child("client.rt.server")
				ch.Annotate("peer", "127.0.0.1:1")
				ch.Finish()
				sp.AddEnergy(0.5)
				sp.Finish()
				// Overflow the capped journal so the eviction counter is
				// live while scrapers read it.
				jour.Append(Event{Kind: KindService, Subject: "disk0", TimeS: float64(i)})
				energy.Attribute(uint64(w*rounds+i+1), fmt.Sprintf("file:%d", i), "data.Active", 1.5)
				reg.Counter("proto.calls").Inc()
				reg.Histogram("fs.op.read.seconds", nil).Observe(0.002)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		for _, p := range paths {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					resp, err := http.Get(base + p)
					if err != nil {
						errs <- fmt.Errorf("%s: %v", p, err)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("%s: status %d err %v", p, resp.StatusCode, err)
						return
					}
					if err := checkAdminBody(p, body); err != nil {
						errs <- fmt.Errorf("%s: %v", p, err)
						return
					}
				}
			}(p)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// checkAdminBody asserts one endpoint response is well-formed.
func checkAdminBody(path string, body []byte) error {
	switch {
	case path == "/metrics":
		var snap Snapshot
		return json.Unmarshal(body, &snap)
	case path == "/metrics.prom":
		if !strings.Contains(string(body), "# TYPE proto_calls counter") {
			return fmt.Errorf("missing counter TYPE line")
		}
		// The journal ring-cap eviction counter must be scrapeable — a
		// capped journal that drops events invisibly is a silent data
		// loss (this line was missing until the journal learned
		// BindRegistry).
		if !strings.Contains(string(body), "# TYPE journal_evicted counter") {
			return fmt.Errorf("missing journal_evicted TYPE line")
		}
		return nil
	case path == "/traces":
		var p tracesPayload
		if err := json.Unmarshal(body, &p); err != nil {
			return err
		}
		for id, spans := range p.Traces {
			if len(spans) == 0 {
				return fmt.Errorf("trace %s has no spans", id)
			}
		}
		return nil
	case strings.HasPrefix(path, "/traces?format=chrome"):
		var tr struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		return json.Unmarshal(body, &tr)
	case path == "/healthz":
		var h map[string]bool
		if err := json.Unmarshal(body, &h); err != nil {
			return err
		}
		if !h["serving"] {
			return fmt.Errorf("not serving: %v", h)
		}
		return nil
	}
	return nil
}

func TestTracesEndpointFilterAndEnergy(t *testing.T) {
	leak.Check(t)
	tracer := NewTracer(TracerConfig{})
	energy := NewEnergyLedger(0)
	a, err := StartAdminConfig("127.0.0.1:0", AdminConfig{Tracer: tracer, Energy: energy})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	sp := tracer.StartRoot("client", "client.read")
	want := sp.TraceID()
	sp.Finish()
	other := tracer.StartRoot("client", "client.write")
	other.Finish()
	energy.Attribute(want, "file:1", "data.Active", 7)

	resp, err := http.Get(fmt.Sprintf("http://%s/traces?trace=%x", a.Addr(), want))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p tracesPayload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if len(p.Traces) != 1 {
		t.Fatalf("filter returned %d traces, want 1", len(p.Traces))
	}
	spans, ok := p.Traces[fmt.Sprintf("%x", want)]
	if !ok || len(spans) != 1 || spans[0].Name != "client.read" {
		t.Fatalf("filtered payload = %+v", p.Traces)
	}
	if p.Energy.PerTrace[fmt.Sprintf("%016x", want)] != 7 {
		t.Fatalf("energy snapshot = %+v", p.Energy)
	}
}
