package telemetry

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// allTracer records everything: full head sampling, no slow threshold in
// play, plenty of ring.
func allTracer() *Tracer {
	return NewTracer(TracerConfig{Capacity: 1 << 12, SampleRate: 1})
}

func TestSpanTreeIdentity(t *testing.T) {
	tr := allTracer()
	root := tr.StartRoot("client", "client.read")
	rc := root.Context()
	if rc.TraceID == 0 || rc.TraceID != rc.SpanID || rc.ParentID != 0 {
		t.Fatalf("root context = %+v", rc)
	}
	child := root.Child("client.rt.server")
	cc := child.Context()
	if cc.TraceID != rc.TraceID || cc.ParentID != rc.SpanID || cc.SpanID == rc.SpanID {
		t.Fatalf("child context = %+v under root %+v", cc, rc)
	}
	// Remote continuation, as the server side would start it.
	remote := tr.StartRemote(cc, "server", "server.lookup")
	mc := remote.Context()
	if mc.TraceID != rc.TraceID || mc.ParentID != cc.SpanID {
		t.Fatalf("remote context = %+v under %+v", mc, cc)
	}
	remote.Finish()
	child.Finish()
	root.Finish()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	if or := Orphans(spans); len(or) != 0 {
		t.Fatalf("orphan spans: %+v", or)
	}
}

func TestStartRemoteZeroContextStartsRoot(t *testing.T) {
	tr := allTracer()
	sp := tr.StartRemote(SpanContext{}, "server", "server.stats")
	sc := sp.Context()
	if sc.TraceID == 0 || sc.TraceID != sc.SpanID || sc.ParentID != 0 {
		t.Fatalf("remote-from-zero context = %+v, want fresh root", sc)
	}
	sp.Finish()
}

func TestStartChildZeroContextIsNil(t *testing.T) {
	tr := allTracer()
	if sp := tr.StartChild(SpanContext{}, "server", "x"); sp != nil {
		t.Fatal("StartChild on zero context must return nil")
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("s", "n")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	// All of these must be safe on nil.
	sp.Annotate("k", "v")
	sp.AddEnergy(1)
	sp.Fail(errors.New("x"))
	child := sp.Child("c")
	if child != nil {
		t.Fatal("nil span spawned a child")
	}
	sp.End(errors.New("x"))
	sp.Finish()
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans = %v", got)
	}
	if sc := sp.Context(); sc != (SpanContext{}) {
		t.Fatalf("nil span context = %+v", sc)
	}
	_ = tr.Stats()
}

func TestHeadSamplingDeterministicAndProportional(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 0.25})
	kept := 0
	const n = 4096
	for i := 0; i < n; i++ {
		id := splitmix64(uint64(i) + 1)
		a, b := tr.sampled(id), tr.sampled(id)
		if a != b {
			t.Fatalf("sampling decision for %#x not deterministic", id)
		}
		if a {
			kept++
		}
	}
	frac := float64(kept) / n
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("sample fraction %.3f far from 0.25", frac)
	}
}

func TestUnsampledSpanNotRecorded(t *testing.T) {
	// SampleRate < 0 disables head sampling entirely; SlowThreshold < 0
	// disables tail capture by duration. Only errors survive.
	tr := NewTracer(TracerConfig{SampleRate: -1, SlowThreshold: -1})
	ok := tr.StartRoot("s", "fine")
	ok.Finish()
	bad := tr.StartRoot("s", "broken")
	bad.End(errors.New("disk on fire"))
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "broken" || spans[0].Err != "disk on fire" {
		t.Fatalf("tail capture kept %+v, want only the errored span", spans)
	}
}

func TestTailCaptureKeepsSlowSpans(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: -1, SlowThreshold: time.Nanosecond})
	sp := tr.StartRoot("s", "slow")
	time.Sleep(time.Millisecond)
	sp.Finish()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "slow" {
		t.Fatalf("slow span not tail-captured: %+v", spans)
	}
	if spans[0].Sampled {
		t.Fatal("tail-captured span must not claim head sampling")
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4})
	for i := 0; i < 7; i++ {
		sp := tr.StartRoot("s", fmt.Sprintf("op%d", i))
		sp.Finish()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	for i, d := range spans {
		if want := fmt.Sprintf("op%d", i+3); d.Name != want {
			t.Fatalf("ring[%d] = %s, want %s (oldest-first)", i, d.Name, want)
		}
	}
	st := tr.Stats()
	if st.Recorded != 7 || st.Evicted != 3 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSpanAnnotationsAndEnergySurvivePooling(t *testing.T) {
	tr := allTracer()
	sp := tr.StartRoot("node", "disk.read")
	sp.Annotate("disk", "data0")
	sp.AddEnergy(13.5)
	sp.Finish()
	// Reuse the pooled struct; its attrs must not bleed into the record.
	sp2 := tr.StartRoot("node", "disk.write")
	sp2.Finish()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans", len(spans))
	}
	first := spans[0]
	if len(first.Attrs) != 1 || first.Attrs[0] != (Attr{Key: "disk", Val: "data0"}) {
		t.Fatalf("attrs = %+v", first.Attrs)
	}
	if first.EnergyJ != 13.5 {
		t.Fatalf("energy = %v", first.EnergyJ)
	}
	if len(spans[1].Attrs) != 0 || spans[1].EnergyJ != 0 {
		t.Fatalf("pooled state leaked into second span: %+v", spans[1])
	}
}

func TestOrphansDetectsMissingParent(t *testing.T) {
	spans := []SpanData{
		{TraceID: 1, SpanID: 1},
		{TraceID: 1, SpanID: 2, ParentID: 1},
		{TraceID: 1, SpanID: 3, ParentID: 99}, // dangling
		{TraceID: 2, SpanID: 1, ParentID: 2},  // parent exists only in trace 1
	}
	or := Orphans(spans)
	if len(or) != 2 {
		t.Fatalf("orphans = %+v, want 2", or)
	}
}

func TestTracesGroupsByTraceID(t *testing.T) {
	tr := allTracer()
	a := tr.StartRoot("s", "a")
	aID := a.TraceID()
	ac := a.Child("a.1")
	ac.Finish()
	a.Finish()
	b := tr.StartRoot("s", "b")
	bID := b.TraceID()
	b.Finish()
	byTrace := tr.Traces()
	if len(byTrace) != 2 {
		t.Fatalf("traces = %d, want 2", len(byTrace))
	}
	if len(byTrace[aID]) != 2 || len(byTrace[bID]) != 1 {
		t.Fatalf("trace sizes: a=%d b=%d", len(byTrace[aID]), len(byTrace[bID]))
	}
}

func TestChromeSpanExportShape(t *testing.T) {
	tr := allTracer()
	root := tr.StartRoot("client", "client.read")
	ch := root.Child("client.rt.server")
	ch.Finish()
	root.Finish()
	var sb strings.Builder
	if err := WriteChromeSpans(&sb, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"client.read"`, `"client.rt.server"`, `"trace_id"`, `"ph":"X"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome export missing %s:\n%s", want, out)
		}
	}
}
