package telemetry

import "testing"

// The no-op guarantee: instrumented code paths hold pre-resolved handles
// and pay only a nil check when telemetry is disabled. These benchmarks
// pin the enabled and disabled costs side by side.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("h", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkJournalAppendDisabled(b *testing.B) {
	var j *Journal
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Append(Event{TimeS: float64(i), Kind: KindState, Subject: "d", Detail: "idle"})
	}
}
