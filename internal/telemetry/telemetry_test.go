package telemetry

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"eevfs/internal/simtest/leak"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Fatal("Counter did not return the existing handle")
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	if r.Gauge("depth") != g {
		t.Fatal("Gauge did not return the existing handle")
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var j *Journal
	j.Append(Event{Kind: KindState})
	if j.Len() != 0 || j.Events() != nil {
		t.Fatal("nil journal must be a no-op")
	}
}

// TestHistogramBucketBoundaries pins the bucketing contract: a value
// exactly on a bound lands in that bound's bucket (v <= le), one ulp
// above it lands in the next, and values past the last bound overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})

	h.Observe(0.01)                    // == first bound
	h.Observe(math.Nextafter(0.01, 1)) // just above first bound
	h.Observe(0.05)                    // inside second bucket
	h.Observe(1)                       // == last bound
	h.Observe(1.5)                     // overflow
	h.Observe(0)                       // below everything
	h.Observe(math.Nextafter(0.1, 0))  // just below second bound
	h.Observe(math.Inf(1))             // +Inf -> overflow

	snap := h.snapshot()
	wantBuckets := []int64{2, 3, 1}
	for i, want := range wantBuckets {
		if snap.Buckets[i].N != want {
			t.Errorf("bucket le=%g: n=%d, want %d", snap.Buckets[i].Le, snap.Buckets[i].N, want)
		}
	}
	if snap.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", snap.Overflow)
	}
	if snap.Count != 8 {
		t.Errorf("count = %d, want 8", snap.Count)
	}
}

func TestHistogramSumAndMean(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Observe(v)
	}
	if got := h.Sum(); math.Abs(got-8) > 1e-12 {
		t.Fatalf("sum = %g, want 8", got)
	}
	if got := h.snapshot().Mean(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("mean = %g, want 2", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in the first bucket
	}
	snap := h.snapshot()
	if q := snap.Quantile(0.5); q <= 0 || q > 1 {
		t.Fatalf("p50 = %g, want within (0, 1]", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
}

// TestConcurrentUpdates hammers one counter, gauge, and histogram from
// many goroutines; run under -race this doubles as the data-race gate
// (make verify runs the suite with -race).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h", []float64{0.5})
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.9)
				if i%100 == 0 {
					r.Snapshot() // concurrent readers must be safe too
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["c"] != workers*per {
		t.Fatalf("counter = %d, want %d", snap.Counters["c"], workers*per)
	}
	if snap.Gauges["g"] != workers*per {
		t.Fatalf("gauge = %g, want %d", snap.Gauges["g"], workers*per)
	}
	hs := snap.Histograms["h"]
	if hs.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", hs.Count, workers*per)
	}
	if hs.Buckets[0].N+hs.Overflow != hs.Count {
		t.Fatalf("bucket sum %d+%d != count %d", hs.Buckets[0].N, hs.Overflow, hs.Count)
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("b").Set(3.25)
	r.Histogram("c", []float64{1}).Observe(0.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 7 || back.Gauges["b"] != 3.25 || back.Histograms["c"].Count != 1 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestCounterNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Inc()
	}
	got := r.CounterNames()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestJournalAppendAndCount(t *testing.T) {
	j := &Journal{}
	j.Append(Event{TimeS: 0, Kind: KindState, Subject: "d0", Detail: "idle"})
	j.Append(Event{TimeS: 1, Kind: KindState, Subject: "d0", Detail: "spinning-down"})
	j.Append(Event{TimeS: 1.5, Kind: KindState, Subject: "d0", Detail: "standby"})
	j.Append(Event{TimeS: 3, Kind: KindState, Subject: "d0", Detail: "spinning-up"})
	j.Append(Event{TimeS: 4, Kind: KindRequest, Subject: "file:1", Detail: "read", DurS: 0.2})
	if j.Len() != 5 {
		t.Fatalf("len = %d, want 5", j.Len())
	}
	if got := j.CountStates("spinning-up", "spinning-down"); got != 2 {
		t.Fatalf("transitions = %d, want 2", got)
	}
}

func TestAdminServesMetricsAndHealth(t *testing.T) {
	// The admin listener spawns accept/serve goroutines; Close must not
	// leave them behind to race the next test's listener.
	leak.Check(t)
	r := NewRegistry()
	r.Counter("proto.calls").Add(3)
	a, err := StartAdmin("127.0.0.1:0", r, func() any {
		return map[string]bool{"serving": true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	resp, err := http.Get("http://" + a.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["proto.calls"] != 3 {
		t.Fatalf("metrics endpoint returned %+v", snap)
	}

	hr, err := http.Get("http://" + a.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health map[string]bool
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health["serving"] {
		t.Fatalf("healthz returned %v", health)
	}

	pr, err := http.Get("http://" + a.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", pr.StatusCode)
	}
}

func TestChromeTraceExport(t *testing.T) {
	j := &Journal{}
	j.Append(Event{TimeS: 0, Kind: KindState, Subject: "node0/data0", Detail: "idle"})
	j.Append(Event{TimeS: 2, Kind: KindState, Subject: "node0/data0", Detail: "spinning-down"})
	j.Append(Event{TimeS: 2.5, Kind: KindState, Subject: "node0/data0", Detail: "standby"})
	j.Append(Event{TimeS: 5, Kind: KindState, Subject: "node0/data0", Detail: "spinning-up"})
	j.Append(Event{TimeS: 6, Kind: KindState, Subject: "node0/data0", Detail: "idle"})
	j.Append(Event{TimeS: 6, Kind: KindService, Subject: "node0/data0", Detail: "read", DurS: 0.3, WaitS: 1.0})
	j.Append(Event{TimeS: 5.9, Kind: KindRequest, Subject: "file:3", Detail: "read", DurS: 0.5})

	var sb strings.Builder
	if err := WriteChromeTrace(&sb, j.Events(), 10); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TsUs  float64 `json:"ts"`
			DurUs float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &tr); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	var spans, transitions, begins, ends int
	var idleDur float64
	for _, e := range tr.TraceEvents {
		switch e.Phase {
		case "X":
			spans++
			if e.Name == "spinning-up" || e.Name == "spinning-down" {
				transitions++
			}
			if e.Name == "idle" {
				idleDur += e.DurUs
			}
		case "b":
			begins++
		case "e":
			ends++
		}
	}
	// Dwells: idle[0,2) sdown[2,2.5) standby[2.5,5) sup[5,6) idle[6,10)
	// plus the service slice.
	if spans != 6 {
		t.Errorf("spans = %d, want 6", spans)
	}
	if transitions != 2 {
		t.Errorf("transition spans = %d, want 2", transitions)
	}
	if begins != 1 || ends != 1 {
		t.Errorf("request async events = %d/%d, want 1/1", begins, ends)
	}
	if want := 6e6; math.Abs(idleDur-want) > 1 {
		t.Errorf("idle dwell = %g us, want %g", idleDur, want)
	}
}
