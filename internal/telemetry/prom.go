// Prometheus text exposition (version 0.0.4) for a Registry snapshot.
// Counters and gauges map directly; histograms emit the standard
// cumulative _bucket/_sum/_count series plus derived p50/p99/p999
// gauges, so a scraper gets quantiles even without histogram_quantile.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName sanitizes a metric name for the exposition format: the
// dotted registry names become underscore-separated.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders one registry snapshot as Prometheus text. Families
// are emitted in sorted name order so scrapes diff cleanly.
func WriteProm(w io.Writer, snap Snapshot) error {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, snap.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.N
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, fmt.Sprintf("%g", b.Le), cum); err != nil {
				return err
			}
		}
		cum += h.Overflow
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			pn, cum, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
		for _, q := range []struct {
			suffix string
			q      float64
		}{{"p50", 0.5}, {"p99", 0.99}, {"p999", 0.999}} {
			if _, err := fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %g\n",
				pn, q.suffix, pn, q.suffix, h.Quantile(q.q)); err != nil {
				return err
			}
		}
	}
	return nil
}
