package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: turns a Journal into the JSON object format
// understood by Perfetto (ui.perfetto.dev) and chrome://tracing, so a
// simulated run's per-disk power-state timeline and queue waits can be
// inspected visually — the paper's Fig. 4 transition counts as an actual
// timeline.
//
// Mapping:
//   - KindState events become one "X" (complete) slice per dwell on the
//     disk's own track, named after the state ("idle", "standby", ...).
//   - KindService events become "X" slices on the same disk track,
//     nested under the "active" dwell, with queue wait in args.
//   - KindRequest events become async "b"/"e" pairs on a shared
//     "requests" track, so overlapping requests stay legible.
//
// Timestamps are microseconds as the format requires.

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    int            `json:"id,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const usPerSec = 1e6

// WriteChromeTrace renders the events as a Chrome trace. endS closes the
// final state dwell of every subject (pass the run's makespan).
func WriteChromeTrace(w io.Writer, events []Event, endS float64) error {
	// Assign each state/service subject (disk) a stable track id in
	// first-appearance order, then name the tracks via metadata events.
	tids := map[string]int{}
	order := []string{}
	for _, e := range events {
		if e.Kind != KindState && e.Kind != KindService {
			continue
		}
		if _, ok := tids[e.Subject]; !ok {
			tids[e.Subject] = len(order) + 1 // tid 0 is the requests track
			order = append(order, e.Subject)
		}
	}

	var out []chromeEvent
	meta := func(tid int, name string) {
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(0, "requests")
	for _, s := range order {
		meta(tids[s], s)
	}

	// Reconstruct state dwells: each state event closes the previous
	// dwell on its subject's track.
	type dwell struct {
		state string
		since float64
	}
	open := map[string]*dwell{}
	reqID := 0
	for _, e := range events {
		switch e.Kind {
		case KindState:
			if d, ok := open[e.Subject]; ok && e.TimeS > d.since {
				out = append(out, chromeEvent{
					Name: d.state, Cat: "power", Phase: "X",
					TsUs: d.since * usPerSec, DurUs: (e.TimeS - d.since) * usPerSec,
					Pid: 1, Tid: tids[e.Subject],
				})
			}
			open[e.Subject] = &dwell{state: e.Detail, since: e.TimeS}

		case KindService:
			ev := chromeEvent{
				Name: e.Detail, Cat: "service", Phase: "X",
				TsUs: e.TimeS * usPerSec, DurUs: e.DurS * usPerSec,
				Pid: 1, Tid: tids[e.Subject],
			}
			if e.WaitS > 0 {
				ev.Args = map[string]any{"queue_wait_s": e.WaitS}
			}
			out = append(out, ev)

		case KindRequest:
			reqID++
			name := fmt.Sprintf("%s %s", e.Detail, e.Subject)
			out = append(out, chromeEvent{
				Name: name, Cat: "request", Phase: "b",
				TsUs: e.TimeS * usPerSec, Pid: 1, Tid: 0, ID: reqID,
			}, chromeEvent{
				Name: name, Cat: "request", Phase: "e",
				TsUs: (e.TimeS + e.DurS) * usPerSec, Pid: 1, Tid: 0, ID: reqID,
			})
		}
	}

	// Close the final dwell of every subject at endS, in a deterministic
	// order.
	subjects := make([]string, 0, len(open))
	for s := range open {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)
	for _, s := range subjects {
		d := open[s]
		if endS > d.since {
			out = append(out, chromeEvent{
				Name: d.state, Cat: "power", Phase: "X",
				TsUs: d.since * usPerSec, DurUs: (endS - d.since) * usPerSec,
				Pid: 1, Tid: tids[s],
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// WriteChromeSpans renders recorded spans as a Chrome trace: one track
// per service, one "X" slice per span (error and energy in args), so a
// distributed request's hop tree opens directly in Perfetto. Spans are
// placed on a relative clock anchored at the earliest start so traces
// from different processes stay on one legible timeline.
func WriteChromeSpans(w io.Writer, spans []SpanData) error {
	tids := map[string]int{}
	order := []string{}
	minNs := int64(0)
	for i, d := range spans {
		if _, ok := tids[d.Service]; !ok {
			tids[d.Service] = len(order)
			order = append(order, d.Service)
		}
		if i == 0 || d.StartNs < minNs {
			minNs = d.StartNs
		}
	}

	var out []chromeEvent
	for _, s := range order {
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: tids[s],
			Args: map[string]any{"name": s},
		})
	}
	for _, d := range spans {
		args := map[string]any{
			"trace_id": fmt.Sprintf("%016x", d.TraceID),
			"span_id":  fmt.Sprintf("%016x", d.SpanID),
		}
		if d.ParentID != 0 {
			args["parent_id"] = fmt.Sprintf("%016x", d.ParentID)
		}
		if d.Err != "" {
			args["err"] = d.Err
		}
		if d.EnergyJ != 0 {
			args["energy_j"] = d.EnergyJ
		}
		for _, a := range d.Attrs {
			args[a.Key] = a.Val
		}
		out = append(out, chromeEvent{
			Name: d.Name, Cat: "span", Phase: "X",
			TsUs:  float64(d.StartNs-minNs) / 1e3,
			DurUs: d.DurS * usPerSec,
			Pid:   1, Tid: tids[d.Service], Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}
