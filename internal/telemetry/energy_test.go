package telemetry

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestEnergyLedgerAttribution(t *testing.T) {
	l := NewEnergyLedger(0)
	l.Attribute(0xabc, "file:1", "data.Active", 10)
	l.Attribute(0xabc, "file:1", "data.SpinningUp", 24)
	l.Attribute(0xdef, "file:2", "buffer.Active", 5)
	l.Attribute(0, "", "data.Standby", 2) // background dwell

	if got := l.TraceJ(0xabc); got != 34 {
		t.Fatalf("TraceJ = %v, want 34", got)
	}
	if got := l.TotalJ(); got != 41 {
		t.Fatalf("TotalJ = %v, want 41", got)
	}
	snap := l.Snapshot()
	if snap.BackgroundJ != 2 {
		t.Fatalf("background = %v", snap.BackgroundJ)
	}
	if snap.PerFile["file:1"] != 34 || snap.PerFile["file:2"] != 5 {
		t.Fatalf("per-file = %+v", snap.PerFile)
	}
	if snap.PerArm["data.Active"] != 10 || snap.PerArm["data.SpinningUp"] != 24 ||
		snap.PerArm["buffer.Active"] != 5 || snap.PerArm["data.Standby"] != 2 {
		t.Fatalf("per-arm = %+v", snap.PerArm)
	}
	if snap.PerTrace[fmt.Sprintf("%016x", uint64(0xabc))] != 34 {
		t.Fatalf("per-trace = %+v", snap.PerTrace)
	}
}

// TestEnergyLedgerConservation pins the invariant the e2e test leans on:
// total == background + sum over traces, exactly (same additions, same
// order per accumulator — only distribution differs).
func TestEnergyLedgerConservation(t *testing.T) {
	l := NewEnergyLedger(0)
	for i := 0; i < 1000; i++ {
		l.Attribute(uint64(i%7), fmt.Sprintf("file:%d", i%13), "data.Active", 0.1*float64(i))
	}
	snap := l.Snapshot()
	var traces float64
	for _, j := range snap.PerTrace {
		traces += j
	}
	if diff := math.Abs(snap.TotalJ - (snap.BackgroundJ + traces)); diff > 1e-9*snap.TotalJ {
		t.Fatalf("conservation broken: total %v vs background %v + traces %v",
			snap.TotalJ, snap.BackgroundJ, traces)
	}
}

func TestEnergyLedgerFIFOEviction(t *testing.T) {
	l := NewEnergyLedger(2)
	l.Attribute(1, "f1", "a", 1)
	l.Attribute(2, "f2", "a", 2)
	l.Attribute(3, "f3", "a", 3) // evicts trace 1 / file f1
	snap := l.Snapshot()
	if len(snap.PerTrace) != 2 || len(snap.PerFile) != 2 {
		t.Fatalf("maps not bounded: %d traces, %d files", len(snap.PerTrace), len(snap.PerFile))
	}
	if snap.EvictedTraces != 1 || snap.EvictedFiles != 1 {
		t.Fatalf("evictions = %d/%d", snap.EvictedTraces, snap.EvictedFiles)
	}
	if l.TraceJ(1) != 0 {
		t.Fatal("evicted trace still resolvable")
	}
	if l.TraceJ(3) != 3 {
		t.Fatalf("surviving trace = %v", l.TraceJ(3))
	}
	// Totals are never evicted.
	if l.TotalJ() != 6 {
		t.Fatalf("TotalJ = %v", l.TotalJ())
	}
}

func TestNilEnergyLedgerIsNoOp(t *testing.T) {
	var l *EnergyLedger
	l.Attribute(1, "f", "a", 1)
	if l.TotalJ() != 0 || l.TraceJ(1) != 0 {
		t.Fatal("nil ledger accumulated energy")
	}
	_ = l.Snapshot()
}

func TestJournalRingCapAndEvictionCounter(t *testing.T) {
	c := &Counter{}
	j := &Journal{}
	j.SetEvictionCounter(c)
	j.SetLimit(3)
	for i := 0; i < 5; i++ {
		j.Append(Event{TimeS: float64(i), Kind: KindState, Subject: "d0", Detail: fmt.Sprintf("s%d", i)})
	}
	evs := j.Events()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(evs))
	}
	for i, e := range evs {
		if want := fmt.Sprintf("s%d", i+2); e.Detail != want {
			t.Fatalf("ring[%d] = %s, want %s (oldest-first)", i, e.Detail, want)
		}
	}
	if j.Evicted() != 2 || c.Value() != 2 {
		t.Fatalf("evicted = %d, counter = %d", j.Evicted(), c.Value())
	}
	if j.Len() != 3 {
		t.Fatalf("Len = %d", j.Len())
	}
}

func TestJournalSetLimitShrinksExisting(t *testing.T) {
	j := &Journal{}
	for i := 0; i < 6; i++ {
		j.Append(Event{TimeS: float64(i), Detail: fmt.Sprintf("e%d", i)})
	}
	j.SetLimit(2)
	evs := j.Events()
	if len(evs) != 2 || evs[0].Detail != "e4" || evs[1].Detail != "e5" {
		t.Fatalf("after shrink: %+v", evs)
	}
	if j.Evicted() != 4 {
		t.Fatalf("evicted = %d", j.Evicted())
	}
	// Limit 0 returns to unbounded growth.
	j.SetLimit(0)
	for i := 0; i < 10; i++ {
		j.Append(Event{Detail: "x"})
	}
	if j.Len() != 12 {
		t.Fatalf("unbounded Len = %d", j.Len())
	}
}

func TestJournalRequestSampling(t *testing.T) {
	j := &Journal{}
	j.SetRequestSampling(0.5, 1)
	const n = 2000
	for i := 0; i < n; i++ {
		j.Append(Event{Kind: KindRequest, Detail: "read"})
		// State and service events must never be sampled away — the
		// simulation oracles replay them.
		j.Append(Event{Kind: KindState, Detail: "idle"})
	}
	var reqs, states int
	for _, e := range j.Events() {
		switch e.Kind {
		case KindRequest:
			reqs++
		case KindState:
			states++
		}
	}
	if states != n {
		t.Fatalf("state events sampled: %d of %d", states, n)
	}
	frac := float64(reqs) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("request sample fraction %.3f far from 0.5", frac)
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("proto.calls").Add(7)
	r.Gauge("fs.disks.standby").Set(2)
	h := r.Histogram("fs.op.read.seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := WriteProm(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE proto_calls counter",
		"proto_calls 7",
		"# TYPE fs_disks_standby gauge",
		"fs_disks_standby 2",
		`fs_op_read_seconds_bucket{le="0.1"} 1`,
		`fs_op_read_seconds_bucket{le="1"} 2`,
		`fs_op_read_seconds_bucket{le="+Inf"} 3`,
		"fs_op_read_seconds_count 3",
		"fs_op_read_seconds_p50",
		"fs_op_read_seconds_p99",
		"fs_op_read_seconds_p999",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.seconds", []float64{0.001, 0.01, 0.1, 1, 10})
	for i := 0; i < 1000; i++ {
		h.Observe(0.005)
	}
	h.Observe(5)
	snap := r.Snapshot()
	hs := snap.Histograms["q.seconds"]
	if hs.P50 <= 0.001 || hs.P50 > 0.01 {
		t.Fatalf("p50 = %v", hs.P50)
	}
	if hs.P999 <= hs.P50 {
		t.Fatalf("p999 %v not above p50 %v", hs.P999, hs.P50)
	}
}
