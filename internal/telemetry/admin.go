package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"
)

// Admin is the live-introspection HTTP listener the daemons expose behind
// their -admin-addr flag:
//
//	GET /metrics        expvar-style JSON snapshot of the registry
//	GET /metrics.prom   the same snapshot as Prometheus text exposition
//	GET /traces         recorded span trees + energy attribution (JSON);
//	                    ?trace=<hex id> selects one trace,
//	                    ?format=chrome renders a Perfetto-loadable trace
//	GET /healthz        the daemon's own health payload (JSON)
//	GET /debug/pprof/*  the standard runtime profiles
type Admin struct {
	ln  net.Listener
	srv *http.Server
}

// AdminConfig wires the optional observability sources into an admin
// listener. Nil fields disable the corresponding endpoints' content
// (the routes still exist and return empty payloads).
type AdminConfig struct {
	Registry *Registry
	Health   func() any
	Tracer   *Tracer
	Energy   *EnergyLedger
}

// StartAdmin binds addr and serves the admin endpoints. health (optional)
// supplies the /healthz payload; it must be JSON-marshalable.
func StartAdmin(addr string, reg *Registry, health func() any) (*Admin, error) {
	return StartAdminConfig(addr, AdminConfig{Registry: reg, Health: health})
}

// tracesPayload is the /traces JSON document: tracer activity counters,
// the energy ledger snapshot, and every recorded span grouped by trace.
type tracesPayload struct {
	Stats  TracerStats           `json:"stats"`
	Energy EnergySnapshot        `json:"energy"`
	Traces map[string][]SpanData `json:"traces"`
}

// StartAdminConfig binds addr and serves the admin endpoints from the
// given sources.
func StartAdminConfig(addr string, cfg AdminConfig) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(cfg.Registry.Snapshot())
	})
	mux.HandleFunc("/metrics.prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WriteProm(w, cfg.Registry.Snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		spans := cfg.Tracer.Spans()
		if want := r.URL.Query().Get("trace"); want != "" {
			id, err := strconv.ParseUint(want, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
				return
			}
			kept := spans[:0]
			for _, d := range spans {
				if d.TraceID == id {
					kept = append(kept, d)
				}
			}
			spans = kept
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			WriteChromeSpans(w, spans)
			return
		}
		payload := tracesPayload{
			Stats:  cfg.Tracer.Stats(),
			Energy: cfg.Energy.Snapshot(),
			Traces: map[string][]SpanData{},
		}
		for _, d := range spans {
			key := strconv.FormatUint(d.TraceID, 16)
			payload.Traces[key] = append(payload.Traces[key], d)
		}
		for _, tree := range payload.Traces {
			sort.Slice(tree, func(i, j int) bool { return tree[i].StartNs < tree[j].StartNs })
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		payload := any(map[string]string{"status": "ok"})
		if cfg.Health != nil {
			payload = cfg.Health()
		}
		json.NewEncoder(w).Encode(payload)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	a := &Admin{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound listen address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (a *Admin) Close() error { return a.srv.Close() }
