package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Admin is the live-introspection HTTP listener the daemons expose behind
// their -admin-addr flag:
//
//	GET /metrics        expvar-style JSON snapshot of the registry
//	GET /healthz        the daemon's own health payload (JSON)
//	GET /debug/pprof/*  the standard runtime profiles
type Admin struct {
	ln  net.Listener
	srv *http.Server
}

// StartAdmin binds addr and serves the admin endpoints. health (optional)
// supplies the /healthz payload; it must be JSON-marshalable.
func StartAdmin(addr string, reg *Registry, health func() any) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		payload := any(map[string]string{"status": "ok"})
		if health != nil {
			payload = health()
		}
		json.NewEncoder(w).Encode(payload)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	a := &Admin{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound listen address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (a *Admin) Close() error { return a.srv.Close() }
