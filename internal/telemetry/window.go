package telemetry

import (
	"sync"
	"sync/atomic"
)

// Windowed is a sliding-window histogram: observations land in the
// current slot (lock-free, same cost as Histogram.Observe), and Snapshot
// merges the newest `slots` slots into one HistogramSnapshot. Advancing
// retires the oldest slot, so a snapshot covers only the last
// slots×(advance interval) of traffic — the "p99 over the last N
// seconds" view a live load reporter needs, which a cumulative histogram
// cannot provide (its tail freezes as the count grows).
//
// Observe is safe for any number of concurrent callers; Advance and
// Snapshot serialize against each other (one reporter goroutine is the
// intended caller).
type Windowed struct {
	bounds []float64
	cur    atomic.Pointer[Histogram]

	mu   sync.Mutex
	past []*Histogram // newest last; len < slots
	n    int          // total slots including cur
}

// NewWindowed builds a window of n slots over the given bucket bounds
// (nil = DefBuckets). n < 2 is clamped to 2 (one live slot plus one
// retired slot — anything less cannot slide).
func NewWindowed(n int, bounds []float64) *Windowed {
	if bounds == nil {
		bounds = DefBuckets
	}
	if n < 2 {
		n = 2
	}
	w := &Windowed{bounds: bounds, n: n}
	w.cur.Store(newHistogram(bounds))
	return w
}

// Observe records one value into the current slot. Nil-safe.
func (w *Windowed) Observe(v float64) {
	if w == nil {
		return
	}
	w.cur.Load().Observe(v)
}

// Advance retires the current slot into the window and starts a fresh
// one, evicting the oldest retired slot when the window is full.
// Observations racing the swap land in either the retired or the fresh
// slot — both are inside the window, so nothing is lost.
func (w *Windowed) Advance() {
	if w == nil {
		return
	}
	fresh := newHistogram(w.bounds)
	old := w.cur.Swap(fresh)
	w.mu.Lock()
	w.past = append(w.past, old)
	if len(w.past) > w.n-1 {
		w.past = w.past[1:]
	}
	w.mu.Unlock()
}

// Snapshot merges every slot still in the window into one frozen view
// with recomputed quantiles. Nil-safe (returns a zero snapshot).
func (w *Windowed) Snapshot() HistogramSnapshot {
	if w == nil {
		return HistogramSnapshot{}
	}
	w.mu.Lock()
	hs := make([]*Histogram, 0, len(w.past)+1)
	hs = append(hs, w.past...)
	w.mu.Unlock()
	hs = append(hs, w.cur.Load())

	out := HistogramSnapshot{Buckets: make([]BucketCount, len(w.bounds))}
	for i, le := range w.bounds {
		out.Buckets[i].Le = le
	}
	for _, h := range hs {
		s := h.snapshot()
		out.Count += s.Count
		out.Sum += s.Sum
		out.Overflow += s.Overflow
		for i := range s.Buckets {
			out.Buckets[i].N += s.Buckets[i].N
		}
	}
	out.P50 = out.Quantile(0.5)
	out.P99 = out.Quantile(0.99)
	out.P999 = out.Quantile(0.999)
	return out
}
