// Package telemetry is the unified observability substrate for EEVFS:
// named counters, gauges, and fixed-bucket latency histograms behind a
// Registry with cheap atomic updates, plus a structured event Journal for
// the discrete-event simulator and a Chrome trace-event exporter.
//
// Every handle type is nil-safe: methods on a nil *Counter, *Gauge, or
// *Histogram are no-ops, and a nil *Registry hands out nil handles. Code
// therefore instruments unconditionally and pays only a nil check when
// telemetry is disabled — the no-op mode the hot paths (simulator event
// loop, protocol round trips) rely on.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The zero value is ready to
// use; a nil pointer is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be >= 0 for the value to stay monotonic; this is not
// enforced).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can move in both directions. The zero value is
// ready to use; a nil pointer is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop; contended gauges should prefer Set).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v <= bounds[i] (and > bounds[i-1]); values above the last
// bound land in the overflow bucket. A nil pointer is a no-op.
type Histogram struct {
	bounds []float64 // sorted, strictly increasing upper bounds
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefBuckets is the default latency bucket layout (seconds): 100 µs to
// 60 s in a 1-2.5-5 progression, matching both the protocol round-trip
// range and the simulator's modeled disk latencies.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Int64, len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// sort.SearchFloat64s returns the first i with bounds[i] >= v, which
	// is exactly the "v <= bound" bucket; len(bounds) is the overflow.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// BucketCount is one histogram bucket in a snapshot: N observations with
// value <= Le (and greater than the previous bucket's Le).
type BucketCount struct {
	Le float64 `json:"le"`
	N  int64   `json:"n"`
}

// HistogramSnapshot is a frozen view of a Histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	// Buckets holds the finite-bound buckets; Overflow counts
	// observations above the last bound.
	Buckets  []BucketCount `json:"buckets"`
	Overflow int64         `json:"overflow"`
	// P50/P99/P999 are bucket-interpolated quantiles, precomputed so
	// JSON and Prometheus consumers get tail latency without redoing
	// the interpolation.
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
}

// Mean returns the mean observation (0 with no observations).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket (the first bucket
// interpolates from 0, overflow clamps to the last bound).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := q * float64(s.Count)
	var cum int64
	lo := 0.0
	for _, b := range s.Buckets {
		next := cum + b.N
		if float64(next) >= target {
			if b.N == 0 {
				return b.Le
			}
			frac := (target - float64(cum)) / float64(b.N)
			return lo + frac*(b.Le-lo)
		}
		cum = next
		lo = b.Le
	}
	return s.Buckets[len(s.Buckets)-1].Le
}

func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
		Buckets: make([]BucketCount, len(h.bounds)),
	}
	for i, le := range h.bounds {
		out.Buckets[i] = BucketCount{Le: le, N: h.counts[i].Load()}
	}
	out.Overflow = h.counts[len(h.bounds)].Load()
	out.P50 = out.Quantile(0.5)
	out.P99 = out.Quantile(0.99)
	out.P999 = out.Quantile(0.999)
	return out
}

// Snapshot is a frozen, JSON-marshalable view of a Registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry is a named collection of metrics. Handle lookup takes a lock;
// callers on hot paths resolve handles once and update through them
// lock-free. A nil *Registry hands out nil (no-op) handles.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds = DefBuckets). Later calls
// return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures every metric's current value. Safe to call
// concurrently with updates; each value is read atomically (the snapshot
// as a whole is not a single instant, which is fine for monitoring).
// A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		out.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		out.Histograms[name] = h.snapshot()
	}
	return out
}

// CounterNames returns the registered counter names, sorted (snapshot
// rendering and the stats RPC want a deterministic order).
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
