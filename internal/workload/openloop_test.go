package workload

import (
	"testing"
	"time"
)

// drainSeconds sums gaps until at least horizon seconds of schedule have
// been generated, returning the arrival count and the exact elapsed time.
func drainSeconds(t *testing.T, cfg OpenLoopConfig, horizon float64) (int, float64) {
	t.Helper()
	a, err := NewArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := 0.0
	n := 0
	for elapsed < horizon {
		elapsed += a.Next().Seconds()
		n++
		if n > int(cfg.RatePerSec*horizon*100)+1000 {
			t.Fatalf("runaway arrival stream: %d arrivals in %.2fs at rate %g", n, elapsed, cfg.RatePerSec)
		}
	}
	return n, elapsed
}

// TestArrivalsDeterministic: the same seed must yield the identical gap
// sequence — the property that makes load runs reproducible.
func TestArrivalsDeterministic(t *testing.T) {
	for _, proc := range []string{ProcessPoisson, ProcessUniform, ProcessBurst} {
		cfg := OpenLoopConfig{
			RatePerSec: 500, Process: proc, Seed: 42,
			BurstFactor: 4, BurstFraction: 0.1, BurstMeanSec: 0.05,
		}
		a1, err := NewArrivals(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := NewArrivals(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			g1, g2 := a1.Next(), a2.Next()
			if g1 != g2 {
				t.Fatalf("%s: gap %d diverged under one seed: %v vs %v", proc, i, g1, g2)
			}
			if g1 < 0 {
				t.Fatalf("%s: negative gap %v at %d", proc, g1, i)
			}
		}
		if proc == ProcessUniform {
			continue // gaps are seed-independent by construction
		}
		a3, err := NewArrivals(OpenLoopConfig{
			RatePerSec: 500, Process: proc, Seed: 43,
			BurstFactor: 4, BurstFraction: 0.1, BurstMeanSec: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		a4, _ := NewArrivals(cfg)
		same := true
		for i := 0; i < 100; i++ {
			if a3.Next() != a4.Next() {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced the same gap stream", proc)
		}
	}
}

// TestArrivalsOfferedRate: over a long horizon the realized arrival count
// must track RatePerSec for every process — the offered-rate property the
// harness's achieved-vs-offered comparison depends on.
func TestArrivalsOfferedRate(t *testing.T) {
	const horizon = 200.0 // scheduled seconds (generated, not slept)
	cases := []OpenLoopConfig{
		{RatePerSec: 100, Process: ProcessPoisson, Seed: 7},
		{RatePerSec: 100, Process: ProcessUniform, Seed: 7},
		{RatePerSec: 100, Process: ProcessBurst, Seed: 7,
			BurstFactor: 5, BurstFraction: 0.1, BurstMeanSec: 0.05},
		{RatePerSec: 2000, Process: ProcessBurst, Seed: 11,
			BurstFactor: 3, BurstFraction: 0.2, BurstMeanSec: 0.1},
	}
	for _, cfg := range cases {
		n, elapsed := drainSeconds(t, cfg, horizon)
		got := float64(n) / elapsed
		// 5% tolerance: 20000+ arrivals, CLT puts Poisson noise well under
		// 2%; the burst process mixes states over 400+ dwell cycles.
		if got < 0.95*cfg.RatePerSec || got > 1.05*cfg.RatePerSec {
			t.Errorf("%s: realized rate %.1f/s, offered %.1f/s", cfg.Process, got, cfg.RatePerSec)
		}
	}
}

// TestArrivalsBurstShape: the burst process must actually burst — the gap
// distribution inside bursts is shorter than off-state gaps — while the
// uniform process is an exact metronome.
func TestArrivalsBurstShape(t *testing.T) {
	a, err := NewArrivals(OpenLoopConfig{
		RatePerSec: 1000, Process: ProcessBurst, Seed: 3,
		BurstFactor: 8, BurstFraction: 0.1, BurstMeanSec: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	short := 0
	const n = 50000
	for i := 0; i < n; i++ {
		// At the 8x burst rate the mean gap is 125µs vs 1.39ms off-burst
		// (off rate = 1000*(1-0.8)/0.9 ≈ 222/s). Count sub-200µs gaps: a
		// pure Poisson(1000/s) stream would see ~18% of gaps under 200µs;
		// the MMPP's burst state pushes the share far higher.
		if a.Next() < 200*time.Microsecond {
			short++
		}
	}
	frac := float64(short) / n
	if frac < 0.30 {
		t.Fatalf("burst process produced only %.1f%% short gaps; bursts are not happening", 100*frac)
	}

	u, err := NewArrivals(OpenLoopConfig{RatePerSec: 250, Process: ProcessUniform, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := u.Next()
	for i := 0; i < 100; i++ {
		if got := u.Next(); got != want {
			t.Fatalf("uniform gap varied: %v vs %v", got, want)
		}
	}
}

// TestOpenLoopValidation: bad configurations are rejected with the field
// named, and the degenerate burst parameterizations cannot slip through.
func TestOpenLoopValidation(t *testing.T) {
	bad := []OpenLoopConfig{
		{RatePerSec: 0},
		{RatePerSec: -5},
		{RatePerSec: 10, Process: "thundering-herd"},
		{RatePerSec: 10, Process: ProcessBurst, BurstFactor: 1, BurstFraction: 0.1},
		{RatePerSec: 10, Process: ProcessBurst, BurstFactor: 4, BurstFraction: 0},
		{RatePerSec: 10, Process: ProcessBurst, BurstFactor: 4, BurstFraction: 1},
		{RatePerSec: 10, Process: ProcessBurst, BurstFactor: 4, BurstFraction: 0.25}, // f*k = 1
		{RatePerSec: 10, Process: ProcessBurst, BurstFactor: 4, BurstFraction: 0.1, BurstMeanSec: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
		if _, err := NewArrivals(cfg); err == nil {
			t.Errorf("case %d: NewArrivals accepted invalid config %+v", i, cfg)
		}
	}
	good := OpenLoopConfig{RatePerSec: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("default poisson config rejected: %v", err)
	}
}
