package workload

import (
	"math"
	"sort"
	"testing"
)

// TestDriftDeterministic: the same configuration must generate a
// bit-identical trace on every call — the property the repro codec and
// the seeded soak battery both stand on.
func TestDriftDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 7, 12345} {
		cfg := DefaultDrift()
		cfg.Seed = seed
		cfg.FlashStartFrac, cfg.FlashDurFrac, cfg.FlashBoost = 0.4, 0.3, 0.5
		cfg.DiurnalPeriodSec, cfg.DiurnalAmplitude = 90, 0.4
		a, err := Drift(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Drift(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Records) != len(b.Records) {
			t.Fatalf("seed %d: lengths differ", seed)
		}
		for i := range a.Records {
			if a.Records[i] != b.Records[i] {
				t.Fatalf("seed %d: record %d differs: %+v vs %+v", seed, i, a.Records[i], b.Records[i])
			}
		}
	}
}

// perEpochCounts tallies per-file access counts for each epoch, using
// the generator's own PhaseOf split.
func perEpochCounts(cfg DriftConfig, fids []int) []map[int]int {
	out := make([]map[int]int, cfg.Phases)
	for i := range out {
		out[i] = map[int]int{}
	}
	for i, fid := range fids {
		p := cfg.PhaseOf(i)
		if p >= len(out) {
			p = len(out) - 1
		}
		out[p][fid]++
	}
	return out
}

func driftFIDs(t *testing.T, cfg DriftConfig) []int {
	t.Helper()
	tr, err := Drift(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fids := make([]int, len(tr.Records))
	for i, r := range tr.Records {
		fids[i] = r.FileID
	}
	return fids
}

// TestDriftEpochsNonEmptyAndMoving: every popularity epoch must receive
// requests, and consecutive epochs must draw from (mostly) disjoint hot
// sets — the property that makes a one-shot offline ranking stale.
func TestDriftEpochsNonEmptyAndMoving(t *testing.T) {
	cfg := DefaultDrift()
	counts := perEpochCounts(cfg, driftFIDs(t, cfg))
	for p, c := range counts {
		if len(c) == 0 {
			t.Fatalf("epoch %d received no requests", p)
		}
	}
	for p := 1; p < len(counts); p++ {
		overlap, total := 0, 0
		for fid := range counts[p] {
			total++
			if counts[p-1][fid] > 0 {
				overlap++
			}
		}
		if total == 0 {
			continue
		}
		if frac := float64(overlap) / float64(total); frac > 0.5 {
			t.Errorf("epoch %d shares %.0f%% of its hot set with epoch %d; the hot set did not move",
				p, 100*frac, p-1)
		}
	}
}

// topK returns the k most-accessed file ids of one epoch, ties broken by
// id so the ranking is total.
func topK(c map[int]int, k int) []int {
	ids := make([]int, 0, len(c))
	for fid := range c {
		ids = append(ids, fid)
	}
	sort.Slice(ids, func(i, j int) bool {
		if c[ids[i]] != c[ids[j]] {
			return c[ids[i]] > c[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if len(ids) > k {
		ids = ids[:k]
	}
	return ids
}

// TestDriftMetamorphicVolumeScaling: doubling the request volume (same
// seed, same phases) is more evidence about the same per-epoch
// popularity law, so each epoch's ranking must stay anchored: the top
// file under N requests stays inside the top ten under 2N, and the two
// top-five sets share members. (Poisson(10) puts several ids within a
// fraction of a count of the mode, so exact top-1 agreement is sampling
// noise, not a generator property.) This pins "scale sharpens, never
// relocates, the per-epoch hot set" without golden files.
func TestDriftMetamorphicVolumeScaling(t *testing.T) {
	cfg := DefaultDrift()
	cfg.NumRequests = 800
	small := perEpochCounts(cfg, driftFIDs(t, cfg))
	big := cfg
	big.NumRequests = 1600
	large := perEpochCounts(big, driftFIDs(t, big))
	for p := range small {
		if len(small[p]) == 0 || len(large[p]) == 0 {
			t.Fatalf("epoch %d empty under scaling", p)
		}
		want := topK(small[p], 1)[0]
		in10 := false
		for _, fid := range topK(large[p], 10) {
			if fid == want {
				in10 = true
			}
		}
		if !in10 {
			t.Errorf("epoch %d: top file %d under %d requests fell out of the top 10 under %d",
				p, want, cfg.NumRequests, big.NumRequests)
		}
		overlap := 0
		for _, a := range topK(small[p], 5) {
			for _, b := range topK(large[p], 5) {
				if a == b {
					overlap++
				}
			}
		}
		if overlap < 2 {
			t.Errorf("epoch %d: top-5 sets share only %d files across scales", p, overlap)
		}
	}
}

// TestDriftFlashCrowd: inside the flash window roughly FlashBoost of the
// requests must land in the flash set, and outside it none should (the
// phase hot sets live at the bottom of the id space by construction).
func TestDriftFlashCrowd(t *testing.T) {
	cfg := DefaultDrift()
	cfg.FlashStartFrac = 0.5
	cfg.FlashDurFrac = 0.25
	cfg.FlashBoost = 0.6
	cfg.FlashFiles = 8
	fids := driftFIDs(t, cfg)
	lo, hi := cfg.flashSet()
	in, inFlashSet, outFlashSet := 0, 0, 0
	for i, fid := range fids {
		if cfg.inFlash(i) {
			in++
			if fid >= lo && fid < hi {
				inFlashSet++
			}
		} else if fid >= lo && fid < hi {
			outFlashSet++
		}
	}
	if in == 0 {
		t.Fatal("flash window covered no requests")
	}
	frac := float64(inFlashSet) / float64(in)
	if math.Abs(frac-cfg.FlashBoost) > 0.15 {
		t.Errorf("flash set got %.0f%% of in-window requests, want ~%.0f%%", 100*frac, 100*cfg.FlashBoost)
	}
	if outFlashSet != 0 {
		t.Errorf("%d requests hit the flash set outside the flash window", outFlashSet)
	}
}

// TestDriftDiurnalModulation: with diurnal modulation on, inter-arrival
// gaps must swing around the base rate — strictly longer near the crest,
// strictly shorter near the trough — while the mean stays near the base.
func TestDriftDiurnalModulation(t *testing.T) {
	cfg := DefaultDrift()
	cfg.DiurnalPeriodSec = 100
	cfg.DiurnalAmplitude = 0.5
	tr, err := Drift(cfg)
	if err != nil {
		t.Fatal(err)
	}
	longer, shorter := 0, 0
	sum := 0.0
	for i := 1; i < len(tr.Records); i++ {
		gap := tr.Records[i].TimeS - tr.Records[i-1].TimeS
		sum += gap
		if gap > cfg.InterArrival+1e-9 {
			longer++
		}
		if gap < cfg.InterArrival-1e-9 {
			shorter++
		}
	}
	if longer == 0 || shorter == 0 {
		t.Fatalf("diurnal modulation did not move gaps both ways (longer=%d shorter=%d)", longer, shorter)
	}
	mean := sum / float64(len(tr.Records)-1)
	if math.Abs(mean-cfg.InterArrival)/cfg.InterArrival > 0.25 {
		t.Errorf("diurnal mean gap %.3f strays too far from base %.3f", mean, cfg.InterArrival)
	}
}

// TestDriftValidateRejects walks the invalid corners of the config space.
func TestDriftValidateRejects(t *testing.T) {
	mods := map[string]func(*DriftConfig){
		"zero files":          func(c *DriftConfig) { c.NumFiles = 0 },
		"negative requests":   func(c *DriftConfig) { c.NumRequests = -1 },
		"zero mean size":      func(c *DriftConfig) { c.MeanSize = 0 },
		"negative mu":         func(c *DriftConfig) { c.MU = -1 },
		"zero phases":         func(c *DriftConfig) { c.Phases = 0 },
		"negative arrival":    func(c *DriftConfig) { c.InterArrival = -0.1 },
		"flash start 1":       func(c *DriftConfig) { c.FlashStartFrac = 1 },
		"flash dur 2":         func(c *DriftConfig) { c.FlashDurFrac = 2 },
		"flash boost -1":      func(c *DriftConfig) { c.FlashBoost = -1 },
		"flash files over":    func(c *DriftConfig) { c.FlashFiles = c.NumFiles + 1 },
		"negative period":     func(c *DriftConfig) { c.DiurnalPeriodSec = -1 },
		"amplitude 1":         func(c *DriftConfig) { c.DiurnalAmplitude = 1 },
		"amplitude no period": func(c *DriftConfig) { c.DiurnalAmplitude = 0.5; c.DiurnalPeriodSec = 0 },
	}
	for name, mod := range mods {
		cfg := DefaultDrift()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", name)
		}
	}
	if err := DefaultDrift().Validate(); err != nil {
		t.Errorf("DefaultDrift rejected: %v", err)
	}
}
