package workload

import (
	"math"
	"testing"
	"testing/quick"

	"eevfs/internal/trace"
)

func TestSyntheticDefaultsValid(t *testing.T) {
	tr, err := Synthetic(DefaultSynthetic())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if tr.NumFiles() != 1000 || len(tr.Records) != 1000 {
		t.Fatalf("files=%d records=%d, want 1000/1000", tr.NumFiles(), len(tr.Records))
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	cfg := DefaultSynthetic()
	a, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestSyntheticSeedMatters(t *testing.T) {
	cfg := DefaultSynthetic()
	a, _ := Synthetic(cfg)
	cfg.Seed = 99
	b, _ := Synthetic(cfg)
	diff := 0
	for i := range a.Records {
		if a.Records[i].FileID != b.Records[i].FileID {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical file id streams")
	}
}

func TestSyntheticInterArrivalSpacing(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.InterArrival = 0.35
	tr, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Records {
		want := 0.35 * float64(i)
		if math.Abs(r.TimeS-want) > 1e-9 {
			t.Fatalf("record %d at %g, want %g", i, r.TimeS, want)
		}
	}
}

func TestSyntheticZeroDelayAllAtOnce(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.InterArrival = 0
	tr, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration() != 0 {
		t.Fatalf("duration %g, want 0", tr.Duration())
	}
}

func TestSyntheticMUSkew(t *testing.T) {
	// MU=1 should concentrate requests on very few files; MU=1000 should
	// spread them widely.
	cfg := DefaultSynthetic()
	cfg.MU = 1
	low, _ := Synthetic(cfg)
	cfg.MU = 1000
	high, _ := Synthetic(cfg)

	distinct := func(tr *trace.Trace) int {
		seen := map[int]bool{}
		for _, r := range tr.Records {
			seen[r.FileID] = true
		}
		return len(seen)
	}
	dl, dh := distinct(low), distinct(high)
	if dl >= 10 {
		t.Errorf("MU=1 touched %d distinct files, want < 10", dl)
	}
	if dh <= 100 {
		t.Errorf("MU=1000 touched %d distinct files, want > 100", dh)
	}
}

func TestSyntheticFixedSizes(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.MeanSize = 25e6
	tr, _ := Synthetic(cfg)
	for i, sz := range tr.FileSizes {
		if sz != 25e6 {
			t.Fatalf("file %d size %d, want 25e6 (spread=0)", i, sz)
		}
	}
}

func TestSyntheticSizeSpread(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.SizeSpread = 0.5
	tr, _ := Synthetic(cfg)
	varied := false
	for _, sz := range tr.FileSizes {
		lo, hi := int64(0.5*float64(cfg.MeanSize))-1, int64(1.5*float64(cfg.MeanSize))+1
		if sz < lo || sz > hi {
			t.Fatalf("size %d outside [%d,%d]", sz, lo, hi)
		}
		if sz != cfg.MeanSize {
			varied = true
		}
	}
	if !varied {
		t.Fatal("spread=0.5 produced no size variation")
	}
}

func TestSyntheticWriteFraction(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.WriteFraction = 0.3
	cfg.NumRequests = 5000
	tr, _ := Synthetic(cfg)
	writes := 0
	for _, r := range tr.Records {
		if r.Op == trace.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(len(tr.Records))
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("write fraction %g, want ~0.3", frac)
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := []func(*SyntheticConfig){
		func(c *SyntheticConfig) { c.NumFiles = 0 },
		func(c *SyntheticConfig) { c.NumRequests = -1 },
		func(c *SyntheticConfig) { c.MeanSize = 0 },
		func(c *SyntheticConfig) { c.SizeSpread = 1.5 },
		func(c *SyntheticConfig) { c.MU = -1 },
		func(c *SyntheticConfig) { c.InterArrival = -1 },
		func(c *SyntheticConfig) { c.WriteFraction = 2 },
	}
	for i, mod := range bad {
		cfg := DefaultSynthetic()
		mod(&cfg)
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestFoldedPoissonMassSumsToOne(t *testing.T) {
	for _, mu := range []float64{1, 10, 100, 1000} {
		sum := 0.0
		for i := 0; i < 1000; i++ {
			sum += FoldedPoissonMass(mu, 1000, i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("MU=%g folded mass sums to %g", mu, sum)
		}
	}
}

func TestFoldedPoissonMassEdge(t *testing.T) {
	if FoldedPoissonMass(10, 0, 0) != 0 {
		t.Error("n=0 should give 0")
	}
	if FoldedPoissonMass(10, 100, -1) != 0 || FoldedPoissonMass(10, 100, 100) != 0 {
		t.Error("out-of-range id should give 0")
	}
}

// TestTopKCoverageCrossover pins the coverage structure that drives the
// paper's Fig. 3(b): with K=70 of 1000 files, MU <= 100 is essentially
// fully covered while MU = 1000 is only partially covered.
func TestTopKCoverageCrossover(t *testing.T) {
	for _, mu := range []float64{1, 10, 100} {
		if cov := TopKCoverage(mu, 1000, 70); cov < 0.999 {
			t.Errorf("MU=%g coverage %g, want >= 0.999", mu, cov)
		}
	}
	cov1000 := TopKCoverage(1000, 1000, 70)
	if cov1000 > 0.95 || cov1000 < 0.5 {
		t.Errorf("MU=1000 coverage %g, want partial (0.5..0.95)", cov1000)
	}
}

// TestTopKCoverageMonotoneInK pins the Fig. 3(d) structure: more prefetched
// files -> more coverage.
func TestTopKCoverageMonotoneInK(t *testing.T) {
	prev := -1.0
	for _, k := range []int{10, 40, 70, 100} {
		cov := TopKCoverage(1000, 1000, k)
		if cov < prev {
			t.Fatalf("coverage not monotone: K=%d gives %g < %g", k, cov, prev)
		}
		prev = cov
	}
	if c10 := TopKCoverage(1000, 1000, 10); c10 > 0.5 {
		t.Errorf("K=10 coverage %g, want small (paper: 3%% savings)", c10)
	}
}

func TestTopKCoverageFullWhenKEqualsN(t *testing.T) {
	if cov := TopKCoverage(50, 100, 100); cov != 1 {
		t.Errorf("K=N coverage = %g, want 1", cov)
	}
}

func TestEmpiricalCountsMatchFoldedModel(t *testing.T) {
	// The generator's empirical distribution should agree with the
	// analytic folded PMF on aggregate coverage.
	cfg := DefaultSynthetic()
	cfg.NumRequests = 20000
	cfg.MU = 1000
	tr, _ := Synthetic(cfg)
	counts := tr.Counts()
	ranks := trace.RankByCount(counts)
	top := 0
	for i := 0; i < 70; i++ {
		top += counts[ranks[i]]
	}
	empirical := float64(top) / float64(len(tr.Records))
	analytic := TopKCoverage(1000, 1000, 70)
	if math.Abs(empirical-analytic) > 0.05 {
		t.Errorf("empirical top-70 coverage %g vs analytic %g", empirical, analytic)
	}
}

func TestBerkeleyWebDefaults(t *testing.T) {
	tr, err := BerkeleyWeb(DefaultBerkeleyWeb())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Working-set property: every request hits the hot set.
	cfg := DefaultBerkeleyWeb()
	for _, r := range tr.Records {
		if r.FileID >= cfg.WorkingSet {
			t.Fatalf("request to file %d outside working set %d", r.FileID, cfg.WorkingSet)
		}
		if r.Op != trace.Read {
			t.Fatal("web trace must be read-only")
		}
	}
}

func TestBerkeleyWebColdFraction(t *testing.T) {
	cfg := DefaultBerkeleyWeb()
	cfg.ColdFraction = 0.2
	cfg.NumRequests = 5000
	tr, err := BerkeleyWeb(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold := 0
	for _, r := range tr.Records {
		if r.FileID >= cfg.WorkingSet {
			cold++
		}
	}
	frac := float64(cold) / float64(len(tr.Records))
	if math.Abs(frac-0.2) > 0.03 {
		t.Fatalf("cold fraction %g, want ~0.2", frac)
	}
}

func TestBerkeleyWebValidation(t *testing.T) {
	bad := []func(*BerkeleyWebConfig){
		func(c *BerkeleyWebConfig) { c.NumFiles = 0 },
		func(c *BerkeleyWebConfig) { c.WorkingSet = 0 },
		func(c *BerkeleyWebConfig) { c.WorkingSet = c.NumFiles + 1 },
		func(c *BerkeleyWebConfig) { c.ZipfExponent = 0 },
		func(c *BerkeleyWebConfig) { c.ColdFraction = -0.1 },
		func(c *BerkeleyWebConfig) { c.WorkingSet = c.NumFiles; c.ColdFraction = 0.1 },
		func(c *BerkeleyWebConfig) { c.MeanSize = 0 },
		func(c *BerkeleyWebConfig) { c.InterArrival = -1 },
		func(c *BerkeleyWebConfig) { c.NumRequests = -1 },
	}
	for i, mod := range bad {
		cfg := DefaultBerkeleyWeb()
		mod(&cfg)
		if _, err := BerkeleyWeb(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

// Property: generated traces are always valid and have the requested
// shape, across arbitrary parameter corners.
func TestQuickSyntheticAlwaysValid(t *testing.T) {
	f := func(seed uint64, nfRaw, nrRaw uint8, muRaw uint16) bool {
		cfg := SyntheticConfig{
			NumFiles:     int(nfRaw)%200 + 1,
			NumRequests:  int(nrRaw) % 200,
			MeanSize:     1e6,
			MU:           float64(muRaw % 2000),
			InterArrival: 0.1,
			Seed:         seed,
		}
		tr, err := Synthetic(cfg)
		if err != nil {
			return false
		}
		return tr.Validate() == nil && len(tr.Records) == cfg.NumRequests
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSynthetic(b *testing.B) {
	cfg := DefaultSynthetic()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Synthetic(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBerkeleyWeb(b *testing.B) {
	cfg := DefaultBerkeleyWeb()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BerkeleyWeb(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDriftingDefaults(t *testing.T) {
	tr, err := Drifting(DefaultDrifting())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1000 {
		t.Fatalf("records = %d", len(tr.Records))
	}
}

func TestDriftingHotSetMoves(t *testing.T) {
	cfg := DefaultDrifting()
	cfg.Phases = 4
	tr, err := Drifting(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mean file id of the first quarter should be far below the last
	// quarter's (the hot center moves 0 -> 750).
	quarter := len(tr.Records) / 4
	meanOf := func(recs []trace.Record) float64 {
		sum := 0.0
		for _, r := range recs {
			sum += float64(r.FileID)
		}
		return sum / float64(len(recs))
	}
	first := meanOf(tr.Records[:quarter])
	last := meanOf(tr.Records[3*quarter:])
	if last-first < 400 {
		t.Fatalf("hot set barely moved: first-quarter mean %0.f, last %0.f", first, last)
	}
}

func TestDriftingSinglePhaseMatchesStationary(t *testing.T) {
	cfg := DefaultDrifting()
	cfg.Phases = 1
	tr, err := Drifting(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One phase: all ids near Poisson(MU) around 0.
	for _, r := range tr.Records {
		if r.FileID > 100 {
			t.Fatalf("single-phase drift produced far id %d", r.FileID)
		}
	}
}

func TestDriftingValidation(t *testing.T) {
	bad := []func(*DriftingConfig){
		func(c *DriftingConfig) { c.NumFiles = 0 },
		func(c *DriftingConfig) { c.NumRequests = -1 },
		func(c *DriftingConfig) { c.MeanSize = 0 },
		func(c *DriftingConfig) { c.MU = -1 },
		func(c *DriftingConfig) { c.Phases = 0 },
		func(c *DriftingConfig) { c.InterArrival = -1 },
	}
	for i, mod := range bad {
		cfg := DefaultDrifting()
		mod(&cfg)
		if _, err := Drifting(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}
