// Open-loop arrival processes for the live load harness (cmd/eevfsload).
//
// The trace generators above replay a fixed request list with fixed
// inter-arrival gaps — a closed-loop shape: a slow server stretches the
// run instead of building a queue. Saturation behavior (accept backlog,
// worker-cap queueing, recompute stalls) only shows up when requests
// keep arriving on schedule regardless of how the server is doing, so
// the harness draws its inter-arrival gaps from one of these processes
// and measures latency from the *scheduled* arrival time (the wrk2-style
// coordinated-omission correction).
package workload

import (
	"fmt"
	"time"

	"eevfs/internal/rng"
)

// Arrival process names accepted by OpenLoopConfig.Process.
const (
	ProcessPoisson = "poisson" // exponential gaps: memoryless arrivals
	ProcessUniform = "uniform" // constant gaps: a metronome at the offered rate
	ProcessBurst   = "burst"   // two-state MMPP: bursts at BurstFactor×rate
)

// OpenLoopConfig describes one open-loop arrival stream.
type OpenLoopConfig struct {
	// RatePerSec is the offered arrival rate (events per second).
	RatePerSec float64
	// Process selects the inter-arrival law: ProcessPoisson (default when
	// empty), ProcessUniform, or ProcessBurst.
	Process string
	// BurstFactor multiplies the rate while the burst state is on
	// (ProcessBurst only; must be > 1).
	BurstFactor float64
	// BurstFraction is the long-run fraction of time spent in the burst
	// state (ProcessBurst only; in (0,1), and BurstFactor*BurstFraction
	// must stay < 1 so the off state's rate is positive).
	BurstFraction float64
	// BurstMeanSec is the mean dwell time of one burst (ProcessBurst
	// only; default 1s). The off state's mean dwell follows from
	// BurstFraction.
	BurstMeanSec float64
	Seed         uint64
}

// Validate reports the first problem with the configuration.
func (c OpenLoopConfig) Validate() error {
	if c.RatePerSec <= 0 {
		return fmt.Errorf("workload: RatePerSec must be positive, got %g", c.RatePerSec)
	}
	switch c.Process {
	case "", ProcessPoisson, ProcessUniform:
	case ProcessBurst:
		switch {
		case c.BurstFactor <= 1:
			return fmt.Errorf("workload: BurstFactor must be > 1, got %g", c.BurstFactor)
		case c.BurstFraction <= 0 || c.BurstFraction >= 1:
			return fmt.Errorf("workload: BurstFraction must be in (0,1), got %g", c.BurstFraction)
		case c.BurstFactor*c.BurstFraction >= 1:
			return fmt.Errorf("workload: BurstFactor*BurstFraction must be < 1 (off-state rate would be non-positive), got %g",
				c.BurstFactor*c.BurstFraction)
		case c.BurstMeanSec < 0:
			return fmt.Errorf("workload: BurstMeanSec must be non-negative, got %g", c.BurstMeanSec)
		}
	default:
		return fmt.Errorf("workload: unknown arrival process %q (want poisson, uniform, or burst)", c.Process)
	}
	return nil
}

// Arrivals produces the deterministic inter-arrival gaps of one open-loop
// stream. Not safe for concurrent use; the harness gives each client
// goroutine its own Arrivals (the superposition of independent Poisson
// streams at rate R/N is again Poisson at rate R, and for the burst
// process the decorrelated per-client states model independent user
// sessions).
type Arrivals struct {
	cfg OpenLoopConfig
	src *rng.Source

	// Burst-process state: the current state's arrival rate and how much
	// of its dwell remains. Dwells are exponential, so after consuming a
	// partial dwell the remainder is redrawn (memoryless).
	burstOn   bool
	rate      float64 // current state's events/sec
	dwellLeft float64 // seconds remaining in the current state
}

// NewArrivals builds the arrival stream for cfg. The configuration must
// already be valid.
func NewArrivals(cfg OpenLoopConfig) (*Arrivals, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Process == "" {
		cfg.Process = ProcessPoisson
	}
	if cfg.Process == ProcessBurst && cfg.BurstMeanSec == 0 {
		cfg.BurstMeanSec = 1
	}
	a := &Arrivals{cfg: cfg, src: rng.New(cfg.Seed)}
	if cfg.Process == ProcessBurst {
		// Start in the off state with a fresh dwell; the first draws then
		// cover the common case (off most of the time).
		a.burstOn = false
		a.rate = a.offRate()
		a.dwellLeft = a.src.ExpFloat64() * a.offMeanDwell()
	}
	return a, nil
}

// offRate is the off state's arrival rate, chosen so the long-run mean
// rate equals RatePerSec: f*k*R + (1-f)*offRate = R.
func (a *Arrivals) offRate() float64 {
	f, k := a.cfg.BurstFraction, a.cfg.BurstFactor
	return a.cfg.RatePerSec * (1 - f*k) / (1 - f)
}

// offMeanDwell is the off state's mean dwell, fixed by the burst dwell
// and the long-run burst fraction.
func (a *Arrivals) offMeanDwell() float64 {
	f := a.cfg.BurstFraction
	return a.cfg.BurstMeanSec * (1 - f) / f
}

// Next returns the gap between the previous arrival and the next one.
// Gaps are deterministic under a fixed seed.
func (a *Arrivals) Next() time.Duration {
	switch a.cfg.Process {
	case ProcessUniform:
		return secToDur(1 / a.cfg.RatePerSec)
	case ProcessBurst:
		return secToDur(a.nextBurstGap())
	default: // poisson
		return secToDur(a.src.ExpFloat64() / a.cfg.RatePerSec)
	}
}

// nextBurstGap draws one inter-arrival gap from the two-state MMPP,
// advancing through state switches as needed. Within a state, arrivals
// are Poisson at the state's rate; at a switch the pending exponential
// gap is discarded and redrawn at the new rate (both distributions are
// memoryless, so the discarded remainder carries no information).
func (a *Arrivals) nextBurstGap() float64 {
	total := 0.0
	for {
		gap := a.src.ExpFloat64() / a.rate
		if gap <= a.dwellLeft {
			a.dwellLeft -= gap
			return total + gap
		}
		// The state expires before the next arrival: consume the rest of
		// the dwell, switch, and redraw in the new state.
		total += a.dwellLeft
		a.burstOn = !a.burstOn
		if a.burstOn {
			a.rate = a.cfg.RatePerSec * a.cfg.BurstFactor
			a.dwellLeft = a.src.ExpFloat64() * a.cfg.BurstMeanSec
		} else {
			a.rate = a.offRate()
			a.dwellLeft = a.src.ExpFloat64() * a.offMeanDwell()
		}
	}
}

func secToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
