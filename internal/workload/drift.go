package workload

import (
	"fmt"
	"math"

	"eevfs/internal/rng"
	"eevfs/internal/trace"
)

// DriftConfig composes the three drift mechanisms the adaptive-policy
// evaluation exercises, each independently switchable (zero value = off):
//
//   - Phase rotation: the trace is split into Phases equal epochs and the
//     hot set's center moves NumFiles/Phases ids each epoch, exactly like
//     DriftingConfig. Phases=1 keeps the hot set stationary.
//   - Flash crowd: during the window [FlashStartFrac, FlashStartFrac +
//     FlashDurFrac) of the request stream, each request is redirected
//     with probability FlashBoost to a small set of FlashFiles files at
//     the top of the id space — a sudden popularity spike no offline
//     ranking can have seen coming.
//   - Diurnal load: the inter-arrival gap is modulated sinusoidally with
//     period DiurnalPeriodSec and relative amplitude DiurnalAmplitude,
//     so the request rate swells and ebbs the way day/night traffic
//     does. This changes per-disk gap lengths without moving the hot
//     set: the inter-arrival estimator's regime, not the prefetcher's.
//
// The generators compose: a flash crowd can interrupt a phase rotation
// under a diurnal envelope, and every combination is deterministic in
// Seed.
type DriftConfig struct {
	NumFiles     int
	NumRequests  int
	MeanSize     int64   // bytes per file (fixed, like the paper's traces)
	MU           float64 // Poisson popularity spread within a phase
	Phases       int     // popularity epochs (>= 1; 1 = stationary)
	InterArrival float64 // mean seconds between requests

	// Flash crowd (FlashDurFrac = 0 disables it).
	FlashStartFrac float64 // window start, as a fraction of the trace [0,1)
	FlashDurFrac   float64 // window length, as a fraction of the trace [0,1]
	FlashBoost     float64 // in-window redirect probability [0,1]
	FlashFiles     int     // width of the flash set (0 defaults to 8)

	// Diurnal modulation (DiurnalPeriodSec = 0 disables it).
	DiurnalPeriodSec float64 // seconds per full swell/ebb cycle
	DiurnalAmplitude float64 // relative amplitude [0,1)

	Seed uint64
}

// DefaultDrift returns the strong-drift point the adaptive-vs-static
// golden experiment uses: 16 disjoint phase hot sets over 1600 files,
// each ~25 files wide, so a one-shot top-K prefetch is spread across
// sixteen regimes while an online policy only ever needs to track one.
func DefaultDrift() DriftConfig {
	return DriftConfig{
		NumFiles:     1600,
		NumRequests:  1000,
		MeanSize:     10 * 1e6,
		MU:           10,
		Phases:       16,
		InterArrival: 0.7,
		Seed:         1,
	}
}

// Validate reports the first problem with the configuration.
func (c DriftConfig) Validate() error {
	switch {
	case c.NumFiles <= 0:
		return fmt.Errorf("workload: NumFiles must be positive, got %d", c.NumFiles)
	case c.NumRequests < 0:
		return fmt.Errorf("workload: NumRequests must be non-negative, got %d", c.NumRequests)
	case c.MeanSize <= 0:
		return fmt.Errorf("workload: MeanSize must be positive, got %d", c.MeanSize)
	case c.MU < 0:
		return fmt.Errorf("workload: MU must be non-negative, got %g", c.MU)
	case c.Phases <= 0:
		return fmt.Errorf("workload: Phases must be positive, got %d", c.Phases)
	case c.InterArrival < 0:
		return fmt.Errorf("workload: InterArrival must be non-negative, got %g", c.InterArrival)
	case c.FlashStartFrac < 0 || c.FlashStartFrac >= 1:
		return fmt.Errorf("workload: FlashStartFrac must be in [0,1), got %g", c.FlashStartFrac)
	case c.FlashDurFrac < 0 || c.FlashDurFrac > 1:
		return fmt.Errorf("workload: FlashDurFrac must be in [0,1], got %g", c.FlashDurFrac)
	case c.FlashBoost < 0 || c.FlashBoost > 1:
		return fmt.Errorf("workload: FlashBoost must be in [0,1], got %g", c.FlashBoost)
	case c.FlashFiles < 0 || c.FlashFiles > c.NumFiles:
		return fmt.Errorf("workload: FlashFiles %d out of range (0..%d)", c.FlashFiles, c.NumFiles)
	case c.DiurnalPeriodSec < 0:
		return fmt.Errorf("workload: DiurnalPeriodSec must be non-negative, got %g", c.DiurnalPeriodSec)
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1:
		return fmt.Errorf("workload: DiurnalAmplitude must be in [0,1), got %g", c.DiurnalAmplitude)
	case c.DiurnalAmplitude > 0 && c.DiurnalPeriodSec == 0:
		return fmt.Errorf("workload: DiurnalAmplitude requires DiurnalPeriodSec")
	}
	return nil
}

// PhaseOf returns the popularity epoch request index i belongs to, using
// the same equal split as the generator. Tests use it to reconstruct
// per-epoch hot sets without duplicating the arithmetic.
func (c DriftConfig) PhaseOf(i int) int {
	if c.NumRequests == 0 || c.Phases <= 1 {
		return 0
	}
	perPhase := c.NumRequests/c.Phases + 1
	return i / perPhase
}

// flashSet returns the [lo, hi) file-id range of the flash-crowd set.
func (c DriftConfig) flashSet() (lo, hi int) {
	w := c.FlashFiles
	if w == 0 {
		w = 8
	}
	if w > c.NumFiles {
		w = c.NumFiles
	}
	return c.NumFiles - w, c.NumFiles
}

// inFlash reports whether request index i falls in the flash window.
func (c DriftConfig) inFlash(i int) bool {
	if c.FlashDurFrac == 0 || c.FlashBoost == 0 || c.NumRequests == 0 {
		return false
	}
	frac := float64(i) / float64(c.NumRequests)
	return frac >= c.FlashStartFrac && frac < c.FlashStartFrac+c.FlashDurFrac
}

// Drift generates a trace from the composed configuration.
func Drift(cfg DriftConfig) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	sizes := make([]int64, cfg.NumFiles)
	for i := range sizes {
		sizes[i] = cfg.MeanSize
	}
	tr := &trace.Trace{FileSizes: sizes}
	flashLo, flashHi := cfg.flashSet()
	now := 0.0
	for i := 0; i < cfg.NumRequests; i++ {
		var fid int
		if cfg.inFlash(i) && src.Float64() < cfg.FlashBoost {
			fid = flashLo + src.Intn(flashHi-flashLo)
		} else {
			center := cfg.PhaseOf(i) * cfg.NumFiles / cfg.Phases
			fid = (center + src.Poisson(cfg.MU)) % cfg.NumFiles
		}
		tr.Records = append(tr.Records, trace.Record{
			Seq:    int64(i),
			TimeS:  now,
			Op:     trace.Read,
			FileID: fid,
			Size:   sizes[fid],
		})
		gap := cfg.InterArrival
		if cfg.DiurnalPeriodSec > 0 && cfg.DiurnalAmplitude > 0 {
			gap *= 1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*now/cfg.DiurnalPeriodSec)
		}
		now += gap
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid trace: %w", err)
	}
	return tr, nil
}
