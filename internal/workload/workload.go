// Package workload generates the synthetic file-access traces of the
// paper's evaluation (Section V-B, Table II) and a synthetic equivalent of
// the Berkeley web trace (Section VI-D).
//
// The popularity model: the paper feeds the server "a Poisson distribution
// of file requests" with mean MU, where MU=1 "skews the file access
// patterns to a small number of files" and MU=1000 "spreads out the
// distribution of files accessed". We therefore draw the requested file id
// as Poisson(MU) folded into the file-id space (id = X mod NumFiles).
// This reproduces the published coverage crossover: prefetching the top 70
// of 1000 files captures essentially 100 % of the request mass for
// MU <= 100 but only ~74 % for MU = 1000.
package workload

import (
	"fmt"
	"math"
	"sort"

	"eevfs/internal/rng"
	"eevfs/internal/trace"
)

// SyntheticConfig describes one synthetic workload (Table II parameters).
type SyntheticConfig struct {
	NumFiles    int     // total files in the file system (paper: 1000)
	NumRequests int     // requests in the trace (paper: 1000)
	MeanSize    int64   // mean file size in bytes (paper: 1..50 MB)
	SizeSpread  float64 // sizes uniform in mean*(1±spread); 0 = fixed (paper)
	MU          float64 // Poisson popularity parameter (paper: 1..1000)
	// InterArrival is the delay in seconds inserted between consecutive
	// requests (paper: 0..1000 ms, default 700 ms).
	InterArrival float64
	// WriteFraction is the probability a request is a write (paper's
	// synthetic traces are read-only; the write path is exercised by the
	// X4 extension experiment).
	WriteFraction float64
	Seed          uint64
}

// Validate reports the first problem with the configuration.
func (c SyntheticConfig) Validate() error {
	switch {
	case c.NumFiles <= 0:
		return fmt.Errorf("workload: NumFiles must be positive, got %d", c.NumFiles)
	case c.NumRequests < 0:
		return fmt.Errorf("workload: NumRequests must be non-negative, got %d", c.NumRequests)
	case c.MeanSize <= 0:
		return fmt.Errorf("workload: MeanSize must be positive, got %d", c.MeanSize)
	case c.SizeSpread < 0 || c.SizeSpread >= 1:
		return fmt.Errorf("workload: SizeSpread must be in [0,1), got %g", c.SizeSpread)
	case c.MU < 0:
		return fmt.Errorf("workload: MU must be non-negative, got %g", c.MU)
	case c.InterArrival < 0:
		return fmt.Errorf("workload: InterArrival must be non-negative, got %g", c.InterArrival)
	case c.WriteFraction < 0 || c.WriteFraction > 1:
		return fmt.Errorf("workload: WriteFraction must be in [0,1], got %g", c.WriteFraction)
	}
	return nil
}

// DefaultSynthetic returns the paper's default parameter point: 1000 files,
// 1000 requests, 10 MB files, MU 1000, 700 ms inter-arrival, read-only.
func DefaultSynthetic() SyntheticConfig {
	return SyntheticConfig{
		NumFiles:     1000,
		NumRequests:  1000,
		MeanSize:     10 * 1e6,
		MU:           1000,
		InterArrival: 0.7,
		Seed:         1,
	}
}

// Synthetic generates a trace from the configuration.
func Synthetic(cfg SyntheticConfig) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)

	sizes := make([]int64, cfg.NumFiles)
	for i := range sizes {
		sizes[i] = sampleSize(src, cfg.MeanSize, cfg.SizeSpread)
	}

	tr := &trace.Trace{FileSizes: sizes}
	now := 0.0
	for i := 0; i < cfg.NumRequests; i++ {
		fid := src.Poisson(cfg.MU) % cfg.NumFiles
		op := trace.Read
		if cfg.WriteFraction > 0 && src.Float64() < cfg.WriteFraction {
			op = trace.Write
		}
		tr.Records = append(tr.Records, trace.Record{
			Seq:    int64(i),
			TimeS:  now,
			Op:     op,
			FileID: fid,
			Size:   sizes[fid],
		})
		now += cfg.InterArrival
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid trace: %w", err)
	}
	return tr, nil
}

func sampleSize(src *rng.Source, mean int64, spread float64) int64 {
	if spread == 0 {
		return mean
	}
	f := 1 + spread*(2*src.Float64()-1)
	sz := int64(float64(mean) * f)
	if sz < 1 {
		sz = 1
	}
	return sz
}

// FoldedPoissonMass returns the probability that a Poisson(mu) draw folded
// by "mod n" lands on file id. Used by tests and by the prefetch-coverage
// analysis in the experiments package.
func FoldedPoissonMass(mu float64, n, id int) float64 {
	if n <= 0 || id < 0 || id >= n {
		return 0
	}
	// Sum the PMF over k = id, id+n, id+2n, ... out to mu + 20*sqrt(mu),
	// beyond which the residual mass is negligible.
	upper := int(mu + 20*math.Sqrt(mu) + 20)
	total := 0.0
	for k := id; k <= upper; k += n {
		total += rng.PoissonPMF(mu, k)
	}
	return total
}

// TopKCoverage returns the fraction of request mass captured by prefetching
// the k most popular files under the folded-Poisson(mu) model over n files.
func TopKCoverage(mu float64, n, k int) float64 {
	if k >= n {
		return 1
	}
	masses := make([]float64, n)
	for i := range masses {
		masses[i] = FoldedPoissonMass(mu, n, i)
	}
	ranks := rankDesc(masses)
	cov := 0.0
	for i := 0; i < k && i < len(ranks); i++ {
		cov += masses[ranks[i]]
	}
	return cov
}

func rankDesc(v []float64) []int {
	ids := make([]int, len(v))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if v[ids[a]] != v[ids[b]] {
			return v[ids[a]] > v[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids
}

// BerkeleyWebConfig parameterizes the synthetic stand-in for the Berkeley
// web trace. The paper reports the web trace "appeared to be skewed
// towards a smaller subset of data" — small enough that with the default
// prefetch depth of 70 files every data disk stayed in standby for the
// whole trace.
type BerkeleyWebConfig struct {
	NumFiles     int     // files in the file system (1000)
	NumRequests  int     // requests to replay
	WorkingSet   int     // hot files that receive the skewed mass (<= prefetch depth for the paper's effect)
	ZipfExponent float64 // skew within the working set
	// ColdFraction sends this share of requests uniformly to files outside
	// the working set. The paper's observed trace behaves like 0; raising
	// it is the sensitivity knob used by the extension experiments.
	ColdFraction float64
	MeanSize     int64   // the paper fixed data size to 10 MB for Fig. 6
	InterArrival float64 // seconds; the paper tuned this to avoid queueing
	Seed         uint64
}

// DefaultBerkeleyWeb returns the Fig. 6 configuration.
func DefaultBerkeleyWeb() BerkeleyWebConfig {
	return BerkeleyWebConfig{
		NumFiles:     1000,
		NumRequests:  1000,
		WorkingSet:   60,
		ZipfExponent: 1.1,
		ColdFraction: 0,
		MeanSize:     10 * 1e6,
		InterArrival: 0.7,
		Seed:         1,
	}
}

// Validate reports the first problem with the configuration.
func (c BerkeleyWebConfig) Validate() error {
	switch {
	case c.NumFiles <= 0:
		return fmt.Errorf("workload: NumFiles must be positive, got %d", c.NumFiles)
	case c.NumRequests < 0:
		return fmt.Errorf("workload: NumRequests must be non-negative, got %d", c.NumRequests)
	case c.WorkingSet <= 0 || c.WorkingSet > c.NumFiles:
		return fmt.Errorf("workload: WorkingSet %d out of range (1..%d)", c.WorkingSet, c.NumFiles)
	case c.ZipfExponent <= 0:
		return fmt.Errorf("workload: ZipfExponent must be positive, got %g", c.ZipfExponent)
	case c.ColdFraction < 0 || c.ColdFraction > 1:
		return fmt.Errorf("workload: ColdFraction must be in [0,1], got %g", c.ColdFraction)
	case c.ColdFraction > 0 && c.WorkingSet == c.NumFiles:
		return fmt.Errorf("workload: ColdFraction > 0 requires files outside the working set")
	case c.MeanSize <= 0:
		return fmt.Errorf("workload: MeanSize must be positive, got %d", c.MeanSize)
	case c.InterArrival < 0:
		return fmt.Errorf("workload: InterArrival must be non-negative, got %g", c.InterArrival)
	}
	return nil
}

// BerkeleyWeb generates the web-trace-equivalent workload: read-only,
// Zipf-skewed over a small working set.
func BerkeleyWeb(cfg BerkeleyWebConfig) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	zipf := rng.NewZipf(src, cfg.WorkingSet, cfg.ZipfExponent)

	sizes := make([]int64, cfg.NumFiles)
	for i := range sizes {
		sizes[i] = cfg.MeanSize
	}

	tr := &trace.Trace{FileSizes: sizes}
	now := 0.0
	for i := 0; i < cfg.NumRequests; i++ {
		var fid int
		if cfg.ColdFraction > 0 && src.Float64() < cfg.ColdFraction {
			fid = cfg.WorkingSet + src.Intn(cfg.NumFiles-cfg.WorkingSet)
		} else {
			fid = zipf.Sample()
		}
		tr.Records = append(tr.Records, trace.Record{
			Seq:    int64(i),
			TimeS:  now,
			Op:     trace.Read,
			FileID: fid,
			Size:   sizes[fid],
		})
		now += cfg.InterArrival
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid trace: %w", err)
	}
	return tr, nil
}

// DriftingConfig parameterizes a workload whose hot set moves over time:
// the trace is split into equal phases, and in phase p the requested file
// id is (p*NumFiles/Phases + Poisson(MU)) mod NumFiles. A one-shot
// prefetch (the paper's prototype) covers only the first phase; the
// dynamic re-prefetcher (PRE-BUD's "dynamically fetch the most popular
// data") can follow the drift. Used by the ext-dynamic experiment.
type DriftingConfig struct {
	NumFiles     int
	NumRequests  int
	MeanSize     int64
	MU           float64 // popularity spread within a phase
	Phases       int     // number of popularity epochs (>= 1)
	InterArrival float64 // seconds between requests
	Seed         uint64
}

// DefaultDrifting returns a 10-phase drifting workload over the standard
// 1000-file system: each phase's hot set is ~30 files wide (Poisson(20))
// and the phases do not overlap, so a one-shot top-70 prefetch can cover
// at most a couple of phases.
func DefaultDrifting() DriftingConfig {
	return DriftingConfig{
		NumFiles:     1000,
		NumRequests:  1000,
		MeanSize:     10 * 1e6,
		MU:           20,
		Phases:       10,
		InterArrival: 0.7,
		Seed:         1,
	}
}

// Validate reports the first problem with the configuration.
func (c DriftingConfig) Validate() error {
	switch {
	case c.NumFiles <= 0:
		return fmt.Errorf("workload: NumFiles must be positive, got %d", c.NumFiles)
	case c.NumRequests < 0:
		return fmt.Errorf("workload: NumRequests must be non-negative, got %d", c.NumRequests)
	case c.MeanSize <= 0:
		return fmt.Errorf("workload: MeanSize must be positive, got %d", c.MeanSize)
	case c.MU < 0:
		return fmt.Errorf("workload: MU must be non-negative, got %g", c.MU)
	case c.Phases <= 0:
		return fmt.Errorf("workload: Phases must be positive, got %d", c.Phases)
	case c.InterArrival < 0:
		return fmt.Errorf("workload: InterArrival must be non-negative, got %g", c.InterArrival)
	}
	return nil
}

// Drifting generates the phase-shifting trace.
func Drifting(cfg DriftingConfig) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	sizes := make([]int64, cfg.NumFiles)
	for i := range sizes {
		sizes[i] = cfg.MeanSize
	}
	tr := &trace.Trace{FileSizes: sizes}
	perPhase := cfg.NumRequests/cfg.Phases + 1
	now := 0.0
	for i := 0; i < cfg.NumRequests; i++ {
		phase := i / perPhase
		center := phase * cfg.NumFiles / cfg.Phases
		fid := (center + src.Poisson(cfg.MU)) % cfg.NumFiles
		tr.Records = append(tr.Records, trace.Record{
			Seq:    int64(i),
			TimeS:  now,
			Op:     trace.Read,
			FileID: fid,
			Size:   sizes[fid],
		})
		now += cfg.InterArrival
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid trace: %w", err)
	}
	return tr, nil
}
