package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/experiments -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// goldenOptions pins every experiment to a small fixed workload so the
// goldens are fast to regenerate and byte-stable across machines (the
// simulator is deterministic; nothing here depends on wall time).
func goldenOptions() Options {
	return Options{Requests: 120, Seed: 1}
}

// TestGolden renders every registered experiment at a fixed seed and
// compares the output byte-for-byte with testdata/<id>.golden. A diff
// means simulator behavior changed: if the change is intended (a model
// fix, a new column), regenerate with -update and review the diff like
// any other code change; if not, this just caught a regression.
func TestGolden(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tab, err := Run(id, goldenOptions())
			if err != nil {
				t.Fatalf("running %s: %v", id, err)
			}
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden for %s (run with -update to create): %v", id, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from golden.\n--- got ---\n%s\n--- want ---\n%s\n(regenerate with -update if intended)",
					id, buf.String(), want)
			}
		})
	}
}
