package experiments

import (
	"runtime"
	"strings"
	"sync"

	"eevfs/internal/cluster"
	"eevfs/internal/trace"
)

// Parallel sweep engine. Every sweep point and every registered
// experiment is an independent pure function of (config, trace), and
// cluster.Run is fully deterministic, so fanning the simulations out
// over a worker pool cannot change any result — provided each job owns
// its config, traces are only ever read, and results are collected in
// job order rather than completion order. runPoints and RunMany encode
// exactly those rules; the determinism property test holds them to
// byte-identity with the sequential path.

// pointJob is one unit of sweep work: a fully-built workload/config pair
// whose simulation is independent of every other job. Jobs are built
// sequentially — trace generation is cheap and keeps the per-run RNG
// seeding deterministic — and only the cluster.Run invocations fan out.
type pointJob struct {
	Label string
	Value float64
	Cfg   cluster.Config
	Trace *trace.Trace
}

// workers resolves Options.Workers: 0 and 1 mean sequential, n > 1 means
// an n-worker pool, and any negative value means GOMAXPROCS.
func (o Options) workers() int {
	if o.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Workers == 0 {
		return 1
	}
	return o.Workers
}

// runPoints executes the jobs — across a worker pool when Options.Workers
// asks for one — and collects the Points in job order. On failure the
// first error in job order is returned, matching what the sequential
// loop would have reported.
func runPoints(o Options, jobs []pointJob) ([]Point, error) {
	o.Metrics.Counter("experiments.points.total").Add(int64(len(jobs)))
	done := o.Metrics.Counter("experiments.points.done")
	pts := make([]Point, len(jobs))
	errs := make([]error, len(jobs))
	run := func(i int) {
		pts[i], errs[i] = runPoint(jobs[i].Label, jobs[i].Value, jobs[i].Cfg, jobs[i].Trace)
		done.Inc()
	}
	forEach(o.workers(), len(jobs), run)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pts, nil
}

// forEach runs fn(0..n-1), either inline (workers <= 1) or on a pool of
// worker goroutines fed from a shared index channel. fn must write only
// to its own index's slots.
func forEach(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// RunMany executes several registered experiments, fanning them out over
// Options.Workers workers, and returns their tables in the order the ids
// were given — byte-identical to calling Run in a loop. Progress is
// reported through Options.Metrics (experiments.runs.total/done).
func RunMany(ids []string, o Options) ([]Table, error) {
	o.Metrics.Counter("experiments.runs.total").Add(int64(len(ids)))
	done := o.Metrics.Counter("experiments.runs.done")
	tables := make([]Table, len(ids))
	errs := make([]error, len(ids))
	forEach(o.workers(), len(ids), func(i int) {
		tables[i], errs[i] = Run(strings.TrimSpace(ids[i]), o)
		done.Inc()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return tables, nil
}
