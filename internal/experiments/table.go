// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) plus the extension experiments listed in
// DESIGN.md. Each experiment produces a Table that the eevfsbench binary
// renders as text or markdown; the package tests pin the published shapes
// (who wins, by roughly what factor, where the crossovers fall).
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artifact: an id matching the paper
// ("fig3a", "tableI", ...), column headers, string cells, and free-form
// notes (including the paper-reported shape the run is expected to show).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; it panics if the arity does not match the header
// (a harness bug, not runtime input).
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: table %s row has %d cells, want %d", t.ID, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned plain text.
func (t Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the table as a GitHub-flavored markdown section.
func (t Table) Markdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	b.WriteByte('\n')
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtJ renders Joules compactly.
func fmtJ(j float64) string { return fmt.Sprintf("%.3g", j) }

// fmtS renders seconds with millisecond precision.
func fmtS(s float64) string { return fmt.Sprintf("%.3f", s) }

// fmtPct renders a percentage with one decimal.
func fmtPct(p float64) string { return fmt.Sprintf("%.1f%%", p) }
