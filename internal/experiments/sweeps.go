package experiments

import (
	"fmt"
	"math"

	"eevfs/internal/cluster"
	"eevfs/internal/disk"
	"eevfs/internal/telemetry"
	"eevfs/internal/trace"
	"eevfs/internal/workload"
)

// Options scales and seeds an experiment run. The zero value means "the
// paper's parameters"; tests shrink Requests to keep CI fast.
type Options struct {
	// Requests overrides the trace length (paper: 1000).
	Requests int
	// Seed overrides the workload seed (default 1).
	Seed uint64
	// Testbed overrides the cluster shape; nil fields fall back to
	// cluster.DefaultTestbed().
	Testbed *cluster.Config
	// Workers sets the simulation concurrency: 0 or 1 runs sequentially,
	// n > 1 fans cluster.Run invocations over n workers, negative means
	// GOMAXPROCS. Results are byte-identical either way (see parallel.go).
	Workers int
	// Metrics, when set, receives runner progress telemetry
	// (experiments.points.* and experiments.runs.* counters).
	Metrics *telemetry.Registry
}

func (o Options) requests() int {
	if o.Requests > 0 {
		return o.Requests
	}
	return 1000
}

func (o Options) seed() uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

// testbed returns a config with its own Nodes backing array: sweep jobs
// mutate per-node fields after building their config, and parallel jobs
// must never alias each other's (or the caller's) node slice.
func (o Options) testbed() cluster.Config {
	cfg := cluster.DefaultTestbed()
	if o.Testbed != nil {
		cfg = *o.Testbed
		cfg.Nodes = append([]cluster.NodeConfig(nil), cfg.Nodes...)
	}
	return cfg
}

func (o Options) synthetic() workload.SyntheticConfig {
	cfg := workload.DefaultSynthetic()
	cfg.NumRequests = o.requests()
	cfg.Seed = o.seed()
	return cfg
}

// Point is one sweep position with both comparison arms.
type Point struct {
	Label string
	Value float64
	PF    cluster.Result
	NPF   cluster.Result
}

// Sweep is one experiment axis (Figs. 3/4/5 share one sweep per axis).
type Sweep struct {
	Name   string // "data-size", "mu", "delay", "prefetch-count", ...
	Param  string // column header for the swept value
	Points []Point
}

// runPoint simulates both arms for one workload/config pair.
func runPoint(label string, value float64, cfg cluster.Config, tr *trace.Trace) (Point, error) {
	pf, err := cluster.Run(cfg, tr)
	if err != nil {
		return Point{}, fmt.Errorf("experiments: %s PF: %w", label, err)
	}
	npf, err := cluster.Run(cfg.NPF(), tr)
	if err != nil {
		return Point{}, fmt.Errorf("experiments: %s NPF: %w", label, err)
	}
	return Point{Label: label, Value: value, PF: pf, NPF: npf}, nil
}

// DataSizeSweep is the Figs. 3(a)/4(a)/5(a) axis: mean data size in
// {1, 10, 25, 50} MB with MU=1000, K=70, 700 ms inter-arrival.
func DataSizeSweep(o Options) (Sweep, error) {
	var jobs []pointJob
	for _, mb := range []int{1, 10, 25, 50} {
		w := o.synthetic()
		w.MeanSize = int64(mb) * 1e6
		tr, err := workload.Synthetic(w)
		if err != nil {
			return Sweep{}, err
		}
		jobs = append(jobs, pointJob{
			Label: fmt.Sprintf("%dMB", mb), Value: float64(mb),
			Cfg: o.testbed(), Trace: tr,
		})
	}
	pts, err := runPoints(o, jobs)
	if err != nil {
		return Sweep{}, err
	}
	return Sweep{Name: "data-size", Param: "size", Points: pts}, nil
}

// MUSweep is the Figs. 3(b)/4(b)/5(b) axis: MU in {1, 10, 100, 1000} with
// 10 MB files, K=70, 700 ms inter-arrival.
func MUSweep(o Options) (Sweep, error) {
	var jobs []pointJob
	for _, mu := range []float64{1, 10, 100, 1000} {
		w := o.synthetic()
		w.MU = mu
		tr, err := workload.Synthetic(w)
		if err != nil {
			return Sweep{}, err
		}
		jobs = append(jobs, pointJob{
			Label: fmt.Sprintf("%.0f", mu), Value: mu,
			Cfg: o.testbed(), Trace: tr,
		})
	}
	pts, err := runPoints(o, jobs)
	if err != nil {
		return Sweep{}, err
	}
	return Sweep{Name: "mu", Param: "MU", Points: pts}, nil
}

// DelaySweep is the Figs. 3(c)/4(c)/5(c) axis: inter-arrival delay in
// {0, 350, 700, 1000} ms with 10 MB files, MU=1000, K=70.
func DelaySweep(o Options) (Sweep, error) {
	var jobs []pointJob
	for _, ms := range []float64{0, 350, 700, 1000} {
		w := o.synthetic()
		w.InterArrival = ms / 1000
		tr, err := workload.Synthetic(w)
		if err != nil {
			return Sweep{}, err
		}
		jobs = append(jobs, pointJob{
			Label: fmt.Sprintf("%.0fms", ms), Value: ms,
			Cfg: o.testbed(), Trace: tr,
		})
	}
	pts, err := runPoints(o, jobs)
	if err != nil {
		return Sweep{}, err
	}
	return Sweep{Name: "delay", Param: "delay", Points: pts}, nil
}

// PrefetchCountSweep is the Figs. 3(d)/4(d)/5(d) axis: K in
// {10, 40, 70, 100} with 10 MB files, MU=1000, 700 ms inter-arrival.
func PrefetchCountSweep(o Options) (Sweep, error) {
	tr, err := workload.Synthetic(o.synthetic())
	if err != nil {
		return Sweep{}, err
	}
	var jobs []pointJob
	for _, k := range []int{10, 40, 70, 100} {
		cfg := o.testbed()
		cfg.PrefetchCount = k
		jobs = append(jobs, pointJob{
			Label: fmt.Sprintf("%d", k), Value: float64(k), Cfg: cfg, Trace: tr,
		})
	}
	pts, err := runPoints(o, jobs)
	if err != nil {
		return Sweep{}, err
	}
	return Sweep{Name: "prefetch-count", Param: "K", Points: pts}, nil
}

// BerkeleyWebSweep is the Fig. 6 experiment: the web-trace-equivalent
// workload (10 MB data size, K=70).
func BerkeleyWebSweep(o Options) (Sweep, error) {
	w := workload.DefaultBerkeleyWeb()
	w.NumRequests = o.requests()
	w.Seed = o.seed()
	tr, err := workload.BerkeleyWeb(w)
	if err != nil {
		return Sweep{}, err
	}
	pts, err := runPoints(o, []pointJob{{Label: "web", Cfg: o.testbed(), Trace: tr}})
	if err != nil {
		return Sweep{}, err
	}
	return Sweep{Name: "berkeley-web", Param: "trace", Points: pts}, nil
}

// DisksPerNodeSweep is extension X1 (the paper's Section VII claim that
// savings grow as more data disks are added per storage node): data disks
// per node in {1, 2, 4, 8} on the fully-covered MU=100 workload.
func DisksPerNodeSweep(o Options) (Sweep, error) {
	w := o.synthetic()
	w.MU = 100
	tr, err := workload.Synthetic(w)
	if err != nil {
		return Sweep{}, err
	}
	var jobs []pointJob
	for _, nd := range []int{1, 2, 4, 8} {
		cfg := o.testbed() // own Nodes array per job: see Options.testbed
		for i := range cfg.Nodes {
			cfg.Nodes[i].DataDisks = nd
		}
		jobs = append(jobs, pointJob{
			Label: fmt.Sprintf("%d", nd), Value: float64(nd), Cfg: cfg, Trace: tr,
		})
	}
	pts, err := runPoints(o, jobs)
	if err != nil {
		return Sweep{}, err
	}
	return Sweep{Name: "disks-per-node", Param: "data disks", Points: pts}, nil
}

// EnergyTable renders the sweep as a Fig. 3-style energy table.
func (s Sweep) EnergyTable(id, title string, notes ...string) Table {
	t := Table{
		ID: id, Title: title,
		Columns: []string{s.Param, "PF energy (J)", "NPF energy (J)", "savings"},
		Notes:   notes,
	}
	for _, p := range s.Points {
		t.AddRow(p.Label, fmtJ(p.PF.TotalEnergyJ), fmtJ(p.NPF.TotalEnergyJ),
			fmtPct(p.PF.EnergySavingsVs(p.NPF)))
	}
	return t
}

// TransitionsTable renders the sweep as a Fig. 4-style transitions table.
// The wear column extrapolates the worst disk's sleep-cycle rate to the
// years it would take to exhaust a 50k start/stop rating (the paper's
// Section VI-B reliability concern).
func (s Sweep) TransitionsTable(id, title string, notes ...string) Table {
	t := Table{
		ID: id, Title: title,
		Columns: []string{s.Param, "transitions", "spin-ups", "spin-downs", "worst wear (yr)"},
		Notes:   notes,
	}
	for _, p := range s.Points {
		wear := p.PF.WorstWearYears(disk.RatedStartStopCycles)
		wearStr := "inf"
		if !math.IsInf(wear, 1) {
			wearStr = fmt.Sprintf("%.1f", wear)
		}
		t.AddRow(p.Label,
			fmt.Sprintf("%d", p.PF.Transitions),
			fmt.Sprintf("%d", p.PF.SpinUps),
			fmt.Sprintf("%d", p.PF.SpinDowns),
			wearStr)
	}
	return t
}

// ResponseTable renders the sweep as a Fig. 5-style response-time table.
func (s Sweep) ResponseTable(id, title string, notes ...string) Table {
	t := Table{
		ID: id, Title: title,
		Columns: []string{s.Param, "PF resp (s)", "NPF resp (s)", "penalty"},
		Notes:   notes,
	}
	for _, p := range s.Points {
		t.AddRow(p.Label, fmtS(p.PF.Response.Mean), fmtS(p.NPF.Response.Mean),
			fmtPct(p.PF.ResponsePenaltyVs(p.NPF)))
	}
	return t
}
