package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"eevfs/internal/telemetry"
	"eevfs/internal/workload"
)

// The parallel engine's contract (ISSUE 3): fanning simulations over a
// worker pool must be invisible in the results. These tests run every
// registered experiment and every sweep both ways and require deep
// equality — under -race they also prove the fan-out itself is clean.

func TestParallelByteIdenticalAllExperiments(t *testing.T) {
	seq := Options{Requests: 120}
	par := Options{Requests: 120, Workers: 4}
	for _, id := range IDs() {
		a, err := Run(id, seq)
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		b, err := Run(id, par)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: parallel table differs from sequential\nseq: %+v\npar: %+v", id, a, b)
		}
	}
}

func TestParallelByteIdenticalSweeps(t *testing.T) {
	sweeps := []struct {
		name string
		fn   func(Options) (Sweep, error)
	}{
		{"data-size", DataSizeSweep},
		{"mu", MUSweep},
		{"delay", DelaySweep},
		{"prefetch-count", PrefetchCountSweep},
		{"berkeley-web", BerkeleyWebSweep},
		{"disks-per-node", DisksPerNodeSweep},
	}
	for _, sw := range sweeps {
		a, err := sw.fn(Options{Requests: 150})
		if err != nil {
			t.Fatalf("%s sequential: %v", sw.name, err)
		}
		b, err := sw.fn(Options{Requests: 150, Workers: -1})
		if err != nil {
			t.Fatalf("%s parallel: %v", sw.name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: parallel sweep differs from sequential", sw.name)
		}
	}
}

// TestParallelJournalsIdentical attaches an event journal to every job
// and requires the full event timelines — not just the Result summaries
// — to match between the sequential and the pooled run.
func TestParallelJournalsIdentical(t *testing.T) {
	build := func() ([]pointJob, []*telemetry.Journal) {
		var jobs []pointJob
		var journals []*telemetry.Journal
		for _, mu := range []float64{10, 1000} {
			w := Options{Requests: 100}.synthetic()
			w.MU = mu
			tr, err := workload.Synthetic(w)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Options{}.testbed()
			j := &telemetry.Journal{}
			cfg.Journal = j
			jobs = append(jobs, pointJob{
				Label: fmt.Sprintf("mu=%.0f", mu), Value: mu, Cfg: cfg, Trace: tr,
			})
			journals = append(journals, j)
		}
		return jobs, journals
	}

	jobsSeq, jSeq := build()
	ptsSeq, err := runPoints(Options{}, jobsSeq)
	if err != nil {
		t.Fatal(err)
	}
	jobsPar, jPar := build()
	ptsPar, err := runPoints(Options{Workers: 4}, jobsPar)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(ptsSeq, ptsPar) {
		t.Error("parallel Points differ from sequential")
	}
	for i := range jSeq {
		if jSeq[i].Len() == 0 {
			t.Fatalf("job %d: empty journal (instrumentation lost?)", i)
		}
		if !reflect.DeepEqual(jSeq[i].Events(), jPar[i].Events()) {
			t.Errorf("job %d: parallel journal differs from sequential", i)
		}
	}
}

// TestRunManyMatchesRunLoop pins RunMany's ordered collection: the table
// slice must equal a plain sequential Run loop, id for id.
func TestRunManyMatchesRunLoop(t *testing.T) {
	ids := []string{"fig3b", "tableII", "ext-hints", "fig6"}
	o := Options{Requests: 100}
	want := make([]Table, len(ids))
	for i, id := range ids {
		var err error
		want[i], err = Run(id, o)
		if err != nil {
			t.Fatal(err)
		}
	}
	par := o
	par.Workers = 3
	got, err := RunMany(ids, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("RunMany tables differ from sequential Run loop")
	}
}

// TestRunnerProgressTelemetry checks the worker pool reports its
// progress: total and done counters must land at the job count.
func TestRunnerProgressTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	o := Options{Requests: 100, Workers: 2, Metrics: reg}
	if _, err := MUSweep(o); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("experiments.points.total").Value(); got != 4 {
		t.Errorf("points.total = %d, want 4", got)
	}
	if got := reg.Counter("experiments.points.done").Value(); got != 4 {
		t.Errorf("points.done = %d, want 4", got)
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := (Options{}).workers(); got != 1 {
		t.Errorf("zero Workers resolved to %d, want 1", got)
	}
	if got := (Options{Workers: 6}).workers(); got != 6 {
		t.Errorf("Workers=6 resolved to %d", got)
	}
	if got := (Options{Workers: -1}).workers(); got < 1 {
		t.Errorf("negative Workers resolved to %d, want >= 1", got)
	}
}
