package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ASCII bar charts for the figure experiments, so `eevfsbench -plot`
// produces something that reads like the paper's Figs. 3-5: grouped bars
// per sweep point, one group per x-axis value, PF and NPF side by side.

// Series is one plotted line/bar group.
type Series struct {
	Name   string
	Values []float64
}

// Chart is a grouped-bar chart over shared x labels.
type Chart struct {
	Title   string
	Unit    string
	XLabels []string
	Series  []Series
}

// Validate reports structural problems (mismatched lengths).
func (c Chart) Validate() error {
	for _, s := range c.Series {
		if len(s.Values) != len(c.XLabels) {
			return fmt.Errorf("experiments: series %q has %d values for %d labels",
				s.Name, len(s.Values), len(c.XLabels))
		}
	}
	return nil
}

// Render draws the chart with horizontal bars, one group per x label.
func (c Chart) Render(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Title)

	maxVal := 0.0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}

	labelW, nameW := 0, 0
	for _, l := range c.XLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for _, s := range c.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}

	const barW = 46
	for i, label := range c.XLabels {
		for j, s := range c.Series {
			lbl := ""
			if j == 0 {
				lbl = label
			}
			n := int(s.Values[i] / maxVal * barW)
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&b, "%-*s  %-*s |%-*s %s %s\n",
				labelW, lbl, nameW, s.Name, barW, strings.Repeat("#", n),
				strconv.FormatFloat(s.Values[i], 'g', 4, 64), c.Unit)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// EnergyChart builds the Fig. 3-style grouped chart from a sweep.
func (s Sweep) EnergyChart(title string) Chart {
	c := Chart{Title: title, Unit: "J"}
	pf := Series{Name: "PF"}
	npf := Series{Name: "NPF"}
	for _, p := range s.Points {
		c.XLabels = append(c.XLabels, p.Label)
		pf.Values = append(pf.Values, p.PF.TotalEnergyJ)
		npf.Values = append(npf.Values, p.NPF.TotalEnergyJ)
	}
	c.Series = []Series{pf, npf}
	return c
}

// TransitionsChart builds the Fig. 4-style chart from a sweep.
func (s Sweep) TransitionsChart(title string) Chart {
	c := Chart{Title: title, Unit: "transitions"}
	pf := Series{Name: "PF"}
	for _, p := range s.Points {
		c.XLabels = append(c.XLabels, p.Label)
		pf.Values = append(pf.Values, float64(p.PF.Transitions))
	}
	c.Series = []Series{pf}
	return c
}

// ResponseChart builds the Fig. 5-style grouped chart from a sweep.
func (s Sweep) ResponseChart(title string) Chart {
	c := Chart{Title: title, Unit: "s"}
	pf := Series{Name: "PF"}
	npf := Series{Name: "NPF"}
	for _, p := range s.Points {
		c.XLabels = append(c.XLabels, p.Label)
		pf.Values = append(pf.Values, p.PF.Response.Mean)
		npf.Values = append(npf.Values, p.NPF.Response.Mean)
	}
	c.Series = []Series{pf, npf}
	return c
}

// figureCharts maps plottable experiment ids to chart builders over their
// sweep.
var figureCharts = map[string]func(Sweep) Chart{
	"fig3a": func(s Sweep) Chart { return s.EnergyChart("Fig. 3(a) energy vs data size") },
	"fig3b": func(s Sweep) Chart { return s.EnergyChart("Fig. 3(b) energy vs MU") },
	"fig3c": func(s Sweep) Chart { return s.EnergyChart("Fig. 3(c) energy vs inter-arrival delay") },
	"fig3d": func(s Sweep) Chart { return s.EnergyChart("Fig. 3(d) energy vs prefetch count") },
	"fig4a": func(s Sweep) Chart { return s.TransitionsChart("Fig. 4(a) transitions vs data size") },
	"fig4b": func(s Sweep) Chart { return s.TransitionsChart("Fig. 4(b) transitions vs MU") },
	"fig4c": func(s Sweep) Chart { return s.TransitionsChart("Fig. 4(c) transitions vs inter-arrival delay") },
	"fig4d": func(s Sweep) Chart { return s.TransitionsChart("Fig. 4(d) transitions vs prefetch count") },
	"fig5a": func(s Sweep) Chart { return s.ResponseChart("Fig. 5(a) response vs data size") },
	"fig5b": func(s Sweep) Chart { return s.ResponseChart("Fig. 5(b) response vs MU") },
	"fig5c": func(s Sweep) Chart { return s.ResponseChart("Fig. 5(c) response vs inter-arrival delay") },
	"fig5d": func(s Sweep) Chart { return s.ResponseChart("Fig. 5(d) response vs prefetch count") },
	"fig6":  func(s Sweep) Chart { return s.EnergyChart("Fig. 6 energy, Berkeley-web-equivalent trace") },
}

// figureSweeps maps plottable experiment ids to their sweep runners.
var figureSweeps = map[string]func(Options) (Sweep, error){
	"fig3a": DataSizeSweep, "fig4a": DataSizeSweep, "fig5a": DataSizeSweep,
	"fig3b": MUSweep, "fig4b": MUSweep, "fig5b": MUSweep,
	"fig3c": DelaySweep, "fig4c": DelaySweep, "fig5c": DelaySweep,
	"fig3d": PrefetchCountSweep, "fig4d": PrefetchCountSweep, "fig5d": PrefetchCountSweep,
	"fig6": BerkeleyWebSweep,
}

// PlottableIDs lists experiments that can render as charts, in id order.
func PlottableIDs() []string {
	var ids []string
	for _, id := range IDs() {
		if _, ok := figureSweeps[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// Plot runs the experiment's sweep and returns its chart. Unknown or
// non-plottable ids error.
func Plot(id string, o Options) (Chart, error) {
	sweepFn, ok := figureSweeps[id]
	if !ok {
		return Chart{}, fmt.Errorf("experiments: %q is not plottable", id)
	}
	sweep, err := sweepFn(o)
	if err != nil {
		return Chart{}, err
	}
	return figureCharts[id](sweep), nil
}
