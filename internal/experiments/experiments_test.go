package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

// The tests below are the repository's paper-vs-measured gate: each pins a
// shape reported in Section VI of the paper. They run the full-size
// workloads (1000 requests) — the simulator finishes each sweep in tens of
// milliseconds.

func TestFig3aShapePFWinsAtEverySize(t *testing.T) {
	s, err := DataSizeSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		savings := p.PF.EnergySavingsVs(p.NPF)
		if savings <= 5 {
			t.Errorf("size %s: savings %.1f%%, want > 5%%", p.Label, savings)
		}
		if savings > 30 {
			t.Errorf("size %s: savings %.1f%% implausibly high", p.Label, savings)
		}
	}
	// 50 MB inflates the total energy (longer makespan from queueing).
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	if last.NPF.TotalEnergyJ <= first.NPF.TotalEnergyJ {
		t.Errorf("NPF energy at 50MB (%.3g) not above 1MB (%.3g)",
			last.NPF.TotalEnergyJ, first.NPF.TotalEnergyJ)
	}
}

func TestFig3bShapeMUCrossover(t *testing.T) {
	s, err := MUSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// PF energy essentially identical for MU in {1, 10, 100} (all data
	// covered; disks sleep the whole trace) ...
	e1, e10, e100, e1000 := s.Points[0].PF.TotalEnergyJ, s.Points[1].PF.TotalEnergyJ,
		s.Points[2].PF.TotalEnergyJ, s.Points[3].PF.TotalEnergyJ
	for _, pair := range [][2]float64{{e1, e10}, {e10, e100}} {
		if math.Abs(pair[0]-pair[1])/pair[0] > 0.02 {
			t.Errorf("PF energies for small MU differ: %g vs %g", pair[0], pair[1])
		}
	}
	// ... while MU=1000 loses part of the gain.
	s1000 := s.Points[3].PF.EnergySavingsVs(s.Points[3].NPF)
	s100 := s.Points[2].PF.EnergySavingsVs(s.Points[2].NPF)
	if s1000 >= s100 {
		t.Errorf("MU=1000 savings %.1f%% not below MU=100 savings %.1f%%", s1000, s100)
	}
	if e1000 <= e100 {
		t.Errorf("MU=1000 PF energy %g not above MU=100 %g", e1000, e100)
	}
}

func TestFig3cShapeSavingsGrowWithDelayThenLevel(t *testing.T) {
	s, err := DelaySweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	save := make([]float64, len(s.Points))
	for i, p := range s.Points {
		save[i] = p.PF.EnergySavingsVs(p.NPF)
		if save[i] <= 0 {
			t.Errorf("delay %s: non-positive savings %.1f%%", p.Label, save[i])
		}
	}
	// The 700 ms and 1000 ms points beat the 350 ms point; the curve
	// levels off (no more than 2 points of further growth at 1000 ms).
	if save[2] <= save[1] {
		t.Errorf("savings at 700ms (%.1f%%) not above 350ms (%.1f%%)", save[2], save[1])
	}
	if save[3]-save[2] > 2 {
		t.Errorf("savings still growing strongly at 1000ms: %.1f%% -> %.1f%%", save[2], save[3])
	}
}

func TestFig3dShapeSavingsGrowWithK(t *testing.T) {
	s, err := PrefetchCountSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, p := range s.Points {
		sv := p.PF.EnergySavingsVs(p.NPF)
		if sv < prev {
			t.Errorf("savings not monotone in K at %s: %.1f%% < %.1f%%", p.Label, sv, prev)
		}
		prev = sv
	}
	k10 := s.Points[0].PF.EnergySavingsVs(s.Points[0].NPF)
	k100 := s.Points[3].PF.EnergySavingsVs(s.Points[3].NPF)
	if k100-k10 < 2 {
		t.Errorf("K=100 savings %.1f%% not clearly above K=10 %.1f%%", k100, k10)
	}
}

func TestFig4bShapeTransitionCrossover(t *testing.T) {
	s, err := MUSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	nDataDisks := 16 // default testbed: 8 nodes x 2 data disks
	for _, p := range s.Points[:3] {
		// MU <= 100: each data disk sleeps once at the start and stays
		// asleep: exactly one spin-down per disk, no spin-ups.
		if p.PF.Transitions != nDataDisks {
			t.Errorf("MU=%s transitions = %d, want %d (one sleep per disk)",
				p.Label, p.PF.Transitions, nDataDisks)
		}
		if p.PF.SpinUps != 0 {
			t.Errorf("MU=%s spin-ups = %d, want 0", p.Label, p.PF.SpinUps)
		}
	}
	// MU=1000: hundreds of transitions (paper's log-scale jump).
	if tr := s.Points[3].PF.Transitions; tr < 100 {
		t.Errorf("MU=1000 transitions = %d, want hundreds", tr)
	}
}

func TestFig4dShapeK10MaximizesTransitions(t *testing.T) {
	s, err := PrefetchCountSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.MaxInt
	for _, p := range s.Points {
		if p.PF.Transitions > prev {
			t.Errorf("transitions not decreasing in K at %s: %d > %d",
				p.Label, p.PF.Transitions, prev)
		}
		prev = p.PF.Transitions
	}
	if s.Points[0].PF.Transitions < 3*s.Points[3].PF.Transitions {
		t.Errorf("K=10 transitions (%d) not dominating K=100 (%d)",
			s.Points[0].PF.Transitions, s.Points[3].PF.Transitions)
	}
}

func TestFig5aShapePenaltyShrinksWithSize(t *testing.T) {
	s, err := DataSizeSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, p := range s.Points {
		pen := p.PF.ResponsePenaltyVs(p.NPF)
		if pen >= prev {
			t.Errorf("penalty not shrinking at %s: %.1f%% >= %.1f%%", p.Label, pen, prev)
		}
		prev = pen
	}
	// Large relative penalty at 1 MB (paper: 121%), tolerable at 25 MB
	// (paper: 4%).
	if pen := s.Points[0].PF.ResponsePenaltyVs(s.Points[0].NPF); pen < 50 {
		t.Errorf("1MB penalty %.1f%%, want the paper's 'large at small sizes' regime", pen)
	}
	if pen := s.Points[2].PF.ResponsePenaltyVs(s.Points[2].NPF); pen > 50 {
		t.Errorf("25MB penalty %.1f%%, want tolerable (<50%%)", pen)
	}
}

func TestFig5bShapeNoPenaltyWhenDisksSleepWholeTrace(t *testing.T) {
	s, err := MUSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points[:3] {
		if pen := math.Abs(p.PF.ResponsePenaltyVs(p.NPF)); pen > 2 {
			t.Errorf("MU=%s penalty %.1f%%, want ~0", p.Label, pen)
		}
	}
	if pen := s.Points[3].PF.ResponsePenaltyVs(s.Points[3].NPF); pen < 10 {
		t.Errorf("MU=1000 penalty %.1f%%, want visible", pen)
	}
}

func TestFig6ShapeWebTrace(t *testing.T) {
	s, err := BerkeleyWebSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Points[0]
	savings := p.PF.EnergySavingsVs(p.NPF)
	// Paper: ~17%; our calibrated testbed lands ~15%. Accept 12..20.
	if savings < 12 || savings > 20 {
		t.Errorf("web-trace savings %.1f%%, want ~15%% (paper: 17%%)", savings)
	}
	// All data disks stayed in standby for the entire trace.
	if p.PF.SpinUps != 0 {
		t.Errorf("spin-ups = %d, want 0 (disks standby for whole trace)", p.PF.SpinUps)
	}
	if p.PF.HitRatio() != 1 {
		t.Errorf("hit ratio %.3f, want 1.0", p.PF.HitRatio())
	}
}

func TestExtDisksShapeSavingsGrowWithDisks(t *testing.T) {
	s, err := DisksPerNodeSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, p := range s.Points {
		sv := p.PF.EnergySavingsVs(p.NPF)
		if sv <= prev {
			t.Errorf("savings not growing with disks at %s: %.1f%% <= %.1f%%",
				p.Label, sv, prev)
		}
		prev = sv
	}
}

func TestRegistryRunsEveryExperiment(t *testing.T) {
	o := Options{Requests: 120}
	for _, id := range IDs() {
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, o)
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != id {
				t.Errorf("table id %q != %q", tab.ID, id)
			}
			if len(tab.Rows) == 0 {
				t.Error("empty table")
			}
			var text, md bytes.Buffer
			if err := tab.Render(&text); err != nil {
				t.Fatal(err)
			}
			if err := tab.Markdown(&md); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(text.String(), id) || !strings.Contains(md.String(), id) {
				t.Error("rendered output missing experiment id")
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", Options{}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestIDsStableAndComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() returned %d, registry has %d", len(ids), len(Registry))
	}
	if ids[0] != "tableI" || ids[1] != "tableII" {
		t.Errorf("tables should come first: %v", ids[:3])
	}
	// Figures in paper order before extensions.
	figDone := false
	for _, id := range ids[2:] {
		isExt := strings.HasPrefix(id, "ext-")
		if figDone && !isExt {
			t.Errorf("figure %s after extensions", id)
		}
		if isExt {
			figDone = true
		}
	}
}

func TestAddRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	tab := Table{ID: "x", Columns: []string{"a", "b"}}
	tab.AddRow("only-one")
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.requests() != 1000 || o.seed() != 1 {
		t.Errorf("defaults: requests=%d seed=%d", o.requests(), o.seed())
	}
	if err := o.testbed().Validate(); err != nil {
		t.Errorf("default testbed invalid: %v", err)
	}
}

func BenchmarkFig3bSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := MUSweep(Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExtThresholdTradeoff(t *testing.T) {
	tab, err := Run("ext-threshold", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Column 3 is transitions: must fall monotonically as the threshold
	// grows (fewer sleep opportunities pass the gate).
	prev := math.MaxInt
	for _, row := range tab.Rows {
		var tr int
		if _, err := fmt.Sscanf(row[3], "%d", &tr); err != nil {
			t.Fatalf("bad transitions cell %q", row[3])
		}
		if tr > prev {
			t.Fatalf("transitions rose with threshold: %v", tab.Rows)
		}
		prev = tr
	}
}

func TestExtScaleSavingsStable(t *testing.T) {
	w := DefaultTestbedSavingsSpread(t)
	if w > 5 {
		t.Fatalf("savings spread across cluster sizes = %.1f points, want <= 5", w)
	}
}

// DefaultTestbedSavingsSpread runs the scale experiment and returns the
// max-min savings across cluster sizes (helper shared with the test
// above; exported name keeps the call site readable).
func DefaultTestbedSavingsSpread(t *testing.T) float64 {
	t.Helper()
	tab, err := Run("ext-scale", Options{})
	if err != nil {
		t.Fatal(err)
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, row := range tab.Rows {
		var s float64
		if _, err := fmt.Sscanf(row[3], "%f%%", &s); err != nil {
			t.Fatalf("bad savings cell %q", row[3])
		}
		min = math.Min(min, s)
		max = math.Max(max, s)
	}
	return max - min
}
