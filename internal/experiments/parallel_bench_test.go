package experiments

import "testing"

// Sweep wall-clock: sequential vs pooled. The ISSUE 3 acceptance gate
// compares these two in BENCH_parallel.json (≥2x on ≥4 cores; on fewer
// cores the pool degrades gracefully to near-sequential time).

func benchSweep(b *testing.B, workers int) {
	b.Helper()
	o := Options{Requests: 600, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MUSweep(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSequential(b *testing.B) { benchSweep(b, 0) }
func BenchmarkSweepParallel(b *testing.B)   { benchSweep(b, -1) }

func benchRunMany(b *testing.B, workers int) {
	b.Helper()
	ids := []string{"fig3a", "fig3b", "fig3c", "fig3d", "fig6", "ext-disks"}
	o := Options{Requests: 400, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunMany(ids, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunManySequential(b *testing.B) { benchRunMany(b, 0) }
func BenchmarkRunManyParallel(b *testing.B)   { benchRunMany(b, -1) }
