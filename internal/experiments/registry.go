package experiments

import (
	"fmt"
	"math"
	"sort"

	"eevfs/internal/baseline"
	"eevfs/internal/cluster"
	"eevfs/internal/disk"
	"eevfs/internal/workload"
)

// Runner regenerates one experiment artifact.
type Runner func(Options) (Table, error)

// Registry maps experiment ids (the per-experiment index in DESIGN.md) to
// their runners.
var Registry = map[string]Runner{
	"tableI":  TableI,
	"tableII": TableII,
	"fig3a":   fig3a, "fig3b": fig3b, "fig3c": fig3c, "fig3d": fig3d,
	"fig4a": fig4a, "fig4b": fig4b, "fig4c": fig4c, "fig4d": fig4d,
	"fig5a": fig5a, "fig5b": fig5b, "fig5c": fig5c, "fig5d": fig5d,
	"fig6":               fig6,
	"ext-disks":          extDisks,
	"ext-hints":          extHints,
	"ext-baselines":      extBaselines,
	"ext-writes":         extWrites,
	"ext-stripe":         extStripe,
	"ext-dynamic":        extDynamic,
	"ext-threshold":      extThreshold,
	"ext-scale":          extScale,
	"ext-buffers":        extBuffers,
	"ext-adaptive-drift": extAdaptiveDrift,
	"ext-adaptive-flash": extAdaptiveFlash,
	"ext-adaptive-churn": extAdaptiveChurn,
}

// IDs returns all experiment ids in stable presentation order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return orderKey(ids[i]) < orderKey(ids[j]) })
	return ids
}

// orderKey sorts tables first, then figures in paper order, then
// extensions.
func orderKey(id string) string {
	switch {
	case id == "tableI":
		return "0a"
	case id == "tableII":
		return "0b"
	case len(id) > 3 && id[:3] == "fig":
		return "1" + id
	default:
		return "2" + id
	}
}

// Run executes one experiment by id.
func Run(id string, o Options) (Table, error) {
	r, ok := Registry[id]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return r(o)
}

// TableI renders the simulated testbed configuration (the stand-in for the
// paper's Table I).
func TableI(o Options) (Table, error) {
	cfg := o.testbed()
	t := Table{
		ID:    "tableI",
		Title: "Configuration of the simulated cluster storage system",
		Columns: []string{
			"node", "count", "NIC (Mb/s)", "disk model", "disk BW (MB/s)",
			"data disks", "buffer disks",
		},
		Notes: []string{
			"paper: 1 storage server (P4 2.0 GHz, SATA 100 MB/s) + 4 Type 1 + 4 Type 2 storage nodes",
			fmt.Sprintf("node base power %.0f W; disk power parameters in internal/disk/params.go", cfg.NodeBasePowerW),
			fmt.Sprintf("disk idle threshold %.0f s (Table II)", cfg.IdleThresholdSec),
		},
	}
	type key struct {
		link  float64
		model string
		disks int
	}
	counts := map[key]int{}
	var order []key
	for _, n := range cfg.Nodes {
		k := key{n.LinkMbps, n.DataModel.Name, n.DataDisks}
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
	}
	for i, k := range order {
		m := disk.Catalog[k.model]
		t.AddRow(
			fmt.Sprintf("type %d", i+1),
			fmt.Sprintf("%d", counts[k]),
			fmt.Sprintf("%.0f", k.link),
			k.model,
			fmt.Sprintf("%.0f", m.BandwidthMBps),
			fmt.Sprintf("%d", k.disks),
			"1",
		)
	}
	return t, nil
}

// TableII renders the system and workload parameter space (the paper's
// Table II).
func TableII(Options) (Table, error) {
	t := Table{
		ID:      "tableII",
		Title:   "System and workload parameters",
		Columns: []string{"parameter", "values", "default"},
	}
	t.AddRow("Data Size (MB)", "1, 10, 25, 50", "10")
	t.AddRow("File Popularity Rate (MU)", "1, 10, 100, 1000", "1000")
	t.AddRow("Inter-arrival Delay (ms)", "0, 350, 700, 1000", "700")
	t.AddRow("Number of Files to Prefetch", "10, 40, 70, 100", "70")
	t.AddRow("Disk Idle Threshold (s)", "5", "5")
	t.AddRow("Total files", "1000", "1000")
	t.AddRow("Requests per trace", "1000", "1000")
	return t, nil
}

func fig3a(o Options) (Table, error) {
	s, err := DataSizeSweep(o)
	if err != nil {
		return Table{}, err
	}
	return s.EnergyTable("fig3a", "Energy vs data size (PF vs NPF)",
		"paper shape: PF wins at every size; reported gains 11% (1 MB) to 15% (50 MB); 50 MB inflates totals via queueing",
	), nil
}

func fig3b(o Options) (Table, error) {
	s, err := MUSweep(o)
	if err != nil {
		return Table{}, err
	}
	return s.EnergyTable("fig3b", "Energy vs popularity rate MU (PF vs NPF)",
		"paper shape: identical PF energy for MU <= 100 (K=70 covers everything, disks sleep whole trace); smaller gain at MU=1000",
	), nil
}

func fig3c(o Options) (Table, error) {
	s, err := DelaySweep(o)
	if err != nil {
		return Table{}, err
	}
	return s.EnergyTable("fig3c", "Energy vs inter-arrival delay (PF vs NPF)",
		"paper shape: savings grow with delay and level off near 700 ms",
		"absolute energy scales with the run's makespan; the paper's testbed replayed traces of similar wall-clock length across delays",
	), nil
}

func fig3d(o Options) (Table, error) {
	s, err := PrefetchCountSweep(o)
	if err != nil {
		return Table{}, err
	}
	return s.EnergyTable("fig3d", "Energy vs number of files to prefetch (PF vs NPF)",
		"paper shape: K=10 yields only ~3% savings; K >= 40 yields significant savings",
	), nil
}

func fig4a(o Options) (Table, error) {
	s, err := DataSizeSweep(o)
	if err != nil {
		return Table{}, err
	}
	return s.TransitionsTable("fig4a", "Power-state transitions vs data size",
		"paper shape: transitions decrease as data size increases",
	), nil
}

func fig4b(o Options) (Table, error) {
	s, err := MUSweep(o)
	if err != nil {
		return Table{}, err
	}
	return s.TransitionsTable("fig4b", "Power-state transitions vs MU",
		"paper shape: near-minimum transitions for MU <= 100 (one sleep per disk), hundreds at MU=1000",
	), nil
}

func fig4c(o Options) (Table, error) {
	s, err := DelaySweep(o)
	if err != nil {
		return Table{}, err
	}
	return s.TransitionsTable("fig4c", "Power-state transitions vs inter-arrival delay",
		"paper shape: transitions decrease as the delay increases (lighter load, longer windows)",
	), nil
}

func fig4d(o Options) (Table, error) {
	s, err := PrefetchCountSweep(o)
	if err != nil {
		return Table{}, err
	}
	return s.TransitionsTable("fig4d", "Power-state transitions vs number of files to prefetch",
		"paper shape: K=10 produces the most transitions of all tests (paper: 447) for the least savings",
	), nil
}

func fig5a(o Options) (Table, error) {
	s, err := DataSizeSweep(o)
	if err != nil {
		return Table{}, err
	}
	return s.ResponseTable("fig5a", "Response time vs data size (PF vs NPF)",
		"paper shape: penalty shrinks with size (121% at 1 MB, 4% at 25 MB); the paper omits the 50 MB point due to server queueing",
	), nil
}

func fig5b(o Options) (Table, error) {
	s, err := MUSweep(o)
	if err != nil {
		return Table{}, err
	}
	return s.ResponseTable("fig5b", "Response time vs MU (PF vs NPF)",
		"paper shape: virtually no penalty when disks sleep the whole trace (MU <= 100)",
	), nil
}

func fig5c(o Options) (Table, error) {
	s, err := DelaySweep(o)
	if err != nil {
		return Table{}, err
	}
	return s.ResponseTable("fig5c", "Response time vs inter-arrival delay (PF vs NPF)",
		"paper shape: penalty between ~16% and ~37% across delays, tracking the transition counts",
	), nil
}

func fig5d(o Options) (Table, error) {
	s, err := PrefetchCountSweep(o)
	if err != nil {
		return Table{}, err
	}
	return s.ResponseTable("fig5d", "Response time vs number of files to prefetch (PF vs NPF)",
		"paper shape: penalty falls as K grows (fewer misses, fewer wake-ups)",
	), nil
}

func fig6(o Options) (Table, error) {
	s, err := BerkeleyWebSweep(o)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "fig6",
		Title: "Energy on the Berkeley-web-equivalent trace (PF vs NPF)",
		Columns: []string{
			"arm", "energy (J)", "transitions", "hit ratio", "resp (s)",
		},
		Notes: []string{
			"paper: 17% energy savings; all data disks stayed in standby for the whole trace",
			"workload substitution: Zipf-skewed hot set sized under K (see DESIGN.md)",
		},
	}
	p := s.Points[0]
	t.AddRow("PF", fmtJ(p.PF.TotalEnergyJ), fmt.Sprintf("%d", p.PF.Transitions),
		fmtPct(100*p.PF.HitRatio()), fmtS(p.PF.Response.Mean))
	t.AddRow("NPF", fmtJ(p.NPF.TotalEnergyJ), fmt.Sprintf("%d", p.NPF.Transitions),
		fmtPct(100*p.NPF.HitRatio()), fmtS(p.NPF.Response.Mean))
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured savings: %s", fmtPct(p.PF.EnergySavingsVs(p.NPF))))
	return t, nil
}

func extDisks(o Options) (Table, error) {
	s, err := DisksPerNodeSweep(o)
	if err != nil {
		return Table{}, err
	}
	t := s.EnergyTable("ext-disks", "Energy savings vs data disks per node (Section VII claim)",
		"paper claim: savings grow as more disks are added to each storage node",
	)
	return t, nil
}

// extHints compares the three wake/sleep policies on the MU=1000 workload:
// threshold timer only, hint-driven sleeps (paper default), and hints plus
// predictive prewake.
func extHints(o Options) (Table, error) {
	w := o.synthetic()
	tr, err := workload.Synthetic(w)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "ext-hints",
		Title: "Ablation: application hints and prewake (Section IV-C)",
		Columns: []string{
			"policy", "energy (J)", "transitions", "mean resp (s)", "p95 resp (s)",
		},
		Notes: []string{
			"hints sleep disks proactively at predicted window starts; prewake additionally hides the spin-up latency",
		},
	}
	run := func(label string, mod func(*cluster.Config)) error {
		cfg := o.testbed()
		mod(&cfg)
		res, err := cluster.Run(cfg, tr)
		if err != nil {
			return err
		}
		t.AddRow(label, fmtJ(res.TotalEnergyJ), fmt.Sprintf("%d", res.Transitions),
			fmtS(res.Response.Mean), fmtS(res.Response.P95))
		return nil
	}
	if err := run("threshold-only", func(c *cluster.Config) { c.Hints = false }); err != nil {
		return Table{}, err
	}
	if err := run("hints", func(c *cluster.Config) {}); err != nil {
		return Table{}, err
	}
	if err := run("hints+prewake", func(c *cluster.Config) { c.Prewake = true }); err != nil {
		return Table{}, err
	}
	if err := run("npf", func(c *cluster.Config) { *c = c.NPF() }); err != nil {
		return Table{}, err
	}
	return t, nil
}

// extBaselines compares EEVFS against the Section II comparator systems on
// the web-equivalent trace.
func extBaselines(o Options) (Table, error) {
	w := workload.DefaultBerkeleyWeb()
	w.NumRequests = o.requests()
	w.Seed = o.seed()
	tr, err := workload.BerkeleyWeb(w)
	if err != nil {
		return Table{}, err
	}
	comps, err := baseline.RunAll(o.testbed(), tr)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "ext-baselines",
		Title: "Baseline comparison on the web-equivalent trace (Section II)",
		Columns: []string{
			"system", "energy (J)", "savings vs always-on", "transitions",
			"hit ratio", "mean resp (s)",
		},
	}
	ao, _ := baseline.Find(comps, baseline.AlwaysOn)
	for _, c := range comps {
		t.AddRow(string(c.Name), fmtJ(c.Result.TotalEnergyJ),
			fmtPct(c.Result.EnergySavingsVs(ao.Result)),
			fmt.Sprintf("%d", c.Result.Transitions),
			fmtPct(100*c.Result.HitRatio()),
			fmtS(c.Result.Response.Mean))
	}
	return t, nil
}

// extStripe explores the paper's Section VII striping proposal: chunk
// sizes from "off" down to 2 MB on a large-file workload with partial
// coverage, trading response time against idle-window length.
func extStripe(o Options) (Table, error) {
	w := o.synthetic()
	w.MeanSize = 25e6
	tr, err := workload.Synthetic(w)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "ext-stripe",
		Title: "Striping across data disks (Section VII future work)",
		Columns: []string{
			"chunk", "PF energy (J)", "PF resp (s)", "NPF energy (J)",
			"NPF resp (s)", "savings", "transitions",
		},
		Notes: []string{
			"25 MB files, MU=1000, K=70; chunks round-robin over the node's data disks",
			"striping parallelizes miss reads (lower response) but spreads residual load over more spindles",
		},
	}
	for _, chunk := range []int64{0, 10e6, 5e6, 2e6} {
		cfg := o.testbed()
		cfg.StripeChunkBytes = chunk
		pf, err := cluster.Run(cfg, tr)
		if err != nil {
			return Table{}, err
		}
		npf, err := cluster.Run(cfg.NPF(), tr)
		if err != nil {
			return Table{}, err
		}
		label := "off"
		if chunk > 0 {
			label = fmt.Sprintf("%.0fMB", float64(chunk)/1e6)
		}
		t.AddRow(label, fmtJ(pf.TotalEnergyJ), fmtS(pf.Response.Mean),
			fmtJ(npf.TotalEnergyJ), fmtS(npf.Response.Mean),
			fmtPct(pf.EnergySavingsVs(npf)), fmt.Sprintf("%d", pf.Transitions))
	}
	return t, nil
}

// extDynamic contrasts the paper's one-shot prefetch with PRE-BUD-style
// dynamic re-prefetching on a workload whose hot set drifts.
func extDynamic(o Options) (Table, error) {
	w := workload.DefaultDrifting()
	w.NumRequests = o.requests()
	w.Seed = o.seed()
	tr, err := workload.Drifting(w)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "ext-dynamic",
		Title: "Dynamic re-prefetching under popularity drift (PRE-BUD)",
		Columns: []string{
			"policy", "energy (J)", "hit ratio", "transitions", "mean resp (s)",
		},
		Notes: []string{
			fmt.Sprintf("drifting workload: %d phases over %d files, Poisson(%g) hot sets",
				w.Phases, w.NumFiles, w.MU),
			"dynamic = popularity recomputed from a sliding window every 25 requests, buffer refreshed in the background",
		},
	}
	run := func(label string, mod func(*cluster.Config)) error {
		cfg := o.testbed()
		cfg.Hints = false // threshold sleeping for a like-for-like contrast
		mod(&cfg)
		res, err := cluster.Run(cfg, tr)
		if err != nil {
			return err
		}
		t.AddRow(label, fmtJ(res.TotalEnergyJ), fmtPct(100*res.HitRatio()),
			fmt.Sprintf("%d", res.Transitions), fmtS(res.Response.Mean))
		return nil
	}
	if err := run("npf", func(c *cluster.Config) { *c = c.NPF() }); err != nil {
		return Table{}, err
	}
	if err := run("static-prefetch", func(c *cluster.Config) {}); err != nil {
		return Table{}, err
	}
	if err := run("dynamic-prefetch", func(c *cluster.Config) { c.ReprefetchEvery = 25 }); err != nil {
		return Table{}, err
	}
	return t, nil
}

// extWrites exercises the write-buffer area (Section III-C) on a mixed
// read/write workload.
func extWrites(o Options) (Table, error) {
	w := o.synthetic()
	w.MU = 100
	w.WriteFraction = 0.3
	tr, err := workload.Synthetic(w)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "ext-writes",
		Title: "Write buffering in buffer-disk free space (Section III-C)",
		Columns: []string{
			"policy", "energy (J)", "transitions", "write resp (s)",
			"buffered", "direct", "flushed (MB)",
		},
		Notes: []string{
			"30% writes, MU=100; buffered writes are acknowledged after the buffer-disk log append",
		},
	}
	run := func(label string, wb bool) error {
		cfg := o.testbed()
		cfg.WriteBuffer = wb
		res, err := cluster.Run(cfg, tr)
		if err != nil {
			return err
		}
		t.AddRow(label, fmtJ(res.TotalEnergyJ), fmt.Sprintf("%d", res.Transitions),
			fmtS(res.WriteResponse.Mean),
			fmt.Sprintf("%d", res.BufferedWrites),
			fmt.Sprintf("%d", res.DirectWrites),
			fmt.Sprintf("%.0f", float64(res.FlushedBytes)/1e6))
		return nil
	}
	if err := run("write-buffer", true); err != nil {
		return Table{}, err
	}
	if err := run("write-through", false); err != nil {
		return Table{}, err
	}
	return t, nil
}

// extThreshold sweeps the disk idle threshold (Table II fixes it at 5 s;
// the paper notes "the idle threshold can be increased to prevent disks
// from transitioning frequently"). Hints are disabled so the threshold is
// actually the active policy.
func extThreshold(o Options) (Table, error) {
	tr, err := workload.Synthetic(o.synthetic())
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "ext-threshold",
		Title: "Idle-threshold sweep (Section VI-B's tuning remark)",
		Columns: []string{
			"threshold (s)", "energy (J)", "savings", "transitions",
			"worst wear (yr)", "mean resp (s)",
		},
		Notes: []string{
			"MU=1000, K=70, threshold policy (hints off); drive break-even is ~5.6 s",
			"shorter thresholds capture more idle time (this workload's residual gaps are long) at the cost of more transitions; very long thresholds give up most of the savings",
		},
	}
	npf, err := cluster.Run(o.testbed().NPF(), tr)
	if err != nil {
		return Table{}, err
	}
	for _, th := range []float64{1, 2, 5, 10, 20, 60} {
		cfg := o.testbed()
		cfg.Hints = false
		cfg.IdleThresholdSec = th
		res, err := cluster.Run(cfg, tr)
		if err != nil {
			return Table{}, err
		}
		wear := res.WorstWearYears(disk.RatedStartStopCycles)
		wearStr := "inf"
		if !math.IsInf(wear, 1) {
			wearStr = fmt.Sprintf("%.2f", wear)
		}
		t.AddRow(fmt.Sprintf("%.0f", th), fmtJ(res.TotalEnergyJ),
			fmtPct(res.EnergySavingsVs(npf)),
			fmt.Sprintf("%d", res.Transitions), wearStr, fmtS(res.Response.Mean))
	}
	return t, nil
}

// extScale grows the cluster (the paper's Section I scalability claim:
// EEVFS "can provide significant energy savings ... with high I/O
// performance" as node counts grow) while holding the workload fixed.
func extScale(o Options) (Table, error) {
	w := o.synthetic()
	w.MU = 100
	tr, err := workload.Synthetic(w)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "ext-scale",
		Title: "Cluster scaling (Section I scalability claim)",
		Columns: []string{
			"nodes", "PF energy (J)", "NPF energy (J)", "savings",
			"PF resp (s)", "NPF resp (s)",
		},
		Notes: []string{
			"fixed 1000-request MU=100 workload spread over growing clusters (half Type 1, half Type 2)",
			"relative savings hold as the cluster grows; response improves with more spindles",
		},
	}
	base := o.testbed()
	for _, nodes := range []int{2, 4, 8, 16, 32} {
		cfg := base
		cfg.Nodes = make([]cluster.NodeConfig, nodes)
		for i := range cfg.Nodes {
			cfg.Nodes[i] = base.Nodes[0] // Type 1 template
			if i >= nodes/2 {
				cfg.Nodes[i] = base.Nodes[len(base.Nodes)-1] // Type 2 template
			}
		}
		pf, err := cluster.Run(cfg, tr)
		if err != nil {
			return Table{}, err
		}
		npf, err := cluster.Run(cfg.NPF(), tr)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(fmt.Sprintf("%d", nodes), fmtJ(pf.TotalEnergyJ), fmtJ(npf.TotalEnergyJ),
			fmtPct(pf.EnergySavingsVs(npf)), fmtS(pf.Response.Mean), fmtS(npf.Response.Mean))
	}
	return t, nil
}

// extBuffers sweeps the number of buffer disks per node (the BUD
// architecture's m parameter, Section I). Under a burst load the extra
// buffer spindles relieve the buffer-disk bottleneck; under the default
// paced load they only add idle draw — the paper's remark that "you would
// need many data disks to amortize the energy cost of adding an extra
// disk", seen from the m side.
func extBuffers(o Options) (Table, error) {
	t := Table{
		ID:    "ext-buffers",
		Title: "Buffer disks per node (the BUD architecture's m, Section I)",
		Columns: []string{
			"m", "load", "energy (J)", "savings", "mean resp (s)", "p95 resp (s)",
		},
		Notes: []string{
			"MU=100 (fully covered); 'paced' = 700 ms inter-arrival, 'burst' = all requests at t=0",
			"savings are vs the m=1 NPF cluster: extra buffer spindles are pure idle draw unless the load is buffer-bound",
		},
	}
	for _, load := range []struct {
		name  string
		delay float64
	}{{"paced", 0.7}, {"burst", 0}} {
		w := o.synthetic()
		w.MU = 100
		w.InterArrival = load.delay
		tr, err := workload.Synthetic(w)
		if err != nil {
			return Table{}, err
		}
		npf, err := cluster.Run(o.testbed().NPF(), tr)
		if err != nil {
			return Table{}, err
		}
		for _, m := range []int{1, 2, 4} {
			cfg := o.testbed()
			for i := range cfg.Nodes {
				cfg.Nodes[i].BufferDisks = m
			}
			res, err := cluster.Run(cfg, tr)
			if err != nil {
				return Table{}, err
			}
			t.AddRow(fmt.Sprintf("%d", m), load.name, fmtJ(res.TotalEnergyJ),
				fmtPct(res.EnergySavingsVs(npf)), fmtS(res.Response.Mean),
				fmtS(res.Response.P95))
		}
	}
	return t, nil
}
