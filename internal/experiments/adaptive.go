package experiments

import (
	"fmt"

	"eevfs/internal/adaptive"
	"eevfs/internal/cluster"
	"eevfs/internal/workload"
)

// driftAdaptiveParams sizes the churn detector to the drift workload:
// the access window spans half a popularity phase (so a phase change
// floods the window with misses quickly) and the cooldown an eighth of
// the window. Every other knob keeps its production default.
func driftAdaptiveParams(w workload.DriftConfig) *adaptive.Params {
	p := adaptive.Defaults()
	if w.Phases > 0 {
		if half := w.NumRequests / w.Phases / 2; half < p.ChurnWindow {
			p.ChurnWindow = half
		}
	}
	if p.ChurnWindow < 12 {
		p.ChurnWindow = 12
	}
	p.ChurnCooldown = p.ChurnWindow / 8
	return &p
}

// adaptiveArms runs npf / static-prefetch / adaptive on one trace and
// appends a row per arm: the three-way comparison every adaptive
// experiment is built from. Static prefetching keeps its offline
// whole-trace popularity ranking and threshold sleeping (hints off) so
// the contrast isolates the online policy.
func adaptiveArms(t *Table, o Options, w workload.DriftConfig, row func(label string, r cluster.Result) []string) error {
	tr, err := workload.Drift(w)
	if err != nil {
		return err
	}
	run := func(label string, mod func(*cluster.Config)) error {
		cfg := o.testbed()
		cfg.Hints = false
		mod(&cfg)
		res, err := cluster.Run(cfg, tr)
		if err != nil {
			return err
		}
		t.AddRow(row(label, res)...)
		return nil
	}
	if err := run("npf", func(c *cluster.Config) { *c = c.NPF() }); err != nil {
		return err
	}
	if err := run("static-prefetch", func(c *cluster.Config) {}); err != nil {
		return err
	}
	return run("adaptive", func(c *cluster.Config) {
		*c = c.AdaptiveArm()
		c.AdaptiveParams = driftAdaptiveParams(w)
	})
}

// extAdaptiveDrift is the headline adaptive-policy experiment: under
// strong popularity drift the online arm beats not only NPF but the
// static prefetcher, despite the latter's offline whole-trace ranking.
// The drift dynamics (phase length versus churn window, hot-set width
// versus prefetch depth) do not shrink meaningfully, so this experiment
// pins the workload scale and ignores Options.Requests, like the tables.
func extAdaptiveDrift(o Options) (Table, error) {
	w := workload.DefaultDrift()
	w.Seed = o.seed()
	t := Table{
		ID:    "ext-adaptive-drift",
		Title: "Online adaptive policy under popularity drift",
		Columns: []string{
			"policy", "energy (J)", "hit ratio", "transitions",
			"reprefetches", "mean resp (s)",
		},
		Notes: []string{
			fmt.Sprintf("drift workload: %d phases over %d files, Poisson(%g) hot sets, %d requests (fixed scale)",
				w.Phases, w.NumFiles, w.MU, w.NumRequests),
			"adaptive = EWMA-adapted spin-down thresholds + churn-triggered reprefetch, no future knowledge",
			"static-prefetch ranks by offline whole-trace counts; with 16 disjoint hot sets its top-70 spreads thin",
		},
	}
	err := adaptiveArms(&t, o, w, func(label string, r cluster.Result) []string {
		return []string{label, fmtJ(r.TotalEnergyJ), fmtPct(100 * r.HitRatio()),
			fmt.Sprintf("%d", r.Transitions),
			fmt.Sprintf("%d", r.AdaptiveReprefetches), fmtS(r.Response.Mean)}
	})
	if err != nil {
		return Table{}, err
	}
	return t, nil
}

// extAdaptiveFlash adds a flash crowd to the drift workload: midway
// through the trace, half of all requests are redirected to eight files
// nobody had touched before. The offline ranking sees the flash in its
// whole-trace counts (an oracle advantage a real deployment would not
// have); the adaptive arm finds it online via churn.
func extAdaptiveFlash(o Options) (Table, error) {
	w := workload.DefaultDrift()
	w.Seed = o.seed()
	w.FlashStartFrac = 0.5
	w.FlashDurFrac = 0.2
	w.FlashBoost = 0.5
	w.FlashFiles = 8
	t := Table{
		ID:    "ext-adaptive-flash",
		Title: "Flash crowd atop popularity drift",
		Columns: []string{
			"policy", "energy (J)", "hit ratio", "transitions",
			"reprefetches", "mean resp (s)",
		},
		Notes: []string{
			fmt.Sprintf("flash window [%.0f%%, %.0f%%) of the trace redirects %.0f%% of requests to %d files",
				100*w.FlashStartFrac, 100*(w.FlashStartFrac+w.FlashDurFrac), 100*w.FlashBoost, w.FlashFiles),
			"static-prefetch's offline counts include the flash (oracle advantage); adaptive reacts online",
		},
	}
	err := adaptiveArms(&t, o, w, func(label string, r cluster.Result) []string {
		return []string{label, fmtJ(r.TotalEnergyJ), fmtPct(100 * r.HitRatio()),
			fmt.Sprintf("%d", r.Transitions),
			fmt.Sprintf("%d", r.AdaptiveReprefetches), fmtS(r.Response.Mean)}
	})
	if err != nil {
		return Table{}, err
	}
	return t, nil
}

// extAdaptiveChurn sweeps the churn detector's miss-fraction trigger on
// the drift workload: too eager wastes fetch energy on noise, too
// reluctant leaves the buffers serving the previous phase.
func extAdaptiveChurn(o Options) (Table, error) {
	w := workload.DefaultDrift()
	w.Seed = o.seed()
	tr, err := workload.Drift(w)
	if err != nil {
		return Table{}, err
	}
	npf, err := cluster.Run(o.testbed().NPF(), tr)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "ext-adaptive-churn",
		Title: "Churn-trigger sensitivity (re-prefetch miss-fraction threshold)",
		Columns: []string{
			"threshold", "energy (J)", "savings vs npf", "hit ratio",
			"reprefetches", "prefetched files",
		},
		Notes: []string{
			"drift workload as in ext-adaptive-drift; only ChurnThreshold varies",
			"each re-prefetch is bank-gated: it spends only energy the sleeps already saved",
		},
	}
	for _, th := range []float64{0.1, 0.2, 0.3, 0.5, 0.8} {
		cfg := o.testbed().AdaptiveArm()
		p := driftAdaptiveParams(w)
		p.ChurnThreshold = th
		cfg.AdaptiveParams = p
		res, err := cluster.Run(cfg, tr)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(fmt.Sprintf("%.1f", th), fmtJ(res.TotalEnergyJ),
			fmtPct(res.EnergySavingsVs(npf)), fmtPct(100*res.HitRatio()),
			fmt.Sprintf("%d", res.AdaptiveReprefetches),
			fmt.Sprintf("%d", res.PrefetchedFiles))
	}
	return t, nil
}
