package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestPlottableIDsAllResolve(t *testing.T) {
	ids := PlottableIDs()
	if len(ids) != 13 { // fig3a-d, fig4a-d, fig5a-d, fig6
		t.Fatalf("got %d plottable ids: %v", len(ids), ids)
	}
	for _, id := range ids {
		if !strings.HasPrefix(id, "fig") {
			t.Errorf("non-figure id %q plottable", id)
		}
	}
}

func TestPlotRendersEveryFigure(t *testing.T) {
	o := Options{Requests: 80}
	for _, id := range PlottableIDs() {
		t.Run(id, func(t *testing.T) {
			chart, err := Plot(id, o)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := chart.Render(&buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "#") {
				t.Errorf("chart has no bars:\n%s", out)
			}
			if !strings.Contains(out, chart.Unit) {
				t.Errorf("chart missing unit %q", chart.Unit)
			}
		})
	}
}

func TestPlotUnknownID(t *testing.T) {
	if _, err := Plot("tableI", Options{}); err == nil {
		t.Fatal("non-plottable id accepted")
	}
	if _, err := Plot("nope", Options{}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestChartValidate(t *testing.T) {
	c := Chart{
		Title:   "t",
		XLabels: []string{"a", "b"},
		Series:  []Series{{Name: "s", Values: []float64{1}}},
	}
	if err := c.Validate(); err == nil {
		t.Fatal("mismatched series accepted")
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err == nil {
		t.Fatal("Render accepted invalid chart")
	}
}

func TestChartRenderScalesBars(t *testing.T) {
	c := Chart{
		Title:   "scale",
		Unit:    "u",
		XLabels: []string{"lo", "hi"},
		Series:  []Series{{Name: "s", Values: []float64{1, 100}}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	loBar := strings.Count(lines[1], "#")
	hiBar := strings.Count(lines[2], "#")
	if hiBar <= loBar || hiBar < 40 {
		t.Fatalf("bar scaling wrong: lo=%d hi=%d", loBar, hiBar)
	}
}

func TestChartAllZeroValues(t *testing.T) {
	c := Chart{
		Title:   "zeros",
		XLabels: []string{"a"},
		Series:  []Series{{Name: "s", Values: []float64{0}}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err) // must not divide by zero
	}
}
