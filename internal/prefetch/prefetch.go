// Package prefetch implements the centerpiece of EEVFS (Sections III-C and
// IV-B of the paper): choosing which popular files to copy into a buffer
// disk, predicting the idle windows that prefetching opens up on the data
// disks, and estimating whether sleeping through those windows saves
// energy (the PRE-BUD energy prediction model [12]).
package prefetch

import (
	"fmt"
	"sort"

	"eevfs/internal/disk"
	"eevfs/internal/trace"
)

// Select returns the ids of the k most popular files, in descending
// popularity (ties broken by ascending id). If capacity > 0, files are
// taken greedily in popularity order while they fit in the remaining
// buffer-disk capacity; a file that does not fit is skipped (not a hard
// stop), matching a greedy knapsack on popularity.
func Select(counts []int, sizes []int64, k int, capacity int64) ([]int, error) {
	if len(counts) != len(sizes) {
		return nil, fmt.Errorf("prefetch: %d counts vs %d sizes", len(counts), len(sizes))
	}
	if k < 0 {
		return nil, fmt.Errorf("prefetch: negative k %d", k)
	}
	ranks := trace.RankByCount(counts)
	var picked []int
	var used int64
	for _, id := range ranks {
		if len(picked) >= k {
			break
		}
		if counts[id] == 0 {
			// Never prefetch files nobody asked for, even if k allows.
			break
		}
		if capacity > 0 && used+sizes[id] > capacity {
			continue
		}
		picked = append(picked, id)
		used += sizes[id]
	}
	return picked, nil
}

// SelectWindowed ranks files by their access counts over a sliding
// popularity window (the adaptive policy's churn-triggered re-ranking,
// in contrast to Select's whole-trace counts) and returns the ids worth
// fetching: windowed count at least minHits, in descending count order
// with ties broken by ascending id. max > 0 caps the result length.
func SelectWindowed(counts map[int]int, minHits, max int) []int {
	ids := make([]int, 0, len(counts))
	for id, c := range counts {
		if c >= minHits {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if counts[ids[i]] != counts[ids[j]] {
			return counts[ids[i]] > counts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if max > 0 && len(ids) > max {
		ids = ids[:max]
	}
	return ids
}

// Set is a prefetch decision as a membership test.
type Set map[int]bool

// NewSet builds a Set from a slice of file ids.
func NewSet(ids []int) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Interval is a half-open busy period [Start, End) on one disk.
type Interval struct {
	Start, End float64
}

// Window is a predicted idle period [Start, End) on one disk.
type Window struct {
	Start, End float64
}

// Length returns the window duration.
func (w Window) Length() float64 { return w.End - w.Start }

// MergeBusy sorts and coalesces overlapping busy intervals.
func MergeBusy(busy []Interval) []Interval {
	if len(busy) == 0 {
		return nil
	}
	sorted := make([]Interval, len(busy))
	copy(sorted, busy)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	out := sorted[:1]
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// IdleWindows returns the idle gaps between merged busy intervals over
// [0, horizon). Busy time beyond the horizon is clipped.
func IdleWindows(busy []Interval, horizon float64) []Window {
	merged := MergeBusy(busy)
	var windows []Window
	cursor := 0.0
	for _, iv := range merged {
		if iv.Start >= horizon {
			break
		}
		if iv.Start > cursor {
			windows = append(windows, Window{Start: cursor, End: iv.Start})
		}
		if iv.End > cursor {
			cursor = iv.End
		}
	}
	if cursor < horizon {
		windows = append(windows, Window{Start: cursor, End: horizon})
	}
	return windows
}

// PlanSleeps filters idle windows down to the ones worth sleeping through:
// length >= minGap. This is the hint-driven schedule of Section IV-C — the
// node "marks points in time when the data disks should be transitioned to
// the standby state". The paper compares the window against the disk idle
// threshold; callers that want guaranteed savings pass
// max(threshold, model.BreakEvenSec()).
func PlanSleeps(windows []Window, minGap float64) []Window {
	var plan []Window
	for _, w := range windows {
		if w.Length() >= minGap {
			plan = append(plan, w)
		}
	}
	return plan
}

// EstimateEnergy predicts one disk's energy over [0, horizon) given its
// busy intervals and a sleep plan. Outside busy intervals and sleep
// windows the disk idles. Sleep windows pay the spin-down and spin-up
// transitions inside the window (wake is on demand at the window end, so
// the spin-up delay lands at the end of the window; the response-time cost
// of that is modeled by the cluster simulator, not here).
//
// The prediction deliberately ignores queueing — it answers the planning
// question ("is there an opportunity to save energy?", Section IV-C), not
// the measurement question.
func EstimateEnergy(busy []Interval, horizon float64, m disk.Model, plan []Window) float64 {
	merged := MergeBusy(busy)
	activeTime := 0.0
	for _, iv := range merged {
		s, e := iv.Start, iv.End
		if s < 0 {
			s = 0
		}
		if e > horizon {
			e = horizon
		}
		if e > s {
			activeTime += e - s
		}
	}

	sleepTime := 0.0
	transitions := 0
	for _, w := range plan {
		cycle := m.SpinDownSec + m.SpinUpSec
		if w.Length() < cycle {
			continue // physically impossible to complete the cycle
		}
		sleepTime += w.Length()
		transitions++
	}

	idleTime := horizon - activeTime - sleepTime
	if idleTime < 0 {
		idleTime = 0
	}

	energy := activeTime*m.PActive + idleTime*m.PIdle
	for i := 0; i < transitions; i++ {
		energy += m.SpinDownJ + m.SpinUpJ
	}
	// Within each sleep window, the transition latencies replace standby
	// dwell.
	standby := sleepTime - float64(transitions)*(m.SpinDownSec+m.SpinUpSec)
	if standby < 0 {
		standby = 0
	}
	energy += standby * m.PStandby
	// Subtract the standby+transition span double-counted as... nothing:
	// sleepTime was excluded from idleTime already, so the accounting is
	// complete.
	return energy
}

// PredictSavings compares predicted disk energy with and without the sleep
// plan. A non-positive result means "no opportunity to save energy" and
// the node should leave the disk spinning (Section IV-C).
func PredictSavings(busy []Interval, horizon float64, m disk.Model, plan []Window) float64 {
	baseline := EstimateEnergy(busy, horizon, m, nil)
	withPlan := EstimateEnergy(busy, horizon, m, plan)
	return baseline - withPlan
}

// BusyFromAccesses converts predicted access arrival times on one disk
// into busy intervals, assuming each access occupies the disk for the
// given service time. Accesses need not be sorted.
func BusyFromAccesses(times []float64, service float64) []Interval {
	busy := make([]Interval, 0, len(times))
	for _, t := range times {
		busy = append(busy, Interval{Start: t, End: t + service})
	}
	return busy
}

// Plan is the complete per-node prefetch decision the storage server ships
// to a storage node in step 3/4 of the process flow (Fig. 2).
type Plan struct {
	// FileIDs to copy into the buffer disk, most popular first.
	FileIDs []int
	// SleepWindows per data-disk index: the hint-driven standby schedule.
	// Empty when hints are disabled (the node falls back to its idle
	// threshold timer).
	SleepWindows map[int][]Window
}

// Build assembles a Plan for one storage node.
//
//   - localFiles: ids resident on this node, with their data-disk index
//   - globalTopK: the server's global prefetch selection; the node
//     prefetches the intersection with its local files
//   - pattern: per-file predicted access times (the forwarded trace split)
//   - service: predicted per-access service time on a data disk
//   - horizon: end of the prediction horizon (trace duration)
//   - minGap: minimum idle window worth sleeping through
func Build(localFiles map[int]int, globalTopK []int,
	pattern map[int][]float64, service, horizon, minGap float64) Plan {

	plan := Plan{SleepWindows: make(map[int][]Window)}

	prefetched := make(Set)
	for _, id := range globalTopK {
		if _, local := localFiles[id]; local {
			plan.FileIDs = append(plan.FileIDs, id)
			prefetched[id] = true
		}
	}

	// Predicted residual busy time per data disk: accesses to files that
	// were NOT prefetched still hit the data disk.
	busyPerDisk := make(map[int][]Interval)
	for id, dsk := range localFiles {
		if prefetched[id] {
			continue
		}
		busyPerDisk[dsk] = append(busyPerDisk[dsk], BusyFromAccesses(pattern[id], service)...)
	}

	disks := make(map[int]bool)
	for _, dsk := range localFiles {
		disks[dsk] = true
	}
	for dsk := range disks {
		windows := IdleWindows(busyPerDisk[dsk], horizon)
		plan.SleepWindows[dsk] = PlanSleeps(windows, minGap)
	}
	return plan
}
