package prefetch

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"eevfs/internal/disk"
)

func testModel() disk.Model {
	return disk.Model{
		Name: "test", BandwidthMBps: 50, AvgSeekSec: 0.008, AvgRotateSec: 0.004,
		CapacityGB: 80, PActive: 10, PIdle: 6, PStandby: 1,
		SpinUpSec: 2, SpinUpJ: 30, SpinDownSec: 1, SpinDownJ: 8,
	}
}

func TestSelectTopK(t *testing.T) {
	counts := []int{5, 9, 1, 9, 0}
	sizes := []int64{10, 10, 10, 10, 10}
	got, err := Select(counts, sizes, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 0} // 9,9 (tie by id), then 5
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Select = %v, want %v", got, want)
	}
}

func TestSelectSkipsZeroCountFiles(t *testing.T) {
	counts := []int{0, 3, 0}
	sizes := []int64{1, 1, 1}
	got, err := Select(counts, sizes, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Select = %v, want [1] (never prefetch unaccessed files)", got)
	}
}

func TestSelectCapacityGreedy(t *testing.T) {
	counts := []int{10, 9, 8, 7}
	sizes := []int64{60, 50, 30, 20}
	// Capacity 100: take file 0 (60), skip file 1 (would exceed), take
	// file 2 (30), skip file 3? 60+30+20=110 > 100, so skip 3 too... no:
	// after 0 and 2 used=90, file 3 is 20 -> 110 > 100, skipped.
	got, err := Select(counts, sizes, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Select = %v, want [0 2]", got)
	}
}

func TestSelectErrors(t *testing.T) {
	if _, err := Select([]int{1}, []int64{1, 2}, 1, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Select([]int{1}, []int64{1}, -1, 0); err == nil {
		t.Error("negative k accepted")
	}
}

func TestSelectKZero(t *testing.T) {
	got, err := Select([]int{5, 5}, []int64{1, 1}, 0, 0)
	if err != nil || len(got) != 0 {
		t.Errorf("Select k=0 = %v, %v", got, err)
	}
}

func TestNewSet(t *testing.T) {
	s := NewSet([]int{1, 3})
	if !s[1] || !s[3] || s[2] {
		t.Errorf("Set = %v", s)
	}
}

func TestMergeBusy(t *testing.T) {
	busy := []Interval{{5, 7}, {1, 3}, {2, 4}, {10, 11}}
	got := MergeBusy(busy)
	want := []Interval{{1, 4}, {5, 7}, {10, 11}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeBusy = %v, want %v", got, want)
	}
	if MergeBusy(nil) != nil {
		t.Error("MergeBusy(nil) != nil")
	}
}

func TestMergeBusyTouchingIntervals(t *testing.T) {
	got := MergeBusy([]Interval{{1, 2}, {2, 3}})
	if !reflect.DeepEqual(got, []Interval{{1, 3}}) {
		t.Errorf("touching intervals not merged: %v", got)
	}
}

func TestMergeBusyDoesNotMutateInput(t *testing.T) {
	in := []Interval{{5, 6}, {1, 2}}
	MergeBusy(in)
	if in[0] != (Interval{5, 6}) {
		t.Error("MergeBusy mutated its input")
	}
}

func TestIdleWindows(t *testing.T) {
	busy := []Interval{{2, 3}, {6, 8}}
	got := IdleWindows(busy, 10)
	want := []Window{{0, 2}, {3, 6}, {8, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("IdleWindows = %v, want %v", got, want)
	}
}

func TestIdleWindowsNoBusy(t *testing.T) {
	got := IdleWindows(nil, 5)
	if !reflect.DeepEqual(got, []Window{{0, 5}}) {
		t.Errorf("IdleWindows(empty) = %v", got)
	}
}

func TestIdleWindowsBusyPastHorizon(t *testing.T) {
	busy := []Interval{{1, 20}}
	got := IdleWindows(busy, 10)
	want := []Window{{0, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("IdleWindows = %v, want %v", got, want)
	}
}

func TestIdleWindowsBusyStartsAtZero(t *testing.T) {
	busy := []Interval{{0, 2}}
	got := IdleWindows(busy, 10)
	want := []Window{{2, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("IdleWindows = %v, want %v", got, want)
	}
}

func TestPlanSleepsFiltersShortGaps(t *testing.T) {
	windows := []Window{{0, 3}, {5, 20}, {25, 26}}
	got := PlanSleeps(windows, 5)
	want := []Window{{5, 20}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanSleeps = %v, want %v", got, want)
	}
}

func TestEstimateEnergyIdleOnly(t *testing.T) {
	m := testModel()
	got := EstimateEnergy(nil, 100, m, nil)
	if math.Abs(got-600) > 1e-9 { // 100 s * 6 W idle
		t.Errorf("idle-only energy = %g, want 600", got)
	}
}

func TestEstimateEnergyBusyPlusIdle(t *testing.T) {
	m := testModel()
	busy := []Interval{{10, 20}} // 10 s active
	got := EstimateEnergy(busy, 100, m, nil)
	want := 10*10.0 + 90*6.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("energy = %g, want %g", got, want)
	}
}

func TestEstimateEnergySleepWindow(t *testing.T) {
	m := testModel()
	// One 50 s sleep window: 8 + 30 J transitions + 47 s standby at 1 W,
	// remaining 50 s idle at 6 W.
	plan := []Window{{0, 50}}
	got := EstimateEnergy(nil, 100, m, plan)
	want := 8.0 + 30.0 + 47*1.0 + 50*6.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("energy = %g, want %g", got, want)
	}
}

func TestEstimateEnergyIgnoresImpossiblyShortWindows(t *testing.T) {
	m := testModel()
	plan := []Window{{0, 2}} // shorter than spin-down + spin-up = 3 s
	got := EstimateEnergy(nil, 100, m, plan)
	if math.Abs(got-600) > 1e-9 {
		t.Errorf("short window altered energy: %g", got)
	}
}

func TestPredictSavingsPositiveForLongGaps(t *testing.T) {
	m := testModel()
	busy := []Interval{{0, 1}, {200, 201}}
	windows := IdleWindows(busy, 300)
	plan := PlanSleeps(windows, m.BreakEvenSec())
	if s := PredictSavings(busy, 300, m, plan); s <= 0 {
		t.Errorf("savings = %g, want > 0 for a ~200 s gap", s)
	}
}

func TestPredictSavingsNegativeForShortGapSleeps(t *testing.T) {
	m := testModel()
	// Gaps of 4 s each: below break-even (7 s). Force-sleeping them must
	// predict negative savings, which is exactly the "no opportunity"
	// signal of Section IV-C.
	var busy []Interval
	for t0 := 0.0; t0 < 100; t0 += 5 {
		busy = append(busy, Interval{t0, t0 + 1})
	}
	windows := IdleWindows(busy, 100)
	if s := PredictSavings(busy, 100, m, windows); s >= 0 {
		t.Errorf("savings = %g, want < 0 when sleeping sub-break-even gaps", s)
	}
}

func TestBusyFromAccesses(t *testing.T) {
	got := BusyFromAccesses([]float64{1, 5}, 0.5)
	want := []Interval{{1, 1.5}, {5, 5.5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BusyFromAccesses = %v, want %v", got, want)
	}
}

func TestBuildPlan(t *testing.T) {
	localFiles := map[int]int{3: 0, 7: 1, 9: 0} // id -> disk
	globalTopK := []int{7, 100, 3}              // 100 is on another node
	pattern := map[int][]float64{
		3: {10},
		7: {1, 2, 3},
		9: {50},
	}
	plan := Build(localFiles, globalTopK, pattern, 0.5, 100, 5)

	if !reflect.DeepEqual(plan.FileIDs, []int{7, 3}) {
		t.Errorf("FileIDs = %v, want [7 3] (local top-k, popularity order)", plan.FileIDs)
	}
	// Disk 0 holds files 3 (prefetched) and 9 (not). Residual busy on
	// disk 0 is file 9's access at 50. Sleep windows: [0,50) and
	// [50.5,100).
	w0 := plan.SleepWindows[0]
	if len(w0) != 2 || w0[0] != (Window{0, 50}) || w0[1] != (Window{50.5, 100}) {
		t.Errorf("disk 0 windows = %v", w0)
	}
	// Disk 1 holds only file 7, prefetched: whole horizon is idle.
	w1 := plan.SleepWindows[1]
	if len(w1) != 1 || w1[0] != (Window{0, 100}) {
		t.Errorf("disk 1 windows = %v", w1)
	}
}

func TestBuildPlanNoPrefetch(t *testing.T) {
	localFiles := map[int]int{0: 0}
	pattern := map[int][]float64{0: {1, 2, 3}}
	plan := Build(localFiles, nil, pattern, 0.5, 10, 2)
	if len(plan.FileIDs) != 0 {
		t.Errorf("FileIDs = %v, want empty", plan.FileIDs)
	}
	// Busy 1..3.5; windows [3.5,10) passes the 2 s gate, [0,1) does not.
	w := plan.SleepWindows[0]
	if len(w) != 1 || w[0] != (Window{3.5, 10}) {
		t.Errorf("windows = %v", w)
	}
}

// Property: idle windows and merged busy intervals exactly tile the
// horizon — no overlap, no gap.
func TestQuickWindowsTileHorizon(t *testing.T) {
	f := func(raw []uint16) bool {
		var busy []Interval
		for _, r := range raw {
			start := float64(r % 500)
			busy = append(busy, Interval{start, start + float64(r%7) + 0.5})
		}
		const horizon = 600.0
		merged := MergeBusy(busy)
		windows := IdleWindows(busy, horizon)

		total := 0.0
		for _, iv := range merged {
			s, e := iv.Start, math.Min(iv.End, horizon)
			if e > s {
				total += e - s
			}
		}
		for _, w := range windows {
			total += w.Length()
		}
		return math.Abs(total-horizon) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sleeping only through windows >= break-even never predicts
// negative savings.
func TestQuickBreakEvenPlanNeverLoses(t *testing.T) {
	m := testModel()
	f := func(raw []uint16) bool {
		var busy []Interval
		for _, r := range raw {
			start := float64(r % 300)
			busy = append(busy, Interval{start, start + 0.5})
		}
		const horizon = 400.0
		windows := IdleWindows(busy, horizon)
		plan := PlanSleeps(windows, m.BreakEvenSec())
		return PredictSavings(busy, horizon, m, plan) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Select returns at most k distinct in-range ids sorted by
// nonincreasing count.
func TestQuickSelectShape(t *testing.T) {
	f := func(raw []uint8, kRaw uint8) bool {
		counts := make([]int, len(raw))
		sizes := make([]int64, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
			sizes[i] = 1
		}
		k := int(kRaw) % (len(raw) + 1)
		got, err := Select(counts, sizes, k, 0)
		if err != nil {
			return false
		}
		if len(got) > k {
			return false
		}
		seen := map[int]bool{}
		for i, id := range got {
			if id < 0 || id >= len(raw) || seen[id] || counts[id] == 0 {
				return false
			}
			seen[id] = true
			if i > 0 && counts[got[i-1]] < counts[id] {
				return false
			}
		}
		// got must be the top-|got| by count: no excluded file may have a
		// strictly higher count than the least-picked file.
		if len(got) == k && k > 0 {
			minPicked := counts[got[len(got)-1]]
			rest := make([]int, 0)
			for id, c := range counts {
				if !seen[id] {
					rest = append(rest, c)
				}
			}
			sort.Sort(sort.Reverse(sort.IntSlice(rest)))
			if len(rest) > 0 && rest[0] > minPicked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildPlan(b *testing.B) {
	localFiles := make(map[int]int)
	pattern := make(map[int][]float64)
	for i := 0; i < 125; i++ {
		localFiles[i] = i % 2
		pattern[i] = []float64{float64(i), float64(i) + 100}
	}
	topK := make([]int, 70)
	for i := range topK {
		topK[i] = i
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(localFiles, topK, pattern, 0.2, 700, 5)
	}
}
