// Package netmodel models the cluster's network links (Table I: 1 Gb/s
// NICs on Type 1 storage nodes and the server, 100 Mb/s on Type 2 nodes).
//
// Each storage node returns file data to clients over its own NIC
// (Section IV-A step 6: the node "establishes a connection with the client
// and passes the data"), so the link is modeled as a FIFO resource that
// serializes outbound transfers: a transfer enqueued while another is in
// flight starts when the previous one finishes.
package netmodel

import (
	"fmt"

	"eevfs/internal/simtime"
)

// Link is a serialized FIFO network link. Not safe for concurrent use;
// the simulator is single-threaded per run.
type Link struct {
	name       string
	mbps       float64 // megabits per second
	latency    float64 // per-transfer latency in seconds
	busyUntil  simtime.Time
	transfers  int64
	bytesMoved int64
	busyTime   float64
}

// NewLink creates a link with the given capacity in Mb/s and per-transfer
// latency in seconds. It panics on non-positive capacity (a construction
// bug, not runtime input).
func NewLink(name string, mbps, latencySec float64) *Link {
	if mbps <= 0 {
		panic(fmt.Sprintf("netmodel: link %q capacity %g Mb/s", name, mbps))
	}
	if latencySec < 0 {
		panic(fmt.Sprintf("netmodel: link %q negative latency", name))
	}
	return &Link{name: name, mbps: mbps, latency: latencySec}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// TransferTime returns the wire time for size bytes, excluding queueing
// and latency.
func (l *Link) TransferTime(size int64) float64 {
	if size <= 0 {
		return 0
	}
	return float64(size) * 8 / (l.mbps * 1e6)
}

// Reserve enqueues a transfer of size bytes at time now and returns when
// it starts and completes. Transfers are served FIFO in Reserve-call
// order; now must be nondecreasing across calls relative to the
// simulation clock (enforced: panics on time travel).
func (l *Link) Reserve(now simtime.Time, size int64) (start, end simtime.Time) {
	if size < 0 {
		panic(fmt.Sprintf("netmodel: link %q negative transfer size %d", l.name, size))
	}
	start = now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	dur := l.latency + l.TransferTime(size)
	end = start + simtime.Time(dur)
	l.busyUntil = end
	l.transfers++
	l.bytesMoved += size
	l.busyTime += dur
	return start, end
}

// Stats is a snapshot of link usage.
type Stats struct {
	Name       string
	Transfers  int64
	BytesMoved int64
	BusyTime   float64
}

// Stats returns accumulated usage counters.
func (l *Link) Stats() Stats {
	return Stats{Name: l.name, Transfers: l.transfers, BytesMoved: l.bytesMoved, BusyTime: l.busyTime}
}

// Utilization returns busy-time divided by the observation span (0 when
// the span is empty).
func (l *Link) Utilization(span float64) float64 {
	if span <= 0 {
		return 0
	}
	return l.busyTime / span
}
