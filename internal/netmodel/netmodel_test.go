package netmodel

import (
	"math"
	"testing"
	"testing/quick"

	"eevfs/internal/simtime"
)

func TestTransferTime(t *testing.T) {
	l := NewLink("gig", 1000, 0) // 1 Gb/s = 125 MB/s
	// 125 MB should take exactly 1 s.
	if got := l.TransferTime(125e6); math.Abs(got-1) > 1e-12 {
		t.Fatalf("TransferTime = %g, want 1", got)
	}
	if l.TransferTime(0) != 0 || l.TransferTime(-1) != 0 {
		t.Fatal("zero/negative size should cost 0")
	}
}

func TestFastEthernetSlower(t *testing.T) {
	fast := NewLink("fe", 100, 0)
	gig := NewLink("ge", 1000, 0)
	if fast.TransferTime(1e6) <= gig.TransferTime(1e6) {
		t.Fatal("100 Mb/s should be slower than 1 Gb/s")
	}
}

func TestReserveIdleLink(t *testing.T) {
	l := NewLink("l", 100, 0.001)
	start, end := l.Reserve(5, 125e3) // 125 kB at 12.5 MB/s = 10 ms
	if start != 5 {
		t.Fatalf("start = %v, want 5", start)
	}
	if want := simtime.Time(5 + 0.001 + 0.01); math.Abs(float64(end-want)) > 1e-9 {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestReserveSerializesFIFO(t *testing.T) {
	l := NewLink("l", 1000, 0)
	_, end1 := l.Reserve(0, 125e6) // 1 s transfer
	start2, end2 := l.Reserve(0.5, 125e6)
	if start2 != end1 {
		t.Fatalf("second transfer starts at %v, want %v (after first)", start2, end1)
	}
	if math.Abs(float64(end2-2)) > 1e-9 {
		t.Fatalf("end2 = %v, want 2", end2)
	}
}

func TestReserveAfterIdleGap(t *testing.T) {
	l := NewLink("l", 1000, 0)
	l.Reserve(0, 125e6)
	start, _ := l.Reserve(10, 125e6)
	if start != 10 {
		t.Fatalf("start after gap = %v, want 10", start)
	}
}

func TestReserveZeroBytes(t *testing.T) {
	l := NewLink("l", 1000, 0.002)
	start, end := l.Reserve(1, 0)
	if start != 1 || math.Abs(float64(end)-1.002) > 1e-9 {
		t.Fatalf("zero-byte reserve = [%v,%v]", start, end)
	}
}

func TestStatsAndUtilization(t *testing.T) {
	l := NewLink("l", 1000, 0)
	l.Reserve(0, 125e6)
	l.Reserve(0, 125e6)
	st := l.Stats()
	if st.Transfers != 2 || st.BytesMoved != 250e6 {
		t.Fatalf("Stats = %+v", st)
	}
	if got := l.Utilization(4); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Utilization = %g, want 0.5", got)
	}
	if l.Utilization(0) != 0 {
		t.Fatal("Utilization over empty span should be 0")
	}
	if st.Name != "l" || l.Name() != "l" {
		t.Fatal("name mismatch")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLink("bad", 0, 0) },
		func() { NewLink("bad", -1, 0) },
		func() { NewLink("bad", 10, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid link accepted")
				}
			}()
			fn()
		}()
	}
}

func TestNegativeSizePanics(t *testing.T) {
	l := NewLink("l", 10, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative size accepted")
		}
	}()
	l.Reserve(0, -1)
}

// Property: transfers never overlap and preserve FIFO order.
func TestQuickNoOverlap(t *testing.T) {
	f := func(raw []uint16) bool {
		l := NewLink("l", 100, 0.001)
		now := simtime.Time(0)
		var prevEnd simtime.Time
		for _, r := range raw {
			now += simtime.Time(float64(r%100) / 1000)
			start, end := l.Reserve(now, int64(r)*1000)
			if start < now || start < prevEnd || end < start {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReserve(b *testing.B) {
	l := NewLink("l", 1000, 0.0001)
	for i := 0; i < b.N; i++ {
		l.Reserve(simtime.Time(i), 1e6)
	}
}
