// Package rng provides a deterministic pseudo-random number generator and
// the distribution samplers used by the EEVFS workload generators.
//
// The simulator must be bit-reproducible across runs and Go releases, so we
// do not use math/rand (whose stream is not guaranteed stable across
// versions). The core generator is xoshiro256**, seeded via splitmix64,
// following the reference implementations by Blackman and Vigna.
package rng

import "math"

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed. Any seed value, including
// zero, produces a well-distributed state via splitmix64 expansion.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed resets the generator state deterministically from seed.
func (r *Source) Seed(seed uint64) {
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling would be faster, but
	// plain rejection keeps the stream layout obvious and is already cheap.
	bound := uint64(n)
	threshold := (-bound) % bound // 2^64 mod n
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63n returns a uniformly distributed integer in [0, n) for int64 bounds.
func (r *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int64(v % bound)
		}
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1), via inverse transform sampling.
func (r *Source) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method (deterministic given the source stream).
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Poisson returns a Poisson(mu) variate. For small mu it uses Knuth's
// product-of-uniforms method; for large mu it uses the PTRS transformed
// rejection method of Hörmann (1993), which is exact and O(1).
func (r *Source) Poisson(mu float64) int {
	switch {
	case mu <= 0:
		return 0
	case mu < 30:
		return r.poissonKnuth(mu)
	default:
		return r.poissonPTRS(mu)
	}
}

func (r *Source) poissonKnuth(mu float64) int {
	limit := math.Exp(-mu)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// poissonPTRS implements W. Hörmann, "The transformed rejection method for
// generating Poisson random variables", Insurance: Mathematics and
// Economics 12 (1993). Valid for mu >= 10.
func (r *Source) poissonPTRS(mu float64) int {
	smu := math.Sqrt(mu)
	b := 0.931 + 2.53*smu
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMu := math.Log(mu)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mu + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lhs := math.Log(v * invAlpha / (a/(us*us) + b))
		rhs := k*logMu - mu - logGamma(k+1)
		if lhs <= rhs {
			return int(k)
		}
	}
}

// logGamma is a thin wrapper around math.Lgamma that discards the sign
// (the argument is always positive here).
func logGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the CDF once, so sampling is O(log n).
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with exponent s > 0.
// It panics if n <= 0 or s <= 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with n <= 0")
	}
	if s <= 0 {
		panic("rng: NewZipf called with s <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against floating-point shortfall
	return &Zipf{src: src, cdf: cdf}
}

// N returns the number of items in the sampler's support.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one rank in [0, n), with rank 0 the most probable.
func (z *Zipf) Sample() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of the given rank.
func (z *Zipf) Prob(rank int) float64 {
	if rank < 0 || rank >= len(z.cdf) {
		return 0
	}
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}

// PoissonPMF returns the Poisson(mu) probability mass at k, computed in log
// space for numerical stability. Used by the workload layer to rank file
// popularity exactly (not empirically).
func PoissonPMF(mu float64, k int) float64 {
	if k < 0 || mu < 0 {
		return 0
	}
	if mu == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	return math.Exp(float64(k)*math.Log(mu) - mu - logGamma(float64(k)+1))
}
