package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministicStream(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int64{1, 5, 1 << 40} {
		for i := 0; i < 200; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %g", i, c, want)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %g", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %g, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(19)
	const draws = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mu := range []float64{0.5, 1, 10, 100, 1000} {
		r := New(23)
		const draws = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			v := float64(r.Poisson(mu))
			if v < 0 {
				t.Fatalf("Poisson(%g) returned negative %g", mu, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / draws
		variance := sumSq/draws - mean*mean
		// Poisson has mean == variance == mu. Allow 5 sigma of the
		// estimator error plus 1% slack.
		tol := 5*math.Sqrt(mu/draws) + 0.01*mu
		if math.Abs(mean-mu) > tol {
			t.Errorf("Poisson(%g) mean = %g, want within %g", mu, mean, tol)
		}
		if math.Abs(variance-mu) > 0.05*mu+1 {
			t.Errorf("Poisson(%g) variance = %g, want ~%g", mu, variance, mu)
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	r := New(29)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-5); got != 0 {
		t.Errorf("Poisson(-5) = %d, want 0", got)
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, mu := range []float64{1, 10, 100, 1000} {
		sum := 0.0
		// Sum far enough into the tail for the mass to be ~1.
		upper := int(mu + 20*math.Sqrt(mu) + 20)
		for k := 0; k <= upper; k++ {
			p := PoissonPMF(mu, k)
			if p < 0 || p > 1 {
				t.Fatalf("PMF(%g,%d) = %g out of [0,1]", mu, k, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("PMF(%g) sums to %g, want 1", mu, sum)
		}
	}
}

func TestPoissonPMFMode(t *testing.T) {
	// The mode of Poisson(mu) is floor(mu); PMF should peak there.
	for _, mu := range []float64{10, 100, 1000} {
		mode := int(mu)
		pm := PoissonPMF(mu, mode)
		if PoissonPMF(mu, mode-5) > pm || PoissonPMF(mu, mode+5) > pm {
			t.Errorf("PMF(%g) not peaked at mode %d", mu, mode)
		}
	}
}

func TestPoissonPMFEdge(t *testing.T) {
	if got := PoissonPMF(0, 0); got != 1 {
		t.Errorf("PMF(0,0) = %g, want 1", got)
	}
	if got := PoissonPMF(0, 3); got != 0 {
		t.Errorf("PMF(0,3) = %g, want 0", got)
	}
	if got := PoissonPMF(5, -1); got != 0 {
		t.Errorf("PMF(5,-1) = %g, want 0", got)
	}
}

func TestZipfRanksSkewed(t *testing.T) {
	src := New(31)
	z := NewZipf(src, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Sample()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[50] {
		t.Fatalf("Zipf counts not monotonically skewed: c0=%d c10=%d c50=%d",
			counts[0], counts[10], counts[50])
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(New(1), 1000, 0.8)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf probs sum to %g", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(z.N()) != 0 {
		t.Fatal("Zipf.Prob out-of-range should be 0")
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {10, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %g) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(New(1), tc.n, tc.s)
		}()
	}
}

// Property: Intn output is always within bounds regardless of seed and n.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds give identical Poisson streams (determinism of
// the composite samplers, not just the raw generator).
func TestQuickPoissonDeterministic(t *testing.T) {
	f := func(seed uint64, muRaw uint16) bool {
		mu := float64(muRaw%2000) + 0.5
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Poisson(mu) != b.Poisson(mu) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkPoissonSmallMu(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(10)
	}
}

func BenchmarkPoissonLargeMu(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(1000)
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(New(1), 1000, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample()
	}
}
