package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer returns the address of a TCP echo server that lives until
// the test ends.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

func TestCleanPassThrough(t *testing.T) {
	addr := echoServer(t)
	nw := New(1)
	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello eevfs")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
}

func TestLatencyInjection(t *testing.T) {
	addr := echoServer(t)
	nw := New(1)
	nw.SetFault(addr, Fault{Latency: 50 * time.Millisecond})
	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	// One write + at least one read, each padded by the injected latency.
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 100ms of injected latency", elapsed)
	}
}

func TestBandwidthCap(t *testing.T) {
	addr := echoServer(t)
	nw := New(1)
	nw.SetFault(addr, Fault{BandwidthBps: 64 * 1024})
	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := make([]byte, 16*1024) // 16KiB at 64KiB/s = 250ms
	start := time.Now()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("16KiB at 64KiB/s took %v, want >= ~250ms", elapsed)
	}
}

func TestRefuseDialsBudget(t *testing.T) {
	addr := echoServer(t)
	nw := New(1)
	nw.SetFault(addr, Fault{RefuseDials: 2})
	for i := 0; i < 2; i++ {
		if _, err := nw.Dial(addr, time.Second); err == nil {
			t.Fatalf("dial %d succeeded, want injected refusal", i)
		}
	}
	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial after budget exhausted: %v", err)
	}
	conn.Close()
}

func TestRefuseAllDials(t *testing.T) {
	addr := echoServer(t)
	nw := New(1)
	nw.SetFault(addr, Fault{RefuseDials: -1})
	for i := 0; i < 5; i++ {
		if _, err := nw.Dial(addr, time.Second); err == nil {
			t.Fatal("dial succeeded under RefuseDials: -1")
		}
	}
	nw.Heal(addr)
	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	conn.Close()
}

// TestPartitionBoundedByDeadline: a partition applied after the
// connection is up must make reads block — but only until the deadline,
// surfacing as a net.Error timeout, never a hang.
func TestPartitionBoundedByDeadline(t *testing.T) {
	addr := echoServer(t)
	nw := New(1)
	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Prove the connection works, then partition it.
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	nw.Partition(addr)

	conn.SetDeadline(time.Now().Add(100 * time.Millisecond))
	start := time.Now()
	_, err = conn.Read(make([]byte, 1))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("read succeeded through a partition")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("partition read error = %v, want net.Error timeout", err)
	}
	if elapsed < 90*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("partition read returned after %v, want ~100ms", elapsed)
	}

	// Writes black-hole: success reported, nothing delivered.
	if _, err := conn.Write([]byte("lost")); err != nil {
		t.Fatalf("partition write = %v, want silent black hole", err)
	}

	// Dials refuse while partitioned.
	if _, err := nw.Dial(addr, time.Second); err == nil {
		t.Fatal("dial succeeded through a partition")
	}

	// Heal: a waiting read unblocks once traffic flows again.
	nw.Heal(addr)
	conn2, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn2, make([]byte, 1)); err != nil {
		t.Fatalf("echo after heal: %v", err)
	}
}

// TestHealUnblocksWaitingRead: a read already parked on a partitioned
// connection resumes when the partition heals before its deadline.
func TestHealUnblocksWaitingRead(t *testing.T) {
	addr := echoServer(t)
	nw := New(1)
	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	nw.Partition(addr)

	conn.SetDeadline(time.Now().Add(5 * time.Second))
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(conn, make([]byte, 1))
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	nw.Heal(addr)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("read after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read still blocked after heal")
	}
}

// TestDropAfterBytesBudget: with DropConns = 1 only the first connection
// dies mid-stream; the next one is clean.
func TestDropAfterBytesBudget(t *testing.T) {
	addr := echoServer(t)
	nw := New(1)
	nw.SetFault(addr, Fault{DropAfterBytes: 8, DropConns: 1})

	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(make([]byte, 8)); err != nil {
		t.Fatal(err) // reaches the threshold
	}
	if _, err := conn.Write([]byte("more")); err == nil {
		t.Fatal("write past DropAfterBytes succeeded")
	}
	conn.Close()

	conn2, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write(make([]byte, 64)); err != nil {
		t.Fatalf("second connection hit exhausted drop budget: %v", err)
	}
}

// TestDropAppliesToExistingConn: DropConns = 0 subjects connections
// established before the fault was installed.
func TestDropAppliesToExistingConn(t *testing.T) {
	addr := echoServer(t)
	nw := New(1)
	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	nw.SetFault(addr, Fault{DropAfterBytes: 8}) // already exceeded
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write on pre-existing conn survived a DropConns=0 fault")
	}
}

func TestCorruptBytesDeterministic(t *testing.T) {
	mk := func() []byte {
		b := make([]byte, 256)
		for i := range b {
			b[i] = byte(i)
		}
		return b
	}
	a, b := mk(), mk()
	CorruptBytes(a, 64, 0, 7)
	CorruptBytes(b, 64, 0, 7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}

	// Exactly one byte per 64-byte window flips.
	orig := mk()
	flips := 0
	for i := range a {
		if a[i] != orig[i] {
			flips++
		}
	}
	if flips != 4 {
		t.Fatalf("flipped %d bytes in 256/64 windows, want 4", flips)
	}

	// A different seed corrupts differently.
	c := mk()
	CorruptBytes(c, 64, 0, 8)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}

	// Split application at an arbitrary boundary matches one-shot: the
	// stream offset, not the buffer, decides positions.
	d := mk()
	off := CorruptBytes(d[:100], 64, 0, 7)
	CorruptBytes(d[100:], 64, off, 7)
	if !bytes.Equal(a, d) {
		t.Fatal("chunked corruption diverged from one-shot corruption")
	}
}

// TestCorruptionOnWire: corruption installed on the path garbles what the
// peer receives.
func TestCorruptionOnWire(t *testing.T) {
	addr := echoServer(t)
	nw := New(42)
	nw.SetFault(addr, Fault{CorruptEvery: 16})
	conn, err := nw.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	msg := make([]byte, 64)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	// Write corrupts 4 windows on the way out; the echo comes back through
	// Read which corrupts further. Either way the zeros must be gone.
	if bytes.Equal(got, msg) {
		t.Fatal("corruption fault delivered clean bytes")
	}
}

// TestWrapListener: faults keyed by the listener's address apply to
// accepted (server-side) connections.
func TestWrapListener(t *testing.T) {
	nw := New(1)
	ln, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()
	nw.SetFault(addr, Fault{Latency: 60 * time.Millisecond})

	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(c, c)
	}()

	conn, err := net.Dial("tcp", addr) // plain client: fault sits server-side
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("server-side latency not applied: round trip %v", elapsed)
	}
}
