package faultnet

import (
	"bytes"
	"testing"

	"eevfs/internal/proto"
)

// FuzzCorruptedFrames drives the exact byte corruption a faultnet Conn
// applies into the protocol frame reader. The framing has no checksum, so
// corruption may decode into garbage — the invariants are that the reader
// never panics, never allocates beyond MaxFrame, and that corrupting a
// frame never makes the reader claim more payload than the input holds.
func FuzzCorruptedFrames(f *testing.F) {
	frame := func(t proto.Type, payload []byte) []byte {
		var buf bytes.Buffer
		if err := proto.WriteFrame(&buf, t, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(frame(proto.TCreateReq, proto.CreateReq{Name: "x", Size: 1}.Encode()), int64(4), int64(1))
	f.Add(frame(proto.TError, proto.ErrorMsg{Msg: "boom", Code: proto.CodeUnavailable}.Encode()), int64(1), int64(7))
	f.Add(frame(proto.TNodeReadResp, proto.NodeReadResp{Data: make([]byte, 300)}.Encode()), int64(16), int64(42))
	f.Add([]byte{}, int64(1), int64(1))

	f.Fuzz(func(t *testing.T, input []byte, every, seed int64) {
		if every < 0 || every > int64(len(input))+1 {
			return
		}
		corrupted := append([]byte(nil), input...)
		CorruptBytes(corrupted, every, 0, seed)

		ty, payload, err := proto.ReadFrame(bytes.NewReader(corrupted))
		if err != nil {
			return
		}
		if len(payload) > len(corrupted) {
			t.Fatalf("reader produced %d payload bytes from %d input bytes",
				len(payload), len(corrupted))
		}
		// Whatever decoded must survive a clean round trip.
		var buf bytes.Buffer
		if err := proto.WriteFrame(&buf, ty, payload); err != nil {
			t.Fatalf("re-encoding accepted frame failed: %v", err)
		}
		ty2, payload2, err := proto.ReadFrame(&buf)
		if err != nil || ty2 != ty || !bytes.Equal(payload2, payload) {
			t.Fatal("round trip of corrupted-but-accepted frame mismatched")
		}
		// And the error decoder must tolerate corrupted payloads without
		// panicking (result is unspecified).
		if ty == proto.TError {
			_, _ = proto.DecodeErrorMsg(payload)
		}
	})
}
