// Package faultnet provides scriptable fault injection for TCP
// connections: a dialer and net.Listener wrapper whose connections can be
// degraded per endpoint with added latency, bandwidth caps, byte-level
// corruption, mid-stream connection drops, dial refusal, and full
// partitions. The chaos test suite uses it to exercise the EEVFS network
// path (server <-> node and client <-> server/node) under failure.
//
// Faults are keyed by target address and looked up live on every
// operation, so a partition applied after a connection is established
// still black-holes it. All randomness comes from one seeded source, so a
// given fault script plus operation sequence is deterministic.
package faultnet

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Fault describes the failures injected on connections to one endpoint.
// The zero value is a clean network.
type Fault struct {
	// Latency is added once to every Read and Write call.
	Latency time.Duration
	// BandwidthBps caps throughput: each operation additionally sleeps
	// bytes/bandwidth. Zero means unlimited.
	BandwidthBps int64
	// CorruptEvery flips one byte per CorruptEvery bytes transferred
	// (deterministic byte positions). Zero disables corruption.
	CorruptEvery int64
	// DropAfterBytes kills a connection with a reset-style error once it
	// has moved this many bytes in either direction, simulating a
	// mid-message connection loss. Zero disables dropping.
	DropAfterBytes int64
	// DropConns limits DropAfterBytes to the next DropConns dialed or
	// accepted connections; the budget decrements as connections are
	// created and later connections are clean. Zero applies the drop to
	// every connection (including ones established before the fault).
	DropConns int
	// RefuseDials fails the next RefuseDials dials with a
	// connection-refused error; -1 refuses every dial.
	RefuseDials int
	// Partition black-holes the endpoint: dials fail, reads block until
	// the connection's deadline (or a heal), and writes are swallowed.
	Partition bool
}

// rule is the live state behind one endpoint's Fault.
type rule struct {
	f         Fault
	dropsLeft int // connections still subject to DropAfterBytes (when DropConns > 0)
	refusals  int // dials still to refuse (-1 = all)
}

// Network is a fault-injecting transport. The zero value is not usable;
// call New.
type Network struct {
	seed  int64
	mu    sync.Mutex
	rules map[string]*rule
}

// New returns a Network whose randomized fault choices (e.g. which byte
// of a corruption window flips) derive from seed, so a fault script plus
// operation sequence replays identically.
func New(seed int64) *Network {
	return &Network{seed: seed, rules: make(map[string]*rule)}
}

// SetFault installs (replacing) the fault script for one address.
func (nw *Network) SetFault(addr string, f Fault) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.rules[addr] = &rule{f: f, dropsLeft: f.DropConns, refusals: f.RefuseDials}
}

// Clear removes all faults for the address.
func (nw *Network) Clear(addr string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	delete(nw.rules, addr)
}

// Partition fully partitions the address, preserving any other installed
// faults for it.
func (nw *Network) Partition(addr string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	r, ok := nw.rules[addr]
	if !ok {
		r = &rule{}
		nw.rules[addr] = r
	}
	r.f.Partition = true
}

// Heal removes every fault for the address (alias of Clear, reads better
// in chaos scripts).
func (nw *Network) Heal(addr string) { nw.Clear(addr) }

// consumeDropBudget decrements the per-connection drop budget for addr,
// reporting whether a connection created now claims one of the DropConns
// slots. Only meaningful when DropConns > 0; with DropConns == 0 the drop
// applies to every connection and no budget is tracked.
func (nw *Network) consumeDropBudget(addr string) bool {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	r, ok := nw.rules[addr]
	if !ok || r.f.DropAfterBytes <= 0 || r.f.DropConns <= 0 {
		return false
	}
	if r.dropsLeft > 0 {
		r.dropsLeft--
		return true
	}
	return false
}

// fault returns the live fault for addr (no budget accounting).
func (nw *Network) fault(addr string) Fault {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if r, ok := nw.rules[addr]; ok {
		return r.f
	}
	return Fault{}
}

// refuse consumes one dial-refusal token, reporting whether this dial
// must fail.
func (nw *Network) refuse(addr string) bool {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	r, ok := nw.rules[addr]
	if !ok {
		return false
	}
	if r.f.Partition || r.refusals < 0 {
		return true
	}
	if r.refusals > 0 {
		r.refusals--
		return true
	}
	return false
}

// Dial opens a faulty connection to addr, honouring the address's fault
// script. It satisfies the EEVFS transport's Dialer contract.
func (nw *Network) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	if nw.refuse(addr) {
		return nil, &net.OpError{Op: "dial", Net: "tcp",
			Err: fmt.Errorf("faultnet: connection refused (injected)")}
	}
	inner, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return nw.wrap(inner, addr), nil
}

// Listen binds a TCP listener whose accepted connections inject the
// faults registered for the listener's own address (server-side faults).
func (nw *Network) Listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &listener{Listener: ln, nw: nw}, nil
}

// WrapListener makes an existing listener inject the faults registered
// for its address on every accepted connection.
func (nw *Network) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, nw: nw}
}

type listener struct {
	net.Listener
	nw *Network
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.nw.wrap(c, l.Addr().String()), nil
}

func (nw *Network) wrap(inner net.Conn, addr string) *Conn {
	return &Conn{
		inner:  inner,
		nw:     nw,
		addr:   addr,
		drop:   nw.consumeDropBudget(addr),
		closed: make(chan struct{}),
	}
}

// Conn is a net.Conn that injects the faults registered for its remote
// address. Faults are re-read on every operation.
type Conn struct {
	inner net.Conn
	nw    *Network
	addr  string
	drop  bool // claimed one of the DropConns budget slots

	mu            sync.Mutex
	moved         int64 // bytes transferred in either direction
	readDeadline  time.Time
	writeDeadline time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

// errTimeout is returned when an injected block outlives the deadline; it
// satisfies net.Error with Timeout() == true so retry policies classify
// it like a real socket timeout.
type errTimeout struct{}

func (errTimeout) Error() string   { return "faultnet: i/o timeout (partitioned)" }
func (errTimeout) Timeout() bool   { return true }
func (errTimeout) Temporary() bool { return true }

// errDropped is the injected mid-stream connection loss.
var errDropped = &net.OpError{Op: "read", Net: "tcp",
	Err: fmt.Errorf("faultnet: connection reset (injected drop)")}

func (c *Conn) deadline(read bool) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if read {
		return c.readDeadline
	}
	return c.writeDeadline
}

// awaitPartition blocks while the address is partitioned. It returns nil
// once healed, or a timeout error when the deadline passes first.
func (c *Conn) awaitPartition(read bool) error {
	for c.nw.fault(c.addr).Partition {
		d := c.deadline(read)
		if !d.IsZero() && !time.Now().Before(d) {
			return errTimeout{}
		}
		select {
		case <-c.closed:
			return net.ErrClosed
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// throttle sleeps for the injected latency plus the bandwidth share of n
// bytes, but never past the deadline.
func (c *Conn) throttle(f Fault, n int, read bool) {
	delay := f.Latency
	if f.BandwidthBps > 0 && n > 0 {
		delay += time.Duration(float64(n) / float64(f.BandwidthBps) * float64(time.Second))
	}
	if delay <= 0 {
		return
	}
	if d := c.deadline(read); !d.IsZero() {
		if until := time.Until(d); until < delay {
			delay = until
		}
	}
	if delay > 0 {
		select {
		case <-c.closed:
		case <-time.After(delay):
		}
	}
}

// checkDrop enforces DropAfterBytes against the bytes moved so far. With
// DropConns == 0 every connection (even one established before the fault)
// is subject; otherwise only connections that claimed a budget slot.
func (c *Conn) checkDrop(f Fault) error {
	if f.DropAfterBytes <= 0 || (f.DropConns > 0 && !c.drop) {
		return nil
	}
	c.mu.Lock()
	exceeded := c.moved >= f.DropAfterBytes
	c.mu.Unlock()
	if exceeded {
		c.inner.Close()
		return errDropped
	}
	return nil
}

func (c *Conn) account(n int) {
	c.mu.Lock()
	c.moved += int64(n)
	c.mu.Unlock()
}

// splitmix is the SplitMix64 mixer, used to pick deterministic
// pseudo-random corruption positions without shared rng state.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// CorruptBytes applies the corruption mode in place: within each
// `every`-byte window of the stream, one byte (chosen from seed and the
// window index) is bit-flipped. start is the stream offset of b[0]; the
// offset after b is returned. Exported so fuzz tests can drive the exact
// corruption a Conn applies.
func CorruptBytes(b []byte, every, start, seed int64) int64 {
	if every <= 0 {
		return start + int64(len(b))
	}
	for i := range b {
		off := start + int64(i)
		win := off / every
		pos := int64(splitmix(uint64(seed)^uint64(win)) % uint64(every))
		if off%every == pos {
			b[i] ^= 0xFF
		}
	}
	return start + int64(len(b))
}

func (c *Conn) corrupt(f Fault, b []byte) {
	if f.CorruptEvery <= 0 {
		return
	}
	c.mu.Lock()
	start := c.moved
	c.mu.Unlock()
	CorruptBytes(b, f.CorruptEvery, start, c.nw.seed)
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	f := c.nw.fault(c.addr)
	if f.Partition {
		if err := c.awaitPartition(true); err != nil {
			return 0, err
		}
		f = c.nw.fault(c.addr)
	}
	if err := c.checkDrop(f); err != nil {
		return 0, err
	}
	c.throttle(f, 0, true)
	n, err := c.inner.Read(p)
	if n > 0 {
		c.corrupt(f, p[:n])
		c.account(n)
		c.throttle(f, n, true)
	}
	return n, err
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	f := c.nw.fault(c.addr)
	if f.Partition {
		// Black hole: the bytes vanish but the sender sees success, like
		// a TCP peer that stopped ACKing with buffer space left.
		c.throttle(f, len(p), false)
		return len(p), nil
	}
	if err := c.checkDrop(f); err != nil {
		return 0, err
	}
	c.throttle(f, len(p), false)
	out := p
	if f.CorruptEvery > 0 {
		out = append([]byte(nil), p...)
		c.corrupt(f, out)
	}
	n, err := c.inner.Write(out)
	c.account(n)
	return n, err
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}
