package metadata

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestShardedBasicOps(t *testing.T) {
	s := NewSharded()
	if s.Len() != 0 {
		t.Fatalf("fresh map Len = %d", s.Len())
	}
	for i := 0; i < 200; i++ {
		fi := FileInfo{Name: fmt.Sprintf("f%03d", i), ID: i, Size: int64(i + 1), Node: i % 4}
		if err := s.Put(fi); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
	fi, ok := s.LookupName("f042")
	if !ok || fi.ID != 42 || fi.Size != 43 {
		t.Fatalf("LookupName(f042) = %+v, %v", fi, ok)
	}
	fi, ok = s.LookupID(42)
	if !ok || fi.Name != "f042" {
		t.Fatalf("LookupID(42) = %+v, %v", fi, ok)
	}
	if !s.Delete("f042") {
		t.Fatal("Delete(f042) = false")
	}
	if s.Delete("f042") {
		t.Fatal("second Delete(f042) = true")
	}
	if _, ok := s.LookupName("f042"); ok {
		t.Fatal("deleted name still resolves")
	}
	if _, ok := s.LookupID(42); ok {
		t.Fatal("deleted id still resolves")
	}
	if s.Len() != 199 {
		t.Fatalf("Len after delete = %d", s.Len())
	}
}

func TestShardedMatchesServerMap(t *testing.T) {
	// The striped map must be observationally identical to ServerMap on a
	// sequential workload, including replacement semantics.
	a, b := NewServerMap(), NewSharded()
	ops := []FileInfo{
		{Name: "x", ID: 0, Size: 10, Node: 0},
		{Name: "y", ID: 1, Size: 20, Node: 1},
		{Name: "x", ID: 2, Size: 30, Node: 0}, // rename id under x: 0 must drop
		{Name: "z", ID: 1, Size: 40, Node: 2}, // steal id 1 from y: y must drop
	}
	for _, fi := range ops {
		errA, errB := a.Put(fi), b.Put(fi)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("Put(%+v): ServerMap err %v vs Sharded err %v", fi, errA, errB)
		}
	}
	if !reflect.DeepEqual(a.Names(), b.Names()) {
		t.Fatalf("Names diverge: %v vs %v", a.Names(), b.Names())
	}
	for _, name := range []string{"x", "y", "z", "ghost"} {
		fa, oka := a.LookupName(name)
		fb, okb := b.LookupName(name)
		if oka != okb || fa != fb {
			t.Errorf("LookupName(%q): %+v,%v vs %+v,%v", name, fa, oka, fb, okb)
		}
	}
	for id := -1; id < 4; id++ {
		fa, oka := a.LookupID(id)
		fb, okb := b.LookupID(id)
		if oka != okb || fa != fb {
			t.Errorf("LookupID(%d): %+v,%v vs %+v,%v", id, fa, oka, fb, okb)
		}
	}
}

func TestShardedValidation(t *testing.T) {
	s := NewSharded()
	for _, fi := range []FileInfo{
		{Name: "", ID: 0, Size: 1, Node: 0},
		{Name: "a", ID: 0, Size: 0, Node: 0},
		{Name: "a", ID: 0, Size: -5, Node: 0},
		{Name: "a", ID: 0, Size: 1, Node: -1},
	} {
		if err := s.Put(fi); err == nil {
			t.Errorf("Put(%+v) accepted invalid record", fi)
		}
		if ok, err := s.PutIfAbsent(fi); err == nil || ok {
			t.Errorf("PutIfAbsent(%+v) accepted invalid record", fi)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("invalid Puts left %d records", s.Len())
	}
}

func TestShardedPutIfAbsentRace(t *testing.T) {
	s := NewSharded()
	const racers = 16
	var wins atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < racers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ok, err := s.PutIfAbsent(FileInfo{Name: "one", ID: g, Size: 1, Node: 0})
			if err != nil {
				t.Error(err)
			}
			if ok {
				wins.Add(1)
			}
		}(g)
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d racers claimed the name, want exactly 1", wins.Load())
	}
	fi, ok := s.LookupName("one")
	if !ok {
		t.Fatal("claimed name does not resolve")
	}
	if got, _ := s.LookupID(fi.ID); got.Name != "one" {
		t.Fatalf("winner's id %d resolves to %+v", fi.ID, got)
	}
}

func TestShardedConcurrentMixedOps(t *testing.T) {
	s := NewSharded()
	const (
		writers = 4
		perW    = 100
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				id := w*perW + i
				name := fmt.Sprintf("w%d-%03d", w, i)
				if err := s.Put(FileInfo{Name: name, ID: id, Size: 1, Node: w}); err != nil {
					t.Error(err)
				}
				if i%3 == 0 {
					s.Delete(name)
				}
			}
		}(w)
	}
	// Concurrent readers over the whole id space.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < writers*perW; i++ {
				s.LookupID(i)
				s.Len()
			}
		}()
	}
	wg.Wait()
	// Every surviving name must resolve consistently by name and id.
	for _, name := range s.Names() {
		fi, ok := s.LookupName(name)
		if !ok {
			t.Fatalf("listed name %q does not resolve", name)
		}
		back, ok := s.LookupID(fi.ID)
		if !ok || back.Name != name {
			t.Fatalf("id %d of %q resolves to %+v, %v", fi.ID, name, back, ok)
		}
	}
	deletedPerW := (perW + 2) / 3 // i%3==0 for i in [0, perW)
	want := writers * (perW - deletedPerW)
	if got := s.Len(); got != want {
		t.Fatalf("Len = %d, want %d (non-deleted records)", got, want)
	}
}
