// Package metadata implements EEVFS's two-level distributed metadata
// (Section IV-D of the paper).
//
// The storage server keeps only coarse metadata — which storage node holds
// a file, and the file's size. It deliberately does not know which disk
// inside a node a file lives on, or whether the file has been prefetched.
// Each storage node keeps that local metadata for its own disks. This
// split is what lets the server act purely as a load balancer and access
// point.
package metadata

import (
	"fmt"
	"sort"
	"sync"
)

// FileInfo is the server-side record for one file.
type FileInfo struct {
	Name string
	ID   int   // dense id used by traces and placement
	Size int64 // bytes
	Node int   // storage node holding the file
	// Replica is the index+1 of a node holding a buffer-disk copy of the
	// file (0 = none), so the zero value means "no replica". Reads may
	// fall back to it while the owning node is unhealthy; any write
	// invalidates it first.
	Replica int
}

// ReplicaNode unpacks the replica marker: the node index holding the
// buffer-disk copy, and whether one exists.
func (fi FileInfo) ReplicaNode() (int, bool) {
	if fi.Replica <= 0 {
		return 0, false
	}
	return fi.Replica - 1, true
}

// ServerMap is the storage server's metadata: name -> FileInfo. It is safe
// for concurrent use (the real FS serves many clients at once).
type ServerMap struct {
	mu     sync.RWMutex
	byName map[string]FileInfo
	byID   map[int]FileInfo
}

// NewServerMap returns an empty server metadata map.
func NewServerMap() *ServerMap {
	return &ServerMap{
		byName: make(map[string]FileInfo),
		byID:   make(map[int]FileInfo),
	}
}

// Put inserts or replaces a file record. Replacing a name with a different
// id (or vice versa) removes the stale pairing.
func (m *ServerMap) Put(fi FileInfo) error {
	if fi.Name == "" {
		return fmt.Errorf("metadata: empty file name")
	}
	if fi.Size <= 0 {
		return fmt.Errorf("metadata: file %q has non-positive size %d", fi.Name, fi.Size)
	}
	if fi.Node < 0 {
		return fmt.Errorf("metadata: file %q has negative node %d", fi.Name, fi.Node)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.byName[fi.Name]; ok && old.ID != fi.ID {
		delete(m.byID, old.ID)
	}
	if old, ok := m.byID[fi.ID]; ok && old.Name != fi.Name {
		delete(m.byName, old.Name)
	}
	m.byName[fi.Name] = fi
	m.byID[fi.ID] = fi
	return nil
}

// LookupName returns the record for a file name.
func (m *ServerMap) LookupName(name string) (FileInfo, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	fi, ok := m.byName[name]
	return fi, ok
}

// LookupID returns the record for a file id.
func (m *ServerMap) LookupID(id int) (FileInfo, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	fi, ok := m.byID[id]
	return fi, ok
}

// Delete removes a file by name. Removing a missing file is a no-op that
// returns false.
func (m *ServerMap) Delete(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	fi, ok := m.byName[name]
	if !ok {
		return false
	}
	delete(m.byName, name)
	delete(m.byID, fi.ID)
	return true
}

// Len returns the number of files.
func (m *ServerMap) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.byName)
}

// Names returns all file names in sorted order (deterministic listing).
func (m *ServerMap) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.byName))
	for n := range m.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NodeEntry is a storage node's local record for one file.
type NodeEntry struct {
	ID         int
	Size       int64
	Disk       int  // data-disk index inside the node
	Prefetched bool // a copy lives on the buffer disk
}

// NodeMap is one storage node's local metadata: file id -> disk placement
// and prefetch status. Safe for concurrent use.
type NodeMap struct {
	mu      sync.RWMutex
	entries map[int]NodeEntry
}

// NewNodeMap returns an empty node metadata map.
func NewNodeMap() *NodeMap {
	return &NodeMap{entries: make(map[int]NodeEntry)}
}

// Put inserts or replaces an entry.
func (m *NodeMap) Put(e NodeEntry) error {
	if e.Size <= 0 {
		return fmt.Errorf("metadata: node entry for file %d has non-positive size %d", e.ID, e.Size)
	}
	if e.Disk < 0 {
		return fmt.Errorf("metadata: node entry for file %d has negative disk %d", e.ID, e.Disk)
	}
	m.mu.Lock()
	m.entries[e.ID] = e
	m.mu.Unlock()
	return nil
}

// Lookup returns the entry for a file id.
func (m *NodeMap) Lookup(id int) (NodeEntry, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[id]
	return e, ok
}

// SetPrefetched marks or clears the buffer-disk copy flag. It returns
// false if the file is unknown to this node.
func (m *NodeMap) SetPrefetched(id int, v bool) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if !ok {
		return false
	}
	e.Prefetched = v
	m.entries[id] = e
	return true
}

// Delete removes an entry; it returns false if absent.
func (m *NodeMap) Delete(id int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[id]; !ok {
		return false
	}
	delete(m.entries, id)
	return true
}

// Len returns the number of local files.
func (m *NodeMap) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// PrefetchedIDs returns the ids with a buffer-disk copy, sorted.
func (m *NodeMap) PrefetchedIDs() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var ids []int
	for id, e := range m.entries {
		if e.Prefetched {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// FilesOnDisk returns the ids stored on the given data disk, sorted.
func (m *NodeMap) FilesOnDisk(disk int) []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var ids []int
	for id, e := range m.entries {
		if e.Disk == disk {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// PrefetchedBytes returns the total size of buffer-disk copies — the
// buffer disk's occupancy, which the write-buffer logic needs to know.
func (m *NodeMap) PrefetchedBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total int64
	for _, e := range m.entries {
		if e.Prefetched {
			total += e.Size
		}
	}
	return total
}

// IDs returns all file ids known to the node, sorted.
func (m *NodeMap) IDs() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ids := make([]int, 0, len(m.entries))
	for id := range m.entries {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
