package metadata

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestServerMapPutLookup(t *testing.T) {
	m := NewServerMap()
	fi := FileInfo{Name: "a.dat", ID: 7, Size: 100, Node: 2}
	if err := m.Put(fi); err != nil {
		t.Fatal(err)
	}
	got, ok := m.LookupName("a.dat")
	if !ok || got != fi {
		t.Fatalf("LookupName = %+v, %v", got, ok)
	}
	got, ok = m.LookupID(7)
	if !ok || got != fi {
		t.Fatalf("LookupID = %+v, %v", got, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestServerMapMissingLookups(t *testing.T) {
	m := NewServerMap()
	if _, ok := m.LookupName("nope"); ok {
		t.Error("missing name found")
	}
	if _, ok := m.LookupID(3); ok {
		t.Error("missing id found")
	}
}

func TestServerMapPutValidation(t *testing.T) {
	m := NewServerMap()
	if err := m.Put(FileInfo{Name: "", ID: 0, Size: 1}); err == nil {
		t.Error("empty name accepted")
	}
	if err := m.Put(FileInfo{Name: "x", ID: 0, Size: 0}); err == nil {
		t.Error("zero size accepted")
	}
	if err := m.Put(FileInfo{Name: "x", ID: 0, Size: 1, Node: -1}); err == nil {
		t.Error("negative node accepted")
	}
}

func TestServerMapReplaceKeepsIndexesConsistent(t *testing.T) {
	m := NewServerMap()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.Put(FileInfo{Name: "a", ID: 1, Size: 10}))
	// Rebind name "a" to a new id: old id must disappear.
	must(m.Put(FileInfo{Name: "a", ID: 2, Size: 10}))
	if _, ok := m.LookupID(1); ok {
		t.Error("stale id 1 still resolvable")
	}
	// Rebind id 2 to a new name: old name must disappear.
	must(m.Put(FileInfo{Name: "b", ID: 2, Size: 10}))
	if _, ok := m.LookupName("a"); ok {
		t.Error("stale name a still resolvable")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
}

func TestServerMapDelete(t *testing.T) {
	m := NewServerMap()
	if m.Delete("ghost") {
		t.Error("deleting missing file returned true")
	}
	if err := m.Put(FileInfo{Name: "a", ID: 1, Size: 10}); err != nil {
		t.Fatal(err)
	}
	if !m.Delete("a") {
		t.Error("delete returned false")
	}
	if _, ok := m.LookupID(1); ok {
		t.Error("id survives delete")
	}
}

func TestServerMapNamesSorted(t *testing.T) {
	m := NewServerMap()
	for i, n := range []string{"zeta", "alpha", "mid"} {
		if err := m.Put(FileInfo{Name: n, ID: i, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "mid", "zeta"}
	if got := m.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v, want %v", got, want)
	}
}

func TestServerMapConcurrentAccess(t *testing.T) {
	m := NewServerMap()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := g*1000 + i
				name := fmt.Sprintf("f-%d", id)
				if err := m.Put(FileInfo{Name: name, ID: id, Size: 1}); err != nil {
					t.Error(err)
					return
				}
				if _, ok := m.LookupName(name); !ok {
					t.Errorf("lost %s", name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Len() != 1600 {
		t.Fatalf("Len = %d, want 1600", m.Len())
	}
}

func TestNodeMapBasics(t *testing.T) {
	m := NewNodeMap()
	e := NodeEntry{ID: 3, Size: 50, Disk: 1}
	if err := m.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Lookup(3)
	if !ok || got != e {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	if _, ok := m.Lookup(99); ok {
		t.Error("missing id found")
	}
}

func TestNodeMapValidation(t *testing.T) {
	m := NewNodeMap()
	if err := m.Put(NodeEntry{ID: 1, Size: 0, Disk: 0}); err == nil {
		t.Error("zero size accepted")
	}
	if err := m.Put(NodeEntry{ID: 1, Size: 1, Disk: -1}); err == nil {
		t.Error("negative disk accepted")
	}
}

func TestNodeMapPrefetchFlag(t *testing.T) {
	m := NewNodeMap()
	if m.SetPrefetched(1, true) {
		t.Error("SetPrefetched on missing id returned true")
	}
	for i := 0; i < 4; i++ {
		if err := m.Put(NodeEntry{ID: i, Size: int64(10 * (i + 1)), Disk: i % 2}); err != nil {
			t.Fatal(err)
		}
	}
	m.SetPrefetched(1, true)
	m.SetPrefetched(3, true)
	if got := m.PrefetchedIDs(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("PrefetchedIDs = %v", got)
	}
	if got := m.PrefetchedBytes(); got != 20+40 {
		t.Errorf("PrefetchedBytes = %d, want 60", got)
	}
	m.SetPrefetched(1, false)
	if got := m.PrefetchedIDs(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("after clear PrefetchedIDs = %v", got)
	}
}

func TestNodeMapFilesOnDisk(t *testing.T) {
	m := NewNodeMap()
	for i := 0; i < 6; i++ {
		if err := m.Put(NodeEntry{ID: i, Size: 1, Disk: i % 3}); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.FilesOnDisk(1); !reflect.DeepEqual(got, []int{1, 4}) {
		t.Errorf("FilesOnDisk(1) = %v", got)
	}
	if got := m.FilesOnDisk(9); got != nil {
		t.Errorf("FilesOnDisk(9) = %v, want nil", got)
	}
}

func TestNodeMapDelete(t *testing.T) {
	m := NewNodeMap()
	if m.Delete(1) {
		t.Error("deleting missing entry returned true")
	}
	if err := m.Put(NodeEntry{ID: 1, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if !m.Delete(1) || m.Len() != 0 {
		t.Error("delete failed")
	}
}

func TestNodeMapConcurrent(t *testing.T) {
	m := NewNodeMap()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := g*1000 + i
				if err := m.Put(NodeEntry{ID: id, Size: 1, Disk: id % 2}); err != nil {
					t.Error(err)
					return
				}
				m.SetPrefetched(id, true)
			}
		}(g)
	}
	wg.Wait()
	if m.Len() != 1600 || len(m.PrefetchedIDs()) != 1600 {
		t.Fatalf("Len = %d Prefetched = %d, want 1600", m.Len(), len(m.PrefetchedIDs()))
	}
}
