package metadata

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// shardCount is the number of lock stripes in a Sharded map. 64 shards
// keep the per-shard collision probability negligible for the node counts
// and client concurrency the prototype targets while costing only a few
// kilobytes of mutexes. Must be a power of two (shard selection masks).
const shardCount = 64

// nameShard maps file names to ids under one stripe of the name index.
type nameShard struct {
	mu sync.RWMutex
	m  map[string]int
}

// idShard maps file ids to their full records under one stripe of the id
// index.
type idShard struct {
	mu sync.RWMutex
	m  map[int]FileInfo
}

// Sharded is a striped server metadata map: the name index and the id
// index are each split over shardCount RWMutex-guarded stripes, so
// lookups of different files proceed without contending on any shared
// lock. It replaces ServerMap on the storage server's hot path.
//
// Lock ordering: no operation ever holds two shard locks at once — each
// acquires a name stripe and an id stripe strictly in sequence — so the
// structure is deadlock-free by construction. The price is that a Put
// racing a Delete on the same name can be observed in a transient state
// (name claimed, record not yet visible); LookupName treats that window
// as "absent", which is exactly what a not-yet-completed create looks
// like.
type Sharded struct {
	names [shardCount]nameShard
	ids   [shardCount]idShard
}

// NewSharded returns an empty striped metadata map.
func NewSharded() *Sharded {
	s := &Sharded{}
	for i := range s.names {
		s.names[i].m = make(map[string]int)
		s.ids[i].m = make(map[int]FileInfo)
	}
	return s
}

func (s *Sharded) nameShard(name string) *nameShard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return &s.names[h.Sum32()&(shardCount-1)]
}

// idShard selects by the id's low bits: server ids are dense and
// monotonic, so consecutive files spread evenly over the stripes.
func (s *Sharded) idShard(id int) *idShard {
	return &s.ids[uint(id)&(shardCount-1)]
}

// Put inserts or replaces a file record. Replacing a name with a
// different id (or vice versa) removes the stale pairing, as ServerMap
// does.
func (s *Sharded) Put(fi FileInfo) error {
	if err := validate(fi); err != nil {
		return err
	}
	ns := s.nameShard(fi.Name)
	ns.mu.Lock()
	oldID, hadName := ns.m[fi.Name]
	ns.m[fi.Name] = fi.ID
	ns.mu.Unlock()
	if hadName && oldID != fi.ID {
		s.dropIDIfName(oldID, fi.Name)
	}

	is := s.idShard(fi.ID)
	is.mu.Lock()
	old, hadID := is.m[fi.ID]
	is.m[fi.ID] = fi
	is.mu.Unlock()
	if hadID && old.Name != fi.Name {
		s.dropNameIfID(old.Name, fi.ID)
	}
	return nil
}

// PutIfAbsent atomically claims a name: it installs the record only when
// the name is free and returns false when another record already owns
// it. This is the create path's duplicate gate — under concurrency,
// exactly one of N racing creates of the same name wins.
func (s *Sharded) PutIfAbsent(fi FileInfo) (bool, error) {
	if err := validate(fi); err != nil {
		return false, err
	}
	ns := s.nameShard(fi.Name)
	ns.mu.Lock()
	if _, exists := ns.m[fi.Name]; exists {
		ns.mu.Unlock()
		return false, nil
	}
	ns.m[fi.Name] = fi.ID
	ns.mu.Unlock()

	is := s.idShard(fi.ID)
	is.mu.Lock()
	is.m[fi.ID] = fi
	is.mu.Unlock()
	return true, nil
}

// dropIDIfName removes the id record only if it still names the given
// file (a newer Put for the id must not be clobbered).
func (s *Sharded) dropIDIfName(id int, name string) {
	is := s.idShard(id)
	is.mu.Lock()
	if old, ok := is.m[id]; ok && old.Name == name {
		delete(is.m, id)
	}
	is.mu.Unlock()
}

// dropNameIfID removes the name mapping only if it still points at the
// given id.
func (s *Sharded) dropNameIfID(name string, id int) {
	ns := s.nameShard(name)
	ns.mu.Lock()
	if cur, ok := ns.m[name]; ok && cur == id {
		delete(ns.m, name)
	}
	ns.mu.Unlock()
}

// LookupName returns the record for a file name.
func (s *Sharded) LookupName(name string) (FileInfo, bool) {
	ns := s.nameShard(name)
	ns.mu.RLock()
	id, ok := ns.m[name]
	ns.mu.RUnlock()
	if !ok {
		return FileInfo{}, false
	}
	fi, ok := s.LookupID(id)
	if !ok || fi.Name != name {
		// Mid-replacement window: treat as absent.
		return FileInfo{}, false
	}
	return fi, true
}

// LookupID returns the record for a file id.
func (s *Sharded) LookupID(id int) (FileInfo, bool) {
	is := s.idShard(id)
	is.mu.RLock()
	fi, ok := is.m[id]
	is.mu.RUnlock()
	return fi, ok
}

// Delete removes a file by name. Removing a missing file is a no-op that
// returns false.
func (s *Sharded) Delete(name string) bool {
	ns := s.nameShard(name)
	ns.mu.Lock()
	id, ok := ns.m[name]
	if ok {
		delete(ns.m, name)
	}
	ns.mu.Unlock()
	if !ok {
		return false
	}
	s.dropIDIfName(id, name)
	return true
}

// Len returns the number of files.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.ids {
		s.ids[i].mu.RLock()
		n += len(s.ids[i].m)
		s.ids[i].mu.RUnlock()
	}
	return n
}

// Names returns all file names in sorted order (deterministic listing).
func (s *Sharded) Names() []string {
	var names []string
	for i := range s.names {
		s.names[i].mu.RLock()
		for n := range s.names[i].m {
			names = append(names, n)
		}
		s.names[i].mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// Clear removes every record. It exists for replication snapshot
// installs, which rebuild the whole map from the primary's state; the
// caller serializes installs against other mutators.
func (s *Sharded) Clear() {
	for i := range s.names {
		s.names[i].mu.Lock()
		s.names[i].m = make(map[string]int)
		s.names[i].mu.Unlock()
	}
	for i := range s.ids {
		s.ids[i].mu.Lock()
		s.ids[i].m = make(map[int]FileInfo)
		s.ids[i].mu.Unlock()
	}
}

// validate mirrors ServerMap.Put's input checks.
func validate(fi FileInfo) error {
	if fi.Name == "" {
		return fmt.Errorf("metadata: empty file name")
	}
	if fi.Size <= 0 {
		return fmt.Errorf("metadata: file %q has non-positive size %d", fi.Name, fi.Size)
	}
	if fi.Node < 0 {
		return fmt.Errorf("metadata: file %q has negative node %d", fi.Name, fi.Node)
	}
	return nil
}
