package metadata

import (
	"fmt"
	"testing"
)

// ServerMap (one RWMutex) vs Sharded (64 stripes) under parallel load:
// the microbenchmark half of the ISSUE 3 server ops/sec comparison.

const benchFiles = 1024

type metaMap interface {
	Put(FileInfo) error
	LookupName(string) (FileInfo, bool)
	LookupID(int) (FileInfo, bool)
}

func fillMeta(b *testing.B, m metaMap) {
	b.Helper()
	for i := 0; i < benchFiles; i++ {
		if err := m.Put(FileInfo{
			Name: fmt.Sprintf("f%04d", i), ID: i, Size: int64(i + 1), Node: i % 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLookups(b *testing.B, m metaMap) {
	fillMeta(b, m)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := m.LookupName(fmt.Sprintf("f%04d", i%benchFiles)); !ok {
				b.Fatal("lookup miss")
			}
			i++
		}
	})
}

func BenchmarkServerMapLookupParallel(b *testing.B) { benchLookups(b, NewServerMap()) }
func BenchmarkShardedLookupParallel(b *testing.B)   { benchLookups(b, NewSharded()) }

func benchMixed(b *testing.B, m metaMap) {
	fillMeta(b, m)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%16 == 0 {
				id := benchFiles + i
				_ = m.Put(FileInfo{Name: fmt.Sprintf("w%07d", id), ID: id, Size: 1, Node: 0})
			} else {
				m.LookupID(i % benchFiles)
			}
			i++
		}
	})
}

func BenchmarkServerMapMixedParallel(b *testing.B) { benchMixed(b, NewServerMap()) }
func BenchmarkShardedMixedParallel(b *testing.B)   { benchMixed(b, NewSharded()) }
