package trace

import (
	"sync"
	"sync/atomic"
)

// Chunk geometry for AtomicLog: 1024 records per chunk keeps the chunk
// directory tiny (one pointer per ~50 KiB of records) while bounding the
// copy cost of a directory grow.
const (
	logChunkBits = 10
	logChunkSize = 1 << logChunkBits
)

// logChunk is one fixed-size block of the log. A record's fields are
// plain memory; the per-slot ready flag is the atomic publication point
// (store-release after the fields are written, load-acquire before they
// are read), which is what makes the whole structure safe without locks.
type logChunk struct {
	recs  [logChunkSize]Record
	ready [logChunkSize]atomic.Bool
}

// AtomicLog is a lock-free append-only request log: the storage server's
// concurrent replacement for AccessLog (Section IV's append-only
// popularity journal). Appenders reserve a slot with one atomic
// fetch-add and publish it with one atomic flag store, so lookups on
// different connections never serialize behind a journal mutex. Readers
// (popularity recomputation, hint derivation) walk the reserved prefix
// and skip the — transiently — unpublished slots of in-flight appends.
//
// The zero value is ready to use. An AtomicLog must not be copied.
type AtomicLog struct {
	next   atomic.Int64 // number of reserved slots
	chunks atomic.Pointer[[]*logChunk]
	grow   sync.Mutex // serializes chunk-directory growth only
}

// Append assigns the record the next sequence number, stores it, and
// returns that sequence number. Safe for any number of concurrent
// appenders; the sequence numbers are dense and unique but publication
// order may transiently differ from reservation order.
func (l *AtomicLog) Append(r Record) int64 {
	seq := l.next.Add(1) - 1
	c := l.chunkFor(seq)
	i := seq & (logChunkSize - 1)
	r.Seq = seq
	c.recs[i] = r
	c.ready[i].Store(true)
	return seq
}

// chunkFor returns the chunk holding the given sequence number, growing
// the chunk directory if this is the first slot reserved in it. The
// directory is copy-on-grow: readers always load a consistent snapshot.
func (l *AtomicLog) chunkFor(seq int64) *logChunk {
	idx := int(seq >> logChunkBits)
	for {
		if cs := l.chunks.Load(); cs != nil && idx < len(*cs) {
			return (*cs)[idx]
		}
		l.grow.Lock()
		cs := l.chunks.Load()
		if cs != nil && idx < len(*cs) {
			l.grow.Unlock()
			return (*cs)[idx]
		}
		var grown []*logChunk
		if cs != nil {
			grown = append(grown, *cs...)
		}
		for len(grown) <= idx {
			grown = append(grown, new(logChunk))
		}
		l.chunks.Store(&grown)
		l.grow.Unlock()
	}
}

// Len returns the number of reserved slots. A handful of the newest
// slots may still be mid-publication when there are concurrent
// appenders.
func (l *AtomicLog) Len() int {
	return int(l.next.Load())
}

// Snapshot copies the published records in sequence order. Slots still
// being written by concurrent appenders are skipped, so the result is a
// consistent prefix-plus-holes view — exactly the tolerance popularity
// recomputation needs.
func (l *AtomicLog) Snapshot() []Record {
	n := l.next.Load()
	out := make([]Record, 0, n)
	l.scan(n, func(r Record) { out = append(out, r) })
	return out
}

// Counts returns access counts per file id over the published log.
// numFiles bounds the id space; out-of-range ids are ignored.
func (l *AtomicLog) Counts(numFiles int) []int {
	counts := make([]int, numFiles)
	l.scan(l.next.Load(), func(r Record) {
		if r.FileID >= 0 && r.FileID < numFiles {
			counts[r.FileID]++
		}
	})
	return counts
}

// ScanFrom visits every published record with from <= seq < Len(), in
// order. Periodic consumers that remember their high-water mark (the
// replication epoch flush) pay for the tail appended since their last
// visit instead of re-copying the whole history every tick.
func (l *AtomicLog) ScanFrom(from int64, visit func(Record)) {
	if from < 0 {
		from = 0
	}
	l.scanRange(from, l.next.Load(), visit)
}

// scan visits every published record with sequence number < n, in order.
func (l *AtomicLog) scan(n int64, visit func(Record)) {
	l.scanRange(0, n, visit)
}

func (l *AtomicLog) scanRange(from, n int64, visit func(Record)) {
	cs := l.chunks.Load()
	if cs == nil {
		return
	}
	for seq := from; seq < n; seq++ {
		idx := int(seq >> logChunkBits)
		if idx >= len(*cs) {
			return // directory grew after we snapshotted; newer slots are unpublished to us
		}
		c := (*cs)[idx]
		i := seq & (logChunkSize - 1)
		if c.ready[i].Load() {
			visit(c.recs[i])
		}
	}
}
