package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		FileSizes: []int64{100, 200, 300},
		Records: []Record{
			{Seq: 0, TimeS: 0, Op: Read, FileID: 0, Size: 100},
			{Seq: 1, TimeS: 0.7, Op: Read, FileID: 2, Size: 300},
			{Seq: 2, TimeS: 1.4, Op: Write, FileID: 1, Size: 200},
			{Seq: 3, TimeS: 2.1, Op: Read, FileID: 0, Size: 100},
		},
	}
}

func TestValidateAcceptsGoodTrace(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Trace)
	}{
		{"bad seq", func(tr *Trace) { tr.Records[1].Seq = 7 }},
		{"time regression", func(tr *Trace) { tr.Records[2].TimeS = 0.1 }},
		{"file id out of range", func(tr *Trace) { tr.Records[0].FileID = 99 }},
		{"negative file id", func(tr *Trace) { tr.Records[0].FileID = -1 }},
		{"zero record size", func(tr *Trace) { tr.Records[0].Size = 0 }},
		{"zero file size", func(tr *Trace) { tr.FileSizes[1] = 0 }},
	}
	for _, tc := range cases {
		tr := sampleTrace()
		tc.mod(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad trace", tc.name)
		}
	}
}

func TestDuration(t *testing.T) {
	if got := sampleTrace().Duration(); got != 2.1 {
		t.Errorf("Duration = %g, want 2.1", got)
	}
	empty := &Trace{}
	if got := empty.Duration(); got != 0 {
		t.Errorf("empty Duration = %g, want 0", got)
	}
}

func TestCounts(t *testing.T) {
	got := sampleTrace().Counts()
	want := []int{2, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Counts = %v, want %v", got, want)
	}
}

func TestByFile(t *testing.T) {
	m := sampleTrace().ByFile()
	if !reflect.DeepEqual(m[0], []float64{0, 2.1}) {
		t.Errorf("file 0 pattern = %v", m[0])
	}
	if !reflect.DeepEqual(m[2], []float64{0.7}) {
		t.Errorf("file 2 pattern = %v", m[2])
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestRoundTripEmptyTrace(t *testing.T) {
	tr := &Trace{}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.NumFiles() != 0 || len(got.Records) != 0 {
		t.Fatalf("empty round trip produced %+v", got)
	}
}

func TestReadRejectsCorruptInputs(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad header":        "not-a-trace\n",
		"missing files":     "eevfs-trace/1\n",
		"bad file count":    "eevfs-trace/1\nfiles x\n",
		"truncated sizes":   "eevfs-trace/1\nfiles 2\nsize 0 10\n",
		"size out of order": "eevfs-trace/1\nfiles 2\nsize 1 10\nsize 0 10\nrecords 0\n",
		"bad record count":  "eevfs-trace/1\nfiles 0\nrecords nope\n",
		"short record":      "eevfs-trace/1\nfiles 1\nsize 0 10\nrecords 1\n0 0 r\n",
		"bad op":            "eevfs-trace/1\nfiles 1\nsize 0 10\nrecords 1\n0 0 x 0 10\n",
		"bad numbers":       "eevfs-trace/1\nfiles 1\nsize 0 10\nrecords 1\nzero 0 r 0 10\n",
		"invalid semantics": "eevfs-trace/1\nfiles 1\nsize 0 10\nrecords 1\n0 0 r 5 10\n",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted corrupt input", name)
		}
	}
}

func TestOpString(t *testing.T) {
	if Op(0).String() != "read" || Op(1).String() != "write" {
		t.Error("op strings wrong")
	}
	if Op(9).String() != "Op(9)" {
		t.Errorf("unknown op string = %q", Op(9).String())
	}
}

func TestAccessLogCounts(t *testing.T) {
	var l AccessLog
	for _, r := range sampleTrace().Records {
		l.Append(r)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	got := l.Counts(3)
	if !reflect.DeepEqual(got, []int{2, 1, 1}) {
		t.Errorf("Counts = %v", got)
	}
	// Out-of-range ids are ignored, not panicking.
	l.Append(Record{FileID: 99})
	l.Append(Record{FileID: -3})
	if got := l.Counts(3); !reflect.DeepEqual(got, []int{2, 1, 1}) {
		t.Errorf("Counts after junk = %v", got)
	}
}

func TestAccessLogCountsSince(t *testing.T) {
	var l AccessLog
	for _, r := range sampleTrace().Records {
		l.Append(r)
	}
	got := l.CountsSince(3, 1.0)
	if !reflect.DeepEqual(got, []int{1, 1, 0}) {
		t.Errorf("CountsSince = %v, want [1 1 0]", got)
	}
}

func TestRankByCount(t *testing.T) {
	ranks := RankByCount([]int{2, 5, 5, 0, 1})
	want := []int{1, 2, 0, 4, 3} // ties broken by ascending id
	if !reflect.DeepEqual(ranks, want) {
		t.Errorf("RankByCount = %v, want %v", ranks, want)
	}
}

func TestRankByCountEmpty(t *testing.T) {
	if got := RankByCount(nil); len(got) != 0 {
		t.Errorf("RankByCount(nil) = %v", got)
	}
}

// Property: RankByCount always returns a permutation of [0,n) with
// nonincreasing counts.
func TestQuickRankIsSortedPermutation(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		ranks := RankByCount(counts)
		if len(ranks) != len(counts) {
			return false
		}
		seen := make([]bool, len(counts))
		for _, id := range ranks {
			if id < 0 || id >= len(counts) || seen[id] {
				return false
			}
			seen[id] = true
		}
		for i := 1; i < len(ranks); i++ {
			if counts[ranks[i]] > counts[ranks[i-1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Write/Read round-trips arbitrary well-formed traces.
func TestQuickRoundTrip(t *testing.T) {
	f := func(sizes []uint16, recs []uint32) bool {
		if len(sizes) == 0 {
			return true
		}
		tr := &Trace{FileSizes: make([]int64, len(sizes))}
		for i, s := range sizes {
			tr.FileSizes[i] = int64(s) + 1
		}
		tm := 0.0
		for i, r := range recs {
			fid := int(r) % len(sizes)
			tm += float64(r%100) / 10
			tr.Records = append(tr.Records, Record{
				Seq: int64(i), TimeS: tm, Op: Op(r % 2),
				FileID: fid, Size: tr.FileSizes[fid],
			})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Parse(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteRead(b *testing.B) {
	tr := sampleTrace()
	for i := 0; i < 1000; i++ {
		tr.Records = append(tr.Records, Record{
			Seq: int64(len(tr.Records)), TimeS: float64(len(tr.Records)),
			Op: Read, FileID: 0, Size: 100,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Parse(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
