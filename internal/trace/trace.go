// Package trace defines the file-access trace format used throughout
// EEVFS: the workload generators emit traces, the storage server replays
// them against the cluster, and the append-only access log (Section IV of
// the paper) derives file popularity from them.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Op is the request kind.
type Op uint8

const (
	// Read fetches a whole file.
	Read Op = iota
	// Write stores/overwrites a whole file.
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Record is one file request in a trace.
type Record struct {
	Seq    int64   // position in the trace, 0-based
	TimeS  float64 // arrival time, seconds since trace start
	Op     Op
	FileID int   // dense file identifier, 0-based
	Size   int64 // request size in bytes (whole-file in EEVFS)
}

// Trace is an ordered request stream over a dense file-id space, plus the
// per-file sizes the placement layer needs.
type Trace struct {
	Records   []Record
	FileSizes []int64 // indexed by FileID; len is the file count
}

// NumFiles returns the size of the file-id space.
func (t *Trace) NumFiles() int { return len(t.FileSizes) }

// Duration returns the arrival time of the last record (0 for an empty
// trace). The run itself may finish later because of queueing.
func (t *Trace) Duration() float64 {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].TimeS
}

// Validate checks internal consistency: sequence numbering, nondecreasing
// arrival times, file ids within range, and positive sizes.
func (t *Trace) Validate() error {
	for i := range t.FileSizes {
		if t.FileSizes[i] <= 0 {
			return fmt.Errorf("trace: file %d has non-positive size %d", i, t.FileSizes[i])
		}
	}
	prev := -1.0
	for i, r := range t.Records {
		if r.Seq != int64(i) {
			return fmt.Errorf("trace: record %d has seq %d", i, r.Seq)
		}
		if r.TimeS < prev {
			return fmt.Errorf("trace: record %d time %g precedes %g", i, r.TimeS, prev)
		}
		prev = r.TimeS
		if r.FileID < 0 || r.FileID >= len(t.FileSizes) {
			return fmt.Errorf("trace: record %d references file %d of %d", i, r.FileID, len(t.FileSizes))
		}
		if r.Size <= 0 {
			return fmt.Errorf("trace: record %d has non-positive size %d", i, r.Size)
		}
	}
	return nil
}

// Counts returns per-file access counts (reads and writes).
func (t *Trace) Counts() []int {
	counts := make([]int, t.NumFiles())
	for _, r := range t.Records {
		counts[r.FileID]++
	}
	return counts
}

// ByFile splits the trace into per-file arrival-time lists, which is what
// the storage server forwards to each storage node as the "file access
// pattern" (Section III-B).
func (t *Trace) ByFile() map[int][]float64 {
	m := make(map[int][]float64)
	for _, r := range t.Records {
		m[r.FileID] = append(m[r.FileID], r.TimeS)
	}
	return m
}

// header tags the serialized format so stale files fail loudly.
const header = "eevfs-trace/1"

// maxPrealloc bounds how many entries Parse reserves from a
// header-declared count before any data lines have been read.
const maxPrealloc = 1 << 16

// Write serializes the trace in a line-oriented text format:
//
//	eevfs-trace/1
//	files <n>
//	size <fileID> <bytes>        (one per file)
//	records <n>
//	<seq> <time> <r|w> <fileID> <size>
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, header)
	fmt.Fprintf(bw, "files %d\n", len(t.FileSizes))
	for i, sz := range t.FileSizes {
		fmt.Fprintf(bw, "size %d %d\n", i, sz)
	}
	fmt.Fprintf(bw, "records %d\n", len(t.Records))
	for _, r := range t.Records {
		op := "r"
		if r.Op == Write {
			op = "w"
		}
		fmt.Fprintf(bw, "%d %s %s %d %d\n",
			r.Seq, strconv.FormatFloat(r.TimeS, 'g', -1, 64), op, r.FileID, r.Size)
	}
	return bw.Flush()
}

// Parse reads a trace in the format emitted by Write.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}

	h, err := line()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if h != header {
		return nil, fmt.Errorf("trace: bad header %q", h)
	}

	var nFiles int
	h, err = line()
	if err != nil {
		return nil, fmt.Errorf("trace: reading file count: %w", err)
	}
	if _, err := fmt.Sscanf(h, "files %d", &nFiles); err != nil || nFiles < 0 {
		return nil, fmt.Errorf("trace: bad file count line %q", h)
	}

	// The counts in the header are untrusted input: cap the upfront
	// allocation and grow as lines actually arrive, so a bogus
	// "files 999999999" header cannot demand gigabytes before the
	// first missing line is noticed.
	t := &Trace{FileSizes: make([]int64, 0, min(nFiles, maxPrealloc))}
	for i := 0; i < nFiles; i++ {
		h, err = line()
		if err != nil {
			return nil, fmt.Errorf("trace: reading size %d: %w", i, err)
		}
		var id int
		var sz int64
		if _, err := fmt.Sscanf(h, "size %d %d", &id, &sz); err != nil {
			return nil, fmt.Errorf("trace: bad size line %q", h)
		}
		if id != i {
			return nil, fmt.Errorf("trace: size line out of order: got file %d, want %d", id, i)
		}
		t.FileSizes = append(t.FileSizes, sz)
	}

	var nRecs int
	h, err = line()
	if err != nil {
		return nil, fmt.Errorf("trace: reading record count: %w", err)
	}
	if _, err := fmt.Sscanf(h, "records %d", &nRecs); err != nil || nRecs < 0 {
		return nil, fmt.Errorf("trace: bad record count line %q", h)
	}

	if nRecs > 0 {
		t.Records = make([]Record, 0, min(nRecs, maxPrealloc))
	}
	for i := 0; i < nRecs; i++ {
		h, err = line()
		if err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		fields := strings.Fields(h)
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: bad record line %q", h)
		}
		seq, err1 := strconv.ParseInt(fields[0], 10, 64)
		tm, err2 := strconv.ParseFloat(fields[1], 64)
		fid, err3 := strconv.Atoi(fields[3])
		sz, err4 := strconv.ParseInt(fields[4], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("trace: bad record line %q", h)
		}
		var op Op
		switch fields[2] {
		case "r":
			op = Read
		case "w":
			op = Write
		default:
			return nil, fmt.Errorf("trace: bad op %q in %q", fields[2], h)
		}
		t.Records = append(t.Records, Record{Seq: seq, TimeS: tm, Op: op, FileID: fid, Size: sz})
	}

	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// AccessLog is the append-only request log the storage server keeps
// (Section IV: "an append-only log of requests to keep track of file
// access patterns"). Popularity is derived from it.
type AccessLog struct {
	entries []Record
}

// Append records one request. Appending out of time order is allowed (the
// log is a journal, not an index).
func (l *AccessLog) Append(r Record) { l.entries = append(l.entries, r) }

// Len returns the number of logged requests.
func (l *AccessLog) Len() int { return len(l.entries) }

// Entries returns the raw journal (shared backing array; callers must not
// mutate).
func (l *AccessLog) Entries() []Record { return l.entries }

// Counts returns access counts per file id over the whole log. numFiles
// bounds the id space; out-of-range ids are ignored.
func (l *AccessLog) Counts(numFiles int) []int {
	counts := make([]int, numFiles)
	for _, r := range l.entries {
		if r.FileID >= 0 && r.FileID < numFiles {
			counts[r.FileID]++
		}
	}
	return counts
}

// CountsSince returns access counts restricted to entries with
// TimeS >= since — "popularity based on the number of accesses over a
// given period of time" (Section IV-B).
func (l *AccessLog) CountsSince(numFiles int, since float64) []int {
	counts := make([]int, numFiles)
	for _, r := range l.entries {
		if r.TimeS >= since && r.FileID >= 0 && r.FileID < numFiles {
			counts[r.FileID]++
		}
	}
	return counts
}

// RankByCount orders file ids by descending access count, breaking ties by
// ascending file id (deterministic). Files with zero accesses are
// included, after all accessed files.
func RankByCount(counts []int) []int {
	ids := make([]int, len(counts))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if counts[ids[a]] != counts[ids[b]] {
			return counts[ids[a]] > counts[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids
}
