package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary bytes to the trace parser: it must never
// panic, and anything it accepts must be a valid trace that round-trips.
func FuzzParse(f *testing.F) {
	var good bytes.Buffer
	if err := sampleTrace().Write(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add("")
	f.Add("eevfs-trace/1\nfiles 0\nrecords 0\n")
	f.Add("eevfs-trace/1\nfiles 1\nsize 0 10\nrecords 1\n0 0 r 0 10\n")
	f.Add("eevfs-trace/1\nfiles 2\nsize 0 -1\n")
	f.Add("eevfs-trace/1\nfiles 999999999\n")
	f.Add(strings.Repeat("size 0 1\n", 50))

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("Parse accepted an invalid trace: %v", verr)
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("re-encoding accepted trace failed: %v", err)
		}
		again, err := Parse(&buf)
		if err != nil {
			t.Fatalf("re-parsing own output failed: %v", err)
		}
		if len(again.Records) != len(tr.Records) || again.NumFiles() != tr.NumFiles() {
			t.Fatal("round trip changed shape")
		}
	})
}
