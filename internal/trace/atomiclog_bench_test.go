package trace

import (
	"sync"
	"testing"
)

// Append-path comparison: the mutex-guarded AccessLog (what the server
// used behind its global lock) vs the lock-free AtomicLog.

func BenchmarkAccessLogAppendMutex(b *testing.B) {
	var (
		mu  sync.Mutex
		log AccessLog
	)
	rec := Record{TimeS: 1, Op: Read, FileID: 3, Size: 1 << 20}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			r := rec
			r.Seq = int64(log.Len())
			log.Append(r)
			mu.Unlock()
		}
	})
}

func BenchmarkAtomicLogAppend(b *testing.B) {
	var log AtomicLog
	rec := Record{TimeS: 1, Op: Read, FileID: 3, Size: 1 << 20}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			log.Append(rec)
		}
	})
}

func BenchmarkAtomicLogCountsWhileAppending(b *testing.B) {
	var log AtomicLog
	for i := 0; i < 4096; i++ {
		log.Append(Record{TimeS: float64(i), Op: Read, FileID: i % 64, Size: 1})
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%8 == 0 {
				log.Counts(64)
			} else {
				log.Append(Record{TimeS: 1, Op: Read, FileID: i % 64, Size: 1})
			}
			i++
		}
	})
}
