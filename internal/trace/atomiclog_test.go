package trace

import (
	"runtime"
	"sync"
	"testing"
)

func TestAtomicLogSequentialMatchesAccessLog(t *testing.T) {
	var al AtomicLog
	var ref AccessLog
	for i := 0; i < 2500; i++ { // crosses a chunk boundary (1024)
		r := Record{TimeS: float64(i), Op: Read, FileID: i % 7, Size: int64(i)}
		seq := al.Append(r)
		if seq != int64(i) {
			t.Fatalf("Append %d returned seq %d", i, seq)
		}
		r.Seq = int64(i)
		ref.Append(r)
	}
	if al.Len() != ref.Len() {
		t.Fatalf("Len %d vs AccessLog %d", al.Len(), ref.Len())
	}
	snap := al.Snapshot()
	entries := ref.Entries()
	if len(snap) != len(entries) {
		t.Fatalf("Snapshot %d records vs %d", len(snap), len(entries))
	}
	for i := range snap {
		if snap[i] != entries[i] {
			t.Fatalf("record %d: %+v vs %+v", i, snap[i], entries[i])
		}
	}
	for _, n := range []int{0, 3, 7, 20} {
		a, b := al.Counts(n), ref.Counts(n)
		for id := range a {
			if a[id] != b[id] {
				t.Fatalf("Counts(%d)[%d] = %d vs %d", n, id, a[id], b[id])
			}
		}
	}
}

func TestAtomicLogConcurrentAppends(t *testing.T) {
	var al AtomicLog
	const (
		writers = 8
		perW    = 600 // total 4800: several chunk-directory grows
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				al.Append(Record{TimeS: 1, Op: Read, FileID: w, Size: 1})
			}
		}(w)
	}
	wg.Wait()
	if al.Len() != writers*perW {
		t.Fatalf("Len = %d, want %d (lost appends)", al.Len(), writers*perW)
	}
	snap := al.Snapshot()
	if len(snap) != writers*perW {
		t.Fatalf("Snapshot has %d records, want %d", len(snap), writers*perW)
	}
	// Sequence numbers must be dense and in order.
	for i, r := range snap {
		if r.Seq != int64(i) {
			t.Fatalf("record %d has Seq %d", i, r.Seq)
		}
	}
	// Per-writer counts must be exact: no record lost or duplicated.
	counts := al.Counts(writers)
	for w, c := range counts {
		if c != perW {
			t.Fatalf("writer %d count %d, want %d", w, c, perW)
		}
	}
}

func TestAtomicLogReadersDuringAppends(t *testing.T) {
	var al AtomicLog
	const total = 3000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			al.Append(Record{TimeS: float64(i), Op: Read, FileID: i % 5, Size: 1})
		}
	}()
	// Concurrent readers must always observe a consistent prefix: ordered
	// seqs, monotone lengths. Gosched keeps this loop from starving the
	// appender on a single-core machine.
	prevLen := 0
	for {
		select {
		case <-done:
			if got := len(al.Snapshot()); got != total {
				t.Fatalf("final snapshot %d records, want %d", got, total)
			}
			return
		default:
			runtime.Gosched()
		}
		snap := al.Snapshot()
		if len(snap) < prevLen {
			t.Fatalf("snapshot shrank: %d -> %d", prevLen, len(snap))
		}
		prevLen = len(snap)
		last := int64(-1)
		for _, r := range snap {
			if r.Seq <= last {
				t.Fatalf("snapshot seqs out of order: %d after %d", r.Seq, last)
			}
			last = r.Seq
		}
		al.Counts(5)
	}
}

func TestAtomicLogEmpty(t *testing.T) {
	var al AtomicLog
	if al.Len() != 0 {
		t.Fatalf("empty Len = %d", al.Len())
	}
	if got := al.Snapshot(); len(got) != 0 {
		t.Fatalf("empty Snapshot = %v", got)
	}
	if got := al.Counts(3); len(got) != 3 || got[0]+got[1]+got[2] != 0 {
		t.Fatalf("empty Counts = %v", got)
	}
}

// TestAtomicLogScanFrom: the tail scan must visit exactly the records at
// or past the mark, in order — the contract the replication epoch flush
// leans on to stay O(delta) per tick.
func TestAtomicLogScanFrom(t *testing.T) {
	var l AtomicLog
	for i := 0; i < 2500; i++ { // spans three chunks
		l.Append(Record{FileID: i})
	}
	var seqs []int64
	l.ScanFrom(1000, func(r Record) {
		if r.FileID != int(r.Seq) {
			t.Fatalf("record %d carries file id %d", r.Seq, r.FileID)
		}
		seqs = append(seqs, r.Seq)
	})
	if len(seqs) != 1500 || seqs[0] != 1000 || seqs[len(seqs)-1] != 2499 {
		t.Fatalf("scan from 1000 visited %d records [%d..%d], want 1500 [1000..2499]",
			len(seqs), seqs[0], seqs[len(seqs)-1])
	}
	// Past the end and negative marks are safe.
	l.ScanFrom(int64(l.Len()), func(Record) { t.Fatal("visited past the end") })
	n := 0
	l.ScanFrom(-5, func(Record) { n++ })
	if n != 2500 {
		t.Fatalf("negative mark visited %d, want all 2500", n)
	}
}

// The epoch-flush access pattern: a periodic consumer wants the ~1k
// records appended since its mark out of a journal holding 1M. The
// original Snapshot()-then-filter walk re-copied the whole history every
// tick; ScanFrom pays only for the tail.
func benchTailLog(b *testing.B) *AtomicLog {
	b.Helper()
	var l AtomicLog
	for i := 0; i < 1<<20; i++ {
		l.Append(Record{FileID: i & 1023})
	}
	return &l
}

func BenchmarkAtomicLogSnapshotTail(b *testing.B) {
	l := benchTailLog(b)
	mark := int64(l.Len() - 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, r := range l.Snapshot() {
			if r.Seq >= mark {
				n++
			}
		}
		if n != 1024 {
			b.Fatal(n)
		}
	}
}

func BenchmarkAtomicLogScanFromTail(b *testing.B) {
	l := benchTailLog(b)
	mark := int64(l.Len() - 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		l.ScanFrom(mark, func(Record) { n++ })
		if n != 1024 {
			b.Fatal(n)
		}
	}
}
