// Package disk models hard-drive performance and power for the EEVFS
// simulator and the real file-system prototype.
//
// The paper's testbed measured real ATA/133 drives that were physically
// transitioned between power states. This package is the substitution for
// that hardware: a service-time model (seek + rotational latency +
// transfer) and a power-state machine (active / idle / standby plus spin-up
// and spin-down transitions) whose dwell times are integrated into Joules.
package disk

import (
	"fmt"
	"math"

	"eevfs/internal/simtime"
)

// PowerState enumerates the disk power states used by EEVFS (Section III-C
// of the paper uses active, idle, and standby; the transition states carry
// the spin-up/spin-down energy and latency).
type PowerState int

const (
	// Active: platters spinning, head servicing a request.
	Active PowerState = iota
	// Idle: platters spinning, no request in service.
	Idle
	// Standby: platters stopped; a request must first spin the disk up.
	Standby
	// SpinningUp: transitioning standby -> active.
	SpinningUp
	// SpinningDown: transitioning idle -> standby.
	SpinningDown
	numStates
)

// String implements fmt.Stringer.
func (s PowerState) String() string {
	switch s {
	case Active:
		return "active"
	case Idle:
		return "idle"
	case Standby:
		return "standby"
	case SpinningUp:
		return "spinning-up"
	case SpinningDown:
		return "spinning-down"
	default:
		return fmt.Sprintf("PowerState(%d)", int(s))
	}
}

// Model holds the performance and power parameters of one drive type.
type Model struct {
	Name string

	// Performance.
	BandwidthMBps float64 // sustained transfer rate, MB/s (decimal MB)
	AvgSeekSec    float64 // average seek time, seconds
	AvgRotateSec  float64 // average rotational latency, seconds
	CapacityGB    float64

	// Power, in Watts.
	PActive  float64 // servicing a request
	PIdle    float64 // spinning, no request
	PStandby float64 // platters stopped

	// Transitions.
	SpinUpSec   float64 // standby -> active latency
	SpinUpJ     float64 // total energy of one spin-up
	SpinDownSec float64 // idle -> standby latency
	SpinDownJ   float64 // total energy of one spin-down
}

// Validate reports the first problem with the parameter set, or nil.
func (m Model) Validate() error {
	switch {
	case m.BandwidthMBps <= 0:
		return fmt.Errorf("disk %q: bandwidth must be positive", m.Name)
	case m.AvgSeekSec < 0 || m.AvgRotateSec < 0:
		return fmt.Errorf("disk %q: negative latency", m.Name)
	case m.PActive < m.PIdle:
		return fmt.Errorf("disk %q: active power below idle power", m.Name)
	case m.PIdle <= m.PStandby:
		return fmt.Errorf("disk %q: idle power must exceed standby power", m.Name)
	case m.PStandby < 0:
		return fmt.Errorf("disk %q: negative standby power", m.Name)
	case m.SpinUpSec <= 0 || m.SpinDownSec <= 0:
		return fmt.Errorf("disk %q: transition latencies must be positive", m.Name)
	case m.SpinUpJ <= 0 || m.SpinDownJ <= 0:
		return fmt.Errorf("disk %q: transition energies must be positive", m.Name)
	}
	return nil
}

// TransferTime returns the time to move size bytes at the sustained rate.
func (m Model) TransferTime(size int64) float64 {
	if size <= 0 {
		return 0
	}
	return float64(size) / (m.BandwidthMBps * 1e6)
}

// ServiceTime returns seek + rotational latency + transfer time for one
// request of size bytes. Sequential log appends on buffer disks should use
// SequentialTime instead.
func (m Model) ServiceTime(size int64) float64 {
	return m.AvgSeekSec + m.AvgRotateSec + m.TransferTime(size)
}

// SequentialTime returns the service time of a sequential (log) access:
// no seek, half the usual rotational latency. Buffer disks are log disks
// precisely so that writes take this path (Section I).
func (m Model) SequentialTime(size int64) float64 {
	return m.AvgRotateSec/2 + m.TransferTime(size)
}

// BreakEvenSec returns the minimum idle-gap length for which spinning down
// saves energy versus idling through the gap:
//
//	PIdle*T  >=  SpinDownJ + SpinUpJ + PStandby*(T - SpinDownSec - SpinUpSec)
//
// solved for T. Gaps shorter than this waste energy if the disk sleeps.
func (m Model) BreakEvenSec() float64 {
	num := m.SpinDownJ + m.SpinUpJ - m.PStandby*(m.SpinDownSec+m.SpinUpSec)
	den := m.PIdle - m.PStandby
	be := num / den
	// The disk cannot complete a sleep/wake cycle faster than the two
	// transitions themselves.
	if min := m.SpinDownSec + m.SpinUpSec; be < min {
		return min
	}
	return be
}

// StatePower returns the drawn power in the given state, with transition
// states drawing their energy spread uniformly over their latency.
func (m Model) StatePower(s PowerState) float64 {
	switch s {
	case Active:
		return m.PActive
	case Idle:
		return m.PIdle
	case Standby:
		return m.PStandby
	case SpinningUp:
		return m.SpinUpJ / m.SpinUpSec
	case SpinningDown:
		return m.SpinDownJ / m.SpinDownSec
	default:
		return 0
	}
}

// Stats is a snapshot of one disk's accumulated accounting.
type Stats struct {
	Name        string
	EnergyJ     float64
	SpinUps     int
	SpinDowns   int
	Requests    int64
	BytesMoved  int64
	TimeInState [int(numStates)]float64 // seconds per PowerState
}

// Transitions returns the paper's "number of power state transitions"
// metric: every spin-down and every spin-up counts as one transition.
func (s Stats) Transitions() int { return s.SpinUps + s.SpinDowns }

// Disk is the power-state machine of a single drive. It is a passive
// accounting object: the simulator (or the real storage node) drives state
// changes and the disk integrates energy over dwell times.
//
// Disk is not safe for concurrent use; the cluster simulator is
// single-threaded per run, and the real storage node guards each disk with
// its own lock.
type Disk struct {
	model      Model
	stats      Stats
	state      PowerState
	stateSince simtime.Time
	obs        Observer
}

// Observer receives every power-state transition as it happens, with the
// state being left and the state being entered. It runs synchronously
// inside the transition, so implementations must be cheap and must not
// call back into the Disk. Telemetry (the simulator's event journal, the
// storage node's transition counters) hangs off this hook.
type Observer func(now simtime.Time, from, to PowerState)

// SetObserver installs the transition observer (nil removes it).
func (d *Disk) SetObserver(fn Observer) { d.obs = fn }

// New creates a disk in the Idle state at time 0. It panics if the model
// is invalid (construction-time programming error, not a runtime input).
func New(name string, m Model) *Disk {
	if err := m.Validate(); err != nil {
		panic("disk: " + err.Error())
	}
	d := &Disk{model: m, state: Idle}
	d.stats.Name = name
	return d
}

// Model returns the disk's parameter set.
func (d *Disk) Model() Model { return d.model }

// State returns the current power state.
func (d *Disk) State() PowerState { return d.state }

// StateSince returns when the disk entered its current state.
func (d *Disk) StateSince() simtime.Time { return d.stateSince }

// Stats returns a copy of the accumulated counters. Call Advance first if
// you need energy integrated up to a specific instant.
func (d *Disk) Stats() Stats { return d.stats }

// Advance integrates energy from the last accounting point to now without
// changing state. now must not precede the last accounting point.
func (d *Disk) Advance(now simtime.Time) {
	if now < d.stateSince {
		panic(fmt.Sprintf("disk %s: Advance to %v before state start %v",
			d.stats.Name, now, d.stateSince))
	}
	dt := float64(now - d.stateSince)
	d.stats.EnergyJ += dt * d.model.StatePower(d.state)
	d.stats.TimeInState[d.state] += dt
	d.stateSince = now
}

// transition integrates up to now and switches state.
func (d *Disk) transition(now simtime.Time, to PowerState) {
	d.Advance(now)
	from := d.state
	d.state = to
	if d.obs != nil && from != to {
		d.obs(now, from, to)
	}
}

// BeginService marks the start of servicing a request at now. The disk
// must be spinning (Idle or Active); waking a standby disk is a separate,
// slower path the caller must model via BeginSpinUp/CompleteSpinUp.
func (d *Disk) BeginService(now simtime.Time) {
	switch d.state {
	case Idle, Active:
		d.transition(now, Active)
	default:
		panic(fmt.Sprintf("disk %s: BeginService in state %v", d.stats.Name, d.state))
	}
}

// EndService marks the completion of a request; the disk returns to Idle.
func (d *Disk) EndService(now simtime.Time, bytes int64) {
	if d.state != Active {
		panic(fmt.Sprintf("disk %s: EndService in state %v", d.stats.Name, d.state))
	}
	d.transition(now, Idle)
	d.stats.Requests++
	d.stats.BytesMoved += bytes
}

// BeginSpinDown starts an idle -> standby transition at now. The caller
// must schedule CompleteSpinDown at now + SpinDownSec.
func (d *Disk) BeginSpinDown(now simtime.Time) {
	if d.state != Idle {
		panic(fmt.Sprintf("disk %s: BeginSpinDown in state %v", d.stats.Name, d.state))
	}
	d.transition(now, SpinningDown)
	d.stats.SpinDowns++
}

// CompleteSpinDown finishes the transition into Standby.
func (d *Disk) CompleteSpinDown(now simtime.Time) {
	if d.state != SpinningDown {
		panic(fmt.Sprintf("disk %s: CompleteSpinDown in state %v", d.stats.Name, d.state))
	}
	d.transition(now, Standby)
}

// BeginSpinUp starts a standby -> active transition at now. A disk that is
// mid spin-down cannot abort (real drives can't either); the caller must
// wait for CompleteSpinDown before waking it.
func (d *Disk) BeginSpinUp(now simtime.Time) {
	if d.state != Standby {
		panic(fmt.Sprintf("disk %s: BeginSpinUp in state %v", d.stats.Name, d.state))
	}
	d.transition(now, SpinningUp)
	d.stats.SpinUps++
}

// CompleteSpinUp finishes the transition; the disk lands in Idle, ready
// for BeginService.
func (d *Disk) CompleteSpinUp(now simtime.Time) {
	if d.state != SpinningUp {
		panic(fmt.Sprintf("disk %s: CompleteSpinUp in state %v", d.stats.Name, d.state))
	}
	d.transition(now, Idle)
}

// Spinning reports whether the platters are up (Idle or Active).
func (d *Disk) Spinning() bool { return d.state == Idle || d.state == Active }

// RatedStartStopCycles is a typical rated start/stop cycle count for a
// desktop ATA drive of the paper's era (datasheets quote 40k-50k). The
// paper's reliability concern — "this small amount of energy savings may
// not be worth the stress put on the hard drives from the large amount of
// state changes" (Section VI-B) — is quantified against this rating.
const RatedStartStopCycles = 50_000

// YearsToWearOut extrapolates the observed sleep-cycle rate to the time
// it would take to exhaust rated start/stop cycles. observedSec is the
// span the Stats cover. It returns +Inf when no cycles were observed and
// 0 when observedSec is not positive (no meaningful rate).
func (s Stats) YearsToWearOut(observedSec float64, rated int) float64 {
	if observedSec <= 0 {
		return 0
	}
	if s.SpinDowns == 0 {
		return math.Inf(1)
	}
	cyclesPerSec := float64(s.SpinDowns) / observedSec
	secondsToRated := float64(rated) / cyclesPerSec
	const yearSec = 365.25 * 24 * 3600
	return secondsToRated / yearSec
}
