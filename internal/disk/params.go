package disk

// Parameter catalog for the testbed drive types (Table I of the paper).
//
// Bandwidths, capacities, and the ~2 s spin-up latency are taken directly
// from the paper (Section V-A and VI-C). The paper does not publish the
// drives' power figures; the wattages below are representative of 7200-rpm
// desktop ATA drives of that generation (e.g. IBM Deskstar / Maxtor
// DiamondMax datasheets): ~12.5 W seeking, ~7 W idle, ~1 W standby, with a
// spin-up drawing roughly 15 W for its 2 s duration. Absolute Joules
// therefore differ from the paper's wall-power measurements, but the
// break-even structure — the quantity that drives every published shape —
// is preserved: BreakEvenSec() for these drives is ~5.6 s, consistent with
// the paper's choice of a 5 s idle threshold.

// ModelType1 is the Type 1 storage-node drive: 80 GB ATA/133 at 58 MB/s.
var ModelType1 = Model{
	Name:          "ata133-type1",
	BandwidthMBps: 58,
	AvgSeekSec:    0.0085,
	AvgRotateSec:  0.00417, // half a revolution at 7200 rpm
	CapacityGB:    80,
	PActive:       12.5,
	PIdle:         7.2,
	PStandby:      1.0,
	SpinUpSec:     2.0,
	SpinUpJ:       30,
	SpinDownSec:   1.0,
	SpinDownJ:     8,
}

// ModelType2 is the Type 2 storage-node drive: 80 GB ATA/133 at 34 MB/s.
var ModelType2 = Model{
	Name:          "ata133-type2",
	BandwidthMBps: 34,
	AvgSeekSec:    0.009,
	AvgRotateSec:  0.00417,
	CapacityGB:    80,
	PActive:       11.5,
	PIdle:         6.9,
	PStandby:      1.0,
	SpinUpSec:     2.2,
	SpinUpJ:       33,
	SpinDownSec:   1.0,
	SpinDownJ:     8,
}

// ModelServerSATA is the storage-server drive: 120 GB SATA at 100 MB/s.
// The server disk only holds metadata and never sleeps.
var ModelServerSATA = Model{
	Name:          "sata-server",
	BandwidthMBps: 100,
	AvgSeekSec:    0.008,
	AvgRotateSec:  0.00417,
	CapacityGB:    120,
	PActive:       10.0,
	PIdle:         6.5,
	PStandby:      1.3,
	SpinUpSec:     2.0,
	SpinUpJ:       32,
	SpinDownSec:   1.0,
	SpinDownJ:     8,
}

// Catalog maps model names to their parameter sets, for configuration
// files and CLI flags.
var Catalog = map[string]Model{
	ModelType1.Name:      ModelType1,
	ModelType2.Name:      ModelType2,
	ModelServerSATA.Name: ModelServerSATA,
	ModelLowPower.Name:   ModelLowPower,
}

// ModelLowPower represents the "replace high-performance disks with new
// energy-efficient disks" alternative the paper discusses in Section II
// (citing Song [20] and the mobile-disk literature): a 5400-rpm
// low-power drive — roughly half the wattage, but also roughly half the
// sustained bandwidth and a slower seek. The LowPower baseline runs the
// cluster on these drives with no power management at all.
var ModelLowPower = Model{
	Name:          "lowpower-5400",
	BandwidthMBps: 25,
	AvgSeekSec:    0.012,
	AvgRotateSec:  0.00556, // half a revolution at 5400 rpm
	CapacityGB:    80,
	PActive:       6.0,
	PIdle:         3.6,
	PStandby:      0.8,
	SpinUpSec:     1.8,
	SpinUpJ:       20,
	SpinDownSec:   1.0,
	SpinDownJ:     5,
}
