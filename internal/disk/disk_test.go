package disk

import (
	"math"
	"testing"
	"testing/quick"

	"eevfs/internal/simtime"
)

func testModel() Model {
	return Model{
		Name:          "test",
		BandwidthMBps: 50,
		AvgSeekSec:    0.008,
		AvgRotateSec:  0.004,
		CapacityGB:    80,
		PActive:       10,
		PIdle:         6,
		PStandby:      1,
		SpinUpSec:     2,
		SpinUpJ:       30,
		SpinDownSec:   1,
		SpinDownJ:     8,
	}
}

func TestCatalogModelsValid(t *testing.T) {
	for name, m := range Catalog {
		if err := m.Validate(); err != nil {
			t.Errorf("catalog model %q invalid: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("catalog key %q != model name %q", name, m.Name)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Model)
	}{
		{"zero bandwidth", func(m *Model) { m.BandwidthMBps = 0 }},
		{"negative seek", func(m *Model) { m.AvgSeekSec = -1 }},
		{"active below idle", func(m *Model) { m.PActive = 1 }},
		{"idle below standby", func(m *Model) { m.PIdle = 0.5 }},
		{"negative standby", func(m *Model) { m.PStandby = -1; m.PIdle = 0.5 }},
		{"zero spinup time", func(m *Model) { m.SpinUpSec = 0 }},
		{"zero spinup energy", func(m *Model) { m.SpinUpJ = 0 }},
		{"zero spindown energy", func(m *Model) { m.SpinDownJ = 0 }},
	}
	for _, tc := range cases {
		m := testModel()
		tc.mod(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid model", tc.name)
		}
	}
}

func TestTransferTime(t *testing.T) {
	m := testModel()
	// 50 MB at 50 MB/s = 1 s.
	if got := m.TransferTime(50e6); math.Abs(got-1) > 1e-12 {
		t.Errorf("TransferTime(50MB) = %g, want 1", got)
	}
	if got := m.TransferTime(0); got != 0 {
		t.Errorf("TransferTime(0) = %g, want 0", got)
	}
	if got := m.TransferTime(-5); got != 0 {
		t.Errorf("TransferTime(-5) = %g, want 0", got)
	}
}

func TestServiceTimeComposition(t *testing.T) {
	m := testModel()
	want := 0.008 + 0.004 + 0.2 // 10 MB at 50 MB/s
	if got := m.ServiceTime(10e6); math.Abs(got-want) > 1e-12 {
		t.Errorf("ServiceTime(10MB) = %g, want %g", got, want)
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	m := testModel()
	if seq, rnd := m.SequentialTime(1e6), m.ServiceTime(1e6); seq >= rnd {
		t.Errorf("sequential %g not faster than random %g", seq, rnd)
	}
}

func TestBreakEvenFormula(t *testing.T) {
	m := testModel()
	// (8 + 30 - 1*(1+2)) / (6-1) = 35/5 = 7 s.
	if got := m.BreakEvenSec(); math.Abs(got-7) > 1e-12 {
		t.Errorf("BreakEvenSec = %g, want 7", got)
	}
}

func TestBreakEvenFloorIsTransitionTime(t *testing.T) {
	m := testModel()
	// Make transitions nearly free: break-even must still cover the
	// physical transition latency.
	m.SpinUpJ, m.SpinDownJ = 0.001, 0.001
	if got, want := m.BreakEvenSec(), m.SpinUpSec+m.SpinDownSec; got < want {
		t.Errorf("BreakEvenSec = %g below transition floor %g", got, want)
	}
}

func TestStatePowerAllStates(t *testing.T) {
	m := testModel()
	cases := map[PowerState]float64{
		Active:       10,
		Idle:         6,
		Standby:      1,
		SpinningUp:   15, // 30 J over 2 s
		SpinningDown: 8,  // 8 J over 1 s
	}
	for st, want := range cases {
		if got := m.StatePower(st); math.Abs(got-want) > 1e-12 {
			t.Errorf("StatePower(%v) = %g, want %g", st, got, want)
		}
	}
}

func TestPowerStateStrings(t *testing.T) {
	for st, want := range map[PowerState]string{
		Active: "active", Idle: "idle", Standby: "standby",
		SpinningUp: "spinning-up", SpinningDown: "spinning-down",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), want)
		}
	}
	if PowerState(99).String() != "PowerState(99)" {
		t.Errorf("unknown state string = %q", PowerState(99).String())
	}
}

func TestDiskIdleEnergyIntegration(t *testing.T) {
	d := New("d0", testModel())
	d.Advance(10)
	st := d.Stats()
	if math.Abs(st.EnergyJ-60) > 1e-9 { // 10 s at 6 W idle
		t.Errorf("idle energy = %g, want 60", st.EnergyJ)
	}
	if math.Abs(st.TimeInState[Idle]-10) > 1e-12 {
		t.Errorf("idle dwell = %g, want 10", st.TimeInState[Idle])
	}
}

func TestServiceCycleEnergy(t *testing.T) {
	d := New("d0", testModel())
	d.BeginService(5)    // 5 s idle = 30 J
	d.EndService(7, 1e6) // 2 s active = 20 J
	d.Advance(10)        // 3 s idle = 18 J
	st := d.Stats()
	if math.Abs(st.EnergyJ-68) > 1e-9 {
		t.Errorf("energy = %g, want 68", st.EnergyJ)
	}
	if st.Requests != 1 || st.BytesMoved != 1e6 {
		t.Errorf("requests=%d bytes=%d, want 1, 1e6", st.Requests, st.BytesMoved)
	}
}

func TestFullSleepWakeCycle(t *testing.T) {
	d := New("d0", testModel())
	d.BeginSpinDown(10)    // 10 s idle = 60 J
	d.CompleteSpinDown(11) // 1 s spin-down = 8 J
	d.BeginSpinUp(31)      // 20 s standby = 20 J
	d.CompleteSpinUp(33)   // 2 s spin-up = 30 J
	d.Advance(34)          // 1 s idle = 6 J
	st := d.Stats()
	if math.Abs(st.EnergyJ-124) > 1e-9 {
		t.Errorf("energy = %g, want 124", st.EnergyJ)
	}
	if st.SpinUps != 1 || st.SpinDowns != 1 {
		t.Errorf("spinups=%d spindowns=%d, want 1 each", st.SpinUps, st.SpinDowns)
	}
	if st.Transitions() != 2 {
		t.Errorf("Transitions = %d, want 2", st.Transitions())
	}
	if d.State() != Idle {
		t.Errorf("final state %v, want Idle", d.State())
	}
}

func TestSleepingSavesEnergyBeyondBreakEven(t *testing.T) {
	m := testModel()
	gap := m.BreakEvenSec() * 3

	sleeper := New("s", m)
	sleeper.BeginSpinDown(0)
	sleeper.CompleteSpinDown(simtime.Time(m.SpinDownSec))
	sleeper.BeginSpinUp(simtime.Time(gap - m.SpinUpSec))
	sleeper.CompleteSpinUp(simtime.Time(gap))

	idler := New("i", m)
	idler.Advance(simtime.Time(gap))

	if se, ie := sleeper.Stats().EnergyJ, idler.Stats().EnergyJ; se >= ie {
		t.Errorf("sleeping used %g J >= idling %g J over %g s gap", se, ie, gap)
	}
}

func TestSleepingWastesEnergyBelowBreakEven(t *testing.T) {
	m := testModel()
	gap := m.BreakEvenSec() * 0.6
	if gap < m.SpinDownSec+m.SpinUpSec {
		t.Skip("gap shorter than transitions; cycle impossible")
	}

	sleeper := New("s", m)
	sleeper.BeginSpinDown(0)
	sleeper.CompleteSpinDown(simtime.Time(m.SpinDownSec))
	sleeper.BeginSpinUp(simtime.Time(gap - m.SpinUpSec))
	sleeper.CompleteSpinUp(simtime.Time(gap))

	idler := New("i", m)
	idler.Advance(simtime.Time(gap))

	if se, ie := sleeper.Stats().EnergyJ, idler.Stats().EnergyJ; se <= ie {
		t.Errorf("sleeping used %g J <= idling %g J below break-even", se, ie)
	}
}

func TestIllegalTransitionsPanic(t *testing.T) {
	cases := []struct {
		name string
		do   func(d *Disk)
	}{
		{"EndService while idle", func(d *Disk) { d.EndService(1, 0) }},
		{"BeginSpinUp while idle", func(d *Disk) { d.BeginSpinUp(1) }},
		{"CompleteSpinUp while idle", func(d *Disk) { d.CompleteSpinUp(1) }},
		{"CompleteSpinDown while idle", func(d *Disk) { d.CompleteSpinDown(1) }},
		{"BeginService while standby", func(d *Disk) {
			d.BeginSpinDown(1)
			d.CompleteSpinDown(2)
			d.BeginService(3)
		}},
		{"BeginSpinDown while active", func(d *Disk) {
			d.BeginService(1)
			d.BeginSpinDown(2)
		}},
		{"Advance backwards", func(d *Disk) {
			d.Advance(5)
			d.Advance(1)
		}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.do(New("d", testModel()))
		}()
	}
}

func TestNewRejectsInvalidModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid model")
		}
	}()
	m := testModel()
	m.BandwidthMBps = 0
	New("bad", m)
}

func TestSpinning(t *testing.T) {
	d := New("d", testModel())
	if !d.Spinning() {
		t.Error("fresh disk should be spinning")
	}
	d.BeginSpinDown(1)
	if d.Spinning() {
		t.Error("spinning-down disk reported as spinning")
	}
	d.CompleteSpinDown(2)
	if d.Spinning() {
		t.Error("standby disk reported as spinning")
	}
	d.BeginSpinUp(10)
	d.CompleteSpinUp(12)
	if !d.Spinning() {
		t.Error("woken disk should be spinning")
	}
}

// Property: energy integrated over any partition of an idle interval equals
// the closed form PIdle * length, regardless of how Advance calls split it.
func TestQuickEnergyPartitionInvariant(t *testing.T) {
	m := testModel()
	f := func(cuts []uint16) bool {
		d := New("d", m)
		now := simtime.Time(0)
		total := 0.0
		for _, c := range cuts {
			dt := float64(c%1000) / 100.0
			now += simtime.Time(dt)
			total += dt
			d.Advance(now)
		}
		want := m.PIdle * total
		return math.Abs(d.Stats().EnergyJ-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total time-in-state always sums to the last Advance timestamp.
func TestQuickDwellTimesSumToElapsed(t *testing.T) {
	f := func(steps []uint8) bool {
		d := New("d", testModel())
		now := simtime.Time(0)
		step := func(dt float64) { now += simtime.Time(dt) }
		for _, s := range steps {
			switch s % 4 {
			case 0:
				step(1)
				d.Advance(now)
			case 1:
				if d.State() == Idle {
					d.BeginService(now)
					step(0.5)
					d.EndService(now, 100)
				}
			case 2:
				if d.State() == Idle {
					d.BeginSpinDown(now)
					step(d.Model().SpinDownSec)
					d.CompleteSpinDown(now)
				}
			case 3:
				if d.State() == Standby {
					d.BeginSpinUp(now)
					step(d.Model().SpinUpSec)
					d.CompleteSpinUp(now)
				}
			}
		}
		d.Advance(now)
		sum := 0.0
		for _, v := range d.Stats().TimeInState {
			sum += v
		}
		return math.Abs(sum-float64(now)) < 1e-9*(1+float64(now))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkServiceCycle(b *testing.B) {
	d := New("d", testModel())
	now := simtime.Time(0)
	for i := 0; i < b.N; i++ {
		d.BeginService(now)
		now += 0.01
		d.EndService(now, 1e6)
		now += 0.01
	}
}

func TestYearsToWearOut(t *testing.T) {
	st := Stats{SpinDowns: 100}
	// 100 cycles over 1000 s -> 0.1 cycles/s -> 50k cycles in 500k s.
	got := st.YearsToWearOut(1000, RatedStartStopCycles)
	want := 500_000.0 / (365.25 * 24 * 3600)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("YearsToWearOut = %g, want %g", got, want)
	}
	if !math.IsInf((Stats{}).YearsToWearOut(1000, 50000), 1) {
		t.Error("no cycles should mean infinite life")
	}
	if (Stats{SpinDowns: 5}).YearsToWearOut(0, 50000) != 0 {
		t.Error("zero span should return 0")
	}
}

func TestWearMonotoneInTransitionRate(t *testing.T) {
	slow := Stats{SpinDowns: 10}
	fast := Stats{SpinDowns: 1000}
	if fast.YearsToWearOut(700, RatedStartStopCycles) >= slow.YearsToWearOut(700, RatedStartStopCycles) {
		t.Fatal("more cycles should wear out faster")
	}
}
