package adaptive

import (
	"math"
	"testing"

	"eevfs/internal/disk"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b)) }

func TestDefaultsValid(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Fatalf("Defaults rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mods := map[string]func(*Params){
		"alpha zero":         func(p *Params) { p.Alpha = 0 },
		"alpha over one":     func(p *Params) { p.Alpha = 1.1 },
		"safety below one":   func(p *Params) { p.SafetyFactor = 0.9 },
		"negative coldfloor": func(p *Params) { p.ColdFloorSec = -1 },
		"zero window":        func(p *Params) { p.BudgetWindowSec = 0 },
		"zero budget":        func(p *Params) { p.BudgetPerWindow = 0 },
		"zero churn window":  func(p *Params) { p.ChurnWindow = 0 },
		"zero threshold":     func(p *Params) { p.ChurnThreshold = 0 },
		"threshold over 1":   func(p *Params) { p.ChurnThreshold = 1.5 },
		"negative cooldown":  func(p *Params) { p.ChurnCooldown = -1 },
		"zero fetch hits":    func(p *Params) { p.MinFetchHits = 0 },
		"negative fetch cap": func(p *Params) { p.MaxFetchPerRecompute = -1 },
		"fetch safety low":   func(p *Params) { p.FetchSafety = 0.5 },
	}
	for name, mod := range mods {
		p := Defaults()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid parameter set", name)
		}
	}
}

func TestNewControllerPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewController accepted invalid params")
		}
	}()
	NewController(Params{}, 1)
}

// TestPaybackDwell checks the dwell algebra against the disk model's own
// break-even: a gap of exactly SpinDownSec + dwell + SpinUpSec must cost
// the same slept as idled, which is what BreakEvenSec expresses before
// its transition-time floor.
func TestPaybackDwell(t *testing.T) {
	m := disk.ModelType1
	d := PaybackDwellSec(m)
	if d <= 0 {
		t.Fatalf("Type 1 payback dwell = %g, want positive", d)
	}
	idled := m.PIdle * (m.SpinDownSec + d + m.SpinUpSec)
	slept := m.SpinDownJ + m.PStandby*d + m.SpinUpJ
	if !almost(idled, slept) {
		t.Fatalf("dwell %g does not balance: idle %g J vs sleep %g J", d, idled, slept)
	}
	// A model whose transitions are free pays back instantly.
	free := m
	free.SpinDownJ, free.SpinUpJ = 0, 0
	if got := PaybackDwellSec(free); got != 0 {
		t.Fatalf("free transitions should need no dwell, got %g", got)
	}
}

func TestObserveEWMA(t *testing.T) {
	p := Defaults()
	p.Alpha = 0.5
	c := NewController(p, 1)
	if got := c.EstimateGapSec(0, 0); got != 0 {
		t.Fatalf("estimate before any arrival = %g, want 0", got)
	}
	c.Observe(0, 10) // first arrival: no gap yet
	c.Observe(0, 14) // gap 4 -> ewma 4
	if got := c.EstimateGapSec(0, 14); !almost(got, 4) {
		t.Fatalf("after one gap, estimate = %g, want 4", got)
	}
	c.Observe(0, 22) // gap 8 -> ewma 0.5*8 + 0.5*4 = 6
	if got := c.EstimateGapSec(0, 22); !almost(got, 6) {
		t.Fatalf("after two gaps, estimate = %g, want 6", got)
	}
	// The in-progress gap floors the estimate once it exceeds the EWMA.
	if got := c.EstimateGapSec(0, 40); !almost(got, 18) {
		t.Fatalf("in-progress gap of 18 not reflected: estimate = %g", got)
	}
}

func TestThresholdRegimes(t *testing.T) {
	m := disk.ModelType1
	base := m.BreakEvenSec() // idleThreshold below break-even -> floor wins
	payback := PaybackDwellSec(m)
	p := Defaults()
	c := NewController(p, 1)

	// No gap observed: cold fallback, kappa^2 x break-even.
	cold := p.SafetyFactor * p.SafetyFactor * m.BreakEvenSec()
	if got := c.ThresholdSec(0, 1, m); !almost(got, cold) {
		t.Fatalf("cold threshold = %g, want %g", got, cold)
	}

	// Confident-long: estimate clears kappa*(base+payback) -> sleep at base.
	long := p.SafetyFactor*(base+payback) + 1
	c.Observe(0, 0)
	c.Observe(0, long) // ewma = long
	if got := c.ThresholdSec(0, 1, m); !almost(got, base) {
		t.Fatalf("confident-long threshold = %g, want base %g", got, base)
	}

	// Mid-range: estimate clears kappa*payback but not the long bar ->
	// threshold tracks kappa*estimate (floored at base).
	mid := p.SafetyFactor*payback + 0.2
	c2 := NewController(p, 1)
	c2.Observe(0, 0)
	c2.Observe(0, mid)
	want := p.SafetyFactor * mid
	if want < base {
		want = base
	}
	if got := c2.ThresholdSec(0, 1, m); !almost(got, want) {
		t.Fatalf("mid-range threshold = %g, want %g", got, want)
	}

	// Short-gap: estimate below kappa*payback -> cold fallback again,
	// never below base.
	c3 := NewController(p, 1)
	c3.Observe(0, 0)
	c3.Observe(0, 0.1)
	got := c3.ThresholdSec(0, 1, m)
	if got < base {
		t.Fatalf("short-gap threshold %g dropped below break-even %g", got, base)
	}
	if got < cold-1e-9 {
		t.Fatalf("short-gap threshold %g below cold floor %g", got, cold)
	}

	// Mispredict claims everything profits: bare base.
	pm := p
	pm.Mispredict = true
	c4 := NewController(pm, 1)
	c4.Observe(0, 0)
	c4.Observe(0, 0.1)
	if got := c4.ThresholdSec(0, 1, m); !almost(got, base) {
		t.Fatalf("mispredicting threshold = %g, want bare base %g", got, base)
	}
}

// TestThresholdNeverBelowBreakEven: across a sweep of estimates the
// returned threshold must respect the rent-or-buy floor.
func TestThresholdNeverBelowBreakEven(t *testing.T) {
	m := disk.ModelType1
	p := Defaults()
	for _, gap := range []float64{0.01, 0.5, 1, 2, 3, 5, 8, 13, 50, 1000} {
		c := NewController(p, 1)
		c.Observe(0, 0)
		c.Observe(0, gap)
		if got := c.ThresholdSec(0, 0.5, m); got < m.BreakEvenSec()-1e-9 {
			t.Fatalf("gap %g: threshold %g below break-even %g", gap, got, m.BreakEvenSec())
		}
	}
}

func TestTransitionBudget(t *testing.T) {
	p := Defaults()
	p.BudgetWindowSec = 100
	p.BudgetPerWindow = 2
	c := NewController(p, 1)

	if !c.AllowSpinDown(0, 0) {
		t.Fatal("fresh disk denied its first spin-down")
	}
	c.NoteSpinDown(0, 10)
	c.NoteSpinDown(0, 20)
	if c.AllowSpinDown(0, 30) {
		t.Fatal("third spin-down inside the window allowed")
	}
	if got := c.NextBudgetFreeAt(0, 30); !almost(got, 110) {
		t.Fatalf("NextBudgetFreeAt = %g, want 110 (first entry + window)", got)
	}
	// At exactly first-entry + window the oldest entry ages out.
	if !c.AllowSpinDown(0, 110) {
		t.Fatal("budget not released after the window slid past")
	}
	// The budget is per disk.
	c2 := NewController(p, 2)
	c2.NoteSpinDown(0, 0)
	c2.NoteSpinDown(0, 1)
	if !c2.AllowSpinDown(1, 1) {
		t.Fatal("disk 1 charged for disk 0's spin-downs")
	}
	// Mispredict bypasses the budget entirely — that is the injected
	// fault the transition-budget oracle exists to catch.
	pm := p
	pm.Mispredict = true
	c3 := NewController(pm, 1)
	c3.NoteSpinDown(0, 0)
	c3.NoteSpinDown(0, 1)
	c3.NoteSpinDown(0, 2)
	if !c3.AllowSpinDown(0, 3) {
		t.Fatal("mispredicting controller should bypass the budget")
	}
}

func TestChurnFiresOnDivergence(t *testing.T) {
	p := Defaults()
	p.ChurnWindow = 10
	p.ChurnThreshold = 0.3
	p.ChurnCooldown = 4
	c := NewChurn(p)

	// All hits: never fires, miss rate 0.
	for i := 0; i < 10; i++ {
		if c.Observe(i, true) {
			t.Fatal("churn fired on a pure-hit window")
		}
	}
	if c.MissRate() != 0 {
		t.Fatalf("miss rate %g on a pure-hit window", c.MissRate())
	}

	// Four misses out of ten crosses the 0.3 threshold.
	fired := false
	for i := 0; i < 4; i++ {
		fired = c.Observe(100+i, false)
	}
	if !fired {
		t.Fatalf("churn did not fire at miss rate %g > 0.3", c.MissRate())
	}

	// Reset starts the cooldown: the next few observations stay quiet
	// even though the window is still miss-heavy.
	c.Reset()
	for i := 0; i < p.ChurnCooldown-1; i++ {
		if c.Observe(200+i, false) {
			t.Fatalf("churn fired %d accesses after reset, inside cooldown %d", i+1, p.ChurnCooldown)
		}
	}
	if !c.Observe(300, false) {
		t.Fatal("churn stayed quiet after the cooldown expired")
	}

	// Counts reflect the ring content.
	counts := c.Counts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != p.ChurnWindow {
		t.Fatalf("window counts sum to %d, want %d", total, p.ChurnWindow)
	}
}

// TestChurnPartialWindow: the detector must not fire before the window
// has filled — a handful of early misses is not evidence of divergence.
func TestChurnPartialWindow(t *testing.T) {
	p := Defaults()
	p.ChurnWindow = 20
	c := NewChurn(p)
	for i := 0; i < 19; i++ {
		if c.Observe(i, false) {
			t.Fatalf("churn fired on a partially filled window (%d/20)", i+1)
		}
	}
}

// TestChurnRescore: after a recompute lands, Rescore must re-label the
// window against the new buffered set — stale misses for now-buffered
// files become hits, and files the recompute skipped stay misses.
func TestChurnRescore(t *testing.T) {
	p := Defaults()
	p.ChurnWindow = 10
	p.ChurnThreshold = 0.3
	p.ChurnCooldown = 4
	c := NewChurn(p)
	// Six hits on file 1, four misses on file 2: over threshold.
	for i := 0; i < 6; i++ {
		c.Observe(1, true)
	}
	for i := 0; i < 4; i++ {
		c.Observe(2, false)
	}
	if c.MissRate() != 0.4 {
		t.Fatalf("miss rate %g before rescore, want 0.4", c.MissRate())
	}
	// The recompute buffered file 2 (and file 1 stayed buffered).
	c.Rescore(func(fid int) bool { return fid == 1 || fid == 2 })
	if c.MissRate() != 0 {
		t.Fatalf("miss rate %g after rescoring a fully-buffered window", c.MissRate())
	}
	// Now pretend the recompute could only keep file 1: every file-2
	// access goes back to being a miss.
	c.Rescore(func(fid int) bool { return fid == 1 })
	if c.MissRate() != 0.4 {
		t.Fatalf("miss rate %g after dropping file 2, want 0.4", c.MissRate())
	}
	// Counts are unaffected by rescoring — only labels move.
	counts := c.Counts()
	if counts[1] != 6 || counts[2] != 4 {
		t.Fatalf("counts changed under rescore: %v", counts)
	}
}
