// Package adaptive implements the online power-management policy arm:
// per-disk exponentially-weighted inter-arrival estimation, an adapted
// spin-down threshold with a competitive floor, a hard per-window
// transition budget, and a churn detector that triggers re-prefetching
// when the observed hot set diverges from the buffered one.
//
// The paper's PRE-BUD predictor (Section IV) uses static thresholds and
// fixed reprefetch epochs. This package replaces both with online
// estimates, following the energy-aware DBMS line of work: track
// inter-arrival gaps live, sleep only when the estimate says the gap
// will pay back the transition overhead, and bound the worst case —
// a mispredicting estimator can never thrash a disk past its
// transition budget, and the spin-down threshold never drops below the
// break-even point (the classic two-competitive rent-or-buy floor).
//
// Everything here is driven by virtual time passed in as float64
// seconds: the package is deterministic and wall-clock free, so the
// cluster simulator, the simtest oracles, and the real storage path can
// all share it.
package adaptive

import (
	"fmt"

	"eevfs/internal/disk"
)

// Params tunes the online controller. The zero value is invalid; start
// from Defaults.
type Params struct {
	// Alpha is the EWMA weight of the newest inter-arrival gap (0,1].
	// Larger values adapt faster and forget faster.
	Alpha float64

	// SafetyFactor (kappa) scales every profitability comparison: a disk
	// sleeps through an estimated gap only when the estimate is at least
	// SafetyFactor times the payback dwell, so an estimator that is off
	// by up to that factor still never predicts a losing sleep.
	SafetyFactor float64

	// ColdFloorSec is the idle time after which a disk with no evidence
	// of profitable gaps (a short-gap estimate, or no observed gaps at
	// all) is declared cold and sent to standby anyway — the regime-
	// change fallback that lets a disk whose hot set moved away sleep
	// even though its estimate is stale. Zero derives
	// SafetyFactor^2 x break-even from the disk model.
	ColdFloorSec float64

	// BudgetWindowSec and BudgetPerWindow cap power transitions: at most
	// BudgetPerWindow spin-downs per disk within any sliding window of
	// BudgetWindowSec seconds. This is the hard anti-thrash bound — no
	// estimate, however wrong, can exceed it.
	BudgetWindowSec float64
	BudgetPerWindow int

	// ChurnWindow is how many recent accesses the hot-set divergence
	// detector remembers.
	ChurnWindow int
	// ChurnThreshold is the buffer-miss fraction over the window above
	// which the prefetched set is considered stale and a re-prefetch
	// fires (replacing the fixed reprefetch epoch).
	ChurnThreshold float64
	// ChurnCooldown is the minimum number of accesses between two
	// re-prefetch triggers.
	ChurnCooldown int

	// MinFetchHits is the windowed access count a file needs before it
	// is worth fetching into the buffer disk.
	MinFetchHits int
	// MaxFetchPerRecompute caps how many files one re-prefetch may
	// fetch.
	MaxFetchPerRecompute int
	// FetchSafety requires the realized savings bank to hold that many
	// times a fetch's estimated energy cost before the fetch is allowed,
	// so speculative fetching can only ever spend savings the policy has
	// already banked.
	FetchSafety float64

	// Mispredict is a test-only fault: the estimator claims every gap is
	// profitably long and the transition budget is ignored. The simtest
	// battery injects it to prove the transition-budget oracle catches a
	// broken estimator.
	Mispredict bool
}

// Defaults returns the tuned production parameter set.
func Defaults() Params {
	return Params{
		Alpha:                0.4,
		SafetyFactor:         1.5,
		BudgetWindowSec:      120,
		BudgetPerWindow:      5,
		ChurnWindow:          96,
		ChurnThreshold:       0.3,
		ChurnCooldown:        12,
		MinFetchHits:         1,
		MaxFetchPerRecompute: 16,
		FetchSafety:          2,
	}
}

// Validate reports the first problem with the parameter set.
func (p Params) Validate() error {
	switch {
	case p.Alpha <= 0 || p.Alpha > 1:
		return fmt.Errorf("adaptive: Alpha %g outside (0,1]", p.Alpha)
	case p.SafetyFactor < 1:
		return fmt.Errorf("adaptive: SafetyFactor %g below 1", p.SafetyFactor)
	case p.ColdFloorSec < 0:
		return fmt.Errorf("adaptive: negative ColdFloorSec")
	case p.BudgetWindowSec <= 0:
		return fmt.Errorf("adaptive: BudgetWindowSec must be positive")
	case p.BudgetPerWindow < 1:
		return fmt.Errorf("adaptive: BudgetPerWindow must be at least 1")
	case p.ChurnWindow < 1:
		return fmt.Errorf("adaptive: ChurnWindow must be at least 1")
	case p.ChurnThreshold <= 0 || p.ChurnThreshold > 1:
		return fmt.Errorf("adaptive: ChurnThreshold %g outside (0,1]", p.ChurnThreshold)
	case p.ChurnCooldown < 0:
		return fmt.Errorf("adaptive: negative ChurnCooldown")
	case p.MinFetchHits < 1:
		return fmt.Errorf("adaptive: MinFetchHits must be at least 1")
	case p.MaxFetchPerRecompute < 0:
		return fmt.Errorf("adaptive: negative MaxFetchPerRecompute")
	case p.FetchSafety < 1:
		return fmt.Errorf("adaptive: FetchSafety %g below 1", p.FetchSafety)
	}
	return nil
}

// PaybackDwellSec returns the standby dwell needed before a sleep/wake
// cycle beats having idled through the same span:
//
//	PIdle*(down+dwell+up) >= SpinDownJ + PStandby*dwell + SpinUpJ
//
// solved for dwell. It is the profitability bar every sleep decision is
// measured against (Model.BreakEvenSec is the same equation expressed as
// a whole-gap length).
func PaybackDwellSec(m disk.Model) float64 {
	num := m.SpinDownJ + m.SpinUpJ - m.PIdle*(m.SpinDownSec+m.SpinUpSec)
	den := m.PIdle - m.PStandby
	d := num / den
	if d < 0 {
		return 0
	}
	return d
}

// diskState is the per-disk estimator plus transition-budget ledger.
type diskState struct {
	lastArrival float64
	ewmaGap     float64
	seen        bool // any arrival observed
	haveGap     bool // at least one full gap observed
	spinDowns   []float64
}

// Controller holds the online state for a set of disks. It is not safe
// for concurrent use; callers in concurrent contexts (the real storage
// path) must wrap it in their own lock. The simulator is single-
// threaded per run.
type Controller struct {
	p     Params
	disks []diskState
}

// NewController creates a controller for n disks. It panics on invalid
// params (construction-time programming error, mirroring disk.New).
func NewController(p Params, n int) *Controller {
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	return &Controller{p: p, disks: make([]diskState, n)}
}

// Observe feeds one foreground arrival on disk i at virtual time now.
func (c *Controller) Observe(i int, now float64) {
	d := &c.disks[i]
	if d.seen {
		gap := now - d.lastArrival
		if gap >= 0 {
			if d.haveGap {
				d.ewmaGap = c.p.Alpha*gap + (1-c.p.Alpha)*d.ewmaGap
			} else {
				d.ewmaGap = gap
				d.haveGap = true
			}
		}
	}
	d.seen = true
	d.lastArrival = now
}

// EstimateGapSec returns the current inter-arrival estimate for disk i,
// floored by the time already elapsed since its last arrival (the gap
// in progress is by definition at least that long). Returns 0 before
// any gap has been observed.
func (c *Controller) EstimateGapSec(i int, now float64) float64 {
	d := &c.disks[i]
	est := d.ewmaGap
	if d.seen && now-d.lastArrival > est {
		est = now - d.lastArrival
	}
	return est
}

// ThresholdSec returns the adapted spin-down threshold for disk i: how
// long the disk must sit idle before the controller sends it to
// standby. idleThreshold is the configured policy floor and m the
// disk's model.
//
// Three regimes, all floored at the model's break-even gap (sleeping
// earlier than break-even can never pay, the rent-or-buy bound):
//
//   - Confident-long: the gap estimate exceeds SafetyFactor times the
//     whole threshold-plus-payback span, so a typical gap pays for the
//     sleep even after waiting out the base threshold — and still pays
//     if the estimate is off by the safety factor. Sleep at the base
//     threshold: this is where the adapted policy earns its savings,
//     matching a well-tuned static threshold whenever arrivals really
//     are sparse.
//
//   - Mid-range: the gap estimate clears SafetyFactor times the payback
//     dwell, but not by enough to absorb the base wait too. The
//     threshold is SafetyFactor times the estimate — regular traffic
//     whose gaps match the estimate never triggers a sleep at all, and
//     an episode that does sleep has already outlived its prediction:
//     the cost of any such episode stays within a constant factor of
//     the offline optimum (idle through the estimate, then pay one
//     cycle), the classic competitive rent-or-buy hedge.
//
//   - Cold fallback: the estimate says gaps are short (or nothing was
//     ever observed), so routine sleeping would thrash. Only after the
//     disk has idled SafetyFactor^2 past both the estimate and the
//     payback dwell — and past ColdFloorSec — is the estimate declared
//     stale (the hot set moved away) and the disk slept anyway.
func (c *Controller) ThresholdSec(i int, idleThreshold float64, m disk.Model) float64 {
	base := idleThreshold
	if be := m.BreakEvenSec(); be > base {
		base = be
	}
	if c.p.Mispredict {
		return base // claims every gap profits: sleep at the bare floor
	}
	d := &c.disks[i]
	payback := PaybackDwellSec(m)
	if d.haveGap && d.ewmaGap >= c.p.SafetyFactor*(base+payback) {
		return base
	}
	if d.haveGap && d.ewmaGap >= c.p.SafetyFactor*payback {
		if th := c.p.SafetyFactor * d.ewmaGap; th > base {
			return th
		}
		return base
	}
	k2 := c.p.SafetyFactor * c.p.SafetyFactor
	cold := c.p.ColdFloorSec
	if cold == 0 {
		cold = k2 * m.BreakEvenSec()
	}
	th := base
	if v := k2 * d.ewmaGap; v > th {
		th = v
	}
	if v := k2 * payback; v > th {
		th = v
	}
	if cold > th {
		th = cold
	}
	return th
}

// AllowSpinDown reports whether disk i may spin down at now without
// exceeding the per-window transition budget.
func (c *Controller) AllowSpinDown(i int, now float64) bool {
	if c.p.Mispredict {
		return true // the injected fault bypasses the budget
	}
	c.pruneBudget(i, now)
	return len(c.disks[i].spinDowns) < c.p.BudgetPerWindow
}

// NoteSpinDown records a spin-down initiated on disk i at now.
func (c *Controller) NoteSpinDown(i int, now float64) {
	c.pruneBudget(i, now)
	d := &c.disks[i]
	d.spinDowns = append(d.spinDowns, now)
}

// NextBudgetFreeAt returns the earliest time at or after now at which
// disk i's budget admits another spin-down.
func (c *Controller) NextBudgetFreeAt(i int, now float64) float64 {
	if c.AllowSpinDown(i, now) {
		return now
	}
	d := &c.disks[i]
	overflow := len(d.spinDowns) - c.p.BudgetPerWindow + 1
	return d.spinDowns[overflow-1] + c.p.BudgetWindowSec
}

// pruneBudget drops spin-down timestamps that have aged out of the
// sliding window (a spin-down at t constrains decisions strictly before
// t + BudgetWindowSec).
func (c *Controller) pruneBudget(i int, now float64) {
	d := &c.disks[i]
	keep := d.spinDowns
	for len(keep) > 0 && keep[0]+c.p.BudgetWindowSec <= now {
		keep = keep[1:]
	}
	d.spinDowns = keep
}

// Churn detects hot-set divergence: it remembers whether each of the
// last ChurnWindow accesses could be served from the buffer disks, and
// fires when the miss fraction crosses the threshold.
type Churn struct {
	p      Params
	fids   []int
	hits   []bool
	filled int
	idx    int
	misses int
	since  int // accesses since the last trigger
}

// NewChurn creates a detector. It panics on invalid params.
func NewChurn(p Params) *Churn {
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	return &Churn{
		p:     p,
		fids:  make([]int, p.ChurnWindow),
		hits:  make([]bool, p.ChurnWindow),
		since: p.ChurnCooldown, // allow an immediate first trigger
	}
}

// Observe records one read access (hit = served from a buffer disk) and
// reports whether a re-prefetch should fire now.
func (c *Churn) Observe(fid int, hit bool) bool {
	if c.filled == len(c.fids) && !c.hits[c.idx] {
		c.misses--
	}
	c.fids[c.idx] = fid
	c.hits[c.idx] = hit
	if !hit {
		c.misses++
	}
	c.idx = (c.idx + 1) % len(c.fids)
	if c.filled < len(c.fids) {
		c.filled++
	}
	c.since++
	if c.filled < len(c.fids) || c.since < c.p.ChurnCooldown {
		return false
	}
	return float64(c.misses) > c.p.ChurnThreshold*float64(c.filled)
}

// Reset marks a re-prefetch as done, starting the cooldown. The access
// window is kept: popularity context survives the recompute.
func (c *Churn) Reset() { c.since = 0 }

// Rescore relabels every access in the window against a new buffered
// set. After a re-prefetch the window's hit/miss labels are stale — they
// were scored against the set the recompute just replaced — and leaving
// them would refire the detector on evidence it already acted on.
func (c *Churn) Rescore(buffered func(fid int) bool) {
	c.misses = 0
	for i := 0; i < c.filled; i++ {
		c.hits[i] = buffered(c.fids[i])
		if !c.hits[i] {
			c.misses++
		}
	}
}

// Counts returns the per-file access counts over the current window.
func (c *Churn) Counts() map[int]int {
	counts := make(map[int]int, c.filled)
	for i := 0; i < c.filled; i++ {
		counts[c.fids[i]]++
	}
	return counts
}

// MissRate returns the miss fraction over the current window (0 when
// the window is empty).
func (c *Churn) MissRate() float64 {
	if c.filled == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.filled)
}
