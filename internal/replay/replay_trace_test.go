package replay

import (
	"bytes"
	"strings"
	"testing"

	"eevfs/internal/trace"
	"eevfs/internal/workload"
)

// TestBerkeleyTraceFileEndToEnd is the full prototype methodology in one
// test: generate the Berkeley-web-style workload, serialize it to the
// on-disk trace format, parse it back (the path an operator-supplied
// trace file takes), populate a live cluster by popularity, and replay it
// twice — once cold (NPF: no prefetch, so no buffer-disk hits) and once
// after the top-k prefetch (PF: the working set is covered, so reads hit
// the buffer disks).
func TestBerkeleyTraceFileEndToEnd(t *testing.T) {
	orig, err := workload.BerkeleyWeb(workload.BerkeleyWebConfig{
		NumFiles: 24, NumRequests: 50, WorkingSet: 6, ZipfExponent: 1.1,
		MeanSize: 30_000, InterArrival: 0, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through the serialized format, as a real trace would
	// arrive.
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Parse(&buf)
	if err != nil {
		t.Fatalf("parsing a trace the writer produced: %v", err)
	}
	if len(tr.Records) != len(orig.Records) || len(tr.FileSizes) != len(orig.FileSizes) {
		t.Fatalf("round trip changed shape: %d/%d records, %d/%d files",
			len(tr.Records), len(orig.Records), len(tr.FileSizes), len(orig.FileSizes))
	}

	cl := liveCluster(t)
	opts := Options{}
	if err := PopulateByPopularity(cl, tr, opts); err != nil {
		t.Fatal(err)
	}

	npf, err := Replay(cl, tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if npf.Errors != 0 || npf.Reads != len(tr.Records) {
		t.Fatalf("NPF replay: reads=%d errors=%d, want %d/0", npf.Reads, npf.Errors, len(tr.Records))
	}
	if npf.BufferHits != 0 {
		t.Fatalf("NPF replay recorded %d buffer hits with nothing prefetched", npf.BufferHits)
	}

	if _, err := cl.Prefetch(8); err != nil {
		t.Fatal(err)
	}
	pf, err := Replay(cl, tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Errors != 0 {
		t.Fatalf("PF replay: %d errors", pf.Errors)
	}
	if pf.BufferHits == 0 {
		t.Fatal("PF replay hit the buffer disks zero times after prefetching the working set")
	}
	if pf.HitRatio() < 0.9 {
		t.Errorf("PF hit ratio %.2f, want >= 0.9 (working set 6 within k=8)", pf.HitRatio())
	}
}

// TestParseMalformedTraces: every way a hand-edited or truncated trace
// file can be wrong must yield a parse error naming the problem, never a
// silently wrong trace.
func TestParseMalformedTraces(t *testing.T) {
	good := "eevfs-trace/1\nfiles 2\nsize 0 100\nsize 1 200\nrecords 1\n0 0.5 r 1 200\n"
	if _, err := trace.Parse(strings.NewReader(good)); err != nil {
		t.Fatalf("baseline trace rejected: %v", err)
	}
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad header", "not-a-trace/9\nfiles 0\nrecords 0\n"},
		{"missing file count", "eevfs-trace/1\n"},
		{"bad file count", "eevfs-trace/1\nfiles lots\nrecords 0\n"},
		{"negative file count", "eevfs-trace/1\nfiles -2\nrecords 0\n"},
		{"truncated sizes", "eevfs-trace/1\nfiles 2\nsize 0 100\nrecords 0\n"},
		{"bad size line", "eevfs-trace/1\nfiles 1\nsize 0 tiny\nrecords 0\n"},
		{"out-of-order sizes", "eevfs-trace/1\nfiles 2\nsize 1 200\nsize 0 100\nrecords 0\n"},
		{"missing record count", "eevfs-trace/1\nfiles 1\nsize 0 100\n"},
		{"bad record count", "eevfs-trace/1\nfiles 1\nsize 0 100\nrecords some\n"},
		{"truncated records", "eevfs-trace/1\nfiles 1\nsize 0 100\nrecords 2\n0 0.5 r 0 100\n"},
		{"bad op", "eevfs-trace/1\nfiles 1\nsize 0 100\nrecords 1\n0 0.5 x 0 100\n"},
		{"bad record field", "eevfs-trace/1\nfiles 1\nsize 0 100\nrecords 1\n0 soon r 0 100\n"},
		{"short record line", "eevfs-trace/1\nfiles 1\nsize 0 100\nrecords 1\n0 0.5 r\n"},
	}
	for _, tc := range cases {
		if _, err := trace.Parse(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: Parse accepted a malformed trace", tc.name)
		}
	}
}

// TestReplayParsedTraceValidates: a parsed trace that references file ids
// outside its size table must be rejected by the replay entry points
// (Validate runs before any network traffic).
func TestReplayParsedTraceValidates(t *testing.T) {
	in := "eevfs-trace/1\nfiles 1\nsize 0 100\nrecords 1\n0 0.5 r 7 100\n"
	tr, err := trace.Parse(strings.NewReader(in))
	if err != nil {
		// Parse may reject out-of-range ids itself; that is fine too.
		return
	}
	if err := Populate(nil, tr, Options{}); err == nil {
		t.Error("Populate accepted a trace with out-of-range file ids")
	}
	if _, err := Replay(nil, tr, Options{}); err == nil {
		t.Error("Replay accepted a trace with out-of-range file ids")
	}
}
