package replay

import (
	"io"
	"log"
	"testing"

	"eevfs/internal/disk"
	"eevfs/internal/fs"
	"eevfs/internal/trace"
	"eevfs/internal/workload"
)

func liveCluster(t *testing.T) *fs.Client {
	t.Helper()
	quiet := log.New(io.Discard, "", 0)
	var addrs []string
	for i := 0; i < 2; i++ {
		node, err := fs.StartNode(fs.NodeConfig{
			Addr: "127.0.0.1:0", RootDir: t.TempDir(), DataDisks: 2,
			DataModel: disk.ModelType1, BufferModel: disk.ModelType1,
			IdleThresholdSec: 5, TimeScale: 5000, InjectLatency: true, Logger: quiet,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		addrs = append(addrs, node.Addr())
	}
	srv, err := fs.StartServer(fs.ServerConfig{Addr: "127.0.0.1:0", NodeAddrs: addrs, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := fs.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func smallWebTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := workload.BerkeleyWeb(workload.BerkeleyWebConfig{
		NumFiles: 30, NumRequests: 60, WorkingSet: 8, ZipfExponent: 1.1,
		MeanSize: 40_000, InterArrival: 0, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestContentDeterministicAndVerifiable(t *testing.T) {
	a := Content(5, 1000)
	b := Content(5, 1000)
	if string(a) != string(b) {
		t.Fatal("content not deterministic")
	}
	if !Verify(5, a) {
		t.Fatal("Verify rejected its own content")
	}
	if Verify(6, a) {
		t.Fatal("Verify accepted wrong file id")
	}
	a[10] ^= 0xFF
	if Verify(5, a) {
		t.Fatal("Verify accepted corrupted data")
	}
}

func TestContentDiffersAcrossFiles(t *testing.T) {
	if string(Content(1, 64)) == string(Content(2, 64)) {
		t.Fatal("two files share content")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.FileName(3) != "replay-f000003.dat" {
		t.Errorf("FileName = %q", o.FileName(3))
	}
	if o.scaledSize(100) != 100 {
		t.Errorf("default scale changed size")
	}
	o.SizeScale = 1000
	if o.scaledSize(100) != 1 {
		t.Errorf("scaled size floor = %d, want 1", o.scaledSize(100))
	}
}

func TestPopulateAndReplayEndToEnd(t *testing.T) {
	cl := liveCluster(t)
	tr := smallWebTrace(t)
	opts := Options{SizeScale: 1}

	if err := Populate(cl, tr, opts); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(cl, tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads != 60 || res.Errors != 0 {
		t.Fatalf("reads=%d errors=%d", res.Reads, res.Errors)
	}
	if res.BufferHits != 0 {
		t.Fatalf("unprefetched replay recorded %d buffer hits", res.BufferHits)
	}
	if res.Response.N != 60 || res.Response.Mean <= 0 {
		t.Fatalf("response summary %+v", res.Response)
	}

	// Prefetch the hot set; the rerun should hit the buffer on every
	// read (the working set is 8 files, all within K=10).
	if _, err := cl.Prefetch(10); err != nil {
		t.Fatal(err)
	}
	res2, err := Replay(cl, tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.HitRatio() != 1 {
		t.Fatalf("post-prefetch hit ratio %.2f, want 1.0", res2.HitRatio())
	}
}

func TestPopulateByPopularityOrders(t *testing.T) {
	cl := liveCluster(t)
	tr := smallWebTrace(t)
	opts := Options{}
	if err := PopulateByPopularity(cl, tr, opts); err != nil {
		t.Fatal(err)
	}
	// All files exist and are readable regardless of creation order.
	data, _, err := cl.Read(opts.FileName(0))
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(0, data) {
		t.Fatal("file 0 corrupted")
	}
}

func TestReplayWithWrites(t *testing.T) {
	cl := liveCluster(t)
	tr, err := workload.Synthetic(workload.SyntheticConfig{
		NumFiles: 10, NumRequests: 30, MeanSize: 10_000,
		MU: 3, InterArrival: 0, WriteFraction: 0.4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{}
	if err := Populate(cl, tr, opts); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(cl, tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads+res.Writes != 30 || res.Errors != 0 {
		t.Fatalf("reads=%d writes=%d errors=%d", res.Reads, res.Writes, res.Errors)
	}
	if res.Writes == 0 {
		t.Fatal("no writes replayed")
	}
	if res.WriteResponse.N != res.Writes {
		t.Fatal("write response sampler inconsistent")
	}
}

func TestReplayPacing(t *testing.T) {
	cl := liveCluster(t)
	tr, err := workload.Synthetic(workload.SyntheticConfig{
		NumFiles: 2, NumRequests: 5, MeanSize: 1000,
		MU: 0, InterArrival: 1.0, Seed: 1, // 4 s of trace time
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{TimeScale: 100} // compress to ~40 ms
	if err := Populate(cl, tr, opts); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(cl, tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallSeconds < 0.04 {
		t.Fatalf("pacing ignored: wall %.3fs, want >= 0.04", res.WallSeconds)
	}
	if res.WallSeconds > 2 {
		t.Fatalf("pacing too slow: wall %.3fs", res.WallSeconds)
	}
}

func TestReplayCountsErrorsForMissingFiles(t *testing.T) {
	cl := liveCluster(t)
	tr := smallWebTrace(t)
	// No Populate: every read fails, but Replay completes.
	res, err := Replay(cl, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != len(tr.Records) || res.Reads != 0 {
		t.Fatalf("errors=%d reads=%d", res.Errors, res.Reads)
	}
}

func TestReplayRejectsInvalidTrace(t *testing.T) {
	cl := liveCluster(t)
	bad := &trace.Trace{
		FileSizes: []int64{10},
		Records:   []trace.Record{{Seq: 5, FileID: 0, Size: 10}},
	}
	if _, err := Replay(cl, bad, Options{}); err == nil {
		t.Fatal("invalid trace accepted")
	}
	if err := Populate(cl, bad, Options{}); err == nil {
		t.Fatal("invalid trace accepted by Populate")
	}
}
