// Package replay drives a live EEVFS deployment (the TCP prototype) with a
// trace — the methodology of the paper's prototype evaluation: "the
// implementation uses a trace to replay file access patterns" (Section IV).
//
// Populate creates the trace's files on the cluster; Replay then issues
// the requests with (optionally compressed) inter-arrival pacing and
// collects client-observed response times and buffer-hit counts.
package replay

import (
	"fmt"
	"time"

	"eevfs/internal/fs"
	"eevfs/internal/metrics"
	"eevfs/internal/trace"
)

// Options controls a replay run.
type Options struct {
	// TimeScale compresses the trace's inter-arrival delays: 10 means
	// the replay runs 10x faster than the trace's own clock. <= 0 means
	// "as fast as possible" (no pacing).
	TimeScale float64
	// SizeScale divides the trace's file sizes, so a 10 MB-file trace can
	// be replayed against directories without writing gigabytes. <= 0
	// defaults to 1. Sizes are floored at 1 byte.
	SizeScale int64
	// NamePrefix prefixes generated file names ("replay-" by default).
	NamePrefix string
}

func (o Options) sizeScale() int64 {
	if o.SizeScale <= 0 {
		return 1
	}
	return o.SizeScale
}

func (o Options) prefix() string {
	if o.NamePrefix == "" {
		return "replay-"
	}
	return o.NamePrefix
}

// FileName returns the cluster file name used for a trace file id.
func (o Options) FileName(id int) string {
	return fmt.Sprintf("%sf%06d.dat", o.prefix(), id)
}

// scaledSize returns the on-cluster size for a trace file.
func (o Options) scaledSize(traceSize int64) int64 {
	sz := traceSize / o.sizeScale()
	if sz < 1 {
		sz = 1
	}
	return sz
}

// Result summarizes a replay run.
type Result struct {
	Response      metrics.Summary
	ReadResponse  metrics.Summary
	WriteResponse metrics.Summary
	Reads         int
	Writes        int
	BufferHits    int
	Errors        int
	WallSeconds   float64
}

// HitRatio returns the buffer-disk hit ratio over reads (0 with none).
func (r Result) HitRatio() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.BufferHits) / float64(r.Reads)
}

// Populate creates every file of the trace on the cluster, in file-id
// order (which, for popularity-ranked traces, makes creation order embody
// popularity — Section IV-A). Content is deterministic per file so reads
// can be verified.
func Populate(cl *fs.Client, tr *trace.Trace, opts Options) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	for id, size := range tr.FileSizes {
		data := Content(id, opts.scaledSize(size))
		if err := cl.Create(opts.FileName(id), data); err != nil {
			return fmt.Errorf("replay: creating file %d: %w", id, err)
		}
	}
	return nil
}

// PopulateByPopularity creates the trace's files in descending popularity
// order, the layout step of the paper's process flow (steps 2-3).
func PopulateByPopularity(cl *fs.Client, tr *trace.Trace, opts Options) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	for _, id := range trace.RankByCount(tr.Counts()) {
		data := Content(id, opts.scaledSize(tr.FileSizes[id]))
		if err := cl.Create(opts.FileName(id), data); err != nil {
			return fmt.Errorf("replay: creating file %d: %w", id, err)
		}
	}
	return nil
}

// Content generates the deterministic byte pattern for a file: a rolling
// function of the file id, so corruption and file mix-ups are detectable.
func Content(id int, size int64) []byte {
	data := make([]byte, size)
	x := uint32(id)*2654435761 + 1
	for i := range data {
		x = x*1664525 + 1013904223
		data[i] = byte(x >> 24)
	}
	return data
}

// Verify checks that data matches the deterministic content for id.
func Verify(id int, data []byte) bool {
	want := Content(id, int64(len(data)))
	if len(want) != len(data) {
		return false
	}
	for i := range data {
		if data[i] != want[i] {
			return false
		}
	}
	return true
}

// Replay issues the trace's requests against the cluster with scaled
// pacing and returns client-side measurements. Individual request failures
// are counted, not fatal — a replay against a degraded cluster still
// reports what succeeded.
func Replay(cl *fs.Client, tr *trace.Trace, opts Options) (Result, error) {
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	var all, reads, writes metrics.Sampler
	start := time.Now()

	for _, rec := range tr.Records {
		if opts.TimeScale > 0 {
			target := time.Duration(rec.TimeS / opts.TimeScale * float64(time.Second))
			if elapsed := time.Since(start); elapsed < target {
				time.Sleep(target - elapsed)
			}
		}
		name := opts.FileName(rec.FileID)
		reqStart := time.Now()
		switch rec.Op {
		case trace.Read:
			data, fromBuffer, err := cl.Read(name)
			if err != nil {
				res.Errors++
				continue
			}
			rt := time.Since(reqStart).Seconds()
			all.Add(rt)
			reads.Add(rt)
			res.Reads++
			if fromBuffer {
				res.BufferHits++
			}
			if !Verify(rec.FileID, data) {
				return Result{}, fmt.Errorf("replay: file %d content corrupted", rec.FileID)
			}
		case trace.Write:
			data := Content(rec.FileID, opts.scaledSize(rec.Size))
			if _, err := cl.Write(name, data); err != nil {
				res.Errors++
				continue
			}
			rt := time.Since(reqStart).Seconds()
			all.Add(rt)
			writes.Add(rt)
			res.Writes++
		}
	}

	res.WallSeconds = time.Since(start).Seconds()
	res.Response = all.Summarize()
	res.ReadResponse = reads.Summarize()
	res.WriteResponse = writes.Summarize()
	return res, nil
}
