// Package baseline assembles the comparison systems discussed in
// Section II of the paper so that the experiments can answer "EEVFS
// versus what?":
//
//   - AlwaysOn: no power management at all (the paper's NPF arm).
//   - ThresholdDPM: classic dynamic power management — disks spin down
//     after a fixed idle threshold, no prefetching (Benini et al. [14]).
//   - MAID: a buffer disk used as an LRU cache populated on access
//     (Colarelli & Grunwald [4]); storage-system level, no future
//     knowledge, threshold-timer sleeping.
//   - PDC: popular data concentration — popular files migrated to the
//     first disks so later disks can sleep (Pinheiro & Bianchini [15]);
//     modeled as concentrated placement plus threshold DPM. The paper's
//     criticism (migration energy, whole-system metadata) is discussed in
//     DESIGN.md; the migration itself is assumed already done, which is
//     generous to PDC.
//   - LowPower: every drive replaced with a 5400-rpm low-power model, no
//     power management — the "replace the disks" alternative (Song [20])
//     whose weakness, per the paper, is that it trades away performance.
//   - EEVFS: the paper's system — popularity prefetch into buffer disks,
//     hint-driven predictive sleeping.
package baseline

import (
	"fmt"
	"sort"

	"eevfs/internal/cluster"
	"eevfs/internal/disk"
	"eevfs/internal/trace"
)

// Name identifies a comparison system.
type Name string

// The comparator set.
const (
	AlwaysOn     Name = "always-on"
	ThresholdDPM Name = "threshold-dpm"
	MAID         Name = "maid-lru"
	PDC          Name = "pdc-concentrate"
	LowPower     Name = "lowpower-disks"
	EEVFS        Name = "eevfs-prefetch"
)

// All lists every comparator in presentation order.
var All = []Name{AlwaysOn, ThresholdDPM, MAID, PDC, LowPower, EEVFS}

// Configure derives the comparator's cluster configuration from a base
// EEVFS configuration (the base's testbed shape, thresholds, and prefetch
// depth are reused).
func Configure(base cluster.Config, n Name) (cluster.Config, error) {
	switch n {
	case AlwaysOn:
		return base.NPF(), nil
	case ThresholdDPM:
		c := base.NPF()
		c.DPMWithoutPrefetch = true
		return c, nil
	case MAID:
		c := base.NPF()
		c.MAID = true
		return c, nil
	case PDC:
		c := base.NPF()
		c.Concentrate = true
		c.DPMWithoutPrefetch = true
		return c, nil
	case LowPower:
		c := base.NPF()
		for i := range c.Nodes {
			c.Nodes[i].DataModel = disk.ModelLowPower
			c.Nodes[i].BufferModel = disk.ModelLowPower
		}
		return c, nil
	case EEVFS:
		c := base
		c.Prefetch = true
		c.MAID = false
		c.Concentrate = false
		if c.PrefetchCount == 0 {
			c.PrefetchCount = 70
		}
		return c, nil
	default:
		return cluster.Config{}, fmt.Errorf("baseline: unknown comparator %q", n)
	}
}

// Comparison holds one comparator's measured run.
type Comparison struct {
	Name   Name
	Result cluster.Result
}

// RunAll simulates the trace under every comparator and returns results in
// presentation order.
func RunAll(base cluster.Config, tr *trace.Trace) ([]Comparison, error) {
	out := make([]Comparison, 0, len(All))
	for _, n := range All {
		cfg, err := Configure(base, n)
		if err != nil {
			return nil, err
		}
		res, err := cluster.Run(cfg, tr)
		if err != nil {
			return nil, fmt.Errorf("baseline %s: %w", n, err)
		}
		out = append(out, Comparison{Name: n, Result: res})
	}
	return out, nil
}

// RankByEnergy returns comparator names ordered from least to most total
// energy.
func RankByEnergy(comps []Comparison) []Name {
	sorted := make([]Comparison, len(comps))
	copy(sorted, comps)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Result.TotalEnergyJ < sorted[j].Result.TotalEnergyJ
	})
	names := make([]Name, len(sorted))
	for i, c := range sorted {
		names[i] = c.Name
	}
	return names
}

// Find returns the comparison with the given name, or false.
func Find(comps []Comparison, n Name) (Comparison, bool) {
	for _, c := range comps {
		if c.Name == n {
			return c, true
		}
	}
	return Comparison{}, false
}
