package baseline

import (
	"testing"

	"eevfs/internal/cluster"
	"eevfs/internal/trace"
	"eevfs/internal/workload"
)

func webTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := workload.DefaultBerkeleyWeb()
	cfg.NumRequests = 400
	tr, err := workload.BerkeleyWeb(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigureAllComparators(t *testing.T) {
	base := cluster.DefaultTestbed()
	for _, n := range All {
		cfg, err := Configure(base, n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: invalid config: %v", n, err)
		}
	}
}

func TestConfigureUnknown(t *testing.T) {
	if _, err := Configure(cluster.DefaultTestbed(), Name("nope")); err == nil {
		t.Fatal("unknown comparator accepted")
	}
}

func TestConfigureProperties(t *testing.T) {
	base := cluster.DefaultTestbed()

	ao, _ := Configure(base, AlwaysOn)
	if ao.Prefetch || ao.MAID || ao.DPMWithoutPrefetch {
		t.Error("AlwaysOn should disable every policy")
	}

	dpm, _ := Configure(base, ThresholdDPM)
	if !dpm.DPMWithoutPrefetch || dpm.Prefetch {
		t.Error("ThresholdDPM misconfigured")
	}

	maid, _ := Configure(base, MAID)
	if !maid.MAID || maid.Prefetch {
		t.Error("MAID misconfigured")
	}

	pdc, _ := Configure(base, PDC)
	if !pdc.Concentrate || !pdc.DPMWithoutPrefetch || pdc.Prefetch {
		t.Error("PDC misconfigured")
	}

	ee, _ := Configure(base, EEVFS)
	if !ee.Prefetch || ee.MAID || ee.Concentrate {
		t.Error("EEVFS misconfigured")
	}

	// EEVFS from a base with K=0 gets the paper default.
	base.PrefetchCount = 0
	ee, _ = Configure(base, EEVFS)
	if ee.PrefetchCount != 70 {
		t.Errorf("EEVFS K = %d, want default 70", ee.PrefetchCount)
	}
}

func TestRunAllOnWebTrace(t *testing.T) {
	comps, err := RunAll(cluster.DefaultTestbed(), webTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != len(All) {
		t.Fatalf("got %d comparisons, want %d", len(comps), len(All))
	}

	get := func(n Name) cluster.Result {
		c, ok := Find(comps, n)
		if !ok {
			t.Fatalf("missing %s", n)
		}
		return c.Result
	}

	alwaysOn := get(AlwaysOn)
	eevfs := get(EEVFS)
	maid := get(MAID)

	// The paper's headline: EEVFS beats the no-power-management baseline.
	if eevfs.TotalEnergyJ >= alwaysOn.TotalEnergyJ {
		t.Errorf("EEVFS %.0f J >= AlwaysOn %.0f J", eevfs.TotalEnergyJ, alwaysOn.TotalEnergyJ)
	}
	// AlwaysOn must have zero transitions; every DPM-family comparator
	// produces at least one.
	if alwaysOn.Transitions != 0 {
		t.Errorf("AlwaysOn transitions = %d", alwaysOn.Transitions)
	}
	for _, n := range []Name{ThresholdDPM, PDC, EEVFS} {
		if get(n).Transitions == 0 {
			t.Errorf("%s produced no transitions", n)
		}
	}
	// MAID warms its cache on access: on a skewed read-only trace it gets
	// buffer hits, but strictly fewer than EEVFS's up-front prefetch.
	if maid.BufferHits == 0 {
		t.Error("MAID recorded no cache hits")
	}
	if maid.BufferHits > eevfs.BufferHits {
		t.Errorf("MAID hits %d > EEVFS hits %d on a hot-set trace",
			maid.BufferHits, eevfs.BufferHits)
	}
}

func TestEEVFSWinsOnSkewedWorkload(t *testing.T) {
	comps, err := RunAll(cluster.DefaultTestbed(), webTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	ranking := RankByEnergy(comps)
	if ranking[0] != EEVFS {
		t.Errorf("energy ranking = %v, want EEVFS first", ranking)
	}
	if ranking[len(ranking)-1] != AlwaysOn {
		t.Errorf("energy ranking = %v, want AlwaysOn last", ranking)
	}
}

func TestFindMissing(t *testing.T) {
	if _, ok := Find(nil, EEVFS); ok {
		t.Fatal("Find on empty slice returned ok")
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	bad := cluster.DefaultTestbed()
	bad.IdleThresholdSec = -1
	if _, err := RunAll(bad, webTrace(t)); err == nil {
		t.Fatal("invalid base config accepted")
	}
}

func TestMAIDCacheWarming(t *testing.T) {
	// Repeated reads of the same file: first is a miss, the rest hit the
	// MAID cache.
	cfg, err := Configure(cluster.DefaultTestbed(), MAID)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.DefaultSynthetic()
	w.MU = 0 // every request hits file 0
	w.NumRequests = 20
	tr, err := workload.Synthetic(w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.BufferMisses != 1 || res.BufferHits != 19 {
		t.Fatalf("hits=%d misses=%d, want 19/1", res.BufferHits, res.BufferMisses)
	}
}

func BenchmarkRunAllComparators(b *testing.B) {
	cfg := workload.DefaultBerkeleyWeb()
	cfg.NumRequests = 300
	tr, err := workload.BerkeleyWeb(cfg)
	if err != nil {
		b.Fatal(err)
	}
	base := cluster.DefaultTestbed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunAll(base, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLowPowerBaselineTradesPerformance(t *testing.T) {
	comps, err := RunAll(cluster.DefaultTestbed(), webTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	lp, ok := Find(comps, LowPower)
	if !ok {
		t.Fatal("missing lowpower comparator")
	}
	ao, _ := Find(comps, AlwaysOn)
	ee, _ := Find(comps, EEVFS)

	// Low-power drives save energy over always-on high-performance
	// drives, with zero transitions...
	if lp.Result.TotalEnergyJ >= ao.Result.TotalEnergyJ {
		t.Errorf("LowPower energy %.0f >= AlwaysOn %.0f",
			lp.Result.TotalEnergyJ, ao.Result.TotalEnergyJ)
	}
	if lp.Result.Transitions != 0 {
		t.Errorf("LowPower transitions = %d, want 0", lp.Result.Transitions)
	}
	// ...but pay for it in response time — the paper's argument for a
	// file-system-level approach instead of a hardware swap.
	if lp.Result.Response.Mean <= ao.Result.Response.Mean {
		t.Errorf("LowPower response %.3f not slower than AlwaysOn %.3f",
			lp.Result.Response.Mean, ao.Result.Response.Mean)
	}
	if lp.Result.Response.Mean <= ee.Result.Response.Mean {
		t.Errorf("LowPower response %.3f not slower than EEVFS %.3f",
			lp.Result.Response.Mean, ee.Result.Response.Mean)
	}
}
