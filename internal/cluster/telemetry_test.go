package cluster

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"eevfs/internal/telemetry"
	"eevfs/internal/workload"
)

// TestTelemetryMatchesResultAndExport is the simulator acceptance
// scenario: on a workload where disks actually sleep and wake, the event
// journal and the metric counters agree exactly with Result, attaching
// telemetry does not perturb the simulation, and the exported Chrome
// trace carries one transition slice per counted power-state transition.
func TestTelemetryMatchesResultAndExport(t *testing.T) {
	wcfg := workload.DefaultSynthetic()
	wcfg.MU = 1000 // partial prefetch coverage: misses wake sleeping disks
	tr, err := workload.Synthetic(wcfg)
	if err != nil {
		t.Fatal(err)
	}

	plain, err := Run(DefaultTestbed(), tr)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultTestbed()
	reg := telemetry.NewRegistry()
	jour := &telemetry.Journal{}
	cfg.Metrics = reg
	cfg.Journal = jour
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}

	// Telemetry must be a pure observer: bit-identical Result.
	if !reflect.DeepEqual(plain, res) {
		t.Fatal("attaching telemetry changed the simulation result")
	}
	if res.Transitions == 0 {
		t.Fatal("workload produced no transitions; the test needs sleeping disks")
	}

	// Journal agrees with the paper's transition count.
	if got := jour.CountStates("spinning-up", "spinning-down"); got != res.Transitions {
		t.Errorf("journaled transitions = %d, Result.Transitions = %d", got, res.Transitions)
	}

	// Metrics agree with Result.
	snap := reg.Snapshot()
	spins := snap.Counters["sim.disk.spinups"] + snap.Counters["sim.disk.spindowns"]
	if int(spins) != res.Transitions {
		t.Errorf("metric transitions = %d, Result.Transitions = %d", spins, res.Transitions)
	}
	if got := snap.Counters["sim.requests"]; got != int64(res.Requests) {
		t.Errorf("sim.requests = %d, Result.Requests = %d", got, res.Requests)
	}
	if got := snap.Counters["sim.buffer.hits"]; got != res.BufferHits {
		t.Errorf("sim.buffer.hits = %d, Result.BufferHits = %d", got, res.BufferHits)
	}
	if got := snap.Counters["sim.buffer.misses"]; got != res.BufferMisses {
		t.Errorf("sim.buffer.misses = %d, Result.BufferMisses = %d", got, res.BufferMisses)
	}
	h, ok := snap.Histograms["sim.response.seconds"]
	if !ok || h.Count != int64(res.Response.N) {
		t.Errorf("sim.response.seconds count = %d, Result.Response.N = %d", h.Count, res.Response.N)
	}

	// The Chrome export carries exactly one slice per transition.
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, jour.Events(), res.MakespanSec); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			DurUs float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	spans := 0
	for _, e := range ct.TraceEvents {
		if e.Phase == "X" && (e.Name == "spinning-up" || e.Name == "spinning-down") {
			spans++
			if e.DurUs <= 0 {
				t.Errorf("transition slice %q has non-positive duration %g", e.Name, e.DurUs)
			}
		}
	}
	if spans != res.Transitions {
		t.Errorf("exported transition slices = %d, Result.Transitions = %d", spans, res.Transitions)
	}
}

// TestTelemetryDisabledJournalsNothing: the nil-sink configuration stays
// a true no-op (no observer installed, nothing journaled).
func TestTelemetryDisabledJournalsNothing(t *testing.T) {
	res, err := Run(tinyConfig(), singleReadTrace(1e6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1 {
		t.Fatalf("requests = %d", res.Requests)
	}
	var jour *telemetry.Journal
	if jour.Len() != 0 || jour.Events() != nil {
		t.Fatal("nil journal not a no-op")
	}
}
