package cluster

import (
	"fmt"
	"math"

	"eevfs/internal/disk"
	"eevfs/internal/metrics"
	"eevfs/internal/netmodel"
)

// Result is everything one simulated run measures.
type Result struct {
	// MakespanSec is the virtual time from t=0 (start of the prefetch
	// phase, if any) to the completion of the last response or flush.
	MakespanSec float64

	// PrefetchEndSec is when the cluster-wide prefetch phase finished
	// (0 without prefetching). Trace arrival times are offset by this.
	PrefetchEndSec float64

	// TotalEnergyJ = BaseEnergyJ + DiskEnergyJ, the paper's "Energy
	// Joules" axis (whole storage nodes over the whole run).
	TotalEnergyJ float64
	// BaseEnergyJ is the constant node draw integrated over the makespan.
	BaseEnergyJ float64
	// DiskEnergyJ is the sum of all per-disk energies.
	DiskEnergyJ float64

	// Transitions is the paper's Fig. 4 metric: total spin-downs plus
	// spin-ups across all disks, including those spent on the final
	// write-buffer flush.
	Transitions int
	SpinUps     int
	SpinDowns   int

	// Response summarizes client-observed response times (seconds).
	Response metrics.Summary
	// ReadResponse and WriteResponse split the summary by operation.
	ReadResponse  metrics.Summary
	WriteResponse metrics.Summary

	// BufferHits counts reads served by buffer disks; BufferMisses reads
	// that had to touch a data disk.
	BufferHits   int64
	BufferMisses int64
	// BufferedWrites counts writes absorbed by the buffer disks'
	// write-buffer area; DirectWrites went straight to a data disk.
	BufferedWrites int64
	DirectWrites   int64
	// FlushedBytes is write-buffer data flushed to data disks.
	FlushedBytes int64

	// PrefetchedFiles is the number of files copied into buffer disks.
	PrefetchedFiles int
	// PrefetchEnergyJ is disk energy spent during the prefetch phase.
	PrefetchEnergyJ float64

	// AdaptiveReprefetches counts churn-triggered popularity recomputes
	// performed by the adaptive arm (0 on every other arm).
	AdaptiveReprefetches int
	// AdaptiveBudgetVetoes counts spin-downs the adaptive arm wanted but
	// the per-window transition budget refused — the thrash the hard cap
	// absorbed.
	AdaptiveBudgetVetoes int

	// Requests is the number of trace records replayed.
	Requests int

	// UpNodes is the number of in-service storage nodes the run actually
	// simulated (Nodes minus DownNodes). BaseEnergyJ integrates the node
	// base power over exactly these nodes, so invariant checkers can
	// verify the energy accounting without re-deriving degraded placement.
	UpNodes int

	// PerDisk carries each disk's final accounting ("node<i>/data<j>" and
	// "node<i>/buffer" names).
	PerDisk []disk.Stats
	// PerLink carries each node NIC's usage.
	PerLink []netmodel.Stats
}

// EnergySavingsVs returns the paper's "energy efficiency gain" of this
// run against a baseline run, in percent.
func (r Result) EnergySavingsVs(baseline Result) float64 {
	return metrics.SavingsPercent(baseline.TotalEnergyJ, r.TotalEnergyJ)
}

// ResponsePenaltyVs returns the percent increase of mean response time
// against a baseline run.
func (r Result) ResponsePenaltyVs(baseline Result) float64 {
	return metrics.PercentChange(baseline.Response.Mean, r.Response.Mean)
}

// HitRatio returns the buffer-disk hit ratio over reads (0 with no reads).
func (r Result) HitRatio() float64 {
	total := r.BufferHits + r.BufferMisses
	if total == 0 {
		return 0
	}
	return float64(r.BufferHits) / float64(total)
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf(
		"makespan=%.1fs energy=%.0fJ (base=%.0f disk=%.0f) transitions=%d hit=%.1f%% resp{%s}",
		r.MakespanSec, r.TotalEnergyJ, r.BaseEnergyJ, r.DiskEnergyJ,
		r.Transitions, 100*r.HitRatio(), r.Response)
}

// WorstWearYears extrapolates each disk's observed sleep-cycle rate over
// the run to the time it would take to exhaust a rated start/stop budget,
// and returns the worst (shortest) figure — the paper's reliability
// concern about excessive transitions (Section VI-B), quantified.
func (r Result) WorstWearYears(ratedCycles int) float64 {
	worst := math.Inf(1)
	for _, st := range r.PerDisk {
		if y := st.YearsToWearOut(r.MakespanSec, ratedCycles); y < worst {
			worst = y
		}
	}
	return worst
}
