// Package cluster implements the discrete-event simulation of a complete
// EEVFS deployment: clients replaying a trace against a storage server
// that routes requests to storage nodes, each of which manages a buffer
// disk and several data disks with power management (Sections III and IV
// of the paper).
//
// This simulator is the substitution for the paper's physical testbed: the
// published metrics (energy, power-state transitions, response time) are
// all functions of when each disk is busy, idle, or asleep, and the
// simulator derives those timings from first principles — network and disk
// queueing, spin-up latencies, and the prefetch plan.
package cluster

import (
	"fmt"

	"eevfs/internal/adaptive"
	"eevfs/internal/disk"
	"eevfs/internal/telemetry"
)

// NodeConfig describes one storage node.
type NodeConfig struct {
	// LinkMbps is the node NIC capacity in megabits per second
	// (Table I: 1000 for Type 1, 100 for Type 2).
	LinkMbps float64
	// DataModel is the drive model of the node's data disks.
	DataModel disk.Model
	// BufferModel is the drive model of the node's buffer disk (the
	// paper's prototype reuses the OS disk).
	BufferModel disk.Model
	// DataDisks is the number of data disks (must currently be uniform
	// across nodes; the popularity round-robin depends on it).
	DataDisks int
	// BufferDisks is the number of buffer disks m (Section I: "each
	// storage node contains m buffer disks and n data disks"; the
	// prototype used m = 1). Zero means 1. Files hash across the buffer
	// disks by id.
	BufferDisks int
}

// Config describes a full simulated deployment plus the EEVFS policy
// switches under test.
type Config struct {
	Nodes []NodeConfig

	// NodeBasePowerW is the constant non-disk power draw of one storage
	// node (CPU, RAM, NIC, fans). The paper measured whole-node wall
	// power; this constant is what makes the simulated totals comparable
	// in magnitude.
	NodeBasePowerW float64

	// IdleThresholdSec is Table II's "Disk Idle Threshold": the minimum
	// predicted (or observed) idle period before a data disk is sent to
	// standby. The paper fixes it at 5 s.
	IdleThresholdSec float64

	// MinSleepGapSec overrides the predictive-sleep gate. Zero means
	// "use IdleThresholdSec", the paper's policy. Setting it to the
	// disk's break-even time guarantees every sleep saves energy.
	MinSleepGapSec float64

	// Prefetch enables the buffer-disk prefetching mechanism (PF vs NPF
	// in the figures). Without it the node never copies data and — unless
	// DPMWithoutPrefetch is set — never sleeps disks, which is the
	// paper's NPF baseline (no transitions, no response penalty).
	Prefetch bool

	// PrefetchCount is Table II's "Number of Files to Prefetch" (K),
	// a global budget taken from the top of the popularity ranking.
	PrefetchCount int

	// Hints enables application hints (Section IV-C): the storage nodes
	// receive the predicted access pattern and sleep disks proactively at
	// the start of each predicted idle window. Without hints the node
	// falls back to the reactive idle-threshold timer.
	Hints bool

	// Prewake additionally schedules disk spin-up SpinUpSec before the
	// next predicted access, hiding the wake latency from clients. The
	// paper's prototype woke disks on demand (its measured response-time
	// penalties come from spin-ups), so this defaults to off; it is the
	// X2 ablation.
	Prewake bool

	// DPMWithoutPrefetch applies the idle-threshold timer even when
	// Prefetch is off (a classic DPM baseline, used by the baseline
	// comparison experiments; the paper's NPF keeps disks spinning).
	DPMWithoutPrefetch bool

	// WriteBuffer uses free buffer-disk space as a write buffer for the
	// data disks (Section III-C). Writes are acknowledged after the
	// sequential log append and flushed to their data disk lazily.
	WriteBuffer bool

	// BufferCapacityBytes bounds buffer-disk occupancy (prefetched copies
	// plus unflushed writes). Zero means bounded only by the drive's
	// nominal capacity.
	BufferCapacityBytes int64

	// RouteLatencySec is the client -> server -> node control-path
	// latency per request (metadata lookup plus two small messages).
	RouteLatencySec float64

	// MAID replaces EEVFS's popularity prefetch with MAID-style
	// cache-on-access (Colarelli & Grunwald, Section II): the buffer disk
	// caches files in LRU order after each miss, and data disks sleep on
	// the reactive idle-threshold timer (MAID has no future knowledge).
	// Mutually exclusive with Prefetch.
	MAID bool

	// Concentrate replaces the popularity round-robin with PDC-style
	// placement (Pinheiro & Bianchini, Section II): the most popular
	// files concentrated on the first disks so the remaining disks can
	// sleep. Usually combined with DPMWithoutPrefetch.
	Concentrate bool

	// StripeChunkBytes stripes every file across the node's data disks in
	// chunks of this size (the paper's Section VII future work:
	// "striping techniques within EEVFS that can help improve the
	// performance ... while still maintaining energy savings"). Zero
	// keeps whole-file placement. Striping parallelizes data-disk reads
	// (lower response time) at the cost of spreading residual load over
	// more spindles (shorter idle windows).
	StripeChunkBytes int64

	// ReprefetchEvery re-runs the popularity analysis every N replayed
	// requests, using the accesses observed so far, and refreshes the
	// buffer-disk contents (PRE-BUD's "dynamically fetch the most
	// popular data"). Zero keeps the single up-front prefetch the
	// paper's prototype used. Only meaningful with Prefetch; ignored by
	// the hint planner (hints assume the static plan).
	ReprefetchEvery int

	// Adaptive enables the online adaptive policy arm (the third arm next
	// to PF and NPF): no up-front prefetch phase, per-disk inter-arrival
	// estimators that adapt each data disk's spin-down threshold under a
	// hard per-window transition budget, and churn-triggered background
	// re-prefetching into the buffer disks. Mutually exclusive with every
	// static policy switch — the arm starts exactly like NPF and only
	// ever acts on what it has observed.
	Adaptive bool

	// AdaptiveParams tunes the adaptive arm; nil means adaptive.Defaults.
	AdaptiveParams *adaptive.Params

	// DownNodes lists node indices that are out of service for the whole
	// run: the simulated mirror of the prototype server's degraded-mode
	// placement, where files land only on healthy nodes. Down nodes
	// receive no files and contribute no power draw. At least one node
	// must stay up.
	DownNodes []int

	// Metrics, when non-nil, receives live counters and histograms from
	// the run (request counts, buffer hits/misses, response-time and
	// queue-wait histograms, spin-up/spin-down counts). Nil disables
	// metric collection with no hot-path overhead.
	Metrics *telemetry.Registry

	// Journal, when non-nil, receives the structured event timeline of
	// the run: every disk power-state transition, every disk service
	// (with queue wait), and every client-visible request, all stamped
	// with simulated time — so runs stay deterministic. Export it with
	// telemetry.WriteChromeTrace for a Perfetto-loadable timeline.
	Journal *telemetry.Journal
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: no storage nodes")
	}
	disks := c.Nodes[0].DataDisks
	for i, n := range c.Nodes {
		if n.LinkMbps <= 0 {
			return fmt.Errorf("cluster: node %d link %g Mb/s", i, n.LinkMbps)
		}
		if n.DataDisks <= 0 {
			return fmt.Errorf("cluster: node %d has %d data disks", i, n.DataDisks)
		}
		if n.DataDisks != disks {
			return fmt.Errorf("cluster: heterogeneous data-disk counts (%d vs %d) are not supported", n.DataDisks, disks)
		}
		if n.BufferDisks < 0 {
			return fmt.Errorf("cluster: node %d has %d buffer disks", i, n.BufferDisks)
		}
		if err := n.DataModel.Validate(); err != nil {
			return fmt.Errorf("cluster: node %d data disk: %w", i, err)
		}
		if err := n.BufferModel.Validate(); err != nil {
			return fmt.Errorf("cluster: node %d buffer disk: %w", i, err)
		}
	}
	switch {
	case c.NodeBasePowerW < 0:
		return fmt.Errorf("cluster: negative node base power")
	case c.IdleThresholdSec <= 0:
		return fmt.Errorf("cluster: idle threshold must be positive")
	case c.MinSleepGapSec < 0:
		return fmt.Errorf("cluster: negative MinSleepGapSec")
	case c.PrefetchCount < 0:
		return fmt.Errorf("cluster: negative PrefetchCount")
	case c.BufferCapacityBytes < 0:
		return fmt.Errorf("cluster: negative BufferCapacityBytes")
	case c.RouteLatencySec < 0:
		return fmt.Errorf("cluster: negative RouteLatencySec")
	case c.MAID && c.Prefetch:
		return fmt.Errorf("cluster: MAID and Prefetch are mutually exclusive")
	case c.MAID && c.WriteBuffer:
		return fmt.Errorf("cluster: MAID does not implement the write buffer")
	case c.StripeChunkBytes < 0:
		return fmt.Errorf("cluster: negative StripeChunkBytes")
	case c.ReprefetchEvery < 0:
		return fmt.Errorf("cluster: negative ReprefetchEvery")
	case c.ReprefetchEvery > 0 && !c.Prefetch:
		return fmt.Errorf("cluster: ReprefetchEvery requires Prefetch")
	case c.ReprefetchEvery > 0 && c.Hints:
		return fmt.Errorf("cluster: ReprefetchEvery is incompatible with static Hints plans; disable Hints")
	case c.Adaptive && (c.Prefetch || c.Hints || c.Prewake || c.MAID ||
		c.Concentrate || c.DPMWithoutPrefetch || c.WriteBuffer || c.ReprefetchEvery > 0):
		return fmt.Errorf("cluster: Adaptive is a standalone policy arm; disable the static policy switches")
	case c.AdaptiveParams != nil && !c.Adaptive:
		return fmt.Errorf("cluster: AdaptiveParams set without Adaptive")
	}
	if c.Adaptive && c.AdaptiveParams != nil {
		if err := c.AdaptiveParams.Validate(); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
	}
	down := make(map[int]bool, len(c.DownNodes))
	for _, idx := range c.DownNodes {
		if idx < 0 || idx >= len(c.Nodes) {
			return fmt.Errorf("cluster: DownNodes index %d out of range [0,%d)", idx, len(c.Nodes))
		}
		if down[idx] {
			return fmt.Errorf("cluster: DownNodes lists node %d twice", idx)
		}
		down[idx] = true
	}
	if len(down) == len(c.Nodes) {
		return fmt.Errorf("cluster: all %d nodes down", len(c.Nodes))
	}
	return nil
}

// upNodes returns the configs of the nodes still in service, in order.
func (c Config) upNodes() []NodeConfig {
	if len(c.DownNodes) == 0 {
		return c.Nodes
	}
	down := make(map[int]bool, len(c.DownNodes))
	for _, idx := range c.DownNodes {
		down[idx] = true
	}
	up := make([]NodeConfig, 0, len(c.Nodes))
	for i, n := range c.Nodes {
		if !down[i] {
			up = append(up, n)
		}
	}
	return up
}

// DataDisksPerNode returns the uniform per-node data-disk count.
func (c Config) DataDisksPerNode() int {
	if len(c.Nodes) == 0 {
		return 0
	}
	return c.Nodes[0].DataDisks
}

// DefaultTestbed returns the simulated equivalent of Table I: eight
// storage nodes — four Type 1 (1 Gb/s NIC, 58 MB/s disks) and four Type 2
// (100 Mb/s NIC, 34 MB/s disks) — each with one buffer disk and two data
// disks, 5 s idle threshold, prefetching with hints enabled and K = 70.
func DefaultTestbed() Config {
	nodes := make([]NodeConfig, 8)
	for i := range nodes {
		if i < 4 {
			nodes[i] = NodeConfig{
				LinkMbps:    1000,
				DataModel:   disk.ModelType1,
				BufferModel: disk.ModelType1,
				DataDisks:   2,
			}
		} else {
			nodes[i] = NodeConfig{
				LinkMbps:    100,
				DataModel:   disk.ModelType2,
				BufferModel: disk.ModelType2,
				DataDisks:   2,
			}
		}
	}
	return Config{
		Nodes:            nodes,
		NodeBasePowerW:   55,
		IdleThresholdSec: 5,
		Prefetch:         true,
		PrefetchCount:    70,
		Hints:            true,
		RouteLatencySec:  0.001,
	}
}

// NPF returns a copy of the configuration with prefetching (and therefore
// power management) disabled — the paper's NPF comparison arm.
func (c Config) NPF() Config {
	c.Prefetch = false
	c.Hints = false
	c.Prewake = false
	c.DPMWithoutPrefetch = false
	c.MAID = false
	c.Concentrate = false
	// Dynamic reprefetching rides on Prefetch; leaving it set would make
	// the NPF arm fail validation (ReprefetchEvery requires Prefetch).
	c.ReprefetchEvery = 0
	c.Adaptive = false
	c.AdaptiveParams = nil
	return c
}

// AdaptiveArm returns a copy of the configuration running the online
// adaptive policy: every static policy switch cleared, Adaptive set.
func (c Config) AdaptiveArm() Config {
	c = c.NPF()
	c.Adaptive = true
	return c
}
