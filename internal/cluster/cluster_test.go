package cluster

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"eevfs/internal/disk"
	"eevfs/internal/trace"
	"eevfs/internal/workload"
)

// tinyConfig returns a 1-node, 1-data-disk cluster with simple numbers.
func tinyConfig() Config {
	m := disk.Model{
		Name: "tiny", BandwidthMBps: 50, AvgSeekSec: 0.008, AvgRotateSec: 0.004,
		CapacityGB: 80, PActive: 10, PIdle: 6, PStandby: 1,
		SpinUpSec: 2, SpinUpJ: 30, SpinDownSec: 1, SpinDownJ: 8,
	}
	return Config{
		Nodes: []NodeConfig{{
			LinkMbps: 1000, DataModel: m, BufferModel: m, DataDisks: 1,
		}},
		NodeBasePowerW:   70,
		IdleThresholdSec: 5,
		Prefetch:         true,
		PrefetchCount:    70,
		Hints:            true,
		RouteLatencySec:  0.001,
	}
}

func singleReadTrace(size int64) *trace.Trace {
	return &trace.Trace{
		FileSizes: []int64{size},
		Records: []trace.Record{
			{Seq: 0, TimeS: 0, Op: trace.Read, FileID: 0, Size: size},
		},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultTestbed().Validate(); err != nil {
		t.Fatalf("default testbed invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Nodes = nil },
		func(c *Config) { c.Nodes[0].LinkMbps = 0 },
		func(c *Config) { c.Nodes[0].DataDisks = 0 },
		func(c *Config) { c.Nodes[1].DataDisks = 3 },
		func(c *Config) { c.Nodes[0].DataModel.BandwidthMBps = 0 },
		func(c *Config) { c.Nodes[0].BufferModel.PIdle = 0 },
		func(c *Config) { c.NodeBasePowerW = -1 },
		func(c *Config) { c.IdleThresholdSec = 0 },
		func(c *Config) { c.MinSleepGapSec = -1 },
		func(c *Config) { c.PrefetchCount = -1 },
		func(c *Config) { c.BufferCapacityBytes = -1 },
		func(c *Config) { c.RouteLatencySec = -1 },
	}
	for i, mod := range bad {
		cfg := DefaultTestbed()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNPFHelper(t *testing.T) {
	cfg := DefaultTestbed().NPF()
	if cfg.Prefetch || cfg.Hints || cfg.Prewake || cfg.DPMWithoutPrefetch {
		t.Fatal("NPF() left a policy enabled")
	}
}

func TestRunRejectsInvalidInputs(t *testing.T) {
	cfg := tinyConfig()
	cfg.IdleThresholdSec = 0
	if _, err := Run(cfg, singleReadTrace(1e6)); err == nil {
		t.Error("invalid config accepted")
	}
	tr := singleReadTrace(1e6)
	tr.Records[0].FileID = 5
	if _, err := Run(tinyConfig(), tr); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestSingleReadNPFTimings(t *testing.T) {
	cfg := tinyConfig().NPF()
	size := int64(10e6)
	res, err := Run(cfg, singleReadTrace(size))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1 || res.Response.N != 1 {
		t.Fatalf("requests=%d responses=%d", res.Requests, res.Response.N)
	}

	m := cfg.Nodes[0].DataModel
	service := m.ServiceTime(size)
	transfer := float64(size) * 8 / (1000 * 1e6)
	want := cfg.RouteLatencySec + service + 0.0001 + transfer + cfg.RouteLatencySec
	if math.Abs(res.Response.Mean-want) > 1e-9 {
		t.Errorf("response = %g, want %g", res.Response.Mean, want)
	}
	if res.Transitions != 0 {
		t.Errorf("NPF transitions = %d, want 0", res.Transitions)
	}
	if res.BufferHits != 0 || res.BufferMisses != 1 {
		t.Errorf("hits=%d misses=%d", res.BufferHits, res.BufferMisses)
	}
	// Energy sanity: base power dominates; all disks spinning.
	if res.TotalEnergyJ <= 0 || res.BaseEnergyJ <= 0 {
		t.Error("non-positive energy")
	}
	wantBase := cfg.NodeBasePowerW * res.MakespanSec
	if math.Abs(res.BaseEnergyJ-wantBase) > 1e-6 {
		t.Errorf("base energy = %g, want %g", res.BaseEnergyJ, wantBase)
	}
}

func TestSingleReadPFHitsBuffer(t *testing.T) {
	res, err := Run(tinyConfig(), singleReadTrace(10e6))
	if err != nil {
		t.Fatal(err)
	}
	if res.BufferHits != 1 || res.BufferMisses != 0 {
		t.Fatalf("hits=%d misses=%d, want 1/0", res.BufferHits, res.BufferMisses)
	}
	if res.PrefetchedFiles != 1 {
		t.Fatalf("PrefetchedFiles = %d, want 1", res.PrefetchedFiles)
	}
	if res.PrefetchEndSec <= 0 {
		t.Fatal("prefetch phase should take time")
	}
	// The lone data disk should have gone to standby right after the
	// prefetch phase (no residual accesses): exactly one spin-down,
	// zero spin-ups.
	if res.SpinDowns != 1 || res.SpinUps != 0 {
		t.Fatalf("spindowns=%d spinups=%d, want 1/0", res.SpinDowns, res.SpinUps)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultTestbed()
	tr, err := workload.Synthetic(workload.DefaultSynthetic())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical runs produced different results")
	}
}

func TestPFBeatsNPFOnSkewedWorkload(t *testing.T) {
	wcfg := workload.DefaultSynthetic()
	wcfg.MU = 100 // fully covered by K=70
	tr, err := workload.Synthetic(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTestbed()
	pf, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	npf, err := Run(cfg.NPF(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if pf.TotalEnergyJ >= npf.TotalEnergyJ {
		t.Fatalf("PF energy %g >= NPF %g", pf.TotalEnergyJ, npf.TotalEnergyJ)
	}
	savings := pf.EnergySavingsVs(npf)
	if savings < 5 || savings > 30 {
		t.Errorf("savings = %.1f%%, want in the 5..30%% band (paper: 11..17%%)", savings)
	}
	// Full coverage: all reads hit the buffer disks.
	if pf.HitRatio() < 0.999 {
		t.Errorf("hit ratio = %g, want ~1 for MU=100, K=70", pf.HitRatio())
	}
	// Disks sleep at the start and never wake: no response penalty worth
	// mentioning (paper Section VI-C).
	if penalty := pf.ResponsePenaltyVs(npf); math.Abs(penalty) > 5 {
		t.Errorf("response penalty = %.1f%%, want ~0 when disks sleep whole trace", penalty)
	}
}

func TestPartialCoverageWakesDisks(t *testing.T) {
	wcfg := workload.DefaultSynthetic()
	wcfg.MU = 1000 // ~74% coverage with K=70
	tr, err := workload.Synthetic(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTestbed()
	pf, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if pf.HitRatio() < 0.6 || pf.HitRatio() > 0.9 {
		t.Errorf("hit ratio = %g, want ~0.74", pf.HitRatio())
	}
	if pf.SpinUps == 0 {
		t.Error("partial coverage should cause reactive spin-ups")
	}
	npf, err := Run(cfg.NPF(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if pf.TotalEnergyJ >= npf.TotalEnergyJ {
		t.Errorf("PF energy %g >= NPF %g even at partial coverage", pf.TotalEnergyJ, npf.TotalEnergyJ)
	}
	// Misses pay wake latency: the response penalty must be visible.
	if pf.Response.Mean <= npf.Response.Mean {
		t.Error("expected a response-time penalty from spin-ups")
	}
}

func TestThresholdModeSleeps(t *testing.T) {
	// PF without hints: the idle-threshold timer must produce sleeps.
	cfg := DefaultTestbed()
	cfg.Hints = false
	wcfg := workload.DefaultSynthetic()
	wcfg.MU = 100
	tr, _ := workload.Synthetic(wcfg)
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpinDowns == 0 {
		t.Fatal("threshold mode produced no spin-downs")
	}
}

func TestDPMWithoutPrefetchBaseline(t *testing.T) {
	cfg := DefaultTestbed().NPF()
	cfg.DPMWithoutPrefetch = true
	wcfg := workload.DefaultSynthetic()
	wcfg.NumRequests = 200
	tr, _ := workload.Synthetic(wcfg)
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transitions == 0 {
		t.Fatal("threshold DPM produced no transitions")
	}
	if res.BufferHits != 0 {
		t.Fatal("no prefetch yet buffer hits recorded")
	}
}

func TestPrewakeReducesPenalty(t *testing.T) {
	wcfg := workload.DefaultSynthetic()
	wcfg.MU = 1000
	tr, _ := workload.Synthetic(wcfg)
	cfg := DefaultTestbed()
	reactive, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Prewake = true
	prewake, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if prewake.Response.Mean >= reactive.Response.Mean {
		t.Errorf("prewake mean %g >= reactive %g", prewake.Response.Mean, reactive.Response.Mean)
	}
}

func TestWriteBufferPath(t *testing.T) {
	cfg := tinyConfig()
	cfg.WriteBuffer = true
	size := int64(1e6)
	tr := &trace.Trace{
		FileSizes: []int64{size, size},
		Records: []trace.Record{
			{Seq: 0, TimeS: 0, Op: trace.Read, FileID: 0, Size: size},
			{Seq: 1, TimeS: 1, Op: trace.Write, FileID: 1, Size: size},
			{Seq: 2, TimeS: 2, Op: trace.Write, FileID: 1, Size: size},
		},
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.BufferedWrites != 2 || res.DirectWrites != 0 {
		t.Fatalf("buffered=%d direct=%d, want 2/0", res.BufferedWrites, res.DirectWrites)
	}
	if res.FlushedBytes != 2*size {
		t.Fatalf("FlushedBytes = %d, want %d", res.FlushedBytes, 2*size)
	}
	if res.WriteResponse.N != 2 {
		t.Fatalf("write responses = %d", res.WriteResponse.N)
	}
}

func TestWritesGoDirectWithoutWriteBuffer(t *testing.T) {
	cfg := tinyConfig()
	size := int64(1e6)
	tr := &trace.Trace{
		FileSizes: []int64{size},
		Records: []trace.Record{
			{Seq: 0, TimeS: 0, Op: trace.Write, FileID: 0, Size: size},
		},
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirectWrites != 1 || res.BufferedWrites != 0 {
		t.Fatalf("direct=%d buffered=%d, want 1/0", res.DirectWrites, res.BufferedWrites)
	}
	if res.FlushedBytes != 0 {
		t.Fatalf("FlushedBytes = %d, want 0", res.FlushedBytes)
	}
}

func TestBufferCapacityLimitsPrefetch(t *testing.T) {
	cfg := tinyConfig()
	cfg.BufferCapacityBytes = 15e6 // room for one 10 MB file only
	tr := &trace.Trace{
		FileSizes: []int64{10e6, 10e6},
		Records: []trace.Record{
			{Seq: 0, TimeS: 0, Op: trace.Read, FileID: 0, Size: 10e6},
			{Seq: 1, TimeS: 1, Op: trace.Read, FileID: 1, Size: 10e6},
		},
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefetchedFiles != 1 {
		t.Fatalf("PrefetchedFiles = %d, want 1 (capacity-limited)", res.PrefetchedFiles)
	}
	if res.BufferHits != 1 || res.BufferMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", res.BufferHits, res.BufferMisses)
	}
}

func TestReactiveWakePenaltyVisible(t *testing.T) {
	// Two reads far apart on the same data disk, not prefetched (K=0):
	// the second one must pay the spin-up latency under hints.
	cfg := tinyConfig()
	cfg.PrefetchCount = 0
	size := int64(1e6)
	tr := &trace.Trace{
		FileSizes: []int64{size},
		Records: []trace.Record{
			{Seq: 0, TimeS: 0, Op: trace.Read, FileID: 0, Size: size},
			{Seq: 1, TimeS: 100, Op: trace.Read, FileID: 0, Size: size},
		},
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpinDowns < 1 || res.SpinUps < 1 {
		t.Fatalf("spindowns=%d spinups=%d, want >=1 each", res.SpinDowns, res.SpinUps)
	}
	m := cfg.Nodes[0].DataModel
	if res.Response.Max < m.SpinUpSec {
		t.Errorf("max response %g < spin-up %g: wake penalty not charged",
			res.Response.Max, m.SpinUpSec)
	}
}

func TestMakespanCoversTraceDuration(t *testing.T) {
	tr, _ := workload.Synthetic(workload.DefaultSynthetic())
	res, err := Run(DefaultTestbed(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSec < tr.Duration() {
		t.Fatalf("makespan %g < trace duration %g", res.MakespanSec, tr.Duration())
	}
	if res.Response.N != len(tr.Records) {
		t.Fatalf("responses %d != records %d", res.Response.N, len(tr.Records))
	}
}

func TestPerDiskAccountingConsistent(t *testing.T) {
	tr, _ := workload.Synthetic(workload.DefaultSynthetic())
	res, err := Run(DefaultTestbed(), tr)
	if err != nil {
		t.Fatal(err)
	}
	wantDisks := 8 * 3 // buffer + 2 data per node
	if len(res.PerDisk) != wantDisks {
		t.Fatalf("PerDisk has %d entries, want %d", len(res.PerDisk), wantDisks)
	}
	var energy float64
	var ups, downs int
	for _, st := range res.PerDisk {
		energy += st.EnergyJ
		ups += st.SpinUps
		downs += st.SpinDowns
		// Every disk's dwell times must sum to the makespan.
		sum := 0.0
		for _, v := range st.TimeInState {
			sum += v
		}
		if math.Abs(sum-res.MakespanSec) > 1e-6*(1+res.MakespanSec) {
			t.Errorf("disk %s dwell %g != makespan %g", st.Name, sum, res.MakespanSec)
		}
	}
	if math.Abs(energy-res.DiskEnergyJ) > 1e-6 {
		t.Errorf("disk energy sum %g != DiskEnergyJ %g", energy, res.DiskEnergyJ)
	}
	if ups != res.SpinUps || downs != res.SpinDowns {
		t.Errorf("transition sums inconsistent")
	}
	if res.Transitions != res.SpinUps+res.SpinDowns {
		t.Errorf("Transitions != ups+downs")
	}
}

func TestEnergyIdentity(t *testing.T) {
	tr, _ := workload.Synthetic(workload.DefaultSynthetic())
	res, err := Run(DefaultTestbed(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalEnergyJ-(res.BaseEnergyJ+res.DiskEnergyJ)) > 1e-6 {
		t.Fatal("TotalEnergyJ != BaseEnergyJ + DiskEnergyJ")
	}
}

func TestResultStringNonEmpty(t *testing.T) {
	res, err := Run(tinyConfig(), singleReadTrace(1e6))
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestZeroInterArrivalHeavyLoad(t *testing.T) {
	wcfg := workload.DefaultSynthetic()
	wcfg.InterArrival = 0
	wcfg.NumRequests = 300
	tr, _ := workload.Synthetic(wcfg)
	cfg := DefaultTestbed()
	pf, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	npf, err := Run(cfg.NPF(), tr)
	if err != nil {
		t.Fatal(err)
	}
	// All requests arrive at t=0: massive queueing, responses grow, but
	// the run must terminate and PF must not lose energy.
	if pf.TotalEnergyJ > npf.TotalEnergyJ*1.02 {
		t.Errorf("PF energy %g substantially exceeds NPF %g under burst load",
			pf.TotalEnergyJ, npf.TotalEnergyJ)
	}
	if pf.Response.Max <= pf.Response.Min {
		t.Error("burst load should spread response times")
	}
}

func BenchmarkRunDefaultTestbed(b *testing.B) {
	tr, err := workload.Synthetic(workload.DefaultSynthetic())
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultTestbed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMAIDEvictionUnderTightCapacity(t *testing.T) {
	cfg := tinyConfig().NPF()
	cfg.MAID = true
	cfg.BufferCapacityBytes = 1e6 // room for exactly one 1 MB file
	size := int64(1e6)
	tr := &trace.Trace{
		FileSizes: []int64{size, size},
		Records: []trace.Record{
			{Seq: 0, TimeS: 0, Op: trace.Read, FileID: 0, Size: size}, // miss, cache 0
			{Seq: 1, TimeS: 1, Op: trace.Read, FileID: 1, Size: size}, // miss, evict 0
			{Seq: 2, TimeS: 2, Op: trace.Read, FileID: 1, Size: size}, // hit
			{Seq: 3, TimeS: 3, Op: trace.Read, FileID: 0, Size: size}, // miss again
		},
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.BufferHits != 1 || res.BufferMisses != 3 {
		t.Fatalf("hits=%d misses=%d, want 1/3", res.BufferHits, res.BufferMisses)
	}
}

func TestMAIDMutuallyExclusiveWithPrefetch(t *testing.T) {
	cfg := tinyConfig()
	cfg.MAID = true // Prefetch still true
	if err := cfg.Validate(); err == nil {
		t.Fatal("MAID+Prefetch accepted")
	}
}

func TestConcentratePlacementRuns(t *testing.T) {
	cfg := DefaultTestbed().NPF()
	cfg.Concentrate = true
	cfg.DPMWithoutPrefetch = true
	wcfg := workload.DefaultSynthetic()
	wcfg.MU = 10 // tight hot set: concentration lets cold disks sleep
	tr, _ := workload.Synthetic(wcfg)
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transitions == 0 {
		t.Fatal("PDC-style run produced no transitions")
	}
	npf, _ := Run(DefaultTestbed().NPF(), tr)
	if res.TotalEnergyJ >= npf.TotalEnergyJ {
		t.Errorf("PDC energy %g >= AlwaysOn %g on a hot-set workload",
			res.TotalEnergyJ, npf.TotalEnergyJ)
	}
}

func TestStripingImprovesMissResponse(t *testing.T) {
	// Large files, no prefetch coverage (K=0): every read is a striped
	// data-disk read. Striping across 2 disks should cut the disk phase
	// of the response roughly in half.
	wcfg := workload.DefaultSynthetic()
	wcfg.MeanSize = 25e6
	wcfg.MU = 1000
	tr, _ := workload.Synthetic(wcfg)

	base := DefaultTestbed().NPF()
	whole, err := Run(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	base.StripeChunkBytes = 5e6
	striped, err := Run(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	if striped.Response.Mean >= whole.Response.Mean {
		t.Fatalf("striped mean %g >= whole-file %g", striped.Response.Mean, whole.Response.Mean)
	}
}

func TestStripingPreservesEnergySavings(t *testing.T) {
	wcfg := workload.DefaultSynthetic()
	wcfg.MU = 100
	tr, _ := workload.Synthetic(wcfg)
	cfg := DefaultTestbed()
	cfg.StripeChunkBytes = 5e6
	pf, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	npf, err := Run(cfg.NPF(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if savings := pf.EnergySavingsVs(npf); savings < 10 {
		t.Fatalf("striped PF savings %.1f%%, want >= 10%%", savings)
	}
	if pf.Response.N != len(tr.Records) {
		t.Fatalf("striped run lost responses: %d of %d", pf.Response.N, len(tr.Records))
	}
}

func TestStripedWritesAndFlush(t *testing.T) {
	cfg := tinyConfig()
	cfg.Nodes[0].DataDisks = 2
	cfg.StripeChunkBytes = 1e6
	cfg.WriteBuffer = true
	size := int64(3e6) // 3 chunks over 2 disks
	tr := &trace.Trace{
		FileSizes: []int64{size},
		Records: []trace.Record{
			{Seq: 0, TimeS: 0, Op: trace.Write, FileID: 0, Size: size},
		},
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.BufferedWrites != 1 {
		t.Fatalf("buffered = %d", res.BufferedWrites)
	}
	if res.FlushedBytes != size {
		t.Fatalf("flushed = %d, want %d", res.FlushedBytes, size)
	}
}

func TestStripedDirectWriteSingleResponse(t *testing.T) {
	cfg := tinyConfig().NPF()
	cfg.Nodes[0].DataDisks = 2
	cfg.StripeChunkBytes = 1e6
	size := int64(4e6)
	tr := &trace.Trace{
		FileSizes: []int64{size},
		Records: []trace.Record{
			{Seq: 0, TimeS: 0, Op: trace.Write, FileID: 0, Size: size},
		},
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Response.N != 1 || res.WriteResponse.N != 1 {
		t.Fatalf("responses = %d/%d, want exactly 1", res.Response.N, res.WriteResponse.N)
	}
}

func TestReprefetchFollowsDrift(t *testing.T) {
	tr, err := workload.Drifting(workload.DefaultDrifting())
	if err != nil {
		t.Fatal(err)
	}
	static := DefaultTestbed()
	static.Hints = false // threshold sleeping for both arms
	staticRes, err := Run(static, tr)
	if err != nil {
		t.Fatal(err)
	}
	dynamic := static
	dynamic.ReprefetchEvery = 25
	dynamicRes, err := Run(dynamic, tr)
	if err != nil {
		t.Fatal(err)
	}
	// The static (oracle-ranked) top-70 prefetch covers only part of the
	// drifting mass; windowed re-prefetching follows the hot set.
	if staticRes.HitRatio() > 0.7 {
		t.Fatalf("static hit ratio %.2f unexpectedly high", staticRes.HitRatio())
	}
	if dynamicRes.HitRatio() < staticRes.HitRatio()+0.15 {
		t.Fatalf("dynamic hit ratio %.2f not clearly above static %.2f",
			dynamicRes.HitRatio(), staticRes.HitRatio())
	}
	if dynamicRes.TotalEnergyJ >= staticRes.TotalEnergyJ {
		t.Fatalf("dynamic energy %g >= static %g under drift",
			dynamicRes.TotalEnergyJ, staticRes.TotalEnergyJ)
	}
}

func TestReprefetchValidation(t *testing.T) {
	cfg := DefaultTestbed()
	cfg.ReprefetchEvery = 100 // Hints still on
	if err := cfg.Validate(); err == nil {
		t.Fatal("ReprefetchEvery with Hints accepted")
	}
	cfg = DefaultTestbed().NPF()
	cfg.ReprefetchEvery = 100
	if err := cfg.Validate(); err == nil {
		t.Fatal("ReprefetchEvery without Prefetch accepted")
	}
	cfg = DefaultTestbed()
	cfg.StripeChunkBytes = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative stripe accepted")
	}
}

func TestReprefetchDeterministic(t *testing.T) {
	tr, _ := workload.Drifting(workload.DefaultDrifting())
	cfg := DefaultTestbed()
	cfg.Hints = false
	cfg.ReprefetchEvery = 25
	a, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("dynamic re-prefetch runs diverged")
	}
}

// Property: across random workload/config corners, the simulator conserves
// its accounting — every request gets exactly one response, reads split
// exactly into hits and misses, energy identities hold, and per-disk dwell
// times tile the makespan.
func TestQuickSimulationConservation(t *testing.T) {
	f := func(seed uint64, muRaw uint16, kRaw, reqRaw uint8, policy uint8) bool {
		w := workload.SyntheticConfig{
			NumFiles:      50,
			NumRequests:   int(reqRaw)%80 + 1,
			MeanSize:      2e6,
			MU:            float64(muRaw % 200),
			InterArrival:  0.3,
			WriteFraction: 0.2,
			Seed:          seed,
		}
		tr, err := workload.Synthetic(w)
		if err != nil {
			return false
		}
		cfg := DefaultTestbed()
		cfg.PrefetchCount = int(kRaw) % 50
		switch policy % 5 {
		case 0:
			cfg = cfg.NPF()
		case 1: // defaults: PF + hints
		case 2:
			cfg.Hints = false
		case 3:
			cfg.Hints = false
			cfg.WriteBuffer = true
		case 4:
			cfg = cfg.NPF()
			cfg.MAID = true
		}
		res, err := Run(cfg, tr)
		if err != nil {
			return false
		}

		reads, writes := 0, 0
		for _, r := range tr.Records {
			if r.Op == trace.Read {
				reads++
			} else {
				writes++
			}
		}
		if res.Response.N != len(tr.Records) {
			return false
		}
		if res.ReadResponse.N != reads || res.WriteResponse.N != writes {
			return false
		}
		if res.BufferHits+res.BufferMisses != int64(reads) {
			return false
		}
		if res.BufferedWrites+res.DirectWrites != int64(writes) {
			return false
		}
		if math.Abs(res.TotalEnergyJ-(res.BaseEnergyJ+res.DiskEnergyJ)) > 1e-6 {
			return false
		}
		if res.Transitions != res.SpinUps+res.SpinDowns {
			return false
		}
		for _, st := range res.PerDisk {
			sum := 0.0
			for _, v := range st.TimeInState {
				sum += v
			}
			if math.Abs(sum-res.MakespanSec) > 1e-6*(1+res.MakespanSec) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWorstWearYears(t *testing.T) {
	wcfg := workload.DefaultSynthetic()
	tr, _ := workload.Synthetic(wcfg)
	pf, err := Run(DefaultTestbed(), tr)
	if err != nil {
		t.Fatal(err)
	}
	wear := pf.WorstWearYears(disk.RatedStartStopCycles)
	if wear <= 0 || math.IsInf(wear, 1) {
		t.Fatalf("wear = %g, want finite positive (the MU=1000 run cycles disks)", wear)
	}
	npf, err := Run(DefaultTestbed().NPF(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(npf.WorstWearYears(disk.RatedStartStopCycles), 1) {
		t.Fatal("NPF never sleeps: wear must be infinite")
	}
}

// TestPreBudGateBlocksHopelessSleeping pins Section IV-C's conservative
// behaviour: when every predicted idle window is below the sleep gate,
// the hints predictor forbids standby transitions entirely.
func TestPreBudGateBlocksHopelessSleeping(t *testing.T) {
	// One node, one data disk, K=0 (nothing prefetched), steady requests
	// every 2 s: every gap is under the 5 s threshold, so sleeping could
	// only lose energy. With hints the disk must never transition.
	cfg := tinyConfig()
	cfg.PrefetchCount = 0
	size := int64(1e6)
	tr := &trace.Trace{FileSizes: []int64{size}}
	for i := 0; i < 40; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Seq: int64(i), TimeS: 2 * float64(i), Op: trace.Read, FileID: 0, Size: size,
		})
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// The only window that clears the gate is the tail after the final
	// request, so at most one final spin-down and never a wake-up.
	if res.SpinUps != 0 {
		t.Fatalf("spin-ups = %d, want 0 (no mid-trace sleeping)", res.SpinUps)
	}
	if res.SpinDowns > 1 {
		t.Fatalf("spin-downs = %d, want <= 1 (end-of-trace only)", res.SpinDowns)
	}
	// Contrast: the reactive threshold policy has no such foresight but
	// also never fires here (gaps < threshold), while a 1 s threshold
	// would thrash.
	cfg.Hints = false
	cfg.IdleThresholdSec = 1
	thrash, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if thrash.Transitions == 0 {
		t.Fatal("1 s threshold policy should thrash on 2 s gaps")
	}
	withHints, err := Run(tinyConfigWith(func(c *Config) {
		c.PrefetchCount = 0
		c.IdleThresholdSec = 1
	}), tr)
	if err != nil {
		t.Fatal(err)
	}
	// The gate's payoff: the blind threshold policy pays spin-up latency
	// on nearly every request, the predictor-gated policy on none.
	if withHints.Response.Mean*5 >= thrash.Response.Mean {
		t.Fatalf("hints response %g not clearly below thrashing policy %g",
			withHints.Response.Mean, thrash.Response.Mean)
	}
	if withHints.SpinUps != 0 {
		t.Fatalf("gated policy woke a disk %d times", withHints.SpinUps)
	}
}

// tinyConfigWith returns tinyConfig with modifications applied.
func tinyConfigWith(mod func(*Config)) Config {
	cfg := tinyConfig()
	mod(&cfg)
	return cfg
}

func TestMultipleBufferDisks(t *testing.T) {
	wcfg := workload.DefaultSynthetic()
	wcfg.MU = 100
	tr, _ := workload.Synthetic(wcfg)

	run := func(m int) Result {
		cfg := DefaultTestbed()
		for i := range cfg.Nodes {
			cfg.Nodes[i].BufferDisks = m
		}
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	two := run(2)

	// Same coverage either way...
	if one.HitRatio() != 1 || two.HitRatio() != 1 {
		t.Fatalf("hit ratios %g / %g, want 1", one.HitRatio(), two.HitRatio())
	}
	// ...but the second buffer disk adds its own idle power draw, so the
	// paper's observation holds: "you would need many data disks to
	// amortize the energy cost of adding an extra disk".
	if two.TotalEnergyJ <= one.TotalEnergyJ {
		t.Fatalf("m=2 energy %g not above m=1 %g", two.TotalEnergyJ, one.TotalEnergyJ)
	}
	// Disk inventory: 8 nodes x (2 buffers + 2 data).
	if len(two.PerDisk) != 8*4 {
		t.Fatalf("PerDisk = %d entries, want 32", len(two.PerDisk))
	}
}

func TestMultipleBufferDisksRelieveBufferBottleneck(t *testing.T) {
	// Heavy buffer load: full coverage + zero inter-arrival delay puts the
	// whole burst on the buffer disks; a second buffer halves the queue.
	wcfg := workload.DefaultSynthetic()
	wcfg.MU = 100
	wcfg.InterArrival = 0
	wcfg.NumRequests = 400
	tr, _ := workload.Synthetic(wcfg)

	run := func(m int) Result {
		cfg := DefaultTestbed()
		for i := range cfg.Nodes {
			cfg.Nodes[i].BufferDisks = m
		}
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	two := run(2)
	if two.Response.Mean >= one.Response.Mean {
		t.Fatalf("m=2 response %g not below m=1 %g under buffer-bound burst",
			two.Response.Mean, one.Response.Mean)
	}
}

func TestBufferDisksValidation(t *testing.T) {
	cfg := DefaultTestbed()
	cfg.Nodes[0].BufferDisks = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative BufferDisks accepted")
	}
}

func TestDownNodesValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.DownNodes = []int{-1} },
		func(c *Config) { c.DownNodes = []int{8} },
		func(c *Config) { c.DownNodes = []int{2, 2} },
		func(c *Config) { c.DownNodes = []int{0, 1, 2, 3, 4, 5, 6, 7} },
	}
	for i, mod := range bad {
		cfg := DefaultTestbed()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid DownNodes accepted", i)
		}
	}
	cfg := DefaultTestbed()
	cfg.DownNodes = []int{7, 0}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid DownNodes rejected: %v", err)
	}
}

// TestDownNodesEquivalentToSmallerCluster: marking the Type 2 half of the
// testbed down must behave exactly like a cluster that never had those
// nodes — placement skips them, and they draw no power.
func TestDownNodesEquivalentToSmallerCluster(t *testing.T) {
	tr, err := workload.Synthetic(workload.DefaultSynthetic())
	if err != nil {
		t.Fatal(err)
	}

	degraded := DefaultTestbed()
	degraded.DownNodes = []int{4, 5, 6, 7}
	got, err := Run(degraded, tr)
	if err != nil {
		t.Fatal(err)
	}

	small := DefaultTestbed()
	small.Nodes = small.Nodes[:4]
	want, err := Run(small, tr)
	if err != nil {
		t.Fatal(err)
	}

	if got.TotalEnergyJ != want.TotalEnergyJ ||
		got.MakespanSec != want.MakespanSec ||
		got.Transitions != want.Transitions ||
		got.Response.Mean != want.Response.Mean {
		t.Fatalf("degraded run differs from 4-node run:\n got %+v\nwant %+v", got, want)
	}

	full, err := Run(DefaultTestbed(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseEnergyJ >= full.BaseEnergyJ {
		t.Fatalf("down nodes still drawing power: degraded base %g >= full base %g",
			got.BaseEnergyJ, full.BaseEnergyJ)
	}
}
