package cluster

import (
	"eevfs/internal/adaptive"
	"eevfs/internal/disk"
	"eevfs/internal/prefetch"
	"eevfs/internal/simtime"
)

// adaptiveState carries one run's online-policy state (Config.Adaptive).
//
// The arm starts exactly like NPF — cold buffers, no prefetch phase, no
// future knowledge — and earns its way into power management: per-disk
// inter-arrival estimators decide when a spin-down is likely to pay
// back, a per-window transition budget bounds the damage a wrong
// estimate can do, and a savings bank (realized Joules versus the
// idle-through baseline) funds speculative fetches into the buffer
// disks, so the policy can only ever spend energy it has already saved.
type adaptiveState struct {
	params adaptive.Params
	ctl    *adaptive.Controller
	churn  *adaptive.Churn

	// bankJ is the realized net savings versus never sleeping: credited
	// when a sleep episode settles, debited when a fetch is admitted.
	bankJ float64
}

// newAdaptiveState sizes the controller for the run's data disks and
// stamps each with its global index.
func (s *sim) newAdaptiveState() *adaptiveState {
	p := adaptive.Defaults()
	if s.cfg.AdaptiveParams != nil {
		p = *s.cfg.AdaptiveParams
	}
	n := 0
	for _, node := range s.nodes {
		for _, d := range node.data {
			d.adIdx = n
			n++
		}
	}
	return &adaptiveState{
		params: p,
		ctl:    adaptive.NewController(p, n),
		churn:  adaptive.NewChurn(p),
	}
}

// adaptiveObserve feeds one foreground data-disk arrival into the
// estimator. Background fetch reads are excluded: the estimator tracks
// client demand, not the policy's own traffic.
func (s *sim) adaptiveObserve(d *simDisk, r *request, now simtime.Time) {
	if s.adapt == nil || d.isBuffer {
		return
	}
	if r.kind == opRead || r.kind == opWrite {
		s.adapt.ctl.Observe(d.adIdx, float64(now))
	}
}

// adaptiveArm applies the adapted threshold when a data disk goes idle:
// one timer at the controller's threshold; if the disk is still idle
// when it fires, the spin-down is attempted against the budget.
func (s *sim) adaptiveArm(d *simDisk, now simtime.Time) {
	if d.d.State() != disk.Idle || d.busy || len(d.queue) > 0 {
		return
	}
	th := s.adapt.ctl.ThresholdSec(d.adIdx, s.cfg.IdleThresholdSec, d.d.Model())
	s.met.adaptiveThreshold.Observe(th)
	if d.idleTimer != nil {
		s.eng.Cancel(d.idleTimer)
	}
	d.idleTimer = s.eng.After(th, func(now simtime.Time) {
		d.idleTimer = nil
		s.adaptiveMaybeSleep(d, now)
	})
}

// adaptiveMaybeSleep fires at the adapted threshold: if the disk is
// still idle and the transition budget admits it, spin down; a budget
// veto re-arms at the instant the window frees up.
func (s *sim) adaptiveMaybeSleep(d *simDisk, now simtime.Time) {
	if d.d.State() != disk.Idle || d.busy || len(d.queue) > 0 {
		return
	}
	if !s.adapt.ctl.AllowSpinDown(d.adIdx, float64(now)) {
		s.res.AdaptiveBudgetVetoes++
		at := s.adapt.ctl.NextBudgetFreeAt(d.adIdx, float64(now))
		d.idleTimer = s.eng.Schedule(simtime.Time(at), func(now simtime.Time) {
			d.idleTimer = nil
			s.adaptiveMaybeSleep(d, now)
		})
		return
	}
	s.adapt.ctl.NoteSpinDown(d.adIdx, float64(now))
	d.adSleepStart = float64(now)
	d.adSleeping = true
	s.beginSpinDown(d, now)
}

// adaptiveSettle credits the bank when a sleep episode ends at wake
// time: what idling through [sleep start, wake end] would have cost,
// minus what the cycle actually cost.
func (s *sim) adaptiveSettle(d *simDisk, now simtime.Time) {
	if s.adapt == nil || !d.adSleeping {
		return
	}
	d.adSleeping = false
	m := d.d.Model()
	span := float64(now) - d.adSleepStart + m.SpinUpSec
	dwell := float64(now) - d.adSleepStart - m.SpinDownSec
	if dwell < 0 {
		dwell = 0
	}
	s.adapt.bankJ += m.PIdle*span - (m.SpinDownJ + m.PStandby*dwell + m.SpinUpJ)
}

// adaptiveNoteRead feeds the churn detector with one read's buffer
// outcome and runs the re-prefetch when the hot set has drifted away
// from the buffered set.
func (s *sim) adaptiveNoteRead(fid int, hit bool, now simtime.Time) {
	if s.adapt == nil {
		return
	}
	if s.adapt.churn.Observe(fid, hit) {
		s.adaptiveReprefetch(now)
	}
}

// adaptiveFetchFeeJ conservatively estimates the energy a fetch will
// spend: the data-disk read and the buffer-disk append, both priced at
// full active power (the true cost is only the increment over idle, so
// the bank gate errs on the safe side).
func (s *sim) adaptiveFetchFeeJ(n *simNode, fid int, size int64) float64 {
	fee := 0.0
	for _, ch := range s.chunksOf(fid) {
		m := n.cfg.DataModel
		fee += m.PActive * m.ServiceTime(ch.bytes)
	}
	bm := n.cfg.BufferModel
	fee += bm.PActive * bm.SequentialTime(size)
	return fee
}

// adaptiveReprefetch re-ranks the windowed popularity counts and
// fetches the hot files the buffers are missing. Every admission is
// gated: the file must be demonstrably hot (MinFetchHits in-window),
// its source data disks must be spinning and unoccupied (never wake or
// delay a disk for speculation), and the savings bank must hold
// FetchSafety times the fetch's estimated cost.
func (s *sim) adaptiveReprefetch(now simtime.Time) {
	p := s.adapt.params
	counts := s.adapt.churn.Counts()
	ids := prefetch.SelectWindowed(counts, p.MinFetchHits, 0)
	want := prefetch.NewSet(ids)
	fetched := 0
	for _, fid := range ids {
		if fetched >= p.MaxFetchPerRecompute {
			break
		}
		if s.prefetched[fid] || s.fetching[fid] {
			continue
		}
		n := s.nodes[s.assign.Node[fid]]
		size := s.tr.FileSizes[fid]
		idle := true
		for _, ch := range s.chunksOf(fid) {
			dd := n.data[ch.disk]
			if dd.d.State() != disk.Idle || dd.busy || len(dd.queue) > 0 {
				idle = false
				break
			}
		}
		if !idle {
			continue
		}
		fee := s.adaptiveFetchFeeJ(n, fid, size)
		if s.adapt.bankJ < p.FetchSafety*fee {
			continue
		}
		_, bi := n.bufferFor(fid)
		for !n.bufferFits(fid, size) {
			if !s.evictColdest(n, bi, want) {
				break
			}
		}
		if !n.bufferFits(fid, size) {
			continue
		}
		s.adapt.bankJ -= fee
		n.bufferReserve(fid, size)
		s.fetching[fid] = true
		s.addWork(1)
		s.fanToDataDisks(n, fid, size, now, opPrefRead, now)
		fetched++
	}
	s.res.AdaptiveReprefetches++
	s.met.adaptiveReprefetches.Inc()
	// Reset starts the cooldown but deliberately keeps the window's miss
	// labels (no Rescore): a recompute here may fetch only part of what
	// it wants — the cap, the bank, and the never-wake-a-disk gate all
	// skip files — so refiring after the cooldown is the retry loop that
	// finishes chasing the hot set, and every retry is bank-gated. The
	// real server does the opposite (Rescore) because its fetches are
	// ungated RPC fan-outs where a stale-evidence refire is pure waste.
	s.adapt.churn.Reset()
}
