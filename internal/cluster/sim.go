package cluster

import (
	"container/list"
	"fmt"
	"sort"

	"eevfs/internal/disk"
	"eevfs/internal/metrics"
	"eevfs/internal/netmodel"
	"eevfs/internal/placement"
	"eevfs/internal/prefetch"
	"eevfs/internal/simtime"
	"eevfs/internal/telemetry"
	"eevfs/internal/trace"
)

type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opFlush
	opInsert   // buffer-disk population (MAID cache fill, dynamic prefetch)
	opPrefRead // data-disk read feeding a dynamic prefetch
)

// fanout tracks a striped operation spread over several data disks; the
// client-visible completion happens when the last chunk finishes.
type fanout struct {
	remaining int
	fileID    int
	total     int64
	sentAt    simtime.Time
	kind      opKind
}

// request is one unit of disk work in flight through the simulator.
type request struct {
	kind   opKind
	fileID int
	size   int64
	sentAt simtime.Time // client send time; zero-valued for flushes
	fan    *fanout      // non-nil for chunks of a striped operation
	// release lists, per buffer-disk index, the occupancy a completed
	// flush frees (opFlush only).
	release []int64

	// Telemetry timestamps: when the request joined a disk queue and when
	// its service began (for the journal's queue-wait accounting).
	enqAt   simtime.Time
	startAt simtime.Time
}

// simDisk wraps a disk state machine with its queue and power-management
// bookkeeping.
type simDisk struct {
	d         *disk.Disk
	node      *simNode
	name      string // journal subject, e.g. "node0/data1"
	isBuffer  bool
	dataIndex int // -1 for the buffer disk

	queue []*request
	busy  bool
	cur   *request

	// predicted holds the absolute times of accesses expected to reach
	// this data disk (hints mode); predIdx advances as time passes.
	predicted []float64
	predIdx   int

	idleTimer   *simtime.Event
	prewake     *simtime.Event
	wakePending bool

	// Adaptive-arm bookkeeping: the disk's index into the online
	// controller, and the open sleep episode being banked.
	adIdx        int
	adSleepStart float64
	adSleeping   bool

	// sleepAllowed is the PRE-BUD gate (Section IV-C): hints predict
	// whether any idle window on this disk clears the break-even test;
	// when none does, the node "will not place disks into the standby
	// state" at all, avoiding guaranteed-loss transitions.
	sleepAllowed bool

	pendingFlushBytes int64
	// pendingPerBuffer tracks which buffer disks hold the unflushed
	// bytes destined for this data disk.
	pendingPerBuffer []int64
}

// simNode is one storage node: a NIC, m buffer disks, and n data disks
// (the paper's BUD architecture, Section I: "each storage node contains m
// buffer disks and n data disks", usually m < n).
type simNode struct {
	id      int
	cfg     NodeConfig
	link    *netmodel.Link
	buffers []*simDisk
	data    []*simDisk
	bufUsed []int64 // occupancy per buffer disk
	bufCap  int64   // capacity per buffer disk

	// MAID cache state: file id -> element in the LRU list (front = most
	// recently used). Only populated in MAID mode.
	cache    map[int]*list.Element
	cacheLRU *list.List // of int file ids
}

// sim carries one run's state.
type sim struct {
	cfg        Config
	tr         *trace.Trace
	eng        *simtime.Engine
	nodes      []*simNode
	assign     placement.Assignment
	prefetched prefetch.Set
	offset     simtime.Time

	// Dynamic re-prefetching state (ReprefetchEvery > 0).
	replayed       int
	observedCounts []int
	fetching       map[int]bool

	// Online adaptive policy state (Config.Adaptive); nil otherwise.
	adapt *adaptiveState

	// outstanding counts unfinished work items (unarrived or in-flight
	// trace records, pending flushes, background buffer inserts). When it
	// reaches zero the run is over: pending power-management timers are
	// cancelled so they cannot stretch the measured makespan with phantom
	// idle time.
	outstanding int

	resp      metrics.Sampler
	readResp  metrics.Sampler
	writeResp metrics.Sampler
	res       Result

	// Telemetry sinks (both optional): pre-resolved metric handles and
	// the structured event journal.
	met  simMetrics
	jour *telemetry.Journal
}

// bufferFor maps a file to its buffer disk (files hash across the m
// buffer disks by id, mirroring the data-disk round-robin).
func (n *simNode) bufferFor(fid int) (*simDisk, int) {
	idx := fid % len(n.buffers)
	return n.buffers[idx], idx
}

// bufferFits reports whether the file's buffer disk can absorb size more
// bytes.
func (n *simNode) bufferFits(fid int, size int64) bool {
	_, idx := n.bufferFor(fid)
	return n.bufUsed[idx]+size <= n.bufCap
}

// bufferReserve adds size bytes to the file's buffer disk occupancy.
func (n *simNode) bufferReserve(fid int, size int64) {
	_, idx := n.bufferFor(fid)
	n.bufUsed[idx] += size
}

// bufferRelease frees size bytes from the file's buffer disk occupancy.
func (n *simNode) bufferRelease(fid int, size int64) {
	_, idx := n.bufferFor(fid)
	n.bufUsed[idx] -= size
}

// chunk is one striped fragment: which data disk and how many bytes.
type chunk struct {
	disk  int
	bytes int64
}

// chunksOf splits a file across the node's data disks (whole-file when
// striping is off). Chunk c of file f lands on disk (primary + c) mod N,
// so consecutive chunks parallelize across spindles.
func (s *sim) chunksOf(fid int) []chunk {
	size := s.tr.FileSizes[fid]
	primary := s.assign.Disk[fid]
	stripe := s.cfg.StripeChunkBytes
	if stripe <= 0 || size <= stripe {
		return []chunk{{disk: primary, bytes: size}}
	}
	disks := s.cfg.DataDisksPerNode()
	var out []chunk
	for off, c := int64(0), 0; off < size; off, c = off+stripe, c+1 {
		n := stripe
		if size-off < n {
			n = size - off
		}
		out = append(out, chunk{disk: (primary + c) % disks, bytes: n})
	}
	return out
}

// Run simulates the trace against the configured cluster and returns the
// measured result. Runs are fully deterministic.
func Run(cfg Config, tr *trace.Trace) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	// Degraded-mode placement: drop out-of-service nodes before building
	// anything, so files land (and power is drawn) only where the cluster
	// is actually serving — mirroring the prototype server, which skips
	// unhealthy nodes in its placement round-robin.
	cfg.Nodes = cfg.upNodes()
	cfg.DownNodes = nil

	s := &sim{cfg: cfg, tr: tr, eng: &simtime.Engine{}, fetching: make(map[int]bool)}
	s.met = newSimMetrics(cfg.Metrics)
	s.jour = cfg.Journal
	if cfg.ReprefetchEvery > 0 {
		s.observedCounts = make([]int, tr.NumFiles())
	}
	s.buildNodes()
	if cfg.Adaptive {
		s.adapt = s.newAdaptiveState()
	}

	counts := tr.Counts()
	ranks := trace.RankByCount(counts)
	place := placement.RoundRobin
	if cfg.Concentrate {
		place = placement.Concentrate
	}
	assign, err := place(ranks, len(cfg.Nodes), cfg.DataDisksPerNode())
	if err != nil {
		return Result{}, err
	}
	s.assign = assign

	if cfg.Prefetch {
		ids, err := prefetch.Select(counts, tr.FileSizes, cfg.PrefetchCount, s.globalBufferCap())
		if err != nil {
			return Result{}, err
		}
		s.prefetched = prefetch.NewSet(ids)
		s.runPrefetchPhase(ids)
	} else {
		s.prefetched = prefetch.NewSet(nil)
	}

	if cfg.Prefetch && cfg.Hints {
		s.buildPredictions()
	}

	// Replay: schedule every trace record's arrival at the storage node.
	s.outstanding = len(tr.Records)
	for i := range tr.Records {
		rec := tr.Records[i]
		sent := s.offset + simtime.Time(rec.TimeS)
		s.eng.Schedule(sent+simtime.Time(cfg.RouteLatencySec), func(now simtime.Time) {
			s.nodeArrival(now, rec, sent)
		})
	}

	// Initial power-management pass at replay start: disks left idle
	// after the prefetch phase may already face a long predicted gap.
	for _, n := range s.nodes {
		for _, d := range n.data {
			d := d
			s.eng.Schedule(s.offset, func(now simtime.Time) { s.onIdle(d, now) })
		}
	}

	s.eng.Run()
	s.finalFlush()
	s.finalize()
	return s.res, nil
}

func (s *sim) buildNodes() {
	s.nodes = make([]*simNode, len(s.cfg.Nodes))
	for i, nc := range s.cfg.Nodes {
		n := &simNode{
			id:   i,
			cfg:  nc,
			link: netmodel.NewLink(fmt.Sprintf("node%d", i), nc.LinkMbps, 0.0001),
		}
		buffers := nc.BufferDisks
		if buffers <= 0 {
			buffers = 1
		}
		for j := 0; j < buffers; j++ {
			name := fmt.Sprintf("node%d/buffer", i)
			if buffers > 1 {
				name = fmt.Sprintf("node%d/buffer%d", i, j)
			}
			sd := &simDisk{
				d:         disk.New(name, nc.BufferModel),
				node:      n,
				isBuffer:  true,
				dataIndex: -1,
			}
			s.instrumentDisk(sd, name)
			n.buffers = append(n.buffers, sd)
		}
		n.bufUsed = make([]int64, buffers)
		for j := 0; j < nc.DataDisks; j++ {
			name := fmt.Sprintf("node%d/data%d", i, j)
			sd := &simDisk{
				d:         disk.New(name, nc.DataModel),
				node:      n,
				dataIndex: j,
			}
			s.instrumentDisk(sd, name)
			n.data = append(n.data, sd)
		}
		n.bufCap = s.cfg.BufferCapacityBytes
		if n.bufCap == 0 {
			n.bufCap = int64(nc.BufferModel.CapacityGB * 1e9)
		}
		if s.cfg.MAID {
			n.cache = make(map[int]*list.Element)
			n.cacheLRU = list.New()
		}
		s.nodes[i] = n
	}
}

// globalBufferCap returns the total buffer capacity across nodes, used to
// bound the global prefetch selection.
func (s *sim) globalBufferCap() int64 {
	var total int64
	for _, n := range s.nodes {
		total += n.bufCap * int64(len(n.buffers))
	}
	return total
}

// runPrefetchPhase copies the selected files from their data disks into
// their node's buffer disk, before trace replay begins (step 3 of the
// process flow). The phase is simulated with per-disk time cursors: reads
// on distinct data disks overlap, buffer-disk log appends serialize.
func (s *sim) runPrefetchPhase(ids []int) {
	nodeEnd := make([]simtime.Time, len(s.nodes))
	dataFree := make([][]simtime.Time, len(s.nodes))
	bufferFree := make([][]simtime.Time, len(s.nodes))
	for i, n := range s.nodes {
		dataFree[i] = make([]simtime.Time, len(n.data))
		bufferFree[i] = make([]simtime.Time, len(n.buffers))
	}

	for _, fid := range ids {
		ni := s.assign.Node[fid]
		n := s.nodes[ni]
		size := s.tr.FileSizes[fid]
		if !n.bufferFits(fid, size) {
			delete(s.prefetched, fid)
			continue
		}

		// Read every chunk from its data disk (chunks on distinct disks
		// overlap in time), then append the whole file to the buffer log.
		var readEnd simtime.Time
		for _, ch := range s.chunksOf(fid) {
			dd := n.data[ch.disk]
			start := dataFree[ni][ch.disk]
			end := start + simtime.Time(n.cfg.DataModel.ServiceTime(ch.bytes))
			dd.d.BeginService(start)
			dd.d.EndService(end, ch.bytes)
			dataFree[ni][ch.disk] = end
			if end > readEnd {
				readEnd = end
			}
		}

		buf, bi := n.bufferFor(fid)
		writeStart := bufferFree[ni][bi]
		if readEnd > writeStart {
			writeStart = readEnd
		}
		writeEnd := writeStart + simtime.Time(n.cfg.BufferModel.SequentialTime(size))
		buf.d.BeginService(writeStart)
		buf.d.EndService(writeEnd, size)
		bufferFree[ni][bi] = writeEnd

		n.bufferReserve(fid, size)
		if writeEnd > nodeEnd[ni] {
			nodeEnd[ni] = writeEnd
		}
		s.res.PrefetchedFiles++
	}

	for _, e := range nodeEnd {
		if e > s.offset {
			s.offset = e
		}
	}
	// Integrate idle energy of every disk up to the cluster-wide phase
	// end, so PrefetchEnergyJ is a clean snapshot.
	for _, n := range s.nodes {
		for _, b := range n.buffers {
			b.d.Advance(s.offset)
			s.res.PrefetchEnergyJ += b.d.Stats().EnergyJ
		}
		for _, d := range n.data {
			d.d.Advance(s.offset)
			s.res.PrefetchEnergyJ += d.d.Stats().EnergyJ
		}
	}
	s.res.PrefetchEndSec = float64(s.offset)
}

// buildPredictions distributes the per-file access pattern to the data
// disks (the server "splits the file access patterns based on the data
// distribution and forwards [them] to each storage node", Section III-B).
// Only residual traffic — files not prefetched, or writes that will reach
// the data disk — is included.
func (s *sim) buildPredictions() {
	for _, rec := range s.tr.Records {
		hitsBuffer := false
		switch rec.Op {
		case trace.Read:
			hitsBuffer = s.prefetched[rec.FileID]
		case trace.Write:
			hitsBuffer = s.cfg.WriteBuffer
		}
		if hitsBuffer {
			continue
		}
		n := s.nodes[s.assign.Node[rec.FileID]]
		for _, ch := range s.chunksOf(rec.FileID) {
			d := n.data[ch.disk]
			d.predicted = append(d.predicted, float64(s.offset)+rec.TimeS)
		}
	}
	horizon := float64(s.offset) + s.tr.Duration() + 30
	for _, n := range s.nodes {
		meanService := n.cfg.DataModel.ServiceTime(s.meanFileSize())
		for _, d := range n.data {
			sort.Float64s(d.predicted)
			// PRE-BUD energy prediction: plan the sleeps this disk's
			// residual pattern allows and keep power management enabled
			// only if the plan actually saves energy.
			busy := prefetch.BusyFromAccesses(d.predicted, meanService)
			windows := prefetch.IdleWindows(busy, horizon)
			plan := prefetch.PlanSleeps(windows, s.hintGate(n.cfg.DataModel))
			d.sleepAllowed = prefetch.PredictSavings(busy, horizon, n.cfg.DataModel, plan) > 0
		}
	}
}

// meanFileSize returns the average file size, the service-time stand-in
// the energy predictor uses.
func (s *sim) meanFileSize() int64 {
	if s.tr.NumFiles() == 0 {
		return 0
	}
	var total int64
	for _, sz := range s.tr.FileSizes {
		total += sz
	}
	return total / int64(s.tr.NumFiles())
}

// nodeArrival handles a request reaching its storage node.
func (s *sim) nodeArrival(now simtime.Time, rec trace.Record, sentAt simtime.Time) {
	n := s.nodes[s.assign.Node[rec.FileID]]
	s.noteAccess(rec.FileID, now)
	switch rec.Op {
	case trace.Read:
		switch {
		case (s.cfg.Prefetch || s.cfg.Adaptive) && s.prefetched[rec.FileID]:
			s.res.BufferHits++
			s.met.bufferHits.Inc()
			buf, _ := n.bufferFor(rec.FileID)
			s.enqueue(buf, &request{kind: opRead, fileID: rec.FileID, size: rec.Size, sentAt: sentAt}, now)
		case s.cfg.MAID && s.maidHit(n, rec.FileID):
			s.res.BufferHits++
			s.met.bufferHits.Inc()
			buf, _ := n.bufferFor(rec.FileID)
			s.enqueue(buf, &request{kind: opRead, fileID: rec.FileID, size: rec.Size, sentAt: sentAt}, now)
		default:
			s.res.BufferMisses++
			s.met.bufferMisses.Inc()
			s.fanToDataDisks(n, rec.FileID, rec.Size, sentAt, opRead, now)
		}
		// The churn detector sees every read's buffer outcome; it runs
		// after the enqueue so a triggered re-prefetch never queues a
		// speculative fetch ahead of the demand read itself.
		if s.cfg.Adaptive {
			s.adaptiveNoteRead(rec.FileID, s.prefetched[rec.FileID], now)
		}

	case trace.Write:
		// Inbound data transfer over the node NIC, then the disk write.
		_, end := n.link.Reserve(now, rec.Size)
		s.eng.Schedule(end, func(now simtime.Time) {
			s.writeArrived(n, rec, sentAt, now)
		})
	}
}

// noteAccess feeds the dynamic re-prefetcher (ReprefetchEvery > 0). The
// popularity window is one re-prefetch interval: PRE-BUD derives
// "popularity based on the number of accesses over a given period of
// time" (Section IV-B), and a cumulative count would keep long-cold files
// pinned in the buffer forever.
func (s *sim) noteAccess(fileID int, now simtime.Time) {
	if s.cfg.ReprefetchEvery <= 0 {
		return
	}
	s.observedCounts[fileID]++
	s.replayed++
	if s.replayed%s.cfg.ReprefetchEvery == 0 {
		s.reprefetch(now)
		for i := range s.observedCounts {
			s.observedCounts[i] = 0
		}
	}
}

// fanToDataDisks enqueues one request's chunks across the node's data
// disks; with striping off this degenerates to a single enqueue.
func (s *sim) fanToDataDisks(n *simNode, fileID int, size int64, sentAt simtime.Time, kind opKind, now simtime.Time) {
	chunks := s.chunksOf(fileID)
	fan := &fanout{remaining: len(chunks), fileID: fileID, total: size, sentAt: sentAt, kind: kind}
	for _, ch := range chunks {
		s.enqueue(n.data[ch.disk], &request{
			kind: kind, fileID: fileID, size: ch.bytes, sentAt: sentAt, fan: fan,
		}, now)
	}
}

// writeArrived places a fully-received write on the buffer disk (if the
// write-buffer area has room) or directly on the data disk(s).
func (s *sim) writeArrived(n *simNode, rec trace.Record, sentAt, now simtime.Time) {
	if s.cfg.Prefetch && s.cfg.WriteBuffer && n.bufferFits(rec.FileID, rec.Size) {
		n.bufferReserve(rec.FileID, rec.Size)
		_, bi := n.bufferFor(rec.FileID)
		// The eventual flush lands on the same disks a direct write
		// would have touched.
		for _, ch := range s.chunksOf(rec.FileID) {
			dd := n.data[ch.disk]
			dd.pendingFlushBytes += ch.bytes
			if dd.pendingPerBuffer == nil {
				dd.pendingPerBuffer = make([]int64, len(n.buffers))
			}
			dd.pendingPerBuffer[bi] += ch.bytes
		}
		s.res.BufferedWrites++
		s.met.bufferedWrites.Inc()
		buf, _ := n.bufferFor(rec.FileID)
		s.enqueue(buf, &request{kind: opWrite, fileID: rec.FileID, size: rec.Size, sentAt: sentAt}, now)
		return
	}
	s.res.DirectWrites++
	s.met.directWrites.Inc()
	s.fanToDataDisks(n, rec.FileID, rec.Size, sentAt, opWrite, now)
}

// enqueue adds a request to a disk queue and makes sure the disk is
// coming up to serve it.
func (s *sim) enqueue(d *simDisk, r *request, now simtime.Time) {
	if d.idleTimer != nil {
		s.eng.Cancel(d.idleTimer)
		d.idleTimer = nil
	}
	s.adaptiveObserve(d, r, now)
	r.enqAt = now
	d.queue = append(d.queue, r)
	s.ensureAwake(d, now)
}

// ensureAwake drives the disk toward serving its queue, whatever power
// state it is in.
func (s *sim) ensureAwake(d *simDisk, now simtime.Time) {
	switch d.d.State() {
	case disk.Idle:
		if !d.busy {
			s.startService(d, now)
		}
	case disk.Active:
		// diskDone will pick up the queue.
	case disk.Standby:
		s.beginSpinUp(d, now)
	case disk.SpinningUp:
		// spinUpDone will serve the queue.
	case disk.SpinningDown:
		d.wakePending = true
	}
}

func (s *sim) beginSpinUp(d *simDisk, now simtime.Time) {
	if d.prewake != nil {
		s.eng.Cancel(d.prewake)
		d.prewake = nil
	}
	s.adaptiveSettle(d, now)
	d.d.BeginSpinUp(now)
	s.eng.After(d.d.Model().SpinUpSec, func(now simtime.Time) {
		d.d.CompleteSpinUp(now)
		if len(d.queue) > 0 {
			s.startService(d, now)
		} else {
			s.onIdle(d, now)
		}
	})
}

func (s *sim) startService(d *simDisk, now simtime.Time) {
	r := d.queue[0]
	d.queue = d.queue[1:]
	d.busy = true
	d.cur = r
	r.startAt = now
	d.d.BeginService(now)

	var dur float64
	m := d.d.Model()
	switch {
	case d.isBuffer && (r.kind == opWrite || r.kind == opInsert):
		dur = m.SequentialTime(r.size) // log-structured append
	default:
		dur = m.ServiceTime(r.size)
	}
	s.eng.After(dur, func(now simtime.Time) { s.diskDone(d, now) })
}

func (s *sim) diskDone(d *simDisk, now simtime.Time) {
	r := d.cur
	d.d.EndService(now, r.size)
	d.busy = false
	d.cur = nil
	s.noteService(d, r, now)

	switch r.kind {
	case opRead:
		if r.fan != nil {
			// One striped chunk done; the response waits for the rest.
			r.fan.remaining--
			if r.fan.remaining == 0 {
				s.completeRead(d.node, r.fan.fileID, r.fan.total, r.fan.sentAt, now)
			}
			break
		}
		s.completeRead(d.node, r.fileID, r.size, r.sentAt, now)
	case opWrite:
		if r.fan != nil {
			r.fan.remaining--
			if r.fan.remaining != 0 {
				break
			}
		}
		respAt := now + simtime.Time(s.cfg.RouteLatencySec)
		s.eng.Schedule(respAt, func(now simtime.Time) {
			s.record(r, float64(now-r.sentAt))
		})
	case opFlush:
		for bi, amount := range r.release {
			d.node.bufUsed[bi] -= amount
		}
		s.res.FlushedBytes += r.size
		s.doneWork()
	case opInsert:
		// Buffer-disk population completed. For dynamic prefetch the
		// file only now becomes servable from the buffer.
		if s.fetching[r.fileID] {
			delete(s.fetching, r.fileID)
			s.prefetched[r.fileID] = true
			s.res.PrefetchedFiles++
		}
		s.doneWork()
	case opPrefRead:
		// Dynamic-prefetch fetch read; when the last chunk lands, queue
		// the buffer-disk log append.
		r.fan.remaining--
		if r.fan.remaining == 0 {
			buf, _ := d.node.bufferFor(r.fan.fileID)
			s.enqueue(buf, &request{
				kind: opInsert, fileID: r.fan.fileID, size: r.fan.total,
			}, now)
		}
	}

	// MAID: a miss serviced by data disks is copied into the buffer
	// disk's cache in LRU order (once, when the whole file is in).
	if s.cfg.MAID && !d.isBuffer && r.kind == opRead &&
		(r.fan == nil || r.fan.remaining == 0) {
		size := r.size
		if r.fan != nil {
			size = r.fan.total
		}
		s.maidInsert(d.node, r.fileID, size, now)
	}

	if len(d.queue) > 0 {
		s.startService(d, now)
		return
	}
	s.onIdle(d, now)
}

// completeRead finishes a client read: outbound NIC transfer, then the
// response sample.
func (s *sim) completeRead(n *simNode, fileID int, size int64, sentAt, now simtime.Time) {
	_, end := n.link.Reserve(now, size)
	respAt := end + simtime.Time(s.cfg.RouteLatencySec)
	rr := &request{kind: opRead, fileID: fileID, size: size, sentAt: sentAt}
	s.eng.Schedule(respAt, func(now simtime.Time) {
		s.record(rr, float64(now-rr.sentAt))
	})
}

// reprefetch recomputes the popularity ranking from the accesses observed
// so far and reconciles the buffer-disk contents: newly hot files are
// fetched in the background, files that fell out of the top K are evicted
// (metadata-only; the log-structured buffer reclaims space lazily).
func (s *sim) reprefetch(now simtime.Time) {
	ids, err := prefetch.Select(s.observedCounts, s.tr.FileSizes, s.cfg.PrefetchCount, 0)
	if err != nil {
		// Cannot happen: inputs are internally consistent.
		panic(err)
	}
	want := prefetch.NewSet(ids)

	// Fetch newly hot files. Eviction is capacity-driven only: cooled
	// files stay as free buffer hits until their space is needed (the
	// buffer is a cache, not a mirror of the ranking).
	for _, fid := range ids {
		if s.prefetched[fid] || s.fetching[fid] {
			continue
		}
		n := s.nodes[s.assign.Node[fid]]
		size := s.tr.FileSizes[fid]
		_, bi := n.bufferFor(fid)
		for !n.bufferFits(fid, size) {
			if !s.evictColdest(n, bi, want) {
				break
			}
		}
		if !n.bufferFits(fid, size) {
			continue
		}
		n.bufferReserve(fid, size)
		s.fetching[fid] = true
		s.addWork(1)
		s.fanToDataDisks(n, fid, size, now, opPrefRead, now)
	}
}

// evictColdest drops one prefetched file on the node's given buffer disk
// that the current ranking no longer wants; it reports whether anything
// was evicted.
func (s *sim) evictColdest(n *simNode, bufIdx int, want prefetch.Set) bool {
	victim := -1
	for fid := range s.prefetched {
		if !want[fid] && s.assign.Node[fid] == n.id && fid%len(n.buffers) == bufIdx {
			if victim < 0 || fid < victim { // deterministic choice
				victim = fid
			}
		}
	}
	if victim < 0 {
		return false
	}
	delete(s.prefetched, victim)
	n.bufferRelease(victim, s.tr.FileSizes[victim])
	return true
}

func (s *sim) record(r *request, rt float64) {
	s.noteResponse(r, rt)
	s.resp.Add(rt)
	if r.kind == opRead {
		s.readResp.Add(rt)
	} else {
		s.writeResp.Add(rt)
	}
	s.doneWork()
}

// addWork registers n new work items (flushes, background inserts).
func (s *sim) addWork(n int) { s.outstanding += n }

// doneWork retires one work item; at zero the run quiesces.
func (s *sim) doneWork() {
	s.outstanding--
	if s.outstanding == 0 {
		s.quiesce()
	}
}

// quiesce cancels every pending power-management event: the experiment is
// over, and a timer firing later would only add measurement time in which
// nothing happens (the paper's testbed stopped measuring when the trace
// completed). In-flight spin-downs still finish (bounded by SpinDownSec).
func (s *sim) quiesce() {
	for _, n := range s.nodes {
		for _, d := range n.data {
			if d.idleTimer != nil {
				s.eng.Cancel(d.idleTimer)
				d.idleTimer = nil
			}
			if d.prewake != nil {
				s.eng.Cancel(d.prewake)
				d.prewake = nil
			}
		}
	}
}

// minSleepGap returns the configured sleep gate.
func (s *sim) minSleepGap() float64 {
	if s.cfg.MinSleepGapSec > 0 {
		return s.cfg.MinSleepGapSec
	}
	return s.cfg.IdleThresholdSec
}

// hintGate returns the effective predictive-sleep gate for a disk: the
// configured gate, floored at the physical sleep/wake cycle time — a
// window shorter than the two transitions cannot be slept at all.
func (s *sim) hintGate(m disk.Model) float64 {
	gate := s.minSleepGap()
	if cycle := m.SpinDownSec + m.SpinUpSec; gate < cycle {
		gate = cycle
	}
	return gate
}

// onIdle runs every time a disk's queue drains (and once at replay start).
// It flushes pending write-buffer data and then applies the node's power
// management policy (Section III-C).
func (s *sim) onIdle(d *simDisk, now simtime.Time) {
	if d.isBuffer {
		return // the buffer disk must stay available (Section III-C)
	}

	// Piggyback the write-buffer flush on an awake, idle disk.
	if d.pendingFlushBytes > 0 && d.d.State() == disk.Idle {
		r := &request{kind: opFlush, size: d.pendingFlushBytes, release: d.pendingPerBuffer, enqAt: now}
		d.pendingFlushBytes = 0
		d.pendingPerBuffer = nil
		s.addWork(1)
		d.queue = append(d.queue, r)
		s.startService(d, now)
		return
	}

	switch {
	case s.cfg.Adaptive:
		s.adaptiveArm(d, now)
	case s.cfg.Prefetch && s.cfg.Hints:
		s.hintSleep(d, now)
	case (s.cfg.Prefetch && !s.cfg.Hints) || s.cfg.DPMWithoutPrefetch || s.cfg.MAID:
		s.armIdleTimer(d, now)
	}
}

// maidHit reports whether the file is in the node's MAID cache and, if so,
// promotes it to most recently used.
func (s *sim) maidHit(n *simNode, fileID int) bool {
	el, ok := n.cache[fileID]
	if !ok {
		return false
	}
	n.cacheLRU.MoveToFront(el)
	return true
}

// maidInsert copies a just-missed file into the node's buffer-disk cache:
// LRU entries are evicted until the file fits, then a background write is
// queued on the buffer disk.
func (s *sim) maidInsert(n *simNode, fileID int, size int64, now simtime.Time) {
	if _, ok := n.cache[fileID]; ok {
		return // raced with an earlier insert for the same file
	}
	if size > n.bufCap {
		return // can never fit
	}
	_, bi := n.bufferFor(fileID)
	for !n.bufferFits(fileID, size) {
		// Evict LRU entries that live on the same buffer disk.
		evicted := false
		for el := n.cacheLRU.Back(); el != nil; el = el.Prev() {
			victim := el.Value.(int)
			if victim%len(n.buffers) != bi {
				continue
			}
			n.cacheLRU.Remove(el)
			delete(n.cache, victim)
			n.bufferRelease(victim, s.tr.FileSizes[victim])
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
	n.bufferReserve(fileID, size)
	n.cache[fileID] = n.cacheLRU.PushFront(fileID)
	s.addWork(1)
	buf, _ := n.bufferFor(fileID)
	s.enqueue(buf, &request{kind: opInsert, fileID: fileID, size: size}, now)
}

// hintSleep applies the predictive policy: if the gap to the next
// predicted access exceeds the sleep gate, transition to standby now.
func (s *sim) hintSleep(d *simDisk, now simtime.Time) {
	if !d.sleepAllowed {
		return // PRE-BUD predicted no energy opportunity on this disk
	}
	if d.d.State() != disk.Idle || d.busy || len(d.queue) > 0 {
		return
	}
	next, ok := s.nextPredicted(d, now)
	gap := float64(0)
	if ok {
		gap = next - float64(now)
	}
	if ok && gap < s.hintGate(d.d.Model()) {
		return // too short to be worth it; stay idle
	}
	// Either no predicted access remains (sleep until something real
	// arrives) or the window is long enough.
	s.beginSpinDown(d, now)
	if s.cfg.Prewake && ok {
		m := d.d.Model()
		wakeAt := next - m.SpinUpSec
		earliest := float64(now) + m.SpinDownSec
		if wakeAt < earliest {
			wakeAt = earliest
		}
		d.prewake = s.eng.Schedule(simtime.Time(wakeAt), func(now simtime.Time) {
			d.prewake = nil
			if d.d.State() == disk.Standby {
				s.beginSpinUp(d, now)
			}
		})
	}
}

// nextPredicted returns the next predicted access time strictly after
// now (with a small lookback so requests already in flight through the
// control path count as imminent).
func (s *sim) nextPredicted(d *simDisk, now simtime.Time) (float64, bool) {
	horizon := float64(now) - s.cfg.RouteLatencySec - 0.01
	for d.predIdx < len(d.predicted) && d.predicted[d.predIdx] < horizon {
		d.predIdx++
	}
	if d.predIdx >= len(d.predicted) {
		return 0, false
	}
	return d.predicted[d.predIdx], true
}

// armIdleTimer starts the reactive threshold policy: if the disk is still
// idle when the timer fires, it spins down.
func (s *sim) armIdleTimer(d *simDisk, now simtime.Time) {
	if d.idleTimer != nil {
		s.eng.Cancel(d.idleTimer)
	}
	d.idleTimer = s.eng.After(s.cfg.IdleThresholdSec, func(now simtime.Time) {
		d.idleTimer = nil
		if d.d.State() == disk.Idle && !d.busy && len(d.queue) == 0 {
			s.beginSpinDown(d, now)
		}
	})
}

func (s *sim) beginSpinDown(d *simDisk, now simtime.Time) {
	d.d.BeginSpinDown(now)
	s.eng.After(d.d.Model().SpinDownSec, func(now simtime.Time) {
		d.d.CompleteSpinDown(now)
		if d.wakePending || len(d.queue) > 0 {
			d.wakePending = false
			s.beginSpinUp(d, now)
		}
	})
}

// finalFlush drains any write-buffer data still unflushed when the trace
// completes: the affected data disks are woken one last time.
func (s *sim) finalFlush() {
	for {
		pending := false
		for _, n := range s.nodes {
			for _, d := range n.data {
				if d.pendingFlushBytes > 0 {
					pending = true
					d := d
					s.addWork(1)
					s.eng.Schedule(s.eng.Now(), func(now simtime.Time) {
						r := &request{kind: opFlush, size: d.pendingFlushBytes, release: d.pendingPerBuffer}
						d.pendingFlushBytes = 0
						d.pendingPerBuffer = nil
						s.enqueue(d, r, now)
					})
				}
			}
		}
		if !pending {
			return
		}
		s.eng.Run()
	}
}

// finalize integrates all remaining dwell energy and assembles the Result.
func (s *sim) finalize() {
	makespan := s.eng.Now()
	s.res.MakespanSec = float64(makespan)
	s.res.Requests = len(s.tr.Records)

	for _, n := range s.nodes {
		for _, b := range n.buffers {
			b.d.Advance(makespan)
			s.addDisk(b.d.Stats())
		}
		for _, d := range n.data {
			d.d.Advance(makespan)
			s.addDisk(d.d.Stats())
		}
		s.res.PerLink = append(s.res.PerLink, n.link.Stats())
	}

	s.res.UpNodes = len(s.nodes)
	s.res.BaseEnergyJ = s.cfg.NodeBasePowerW * float64(makespan) * float64(len(s.nodes))
	s.res.TotalEnergyJ = s.res.BaseEnergyJ + s.res.DiskEnergyJ
	s.res.Response = s.resp.Summarize()
	s.res.ReadResponse = s.readResp.Summarize()
	s.res.WriteResponse = s.writeResp.Summarize()
}

func (s *sim) addDisk(st disk.Stats) {
	s.res.PerDisk = append(s.res.PerDisk, st)
	s.res.DiskEnergyJ += st.EnergyJ
	s.res.SpinUps += st.SpinUps
	s.res.SpinDowns += st.SpinDowns
	s.res.Transitions += st.Transitions()
}
