package cluster

import (
	"math"
	"testing"

	"eevfs/internal/trace"
	"eevfs/internal/workload"
)

// Metamorphic properties of the simulator (ISSUE 3): known input
// transformations with provable output relations. Unlike the shape tests,
// these need no reference numbers — the simulator is checked against
// itself.

// permuteTies reverses every maximal run of records sharing one arrival
// timestamp and renumbers Seq, producing a valid trace that differs from
// the input only in the ordering of simultaneous requests.
func permuteTies(tr *trace.Trace) *trace.Trace {
	recs := append([]trace.Record(nil), tr.Records...)
	for lo := 0; lo < len(recs); {
		hi := lo + 1
		for hi < len(recs) && recs[hi].TimeS == recs[lo].TimeS {
			hi++
		}
		for i, j := lo, hi-1; i < j; i, j = i+1, j-1 {
			recs[i], recs[j] = recs[j], recs[i]
		}
		lo = hi
	}
	changed := false
	for i := range recs {
		if recs[i].FileID != tr.Records[i].FileID {
			changed = true
		}
		recs[i].Seq = int64(i)
	}
	if !changed {
		return nil
	}
	return &trace.Trace{Records: recs, FileSizes: tr.FileSizes}
}

// TestMetamorphicTiePermutation: requests arriving at the same instant
// have no defined order, so permuting them must not move a single joule
// or power-state transition. (Per-request response times may legally
// change — two simultaneous requests on one disk swap their queue
// positions — which is why the assertion stops at the energy totals.)
func TestMetamorphicTiePermutation(t *testing.T) {
	w := workload.DefaultSynthetic()
	w.NumRequests = 400
	w.InterArrival = 0 // every request arrives at t=0: one giant tie group
	tr, err := workload.Synthetic(w)
	if err != nil {
		t.Fatal(err)
	}
	perm := permuteTies(tr)
	if perm == nil {
		t.Fatal("tie permutation is the identity; workload has no simultaneous distinct requests")
	}

	for _, arm := range []struct {
		name string
		cfg  Config
	}{
		{"PF", DefaultTestbed()},
		{"NPF", DefaultTestbed().NPF()},
		{"Adaptive", DefaultTestbed().AdaptiveArm()},
	} {
		base, err := Run(arm.cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		permuted, err := Run(arm.cfg, perm)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(permuted.TotalEnergyJ-base.TotalEnergyJ) / base.TotalEnergyJ; rel > 1e-9 {
			t.Errorf("%s: tie permutation moved energy %g J -> %g J (rel %g)",
				arm.name, base.TotalEnergyJ, permuted.TotalEnergyJ, rel)
		}
		if permuted.Transitions != base.Transitions ||
			permuted.SpinUps != base.SpinUps || permuted.SpinDowns != base.SpinDowns {
			t.Errorf("%s: tie permutation moved transitions %d/%d/%d -> %d/%d/%d",
				arm.name, base.Transitions, base.SpinUps, base.SpinDowns,
				permuted.Transitions, permuted.SpinUps, permuted.SpinDowns)
		}
		if math.Abs(permuted.MakespanSec-base.MakespanSec)/base.MakespanSec > 1e-9 {
			t.Errorf("%s: tie permutation moved makespan %g -> %g",
				arm.name, base.MakespanSec, permuted.MakespanSec)
		}
	}
}

// scaleSizes multiplies every file size (and request size) by k.
func scaleSizes(tr *trace.Trace, k int64) *trace.Trace {
	recs := append([]trace.Record(nil), tr.Records...)
	sizes := append([]int64(nil), tr.FileSizes...)
	for i := range recs {
		recs[i].Size *= k
	}
	for i := range sizes {
		sizes[i] *= k
	}
	return &trace.Trace{Records: recs, FileSizes: sizes}
}

// TestMetamorphicSizeScalingMonotonic: multiplying every file size by k
// can only lengthen transfers and queues, so mean response time must be
// strictly increasing in k. The NPF arm keeps disks always-on, so the
// relation is pure queueing — no prefetch-selection or power-policy
// feedback to confound it.
func TestMetamorphicSizeScalingMonotonic(t *testing.T) {
	w := workload.DefaultSynthetic()
	w.NumRequests = 300
	tr, err := workload.Synthetic(w)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTestbed().NPF()
	var prev float64
	for i, k := range []int64{1, 2, 4} {
		res, err := Run(cfg, scaleSizes(tr, k))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Response.Mean <= prev {
			t.Errorf("k=%d: mean response %g s not above k/2's %g s",
				k, res.Response.Mean, prev)
		}
		prev = res.Response.Mean
	}
}
