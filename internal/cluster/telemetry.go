package cluster

import (
	"fmt"

	"eevfs/internal/disk"
	"eevfs/internal/simtime"
	"eevfs/internal/telemetry"
)

// opLabel returns the journal/metric label of one disk work kind.
func opLabel(k opKind) string {
	switch k {
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opFlush:
		return "flush"
	case opInsert:
		return "insert"
	case opPrefRead:
		return "prefetch-read"
	default:
		return "other"
	}
}

// simMetrics pre-resolves every handle the simulator's hot path touches,
// so no registry lock is taken during replay. With a nil registry every
// handle is nil and each update is a single nil check.
type simMetrics struct {
	requests       *telemetry.Counter
	bufferHits     *telemetry.Counter
	bufferMisses   *telemetry.Counter
	bufferedWrites *telemetry.Counter
	directWrites   *telemetry.Counter
	spinUps        *telemetry.Counter
	spinDowns      *telemetry.Counter
	respSeconds    *telemetry.Histogram
	waitSeconds    *telemetry.Histogram

	// Adaptive-arm instrumentation: the spin-down threshold in effect
	// each time a disk is armed, and churn-triggered reprefetches.
	adaptiveThreshold    *telemetry.Histogram
	adaptiveReprefetches *telemetry.Counter
}

func newSimMetrics(reg *telemetry.Registry) simMetrics {
	return simMetrics{
		requests:       reg.Counter("sim.requests"),
		bufferHits:     reg.Counter("sim.buffer.hits"),
		bufferMisses:   reg.Counter("sim.buffer.misses"),
		bufferedWrites: reg.Counter("sim.buffer.writes"),
		directWrites:   reg.Counter("sim.writes.direct"),
		spinUps:        reg.Counter("sim.disk.spinups"),
		spinDowns:      reg.Counter("sim.disk.spindowns"),
		respSeconds:    reg.Histogram("sim.response.seconds", nil),
		waitSeconds:    reg.Histogram("sim.queue.wait.seconds", nil),

		adaptiveThreshold:    reg.Histogram("sim.adaptive.threshold", nil),
		adaptiveReprefetches: reg.Counter("sim.adaptive.reprefetches"),
	}
}

// instrumentDisk installs the telemetry observer on one simulated disk and
// journals its initial state, so the exported timeline starts with a
// well-defined dwell on every track. No observer is installed when both
// sinks are off: the disk's transition path stays branch-free.
func (s *sim) instrumentDisk(sd *simDisk, name string) {
	sd.name = name
	if s.cfg.Metrics == nil && s.jour == nil {
		return
	}
	s.jour.Append(telemetry.Event{
		Kind: telemetry.KindState, Subject: name, Detail: disk.Idle.String(),
	})
	sd.d.SetObserver(func(now simtime.Time, from, to disk.PowerState) {
		switch to {
		case disk.SpinningUp:
			s.met.spinUps.Inc()
		case disk.SpinningDown:
			s.met.spinDowns.Inc()
		}
		s.jour.Append(telemetry.Event{
			TimeS: float64(now), Kind: telemetry.KindState,
			Subject: name, Detail: to.String(),
		})
	})
}

// noteService journals one completed disk service with its queue wait and
// feeds the wait histogram. startAt/endAt bracket the service itself.
func (s *sim) noteService(d *simDisk, r *request, endAt simtime.Time) {
	wait := float64(r.startAt - r.enqAt)
	s.met.waitSeconds.Observe(wait)
	if s.jour == nil {
		return
	}
	s.jour.Append(telemetry.Event{
		TimeS: float64(r.startAt), Kind: telemetry.KindService,
		Subject: d.name, Detail: opLabel(r.kind),
		DurS: float64(endAt - r.startAt), WaitS: wait,
	})
}

// noteResponse records one client-visible completion in the metrics and
// the journal.
func (s *sim) noteResponse(r *request, rt float64) {
	s.met.requests.Inc()
	s.met.respSeconds.Observe(rt)
	if s.jour == nil {
		return
	}
	s.jour.Append(telemetry.Event{
		TimeS: float64(r.sentAt), Kind: telemetry.KindRequest,
		Subject: fmt.Sprintf("file:%d", r.fileID), Detail: opLabel(r.kind),
		DurS: rt,
	})
}
