package cluster

import (
	"testing"

	"eevfs/internal/telemetry"
	"eevfs/internal/workload"
)

func benchRun(b *testing.B, cfg Config) {
	b.Helper()
	tr, err := workload.Synthetic(workload.DefaultSynthetic())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTelemetryOff is the disabled-mode baseline: nil sinks, so
// every metric update is a single nil check and no observer is installed.
func BenchmarkRunTelemetryOff(b *testing.B) {
	benchRun(b, DefaultTestbed())
}

// BenchmarkRunTelemetryOn measures the full-instrumentation cost:
// registry counters/histograms plus the structured event journal.
func BenchmarkRunTelemetryOn(b *testing.B) {
	cfg := DefaultTestbed()
	cfg.Metrics = telemetry.NewRegistry()
	cfg.Journal = &telemetry.Journal{}
	benchRun(b, cfg)
}
