// The multiplexing layer under Endpoint: one muxConn owns one live v2
// connection generation. A writer goroutine drains an outbound frame
// queue, a demux reader correlates response frames back to waiting
// callers by request id, and any transport fault — read error, write
// error, unknown id, per-request timeout — poisons the whole generation:
// every outstanding request fails with the same typed error, the socket
// is closed, and the next Call on the owning Endpoint dials a fresh
// generation. That all-or-nothing failure rule is what keeps the
// paper's "one persistent connection per peer" model sane under
// pipelining: once a frame boundary is in doubt, no later response on
// the stream can be trusted.
package proto

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// muxWriteQueue bounds the outbound frame queue of one connection;
// enqueueing callers beyond it block (backpressure), and the live depth
// feeds the proto.queue.depth histogram.
const muxWriteQueue = 64

// wireFrame is one outbound request frame. pooled marks a payload
// borrowed from the chunk pool; the write loop returns it after the
// frame hits the socket.
type wireFrame struct {
	t       Type
	id      uint32
	payload []byte
	pooled  bool
}

// wireResult is one demuxed response (or the poisoning error).
type wireResult struct {
	t       Type
	payload []byte
	err     error
}

// errRTTimeout is the per-request deadline expiry. It satisfies
// net.Error so TransportError.Timeout() classifies it like a socket
// timeout.
type errRTTimeout struct{}

func (errRTTimeout) Error() string   { return "proto: round trip deadline exceeded" }
func (errRTTimeout) Timeout() bool   { return true }
func (errRTTimeout) Temporary() bool { return true }

// muxConn is one connection generation: socket + writer + demux reader +
// the pending-request table. Once poisoned it never recovers; the
// Endpoint replaces it wholesale.
type muxConn struct {
	conn    net.Conn
	met     epMetrics
	writeCh chan wireFrame
	done    chan struct{} // closed exactly once, on poison

	mu      sync.Mutex
	pending map[uint32]chan wireResult
	streams map[uint32]*muxStream
	nextID  uint32
	err     error // the poisoning fault (nil while healthy)
}

// streamMsg is one inbound frame of an open stream. TDataFrame payloads
// are pooled chunk buffers (the consumer returns them via PutChunk);
// control-frame payloads are plain allocations.
type streamMsg struct {
	t       Type
	payload []byte
}

// muxStream is one registered stream id on a connection generation: a
// bounded inbound queue sized by the flow-control window, plus the
// terminal fault. It lives in muxConn.streams from registerStream until
// removeStream (or the generation's poison).
type muxStream struct {
	id   uint32
	recv chan streamMsg
	done chan struct{} // closed exactly once, on fail

	mu      sync.Mutex
	err     error
	discard bool // owner closed early: drop inbound frames on the floor
}

// fail records the stream's terminal fault and wakes its owner. Safe to
// call more than once; the first error wins.
func (st *muxStream) fail(err error) {
	st.mu.Lock()
	if st.err != nil {
		st.mu.Unlock()
		return
	}
	st.err = err
	st.mu.Unlock()
	close(st.done)
}

// fault returns the terminal error (nil while live).
func (st *muxStream) fault() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// setDiscard flips the stream into discard mode: the demux reader drops
// its inbound frames (returning data chunks to the pool) and retires the
// id when the peer's terminal frame arrives. Used by early Close, where
// the peer may still have frames in flight for this id.
func (st *muxStream) setDiscard() {
	st.mu.Lock()
	st.discard = true
	st.mu.Unlock()
}

// discarding reports whether the stream is in discard mode.
func (st *muxStream) discarding() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.discard
}

// newMuxConn wraps an established socket and starts the writer and
// demux reader. The v2 preface is the writer's first act, so Call never
// blocks on a slow peer outside its own deadline.
func newMuxConn(conn net.Conn, met epMetrics) *muxConn {
	m := &muxConn{
		conn:    conn,
		met:     met,
		writeCh: make(chan wireFrame, muxWriteQueue),
		done:    make(chan struct{}),
		pending: make(map[uint32]chan wireResult),
		streams: make(map[uint32]*muxStream),
	}
	go m.writeLoop()
	go m.readLoop()
	return m
}

// alive reports whether the generation can still carry requests.
func (m *muxConn) alive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err == nil
}

// poison kills the generation: it records the fault, closes the socket
// (unblocking both loops), and fails every outstanding request AND every
// open stream with the same typed error — a corrupted or dead connection
// invalidates all in-flight ids, not just the one that tripped over it.
func (m *muxConn) poison(err error) {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return
	}
	m.err = err
	orphans := m.pending
	m.pending = nil
	doomed := m.streams
	m.streams = nil
	close(m.done)
	m.mu.Unlock()
	m.conn.Close()
	for _, ch := range orphans {
		ch <- wireResult{err: err}
	}
	for _, st := range doomed {
		st.fail(err)
	}
}

// hasStreams reports whether the generation currently carries open
// streams (so bulk data frames may be queued ahead of RPC responses).
func (m *muxConn) hasStreams() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.streams) > 0
}

// fault returns the poisoning error (nil while healthy).
func (m *muxConn) fault() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// writeLoop sends the preface and then drains the outbound queue. A
// write error poisons the generation.
func (m *muxConn) writeLoop() {
	if err := WritePreface(m.conn); err != nil {
		m.poison(err)
		return
	}
	for {
		select {
		case f := <-m.writeCh:
			err := WriteFrameID(m.conn, f.t, f.id, f.payload)
			if f.pooled {
				PutChunk(f.payload)
			}
			if err != nil {
				m.poison(err)
				return
			}
		case <-m.done:
			return
		}
	}
}

// readLoop demuxes inbound frames: frames for a registered stream id are
// routed to that stream's bounded queue (data chunks land in pooled
// buffers); everything else is a response correlated to a waiting
// round-trip caller. A read error poisons the generation; so does a
// frame carrying an id with no owner — on a healthy connection every id
// has exactly one owner, so an unknown id means the peer is lying.
func (m *muxConn) readLoop() {
	for {
		t, id, n, err := ReadFrameHeader(m.conn)
		if err != nil {
			m.poison(err)
			return
		}
		m.mu.Lock()
		st, isStream := m.streams[id]
		var ch chan wireResult
		var isPending bool
		if !isStream {
			ch, isPending = m.pending[id]
			if isPending {
				delete(m.pending, id)
			}
		}
		m.mu.Unlock()
		if isStream {
			if !m.readStreamFrame(st, t, n) {
				return
			}
			continue
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(m.conn, payload); err != nil {
			m.poison(err)
			return
		}
		if !isPending {
			m.poison(fmt.Errorf("proto: response for unknown request id %d", id))
			return
		}
		ch <- wireResult{t: t, payload: payload}
	}
}

// streamFrameType reports whether t is legal on an open stream id.
func streamFrameType(t Type) bool {
	switch t {
	case TDataFrame, TStreamOpenResp, TStreamEnd, TStreamAbort, TStreamCredit, TError:
		return true
	}
	return false
}

// streamTerminal reports whether t retires a stream id: after it the
// peer sends nothing further for the id.
func streamTerminal(t Type) bool {
	return t == TStreamEnd || t == TStreamAbort || t == TError
}

// readStreamFrame consumes one frame addressed to a registered stream.
// Data payloads are read into pooled chunk buffers. Returns false when
// the frame poisoned the generation (the read loop must exit).
func (m *muxConn) readStreamFrame(st *muxStream, t Type, n int) bool {
	if !streamFrameType(t) {
		m.poison(fmt.Errorf("proto: frame type %d is illegal on stream id %d", t, st.id))
		return false
	}
	var payload []byte
	if t == TDataFrame {
		payload = GetChunk(n)
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(m.conn, payload); err != nil {
		if t == TDataFrame {
			PutChunk(payload)
		}
		m.poison(err)
		return false
	}
	if st.discarding() {
		// The owner closed early; drop the frame, and retire the id once
		// the peer's terminal frame confirms nothing more is in flight.
		if t == TDataFrame {
			PutChunk(payload)
		}
		if streamTerminal(t) {
			m.removeStream(st)
		}
		return true
	}
	select {
	case st.recv <- streamMsg{t: t, payload: payload}:
		return true
	default:
	}
	// Queue full. If the stream already failed (generation poisoned in a
	// race) the frame is moot; otherwise the peer overran the granted
	// credit window, which is a protocol violation.
	if t == TDataFrame {
		PutChunk(payload)
	}
	select {
	case <-st.done:
		return true
	default:
	}
	m.poison(fmt.Errorf("proto: stream %d receive overrun (flow-control credit violation)", st.id))
	return false
}

// send enqueues one outbound frame, blocking on queue backpressure. A
// poisoned generation returns its fault instead.
func (m *muxConn) send(f wireFrame) error {
	select {
	case m.writeCh <- f:
		return nil
	case <-m.done:
		return m.fault()
	}
}

// registerStream claims a fresh request id for a stream. The inbound
// queue holds the full credit window plus slack for control frames; the
// demux reader treats overflow as a peer flow-control violation.
func (m *muxConn) registerStream(window int) (*muxStream, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.err
	}
	m.nextID++
	st := &muxStream{
		id:   m.nextID,
		recv: make(chan streamMsg, window+streamRecvSlack),
		done: make(chan struct{}),
	}
	m.streams[st.id] = st
	return st, nil
}

// removeStream retires a stream id and drains its queue, returning any
// buffered data chunks to the pool. Idempotent; a nil streams map (the
// generation already poisoned) is a no-op delete.
func (m *muxConn) removeStream(st *muxStream) {
	m.mu.Lock()
	delete(m.streams, st.id)
	m.mu.Unlock()
	for {
		select {
		case msg := <-st.recv:
			if msg.t == TDataFrame {
				PutChunk(msg.payload)
			}
		default:
			return
		}
	}
}

// register claims a fresh request id and its response channel. The
// channel has capacity 1 and receives exactly one value: the demuxed
// response, or the poisoning error.
func (m *muxConn) register() (uint32, chan wireResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return 0, nil, m.err
	}
	m.nextID++
	id := m.nextID
	ch := make(chan wireResult, 1)
	m.pending[id] = ch
	return id, ch, nil
}

// roundTrip runs one multiplexed request: register an id, enqueue the
// frame, await the correlated response. The timeout poisons the whole
// generation — a response that never arrived leaves the stream's frame
// boundary in doubt, exactly like a half-read v1 response did.
func (m *muxConn) roundTrip(t Type, payload []byte, timeout time.Duration) (Type, []byte, error) {
	id, ch, err := m.register()
	if err != nil {
		return 0, nil, err
	}
	m.met.inflight.Add(1)
	defer m.met.inflight.Add(-1)
	m.met.queueDepth.Observe(float64(len(m.writeCh)))

	select {
	case m.writeCh <- wireFrame{t: t, id: id, payload: payload}:
	case <-m.done:
		// poison already delivered the error to ch.
		res := <-ch
		return 0, nil, res.err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			return 0, nil, res.err
		}
		if res.t == TError {
			em, derr := DecodeErrorMsg(res.payload)
			if derr != nil {
				err := fmt.Errorf("proto: undecodable error response: %w", derr)
				m.poison(err)
				return 0, nil, err
			}
			return 0, nil, &RemoteError{Code: em.Code, Msg: em.Msg, Redirect: em.Redirect}
		}
		return res.t, res.payload, nil
	case <-timer.C:
		m.poison(errRTTimeout{})
		<-ch // poison (or a photo-finish reader delivery) settles the channel
		return 0, nil, errRTTimeout{}
	}
}
