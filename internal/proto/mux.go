// The multiplexing layer under Endpoint: one muxConn owns one live v2
// connection generation. A writer goroutine drains an outbound frame
// queue, a demux reader correlates response frames back to waiting
// callers by request id, and any transport fault — read error, write
// error, unknown id, per-request timeout — poisons the whole generation:
// every outstanding request fails with the same typed error, the socket
// is closed, and the next Call on the owning Endpoint dials a fresh
// generation. That all-or-nothing failure rule is what keeps the
// paper's "one persistent connection per peer" model sane under
// pipelining: once a frame boundary is in doubt, no later response on
// the stream can be trusted.
package proto

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// muxWriteQueue bounds the outbound frame queue of one connection;
// enqueueing callers beyond it block (backpressure), and the live depth
// feeds the proto.queue.depth histogram.
const muxWriteQueue = 64

// wireFrame is one outbound request frame.
type wireFrame struct {
	t       Type
	id      uint32
	payload []byte
}

// wireResult is one demuxed response (or the poisoning error).
type wireResult struct {
	t       Type
	payload []byte
	err     error
}

// errRTTimeout is the per-request deadline expiry. It satisfies
// net.Error so TransportError.Timeout() classifies it like a socket
// timeout.
type errRTTimeout struct{}

func (errRTTimeout) Error() string   { return "proto: round trip deadline exceeded" }
func (errRTTimeout) Timeout() bool   { return true }
func (errRTTimeout) Temporary() bool { return true }

// muxConn is one connection generation: socket + writer + demux reader +
// the pending-request table. Once poisoned it never recovers; the
// Endpoint replaces it wholesale.
type muxConn struct {
	conn    net.Conn
	met     epMetrics
	writeCh chan wireFrame
	done    chan struct{} // closed exactly once, on poison

	mu      sync.Mutex
	pending map[uint32]chan wireResult
	nextID  uint32
	err     error // the poisoning fault (nil while healthy)
}

// newMuxConn wraps an established socket and starts the writer and
// demux reader. The v2 preface is the writer's first act, so Call never
// blocks on a slow peer outside its own deadline.
func newMuxConn(conn net.Conn, met epMetrics) *muxConn {
	m := &muxConn{
		conn:    conn,
		met:     met,
		writeCh: make(chan wireFrame, muxWriteQueue),
		done:    make(chan struct{}),
		pending: make(map[uint32]chan wireResult),
	}
	go m.writeLoop()
	go m.readLoop()
	return m
}

// alive reports whether the generation can still carry requests.
func (m *muxConn) alive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err == nil
}

// poison kills the generation: it records the fault, closes the socket
// (unblocking both loops), and fails every outstanding request with the
// same typed error — a corrupted or dead stream invalidates all
// in-flight ids, not just the one that tripped over it.
func (m *muxConn) poison(err error) {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return
	}
	m.err = err
	orphans := m.pending
	m.pending = nil
	close(m.done)
	m.mu.Unlock()
	m.conn.Close()
	for _, ch := range orphans {
		ch <- wireResult{err: err}
	}
}

// fault returns the poisoning error (nil while healthy).
func (m *muxConn) fault() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// writeLoop sends the preface and then drains the outbound queue. A
// write error poisons the generation.
func (m *muxConn) writeLoop() {
	if err := WritePreface(m.conn); err != nil {
		m.poison(err)
		return
	}
	for {
		select {
		case f := <-m.writeCh:
			if err := WriteFrameID(m.conn, f.t, f.id, f.payload); err != nil {
				m.poison(err)
				return
			}
		case <-m.done:
			return
		}
	}
}

// readLoop demuxes response frames to their waiting callers. A read
// error poisons the generation; so does a response carrying an id with
// no waiting caller — on a healthy stream every id has exactly one
// owner, so an unknown id means the stream (or the peer) is lying.
func (m *muxConn) readLoop() {
	for {
		t, id, payload, err := ReadFrameID(m.conn)
		if err != nil {
			m.poison(err)
			return
		}
		m.mu.Lock()
		ch, ok := m.pending[id]
		if ok {
			delete(m.pending, id)
		}
		m.mu.Unlock()
		if !ok {
			m.poison(fmt.Errorf("proto: response for unknown request id %d", id))
			return
		}
		ch <- wireResult{t: t, payload: payload}
	}
}

// register claims a fresh request id and its response channel. The
// channel has capacity 1 and receives exactly one value: the demuxed
// response, or the poisoning error.
func (m *muxConn) register() (uint32, chan wireResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return 0, nil, m.err
	}
	m.nextID++
	id := m.nextID
	ch := make(chan wireResult, 1)
	m.pending[id] = ch
	return id, ch, nil
}

// roundTrip runs one multiplexed request: register an id, enqueue the
// frame, await the correlated response. The timeout poisons the whole
// generation — a response that never arrived leaves the stream's frame
// boundary in doubt, exactly like a half-read v1 response did.
func (m *muxConn) roundTrip(t Type, payload []byte, timeout time.Duration) (Type, []byte, error) {
	id, ch, err := m.register()
	if err != nil {
		return 0, nil, err
	}
	m.met.inflight.Add(1)
	defer m.met.inflight.Add(-1)
	m.met.queueDepth.Observe(float64(len(m.writeCh)))

	select {
	case m.writeCh <- wireFrame{t: t, id: id, payload: payload}:
	case <-m.done:
		// poison already delivered the error to ch.
		res := <-ch
		return 0, nil, res.err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			return 0, nil, res.err
		}
		if res.t == TError {
			em, derr := DecodeErrorMsg(res.payload)
			if derr != nil {
				err := fmt.Errorf("proto: undecodable error response: %w", derr)
				m.poison(err)
				return 0, nil, err
			}
			return 0, nil, &RemoteError{Code: em.Code, Msg: em.Msg, Redirect: em.Redirect}
		}
		return res.t, res.payload, nil
	case <-timer.C:
		m.poison(errRTTimeout{})
		<-ch // poison (or a photo-finish reader delivery) settles the channel
		return 0, nil, errRTTimeout{}
	}
}
