package proto

import (
	"bytes"
	"net"
	"testing"

	"eevfs/internal/telemetry"
)

func TestAttachExtractContextRoundTrip(t *testing.T) {
	sc := telemetry.SpanContext{TraceID: 0xdeadbeefcafe, SpanID: 42, ParentID: 7, Sampled: true}
	payload := []byte("hello world")

	wt, wp := AttachContext(TNodeReadReq, payload, sc)
	if wt != TNodeReadReq|FlagTraced {
		t.Fatalf("attached type = %#x, want %#x", wt, TNodeReadReq|FlagTraced)
	}
	if len(wp) != traceCtxLen+len(payload) {
		t.Fatalf("attached payload %d bytes, want %d", len(wp), traceCtxLen+len(payload))
	}

	gt, gp, gsc, err := ExtractContext(wt, wp)
	if err != nil {
		t.Fatalf("ExtractContext: %v", err)
	}
	if gt != TNodeReadReq {
		t.Fatalf("extracted type = %v, want %v", gt, TNodeReadReq)
	}
	if !bytes.Equal(gp, payload) {
		t.Fatalf("extracted payload = %q, want %q", gp, payload)
	}
	if gsc != sc {
		t.Fatalf("extracted context = %+v, want %+v", gsc, sc)
	}
}

func TestAttachContextZeroIsIdentity(t *testing.T) {
	payload := []byte("plain")
	wt, wp := AttachContext(TNodeWriteReq, payload, telemetry.SpanContext{})
	if wt != TNodeWriteReq || !bytes.Equal(wp, payload) {
		t.Fatalf("zero context modified frame: type %v payload %q", wt, wp)
	}
	gt, gp, gsc, err := ExtractContext(wt, wp)
	if err != nil || gt != TNodeWriteReq || !bytes.Equal(gp, payload) || gsc.TraceID != 0 {
		t.Fatalf("unflagged frame not passed through: %v %q %+v %v", gt, gp, gsc, err)
	}
}

func TestAttachContextUnsampled(t *testing.T) {
	sc := telemetry.SpanContext{TraceID: 9, SpanID: 9, Sampled: false}
	wt, wp := AttachContext(TStatsReq, nil, sc)
	_, _, gsc, err := ExtractContext(wt, wp)
	if err != nil {
		t.Fatalf("ExtractContext: %v", err)
	}
	if gsc.Sampled {
		t.Fatal("sampled bit set on unsampled context")
	}
	if gsc.TraceID != 9 || gsc.SpanID != 9 || gsc.ParentID != 0 {
		t.Fatalf("context = %+v", gsc)
	}
}

func TestExtractContextShortPayload(t *testing.T) {
	for _, n := range []int{0, 1, traceCtxLen - 1} {
		_, _, _, err := ExtractContext(TNodeReadReq|FlagTraced, make([]byte, n))
		if err == nil {
			t.Fatalf("flagged frame with %d-byte payload: want error", n)
		}
	}
}

func TestFlagTracedDisjointFromTypes(t *testing.T) {
	// Every defined frame type must leave the flag bit free.
	for ty := TError; ty <= TLookupWriteReq; ty++ {
		if ty&FlagTraced != 0 {
			t.Fatalf("type %#x collides with FlagTraced", ty)
		}
	}
}

// TestTracedFrameOverWire drives a traced frame through the real v2
// framing: attach, frame, unframe, extract.
func TestTracedFrameOverWire(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()

	sc := telemetry.SpanContext{TraceID: 11, SpanID: 22, ParentID: 33, Sampled: true}
	wt, wp := AttachContext(TPrefetchReq, []byte("req"), sc)
	go func() {
		WriteFrameID(c1, wt, 5, wp)
	}()
	gt, id, gp, err := ReadFrameID(c2)
	if err != nil {
		t.Fatalf("ReadFrameID: %v", err)
	}
	if id != 5 {
		t.Fatalf("id = %d", id)
	}
	it, ip, isc, err := ExtractContext(gt, gp)
	if err != nil {
		t.Fatalf("ExtractContext: %v", err)
	}
	if it != TPrefetchReq || string(ip) != "req" || isc != sc {
		t.Fatalf("round trip: %v %q %+v", it, ip, isc)
	}
}

func FuzzExtractContext(f *testing.F) {
	f.Add(byte(TNodeReadReq), []byte("payload"))
	f.Add(byte(TNodeReadReq|FlagTraced), make([]byte, traceCtxLen))
	f.Add(byte(TError|FlagTraced), []byte("short"))
	f.Fuzz(func(t *testing.T, ty byte, payload []byte) {
		gt, gp, sc, err := ExtractContext(Type(ty), payload)
		if err != nil {
			return
		}
		if Type(ty)&FlagTraced == 0 {
			// Unflagged frames must pass through untouched.
			if gt != Type(ty) || !bytes.Equal(gp, payload) || sc.TraceID != 0 {
				t.Fatalf("unflagged pass-through mutated frame")
			}
			return
		}
		// Canonical flagged frames (known flag bits only, nonzero trace
		// id) must survive an extract/attach round trip exactly.
		if sc.TraceID == 0 || payload[0]&^byte(flagSampled) != 0 {
			return
		}
		rt, rp := AttachContext(gt, gp, sc)
		if rt != Type(ty) || !bytes.Equal(rp, payload) {
			t.Fatalf("attach(extract(frame)) != frame: %#x vs %#x", rt, ty)
		}
	})
}
