package proto

import (
	"fmt"
	"io"
)

// The typed messages below wrap the raw codec. Each has Encode/Decode; a
// Decode returning an error means the peer sent a malformed frame and the
// connection should be dropped.

// Code coarsely classifies a remote error so peers can react without
// parsing message text.
type Code uint32

// Remote error codes.
const (
	// CodeGeneric is any unclassified application failure.
	CodeGeneric Code = iota
	// CodeNotFound is a request naming an unknown file.
	CodeNotFound
	// CodeUnavailable means the request's target storage node is marked
	// unhealthy and the operation was refused rather than attempted.
	CodeUnavailable
	// CodeNotPrimary means the server is a replication follower; the
	// accompanying redirect names the address it believes is primary and
	// the client should retry there.
	CodeNotPrimary
)

// String names the code for logs and telemetry counter suffixes.
func (c Code) String() string {
	switch c {
	case CodeGeneric:
		return "generic"
	case CodeNotFound:
		return "not-found"
	case CodeUnavailable:
		return "unavailable"
	case CodeNotPrimary:
		return "not-primary"
	default:
		return fmt.Sprintf("code-%d", uint32(c))
	}
}

// ErrorMsg is sent in place of any response when a request fails. The
// code rides after the message so frames from pre-code peers (string
// only) still decode; the redirect (CodeNotPrimary only) rides after the
// code for the same reason.
type ErrorMsg struct {
	Msg      string
	Code     Code
	Redirect string // address of the believed primary; "" when unknown
}

// Encode serializes the message body.
func (m ErrorMsg) Encode() []byte {
	var e Encoder
	return e.Str(m.Msg).U32(uint32(m.Code)).Str(m.Redirect).Bytes()
}

// DecodeErrorMsg parses an ErrorMsg payload.
func DecodeErrorMsg(b []byte) (ErrorMsg, error) {
	d := NewDecoder(b)
	m := ErrorMsg{Msg: d.Str()}
	if d.Err() == nil && d.Remaining() >= 4 {
		m.Code = Code(d.U32())
	}
	if d.Err() == nil && d.Remaining() >= 4 {
		m.Redirect = d.Str()
	}
	return m, d.Err()
}

// RemoteError is an application-level failure reported by the peer in a
// TError frame. It is distinct from transport failures: the connection
// remains healthy and the operation must not be retried blindly.
type RemoteError struct {
	Code     Code
	Msg      string
	Redirect string // primary address hint accompanying CodeNotPrimary
}

// Error implements error. The "remote: " prefix is kept stable for log
// grepping (it predates the typed error).
func (e *RemoteError) Error() string { return "remote: " + e.Msg }

// CreateReq asks the storage server to create a file; the server assigns
// a node and file id. Size is declared up front so placement and the
// buffer-capacity checks can run before data moves.
type CreateReq struct {
	Name string
	Size int64
}

// Encode serializes the message body.
func (m CreateReq) Encode() []byte {
	var e Encoder
	return e.Str(m.Name).I64(m.Size).Bytes()
}

// DecodeCreateReq parses a CreateReq payload.
func DecodeCreateReq(b []byte) (CreateReq, error) {
	d := NewDecoder(b)
	m := CreateReq{Name: d.Str(), Size: d.I64()}
	return m, d.Err()
}

// CreateResp returns the assignment: the client uploads the data directly
// to NodeAddr (step 6 of the paper's process flow, in reverse for writes).
type CreateResp struct {
	FileID   int64
	NodeAddr string
}

// Encode serializes the message body.
func (m CreateResp) Encode() []byte {
	var e Encoder
	return e.I64(m.FileID).Str(m.NodeAddr).Bytes()
}

// DecodeCreateResp parses a CreateResp payload.
func DecodeCreateResp(b []byte) (CreateResp, error) {
	d := NewDecoder(b)
	m := CreateResp{FileID: d.I64(), NodeAddr: d.Str()}
	return m, d.Err()
}

// LookupReq resolves a file name.
type LookupReq struct{ Name string }

// Encode serializes the message body.
func (m LookupReq) Encode() []byte { var e Encoder; return e.Str(m.Name).Bytes() }

// DecodeLookupReq parses a LookupReq payload.
func DecodeLookupReq(b []byte) (LookupReq, error) {
	d := NewDecoder(b)
	m := LookupReq{Name: d.Str()}
	return m, d.Err()
}

// LookupResp carries the node holding the file. The server deliberately
// does not know (or say) which disk inside the node has it, nor whether it
// is prefetched (Section IV-D).
type LookupResp struct {
	FileID   int64
	Size     int64
	NodeAddr string
}

// Encode serializes the message body.
func (m LookupResp) Encode() []byte {
	var e Encoder
	return e.I64(m.FileID).I64(m.Size).Str(m.NodeAddr).Bytes()
}

// DecodeLookupResp parses a LookupResp payload.
func DecodeLookupResp(b []byte) (LookupResp, error) {
	d := NewDecoder(b)
	m := LookupResp{FileID: d.I64(), Size: d.I64(), NodeAddr: d.Str()}
	return m, d.Err()
}

// ListResp enumerates file names (ListReq has an empty body).
type ListResp struct{ Names []string }

// Encode serializes the message body.
func (m ListResp) Encode() []byte {
	var e Encoder
	e.U32(uint32(len(m.Names)))
	for _, n := range m.Names {
		e.Str(n)
	}
	return e.Bytes()
}

// DecodeListResp parses a ListResp payload.
func DecodeListResp(b []byte) (ListResp, error) {
	d := NewDecoder(b)
	n := d.U32()
	if d.Err() != nil {
		return ListResp{}, d.Err()
	}
	m := ListResp{}
	for i := uint32(0); i < n; i++ {
		m.Names = append(m.Names, d.Str())
		if d.Err() != nil {
			return ListResp{}, d.Err()
		}
	}
	return m, d.Err()
}

// DeleteReq removes a file by name; DeleteResp has an empty body.
type DeleteReq struct{ Name string }

// Encode serializes the message body.
func (m DeleteReq) Encode() []byte { var e Encoder; return e.Str(m.Name).Bytes() }

// DecodeDeleteReq parses a DeleteReq payload.
func DecodeDeleteReq(b []byte) (DeleteReq, error) {
	d := NewDecoder(b)
	m := DeleteReq{Name: d.Str()}
	return m, d.Err()
}

// PrefetchReq asks the server to run the popularity analysis and command
// the storage nodes to prefetch the top K files.
type PrefetchReq struct{ K int64 }

// Encode serializes the message body.
func (m PrefetchReq) Encode() []byte { var e Encoder; return e.I64(m.K).Bytes() }

// DecodePrefetchReq parses a PrefetchReq payload.
func DecodePrefetchReq(b []byte) (PrefetchReq, error) {
	d := NewDecoder(b)
	m := PrefetchReq{K: d.I64()}
	return m, d.Err()
}

// PrefetchResp reports how many files were copied into buffer disks.
type PrefetchResp struct{ Prefetched int64 }

// Encode serializes the message body.
func (m PrefetchResp) Encode() []byte { var e Encoder; return e.I64(m.Prefetched).Bytes() }

// DecodePrefetchResp parses a PrefetchResp payload.
func DecodePrefetchResp(b []byte) (PrefetchResp, error) {
	d := NewDecoder(b)
	m := PrefetchResp{Prefetched: d.I64()}
	return m, d.Err()
}

// DiskStats mirrors disk.Stats across the wire.
type DiskStats struct {
	Name       string
	EnergyJ    float64
	SpinUps    int64
	SpinDowns  int64
	Requests   int64
	BytesMoved int64
	State      string
}

func (m DiskStats) encode(e *Encoder) {
	e.Str(m.Name).F64(m.EnergyJ).I64(m.SpinUps).I64(m.SpinDowns).
		I64(m.Requests).I64(m.BytesMoved).Str(m.State)
}

func decodeDiskStats(d *Decoder) DiskStats {
	return DiskStats{
		Name: d.Str(), EnergyJ: d.F64(), SpinUps: d.I64(), SpinDowns: d.I64(),
		Requests: d.I64(), BytesMoved: d.I64(), State: d.Str(),
	}
}

// CounterStat is one named telemetry counter in a stats snapshot.
type CounterStat struct {
	Name  string
	Value int64
}

// StatsResp aggregates disk stats (from a node: its own disks; from the
// server: all nodes' disks) plus a counter snapshot (buffer hit/miss
// accounting and, when the peer runs a telemetry registry, its counters).
type StatsResp struct {
	Disks    []DiskStats
	Counters []CounterStat
}

// Encode serializes the message body.
func (m StatsResp) Encode() []byte {
	var e Encoder
	e.U32(uint32(len(m.Disks)))
	for _, ds := range m.Disks {
		ds.encode(&e)
	}
	e.U32(uint32(len(m.Counters)))
	for _, c := range m.Counters {
		e.Str(c.Name).I64(c.Value)
	}
	return e.Bytes()
}

// DecodeStatsResp parses a StatsResp payload. A payload ending after the
// disk section (a pre-counter peer) decodes with no counters.
func DecodeStatsResp(b []byte) (StatsResp, error) {
	d := NewDecoder(b)
	n := d.U32()
	if d.Err() != nil {
		return StatsResp{}, d.Err()
	}
	m := StatsResp{}
	for i := uint32(0); i < n; i++ {
		m.Disks = append(m.Disks, decodeDiskStats(d))
		if d.Err() != nil {
			return StatsResp{}, d.Err()
		}
	}
	if d.Remaining() == 0 {
		return m, d.Err()
	}
	cn := d.U32()
	if d.Err() != nil {
		return StatsResp{}, d.Err()
	}
	for i := uint32(0); i < cn; i++ {
		m.Counters = append(m.Counters, CounterStat{Name: d.Str(), Value: d.I64()})
		if d.Err() != nil {
			return StatsResp{}, d.Err()
		}
	}
	return m, d.Err()
}

// NodeCreateReq registers a file on a storage node (server -> node).
type NodeCreateReq struct {
	FileID int64
	Size   int64
}

// Encode serializes the message body.
func (m NodeCreateReq) Encode() []byte {
	var e Encoder
	return e.I64(m.FileID).I64(m.Size).Bytes()
}

// DecodeNodeCreateReq parses a NodeCreateReq payload.
func DecodeNodeCreateReq(b []byte) (NodeCreateReq, error) {
	d := NewDecoder(b)
	m := NodeCreateReq{FileID: d.I64(), Size: d.I64()}
	return m, d.Err()
}

// NodeReadReq fetches a file's content from a storage node.
type NodeReadReq struct{ FileID int64 }

// Encode serializes the message body.
func (m NodeReadReq) Encode() []byte { var e Encoder; return e.I64(m.FileID).Bytes() }

// DecodeNodeReadReq parses a NodeReadReq payload.
func DecodeNodeReadReq(b []byte) (NodeReadReq, error) {
	d := NewDecoder(b)
	m := NodeReadReq{FileID: d.I64()}
	return m, d.Err()
}

// NodeReadResp returns file content plus whether the buffer disk served it
// (observable behaviour for tests and the stats CLI).
type NodeReadResp struct {
	FromBuffer bool
	Data       []byte
}

// Encode serializes the message body.
func (m NodeReadResp) Encode() []byte {
	var e Encoder
	return e.Bool(m.FromBuffer).Blob(m.Data).Bytes()
}

// DecodeNodeReadResp parses a NodeReadResp payload.
func DecodeNodeReadResp(b []byte) (NodeReadResp, error) {
	d := NewDecoder(b)
	m := NodeReadResp{FromBuffer: d.Bool(), Data: d.Blob()}
	return m, d.Err()
}

// NodeWriteReq stores file content on a storage node.
type NodeWriteReq struct {
	FileID int64
	Data   []byte
}

// Encode serializes the message body.
func (m NodeWriteReq) Encode() []byte {
	var e Encoder
	return e.I64(m.FileID).Blob(m.Data).Bytes()
}

// DecodeNodeWriteReq parses a NodeWriteReq payload.
func DecodeNodeWriteReq(b []byte) (NodeWriteReq, error) {
	d := NewDecoder(b)
	m := NodeWriteReq{FileID: d.I64(), Data: d.Blob()}
	return m, d.Err()
}

// NodeWriteResp reports whether the write-buffer area absorbed the write.
type NodeWriteResp struct{ Buffered bool }

// Encode serializes the message body.
func (m NodeWriteResp) Encode() []byte { var e Encoder; return e.Bool(m.Buffered).Bytes() }

// DecodeNodeWriteResp parses a NodeWriteResp payload.
func DecodeNodeWriteResp(b []byte) (NodeWriteResp, error) {
	d := NewDecoder(b)
	m := NodeWriteResp{Buffered: d.Bool()}
	return m, d.Err()
}

// NodeDeleteReq removes a file from a storage node.
type NodeDeleteReq struct{ FileID int64 }

// Encode serializes the message body.
func (m NodeDeleteReq) Encode() []byte { var e Encoder; return e.I64(m.FileID).Bytes() }

// DecodeNodeDeleteReq parses a NodeDeleteReq payload.
func DecodeNodeDeleteReq(b []byte) (NodeDeleteReq, error) {
	d := NewDecoder(b)
	m := NodeDeleteReq{FileID: d.I64()}
	return m, d.Err()
}

// NodeReadAtReq fetches a byte range of a file from a storage node
// (partial I/O; the paper's workloads are whole-file, but PVFS-style
// clients expect ranged reads).
type NodeReadAtReq struct {
	FileID int64
	Offset int64
	Length int64
}

// Encode serializes the message body.
func (m NodeReadAtReq) Encode() []byte {
	var e Encoder
	return e.I64(m.FileID).I64(m.Offset).I64(m.Length).Bytes()
}

// DecodeNodeReadAtReq parses a NodeReadAtReq payload.
func DecodeNodeReadAtReq(b []byte) (NodeReadAtReq, error) {
	d := NewDecoder(b)
	m := NodeReadAtReq{FileID: d.I64(), Offset: d.I64(), Length: d.I64()}
	return m, d.Err()
}

// NodePrefetchReq commands a node to copy the listed files into its
// buffer disk (step 3/4 of the process flow).
type NodePrefetchReq struct{ FileIDs []int64 }

// Encode serializes the message body.
func (m NodePrefetchReq) Encode() []byte {
	var e Encoder
	e.U32(uint32(len(m.FileIDs)))
	for _, id := range m.FileIDs {
		e.I64(id)
	}
	return e.Bytes()
}

// DecodeNodePrefetchReq parses a NodePrefetchReq payload.
func DecodeNodePrefetchReq(b []byte) (NodePrefetchReq, error) {
	d := NewDecoder(b)
	n := d.U32()
	if d.Err() != nil {
		return NodePrefetchReq{}, d.Err()
	}
	m := NodePrefetchReq{}
	for i := uint32(0); i < n; i++ {
		m.FileIDs = append(m.FileIDs, d.I64())
		if d.Err() != nil {
			return NodePrefetchReq{}, d.Err()
		}
	}
	return m, d.Err()
}

// FileHint carries one file's predicted access behaviour: the mean
// inter-arrival of requests observed by the storage server.
type FileHint struct {
	FileID          int64
	MeanIntervalSec float64
}

// NodeHintsReq forwards application hints / access patterns to a storage
// node (steps 3-4 of the paper's process flow): the node uses them to
// predict idle windows and sleep data disks proactively (Section IV-C).
type NodeHintsReq struct {
	Hints []FileHint
}

// Encode serializes the message body.
func (m NodeHintsReq) Encode() []byte {
	var e Encoder
	e.U32(uint32(len(m.Hints)))
	for _, h := range m.Hints {
		e.I64(h.FileID).F64(h.MeanIntervalSec)
	}
	return e.Bytes()
}

// DecodeNodeHintsReq parses a NodeHintsReq payload.
func DecodeNodeHintsReq(b []byte) (NodeHintsReq, error) {
	d := NewDecoder(b)
	n := d.U32()
	if d.Err() != nil {
		return NodeHintsReq{}, d.Err()
	}
	m := NodeHintsReq{}
	for i := uint32(0); i < n; i++ {
		m.Hints = append(m.Hints, FileHint{FileID: d.I64(), MeanIntervalSec: d.F64()})
		if d.Err() != nil {
			return NodeHintsReq{}, d.Err()
		}
	}
	return m, d.Err()
}

// RoundTrip sends a request frame and reads one response frame, turning a
// TError response into a Go error.
func RoundTrip(rw io.ReadWriter, t Type, payload []byte) (Type, []byte, error) {
	if err := WriteFrame(rw, t, payload); err != nil {
		return 0, nil, err
	}
	rt, rp, err := ReadFrame(rw)
	if err != nil {
		return 0, nil, err
	}
	if rt == TError {
		em, derr := DecodeErrorMsg(rp)
		if derr != nil {
			return 0, nil, fmt.Errorf("proto: undecodable error response: %w", derr)
		}
		return 0, nil, &RemoteError{Code: em.Code, Msg: em.Msg, Redirect: em.Redirect}
	}
	return rt, rp, nil
}
