package proto

import (
	"bytes"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must never
// panic nor over-allocate, and accepted frames must round-trip.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	if err := WriteFrame(&good, TCreateReq, CreateReq{"x", 1}.Encode()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 1})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0})
	f.Add([]byte{0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, input []byte) {
		ty, payload, err := ReadFrame(bytes.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, ty, payload); err != nil {
			t.Fatalf("re-encoding accepted frame failed: %v", err)
		}
		ty2, payload2, err := ReadFrame(&buf)
		if err != nil || ty2 != ty || !bytes.Equal(payload2, payload) {
			t.Fatal("frame round trip mismatch")
		}
	})
}

// FuzzReadFrameID feeds arbitrary bytes to the v2 frame reader: it must
// never panic nor over-allocate, and accepted frames (with their request
// id) must round-trip through WriteFrameID.
func FuzzReadFrameID(f *testing.F) {
	var good bytes.Buffer
	if err := WriteFrameID(&good, TCreateReq, 7, CreateReq{"x", 1}.Encode()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 5, 1, 0, 0, 0, 9}) // minimal: empty payload
	f.Add([]byte{0, 0, 0, 4, 1, 0, 0, 0})    // length below the v2 header
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0}) // oversized length
	f.Add([]byte{0x45, 0x45, 0x56, 0x32})    // the preface magic itself
	f.Add([]byte{0, 0, 0, 9, 2, 0, 0, 0, 1, 'h', 'i'})

	f.Fuzz(func(t *testing.T, input []byte) {
		ty, id, payload, err := ReadFrameID(bytes.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrameID(&buf, ty, id, payload); err != nil {
			t.Fatalf("re-encoding accepted v2 frame failed: %v", err)
		}
		ty2, id2, payload2, err := ReadFrameID(&buf)
		if err != nil || ty2 != ty || id2 != id || !bytes.Equal(payload2, payload) {
			t.Fatal("v2 frame round trip mismatch")
		}
	})
}

// FuzzMessageDecoders throws arbitrary payloads at every decoder: none may
// panic, and decoded messages must re-encode without error.
func FuzzMessageDecoders(f *testing.F) {
	f.Add(CreateReq{"file", 100}.Encode())
	f.Add(ListResp{Names: []string{"a", "b"}}.Encode())
	f.Add(StatsResp{Disks: []DiskStats{{Name: "d", EnergyJ: 1}}}.Encode())
	f.Add(NodePrefetchReq{FileIDs: []int64{1, 2}}.Encode())
	f.Add(ErrorMsg{Msg: "boom", Code: CodeUnavailable}.Encode())
	f.Add(ErrorMsg{Msg: "moved", Code: CodeNotPrimary, Redirect: "127.0.0.1:9"}.Encode())
	legacy := ErrorMsg{Msg: "legacy"}.Encode()
	f.Add(legacy[:len(legacy)-8]) // pre-Code encoding: message only
	f.Add(legacy[:len(legacy)-4]) // pre-Redirect encoding: message + code
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, input []byte) {
		if m, err := DecodeCreateReq(input); err == nil {
			_ = m.Encode()
		}
		if m, err := DecodeCreateResp(input); err == nil {
			_ = m.Encode()
		}
		if m, err := DecodeLookupResp(input); err == nil {
			_ = m.Encode()
		}
		if m, err := DecodeListResp(input); err == nil {
			_ = m.Encode()
		}
		if m, err := DecodeStatsResp(input); err == nil {
			_ = m.Encode()
		}
		if m, err := DecodeNodeWriteReq(input); err == nil {
			_ = m.Encode()
		}
		if m, err := DecodeNodeReadResp(input); err == nil {
			_ = m.Encode()
		}
		if m, err := DecodeNodePrefetchReq(input); err == nil {
			_ = m.Encode()
		}
		if m, err := DecodeErrorMsg(input); err == nil {
			// Re-encoding always emits the Code; it must decode back to
			// the same message (legacy inputs gain CodeGeneric).
			rt, err := DecodeErrorMsg(m.Encode())
			if err != nil || rt != m {
				t.Fatalf("ErrorMsg round trip mismatch: %+v vs %+v (%v)", m, rt, err)
			}
		}
	})
}

// FuzzRepDecoders throws arbitrary payloads at the replication frame
// decoders, which parse input from other servers rather than trusted
// local state: no panic, no over-allocation from hostile counts, and
// accepted messages must re-encode cleanly.
func FuzzRepDecoders(f *testing.F) {
	f.Add(RepAppendReq{Epoch: 3, From: 1, Ops: []RepOp{
		{Seq: 9, Kind: RepOpCreate, Name: "f", ID: 4, Size: 100, Node: 1, Cursor: 2},
		{Seq: 10, Kind: RepOpAccess, Records: []RepAccess{{FileID: 4, TimeS: 1.5, Size: 100}}},
	}}.Encode())
	f.Add(RepAppendResp{LastSeq: 10}.Encode())
	f.Add(RepSnapshot{Epoch: 2, Seq: 7, NextID: 5, NextNode: 1,
		Files:    []RepFile{{Name: "f", ID: 4, Size: 100, Node: 1, Replica: 2}},
		Accesses: []RepAccess{{FileID: 4, TimeS: 1.5, Size: 100}},
	}.Encode())
	f.Add(RepStatusResp{Primary: true, Epoch: 2, Seq: 7, PrimaryIdx: 0}.Encode())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, input []byte) {
		if m, err := DecodeRepAppendReq(input); err == nil {
			_ = m.Encode()
		}
		if m, err := DecodeRepAppendResp(input); err == nil {
			_ = m.Encode()
		}
		if m, err := DecodeRepSnapshot(input); err == nil {
			_ = m.Encode()
		}
		if m, err := DecodeRepStatusResp(input); err == nil {
			_ = m.Encode()
		}
	})
}
