package proto

import (
	"bytes"
	"reflect"
	"testing"
)

func TestRepAppendRoundTrip(t *testing.T) {
	m := RepAppendReq{Epoch: 7, From: 2, Ops: []RepOp{
		{Seq: 1, Kind: RepOpCreate, Name: "a", ID: 0, Size: 512, Node: 1, Cursor: 2},
		{Seq: 2, Kind: RepOpDelete, Name: "a"},
		{Seq: 3, Kind: RepOpAccess, Records: []RepAccess{
			{FileID: 0, TimeS: 0.25, Size: 512},
			{FileID: 3, TimeS: 1.75, Size: 9},
		}},
		{Seq: 4, Kind: RepOpReplica, Name: "b", Replica: 2},
	}}
	got, err := DecodeRepAppendReq(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}

	resp := RepAppendResp{LastSeq: 4}
	rt, err := DecodeRepAppendResp(resp.Encode())
	if err != nil || rt != resp {
		t.Fatalf("resp round trip: %+v, %v", rt, err)
	}
}

func TestRepSnapshotRoundTrip(t *testing.T) {
	m := RepSnapshot{Epoch: 3, Seq: 42, From: 1, NextID: 9, NextNode: 2,
		Files: []RepFile{
			{Name: "a", ID: 0, Size: 100, Node: 0},
			{Name: "b", ID: 1, Size: 200, Node: 1, Replica: 1},
		},
		Accesses: []RepAccess{{FileID: 1, TimeS: 2.5, Size: 200}},
	}
	got, err := DecodeRepSnapshot(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
	// Equal states must fingerprint identically: snapshot bytes are the
	// cross-replica determinism check.
	if !bytes.Equal(m.Encode(), got.Encode()) {
		t.Fatal("re-encoding a decoded snapshot changed its bytes")
	}
}

func TestRepStatusRoundTrip(t *testing.T) {
	for _, m := range []RepStatusResp{
		{},
		{Primary: true, Epoch: 1, Seq: 17, PrimaryIdx: 0},
		{Primary: false, Epoch: 9, Seq: 3, PrimaryIdx: 2},
	} {
		got, err := DecodeRepStatusResp(m.Encode())
		if err != nil || got != m {
			t.Fatalf("round trip mismatch: %+v vs %+v (%v)", got, m, err)
		}
	}
}

// TestErrorMsgRedirectCompat: redirect-bearing errors must decode on the
// new path, and pre-redirect (and pre-code) encodings must still parse.
func TestErrorMsgRedirectCompat(t *testing.T) {
	full := ErrorMsg{Msg: "fs: not primary", Code: CodeNotPrimary, Redirect: "127.0.0.1:7070"}
	got, err := DecodeErrorMsg(full.Encode())
	if err != nil || got != full {
		t.Fatalf("redirect round trip: %+v vs %+v (%v)", got, full, err)
	}
	enc := full.Encode()
	preRedirect := enc[:len(enc)-(4+len(full.Redirect))]
	got, err = DecodeErrorMsg(preRedirect)
	if err != nil || got.Msg != full.Msg || got.Code != full.Code || got.Redirect != "" {
		t.Fatalf("pre-redirect decode: %+v (%v)", got, err)
	}
	var e Encoder
	preCode := e.Str("old peer").Bytes()
	got, err = DecodeErrorMsg(preCode)
	if err != nil || got.Msg != "old peer" || got.Code != CodeGeneric || got.Redirect != "" {
		t.Fatalf("pre-code decode: %+v (%v)", got, err)
	}
}
