package proto

import (
	"net"
	"sync"
	"testing"
	"time"

	"eevfs/internal/telemetry"
)

// benchServerV2Traced mirrors benchServerV2 but strips the trace-context
// extension from each frame before echoing, exactly as the fs daemons'
// serve loops do — so the benchmark pays both the client-side attach and
// the server-side extract.
func benchServerV2Traced(b *testing.B) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				if err := consumePreface(c); err != nil {
					return
				}
				var wmu sync.Mutex
				for {
					t, id, p, err := ReadFrameID(c)
					if err != nil {
						return
					}
					go func() {
						t, p, _, err := ExtractContext(t, p)
						if err != nil {
							return
						}
						time.Sleep(benchDelay)
						wmu.Lock()
						defer wmu.Unlock()
						WriteFrameID(c, t, id, p)
					}()
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// BenchmarkEndpointPipelinedTraced is BenchmarkEndpointPipelined with
// tracing on at the production default 1% head-sampling rate: every call
// opens a root span, propagates its context on the wire (CallCtx), and
// finishes the span. Comparing against BenchmarkEndpointPipelined in
// BENCH_trace.json bounds the tracing overhead on the hot path.
func BenchmarkEndpointPipelinedTraced(b *testing.B) {
	addr := benchServerV2Traced(b)
	ep := NewEndpoint(addr, nil, TransportConfig{RTTimeout: 5 * time.Second, Retries: 0})
	defer ep.Close()
	tracer := telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 0.01})
	payload := []byte("bench-payload")

	b.SetParallelism(benchParallelism())
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sp := tracer.StartRoot("bench", "bench.call")
			_, _, err := ep.CallCtx(TLookupReq, payload, sp.Context())
			sp.End(err)
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}
