// Package proto defines the wire protocol of the EEVFS prototype
// (Section IV-A: the storage server keeps a TCP connection per storage
// node; clients contact the server for metadata and then transfer data
// directly with the owning storage node).
//
// Framing, v1: every message is [u32 length][u8 type][payload]; length
// covers the type byte plus payload. One request is answered by one
// response on the same connection before the next request is sent.
//
// Framing, v2 (multiplexed): a connection opens with the 4-byte magic
// "EEV2", then every frame is [u32 length][u8 type][u32 id][payload];
// length covers type + id + payload. The id correlates a response with
// its request, so many round trips can be in flight on one connection
// and responses may arrive in any order. The magic is deliberately
// larger than MaxFrame, so a v2 preface can never be mistaken for a v1
// length prefix — servers sniff the first four bytes and speak
// whichever version the peer opened with.
//
// Integers are big-endian; strings and byte slices are length-prefixed
// (u32). Frames are capped to prevent a malformed peer from forcing
// huge allocations.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// MaxFrame bounds a single frame: 256 MiB covers the evaluation's largest
// files (50 MB) with ample margin.
const MaxFrame = 256 << 20

// Type identifies a message.
type Type uint8

// Message types. Req/Resp pairs share a numeric neighborhood.
const (
	TError Type = iota + 1
	TCreateReq
	TCreateResp
	TLookupReq
	TLookupResp
	TListReq
	TListResp
	TDeleteReq
	TDeleteResp
	TStatsReq
	TStatsResp
	TPrefetchReq
	TPrefetchResp
	TNodeCreateReq
	TNodeCreateResp
	TNodeReadReq
	TNodeReadResp
	TNodeWriteReq
	TNodeWriteResp
	TNodeDeleteReq
	TNodeDeleteResp
	TNodeStatsReq
	TNodeStatsResp
	TNodePrefetchReq
	TNodePrefetchResp
	TNodeReadAtReq
	TNodeReadAtResp
	TNodeHintsReq
	TNodeHintsResp
	// Replication frames carry the metadata op log between servers in a
	// replicated group. Appended after every earlier type so the numeric
	// values of the existing frames never move (wire compatibility).
	TRepAppendReq
	TRepAppendResp
	TRepSnapshotReq
	TRepSnapshotResp
	TRepStatusReq
	TRepStatusResp
	// TLookupWriteReq is a lookup that declares write intent; the server
	// invalidates any buffer-disk replica before answering with a plain
	// TLookupResp, so a subsequent direct write cannot leave a stale
	// mirror behind.
	TLookupWriteReq
	// Streaming data plane (DESIGN.md §19). A stream is opened by a
	// TStreamReadReq or TStreamWriteReq carrying a StreamOpenReq; every
	// later frame of the stream reuses the open frame's request id,
	// interleaved with ordinary round trips on the same multiplexed
	// connection. TDataFrame payloads are raw chunk bytes (no length
	// prefix); TStreamEnd terminates a direction cleanly; TStreamAbort
	// (an ErrorMsg payload) terminates it with a typed failure; and
	// TStreamCredit replenishes the receiver-granted flow-control window.
	TStreamReadReq
	TStreamWriteReq
	TStreamOpenResp
	TDataFrame
	TStreamEnd
	TStreamAbort
	TStreamCredit
)

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("proto: frame exceeds MaxFrame")
	ErrShortPayload  = errors.New("proto: truncated payload")
)

// WriteFrame sends one message.
func WriteFrame(w io.Writer, t Type, payload []byte) error {
	n := 1 + len(payload)
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame receives one message.
func ReadFrame(r io.Reader) (Type, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 {
		return 0, nil, fmt.Errorf("proto: zero-length frame")
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	t := Type(hdr[4])
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return t, payload, nil
}

// MagicV2 is the connection preface of the multiplexed v2 framing. Read
// as a v1 length prefix it decodes to ~1.16 GB — far beyond MaxFrame —
// so the two framings can never be confused on the wire.
const MagicV2 uint32 = 0x45455632 // "EEV2"

// v2 frame overhead past the length prefix: 1 type byte + 4 id bytes.
const v2HeaderLen = 5

// ErrShortV2Frame reports a v2 frame too small to carry type + id.
var ErrShortV2Frame = errors.New("proto: v2 frame shorter than its header")

// WritePreface sends the v2 magic; a muxed connection starts with it.
func WritePreface(w io.Writer) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], MagicV2)
	_, err := w.Write(b[:])
	return err
}

// framePool recycles whole-frame encode buffers: a v2 frame is built
// (header + payload) in one pooled buffer and written with a single
// Write call, so the per-RPC steady state allocates nothing and a frame
// is never interleaved with another writer's bytes.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// appendFrameID appends one v2 frame to buf.
func appendFrameID(buf []byte, t Type, id uint32, payload []byte) []byte {
	n := v2HeaderLen + len(payload)
	var hdr [9]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = byte(t)
	binary.BigEndian.PutUint32(hdr[5:], id)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// WriteFrameID sends one v2 frame: [u32 length][u8 type][u32 id][payload].
// The frame is assembled in a pooled buffer and written atomically with
// respect to other WriteFrameID calls on a mutex-guarded writer.
func WriteFrameID(w io.Writer, t Type, id uint32, payload []byte) error {
	if v2HeaderLen+len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	bp := framePool.Get().(*[]byte)
	buf := appendFrameID((*bp)[:0], t, id, payload)
	_, err := w.Write(buf)
	*bp = buf[:0]
	framePool.Put(bp)
	return err
}

// ReadFrameHeader receives one v2 frame's header, returning its type,
// request id, and payload length. The caller reads (or discards) exactly
// that many payload bytes next — splitting header from payload lets
// stream demuxers route the payload into a pooled chunk buffer instead
// of a fresh allocation per frame.
func ReadFrameHeader(r io.Reader) (Type, uint32, int, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < v2HeaderLen {
		return 0, 0, 0, ErrShortV2Frame
	}
	if n > MaxFrame {
		return 0, 0, 0, ErrFrameTooLarge
	}
	return Type(hdr[4]), binary.BigEndian.Uint32(hdr[5:]), int(n - v2HeaderLen), nil
}

// ReadFrameID receives one v2 frame, returning its type, request id, and
// payload. The payload is freshly allocated and owned by the caller.
func ReadFrameID(r io.Reader) (Type, uint32, []byte, error) {
	t, id, n, err := ReadFrameHeader(r)
	if err != nil {
		return 0, 0, nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return t, id, payload, nil
}

// Encoder builds a payload.
type Encoder struct{ buf []byte }

// Bytes returns the accumulated payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) *Encoder {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) *Encoder {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

// I64 appends an int64 (two's complement).
func (e *Encoder) I64(v int64) *Encoder { return e.U64(uint64(v)) }

// F64 appends a float64 (IEEE 754 bits).
func (e *Encoder) F64(v float64) *Encoder {
	return e.U64(mathFloat64bits(v))
}

// Bool appends a byte 0/1.
func (e *Encoder) Bool(v bool) *Encoder {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
	return e
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) *Encoder {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	return e
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) *Encoder {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// Decoder consumes a payload.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode error (ErrShortPayload on truncation).
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrShortPayload
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return mathFloat64frombits(d.U64()) }

// Bool reads a byte as bool.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := d.U32()
	if d.err != nil {
		return ""
	}
	if uint64(n) > uint64(d.Remaining()) {
		d.err = ErrShortPayload
		return ""
	}
	return string(d.take(int(n)))
}

// Blob reads a length-prefixed byte slice (copy-free view into the
// payload; callers that retain it must copy).
func (d *Decoder) Blob() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if uint64(n) > uint64(d.Remaining()) {
		d.err = ErrShortPayload
		return nil
	}
	return d.take(int(n))
}

// mathFloat64bits and mathFloat64frombits are aliases of the math package
// helpers, named so the Encoder methods read naturally.
func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
