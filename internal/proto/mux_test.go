package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eevfs/internal/telemetry"
)

func TestFrameIDRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello, mux")
	if err := WriteFrameID(&buf, TLookupReq, 42, payload); err != nil {
		t.Fatal(err)
	}
	ty, id, got, err := ReadFrameID(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ty != TLookupReq || id != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("got type=%d id=%d payload=%q", ty, id, got)
	}
}

func TestFrameIDEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameID(&buf, TListReq, 7, nil); err != nil {
		t.Fatal(err)
	}
	ty, id, got, err := ReadFrameID(&buf)
	if err != nil || ty != TListReq || id != 7 || len(got) != 0 {
		t.Fatalf("type=%d id=%d payload=%q err=%v", ty, id, got, err)
	}
}

func TestReadFrameIDShortHeader(t *testing.T) {
	// length 4 < the 5-byte type+id header.
	var hdr [9]byte
	binary.BigEndian.PutUint32(hdr[:4], 4)
	if _, _, _, err := ReadFrameID(bytes.NewReader(hdr[:])); !errors.Is(err, ErrShortV2Frame) {
		t.Fatalf("err = %v, want ErrShortV2Frame", err)
	}
}

func TestReadFrameIDOversized(t *testing.T) {
	var hdr [9]byte
	binary.BigEndian.PutUint32(hdr[:4], MaxFrame+1)
	if _, _, _, err := ReadFrameID(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestWriteFrameIDTooLarge(t *testing.T) {
	big := make([]byte, MaxFrame)
	if err := WriteFrameID(io.Discard, TListReq, 1, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestMagicNeverAValidV1Length pins the negotiation invariant: the v2
// preface read as a v1 length prefix must always exceed MaxFrame, so a
// sniffing server can never mistake one for the other.
func TestMagicNeverAValidV1Length(t *testing.T) {
	if MagicV2 <= MaxFrame {
		t.Fatalf("MagicV2 (%#x) must exceed MaxFrame (%#x)", MagicV2, MaxFrame)
	}
}

// TestConcurrentCallersOneConnection is the core mux property: many
// goroutines calling through one endpoint share a single connection,
// every response lands at the caller that sent the matching request,
// and no crossed ids slip through. Run under -race.
func TestConcurrentCallersOneConnection(t *testing.T) {
	addr := frameServer(t, func(ty Type, p []byte) (Type, []byte, bool) {
		return ty + 1, append([]byte("echo:"), p...), true
	})
	d := &countingDialer{}
	ep := NewEndpoint(addr, d, fastRetry(0))
	defer ep.Close()

	const callers, perCaller = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				req := fmt.Sprintf("caller-%d-call-%d", c, i)
				_, rp, err := ep.Call(TLookupReq, []byte(req))
				if err != nil {
					errs <- err
					return
				}
				if want := "echo:" + req; string(rp) != want {
					errs <- fmt.Errorf("crossed response: got %q, want %q", rp, want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if dials, _ := d.stats(); dials != 1 {
		t.Fatalf("dials = %d, want 1 (all callers share one connection)", dials)
	}
}

// muxServer runs a raw v2 peer with full control over response order.
func muxServer(t *testing.T, serve func(c net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				if err := consumePreface(c); err != nil {
					return
				}
				serve(c)
			}()
		}
	}()
	return ln.Addr().String()
}

// TestOutOfOrderResponsesDemuxed: the peer answers two pipelined
// requests in reverse arrival order; each caller must still receive its
// own response. This is exactly what the serialized v1 endpoint could
// never do.
func TestOutOfOrderResponsesDemuxed(t *testing.T) {
	addr := muxServer(t, func(c net.Conn) {
		for {
			type reqFrame struct {
				ty      Type
				id      uint32
				payload []byte
			}
			var batch []reqFrame
			for len(batch) < 2 {
				ty, id, p, err := ReadFrameID(c)
				if err != nil {
					return
				}
				batch = append(batch, reqFrame{ty, id, p})
			}
			for i := len(batch) - 1; i >= 0; i-- { // reversed
				f := batch[i]
				if err := WriteFrameID(c, f.ty, f.id, append([]byte("r:"), f.payload...)); err != nil {
					return
				}
			}
		}
	})
	ep := NewEndpoint(addr, nil, fastRetry(0))
	defer ep.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, name := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			_, rp, err := ep.Call(TLookupReq, []byte(name))
			if err != nil {
				errs <- err
				return
			}
			if want := "r:" + name; string(rp) != want {
				errs <- fmt.Errorf("got %q, want %q", rp, want)
			}
		}(name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPoisonFailsAllOutstanding: the peer swallows a batch of pipelined
// requests and slams the connection; every outstanding caller must get
// a typed *TransportError (no hangs, no nils), and the next call must
// redial a fresh connection and succeed.
func TestPoisonFailsAllOutstanding(t *testing.T) {
	const batch = 8
	var accepted atomic.Int64
	addr := muxServer(t, func(c net.Conn) {
		if accepted.Add(1) == 1 {
			// First connection: read a full batch, answer nothing, die.
			for i := 0; i < batch; i++ {
				if _, _, _, err := ReadFrameID(c); err != nil {
					return
				}
			}
			return // defer closes the conn: poison
		}
		// Later connections behave.
		for {
			ty, id, p, err := ReadFrameID(c)
			if err != nil {
				return
			}
			if err := WriteFrameID(c, ty, id, p); err != nil {
				return
			}
		}
	})
	d := &countingDialer{}
	cfg := fastRetry(-1) // single attempt: surface the poison, don't mask it
	ep := NewEndpoint(addr, d, cfg)
	defer ep.Close()

	var wg sync.WaitGroup
	errs := make(chan error, batch)
	for i := 0; i < batch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := ep.Call(TLookupReq, []byte{byte(i)})
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		var te *TransportError
		if !errors.As(err, &te) {
			t.Fatalf("outstanding call got %v, want *TransportError", err)
		}
	}
	if _, _, err := ep.Call(TListReq, []byte("again")); err != nil {
		t.Fatalf("call after poison must redial and succeed, got %v", err)
	}
	if dials, _ := d.stats(); dials != 2 {
		t.Fatalf("dials = %d, want 2 (poisoned conn discarded, one redial)", dials)
	}
}

// TestRemoteErrorLeavesOthersInFlight: a TError response for one id
// must not disturb the other requests sharing the connection.
func TestRemoteErrorLeavesOthersInFlight(t *testing.T) {
	addr := frameServer(t, func(ty Type, p []byte) (Type, []byte, bool) {
		if bytes.Equal(p, []byte("fail")) {
			return TError, ErrorMsg{Msg: "nope", Code: CodeNotFound}.Encode(), true
		}
		return ty + 1, p, true
	})
	d := &countingDialer{}
	ep := NewEndpoint(addr, d, fastRetry(0))
	defer ep.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%4 == 0 {
				_, _, err := ep.Call(TLookupReq, []byte("fail"))
				var re *RemoteError
				if !errors.As(err, &re) || re.Code != CodeNotFound {
					errs <- fmt.Errorf("want typed remote error, got %v", err)
				}
				return
			}
			req := []byte(fmt.Sprintf("ok-%d", i))
			_, rp, err := ep.Call(TLookupReq, req)
			if err != nil {
				errs <- err
			} else if !bytes.Equal(rp, req) {
				errs <- fmt.Errorf("crossed response %q for request %q", rp, req)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if dials, _ := d.stats(); dials != 1 {
		t.Fatalf("dials = %d, want 1 (remote errors never poison the conn)", dials)
	}
}

// TestUnknownResponseIDPoisons: a response whose id matches no waiting
// caller is a protocol violation (or stream corruption) and must kill
// the connection rather than be silently dropped.
func TestUnknownResponseIDPoisons(t *testing.T) {
	addr := muxServer(t, func(c net.Conn) {
		if _, _, _, err := ReadFrameID(c); err != nil {
			return
		}
		// Respond with an id nobody registered.
		WriteFrameID(c, TListResp, 0xDEADBEEF, nil)
		// Keep the conn open; the endpoint should close it.
		io.Copy(io.Discard, c)
	})
	cfg := fastRetry(-1)
	cfg.RTTimeout = 300 * time.Millisecond
	ep := NewEndpoint(addr, nil, cfg)
	defer ep.Close()
	_, _, err := ep.Call(TListReq, nil)
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransportError from the unknown-id poison", err)
	}
}

// TestInflightAndQueueDepthTelemetry checks the new mux metrics: the
// in-flight gauge returns to zero after traffic, and the queue-depth
// histogram saw one observation per call.
func TestInflightAndQueueDepthTelemetry(t *testing.T) {
	addr := frameServer(t, func(ty Type, p []byte) (Type, []byte, bool) {
		return ty, p, true
	})
	reg := telemetry.NewRegistry()
	cfg := fastRetry(0)
	cfg.Metrics = reg
	ep := NewEndpoint(addr, nil, cfg)
	defer ep.Close()

	const calls = 10
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep.Call(TListReq, nil)
		}()
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Gauges["proto.inflight"]; got != 0 {
		t.Fatalf("proto.inflight = %v after drain, want 0", got)
	}
	if got := snap.Histograms["proto.queue.depth"].Count; got != calls {
		t.Fatalf("proto.queue.depth observations = %d, want %d", got, calls)
	}
}
