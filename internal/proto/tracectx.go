// Trace-context frame extension: how a SpanContext rides the wire.
//
// A traced frame sets the high bit of the type byte (FlagTraced — every
// real Type fits in 7 bits) and prefixes the payload with a fixed
// 25-byte header:
//
//	[u8 flags][u64 trace id][u64 span id][u64 parent id]
//
// flags bit 0 carries the head-sampling decision. The extension works
// identically under the v1 and v2 framings — it lives inside the
// (type, payload) pair both share — and is strictly optional: a peer
// that predates it never sets the bit and never sees it (requests are
// only flagged by tracing clients; responses are never flagged).
package proto

import (
	"encoding/binary"
	"fmt"

	"eevfs/internal/telemetry"
)

// FlagTraced marks a frame whose payload starts with a trace-context
// header. It occupies the type byte's high bit, disjoint from every
// frame type.
const FlagTraced Type = 0x80

// traceCtxLen is the fixed size of the trace-context payload prefix.
const traceCtxLen = 1 + 8 + 8 + 8

const flagSampled = 0x01

// AttachContext prepends sc to the payload and sets FlagTraced on the
// type. A zero context returns the inputs unchanged, so call sites can
// attach unconditionally.
func AttachContext(t Type, payload []byte, sc telemetry.SpanContext) (Type, []byte) {
	if sc.TraceID == 0 {
		return t, payload
	}
	buf := make([]byte, traceCtxLen+len(payload))
	if sc.Sampled {
		buf[0] = flagSampled
	}
	binary.BigEndian.PutUint64(buf[1:], sc.TraceID)
	binary.BigEndian.PutUint64(buf[9:], sc.SpanID)
	binary.BigEndian.PutUint64(buf[17:], sc.ParentID)
	copy(buf[traceCtxLen:], payload)
	return t | FlagTraced, buf
}

// ExtractContext undoes AttachContext: it strips FlagTraced and the
// payload prefix, returning the inner type, payload, and context. An
// unflagged frame passes through untouched with a zero context. A
// flagged frame too short to hold the header is a protocol error.
func ExtractContext(t Type, payload []byte) (Type, []byte, telemetry.SpanContext, error) {
	if t&FlagTraced == 0 {
		return t, payload, telemetry.SpanContext{}, nil
	}
	if len(payload) < traceCtxLen {
		return 0, nil, telemetry.SpanContext{},
			fmt.Errorf("proto: traced frame payload %d bytes, need >= %d", len(payload), traceCtxLen)
	}
	sc := telemetry.SpanContext{
		TraceID:  binary.BigEndian.Uint64(payload[1:]),
		SpanID:   binary.BigEndian.Uint64(payload[9:]),
		ParentID: binary.BigEndian.Uint64(payload[17:]),
		Sampled:  payload[0]&flagSampled != 0,
	}
	return t &^ FlagTraced, payload[traceCtxLen:], sc, nil
}
