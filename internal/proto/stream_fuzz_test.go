package proto

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

// FuzzReadStreamFrames drives the mux demux reader with adversarial
// stream-frame sequences — interleaved ids, truncations, duplicates
// after end, unknown ids, illegal types, credit floods — through a real
// muxConn over an in-memory pipe. Invariants: never a panic, never a
// chunk delivered to the wrong stream (payloads carry a per-stream
// marker byte), and every violation fails typed via poison rather than
// wedging a consumer.
func FuzzReadStreamFrames(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x08, 0x20, 0x00, 0x30, 0x18, 0x00}) // interleave + ends
	f.Add([]byte{0x02, 0x00})                                     // unknown id
	f.Add([]byte{0x06, 0x00})                                     // illegal type
	f.Add([]byte{0x07})                                           // truncated frame
	f.Add([]byte{0x00, 0xFF, 0x01, 0xFF, 0x00, 0xFF, 0x01, 0xFF, 0x04, 0x00, 0x05, 0x00})
	f.Add([]byte{0x03, 0x00, 0x00, 0x10}) // data after end (retired id)

	f.Fuzz(func(t *testing.T, script []byte) {
		clientEnd, serverEnd := net.Pipe()
		defer clientEnd.Close()
		defer serverEnd.Close()
		m := newMuxConn(clientEnd, newEpMetrics(nil))

		// Drain everything the client side emits (preface, credits).
		go io.Copy(io.Discard, serverEnd)

		const marker1, marker2 = 0xA5, 0x5A
		st1, err := m.registerStream(4)
		if err != nil {
			t.Fatal(err)
		}
		st2, err := m.registerStream(4)
		if err != nil {
			t.Fatal(err)
		}

		// One consumer per stream: validates that every delivered data
		// chunk carries its own stream's marker, returns chunks to the
		// pool, and retires the stream on its terminal frame — mirroring
		// what ReadStream does.
		errc := make(chan error, 2)
		consume := func(st *muxStream, marker byte) {
			for {
				select {
				case msg := <-st.recv:
					if msg.t == TDataFrame {
						for _, b := range msg.payload {
							if b != marker {
								PutChunk(msg.payload)
								errc <- fmt.Errorf("stream %d got byte %#x, want marker %#x",
									st.id, b, marker)
								return
							}
						}
						PutChunk(msg.payload)
						continue
					}
					if streamTerminal(msg.t) {
						m.removeStream(st)
						errc <- nil
						return
					}
				case <-st.done:
					if st.fault() == nil {
						errc <- fmt.Errorf("stream %d done without a fault", st.id)
						return
					}
					errc <- nil
					return
				}
			}
		}
		go consume(st1, marker1)
		go consume(st2, marker2)

		// Interpret the fuzz input as a frame script from the peer.
		payload := func(marker byte, n int) []byte {
			b := make([]byte, n)
			for i := range b {
				b[i] = marker
			}
			return b
		}
		i := 0
		next := func() byte {
			if i >= len(script) {
				return 0
			}
			b := script[i]
			i++
			return b
		}
		for i < len(script) {
			op := next() % 8
			size := int(next())%512 + 1
			var werr error
			switch op {
			case 0:
				werr = WriteFrameID(serverEnd, TDataFrame, st1.id, payload(marker1, size))
			case 1:
				werr = WriteFrameID(serverEnd, TDataFrame, st2.id, payload(marker2, size))
			case 2:
				werr = WriteFrameID(serverEnd, TDataFrame, 999, payload(0xEE, size))
			case 3:
				werr = WriteFrameID(serverEnd, TStreamEnd, st1.id, StreamEnd{}.Encode())
			case 4:
				werr = WriteFrameID(serverEnd, TStreamCredit, st1.id, StreamCredit{N: uint32(size)}.Encode())
			case 5:
				werr = WriteFrameID(serverEnd, TStreamAbort, st2.id, ErrorMsg{Msg: "fuzzed"}.Encode())
			case 6:
				werr = WriteFrameID(serverEnd, TLookupResp, st1.id, payload(0xCC, size))
			case 7:
				// Truncated frame: a header promising more than follows.
				hdr := appendFrameID(nil, TDataFrame, st1.id, payload(marker1, size))
				serverEnd.Write(hdr[:len(hdr)-1])
				i = len(script) // nothing sane can follow
			}
			if werr != nil {
				break // reader poisoned and closed the pipe; expected
			}
		}
		// Tear the connection down; whatever is still open must fail.
		serverEnd.Close()

		for j := 0; j < 2; j++ {
			select {
			case err := <-errc:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("consumer wedged: stream neither delivered nor failed")
			}
		}
		if m.fault() == nil {
			t.Fatal("connection alive after pipe close")
		}
	})
}
