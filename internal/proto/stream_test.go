package proto

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"eevfs/internal/telemetry"
)

// streamTestServer is a minimal raw-frame v2 peer for stream tests: it
// accepts one connection, consumes the preface, and hands each inbound
// frame to script. Writes from script go straight to the socket.
func streamTestServer(t *testing.T, script func(conn net.Conn, ty Type, id uint32, payload []byte) bool) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var preface [4]byte
		if _, err := io.ReadFull(conn, preface[:]); err != nil {
			return
		}
		for {
			ty, id, payload, err := ReadFrameID(conn)
			if err != nil {
				return
			}
			if !script(conn, ty, id, payload) {
				return
			}
		}
	}()
	return ln.Addr().String()
}

func testTransport() TransportConfig {
	return TransportConfig{
		DialTimeout: time.Second,
		RTTimeout:   2 * time.Second,
		Retries:     -1,
	}
}

// TestReadStreamDelivery runs one complete streamed read: open, chunked
// data within the credit window, clean end — and checks the reassembled
// bytes, the stream metadata, and that the stream id is retired.
func TestReadStreamDelivery(t *testing.T) {
	content := bytes.Repeat([]byte("stream-me!"), 2000) // 20 KB
	const chunk = 1024
	addr := streamTestServer(t, func(conn net.Conn, ty Type, id uint32, payload []byte) bool {
		if ty == TStreamCredit {
			return true // replenishment racing past the inline loop below
		}
		if ty != TStreamReadReq {
			t.Errorf("server got frame type %d", ty)
			return false
		}
		req, err := DecodeStreamOpenReq(payload)
		if err != nil {
			t.Error(err)
			return false
		}
		resp := StreamOpenResp{FromBuffer: true, Size: int64(len(content)),
			ChunkSize: chunk, Window: req.Window}
		if err := WriteFrameID(conn, TStreamOpenResp, id, resp.Encode()); err != nil {
			return false
		}
		// Window accounting is ignored here: the client's queue holds the
		// full window and it never stops reading, so a fast push is fine
		// for content this small relative to window*chunk... it is not —
		// 20 chunks > default window 8. Respect the window: send
		// window chunks, then consume credits as they arrive.
		credits := int(req.Window)
		for off := 0; off < len(content); {
			for credits == 0 {
				ct, _, cp, err := ReadFrameID(conn)
				if err != nil {
					return false
				}
				if ct != TStreamCredit {
					t.Errorf("server got %d while awaiting credit", ct)
					return false
				}
				c, err := DecodeStreamCredit(cp)
				if err != nil {
					t.Error(err)
					return false
				}
				credits += int(c.N)
			}
			end := off + chunk
			if end > len(content) {
				end = len(content)
			}
			if err := WriteFrameID(conn, TDataFrame, id, content[off:end]); err != nil {
				return false
			}
			off = end
			credits--
		}
		if err := WriteFrameID(conn, TStreamEnd, id, StreamEnd{}.Encode()); err != nil {
			return false
		}
		return true
	})

	ep := NewEndpoint(addr, nil, testTransport())
	defer ep.Close()
	rs, err := ep.OpenReadStream(StreamOpenReq{FileID: 7}, telemetry.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.FromBuffer() || rs.Size() != int64(len(content)) {
		t.Fatalf("FromBuffer=%v Size=%d", rs.FromBuffer(), rs.Size())
	}
	got, err := io.ReadAll(rs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("content mismatch: got %d bytes", len(got))
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	rs.m.mu.Lock()
	open := len(rs.m.streams)
	rs.m.mu.Unlock()
	if open != 0 {
		t.Fatalf("%d stream ids still registered after a settled read", open)
	}
}

// TestReadStreamAbortTyped pins that a peer abort mid-stream surfaces as
// a typed *RemoteError and leaves the connection generation healthy.
func TestReadStreamAbortTyped(t *testing.T) {
	addr := streamTestServer(t, func(conn net.Conn, ty Type, id uint32, payload []byte) bool {
		switch ty {
		case TStreamReadReq:
			resp := StreamOpenResp{Size: 4096, ChunkSize: 1024, Window: 8}
			if err := WriteFrameID(conn, TStreamOpenResp, id, resp.Encode()); err != nil {
				return false
			}
			if err := WriteFrameID(conn, TDataFrame, id, make([]byte, 1024)); err != nil {
				return false
			}
			em := ErrorMsg{Code: CodeNotFound, Msg: "disk ate the file"}
			if err := WriteFrameID(conn, TStreamAbort, id, em.Encode()); err != nil {
				return false
			}
			return true
		case TListReq:
			return WriteFrameID(conn, TListResp, id, ListResp{}.Encode()) == nil
		}
		t.Errorf("server got frame type %d", ty)
		return false
	})

	ep := NewEndpoint(addr, nil, testTransport())
	defer ep.Close()
	rs, err := ep.OpenReadStream(StreamOpenReq{FileID: 1}, telemetry.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(rs)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeNotFound {
		t.Fatalf("err = %v, want *RemoteError{CodeNotFound}", err)
	}
	rs.Close()
	// The abort was stream-scoped: a plain round trip on the same
	// connection generation must still work.
	if _, _, err := ep.Call(TListReq, nil); err != nil {
		t.Fatalf("round trip after stream abort: %v", err)
	}
}

// TestStreamOpenRejectedTyped pins the open-time rejection path: a
// TError answer to the open frame is a final *RemoteError, not a retried
// transport fault.
func TestStreamOpenRejectedTyped(t *testing.T) {
	var opens int
	var mu sync.Mutex
	addr := streamTestServer(t, func(conn net.Conn, ty Type, id uint32, payload []byte) bool {
		mu.Lock()
		opens++
		mu.Unlock()
		em := ErrorMsg{Code: CodeGeneric, Msg: "no streams here"}
		return WriteFrameID(conn, TError, id, em.Encode()) == nil
	})
	cfg := testTransport()
	cfg.Retries = 3
	ep := NewEndpoint(addr, nil, cfg)
	defer ep.Close()
	_, err := ep.OpenReadStream(StreamOpenReq{FileID: 1}, telemetry.SpanContext{})
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeGeneric {
		t.Fatalf("err = %v, want *RemoteError{CodeGeneric}", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if opens != 1 {
		t.Fatalf("remote rejection was retried: %d opens", opens)
	}
}

// TestPoisonFailsAllStreams pins the extended all-or-nothing rule: a
// connection-generation fault fails every open stream (and pending round
// trip) with the same typed error.
func TestPoisonFailsAllStreams(t *testing.T) {
	release := make(chan struct{})
	addr := streamTestServer(t, func(conn net.Conn, ty Type, id uint32, payload []byte) bool {
		resp := StreamOpenResp{Size: 1 << 20, ChunkSize: 1024, Window: 8}
		if err := WriteFrameID(conn, TStreamOpenResp, id, resp.Encode()); err != nil {
			return false
		}
		if id == 2 { // second open: hang, then die
			<-release
			return false // server closes the socket
		}
		return true
	})

	ep := NewEndpoint(addr, nil, testTransport())
	defer ep.Close()
	rs1, err := ep.OpenReadStream(StreamOpenReq{FileID: 1}, telemetry.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := ep.OpenReadStream(StreamOpenReq{FileID: 2}, telemetry.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	close(release) // server closes; both streams must fail typed

	for i, rs := range []*ReadStream{rs1, rs2} {
		_, err := io.ReadAll(rs)
		var te *TransportError
		if !errors.As(err, &te) {
			t.Fatalf("stream %d err = %v, want *TransportError", i+1, err)
		}
		rs.Close()
	}
}

// TestWriteStreamRoundTrip runs one complete streamed write against a
// scripted peer that verifies chunking stays inside the granted window.
func TestWriteStreamRoundTrip(t *testing.T) {
	content := bytes.Repeat([]byte("write-path"), 5000) // 50 KB
	const window = 4
	var mu sync.Mutex
	var received []byte
	addr := streamTestServer(t, func(conn net.Conn, ty Type, id uint32, payload []byte) bool {
		switch ty {
		case TStreamWriteReq:
			req, err := DecodeStreamOpenReq(payload)
			if err != nil || req.Size != int64(len(content)) {
				t.Errorf("open: err=%v size=%d", err, req.Size)
				return false
			}
			resp := StreamOpenResp{Size: req.Size, ChunkSize: 2048, Window: window}
			return WriteFrameID(conn, TStreamOpenResp, id, resp.Encode()) == nil
		case TDataFrame:
			mu.Lock()
			received = append(received, payload...)
			n := len(received)
			mu.Unlock()
			if len(payload) > 2048 {
				t.Errorf("chunk of %d bytes exceeds granted size", len(payload))
				return false
			}
			// Replenish one credit per chunk consumed.
			if err := WriteFrameID(conn, TStreamCredit, id, StreamCredit{N: 1}.Encode()); err != nil {
				return false
			}
			_ = n
			return true
		case TStreamEnd:
			mu.Lock()
			ok := bytes.Equal(received, content)
			mu.Unlock()
			if !ok {
				t.Error("server received wrong bytes")
				return false
			}
			return WriteFrameID(conn, TStreamEnd, id, StreamEnd{Buffered: true}.Encode()) == nil
		}
		t.Errorf("server got frame type %d", ty)
		return false
	})

	ep := NewEndpoint(addr, nil, testTransport())
	defer ep.Close()
	ws, err := ep.OpenWriteStream(StreamOpenReq{FileID: 3, Size: int64(len(content)), Window: window},
		telemetry.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(ws, bytes.NewReader(content)); err != nil {
		t.Fatal(err)
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}
	if !ws.Buffered() {
		t.Fatal("Buffered() = false, want true from the server's end frame")
	}
}

// TestStreamChunkPool pins the pooled-buffer contract: standard-size
// chunks round-trip through the pool, oversized ones fall to the GC.
func TestStreamChunkPool(t *testing.T) {
	b := GetChunk(1024)
	if len(b) != 1024 || cap(b) != DefaultStreamChunk {
		t.Fatalf("len=%d cap=%d", len(b), cap(b))
	}
	PutChunk(b)
	big := GetChunk(DefaultStreamChunk + 1)
	if len(big) != DefaultStreamChunk+1 {
		t.Fatalf("len=%d", len(big))
	}
	PutChunk(big) // must not poison the pool
	again := GetChunk(64)
	if cap(again) != DefaultStreamChunk {
		t.Fatalf("pool returned cap %d", cap(again))
	}
	PutChunk(again)
}

// TestNegotiateChunkClamps pins the chunk/window negotiation bounds.
func TestNegotiateChunkClamps(t *testing.T) {
	cases := []struct {
		req  uint32
		pref int64
		want int
	}{
		{0, 0, DefaultStreamChunk},
		{0, 8192, 8192},
		{100, 0, MinStreamChunk},
		{1 << 30, 0, MaxStreamChunk},
		{4096, 8192, 4096},
	}
	for _, c := range cases {
		if got := NegotiateChunk(c.req, c.pref); got != c.want {
			t.Errorf("NegotiateChunk(%d,%d) = %d, want %d", c.req, c.pref, got, c.want)
		}
	}
	if got := ClampStreamWindow(0); got != DefaultStreamWindow {
		t.Errorf("ClampStreamWindow(0) = %d", got)
	}
	if got := ClampStreamWindow(1 << 20); got != MaxStreamWindow {
		t.Errorf("ClampStreamWindow(big) = %d", got)
	}
}

// TestStreamMessagesRoundTrip covers the stream codecs, including the
// empty-payload StreamEnd form.
func TestStreamMessagesRoundTrip(t *testing.T) {
	o := StreamOpenReq{FileID: 9, Size: 1 << 30, ChunkSize: 4096, Window: 16}
	if got, err := DecodeStreamOpenReq(o.Encode()); err != nil || got != o {
		t.Fatalf("open req: %+v err=%v", got, err)
	}
	r := StreamOpenResp{FromBuffer: true, Size: 123, ChunkSize: 512, Window: 2}
	if got, err := DecodeStreamOpenResp(r.Encode()); err != nil || got != r {
		t.Fatalf("open resp: %+v err=%v", got, err)
	}
	e := StreamEnd{Buffered: true}
	if got, err := DecodeStreamEnd(e.Encode()); err != nil || got != e {
		t.Fatalf("end: %+v err=%v", got, err)
	}
	if got, err := DecodeStreamEnd(nil); err != nil || got.Buffered {
		t.Fatalf("empty end: %+v err=%v", got, err)
	}
	c := StreamCredit{N: 42}
	if got, err := DecodeStreamCredit(c.Encode()); err != nil || got != c {
		t.Fatalf("credit: %+v err=%v", got, err)
	}
	if _, err := DecodeStreamOpenReq([]byte{1, 2}); err == nil {
		t.Fatal("truncated open req decoded")
	}
}
