package proto

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// frameServer runs a v2 protocol peer that answers requests in arrival
// order, echoing each request's id. handle returns the response frame,
// or ok=false to slam the connection shut instead of answering (a
// mid-message failure).
func frameServer(t *testing.T, handle func(Type, []byte) (Type, []byte, bool)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				if err := consumePreface(c); err != nil {
					return
				}
				for {
					ty, id, payload, err := ReadFrameID(c)
					if err != nil {
						return
					}
					rt, rp, ok := handle(ty, payload)
					if !ok {
						return
					}
					if err := WriteFrameID(c, rt, id, rp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// consumePreface reads and checks the v2 magic on a test server's
// accepted connection.
func consumePreface(c net.Conn) error {
	var b [4]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return err
	}
	if binary.BigEndian.Uint32(b[:]) != MagicV2 {
		return errors.New("test server: peer did not send the v2 preface")
	}
	return nil
}

// countingDialer tracks dials and live (unclosed) connections.
type countingDialer struct {
	mu    sync.Mutex
	dials int
	live  int
	fail  int // dials to fail before succeeding
}

func (d *countingDialer) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	d.mu.Lock()
	d.dials++
	if d.fail > 0 {
		d.fail--
		d.mu.Unlock()
		return nil, errors.New("injected dial failure")
	}
	d.live++
	d.mu.Unlock()
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &countedConn{Conn: c, d: d}, nil
}

func (d *countingDialer) stats() (dials, live int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials, d.live
}

type countedConn struct {
	net.Conn
	d    *countingDialer
	once sync.Once
}

func (c *countedConn) Close() error {
	c.once.Do(func() {
		c.d.mu.Lock()
		c.d.live--
		c.d.mu.Unlock()
	})
	return c.Conn.Close()
}

func fastRetry(retries int) TransportConfig {
	return TransportConfig{
		RTTimeout: 500 * time.Millisecond,
		Retries:   retries,
		RetryBase: time.Millisecond,
		RetryMax:  4 * time.Millisecond,
	}
}

func TestCallRoundTrip(t *testing.T) {
	addr := frameServer(t, func(ty Type, p []byte) (Type, []byte, bool) {
		return ty + 1, append([]byte("ok:"), p...), true
	})
	ep := NewEndpoint(addr, nil, fastRetry(2))
	defer ep.Close()
	rt, rp, err := ep.Call(TLookupReq, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if rt != TLookupReq+1 || string(rp) != "ok:x" {
		t.Fatalf("got type %d payload %q", rt, rp)
	}
}

// TestCallRetriesTransientDialFailure: a dial that fails once succeeds on
// the retry attempt without surfacing an error to the caller.
func TestCallRetriesTransientDialFailure(t *testing.T) {
	addr := frameServer(t, func(ty Type, p []byte) (Type, []byte, bool) {
		return ty, p, true
	})
	d := &countingDialer{fail: 1}
	ep := NewEndpoint(addr, d, fastRetry(2))
	defer ep.Close()
	if _, _, err := ep.Call(TListReq, nil); err != nil {
		t.Fatalf("call with one transient dial failure: %v", err)
	}
	if dials, _ := d.stats(); dials != 2 {
		t.Fatalf("dials = %d, want 2 (1 failed + 1 good)", dials)
	}
}

// TestRemoteErrorFinalAndConnKept: a remote application error must not be
// retried, and the healthy connection must stay cached for the next call.
func TestRemoteErrorFinalAndConnKept(t *testing.T) {
	var calls atomic.Int64
	addr := frameServer(t, func(ty Type, p []byte) (Type, []byte, bool) {
		calls.Add(1)
		return TError, ErrorMsg{Msg: "nope", Code: CodeNotFound}.Encode(), true
	})
	d := &countingDialer{}
	ep := NewEndpoint(addr, d, fastRetry(3))
	defer ep.Close()

	_, _, err := ep.Call(TLookupReq, nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeNotFound {
		t.Fatalf("err = %v, want *RemoteError with CodeNotFound", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1 (remote errors are final)", n)
	}
	if _, _, err := ep.Call(TLookupReq, nil); err == nil || !errors.As(err, &re) {
		t.Fatalf("second call = %v, want remote error on the cached conn", err)
	}
	if dials, _ := d.stats(); dials != 1 {
		t.Fatalf("dials = %d, want 1 (remote error must not discard the conn)", dials)
	}
}

// TestTransportErrorDiscardsConn is the regression test for the dead
// connection leak: when the peer dies mid-round-trip, the endpoint must
// close the broken connection (not strand it) and redial for the next
// attempt.
func TestTransportErrorDiscardsConn(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	addr := frameServer(t, func(ty Type, p []byte) (Type, []byte, bool) {
		if failing.Load() {
			return 0, nil, false // slam the connection, no response
		}
		return ty, p, true
	})
	d := &countingDialer{}
	ep := NewEndpoint(addr, d, fastRetry(1))
	defer ep.Close()

	_, _, err := ep.Call(TListReq, nil)
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransportError", err)
	}
	if te.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", te.Attempts)
	}
	dials, live := d.stats()
	if dials != 2 {
		t.Fatalf("dials = %d, want 2 (fresh conn per attempt)", dials)
	}
	if live != 0 {
		t.Fatalf("%d broken connections still open — the leak is back", live)
	}

	failing.Store(false)
	if _, _, err := ep.Call(TListReq, nil); err != nil {
		t.Fatalf("call after peer recovery: %v", err)
	}
	if _, live := d.stats(); live != 1 {
		t.Fatalf("live conns = %d, want exactly the one cached conn", live)
	}
}

// TestCallTimeoutBounded: a peer that accepts but never answers must cost
// at most ~(attempts x RTTimeout + backoff), not hang.
func TestCallTimeoutBounded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			// Read and ignore everything; never respond.
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	cfg := fastRetry(-1) // single attempt
	cfg.RTTimeout = 150 * time.Millisecond
	ep := NewEndpoint(ln.Addr().String(), nil, cfg)
	defer ep.Close()

	start := time.Now()
	_, _, err = ep.Call(TListReq, nil)
	elapsed := time.Since(start)
	var te *TransportError
	if !errors.As(err, &te) || !te.Timeout() {
		t.Fatalf("err = %v, want timing-out *TransportError", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("silent peer cost %v, want bounded by ~RTTimeout", elapsed)
	}
}

// TestBackoffDeterministicAndBounded: same seed, same schedule; every
// delay lies in [base/2, max].
func TestBackoffDeterministicAndBounded(t *testing.T) {
	cfg := TransportConfig{RetryBase: 10 * time.Millisecond, RetryMax: 80 * time.Millisecond, Seed: 99}
	a := NewEndpoint("x", nil, cfg)
	b := NewEndpoint("x", nil, cfg)
	for attempt := 1; attempt <= 6; attempt++ {
		da := a.backoff(attempt)
		db := b.backoff(attempt)
		if da != db {
			t.Fatalf("attempt %d: %v vs %v with identical seeds", attempt, da, db)
		}
		if da < cfg.RetryBase/2 || da > cfg.RetryMax {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]",
				attempt, da, cfg.RetryBase/2, cfg.RetryMax)
		}
	}
}

func TestCallAfterClose(t *testing.T) {
	addr := frameServer(t, func(ty Type, p []byte) (Type, []byte, bool) { return ty, p, true })
	ep := NewEndpoint(addr, nil, fastRetry(2))
	if _, _, err := ep.Call(TListReq, nil); err != nil {
		t.Fatal(err)
	}
	ep.Close()
	_, _, err := ep.Call(TListReq, nil)
	if !errors.Is(err, net.ErrClosed) {
		t.Fatalf("call after close = %v, want net.ErrClosed", err)
	}
}
