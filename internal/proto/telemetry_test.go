package proto

import (
	"testing"
	"time"

	"eevfs/internal/telemetry"
)

// TestEndpointTelemetry drives one endpoint through a success, a retried
// dial failure, and a remote error, and checks the registry saw each.
func TestEndpointTelemetry(t *testing.T) {
	addr := frameServer(t, func(ty Type, payload []byte) (Type, []byte, bool) {
		if ty == TError { // abused as a "please fail" request marker
			return TError, ErrorMsg{Msg: "boom", Code: CodeNotFound}.Encode(), true
		}
		return ty, payload, true
	})

	reg := telemetry.NewRegistry()
	d := &countingDialer{fail: 1}
	ep := NewEndpoint(addr, d, TransportConfig{
		Retries:   2,
		RetryBase: time.Millisecond,
		RetryMax:  2 * time.Millisecond,
		Metrics:   reg,
	})
	defer ep.Close()

	// First call: the injected dial failure burns attempt 1, the retry
	// succeeds.
	if _, _, err := ep.Call(TListReq, nil); err != nil {
		t.Fatal(err)
	}
	// Second call: a remote application error.
	if _, _, err := ep.Call(TError, nil); err == nil {
		t.Fatal("expected remote error")
	}

	snap := reg.Snapshot()
	if got := snap.Counters["proto.rt.calls"]; got != 2 {
		t.Errorf("calls = %d, want 2", got)
	}
	if got := snap.Counters["proto.rt.retries"]; got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	if got := snap.Counters["proto.rt.errors.remote"]; got != 1 {
		t.Errorf("remote errors = %d, want 1", got)
	}
	if got := snap.Counters["proto.rt.errors.remote.not-found"]; got != 1 {
		t.Errorf("remote not-found errors = %d, want 1", got)
	}
	if got := snap.Histograms["proto.rt.seconds"].Count; got != 2 {
		t.Errorf("latency observations = %d, want 2", got)
	}
}

// TestEndpointTelemetryTransportFailure checks the transport-error and
// timeout counters on an endpoint whose every dial fails.
func TestEndpointTelemetryTransportFailure(t *testing.T) {
	reg := telemetry.NewRegistry()
	d := &countingDialer{fail: 100}
	ep := NewEndpoint("127.0.0.1:1", d, TransportConfig{
		Retries:   1,
		RetryBase: time.Millisecond,
		RetryMax:  2 * time.Millisecond,
		Metrics:   reg,
	})
	defer ep.Close()
	if _, _, err := ep.Call(TListReq, nil); err == nil {
		t.Fatal("expected transport error")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["proto.rt.errors.transport"]; got != 1 {
		t.Errorf("transport errors = %d, want 1", got)
	}
	if got := snap.Counters["proto.rt.retries"]; got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
}

// TestEndpointNoMetrics pins the no-op mode: calls on an uninstrumented
// endpoint work and nothing panics.
func TestEndpointNoMetrics(t *testing.T) {
	addr := frameServer(t, func(ty Type, payload []byte) (Type, []byte, bool) {
		return ty, payload, true
	})
	ep := NewEndpoint(addr, nil, TransportConfig{})
	defer ep.Close()
	if _, _, err := ep.Call(TListReq, nil); err != nil {
		t.Fatal(err)
	}
}
