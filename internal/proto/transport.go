// Transport: the connection-management layer under every EEVFS round
// trip. The paper's process flow keeps one persistent TCP connection per
// peer (server -> each storage node, client -> server and nodes); an
// Endpoint owns such a connection and gives every round trip a connect
// deadline, an overall round-trip deadline, and bounded retries with
// jittered exponential backoff. The connection is multiplexed (v2
// framing): any number of callers may have round trips in flight
// concurrently, correlated by request id, so a storage server fanning
// prefetch reads across nodes no longer pays head-of-line latency.
// Transport failures discard the connection — a half-written request,
// half-read response, or missing response poisons the stream, failing
// every outstanding request — and surface as *TransportError; remote
// application failures surface as *RemoteError, never retry, and leave
// the connection (and its other in-flight requests) untouched.
package proto

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"eevfs/internal/telemetry"
)

// Dialer opens transport connections. The production implementation is
// NetDialer; chaos tests inject a *faultnet.Network.
type Dialer interface {
	Dial(addr string, timeout time.Duration) (net.Conn, error)
}

// NetDialer is the plain-TCP Dialer.
type NetDialer struct{}

// Dial implements Dialer.
func (NetDialer) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// Transport timeout/retry defaults.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultRTTimeout   = 10 * time.Second
	DefaultRetries     = 2
	DefaultRetryBase   = 25 * time.Millisecond
	DefaultRetryMax    = 1 * time.Second
)

// TransportConfig bounds and retries every round trip on an Endpoint.
// Zero fields take the Default* constants.
type TransportConfig struct {
	// DialTimeout bounds establishing the TCP connection.
	DialTimeout time.Duration
	// RTTimeout bounds one whole round trip (request write + response
	// read) once connected.
	RTTimeout time.Duration
	// Retries is how many additional attempts follow a failed one.
	// Negative disables retrying (a single attempt).
	Retries int
	// RetryBase is the first backoff delay; it doubles per attempt.
	RetryBase time.Duration
	// RetryMax caps the backoff delay.
	RetryMax time.Duration
	// Seed seeds the backoff jitter (0 = a fixed default), keeping retry
	// schedules reproducible in tests.
	Seed int64
	// Metrics, when set, receives per-round-trip telemetry: the
	// proto.rt.seconds latency histogram plus calls / retries / timeouts
	// / error-class counters, aggregated across every endpoint sharing
	// the registry. Nil disables instrumentation at no cost.
	Metrics *telemetry.Registry
}

func (c TransportConfig) withDefaults() TransportConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.RTTimeout <= 0 {
		c.RTTimeout = DefaultRTTimeout
	}
	if c.Retries == 0 {
		c.Retries = DefaultRetries
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = DefaultRetryBase
	}
	if c.RetryMax <= 0 {
		c.RetryMax = DefaultRetryMax
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TransportError reports a round trip that failed below the application
// layer: dial failure, timeout, reset, or short frame. The last attempt's
// underlying error is wrapped.
type TransportError struct {
	Addr     string
	Attempts int
	Err      error
}

// Error implements error.
func (e *TransportError) Error() string {
	return fmt.Sprintf("proto: transport to %s failed after %d attempt(s): %v",
		e.Addr, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// Timeout reports whether the final attempt died on a deadline.
func (e *TransportError) Timeout() bool {
	var ne net.Error
	return errors.As(e.Err, &ne) && ne.Timeout()
}

// epMetrics holds an endpoint's pre-resolved metric handles, so the
// round-trip hot path never touches the registry's lock. All fields are
// nil (no-op) when TransportConfig.Metrics is unset.
type epMetrics struct {
	reg         *telemetry.Registry
	calls       *telemetry.Counter
	retries     *telemetry.Counter
	timeouts    *telemetry.Counter
	transportEs *telemetry.Counter
	remoteEs    *telemetry.Counter
	latency     *telemetry.Histogram
	inflight    *telemetry.Gauge
	queueDepth  *telemetry.Histogram

	streamOpens  *telemetry.Counter
	streamBytes  *telemetry.Counter
	streamChunks *telemetry.Counter
}

func newEpMetrics(reg *telemetry.Registry) epMetrics {
	return epMetrics{
		reg:         reg,
		calls:       reg.Counter("proto.rt.calls"),
		retries:     reg.Counter("proto.rt.retries"),
		timeouts:    reg.Counter("proto.rt.timeouts"),
		transportEs: reg.Counter("proto.rt.errors.transport"),
		remoteEs:    reg.Counter("proto.rt.errors.remote"),
		latency:     reg.Histogram("proto.rt.seconds", nil),
		inflight:    reg.Gauge("proto.inflight"),
		queueDepth:  reg.Histogram("proto.queue.depth", nil),

		streamOpens:  reg.Counter("proto.stream.opens"),
		streamBytes:  reg.Counter("proto.stream.bytes"),
		streamChunks: reg.Counter("proto.stream.chunks"),
	}
}

// Endpoint is one peer's persistent multiplexed connection plus the
// retry policy around it. Any number of goroutines may Call concurrently;
// their round trips are pipelined on the single connection (the paper's
// one persistent connection per storage node, now kept busy with
// overlapped work instead of idle waits) and correlated back by request
// id. The zero value is not usable; call NewEndpoint.
type Endpoint struct {
	addr string
	dial Dialer
	cfg  TransportConfig
	met  epMetrics

	mu     sync.Mutex
	cur    *muxConn // current connection generation (nil before first use)
	rng    *rand.Rand
	closed bool
}

// NewEndpoint prepares (without dialing) an endpoint for addr. A nil
// dialer means plain TCP.
func NewEndpoint(addr string, d Dialer, cfg TransportConfig) *Endpoint {
	if d == nil {
		d = NetDialer{}
	}
	cfg = cfg.withDefaults()
	return &Endpoint{
		addr: addr,
		dial: d,
		cfg:  cfg,
		met:  newEpMetrics(cfg.Metrics),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Addr returns the peer address.
func (e *Endpoint) Addr() string { return e.addr }

// Connect dials eagerly (Call otherwise dials lazily on first use).
func (e *Endpoint) Connect() error {
	_, err := e.conn()
	return err
}

// Close discards the connection — outstanding round trips fail with a
// typed transport error — and makes every later Call return
// net.ErrClosed (wrapped).
func (e *Endpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	m := e.cur
	e.cur = nil
	e.mu.Unlock()
	if m != nil {
		m.poison(net.ErrClosed)
	}
	return nil
}

// conn returns the live connection generation, dialing a fresh one when
// there is none (first use, or the previous generation was poisoned).
func (e *Endpoint) conn() (*muxConn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, net.ErrClosed
	}
	if e.cur != nil && e.cur.alive() {
		return e.cur, nil
	}
	c, err := e.dial.Dial(e.addr, e.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	e.cur = newMuxConn(c, e.met)
	return e.cur, nil
}

// dropConn clears the current generation if it is still m; the poisoned
// muxConn already closed its socket and failed its pending requests.
func (e *Endpoint) dropConn(m *muxConn) {
	e.mu.Lock()
	if e.cur == m {
		e.cur = nil
	}
	e.mu.Unlock()
}

// backoff returns the jittered delay before retry attempt n >= 1:
// RetryBase doubled per attempt, capped at RetryMax, jittered to
// [50%, 100%] so synchronized retry storms decorrelate.
func (e *Endpoint) backoff(attempt int) time.Duration {
	d := e.cfg.RetryBase
	for i := 1; i < attempt && d < e.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > e.cfg.RetryMax {
		d = e.cfg.RetryMax
	}
	e.mu.Lock()
	j := time.Duration(e.rng.Int63n(int64(d/2) + 1))
	e.mu.Unlock()
	return d/2 + j
}

// Call performs one round trip with the configured deadlines and
// retries. Remote application errors (*RemoteError) are final and leave
// the connection cached; any transport error poisons the connection
// generation (failing every other in-flight request on it) before the
// next attempt — a dead stream must never leak into a later round trip.
func (e *Endpoint) Call(t Type, payload []byte) (Type, []byte, error) {
	e.met.calls.Inc()
	start := time.Now()
	var last error
	attempts := 0
	for attempt := 0; attempt <= e.cfg.Retries; attempt++ {
		if attempt > 0 {
			e.met.retries.Inc()
			time.Sleep(e.backoff(attempt))
		}
		attempts++
		m, err := e.conn()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				e.met.transportEs.Inc()
				return 0, nil, &TransportError{Addr: e.addr, Attempts: attempts, Err: err}
			}
			last = err
			continue
		}
		// On a generation carrying open streams the response legitimately
		// queues behind their bulk data frames, so the round trip gets the
		// stream stall bound instead of the bare deadline: a premature
		// timeout here poisons the generation and takes every healthy
		// stream down with it.
		timeout := e.cfg.RTTimeout
		if m.hasStreams() {
			timeout = StreamStallTimeout(timeout)
		}
		rt, rp, err := m.roundTrip(t, payload, timeout)
		if err == nil {
			e.met.latency.Observe(time.Since(start).Seconds())
			return rt, rp, nil
		}
		var re *RemoteError
		if errors.As(err, &re) {
			// The peer answered; the round trip itself succeeded, so it
			// counts toward latency, and the failure is classified by
			// its wire code (cold path: registry lookup is fine here).
			e.met.latency.Observe(time.Since(start).Seconds())
			e.met.remoteEs.Inc()
			e.met.reg.Counter("proto.rt.errors.remote." + re.Code.String()).Inc()
			return 0, nil, err
		}
		e.dropConn(m)
		last = err
	}
	terr := &TransportError{Addr: e.addr, Attempts: attempts, Err: last}
	e.met.transportEs.Inc()
	if terr.Timeout() {
		e.met.timeouts.Inc()
	}
	return 0, nil, terr
}

// CallCtx is Call with a trace context attached to the request frame.
// The context is encoded once up front — retries resend the same traced
// frame — and a zero context degrades to a plain Call, so call sites
// pass whatever span context they hold without branching.
func (e *Endpoint) CallCtx(t Type, payload []byte, sc telemetry.SpanContext) (Type, []byte, error) {
	t, payload = AttachContext(t, payload, sc)
	return e.Call(t, payload)
}
