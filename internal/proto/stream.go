// Streaming data plane (DESIGN.md §19): chunked TDataFrames interleaved
// by request id on the multiplexed connection, so multi-MB files move
// through O(chunk) memory instead of one whole-payload response frame.
//
// Wire shape of a read stream (client pulls from a node):
//
//	client                             node
//	  TStreamReadReq{file, chunk, win} ->
//	                                   <- TStreamOpenResp{fromBuffer, size}
//	                                   <- TDataFrame xN   (within win credits)
//	  TStreamCredit{n} ->                                 (replenish)
//	                                   <- TStreamEnd      (clean end)
//
// A write stream is the mirror image: the node grants the window in its
// TStreamOpenResp, the client sends TDataFrames within it, closes with
// TStreamEnd, and the node answers with a final TStreamEnd{Buffered}.
// Either side may send TStreamAbort (an ErrorMsg payload) instead; it
// terminates the stream with a typed *RemoteError and leaves the
// connection — and every other stream and round trip on it — healthy.
// Transport faults keep the all-or-nothing rule: poisoning a connection
// generation fails every open stream with the same typed error.
package proto

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"eevfs/internal/telemetry"
)

// Stream chunk/window defaults and bounds. The chunk pool recycles
// buffers of DefaultStreamChunk capacity, so negotiated chunk sizes at or
// under it are allocation-free in steady state.
const (
	DefaultStreamChunk  = 256 << 10
	MinStreamChunk      = 512
	MaxStreamChunk      = 4 << 20
	DefaultStreamWindow = 8
	MaxStreamWindow     = 64

	// streamRecvSlack pads a stream's receive queue past its credit
	// window: control frames (open response, end, abort, credits) ride
	// the same queue as data chunks. Exceeding window+slack means the
	// peer is violating flow control and poisons the connection.
	streamRecvSlack = 8
)

// chunkPool recycles stream chunk payload buffers (cf. the frame pool:
// steady-state streaming allocates nothing per chunk).
var chunkPool = sync.Pool{New: func() any {
	b := make([]byte, DefaultStreamChunk)
	return &b
}}

// GetChunk returns a length-n buffer, pooled when n fits the standard
// chunk capacity. Pair with PutChunk.
func GetChunk(n int) []byte {
	if n <= DefaultStreamChunk {
		bp := chunkPool.Get().(*[]byte)
		return (*bp)[:n]
	}
	return make([]byte, n)
}

// PutChunk returns a GetChunk buffer to the pool. Oversized buffers are
// dropped for the GC.
func PutChunk(b []byte) {
	if cap(b) != DefaultStreamChunk {
		return
	}
	b = b[:DefaultStreamChunk]
	chunkPool.Put(&b)
}

// NegotiateChunk picks the effective chunk size for one stream: the
// requester's ask, falling back to the serving side's preference, falling
// back to the default — always clamped to the protocol bounds.
func NegotiateChunk(requested uint32, preferred int64) int {
	c := int(requested)
	if c == 0 {
		if preferred > 0 {
			c = int(preferred)
		} else {
			c = DefaultStreamChunk
		}
	}
	if c < MinStreamChunk {
		c = MinStreamChunk
	}
	if c > MaxStreamChunk {
		c = MaxStreamChunk
	}
	return c
}

// ClampStreamWindow bounds a requested credit window (0 = default).
func ClampStreamWindow(requested uint32) int {
	w := int(requested)
	if w == 0 {
		w = DefaultStreamWindow
	}
	if w > MaxStreamWindow {
		w = MaxStreamWindow
	}
	return w
}

// StreamOpenReq opens a stream. For reads Size is 0 (the node knows);
// for writes it declares the exact byte count that will follow, so
// placement and buffer-capacity decisions happen before data moves.
// ChunkSize and Window are requests the serving side may clamp.
type StreamOpenReq struct {
	FileID    int64
	Size      int64
	ChunkSize uint32
	Window    uint32
}

// Encode serializes the message body.
func (m StreamOpenReq) Encode() []byte {
	var e Encoder
	return e.I64(m.FileID).I64(m.Size).U32(m.ChunkSize).U32(m.Window).Bytes()
}

// DecodeStreamOpenReq parses a StreamOpenReq payload.
func DecodeStreamOpenReq(b []byte) (StreamOpenReq, error) {
	d := NewDecoder(b)
	m := StreamOpenReq{FileID: d.I64(), Size: d.I64(), ChunkSize: d.U32(), Window: d.U32()}
	return m, d.Err()
}

// StreamOpenResp acknowledges a stream open with the negotiated
// parameters. For reads it also carries the total size to follow and
// whether the buffer disk serves it; for writes Window is the credit
// grant the client sends data under.
type StreamOpenResp struct {
	FromBuffer bool
	Size       int64
	ChunkSize  uint32
	Window     uint32
}

// Encode serializes the message body.
func (m StreamOpenResp) Encode() []byte {
	var e Encoder
	return e.Bool(m.FromBuffer).I64(m.Size).U32(m.ChunkSize).U32(m.Window).Bytes()
}

// DecodeStreamOpenResp parses a StreamOpenResp payload.
func DecodeStreamOpenResp(b []byte) (StreamOpenResp, error) {
	d := NewDecoder(b)
	m := StreamOpenResp{FromBuffer: d.Bool(), Size: d.I64(), ChunkSize: d.U32(), Window: d.U32()}
	return m, d.Err()
}

// StreamEnd terminates a stream direction cleanly. The node's final
// frame on a write stream carries Buffered (whether the write-buffer
// area absorbed the content); everywhere else the flag is false.
type StreamEnd struct{ Buffered bool }

// Encode serializes the message body.
func (m StreamEnd) Encode() []byte { var e Encoder; return e.Bool(m.Buffered).Bytes() }

// DecodeStreamEnd parses a StreamEnd payload; an empty payload decodes
// to the zero value so bare end frames stay legal.
func DecodeStreamEnd(b []byte) (StreamEnd, error) {
	if len(b) == 0 {
		return StreamEnd{}, nil
	}
	d := NewDecoder(b)
	m := StreamEnd{Buffered: d.Bool()}
	return m, d.Err()
}

// StreamCredit replenishes N send credits on a stream.
type StreamCredit struct{ N uint32 }

// Encode serializes the message body.
func (m StreamCredit) Encode() []byte { var e Encoder; return e.U32(m.N).Bytes() }

// DecodeStreamCredit parses a StreamCredit payload.
func DecodeStreamCredit(b []byte) (StreamCredit, error) {
	d := NewDecoder(b)
	m := StreamCredit{N: d.U32()}
	return m, d.Err()
}

// errStreamClosed reports use of a stream after its owner closed it.
var errStreamClosed = errors.New("proto: stream closed")

// remoteStreamError turns an inbound TStreamAbort/TError payload into the
// typed application error every RPC path already surfaces.
func remoteStreamError(payload []byte) error {
	em, derr := DecodeErrorMsg(payload)
	if derr != nil {
		return fmt.Errorf("proto: undecodable stream abort: %w", derr)
	}
	return &RemoteError{Code: em.Code, Msg: em.Msg, Redirect: em.Redirect}
}

// streamStallFactor scales a transport deadline into the per-frame
// stall bound for an open stream. An RPC response is the only frame its
// round trip waits on, but a stream chunk (or a flow-control credit, on
// the sending side) legitimately queues behind other streams' data
// frames and credit round trips on the shared multiplexed connection,
// so the stall bound must budget for that interleaving — the bare
// round-trip deadline misfires under concurrent streams on a slow link.
const streamStallFactor = 8

// StreamStallTimeout converts a single-round-trip deadline (RTTimeout on
// the client, the write timeout on a serving node) into the bound a
// stream applies between consecutive frames.
func StreamStallTimeout(rt time.Duration) time.Duration {
	return rt * streamStallFactor
}

// awaitStreamMsg blocks for the next inbound frame of one stream:
// queued frames first, then the generation's death or the deadline. A
// deadline expiry poisons the whole generation, exactly like an RPC
// round-trip timeout — a stream frame that never arrived leaves every
// in-flight id in doubt.
func awaitStreamMsg(m *muxConn, st *muxStream, timeout time.Duration) (streamMsg, error) {
	select {
	case msg := <-st.recv:
		return msg, nil
	default:
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case msg := <-st.recv:
		return msg, nil
	case <-st.done:
		// Drain one more time: deliveries may have raced the poison.
		select {
		case msg := <-st.recv:
			return msg, nil
		default:
		}
		return streamMsg{}, st.fault()
	case <-timer.C:
		m.poison(errRTTimeout{})
		return streamMsg{}, errRTTimeout{}
	}
}

// ReadStream is the client side of one open read stream: an
// io.ReadCloser pulling pooled chunks off the multiplexed connection,
// replenishing flow-control credits as it consumes them.
type ReadStream struct {
	ep *Endpoint
	m  *muxConn
	st *muxStream

	resp    StreamOpenResp
	timeout time.Duration
	window  int

	cur     []byte // current pooled chunk (nil between chunks)
	curOff  int
	owed    int // consumed chunks not yet credited back to the sender
	err     error
	closed  bool
	settled bool // terminal frame consumed; stream already deregistered
}

// FromBuffer reports whether the node serves this stream from its buffer
// disk.
func (s *ReadStream) FromBuffer() bool { return s.resp.FromBuffer }

// Size returns the total byte count the stream will deliver.
func (s *ReadStream) Size() int64 { return s.resp.Size }

// transportErr wraps a generation-level fault the way Call does, so
// errors.As(err, **TransportError) works identically for streams.
func (s *ReadStream) transportErr(err error) error {
	var re *RemoteError
	if errors.As(err, &re) {
		return err
	}
	s.ep.met.transportEs.Inc()
	return &TransportError{Addr: s.ep.addr, Attempts: 1, Err: err}
}

// Read implements io.Reader. Mid-stream faults are never retried — a
// partially consumed stream cannot be transparently replayed — and
// surface typed: *RemoteError for peer aborts, *TransportError for
// connection faults.
func (s *ReadStream) Read(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	for s.cur == nil || s.curOff >= len(s.cur) {
		if s.cur != nil {
			PutChunk(s.cur)
			s.cur, s.curOff = nil, 0
			s.owed++
			if s.owed >= s.window/2 || s.owed >= s.window {
				if err := s.m.send(wireFrame{t: TStreamCredit, id: s.st.id,
					payload: StreamCredit{N: uint32(s.owed)}.Encode()}); err != nil {
					s.err = s.transportErr(err)
					return 0, s.err
				}
				s.owed = 0
			}
		}
		msg, err := awaitStreamMsg(s.m, s.st, s.timeout)
		if err != nil {
			s.err = s.transportErr(err)
			return 0, s.err
		}
		switch msg.t {
		case TDataFrame:
			s.cur, s.curOff = msg.payload, 0
			s.ep.met.streamChunks.Inc()
			s.ep.met.streamBytes.Add(int64(len(msg.payload)))
		case TStreamEnd:
			s.settle()
			s.err = io.EOF
			return 0, io.EOF
		case TStreamAbort, TError:
			s.settle()
			s.err = remoteStreamError(msg.payload)
			return 0, s.err
		default:
			err := fmt.Errorf("proto: unexpected frame type %d on read stream", msg.t)
			s.m.poison(err)
			s.err = s.transportErr(err)
			return 0, s.err
		}
	}
	n := copy(p, s.cur[s.curOff:])
	s.curOff += n
	return n, nil
}

// settle deregisters the stream after its terminal frame.
func (s *ReadStream) settle() {
	s.settled = true
	s.m.removeStream(s.st)
}

// Close releases the stream. Closing before the terminal frame aborts
// the transfer upstream: the node stops sending, and any chunks already
// in flight are discarded without disturbing other streams or round
// trips on the connection.
func (s *ReadStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.cur != nil {
		PutChunk(s.cur)
		s.cur = nil
	}
	if !s.settled && s.err == nil {
		// Early close: discard the remainder and tell the node to stop.
		// The stream stays registered in discard mode until the node's
		// terminal frame (or the generation's death) retires the id.
		s.st.setDiscard()
		_ = s.m.send(wireFrame{t: TStreamAbort, id: s.st.id,
			payload: ErrorMsg{Msg: "stream closed by reader"}.Encode()})
		s.err = errStreamClosed
	} else if !s.settled {
		// Faulted without a terminal frame: the generation poisoned, so
		// the id died with it.
		s.m.removeStream(s.st)
	}
	if s.err == nil {
		s.err = errStreamClosed
	}
	return nil
}

// WriteStream is the client side of one open write stream: an
// io.WriteCloser pushing pooled chunks under the node-granted credit
// window. Close sends the end-of-stream marker and waits for the node's
// final acknowledgement.
type WriteStream struct {
	ep *Endpoint
	m  *muxConn
	st *muxStream

	timeout time.Duration
	chunk   int
	credits int

	buffered bool
	err      error
	closed   bool
	settled  bool
}

// Write implements io.Writer: the bytes are chunked, copied into pooled
// buffers (the writer goroutine sends them asynchronously), and sent
// within the credit window.
func (s *WriteStream) Write(p []byte) (int, error) {
	if s.closed {
		return 0, errStreamClosed
	}
	if s.err != nil {
		return 0, s.err
	}
	total := 0
	for len(p) > 0 {
		if err := s.waitCredit(); err != nil {
			s.err = err
			return total, err
		}
		n := len(p)
		if n > s.chunk {
			n = s.chunk
		}
		buf := GetChunk(n)
		copy(buf, p[:n])
		if err := s.m.send(wireFrame{t: TDataFrame, id: s.st.id, payload: buf, pooled: true}); err != nil {
			PutChunk(buf)
			s.err = s.transportErr(err)
			return total, s.err
		}
		s.credits--
		p = p[n:]
		total += n
		s.ep.met.streamChunks.Inc()
		s.ep.met.streamBytes.Add(int64(n))
	}
	return total, nil
}

func (s *WriteStream) transportErr(err error) error {
	var re *RemoteError
	if errors.As(err, &re) {
		return err
	}
	s.ep.met.transportEs.Inc()
	return &TransportError{Addr: s.ep.addr, Attempts: 1, Err: err}
}

// waitCredit consumes inbound control frames until a send credit is
// available. A peer abort or connection fault surfaces typed.
func (s *WriteStream) waitCredit() error {
	for s.credits <= 0 {
		msg, err := awaitStreamMsg(s.m, s.st, s.timeout)
		if err != nil {
			return s.transportErr(err)
		}
		switch msg.t {
		case TStreamCredit:
			c, derr := DecodeStreamCredit(msg.payload)
			if derr != nil {
				s.m.poison(derr)
				return s.transportErr(derr)
			}
			s.credits += int(c.N)
		case TStreamAbort, TError:
			s.settle()
			return remoteStreamError(msg.payload)
		default:
			err := fmt.Errorf("proto: unexpected frame type %d on write stream", msg.t)
			s.m.poison(err)
			return s.transportErr(err)
		}
	}
	return nil
}

func (s *WriteStream) settle() {
	s.settled = true
	s.m.removeStream(s.st)
}

// Buffered reports whether the node's write-buffer area absorbed the
// streamed content. Valid after a successful Close.
func (s *WriteStream) Buffered() bool { return s.buffered }

// Close sends the end-of-stream marker and waits for the node's final
// acknowledgement (TStreamEnd carrying the buffered flag). Closing a
// stream that already failed just releases it.
func (s *WriteStream) Close() error {
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.err != nil {
		if !s.settled {
			s.st.setDiscard()
			_ = s.m.send(wireFrame{t: TStreamAbort, id: s.st.id,
				payload: ErrorMsg{Msg: "stream closed by writer"}.Encode()})
		}
		return s.err
	}
	if err := s.m.send(wireFrame{t: TStreamEnd, id: s.st.id, payload: StreamEnd{}.Encode()}); err != nil {
		s.err = s.transportErr(err)
		return s.err
	}
	for {
		msg, err := awaitStreamMsg(s.m, s.st, s.timeout)
		if err != nil {
			s.err = s.transportErr(err)
			return s.err
		}
		switch msg.t {
		case TStreamCredit:
			// Late replenishment racing our end marker; ignore.
		case TStreamEnd:
			end, derr := DecodeStreamEnd(msg.payload)
			if derr != nil {
				s.m.poison(derr)
				s.err = s.transportErr(derr)
				return s.err
			}
			s.buffered = end.Buffered
			s.settle()
			return nil
		case TStreamAbort, TError:
			s.settle()
			s.err = remoteStreamError(msg.payload)
			return s.err
		default:
			err := fmt.Errorf("proto: unexpected frame type %d closing write stream", msg.t)
			s.m.poison(err)
			s.err = s.transportErr(err)
			return s.err
		}
	}
}

// openStream dials (or reuses) a connection generation, registers a
// stream id, sends the open frame, and waits for the peer's verdict.
// Opens are side-effect-free until data flows, so transport faults are
// retried exactly like Call; a *RemoteError rejection is final.
func (e *Endpoint) openStream(t Type, req StreamOpenReq, window int, sc telemetry.SpanContext) (*muxConn, *muxStream, StreamOpenResp, error) {
	e.met.calls.Inc()
	var last error
	attempts := 0
	for attempt := 0; attempt <= e.cfg.Retries; attempt++ {
		if attempt > 0 {
			e.met.retries.Inc()
			time.Sleep(e.backoff(attempt))
		}
		attempts++
		m, err := e.conn()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				e.met.transportEs.Inc()
				return nil, nil, StreamOpenResp{}, &TransportError{Addr: e.addr, Attempts: attempts, Err: err}
			}
			last = err
			continue
		}
		st, err := m.registerStream(window)
		if err != nil {
			e.dropConn(m)
			last = err
			continue
		}
		ft, payload := AttachContext(t, req.Encode(), sc)
		if err := m.send(wireFrame{t: ft, id: st.id, payload: payload}); err != nil {
			e.dropConn(m)
			last = err
			continue
		}
		// The open response queues behind other streams' data frames on
		// the shared connection, so it gets the stall bound, not the
		// bare RPC deadline — a premature timeout here poisons the
		// generation and takes healthy streams down with it.
		msg, err := awaitStreamMsg(m, st, StreamStallTimeout(e.cfg.RTTimeout))
		if err != nil {
			e.dropConn(m)
			last = err
			continue
		}
		switch msg.t {
		case TStreamOpenResp:
			resp, derr := DecodeStreamOpenResp(msg.payload)
			if derr != nil {
				m.poison(derr)
				e.dropConn(m)
				last = derr
				continue
			}
			e.met.streamOpens.Inc()
			return m, st, resp, nil
		case TError, TStreamAbort:
			m.removeStream(st)
			rerr := remoteStreamError(msg.payload)
			var re *RemoteError
			if errors.As(rerr, &re) {
				e.met.remoteEs.Inc()
				e.met.reg.Counter("proto.rt.errors.remote." + re.Code.String()).Inc()
				return nil, nil, StreamOpenResp{}, rerr
			}
			m.poison(rerr)
			e.dropConn(m)
			last = rerr
		default:
			err := fmt.Errorf("proto: unexpected frame type %d answering stream open", msg.t)
			m.poison(err)
			e.dropConn(m)
			last = err
		}
	}
	terr := &TransportError{Addr: e.addr, Attempts: attempts, Err: last}
	e.met.transportEs.Inc()
	if terr.Timeout() {
		e.met.timeouts.Inc()
	}
	return nil, nil, StreamOpenResp{}, terr
}

// OpenReadStream opens a chunked read stream for req.FileID. The
// returned ReadStream delivers exactly resp.Size bytes (see Size) or a
// typed error; the caller must Close it.
func (e *Endpoint) OpenReadStream(req StreamOpenReq, sc telemetry.SpanContext) (*ReadStream, error) {
	window := ClampStreamWindow(req.Window)
	req.Window = uint32(window)
	req.Size = 0
	m, st, resp, err := e.openStream(TStreamReadReq, req, window, sc)
	if err != nil {
		return nil, err
	}
	return &ReadStream{
		ep: e, m: m, st: st,
		resp:    resp,
		timeout: StreamStallTimeout(e.cfg.RTTimeout),
		window:  window,
	}, nil
}

// OpenWriteStream opens a chunked write stream that will carry exactly
// req.Size bytes to req.FileID. The node's grant (chunk size and credit
// window) governs the returned WriteStream; the caller must Close it to
// commit the write.
func (e *Endpoint) OpenWriteStream(req StreamOpenReq, sc telemetry.SpanContext) (*WriteStream, error) {
	window := ClampStreamWindow(req.Window)
	req.Window = uint32(window)
	m, st, resp, err := e.openStream(TStreamWriteReq, req, window, sc)
	if err != nil {
		return nil, err
	}
	chunk := NegotiateChunk(resp.ChunkSize, 0)
	credits := int(resp.Window)
	if credits <= 0 {
		credits = DefaultStreamWindow
	}
	return &WriteStream{
		ep: e, m: m, st: st,
		timeout: StreamStallTimeout(e.cfg.RTTimeout),
		chunk:   chunk,
		credits: credits,
	}, nil
}
