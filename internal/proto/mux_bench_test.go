package proto

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// benchDelay simulates per-request service time at the peer. With a
// serialized connection, 8 callers pay 8 x benchDelay each round; a
// pipelined connection overlaps them. The delay makes the comparison
// about architecture, not loopback syscall latency.
const benchDelay = 100 * time.Microsecond

const benchCallers = 8

// benchServerV1 answers v1 frames one at a time, sleeping benchDelay per
// request — the pre-mux wire discipline.
func benchServerV1(b *testing.B) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				for {
					t, p, err := ReadFrame(c)
					if err != nil {
						return
					}
					time.Sleep(benchDelay)
					if err := WriteFrame(c, t, p); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// benchServerV2 answers v2 frames with a goroutine per request, sleeping
// the same benchDelay, so requests overlap server-side exactly as the
// fs daemons do.
func benchServerV2(b *testing.B) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				if err := consumePreface(c); err != nil {
					return
				}
				var wmu sync.Mutex
				for {
					t, id, p, err := ReadFrameID(c)
					if err != nil {
						return
					}
					go func() {
						time.Sleep(benchDelay)
						wmu.Lock()
						defer wmu.Unlock()
						WriteFrameID(c, t, id, p)
					}()
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// BenchmarkEndpointSerialized is the pre-mux architecture: 8 concurrent
// callers forced to take turns on one connection (a mutex-guarded v1
// RoundTrip), so round trips queue behind each other.
func BenchmarkEndpointSerialized(b *testing.B) {
	addr := benchServerV1(b)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	var mu sync.Mutex
	payload := []byte("bench-payload")

	b.SetParallelism(benchParallelism())
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			_, _, err := RoundTrip(conn, TLookupReq, payload)
			mu.Unlock()
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkEndpointPipelined is the same workload on the multiplexed
// endpoint: 8 concurrent callers share one connection with their round
// trips in flight simultaneously.
func BenchmarkEndpointPipelined(b *testing.B) {
	addr := benchServerV2(b)
	ep := NewEndpoint(addr, nil, TransportConfig{RTTimeout: 5 * time.Second, Retries: 0})
	defer ep.Close()
	payload := []byte("bench-payload")

	b.SetParallelism(benchParallelism())
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := ep.Call(TLookupReq, payload); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// benchParallelism sizes SetParallelism so RunParallel runs at least
// benchCallers goroutines regardless of GOMAXPROCS (SetParallelism
// multiplies its argument by GOMAXPROCS).
func benchParallelism() int {
	p := benchCallers / runtime.GOMAXPROCS(0)
	if p < 1 {
		return 1
	}
	return p
}
