package proto

// Replication messages: the metadata op log a primary server streams to
// its followers, the snapshot used to (re)sync a follower that missed
// ops, and the status probe followers use to watch the primary and run
// elections. All of it rides the same v2 mux as client traffic.

// RepOp kinds. A RepOp is one logged metadata mutation.
const (
	// RepOpCreate places a new file: Name, ID, Size, Node (and the
	// primary's post-placement round-robin cursor) are set.
	RepOpCreate uint32 = iota + 1
	// RepOpDelete removes Name from the namespace.
	RepOpDelete
	// RepOpAccess is a popularity epoch: the batch of access-journal
	// records appended on the primary since the last epoch.
	RepOpAccess
	// RepOpReplica sets or clears (Replica == 0) the buffer-disk replica
	// marker on Name.
	RepOpReplica
)

// RepAccess is one replicated access-journal record.
type RepAccess struct {
	FileID int64
	TimeS  float64
	Size   int64
}

// RepOp is one entry of the ordered metadata operation log. Seq numbers
// are dense and assigned by the primary; a follower applies op N+1 only
// after op N, acks duplicates idempotently, and reports a gap so the
// primary falls back to a snapshot.
type RepOp struct {
	Seq     uint64
	Kind    uint32
	Name    string
	ID      int64
	Size    int64
	Node    int64
	Replica int64 // replica node index + 1; 0 = none
	Cursor  int64 // primary's placement cursor after this op (RepOpCreate)
	Records []RepAccess
}

func (op RepOp) encode(e *Encoder) {
	e.U64(op.Seq).U32(op.Kind).Str(op.Name).I64(op.ID).I64(op.Size)
	e.I64(op.Node).I64(op.Replica).I64(op.Cursor)
	e.U32(uint32(len(op.Records)))
	for _, r := range op.Records {
		e.I64(r.FileID).F64(r.TimeS).I64(r.Size)
	}
}

func decodeRepOp(d *Decoder) RepOp {
	op := RepOp{
		Seq:  d.U64(),
		Kind: d.U32(),
		Name: d.Str(),
		ID:   d.I64(),
		Size: d.I64(),
	}
	op.Node = d.I64()
	op.Replica = d.I64()
	op.Cursor = d.I64()
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		op.Records = append(op.Records, RepAccess{FileID: d.I64(), TimeS: d.F64(), Size: d.I64()})
	}
	return op
}

// RepAppendReq carries a batch of consecutive ops from the primary.
// Epoch fences stale primaries: a receiver in a later epoch rejects the
// batch, and a primary receiving a batch from a later epoch steps down.
type RepAppendReq struct {
	Epoch uint64
	From  int64 // sender's index in the peer list
	Ops   []RepOp
}

// Encode serializes the message body.
func (m RepAppendReq) Encode() []byte {
	var e Encoder
	e.U64(m.Epoch).I64(m.From).U32(uint32(len(m.Ops)))
	for _, op := range m.Ops {
		op.encode(&e)
	}
	return e.Bytes()
}

// DecodeRepAppendReq parses a RepAppendReq payload.
func DecodeRepAppendReq(b []byte) (RepAppendReq, error) {
	d := NewDecoder(b)
	m := RepAppendReq{Epoch: d.U64(), From: d.I64()}
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.Ops = append(m.Ops, decodeRepOp(d))
	}
	return m, d.Err()
}

// RepAppendResp acks an append with the follower's last applied seq.
type RepAppendResp struct {
	LastSeq uint64
}

// Encode serializes the message body.
func (m RepAppendResp) Encode() []byte {
	var e Encoder
	return e.U64(m.LastSeq).Bytes()
}

// DecodeRepAppendResp parses a RepAppendResp payload.
func DecodeRepAppendResp(b []byte) (RepAppendResp, error) {
	d := NewDecoder(b)
	m := RepAppendResp{LastSeq: d.U64()}
	return m, d.Err()
}

// RepFile is one file record inside a snapshot, sorted by name so that
// equal metadata states always serialize to identical bytes.
type RepFile struct {
	Name    string
	ID      int64
	Size    int64
	Node    int64
	Replica int64 // replica node index + 1; 0 = none
}

// RepSnapshot is the full metadata state, used to sync a follower whose
// log position is unknown or gapped. It is also the canonical "state
// fingerprint": the determinism tests compare snapshot bytes across
// replicas.
type RepSnapshot struct {
	Epoch    uint64
	Seq      uint64
	From     int64
	NextID   int64
	NextNode int64
	Files    []RepFile
	Accesses []RepAccess
}

// Encode serializes the message body.
func (m RepSnapshot) Encode() []byte {
	var e Encoder
	e.U64(m.Epoch).U64(m.Seq).I64(m.From).I64(m.NextID).I64(m.NextNode)
	e.U32(uint32(len(m.Files)))
	for _, f := range m.Files {
		e.Str(f.Name).I64(f.ID).I64(f.Size).I64(f.Node).I64(f.Replica)
	}
	e.U32(uint32(len(m.Accesses)))
	for _, r := range m.Accesses {
		e.I64(r.FileID).F64(r.TimeS).I64(r.Size)
	}
	return e.Bytes()
}

// DecodeRepSnapshot parses a RepSnapshot payload.
func DecodeRepSnapshot(b []byte) (RepSnapshot, error) {
	d := NewDecoder(b)
	m := RepSnapshot{
		Epoch:    d.U64(),
		Seq:      d.U64(),
		From:     d.I64(),
		NextID:   d.I64(),
		NextNode: d.I64(),
	}
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.Files = append(m.Files, RepFile{
			Name: d.Str(), ID: d.I64(), Size: d.I64(), Node: d.I64(), Replica: d.I64(),
		})
	}
	n = d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.Accesses = append(m.Accesses, RepAccess{FileID: d.I64(), TimeS: d.F64(), Size: d.I64()})
	}
	return m, d.Err()
}

// RepStatusResp answers a (payload-free) TRepStatusReq: who the server
// thinks it is. Elections compare (Seq, index) across reachable peers.
type RepStatusResp struct {
	Primary    bool
	Epoch      uint64
	Seq        uint64
	PrimaryIdx int64 // index the server believes is primary
}

// Encode serializes the message body.
func (m RepStatusResp) Encode() []byte {
	var e Encoder
	return e.Bool(m.Primary).U64(m.Epoch).U64(m.Seq).I64(m.PrimaryIdx).Bytes()
}

// DecodeRepStatusResp parses a RepStatusResp payload.
func DecodeRepStatusResp(b []byte) (RepStatusResp, error) {
	d := NewDecoder(b)
	m := RepStatusResp{Primary: d.Bool(), Epoch: d.U64(), Seq: d.U64(), PrimaryIdx: d.I64()}
	return m, d.Err()
}
