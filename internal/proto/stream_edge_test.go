package proto

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"eevfs/internal/telemetry"
)

// TestRPCDeadlineStretchedOnStreamCarryingConn pins the congestion rule:
// an RPC issued on a connection generation that carries an open stream
// gets the stream stall bound, not the bare round-trip deadline — its
// response legitimately queues behind the stream's data frames, and a
// premature timeout would poison the generation and kill the healthy
// stream with it.
func TestRPCDeadlineStretchedOnStreamCarryingConn(t *testing.T) {
	const rt = 300 * time.Millisecond
	addr := streamTestServer(t, func(conn net.Conn, ty Type, id uint32, payload []byte) bool {
		switch ty {
		case TStreamReadReq:
			resp := StreamOpenResp{Size: 1 << 20, ChunkSize: 1024, Window: 8}
			return WriteFrameID(conn, TStreamOpenResp, id, resp.Encode()) == nil
		case TListReq:
			// Past the bare deadline, well inside the stall bound.
			time.Sleep(2 * rt)
			return WriteFrameID(conn, TListResp, id, ListResp{}.Encode()) == nil
		}
		t.Errorf("server got frame type %d", ty)
		return false
	})

	cfg := testTransport()
	cfg.RTTimeout = rt
	ep := NewEndpoint(addr, nil, cfg)
	defer ep.Close()
	rs, err := ep.OpenReadStream(StreamOpenReq{FileID: 1}, telemetry.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, _, err := ep.Call(TListReq, nil); err != nil {
		t.Fatalf("slow RPC on a stream-carrying connection: %v", err)
	}
}

// TestStreamOpenStallTimesOutTyped pins the open-stall path: a peer that
// never answers the open frame surfaces a timeout-classified
// *TransportError once the stall bound expires.
func TestStreamOpenStallTimesOutTyped(t *testing.T) {
	addr := streamTestServer(t, func(conn net.Conn, ty Type, id uint32, payload []byte) bool {
		return true // swallow everything, answer nothing
	})
	cfg := testTransport()
	cfg.RTTimeout = 50 * time.Millisecond
	ep := NewEndpoint(addr, nil, cfg)
	defer ep.Close()
	_, err := ep.OpenReadStream(StreamOpenReq{FileID: 1}, telemetry.SpanContext{})
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransportError", err)
	}
	if !te.Timeout() {
		t.Fatalf("err = %v, want timeout classification", err)
	}
}

// TestReadStreamEarlyCloseDiscardsLateFrames pins the discard protocol:
// Close before EOF aborts upstream, chunks already in flight are dropped
// on the floor, the peer's terminal frame retires the id, and the
// connection stays healthy for round trips throughout.
func TestReadStreamEarlyCloseDiscardsLateFrames(t *testing.T) {
	chunk := make([]byte, 1024)
	addr := streamTestServer(t, func(conn net.Conn, ty Type, id uint32, payload []byte) bool {
		switch ty {
		case TStreamReadReq:
			resp := StreamOpenResp{Size: 1 << 20, ChunkSize: 1024, Window: 8}
			if err := WriteFrameID(conn, TStreamOpenResp, id, resp.Encode()); err != nil {
				return false
			}
			return WriteFrameID(conn, TDataFrame, id, chunk) == nil
		case TStreamAbort:
			// The reader hung up: one more chunk was already in flight,
			// then the terminal frame confirms nothing further follows.
			if err := WriteFrameID(conn, TDataFrame, id, chunk); err != nil {
				return false
			}
			return WriteFrameID(conn, TStreamEnd, id, StreamEnd{}.Encode()) == nil
		case TStreamCredit:
			return true
		case TListReq:
			return WriteFrameID(conn, TListResp, id, ListResp{}.Encode()) == nil
		}
		t.Errorf("server got frame type %d", ty)
		return false
	})

	ep := NewEndpoint(addr, nil, testTransport())
	defer ep.Close()
	rs, err := ep.OpenReadStream(StreamOpenReq{FileID: 1}, telemetry.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if _, err := rs.Read(buf); err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	// The generation survives the early close, and the discarded id is
	// retired once the peer's end frame lands.
	if _, _, err := ep.Call(TListReq, nil); err != nil {
		t.Fatalf("round trip after early stream close: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		rs.m.mu.Lock()
		open := len(rs.m.streams)
		rs.m.mu.Unlock()
		if open == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d stream ids still registered after discard settled", open)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWriteStreamAbortMidDataTyped pins the write-side abort path: the
// peer rejecting mid-upload surfaces as a typed *RemoteError from Write,
// Close reports the same failure, and the connection stays healthy.
func TestWriteStreamAbortMidDataTyped(t *testing.T) {
	var mu sync.Mutex
	aborted := false
	addr := streamTestServer(t, func(conn net.Conn, ty Type, id uint32, payload []byte) bool {
		switch ty {
		case TStreamWriteReq:
			resp := StreamOpenResp{ChunkSize: 1024, Window: 2}
			return WriteFrameID(conn, TStreamOpenResp, id, resp.Encode()) == nil
		case TDataFrame, TStreamEnd:
			mu.Lock()
			first := !aborted
			aborted = true
			mu.Unlock()
			if !first {
				return true // the id is settled client-side; stay silent
			}
			em := ErrorMsg{Code: CodeUnavailable, Msg: "buffer area full"}
			return WriteFrameID(conn, TStreamAbort, id, em.Encode()) == nil
		case TListReq:
			return WriteFrameID(conn, TListResp, id, ListResp{}.Encode()) == nil
		}
		t.Errorf("server got frame type %d", ty)
		return false
	})

	ep := NewEndpoint(addr, nil, testTransport())
	defer ep.Close()
	ws, err := ep.OpenWriteStream(StreamOpenReq{FileID: 1, Size: 1 << 20}, telemetry.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	var werr error
	for i := 0; i < 16 && werr == nil; i++ {
		_, werr = ws.Write(payload)
	}
	var re *RemoteError
	if !errors.As(werr, &re) || re.Code != CodeUnavailable {
		t.Fatalf("Write err = %v, want *RemoteError{CodeUnavailable}", werr)
	}
	if cerr := ws.Close(); !errors.Is(cerr, werr) && cerr == nil {
		t.Fatalf("Close after abort = %v, want the abort error", cerr)
	}
	if _, _, err := ep.Call(TListReq, nil); err != nil {
		t.Fatalf("round trip after write-stream abort: %v", err)
	}
}
