package proto

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello world")
	if err := WriteFrame(&buf, TCreateReq, payload); err != nil {
		t.Fatal(err)
	}
	ty, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ty != TCreateReq || !bytes.Equal(got, payload) {
		t.Fatalf("got type %d payload %q", ty, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TListReq, nil); err != nil {
		t.Fatal(err)
	}
	ty, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ty != TListReq || len(got) != 0 {
		t.Fatalf("got type %d payload %q", ty, got)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TListReq, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, _, err := ReadFrame(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestReadFrameOversized(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(TListReq)}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameZeroLength(t *testing.T) {
	hdr := []byte{0, 0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	// Don't allocate 256 MiB; fake it with a payload length check via a
	// slice header trick is unsafe — instead just use a real (large but
	// affordable) boundary test at MaxFrame.
	big := make([]byte, MaxFrame) // 1 byte over once the type is added
	if err := WriteFrame(io.Discard, TListReq, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestEncoderDecoderAllTypes(t *testing.T) {
	var e Encoder
	e.U32(7).U64(1 << 40).I64(-42).F64(3.5).Bool(true).Bool(false).
		Str("name").Blob([]byte{1, 2, 3})
	d := NewDecoder(e.Bytes())
	if d.U32() != 7 || d.U64() != 1<<40 || d.I64() != -42 || d.F64() != 3.5 {
		t.Fatal("numeric round trip failed")
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bool round trip failed")
	}
	if d.Str() != "name" || !bytes.Equal(d.Blob(), []byte{1, 2, 3}) {
		t.Fatal("string/blob round trip failed")
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestDecoderTruncation(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	_ = d.U32()
	if !errors.Is(d.Err(), ErrShortPayload) {
		t.Fatalf("err = %v, want ErrShortPayload", d.Err())
	}
	// Further reads stay failed and return zero values.
	if d.U64() != 0 || d.Str() != "" || d.Blob() != nil {
		t.Fatal("reads after error returned data")
	}
}

func TestDecoderStrLengthLies(t *testing.T) {
	var e Encoder
	e.U32(100) // claims 100 bytes follow
	d := NewDecoder(append(e.Bytes(), 'x'))
	if d.Str() != "" || d.Err() == nil {
		t.Fatal("lying length accepted")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	checks := []struct {
		name   string
		encode func() []byte
		decode func([]byte) (any, error)
		want   any
	}{
		{"ErrorMsg", ErrorMsg{"boom", CodeGeneric, ""}.Encode,
			func(b []byte) (any, error) { return DecodeErrorMsg(b) }, ErrorMsg{"boom", CodeGeneric, ""}},
		{"ErrorMsgCoded", ErrorMsg{"gone", CodeUnavailable, ""}.Encode,
			func(b []byte) (any, error) { return DecodeErrorMsg(b) }, ErrorMsg{"gone", CodeUnavailable, ""}},
		{"ErrorMsgRedirect", ErrorMsg{"moved", CodeNotPrimary, "10.0.0.2:7070"}.Encode,
			func(b []byte) (any, error) { return DecodeErrorMsg(b) }, ErrorMsg{"moved", CodeNotPrimary, "10.0.0.2:7070"}},
		{"CreateReq", CreateReq{"f.dat", 123}.Encode,
			func(b []byte) (any, error) { return DecodeCreateReq(b) }, CreateReq{"f.dat", 123}},
		{"CreateResp", CreateResp{7, "1.2.3.4:9"}.Encode,
			func(b []byte) (any, error) { return DecodeCreateResp(b) }, CreateResp{7, "1.2.3.4:9"}},
		{"LookupReq", LookupReq{"f"}.Encode,
			func(b []byte) (any, error) { return DecodeLookupReq(b) }, LookupReq{"f"}},
		{"LookupResp", LookupResp{1, 2, "addr"}.Encode,
			func(b []byte) (any, error) { return DecodeLookupResp(b) }, LookupResp{1, 2, "addr"}},
		{"DeleteReq", DeleteReq{"f"}.Encode,
			func(b []byte) (any, error) { return DecodeDeleteReq(b) }, DeleteReq{"f"}},
		{"PrefetchReq", PrefetchReq{70}.Encode,
			func(b []byte) (any, error) { return DecodePrefetchReq(b) }, PrefetchReq{70}},
		{"PrefetchResp", PrefetchResp{12}.Encode,
			func(b []byte) (any, error) { return DecodePrefetchResp(b) }, PrefetchResp{12}},
		{"NodeCreateReq", NodeCreateReq{3, 999}.Encode,
			func(b []byte) (any, error) { return DecodeNodeCreateReq(b) }, NodeCreateReq{3, 999}},
		{"NodeReadReq", NodeReadReq{5}.Encode,
			func(b []byte) (any, error) { return DecodeNodeReadReq(b) }, NodeReadReq{5}},
		{"NodeWriteResp", NodeWriteResp{true}.Encode,
			func(b []byte) (any, error) { return DecodeNodeWriteResp(b) }, NodeWriteResp{true}},
		{"NodeDeleteReq", NodeDeleteReq{9}.Encode,
			func(b []byte) (any, error) { return DecodeNodeDeleteReq(b) }, NodeDeleteReq{9}},
	}
	for _, c := range checks {
		got, err := c.decode(c.encode())
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %+v want %+v", c.name, got, c.want)
		}
	}
}

func TestListRespRoundTrip(t *testing.T) {
	in := ListResp{Names: []string{"a", "b", "c"}}
	got, err := DecodeListResp(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v", got)
	}
	empty, err := DecodeListResp(ListResp{}.Encode())
	if err != nil || len(empty.Names) != 0 {
		t.Fatalf("empty list round trip: %+v %v", empty, err)
	}
}

func TestStatsRespRoundTrip(t *testing.T) {
	in := StatsResp{Disks: []DiskStats{
		{Name: "n0/buffer", EnergyJ: 12.5, SpinUps: 1, SpinDowns: 2, Requests: 3, BytesMoved: 4, State: "idle"},
		{Name: "n0/data0", EnergyJ: 8, State: "standby"},
	}}
	got, err := DecodeStatsResp(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v", got)
	}
}

func TestNodeReadWriteRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 1000)
	w := NodeWriteReq{FileID: 4, Data: data}
	gotW, err := DecodeNodeWriteReq(w.Encode())
	if err != nil || gotW.FileID != 4 || !bytes.Equal(gotW.Data, data) {
		t.Fatalf("write round trip: %v", err)
	}
	r := NodeReadResp{FromBuffer: true, Data: data}
	gotR, err := DecodeNodeReadResp(r.Encode())
	if err != nil || !gotR.FromBuffer || !bytes.Equal(gotR.Data, data) {
		t.Fatalf("read round trip: %v", err)
	}
}

func TestNodePrefetchReqRoundTrip(t *testing.T) {
	in := NodePrefetchReq{FileIDs: []int64{1, 5, 9}}
	got, err := DecodeNodePrefetchReq(in.Encode())
	if err != nil || !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	garbage := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := DecodeCreateReq(garbage); err == nil {
		t.Error("CreateReq decoded garbage")
	}
	if _, err := DecodeListResp(garbage); err == nil {
		t.Error("ListResp decoded garbage")
	}
	if _, err := DecodeStatsResp(garbage); err == nil {
		t.Error("StatsResp decoded garbage")
	}
	if _, err := DecodeNodePrefetchReq(garbage); err == nil {
		t.Error("NodePrefetchReq decoded garbage")
	}
}

type pipeRW struct {
	r io.Reader
	w io.Writer
}

func (p pipeRW) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p pipeRW) Write(b []byte) (int, error) { return p.w.Write(b) }

func TestRoundTripHelper(t *testing.T) {
	// Simulate a peer that answers a lookup with a response frame.
	var toPeer, fromPeer bytes.Buffer
	if err := WriteFrame(&fromPeer, TLookupResp, LookupResp{1, 2, "n"}.Encode()); err != nil {
		t.Fatal(err)
	}
	ty, payload, err := RoundTrip(pipeRW{&fromPeer, &toPeer}, TLookupReq, LookupReq{"f"}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if ty != TLookupResp {
		t.Fatalf("type = %d", ty)
	}
	if _, err := DecodeLookupResp(payload); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripErrorResponse(t *testing.T) {
	var toPeer, fromPeer bytes.Buffer
	if err := WriteFrame(&fromPeer, TError, ErrorMsg{Msg: "no such file", Code: CodeNotFound}.Encode()); err != nil {
		t.Fatal(err)
	}
	_, _, err := RoundTrip(pipeRW{&fromPeer, &toPeer}, TLookupReq, nil)
	if err == nil || err.Error() != "remote: no such file" {
		t.Fatalf("err = %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeNotFound {
		t.Fatalf("want typed *RemoteError with CodeNotFound, got %#v", err)
	}
}

// Property: any encoded CreateReq decodes to itself.
func TestQuickCreateReqRoundTrip(t *testing.T) {
	f := func(name string, size int64) bool {
		got, err := DecodeCreateReq(CreateReq{name, size}.Encode())
		return err == nil && got.Name == name && got.Size == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary bytes.
func TestQuickDecoderNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("decoder panicked")
			}
		}()
		_, _ = DecodeCreateReq(b)
		_, _ = DecodeLookupResp(b)
		_, _ = DecodeListResp(b)
		_, _ = DecodeStatsResp(b)
		_, _ = DecodeNodeWriteReq(b)
		_, _ = DecodeNodePrefetchReq(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := make([]byte, 4096)
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, TNodeWriteReq, payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
