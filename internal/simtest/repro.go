package simtest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// reproVersion tags the textual scenario encoding so a stale repro string
// fails loudly instead of replaying the wrong scenario.
const reproVersion = "v1"

// fieldCodec binds one Scenario field to its repro key.
type fieldCodec struct {
	key string
	get func(*Scenario) string
	set func(*Scenario, string) error
}

func intField(key string, p func(*Scenario) *int) fieldCodec {
	return fieldCodec{
		key: key,
		get: func(s *Scenario) string { return strconv.Itoa(*p(s)) },
		set: func(s *Scenario, v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return err
			}
			*p(s) = n
			return nil
		},
	}
}

func boolField(key string, p func(*Scenario) *bool) fieldCodec {
	return fieldCodec{
		key: key,
		get: func(s *Scenario) string {
			if *p(s) {
				return "1"
			}
			return "0"
		},
		set: func(s *Scenario, v string) error {
			switch v {
			case "0":
				*p(s) = false
			case "1":
				*p(s) = true
			default:
				return fmt.Errorf("bad bool %q", v)
			}
			return nil
		},
	}
}

func floatField(key string, p func(*Scenario) *float64) fieldCodec {
	return fieldCodec{
		key: key,
		// 'g'/-1 prints the shortest representation that parses back to
		// the same float64, so encode/decode round-trips exactly.
		get: func(s *Scenario) string { return strconv.FormatFloat(*p(s), 'g', -1, 64) },
		set: func(s *Scenario, v string) error {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return err
			}
			*p(s) = f
			return nil
		},
	}
}

// codecs lists every Scenario field in encoding order. Adding a field
// here is all a new scenario dimension needs to become replayable.
var codecs = []fieldCodec{
	{
		key: "seed",
		get: func(s *Scenario) string { return strconv.FormatUint(s.Seed, 10) },
		set: func(s *Scenario, v string) error {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return err
			}
			s.Seed = n
			return nil
		},
	},
	intField("nodes", func(s *Scenario) *int { return &s.NodeCount }),
	intField("t2", func(s *Scenario) *int { return &s.Type2Count }),
	intField("dd", func(s *Scenario) *int { return &s.DataDisks }),
	intField("bd", func(s *Scenario) *int { return &s.BufferDisks }),
	intField("down", func(s *Scenario) *int { return &s.DownNodes }),
	boolField("pf", func(s *Scenario) *bool { return &s.Prefetch }),
	intField("k", func(s *Scenario) *int { return &s.PrefetchCount }),
	boolField("hints", func(s *Scenario) *bool { return &s.Hints }),
	boolField("prewake", func(s *Scenario) *bool { return &s.Prewake }),
	boolField("dpm", func(s *Scenario) *bool { return &s.DPMWithoutPrefetch }),
	boolField("wb", func(s *Scenario) *bool { return &s.WriteBuffer }),
	boolField("maid", func(s *Scenario) *bool { return &s.MAID }),
	boolField("pdc", func(s *Scenario) *bool { return &s.Concentrate }),
	intField("stripekb", func(s *Scenario) *int { return &s.StripeChunkKB }),
	intField("repref", func(s *Scenario) *int { return &s.ReprefetchEvery }),
	floatField("idle", func(s *Scenario) *float64 { return &s.IdleThresholdSec }),
	intField("bufmb", func(s *Scenario) *int { return &s.BufferCapMB }),
	floatField("routems", func(s *Scenario) *float64 { return &s.RouteLatencyMS }),
	intField("files", func(s *Scenario) *int { return &s.Files }),
	intField("reqs", func(s *Scenario) *int { return &s.Requests }),
	intField("sizekb", func(s *Scenario) *int { return &s.MeanSizeKB }),
	intField("spread", func(s *Scenario) *int { return &s.SizeSpreadPct }),
	floatField("mu", func(s *Scenario) *float64 { return &s.MU }),
	floatField("delayms", func(s *Scenario) *float64 { return &s.InterArrivalMS }),
	intField("writes", func(s *Scenario) *int { return &s.WritePct }),
	boolField("adaptive", func(s *Scenario) *bool { return &s.Adaptive }),
	intField("dphases", func(s *Scenario) *int { return &s.DriftPhases }),
	intField("flash", func(s *Scenario) *int { return &s.FlashPct }),
	intField("diurnal", func(s *Scenario) *int { return &s.DiurnalPct }),
	{
		key: "inject",
		get: func(s *Scenario) string { return s.Inject },
		set: func(s *Scenario, v string) error { s.Inject = v; return nil },
	},
}

// Encode serializes the scenario as a compact, shell-safe string:
// "v1,seed=42,nodes=3,...". Zero-valued fields are elided.
func (s Scenario) Encode() string {
	parts := []string{reproVersion}
	for _, c := range codecs {
		if v := c.get(&s); v != "" && v != "0" {
			parts = append(parts, c.key+"="+v)
		}
	}
	return strings.Join(parts, ",")
}

// DecodeScenario parses a string produced by Encode.
func DecodeScenario(repro string) (Scenario, error) {
	parts := strings.Split(repro, ",")
	if len(parts) == 0 || parts[0] != reproVersion {
		return Scenario{}, fmt.Errorf("simtest: repro string is not %s-versioned: %q", reproVersion, repro)
	}
	byKey := make(map[string]fieldCodec, len(codecs))
	for _, c := range codecs {
		byKey[c.key] = c
	}
	var s Scenario
	for _, p := range parts[1:] {
		if p == "" {
			continue
		}
		k, v, ok := strings.Cut(p, "=")
		c, known := byKey[k]
		if !ok || !known {
			return Scenario{}, fmt.Errorf("simtest: bad repro field %q", p)
		}
		if err := c.set(&s, v); err != nil {
			return Scenario{}, fmt.Errorf("simtest: repro field %q: %w", p, err)
		}
	}
	return s, nil
}

// ReproCommand renders the one-line replay command printed on failures.
func ReproCommand(s Scenario) string {
	return fmt.Sprintf("eevfssim -seed=%d -repro='%s'", s.Seed, s.Encode())
}

// sortedKeys is shared test/debug plumbing: the known repro field keys.
func sortedKeys() []string {
	keys := make([]string, 0, len(codecs))
	for _, c := range codecs {
		keys = append(keys, c.key)
	}
	sort.Strings(keys)
	return keys
}
