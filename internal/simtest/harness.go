package simtest

import (
	"fmt"
	"reflect"

	"eevfs/internal/cluster"
	"eevfs/internal/telemetry"
	"eevfs/internal/trace"
)

// Artifacts is everything one scenario run leaves behind for the oracles:
// the inputs (scenario, trace), both comparison arms' results, and the
// simulator's structured event journal.
type Artifacts struct {
	Scenario Scenario
	Trace    *trace.Trace
	// Result is the scenario's own arm; NPF is the same trace replayed
	// with cluster.Config.NPF() (prefetching and power management off),
	// the paper's baseline.
	Result cluster.Result
	NPF    cluster.Result
	// Events is the PF arm's journal, in append order.
	Events []telemetry.Event
}

// Failure is one invariant violation: which oracle tripped and why. The
// Oracle name is the shrinker's equivalence class — a reduction candidate
// "still fails" only if the same oracle trips again.
type Failure struct {
	Oracle string
	Msg    string
}

// Error implements error.
func (f *Failure) Error() string { return f.Oracle + ": " + f.Msg }

func failf(oracle, format string, args ...any) *Failure {
	return &Failure{Oracle: oracle, Msg: fmt.Sprintf(format, args...)}
}

// Run executes the scenario through the cluster simulator: it generates
// the workload from the scenario seed, simulates the scenario's own
// configuration with a journal attached, simulates the NPF arm, and
// applies any test-only injection to the artifacts. It does not judge the
// results — that is Check's job.
func Run(s Scenario) (*Artifacts, error) {
	tr, err := s.BuildTrace()
	if err != nil {
		return nil, fmt.Errorf("simtest: workload: %w", err)
	}
	cfg := s.ClusterConfig()
	jour := &telemetry.Journal{}
	cfg.Journal = jour
	res, err := cluster.Run(cfg, tr)
	if err != nil {
		return nil, fmt.Errorf("simtest: cluster run: %w", err)
	}
	npfCfg := s.ClusterConfig().NPF()
	npf, err := cluster.Run(npfCfg, tr)
	if err != nil {
		return nil, fmt.Errorf("simtest: NPF arm: %w", err)
	}
	art := &Artifacts{
		Scenario: s,
		Trace:    tr,
		Result:   res,
		NPF:      npf,
		Events:   jour.Events(),
	}
	applyInject(art)
	return art, nil
}

// applyInject mutates the artifacts according to the scenario's test-only
// invariant breaker. The injection is part of the Scenario value, so a
// repro string replays the corrupted run — and its oracle failure —
// exactly.
func applyInject(a *Artifacts) {
	switch a.Scenario.Inject {
	case "":
	case InjectReadStandby:
		// A phantom disk whose journal timeline is legal right up to the
		// point where it services a read while in standby. The timeline
		// is self-consistent (idle -> spinning-down -> standby), so the
		// power-legality oracle flags exactly the standby read.
		const phantom = "node0/phantom"
		a.Events = append(a.Events,
			telemetry.Event{TimeS: 0, Kind: telemetry.KindState, Subject: phantom, Detail: "idle"},
			telemetry.Event{TimeS: 1, Kind: telemetry.KindState, Subject: phantom, Detail: "spinning-down"},
			telemetry.Event{TimeS: 2, Kind: telemetry.KindState, Subject: phantom, Detail: "standby"},
			telemetry.Event{TimeS: 3, Kind: telemetry.KindService, Subject: phantom, Detail: "read", DurS: 0.01},
		)
	case InjectEnergySkew:
		a.Result.DiskEnergyJ++
	case InjectBadEstimator:
		// Pre-run injection: ClusterConfig already armed the broken
		// estimator, so there is nothing to corrupt after the fact —
		// the run's own journal carries the thrash.
	}
}

// Check runs the scenario and judges it against every oracle, returning
// the first violation (nil means the scenario upholds all invariants).
// The determinism oracle is built in: the scenario is simulated twice and
// the two runs must agree bit-for-bit, which is what makes every other
// failure replayable from a seed.
func Check(s Scenario) *Failure {
	if err := s.Valid(); err != nil {
		return failf("valid", "scenario expands to an invalid config: %v", err)
	}
	a, err := Run(s)
	if err != nil {
		return failf("run", "%v", err)
	}
	b, err := Run(s)
	if err != nil {
		return failf("run", "second run: %v", err)
	}
	if !reflect.DeepEqual(a.Result, b.Result) {
		return failf("determinism", "two runs of the same scenario disagree: %+v vs %+v", a.Result, b.Result)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		return failf("determinism", "two runs journaled different timelines (%d vs %d events)", len(a.Events), len(b.Events))
	}
	return CheckArtifacts(a)
}

// CheckArtifacts judges already-produced artifacts against every oracle
// in catalogue order, returning the first violation.
func CheckArtifacts(a *Artifacts) *Failure {
	for _, o := range Oracles {
		if f := o.Check(a); f != nil {
			return f
		}
	}
	return nil
}
