package simtest

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"eevfs/internal/adaptive"
	"eevfs/internal/disk"
	"eevfs/internal/telemetry"
	"eevfs/internal/trace"
)

// Oracle is one invariant checker over a run's artifacts. Oracles must be
// sound for every valid scenario the generator can produce: a failure
// always means a real bug (in the simulator, the accounting, or the
// oracle itself), never "an unlucky seed".
type Oracle struct {
	Name  string
	Check func(a *Artifacts) *Failure
}

// Oracles is the invariant catalogue, in checking order. Order matters
// for failure attribution: the power-state machine is checked first so a
// forged illegal service is reported as such, not as the transition-count
// mismatch it also causes downstream. To add an oracle, append here and
// document it in DESIGN.md section 14.
var Oracles = []Oracle{
	{"power-legal", checkPowerLegal},
	{"transition-counts", checkTransitionCounts},
	{"energy-conservation", checkEnergyConservation},
	{"request-accounting", checkRequestAccounting},
	{"causality", checkCausality},
	{"covered-quiesce", checkCoveredQuiesce},
	{"npf-static", checkNPFStatic},
	{"pf-dominates-npf", checkPFDominatesNPF},
	{"adaptive-dominates-npf", checkAdaptiveDominatesNPF},
	{"adaptive-transition-budget", checkAdaptiveTransitionBudget},
}

const eps = 1e-9

// closeTo compares accumulated floating-point quantities: the simulator
// integrates energy over thousands of tiny dwell increments, so sums are
// compared with a relative tolerance instead of exact equality.
func closeTo(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-6*scale
}

// stateChange is one decoded power-state journal entry.
type stateChange struct {
	t     float64
	state string
}

// serviceSpan is one decoded disk-service journal entry.
type serviceSpan struct {
	t, dur float64
	op     string
}

// byDisk splits the journal into per-disk state timelines and service
// spans, preserving append order (the tiebreak for same-instant events).
func byDisk(events []telemetry.Event) (states map[string][]stateChange, services map[string][]serviceSpan) {
	states = make(map[string][]stateChange)
	services = make(map[string][]serviceSpan)
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindState:
			states[e.Subject] = append(states[e.Subject], stateChange{t: e.TimeS, state: e.Detail})
		case telemetry.KindService:
			services[e.Subject] = append(services[e.Subject], serviceSpan{t: e.TimeS, dur: e.DurS, op: e.Detail})
		}
	}
	return states, services
}

// legalNext is the disk power-state machine's edge set (disk.Disk panics
// on anything else; the oracle re-derives it from the journal so a
// corrupted timeline is caught even if the in-memory machine was
// bypassed).
var legalNext = map[string]map[string]bool{
	"idle":          {"active": true, "spinning-down": true},
	"active":        {"idle": true},
	"spinning-down": {"standby": true},
	"standby":       {"spinning-up": true},
	"spinning-up":   {"idle": true},
}

// checkPowerLegal verifies each disk's journaled timeline against the
// power-state machine: timelines start idle at t=0, every transition
// follows a legal edge with nondecreasing times, and every service runs
// entirely inside an Active dwell — in particular, no disk ever services
// a read while standby.
func checkPowerLegal(a *Artifacts) *Failure {
	states, services := byDisk(a.Events)
	for name, tl := range states {
		if tl[0].state != "idle" || tl[0].t != 0 {
			return failf("power-legal", "disk %s: timeline starts %q at t=%g, want idle at 0", name, tl[0].state, tl[0].t)
		}
		for i := 1; i < len(tl); i++ {
			prev, cur := tl[i-1], tl[i]
			if cur.t < prev.t-eps {
				return failf("power-legal", "disk %s: state %q at t=%g precedes %q at t=%g", name, cur.state, cur.t, prev.state, prev.t)
			}
			if !legalNext[prev.state][cur.state] {
				return failf("power-legal", "disk %s: illegal transition %s -> %s at t=%g", name, prev.state, cur.state, cur.t)
			}
		}
	}
	for name, spans := range services {
		tl := states[name]
		if len(tl) == 0 {
			return failf("power-legal", "disk %s: serviced requests but journaled no states", name)
		}
		for _, sp := range spans {
			// State in effect at service start: the last change at or
			// before t (append order breaks same-instant ties).
			state := ""
			for _, ch := range tl {
				if ch.t <= sp.t+eps {
					state = ch.state
				}
			}
			if state != "active" {
				return failf("power-legal", "disk %s: service %q at t=%g in state %s", name, sp.op, sp.t, state)
			}
			// No transition may fire strictly inside the service span:
			// the disk stays Active until EndService.
			for _, ch := range tl {
				if ch.t > sp.t+eps && ch.t < sp.t+sp.dur-eps {
					return failf("power-legal", "disk %s: state %q at t=%g interrupts service [%g, %g]",
						name, ch.state, ch.t, sp.t, sp.t+sp.dur)
				}
			}
		}
	}
	return nil
}

// checkTransitionCounts ties three independent transition ledgers
// together: the journal's state events, the per-disk stats, and the
// Result totals must all agree (the paper's Fig. 4 metric).
func checkTransitionCounts(a *Artifacts) *Failure {
	jour := &telemetry.Journal{}
	for _, e := range a.Events {
		jour.Append(e)
	}
	if got := jour.CountStates("spinning-up"); got != a.Result.SpinUps {
		return failf("transition-counts", "journal has %d spin-ups, Result says %d", got, a.Result.SpinUps)
	}
	if got := jour.CountStates("spinning-down"); got != a.Result.SpinDowns {
		return failf("transition-counts", "journal has %d spin-downs, Result says %d", got, a.Result.SpinDowns)
	}
	if a.Result.Transitions != a.Result.SpinUps+a.Result.SpinDowns {
		return failf("transition-counts", "Transitions=%d != SpinUps+SpinDowns=%d",
			a.Result.Transitions, a.Result.SpinUps+a.Result.SpinDowns)
	}
	ups, downs := 0, 0
	for _, st := range a.Result.PerDisk {
		ups += st.SpinUps
		downs += st.SpinDowns
	}
	if ups != a.Result.SpinUps || downs != a.Result.SpinDowns {
		return failf("transition-counts", "per-disk stats sum to %d/%d spin-ups/downs, Result says %d/%d",
			ups, downs, a.Result.SpinUps, a.Result.SpinDowns)
	}
	return nil
}

// diskModel resolves a journal/stats disk name ("node<i>/data<j>" or
// "node<i>/buffer[<j>]") to its drive model via the scenario's
// in-service node list.
func diskModel(s Scenario, name string) (disk.Model, error) {
	rest, ok := strings.CutPrefix(name, "node")
	if !ok {
		return disk.Model{}, fmt.Errorf("unrecognized disk name %q", name)
	}
	idxStr, kind, ok := strings.Cut(rest, "/")
	if !ok {
		return disk.Model{}, fmt.Errorf("unrecognized disk name %q", name)
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil {
		return disk.Model{}, fmt.Errorf("unrecognized disk name %q", name)
	}
	up := s.UpNodeConfigs()
	if idx < 0 || idx >= len(up) {
		return disk.Model{}, fmt.Errorf("disk %q names node %d of %d in service", name, idx, len(up))
	}
	if strings.HasPrefix(kind, "buffer") {
		return up[idx].BufferModel, nil
	}
	return up[idx].DataModel, nil
}

// checkEnergyConservation verifies the energy ledger bottom-up: each
// disk's Joules must equal its state dwell times integrated against its
// model's state powers, every disk's dwell must span the whole makespan,
// the per-disk Joules must sum to DiskEnergyJ, and the Result total must
// decompose into base + disk energy with the base drawn by exactly the
// in-service nodes.
func checkEnergyConservation(a *Artifacts) *Failure {
	s, r := a.Scenario, a.Result
	upCount := len(s.UpNodeConfigs())
	if r.UpNodes != upCount {
		return failf("energy-conservation", "Result.UpNodes=%d, scenario has %d in service", r.UpNodes, upCount)
	}
	wantDisks := upCount * (s.DataDisks + s.BufferDisks)
	if len(r.PerDisk) != wantDisks {
		return failf("energy-conservation", "PerDisk has %d disks, want %d", len(r.PerDisk), wantDisks)
	}
	var sum float64
	for _, st := range r.PerDisk {
		m, err := diskModel(s, st.Name)
		if err != nil {
			return failf("energy-conservation", "%v", err)
		}
		var dwell, integrated float64
		for ps := disk.Active; ps < disk.PowerState(len(st.TimeInState)); ps++ {
			dwell += st.TimeInState[ps]
			integrated += st.TimeInState[ps] * m.StatePower(ps)
		}
		if !closeTo(dwell, r.MakespanSec) {
			return failf("energy-conservation", "disk %s: state dwells sum to %g s over a %g s makespan", st.Name, dwell, r.MakespanSec)
		}
		if !closeTo(integrated, st.EnergyJ) {
			return failf("energy-conservation", "disk %s: dwell*power integrates to %g J, stats say %g J", st.Name, integrated, st.EnergyJ)
		}
		sum += st.EnergyJ
	}
	if !closeTo(sum, r.DiskEnergyJ) {
		return failf("energy-conservation", "per-disk energies sum to %g J, DiskEnergyJ=%g", sum, r.DiskEnergyJ)
	}
	wantBase := 55 * r.MakespanSec * float64(upCount)
	if !closeTo(r.BaseEnergyJ, wantBase) {
		return failf("energy-conservation", "BaseEnergyJ=%g, want 55W * %g s * %d nodes = %g", r.BaseEnergyJ, r.MakespanSec, upCount, wantBase)
	}
	if !closeTo(r.TotalEnergyJ, r.BaseEnergyJ+r.DiskEnergyJ) {
		return failf("energy-conservation", "TotalEnergyJ=%g != base %g + disk %g", r.TotalEnergyJ, r.BaseEnergyJ, r.DiskEnergyJ)
	}
	if r.PrefetchEnergyJ > r.DiskEnergyJ+eps {
		return failf("energy-conservation", "PrefetchEnergyJ=%g exceeds DiskEnergyJ=%g", r.PrefetchEnergyJ, r.DiskEnergyJ)
	}
	return nil
}

// checkRequestAccounting ties the request counters together: every trace
// record is replayed exactly once, every read is a buffer hit or a miss,
// every write is buffered or direct, and the response summaries saw every
// request.
func checkRequestAccounting(a *Artifacts) *Failure {
	r := a.Result
	reads, writes := 0, 0
	for _, rec := range a.Trace.Records {
		if rec.Op == trace.Write {
			writes++
		} else {
			reads++
		}
	}
	if r.Requests != len(a.Trace.Records) {
		return failf("request-accounting", "Requests=%d, trace has %d records", r.Requests, len(a.Trace.Records))
	}
	if got := r.BufferHits + r.BufferMisses; got != int64(reads) {
		return failf("request-accounting", "hits %d + misses %d = %d, trace has %d reads", r.BufferHits, r.BufferMisses, got, reads)
	}
	if got := r.BufferedWrites + r.DirectWrites; got != int64(writes) {
		return failf("request-accounting", "buffered %d + direct %d = %d, trace has %d writes", r.BufferedWrites, r.DirectWrites, got, writes)
	}
	if r.Response.N != r.Requests {
		return failf("request-accounting", "response summary saw %d samples for %d requests", r.Response.N, r.Requests)
	}
	if r.ReadResponse.N != reads || r.WriteResponse.N != writes {
		return failf("request-accounting", "read/write summaries saw %d/%d samples for %d/%d ops",
			r.ReadResponse.N, r.WriteResponse.N, reads, writes)
	}
	nreq := 0
	for _, e := range a.Events {
		if e.Kind == telemetry.KindRequest {
			nreq++
		}
	}
	if nreq != r.Requests {
		return failf("request-accounting", "journal has %d request events for %d requests", nreq, r.Requests)
	}
	s := a.Scenario
	if !s.Prefetch && !s.Adaptive && r.PrefetchedFiles != 0 {
		return failf("request-accounting", "PrefetchedFiles=%d without Prefetch", r.PrefetchedFiles)
	}
	if s.Prefetch && s.ReprefetchEvery == 0 && r.PrefetchedFiles > s.PrefetchCount {
		return failf("request-accounting", "PrefetchedFiles=%d exceeds budget K=%d", r.PrefetchedFiles, s.PrefetchCount)
	}
	if !s.Adaptive && (r.AdaptiveReprefetches != 0 || r.AdaptiveBudgetVetoes != 0) {
		return failf("request-accounting", "adaptive counters (%d reprefetches, %d vetoes) on a non-adaptive arm",
			r.AdaptiveReprefetches, r.AdaptiveBudgetVetoes)
	}
	return nil
}

// checkCausality verifies response-time physics: no response can beat
// the control-path latency, nothing completes after the makespan, queue
// waits and service durations are nonnegative, and the replay cannot
// begin before the prefetch phase ends.
func checkCausality(a *Artifacts) *Failure {
	r := a.Result
	route := a.Scenario.RouteLatencyMS / 1000
	if r.PrefetchEndSec < 0 || r.PrefetchEndSec > r.MakespanSec+eps {
		return failf("causality", "PrefetchEndSec=%g outside [0, makespan %g]", r.PrefetchEndSec, r.MakespanSec)
	}
	for _, e := range a.Events {
		switch e.Kind {
		case telemetry.KindRequest:
			if e.DurS < route-eps {
				return failf("causality", "request %s at t=%g responded in %g s, below the %g s route latency", e.Subject, e.TimeS, e.DurS, route)
			}
			if e.TimeS < r.PrefetchEndSec-eps {
				return failf("causality", "request %s sent at t=%g, before the prefetch phase ended at %g", e.Subject, e.TimeS, r.PrefetchEndSec)
			}
			if e.TimeS+e.DurS > r.MakespanSec+eps {
				return failf("causality", "request %s completes at t=%g, after the %g s makespan", e.Subject, e.TimeS+e.DurS, r.MakespanSec)
			}
		case telemetry.KindService:
			if e.WaitS < -eps || e.DurS < -eps {
				return failf("causality", "service on %s at t=%g has negative wait (%g) or duration (%g)", e.Subject, e.TimeS, e.WaitS, e.DurS)
			}
			if e.TimeS+e.DurS > r.MakespanSec+eps {
				return failf("causality", "service on %s completes at t=%g, after the %g s makespan", e.Subject, e.TimeS+e.DurS, r.MakespanSec)
			}
		}
	}
	if r.Response.N > 0 {
		if r.Response.Min < route-eps {
			return failf("causality", "min response %g s below route latency %g s", r.Response.Min, route)
		}
		if r.Response.Max > r.MakespanSec+eps {
			return failf("causality", "max response %g s exceeds makespan %g s", r.Response.Max, r.MakespanSec)
		}
	}
	return nil
}

// checkCoveredQuiesce is the paper's Section VI-D claim as an invariant:
// on a fully-covered read-only workload (every read a buffer hit, static
// prefetch), the data disks do no work at all after the prefetch phase —
// "all data disks sleep through the entire trace".
func checkCoveredQuiesce(a *Artifacts) *Failure {
	s, r := a.Scenario, a.Result
	if !s.Prefetch || s.MAID || s.ReprefetchEvery != 0 || r.BufferMisses != 0 {
		return nil
	}
	for _, rec := range a.Trace.Records {
		if rec.Op == trace.Write {
			return nil
		}
	}
	for _, e := range a.Events {
		if e.Kind == telemetry.KindService && strings.Contains(e.Subject, "/data") && e.TimeS > r.PrefetchEndSec+eps {
			return failf("covered-quiesce", "data disk %s serviced %q at t=%g after the prefetch phase ended at %g on a fully-covered workload",
				e.Subject, e.Detail, e.TimeS, r.PrefetchEndSec)
		}
	}
	return nil
}

// checkNPFStatic verifies the NPF baseline's defining property: with
// prefetching and power management off, no disk ever changes power state
// and the buffer disks serve nothing.
func checkNPFStatic(a *Artifacts) *Failure {
	n := a.NPF
	if n.Transitions != 0 || n.SpinUps != 0 || n.SpinDowns != 0 {
		return failf("npf-static", "NPF arm transitioned %d times (up %d, down %d)", n.Transitions, n.SpinUps, n.SpinDowns)
	}
	if n.BufferHits != 0 {
		return failf("npf-static", "NPF arm served %d buffer hits", n.BufferHits)
	}
	if n.PrefetchedFiles != 0 || n.PrefetchEndSec != 0 || n.PrefetchEnergyJ != 0 {
		return failf("npf-static", "NPF arm ran a prefetch phase (%d files, end %g s, %g J)",
			n.PrefetchedFiles, n.PrefetchEndSec, n.PrefetchEnergyJ)
	}
	return nil
}

// pfRegime reports whether the scenario sits in the paper's fully-covered
// regime, where the PF-dominates-NPF claim is unconditional: read-only,
// static prefetch, paced arrivals (>= 500 ms), a long enough trace for
// standby dwell to amortize the transitions, and modest file sizes so the
// prefetch phase stays cheap. The generator steers ~20 % of scenarios
// into this regime so the oracle keeps earning its place in the corpus.
func pfRegime(s Scenario) bool {
	return s.Prefetch && !s.MAID && s.ReprefetchEvery == 0 &&
		s.WritePct == 0 && s.InterArrivalMS >= 500 &&
		s.Requests >= 150 && s.MeanSizeKB <= 2048
}

// checkPFDominatesNPF is the paper's headline claim as an invariant:
// in the fully-covered regime, prefetching must not cost energy versus
// the NPF baseline (Fig. 3(b), MU <= 100: maximum savings at full
// coverage).
func checkPFDominatesNPF(a *Artifacts) *Failure {
	if !pfRegime(a.Scenario) || a.Result.BufferMisses != 0 {
		return nil
	}
	if a.Result.TotalEnergyJ > a.NPF.TotalEnergyJ {
		return failf("pf-dominates-npf",
			"fully-covered PF run used %g J, NPF baseline %g J (savings %.2f%%)",
			a.Result.TotalEnergyJ, a.NPF.TotalEnergyJ, a.Result.EnergySavingsVs(a.NPF))
	}
	return nil
}

// DominanceEligible reports whether the scenario would exercise the
// PF-dominates-NPF oracle (before knowing the miss count). The corpus
// test uses it to assert the oracle is not vacuously green.
func DominanceEligible(s Scenario) bool { return pfRegime(s) }

// wakeSlackJ is the irreducible online penalty one sleep episode can
// cost beyond the disk-level ledger: either edge of the transition (the
// spin-down completing after the last request, or the spin-up a waiting
// read rode in on) lands on the makespan's critical path, during which
// the whole cluster (node base power plus every disk's idle draw) keeps
// burning. It is the slower transition priced fleet-wide — a few
// hundred Joules against run totals in the hundreds of thousands.
func wakeSlackJ(s Scenario) float64 {
	up := s.UpNodeConfigs()
	maxTrans, idleSum := 0.0, 0.0
	for _, n := range up {
		for _, m := range []disk.Model{n.DataModel, n.BufferModel} {
			if m.SpinUpSec > maxTrans {
				maxTrans = m.SpinUpSec
			}
			if m.SpinDownSec > maxTrans {
				maxTrans = m.SpinDownSec
			}
		}
		idleSum += float64(n.DataDisks)*n.DataModel.PIdle + float64(n.BufferDisks)*n.BufferModel.PIdle
	}
	return maxTrans * (55*float64(len(up)) + idleSum)
}

// checkAdaptiveDominatesNPF is the adaptive arm's headline guarantee as
// an invariant: in every regime the generator can produce — drifting,
// flash-crowd, diurnal, or stationary — the online policy must not lose
// energy versus never managing power at all, beyond one fleet-wide wake
// slack per sleep episode (counted by spin-downs — every episode starts
// with one; spin-ups undercount episodes still asleep at trace end).
// The per-episode form is the tight sound bound for an online policy:
// each episode can extend the critical path by at most one transition
// time (the disk-level transition and dwell costs are already in the
// energy ledger the totals compare), and no online policy can rule out
// that every one of its episodes lands on the path — e.g. when the
// trace simply ends mid-spin-down. The episode
// count itself is bounded by the transition-budget oracle, so the two
// checks together cage the worst case: bounded episodes, bounded loss
// per episode. When the policy took no action at all, the run must
// match NPF exactly — the arm starts as NPF and pays nothing for its
// bookkeeping.
func checkAdaptiveDominatesNPF(a *Artifacts) *Failure {
	s, r := a.Scenario, a.Result
	if !s.Adaptive || s.Inject == InjectBadEstimator {
		return nil
	}
	if r.SpinDowns == 0 && r.PrefetchedFiles == 0 {
		if !closeTo(r.TotalEnergyJ, a.NPF.TotalEnergyJ) {
			return failf("adaptive-dominates-npf",
				"adaptive arm took no actions but used %g J versus NPF's %g J",
				r.TotalEnergyJ, a.NPF.TotalEnergyJ)
		}
		return nil
	}
	if slack := float64(r.SpinDowns) * wakeSlackJ(s); r.TotalEnergyJ > a.NPF.TotalEnergyJ+slack {
		return failf("adaptive-dominates-npf",
			"adaptive arm used %g J, NPF baseline %g J (+%g J wake slack): lost %g J",
			r.TotalEnergyJ, a.NPF.TotalEnergyJ, slack, r.TotalEnergyJ-a.NPF.TotalEnergyJ-slack)
	}
	return nil
}

// checkAdaptiveTransitionBudget re-derives the adaptive arm's hard
// anti-thrash bound from the journal: no data disk may begin more than
// BudgetPerWindow spin-downs inside any BudgetWindowSec sliding window.
// The bound holds for *any* estimator state — it is exactly what makes
// a mispredicting estimator safe — so the oracle checks it even (and
// especially) under the bad-estimator injection.
func checkAdaptiveTransitionBudget(a *Artifacts) *Failure {
	s := a.Scenario
	if !s.Adaptive {
		return nil
	}
	p := adaptive.Defaults()
	b, w := p.BudgetPerWindow, p.BudgetWindowSec
	states, _ := byDisk(a.Events)
	for name, tl := range states {
		if !strings.Contains(name, "/data") {
			continue
		}
		var downs []float64
		for _, ch := range tl {
			if ch.state == "spinning-down" {
				downs = append(downs, ch.t)
			}
		}
		for i := 0; i+b < len(downs); i++ {
			if downs[i+b] < downs[i]+w-eps {
				return failf("adaptive-transition-budget",
					"disk %s began %d spin-downs within %.3g s (t=%g..%g), budget is %d per %g s",
					name, b+1, downs[i+b]-downs[i], downs[i], downs[i+b], b, w)
			}
		}
	}
	return nil
}
