package simtest

// The shrinker: given a failing scenario, search for a smaller scenario
// that fails the *same* oracle, and keep reducing until a fixed point.
// Smaller means fewer requests and files first (they dominate repro
// reading time), then fewer faults and policy toggles, then a smaller
// cluster. The result is the scenario printed in the one-line repro
// command, so minimality directly buys debuggability.

// CheckFn judges one scenario; nil means all invariants hold. Shrink is
// parameterized over it so tests can shrink against synthetic failure
// predicates without running the simulator.
type CheckFn func(Scenario) *Failure

// ShrinkResult reports what the shrinker found.
type ShrinkResult struct {
	Scenario Scenario // the minimal failing scenario
	Failure  *Failure // its (matching-oracle) failure
	Runs     int      // scenario evaluations spent
}

// shrinkMaxRuns bounds the search: each evaluation is a full double
// simulation, so the budget keeps worst-case shrink time to a few
// seconds.
const shrinkMaxRuns = 300

// Shrink minimizes a failing scenario. fail is the original failure;
// a candidate counts as "still failing" only when check returns a
// failure from the same oracle, so the shrinker cannot drift onto an
// unrelated bug while simplifying. The returned scenario always fails
// (it is the last accepted candidate, or the original).
func Shrink(s Scenario, fail *Failure, check CheckFn) ShrinkResult {
	res := ShrinkResult{Scenario: s, Failure: fail}
	accept := func(cand Scenario) bool {
		if res.Runs >= shrinkMaxRuns {
			return false
		}
		if cand == res.Scenario || cand.Valid() != nil {
			return false
		}
		res.Runs++
		f := check(cand)
		if f == nil || f.Oracle != fail.Oracle {
			return false
		}
		res.Scenario, res.Failure = cand, f
		return true
	}

	// Each pass walks every reducer; repeat until a whole pass accepts
	// nothing (fixed point) or the budget runs out.
	for changed := true; changed && res.Runs < shrinkMaxRuns; {
		changed = false
		for _, reduce := range reducers {
			for _, cand := range reduce(res.Scenario) {
				if accept(cand) {
					changed = true
					break // re-propose from the smaller scenario
				}
			}
		}
	}
	return res
}

// reducers propose reduction candidates, most aggressive first (the
// classic delta-debugging ladder: try the big jump, fall back to smaller
// steps). Proposals may be invalid — Shrink filters through Valid().
var reducers = []func(Scenario) []Scenario{
	// Fewer requests: the strongest lever on repro size.
	func(s Scenario) []Scenario {
		return intLadder(s, s.Requests, 1, func(s Scenario, v int) Scenario { s.Requests = v; return s })
	},
	// Fewer files.
	func(s Scenario) []Scenario {
		return intLadder(s, s.Files, 1, func(s Scenario, v int) Scenario { s.Files = v; return s })
	},
	// Drop faults.
	func(s Scenario) []Scenario {
		return intLadder(s, s.DownNodes, 0, func(s Scenario, v int) Scenario { s.DownNodes = v; return s })
	},
	// Disable policy toggles one at a time.
	func(s Scenario) []Scenario {
		var out []Scenario
		for _, f := range []func(*Scenario){
			func(s *Scenario) { s.WritePct = 0 },
			func(s *Scenario) { s.SizeSpreadPct = 0 },
			func(s *Scenario) { s.StripeChunkKB = 0 },
			func(s *Scenario) { s.ReprefetchEvery = 0 },
			func(s *Scenario) { s.Prewake = false },
			func(s *Scenario) { s.Hints = false },
			func(s *Scenario) { s.WriteBuffer = false },
			func(s *Scenario) { s.Concentrate = false },
			func(s *Scenario) { s.MAID = false },
			func(s *Scenario) { s.DPMWithoutPrefetch = false },
			func(s *Scenario) { s.BufferCapMB = 0 },
			func(s *Scenario) { s.InterArrivalMS = 0 },
		} {
			c := s
			f(&c)
			out = append(out, c)
		}
		return out
	},
	// Shrink the cluster.
	func(s Scenario) []Scenario {
		var out []Scenario
		for _, cand := range intLadder(s, s.NodeCount, 1, func(s Scenario, v int) Scenario {
			s.NodeCount = v
			if s.DownNodes >= v {
				s.DownNodes = v - 1
			}
			if s.Type2Count > v {
				s.Type2Count = v
			}
			return s
		}) {
			out = append(out, cand)
		}
		c := s
		c.Type2Count = 0
		out = append(out, c)
		return out
	},
	func(s Scenario) []Scenario {
		return intLadder(s, s.DataDisks, 1, func(s Scenario, v int) Scenario { s.DataDisks = v; return s })
	},
	func(s Scenario) []Scenario {
		return intLadder(s, s.BufferDisks, 1, func(s Scenario, v int) Scenario { s.BufferDisks = v; return s })
	},
	// Simplify the workload parameters.
	func(s Scenario) []Scenario {
		return intLadder(s, s.PrefetchCount, 1, func(s Scenario, v int) Scenario { s.PrefetchCount = v; return s })
	},
	func(s Scenario) []Scenario {
		return intLadder(s, s.MeanSizeKB, 1, func(s Scenario, v int) Scenario { s.MeanSizeKB = v; return s })
	},
	func(s Scenario) []Scenario {
		if s.MU <= 1 {
			return nil
		}
		c := s
		c.MU = 1
		return []Scenario{c}
	},
}

// intLadder proposes floor, then successive halvings toward floor, then
// the single-step decrement.
func intLadder(s Scenario, cur, floor int, with func(Scenario, int) Scenario) []Scenario {
	if cur <= floor {
		return nil
	}
	var out []Scenario
	seen := map[int]bool{cur: true}
	propose := func(v int) {
		if v < floor || seen[v] {
			return
		}
		seen[v] = true
		out = append(out, with(s, v))
	}
	propose(floor)
	for v := cur / 2; v > floor; v /= 2 {
		propose(v)
	}
	propose(cur - 1)
	return out
}
