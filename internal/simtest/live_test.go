package simtest

import (
	"testing"

	"eevfs/internal/simtest/leak"
)

// TestLiveScenario runs one seeded chaos scenario against the real
// fs.Server/Node TCP stack and checks the metadata-consistency oracle.
// Seed 1 mixes writes and injected latency; seed 20 additionally kills
// and restarts a node mid-run, exercising the degraded path.
func TestLiveScenario(t *testing.T) {
	leak.Check(t)
	seeds := []uint64{1, 20}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		s := GenerateLive(seed)
		t.Logf("live seed=%d nodes=%d files=%d ops=%d writes=%d%% latency=%dms k=%d kill=%d",
			s.Seed, s.Nodes, s.Files, s.Ops, s.WritePct, s.LatencyMS, s.PrefetchK, s.KillNode)
		if err := CheckLive(s, t.TempDir()); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestGenerateLiveDeterministic: the op plan must derive from the seed.
func TestGenerateLiveDeterministic(t *testing.T) {
	for i := 0; i < 50; i++ {
		seed := uint64(500 + i)
		a, b := GenerateLive(seed), GenerateLive(seed)
		if a != b {
			t.Fatalf("seed %d: GenerateLive is not deterministic: %+v vs %+v", seed, a, b)
		}
		if a.Nodes < 2 || a.Files < 3 || a.Ops < 10 {
			t.Fatalf("seed %d: degenerate live scenario %+v", seed, a)
		}
		if a.KillNode >= a.Nodes {
			t.Fatalf("seed %d: kill target %d out of range", seed, a.KillNode)
		}
	}
}
