package simtest

import (
	"os"
	"testing"

	"eevfs/internal/simtest/leak"
)

// TestLiveScenario runs one seeded chaos scenario against the real
// fs.Server/Node TCP stack and checks the metadata-consistency oracle.
// Seed 1 mixes writes and injected latency; seed 20 additionally kills
// and restarts a node mid-run, exercising the degraded path.
func TestLiveScenario(t *testing.T) {
	leak.Check(t)
	seeds := []uint64{1, 20}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		s := GenerateLive(seed)
		t.Logf("live seed=%d nodes=%d files=%d ops=%d writes=%d%% latency=%dms k=%d kill=%d srv=%d kp=%v",
			s.Seed, s.Nodes, s.Files, s.Ops, s.WritePct, s.LatencyMS, s.PrefetchK, s.KillNode, s.Servers, s.KillPrimary)
		if f := CheckLive(s, t.TempDir()); f != nil {
			t.Errorf("seed %d: %v", seed, f)
		}
	}
}

// TestLiveFailoverScenario is the headline kill-the-primary run: a
// replicated 3-server group loses its primary mid-op-stream and every
// oracle — typed errors only, promotion, replica convergence, node
// ground truth — must still hold. The 200-seed battery of these rides
// the soak runner (make soak-failover); this pins two seeds in CI.
func TestLiveFailoverScenario(t *testing.T) {
	leak.Check(t)
	seeds := []uint64{3, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		s := GenerateLive(seed)
		s.Servers = 3
		s.KillPrimary = true
		if f := CheckLive(s, t.TempDir()); f != nil {
			t.Errorf("seed %d: %v\n  repro: %s", seed, f, LiveReproCommand(s))
		}
	}
}

// TestLiveShrinkInjectedDivergence proves the convergence proof is not
// vacuous: with the silent-replication bug injected, the oracle must
// catch the lost mutation, and the shrinker must reduce the scenario
// while reproducing the *same* oracle failure.
func TestLiveShrinkInjectedDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("live shrink runs many real TCP clusters")
	}
	leak.Check(t)
	s := GenerateLive(7)
	s.Servers = 2
	s.KillPrimary = true
	s.Inject = "silent-replication"
	check := func(c LiveScenario) *LiveFailure {
		dir, err := os.MkdirTemp("", "live-shrink-")
		if err != nil {
			t.Fatal(err)
		}
		defer os.RemoveAll(dir)
		return CheckLive(c, dir)
	}
	fail := check(s)
	if fail == nil {
		t.Fatal("silent-replication injection produced no failure: the convergence oracle is vacuous")
	}
	res := ShrinkLive(s, fail, check)
	if res.Failure.Oracle != fail.Oracle {
		t.Fatalf("shrinker drifted from oracle %s to %s", fail.Oracle, res.Failure.Oracle)
	}
	if res.Scenario.Ops > s.Ops || res.Scenario.Files > s.Files {
		t.Fatalf("shrinker grew the scenario: %+v", res.Scenario)
	}
	if !res.Scenario.KillPrimary || res.Scenario.Servers < 2 || res.Scenario.Inject == "" {
		t.Fatalf("shrinker dropped an ingredient the failure needs: %+v", res.Scenario)
	}
	t.Logf("shrunk ops %d->%d files %d->%d in %d runs; repro: %s",
		s.Ops, res.Scenario.Ops, s.Files, res.Scenario.Files, res.Runs, LiveReproCommand(res.Scenario))
}

// TestGenerateLiveDeterministic: the op plan must derive from the seed.
func TestGenerateLiveDeterministic(t *testing.T) {
	for i := 0; i < 50; i++ {
		seed := uint64(500 + i)
		a, b := GenerateLive(seed), GenerateLive(seed)
		if a != b {
			t.Fatalf("seed %d: GenerateLive is not deterministic: %+v vs %+v", seed, a, b)
		}
		if a.Nodes < 2 || a.Files < 3 || a.Ops < 10 {
			t.Fatalf("seed %d: degenerate live scenario %+v", seed, a)
		}
		if a.KillNode >= a.Nodes {
			t.Fatalf("seed %d: kill target %d out of range", seed, a.KillNode)
		}
		if a.Servers < 1 || a.Servers > 3 {
			t.Fatalf("seed %d: server count %d out of range", seed, a.Servers)
		}
		if a.KillPrimary && a.Servers < 2 {
			t.Fatalf("seed %d: kill-primary with %d servers", seed, a.Servers)
		}
		if a.Inject != "" {
			t.Fatalf("seed %d: generation set an injection: %+v", seed, a)
		}
	}
}

// TestLiveReproRoundTrip: the live codec must round-trip every field,
// including the sentinel defaults (KillNode -1, Servers 1).
func TestLiveReproRoundTrip(t *testing.T) {
	cases := []LiveScenario{
		GenerateLive(1),
		GenerateLive(20),
		{Seed: 9, Nodes: 2, Files: 1, Ops: 1, KillNode: -1, Servers: 1},
		{Seed: 42, Nodes: 3, Files: 4, Ops: 12, WritePct: 30, LatencyMS: 2,
			PrefetchK: 2, KillNode: 0, Servers: 3, KillPrimary: true, Inject: "silent-replication"},
	}
	for _, want := range cases {
		enc := want.Encode()
		if !IsLiveRepro(enc) {
			t.Fatalf("%q not recognized as live repro", enc)
		}
		got, err := DecodeLiveScenario(enc)
		if err != nil {
			t.Fatalf("decode %q: %v", enc, err)
		}
		if got != want {
			t.Fatalf("round trip %q: %+v != %+v", enc, got, want)
		}
	}
	// A simulator repro must not be mistaken for a live one.
	if IsLiveRepro(Scenario{Seed: 1}.Encode()) {
		t.Fatal("simulator repro classified as live")
	}
	if _, err := DecodeLiveScenario("v1,seed=1"); err == nil {
		t.Fatal("decoding a simulator repro as live should fail")
	}
}
