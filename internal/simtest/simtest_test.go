package simtest

import (
	"strings"
	"testing"
)

// corpusSize is the fixed-seed corpus checked on every `go test -short`
// run: enough scenarios to exercise every generator branch, small enough
// to stay inside the tier-1 budget.
const corpusSize = 60

const corpusBase = uint64(1000)

// TestCorpus runs the fixed seed corpus through every oracle. This is
// the deterministic replay of what the soak CLI explores with random
// seeds, so any oracle unsoundness (a check that flakes on legal
// behavior) shows up here first.
func TestCorpus(t *testing.T) {
	dominance := 0
	maid, writes, down := 0, 0, 0
	adaptive, drifting, flash, diurnal := 0, 0, 0, 0
	for i := 0; i < corpusSize; i++ {
		seed := corpusBase + uint64(i)
		s := Generate(seed)
		if DominanceEligible(s) {
			dominance++
		}
		if s.MAID {
			maid++
		}
		if s.WritePct > 0 {
			writes++
		}
		if s.DownNodes > 0 {
			down++
		}
		if s.Adaptive {
			adaptive++
		}
		if s.DriftPhases > 1 {
			drifting++
		}
		if s.FlashPct > 0 {
			flash++
		}
		if s.DiurnalPct > 0 {
			diurnal++
		}
		if f := Check(s); f != nil {
			t.Errorf("seed %d: oracle %s: %s\n  repro: %s", seed, f.Oracle, f.Msg, ReproCommand(s))
		}
	}
	// The corpus must actually cover the interesting generator branches;
	// otherwise a pass is vacuous.
	if dominance == 0 {
		t.Error("corpus never hit the PF-dominates-NPF regime; the dominance oracle was vacuous")
	}
	if maid == 0 {
		t.Error("corpus never generated a MAID scenario")
	}
	if writes == 0 {
		t.Error("corpus never generated writes")
	}
	if down == 0 {
		t.Error("corpus never generated a degraded cluster")
	}
	if adaptive == 0 {
		t.Error("corpus never generated an adaptive-arm scenario; its oracles were vacuous")
	}
	if drifting == 0 {
		t.Error("corpus never generated popularity drift")
	}
	if flash == 0 {
		t.Error("corpus never generated a flash crowd")
	}
	if diurnal == 0 {
		t.Error("corpus never generated diurnal load")
	}
}

// TestGenerateDrift checks the steered drift generator behind the
// `eevfssim -drift` battery: deterministic, always the adaptive arm on a
// drift workload, and valid across a wide seed sweep.
func TestGenerateDrift(t *testing.T) {
	for i := 0; i < 200; i++ {
		seed := uint64(5_000_000 + i*31)
		s := GenerateDrift(seed)
		if b := GenerateDrift(seed); s != b {
			t.Fatalf("seed %d: GenerateDrift is not deterministic", seed)
		}
		if !s.Adaptive || !s.UsesDrift() {
			t.Fatalf("seed %d: drift generator produced a non-adaptive scenario: %+v", seed, s)
		}
		if s.Prefetch || s.MAID || s.DPMWithoutPrefetch || s.WriteBuffer || s.WritePct != 0 {
			t.Fatalf("seed %d: adaptive arm is not standalone: %+v", seed, s)
		}
		if err := s.Valid(); err != nil {
			t.Fatalf("seed %d generates an invalid drift scenario: %v\n%+v", seed, err, s)
		}
	}
}

// TestGenerateValid checks that every generated scenario expands to a
// config the cluster simulator accepts, over a wider sweep than the
// corpus.
func TestGenerateValid(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 100
	}
	for i := 0; i < n; i++ {
		s := Generate(uint64(7_000_000 + i))
		if err := s.Valid(); err != nil {
			t.Fatalf("seed %d generates an invalid scenario: %v\n%+v", s.Seed, err, s)
		}
	}
}

// TestGenerateDeterministic: the same seed must yield the same scenario.
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 50; i++ {
		seed := uint64(42 + i*17)
		if a, b := Generate(seed), Generate(seed); a != b {
			t.Fatalf("seed %d: Generate is not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestInjectedStandbyReadCaughtAndShrunk is the acceptance path for the
// whole harness: an intentionally broken invariant (a disk that services
// a read while in standby) must be (1) caught by the power-legality
// oracle, (2) shrunk to a <=10-request reproducer, and (3) replayable
// from the printed repro string, deterministically hitting the same
// oracle.
func TestInjectedStandbyReadCaughtAndShrunk(t *testing.T) {
	s := Generate(corpusBase)
	s.Inject = InjectReadStandby

	f := Check(s)
	if f == nil {
		t.Fatal("injected standby read was not caught by any oracle")
	}
	if f.Oracle != "power-legal" {
		t.Fatalf("injected standby read attributed to oracle %q, want power-legal (%s)", f.Oracle, f.Msg)
	}
	if !strings.Contains(f.Msg, "standby") {
		t.Errorf("failure message does not name the illegal state: %s", f.Msg)
	}

	min := Shrink(s, f, Check)
	if min.Failure.Oracle != "power-legal" {
		t.Fatalf("shrinker drifted to oracle %q", min.Failure.Oracle)
	}
	if min.Scenario.Requests > 10 {
		t.Errorf("shrunk reproducer still has %d requests, want <= 10\n%+v", min.Scenario.Requests, min.Scenario)
	}
	if min.Scenario.Inject != InjectReadStandby {
		t.Error("shrinker dropped the injection, which is what makes the scenario fail")
	}

	// The printed command's -repro payload must replay to the same
	// failure.
	cmd := ReproCommand(min.Scenario)
	if !strings.HasPrefix(cmd, "eevfssim -seed=") || !strings.Contains(cmd, "-repro='v1,") {
		t.Fatalf("unexpected repro command shape: %s", cmd)
	}
	decoded, err := DecodeScenario(min.Scenario.Encode())
	if err != nil {
		t.Fatalf("re-decoding the repro string: %v", err)
	}
	if decoded != min.Scenario {
		t.Fatalf("repro string does not round-trip:\nencoded %+v\ndecoded %+v", min.Scenario, decoded)
	}
	for run := 0; run < 2; run++ {
		rf := Check(decoded)
		if rf == nil || rf.Oracle != "power-legal" {
			t.Fatalf("replay %d of the minimal repro did not reproduce power-legal: %+v", run, rf)
		}
	}
}

// TestInjectedBadEstimatorCaughtAndShrunk is the acceptance path for the
// adaptive oracles: an intentionally broken inter-arrival estimator (one
// that always claims the next gap is profitably long and bypasses the
// transition budget) must thrash the disks hard enough for the
// transition-budget oracle to fire, and the failure must shrink to a
// small reproducer that replays from the printed one-line command.
func TestInjectedBadEstimatorCaughtAndShrunk(t *testing.T) {
	// Steer the shape so per-disk gaps land just above the spin-down
	// threshold (~3 s): 4 data disks sharing 1 req/s gives ~4 s gaps,
	// which a sane policy would ride out and a broken one sleeps into.
	s := GenerateDrift(corpusBase)
	s.NodeCount = 2
	s.Type2Count = 0
	s.DataDisks = 2
	s.BufferDisks = 1
	s.DownNodes = 0
	s.IdleThresholdSec = 1
	s.Files = 200
	s.Requests = 160
	s.MU = 50
	s.InterArrivalMS = 1000
	s.FlashPct = 0
	s.DiurnalPct = 0
	s.Inject = InjectBadEstimator
	if err := s.Valid(); err != nil {
		t.Fatalf("steered scenario invalid: %v", err)
	}

	f := Check(s)
	if f == nil {
		t.Fatal("injected bad estimator was not caught by any oracle")
	}
	if f.Oracle != "adaptive-transition-budget" {
		t.Fatalf("bad estimator attributed to oracle %q, want adaptive-transition-budget (%s)", f.Oracle, f.Msg)
	}

	min := Shrink(s, f, Check)
	if min.Failure.Oracle != "adaptive-transition-budget" {
		t.Fatalf("shrinker drifted to oracle %q", min.Failure.Oracle)
	}
	if min.Scenario.Inject != InjectBadEstimator {
		t.Error("shrinker dropped the injection, which is what makes the scenario fail")
	}
	if !min.Scenario.Adaptive {
		t.Error("shrinker dropped the adaptive arm, which is what the oracle checks")
	}
	// Six spin-downs inside one budget window need ~100 one-second
	// arrivals, so the floor is far above the standby test's 10 — but
	// the shrinker must still make progress.
	if min.Scenario.Requests >= s.Requests {
		t.Errorf("shrinker made no progress on requests: %d of %d", min.Scenario.Requests, s.Requests)
	}

	cmd := ReproCommand(min.Scenario)
	if !strings.HasPrefix(cmd, "eevfssim -seed=") || !strings.Contains(cmd, "-repro='v1,") {
		t.Fatalf("unexpected repro command shape: %s", cmd)
	}
	decoded, err := DecodeScenario(min.Scenario.Encode())
	if err != nil {
		t.Fatalf("re-decoding the repro string: %v", err)
	}
	if decoded != min.Scenario {
		t.Fatalf("repro string does not round-trip:\nencoded %+v\ndecoded %+v", min.Scenario, decoded)
	}
	for run := 0; run < 2; run++ {
		rf := Check(decoded)
		if rf == nil || rf.Oracle != "adaptive-transition-budget" {
			t.Fatalf("replay %d of the minimal repro did not reproduce the budget violation: %+v", run, rf)
		}
	}
}

// TestInjectedEnergySkewCaught: corrupting the disk-energy total by one
// joule must trip the conservation oracle.
func TestInjectedEnergySkewCaught(t *testing.T) {
	s := Generate(corpusBase + 1)
	s.Inject = InjectEnergySkew
	f := Check(s)
	if f == nil {
		t.Fatal("injected energy skew was not caught")
	}
	if f.Oracle != "energy-conservation" {
		t.Fatalf("energy skew attributed to oracle %q: %s", f.Oracle, f.Msg)
	}
}

// TestRunArtifacts sanity-checks the artifact plumbing the oracles rely
// on: a journal is attached and the NPF arm really has power management
// and prefetching stripped.
func TestRunArtifacts(t *testing.T) {
	s := Generate(corpusBase + 2)
	s.Prefetch = true
	if s.PrefetchCount == 0 {
		s.PrefetchCount = 10
	}
	s.MAID = false
	s.DPMWithoutPrefetch = false
	s.Adaptive = false
	s.DriftPhases, s.FlashPct, s.DiurnalPct = 0, 0, 0
	if err := s.Valid(); err != nil {
		t.Fatalf("steered scenario invalid: %v", err)
	}
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == 0 {
		t.Error("PF arm journaled no events")
	}
	if a.NPF.PrefetchedFiles != 0 || a.NPF.SpinUps != 0 || a.NPF.SpinDowns != 0 {
		t.Errorf("NPF arm is not static: %+v", a.NPF)
	}
	if a.Result.Requests != a.NPF.Requests {
		t.Errorf("arms served different request counts: %d vs %d", a.Result.Requests, a.NPF.Requests)
	}
}
