// Package simtest is the deterministic simulation-testing (DST) harness:
// it generates randomized cluster scenarios from a seed, runs them through
// the discrete-event simulator (and, for live scenarios, the real
// fs.Server/Node TCP stack), checks a library of invariant oracles against
// the results, and — when an oracle fails — shrinks the scenario to a
// minimal reproducer that replays from a one-line command.
//
// The paper's claims (Section VI) are universally quantified: energy
// totals, transition counts, and response times must stay consistent for
// *any* mix of MU, inter-arrival delay, prefetch count, and faults. Hand
// written tests pin a handful of points in that space; this harness
// searches it mechanically.
//
// Everything on the simulator path is wall-clock free: a Scenario is a
// pure value, the workload is derived from Scenario.Seed, and the
// simulator runs on simtime — so a seed replays bit-identically, forever
// (enforced by the determinism oracle and wallclock_test.go).
package simtest

import (
	"math"

	"eevfs/internal/adaptive"
	"eevfs/internal/cluster"
	"eevfs/internal/disk"
	"eevfs/internal/rng"
	"eevfs/internal/trace"
	"eevfs/internal/workload"
)

// Scenario is one fully-specified simulated deployment + workload. It is
// a plain value: two equal Scenarios produce bit-identical runs. The
// fields use integral units (KB, MB, ms, percent) where possible so the
// textual repro encoding round-trips exactly.
type Scenario struct {
	// Seed is the generator seed: it determined every field below and
	// also seeds the workload. After shrinking, the fields no longer
	// match Generate(Seed) — the repro string carries them explicitly.
	Seed uint64

	// Cluster shape.
	NodeCount   int // storage nodes
	Type2Count  int // trailing nodes that use Type 2 links/disks (Table I)
	DataDisks   int // data disks per node (uniform, as the sim requires)
	BufferDisks int // buffer disks per node
	DownNodes   int // leading nodes marked out of service for the run

	// Policy switches (cluster.Config mirror).
	Prefetch           bool
	PrefetchCount      int
	Hints              bool
	Prewake            bool
	DPMWithoutPrefetch bool
	WriteBuffer        bool
	MAID               bool
	Concentrate        bool
	StripeChunkKB      int
	ReprefetchEvery    int
	IdleThresholdSec   float64
	BufferCapMB        int // 0 = drive-capacity bound
	RouteLatencyMS     float64

	// Adaptive selects the online power-management arm (mutually
	// exclusive with every other policy switch, like cluster.Config).
	Adaptive bool

	// Workload (workload.SyntheticConfig mirror).
	Files          int
	Requests       int
	MeanSizeKB     int
	SizeSpreadPct  int
	MU             float64
	InterArrivalMS float64
	WritePct       int

	// Drift dimensions (workload.DriftConfig mirror; all zero = the
	// plain synthetic workload). Adaptive scenarios always use the drift
	// generator, with DriftPhases=0 meaning one stationary phase.
	DriftPhases int // popularity epochs
	FlashPct    int // flash-crowd redirect probability, percent (0 = off)
	DiurnalPct  int // diurnal inter-arrival amplitude, percent (0 = off)

	// Inject names a test-only invariant breaker the harness applies to
	// the run's artifacts before the oracles see them (see harness.go).
	// It exists to prove the oracle+shrinker pipeline actually catches
	// and minimizes violations; "" (the default) runs clean.
	Inject string
}

// Test-only invariant breakers accepted in Scenario.Inject.
const (
	// InjectReadStandby adds a phantom disk to the journal whose
	// timeline legally spins down to standby and then services a read
	// without waking — the canonical power-state violation.
	InjectReadStandby = "read-standby"
	// InjectEnergySkew adds a joule to Result.DiskEnergyJ without
	// touching the per-disk stats, breaking energy conservation.
	InjectEnergySkew = "energy-skew"
	// InjectBadEstimator breaks the adaptive arm's estimator before the
	// run: it claims every inter-arrival gap is profitably long and
	// bypasses the transition budget (adaptive.Params.Mispredict), so
	// the disks thrash — which the adaptive-transition-budget oracle
	// must catch. Only meaningful on Adaptive scenarios.
	InjectBadEstimator = "bad-estimator"
)

// Generate derives a scenario from a seed. Every generated scenario is
// valid by construction (Valid() == nil): the generator owns the
// mutual-exclusion rules of cluster.Config (MAID vs Prefetch, reprefetch
// vs hints, ...) so the random walk never wanders outside the legal
// configuration space.
func Generate(seed uint64) Scenario {
	src := rng.New(seed)
	s := Scenario{Seed: seed}

	// Shape: small clusters keep each run in the low milliseconds while
	// still covering heterogeneity, multiple spindles, and dead nodes.
	s.NodeCount = 1 + src.Intn(6)
	s.Type2Count = src.Intn(s.NodeCount + 1)
	s.DataDisks = 1 + src.Intn(3)
	s.BufferDisks = 1 + src.Intn(2)
	if s.NodeCount > 1 && src.Float64() < 0.2 {
		s.DownNodes = 1 + src.Intn(s.NodeCount-1)
	}
	s.IdleThresholdSec = []float64{1, 2, 5, 10}[src.Intn(4)]
	s.RouteLatencyMS = float64(1+src.Intn(5)) / 2 // 0.5..2.5 ms

	// Policy family: mostly PF (the system under test), with the online
	// adaptive arm, MAID, and the DPM/NPF baselines mixed in.
	switch p := src.Float64(); {
	case p < 0.55:
		s.Prefetch = true
	case p < 0.65:
		s.MAID = true
	case p < 0.90:
		s.Adaptive = true
	default:
		s.DPMWithoutPrefetch = src.Float64() < 0.5
	}
	if s.Adaptive {
		// Drift dimensions: phase rotation most of the time, flash
		// crowds and diurnal load each mixed into a slice of the space.
		if src.Float64() < 0.8 {
			s.DriftPhases = 1 + src.Intn(12)
		}
		if src.Float64() < 0.35 {
			s.FlashPct = 20 + src.Intn(61)
		}
		if src.Float64() < 0.35 {
			s.DiurnalPct = 20 + src.Intn(61)
		}
	}
	if s.Prefetch {
		s.PrefetchCount = 1 + src.Intn(120)
		if src.Float64() < 0.25 {
			s.ReprefetchEvery = 10 + src.Intn(60)
		} else {
			s.Hints = src.Float64() < 0.6
			s.Prewake = s.Hints && src.Float64() < 0.4
		}
		s.WriteBuffer = src.Float64() < 0.35
	}
	s.Concentrate = src.Float64() < 0.15
	if src.Float64() < 0.25 {
		s.StripeChunkKB = []int{256, 1024, 4096}[src.Intn(3)]
	}
	if src.Float64() < 0.3 {
		s.BufferCapMB = 64 + src.Intn(512)
	}

	// Workload: Table II ranges, scaled down ~5x to keep runs quick.
	s.Files = 10 + src.Intn(291)
	s.Requests = 20 + src.Intn(281)
	s.MeanSizeKB = 256 + src.Intn(8193)
	if src.Float64() < 0.4 {
		s.SizeSpreadPct = src.Intn(60)
	}
	// MU log-uniform over [1, 2000]: low MU concentrates accesses (the
	// fully-covered regime), high MU spreads them (the miss regime).
	s.MU = math.Exp(src.Float64() * math.Log(2000))
	if src.Float64() < 0.9 {
		s.InterArrivalMS = float64(50 + src.Intn(951)) // 50..1000 ms
	}
	if src.Float64() < 0.3 {
		s.WritePct = 1 + src.Intn(40)
	}

	// A slice of the space is steered into the paper's fully-covered
	// regime (low MU, long delays, read-only, small files) so the
	// PF-dominates-NPF oracle is exercised rather than always gated off.
	if s.Prefetch && src.Float64() < 0.3 {
		s.WritePct = 0
		s.MAID = false
		s.MeanSizeKB = 256 + src.Intn(1793) // <= ~2 MB
		s.MU = 1 + float64(src.Intn(10))
		s.InterArrivalMS = float64(500 + src.Intn(501))
		s.Requests = 150 + src.Intn(151)
		s.PrefetchCount = 40 + src.Intn(81)
	}
	if s.Adaptive {
		// The adaptive arm is standalone (cluster.Config.Validate) and
		// its drift workload is read-only.
		s.Concentrate = false
		s.WritePct = 0
	}
	return s
}

// GenerateDrift derives an adaptive-arm drift scenario from a seed: the
// steered generator behind the `eevfssim -drift` battery and the nightly
// soak job. Every scenario runs the online policy on a drift workload so
// the adaptive oracles are exercised on every single iteration instead
// of the ~25 % of Generate's space that lands on the adaptive branch.
func GenerateDrift(seed uint64) Scenario {
	s := Generate(seed)
	s.Prefetch = false
	s.PrefetchCount = 0
	s.Hints = false
	s.Prewake = false
	s.DPMWithoutPrefetch = false
	s.WriteBuffer = false
	s.MAID = false
	s.Concentrate = false
	s.ReprefetchEvery = 0
	s.Adaptive = true
	s.WritePct = 0
	// Re-draw the drift dimensions from a derived stream so they are
	// present regardless of which policy branch Generate took.
	src := rng.New(seed ^ 0x9E3779B97F4A7C15)
	s.DriftPhases = 1 + src.Intn(12)
	if src.Float64() < 0.4 {
		s.FlashPct = 20 + src.Intn(61)
	}
	if src.Float64() < 0.4 {
		s.DiurnalPct = 20 + src.Intn(61)
	}
	// Drift needs enough requests for the phases to be visible.
	if s.Requests < 80 {
		s.Requests += 80
	}
	return s
}

// nodeConfigs expands the scenario shape into per-node configs (before
// the DownNodes prefix is dropped).
func (s Scenario) nodeConfigs() []cluster.NodeConfig {
	nodes := make([]cluster.NodeConfig, s.NodeCount)
	for i := range nodes {
		nc := cluster.NodeConfig{
			LinkMbps:    1000,
			DataModel:   disk.ModelType1,
			BufferModel: disk.ModelType1,
			DataDisks:   s.DataDisks,
			BufferDisks: s.BufferDisks,
		}
		if i >= s.NodeCount-s.Type2Count {
			nc.LinkMbps = 100
			nc.DataModel = disk.ModelType2
			nc.BufferModel = disk.ModelType2
		}
		nodes[i] = nc
	}
	return nodes
}

// UpNodeConfigs returns the configs of the nodes that stay in service —
// index i here matches the "node<i>/..." disk names in the run's journal
// and Result.PerDisk, which the oracles rely on to find each disk's
// power model.
func (s Scenario) UpNodeConfigs() []cluster.NodeConfig {
	return s.nodeConfigs()[s.DownNodes:]
}

// ClusterConfig expands the scenario into the simulator configuration.
func (s Scenario) ClusterConfig() cluster.Config {
	cfg := cluster.Config{
		Nodes:               s.nodeConfigs(),
		NodeBasePowerW:      55,
		IdleThresholdSec:    s.IdleThresholdSec,
		Prefetch:            s.Prefetch,
		PrefetchCount:       s.PrefetchCount,
		Hints:               s.Hints,
		Prewake:             s.Prewake,
		DPMWithoutPrefetch:  s.DPMWithoutPrefetch,
		WriteBuffer:         s.WriteBuffer,
		MAID:                s.MAID,
		Concentrate:         s.Concentrate,
		StripeChunkBytes:    int64(s.StripeChunkKB) * 1024,
		ReprefetchEvery:     s.ReprefetchEvery,
		BufferCapacityBytes: int64(s.BufferCapMB) * 1e6,
		RouteLatencySec:     s.RouteLatencyMS / 1000,
		Adaptive:            s.Adaptive,
	}
	if s.Adaptive && s.Inject == InjectBadEstimator {
		// The bad-estimator injection is pre-run (it breaks the policy,
		// not the artifacts): the controller claims every gap profits
		// and ignores its transition budget.
		p := adaptive.Defaults()
		p.Mispredict = true
		cfg.AdaptiveParams = &p
	}
	for i := 0; i < s.DownNodes; i++ {
		cfg.DownNodes = append(cfg.DownNodes, i)
	}
	return cfg
}

// UsesDrift reports whether the scenario's workload comes from the
// composable drift generator rather than the plain synthetic one.
func (s Scenario) UsesDrift() bool {
	return s.Adaptive || s.DriftPhases > 0 || s.FlashPct > 0 || s.DiurnalPct > 0
}

// DriftWorkloadConfig expands the scenario into the drift-trace
// generator configuration (only meaningful when UsesDrift()).
func (s Scenario) DriftWorkloadConfig() workload.DriftConfig {
	phases := s.DriftPhases
	if phases < 1 {
		phases = 1
	}
	dc := workload.DriftConfig{
		NumFiles:     s.Files,
		NumRequests:  s.Requests,
		MeanSize:     int64(s.MeanSizeKB) * 1000,
		MU:           s.MU,
		Phases:       phases,
		InterArrival: s.InterArrivalMS / 1000,
		Seed:         s.Seed,
	}
	if s.FlashPct > 0 {
		dc.FlashStartFrac = 0.4
		dc.FlashDurFrac = 0.25
		dc.FlashBoost = float64(s.FlashPct) / 100
		dc.FlashFiles = 8
	}
	if s.DiurnalPct > 0 {
		dc.DiurnalPeriodSec = 60
		dc.DiurnalAmplitude = float64(s.DiurnalPct) / 100
	}
	return dc
}

// BuildTrace generates the scenario's workload trace, dispatching on the
// workload family.
func (s Scenario) BuildTrace() (*trace.Trace, error) {
	if s.UsesDrift() {
		return workload.Drift(s.DriftWorkloadConfig())
	}
	return workload.Synthetic(s.WorkloadConfig())
}

// WorkloadConfig expands the scenario into the synthetic-trace generator
// configuration. The workload shares the scenario seed.
func (s Scenario) WorkloadConfig() workload.SyntheticConfig {
	return workload.SyntheticConfig{
		NumFiles:      s.Files,
		NumRequests:   s.Requests,
		MeanSize:      int64(s.MeanSizeKB) * 1000,
		SizeSpread:    float64(s.SizeSpreadPct) / 100,
		MU:            s.MU,
		InterArrival:  s.InterArrivalMS / 1000,
		WriteFraction: float64(s.WritePct) / 100,
		Seed:          s.Seed,
	}
}

// Valid reports whether the scenario expands to configurations the
// simulator accepts. Generate always produces valid scenarios; the
// shrinker uses Valid to discard reduction candidates that would leave
// the legal space.
func (s Scenario) Valid() error {
	if err := s.ClusterConfig().Validate(); err != nil {
		return err
	}
	if s.UsesDrift() {
		return s.DriftWorkloadConfig().Validate()
	}
	return s.WorkloadConfig().Validate()
}
