package simtest

import (
	"strings"
	"testing"
)

// TestReproRoundTrip: Encode/Decode must be lossless for generated
// scenarios, including float fields (mu, inter-arrival) that need exact
// shortest-form formatting.
func TestReproRoundTrip(t *testing.T) {
	for i := 0; i < 200; i++ {
		s := Generate(uint64(9000 + i))
		if i%3 == 0 {
			s.Inject = InjectReadStandby
		}
		got, err := DecodeScenario(s.Encode())
		if err != nil {
			t.Fatalf("seed %d: decode: %v", s.Seed, err)
		}
		if got != s {
			t.Fatalf("seed %d: round trip lost data:\nin  %+v\nout %+v\nrepro %s", s.Seed, s, got, s.Encode())
		}
	}
}

// TestReproElidesZeros: the encoding stays short by dropping zero-valued
// fields, and the zero value decodes back.
func TestReproElidesZeros(t *testing.T) {
	s := Scenario{Seed: 5, NodeCount: 1, DataDisks: 1, Files: 1, Requests: 1, MeanSizeKB: 4, MU: 1}
	enc := s.Encode()
	for _, absent := range []string{"maid", "wb", "hints", "down", "inject", "writes"} {
		if strings.Contains(enc, absent+"=") {
			t.Errorf("zero field %q encoded: %s", absent, enc)
		}
	}
	got, err := DecodeScenario(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("elided round trip lost data: %+v vs %+v", got, s)
	}
}

// TestDecodeErrors: stale or mangled repro strings must fail loudly, not
// replay a wrong scenario.
func TestDecodeErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"wrong version", "v0,seed=1"},
		{"no version", "seed=1,nodes=2"},
		{"unknown key", "v1,seed=1,bogus=3"},
		{"missing equals", "v1,seed"},
		{"bad int", "v1,nodes=three"},
		{"bad bool", "v1,pf=yes"},
		{"bad float", "v1,mu=fast"},
		{"bad seed", "v1,seed=-1"},
	}
	for _, tc := range cases {
		if _, err := DecodeScenario(tc.in); err == nil {
			t.Errorf("%s: DecodeScenario(%q) succeeded, want error", tc.name, tc.in)
		}
	}
}

// TestReproKeysUnique guards the codec table against a copy-paste
// duplicate key, which would make decoding silently last-writer-wins.
func TestReproKeysUnique(t *testing.T) {
	keys := sortedKeys()
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			t.Fatalf("duplicate repro key %q", keys[i])
		}
	}
	if len(keys) != len(codecs) {
		t.Fatalf("sortedKeys returned %d keys for %d codecs", len(keys), len(codecs))
	}
}

// TestReproCommandShape: the printed line must be copy-pasteable.
func TestReproCommandShape(t *testing.T) {
	s := Generate(77)
	cmd := ReproCommand(s)
	want := "eevfssim -seed=77 -repro='" + s.Encode() + "'"
	if cmd != want {
		t.Fatalf("ReproCommand = %q, want %q", cmd, want)
	}
}
