package simtest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoWallClockInDeterministicPaths scans the packages that the seed
// corpus replays through and fails if any non-test source file consults
// the wall clock. Determinism of `eevfssim -repro=...` depends on every
// timestamp coming from simtime, never from time.Now. The live TCP-stack
// runner (live.go) and the CLI are exempt: they run real sockets and an
// operator wall-time budget respectively.
func TestNoWallClockInDeterministicPaths(t *testing.T) {
	pkgs := []string{
		"cluster", "simtime", "disk", "workload", "prefetch",
		"placement", "netmodel", "rng", "trace", "simtest", "adaptive",
	}
	exempt := map[string]bool{
		filepath.Join("simtest", "live.go"): true,
	}
	root := filepath.Join("..", "..") // repo root from internal/simtest
	for _, pkg := range pkgs {
		dir := filepath.Join(root, "internal", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			if exempt[filepath.Join(pkg, name)] {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(src), "time.Now") {
				t.Errorf("internal/%s/%s consults the wall clock (time.Now); deterministic replay requires simtime", pkg, name)
			}
		}
	}
}
