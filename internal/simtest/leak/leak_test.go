package leak

import (
	"strings"
	"testing"
	"time"
)

// TestDiffDetectsLeakedGoroutine: a goroutine deliberately parked across
// the snapshot must show up in the diff, and disappear once released.
func TestDiffDetectsLeakedGoroutine(t *testing.T) {
	base := Take()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()
	// Give the goroutine time to park so its stack is stable.
	var leaked Snapshot
	deadline := time.Now().Add(2 * time.Second)
	for len(leaked) == 0 && time.Now().Before(deadline) {
		leaked = Diff(base, Take())
		time.Sleep(5 * time.Millisecond)
	}
	if len(leaked) == 0 {
		t.Fatal("parked goroutine never appeared in the diff")
	}
	found := false
	for k := range leaked {
		if strings.Contains(k, "leak.TestDiffDetectsLeakedGoroutine") {
			found = true
		}
	}
	if !found {
		t.Errorf("diff does not attribute the leak to this test: %v", leaked)
	}
	close(release)
	<-done
	if after := settle(base, settleTimeout); len(after) != 0 {
		t.Errorf("diff still non-empty after goroutine exited: %v", after)
	}
}

// TestNormalizeStripsNoise: ids, arguments, and file lines must not make
// two identical parks compare different.
func TestNormalizeStripsNoise(t *testing.T) {
	a := "goroutine 7 [chan receive]:\nmain.worker(0xc0000b2000, 0x1)\n\t/src/main.go:10 +0x25\ncreated by main.start in goroutine 1\n\t/src/main.go:5 +0x11"
	b := "goroutine 99 [chan receive, 2 minutes]:\nmain.worker(0xc0fff00000, 0x2)\n\t/src/main.go:10 +0x25\ncreated by main.start in goroutine 3\n\t/src/main.go:5 +0x11"
	ka, kb := normalize(a), normalize(b)
	if ka == "" || ka != kb {
		t.Fatalf("normalize not id/arg-invariant:\n%q\n%q", ka, kb)
	}
	if strings.Contains(ka, "0xc000") || strings.Contains(ka, "/src/main.go") {
		t.Errorf("normalize kept noise: %q", ka)
	}
}

// TestNormalizeFiltersBenign: runner and signal goroutines never count.
func TestNormalizeFiltersBenign(t *testing.T) {
	blocks := []string{
		"goroutine 1 [running]:\nruntime.Stack({0x0, 0x0}, 0x1)\n\t/go/src/runtime/mprof.go:1 +0x1",
		"goroutine 2 [chan receive]:\ntesting.(*T).Run(0xc0, {0x1, 0x2}, 0x3)\n\t/go/src/testing/testing.go:1 +0x1",
		"goroutine 3 [syscall]:\nos/signal.signal_recv()\n\t/go/src/runtime/sigqueue.go:1 +0x1",
		"not a goroutine block at all",
	}
	for _, b := range blocks {
		if key := normalize(b); key != "" {
			t.Errorf("benign block normalized to %q, want filtered", key)
		}
	}
}

// TestCheckPassesCleanTest: Check on a test that leaks nothing must not
// fail it (this test is its own fixture).
func TestCheckPassesCleanTest(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// TestDiffCounts: the multiset semantics — N extra identical goroutines
// report count N.
func TestDiffCounts(t *testing.T) {
	base := Snapshot{"a": 1, "b": 2}
	cur := Snapshot{"a": 3, "b": 2, "c": 1}
	d := Diff(base, cur)
	if d["a"] != 2 || d["c"] != 1 || len(d) != 2 {
		t.Fatalf("Diff = %v, want a:2 c:1", d)
	}
}
