// Package leak detects goroutines that outlive the test that started
// them. The storage server's probe loop and the telemetry admin listener
// both spawn background goroutines; a missing Close (or a Close that does
// not wait) leaks them across tests, where they race later tests' state.
//
// The checker is snapshot-based: record the running goroutines at test
// start, and at cleanup wait for every goroutine not present in the
// snapshot to exit. Stacks are normalized (ids, addresses, and argument
// values stripped) so two goroutines parked in the same place compare
// equal. It deliberately lives in its own package with no dependencies
// beyond the runtime, so any internal test package can use it without
// import cycles.
package leak

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// settleTimeout bounds how long Check waits for goroutines started during
// the test to finish after cleanup. Close paths that signal shutdown
// without joining (e.g. http.Server.Close) need a grace period.
const settleTimeout = 5 * time.Second

// Snapshot is a multiset of normalized goroutine stacks.
type Snapshot map[string]int

// Take captures the currently running goroutines. Stacks are keyed by
// their function-call chain with goroutine ids, states, addresses, and
// source offsets stripped.
func Take() Snapshot {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	snap := make(Snapshot)
	for _, g := range strings.Split(string(buf), "\n\n") {
		if key := normalize(g); key != "" {
			snap[key]++
		}
	}
	return snap
}

// normalize reduces one goroutine dump block to its call chain: the
// function lines only, with argument values removed. Returns "" for
// blocks that should never count as leaks.
func normalize(block string) string {
	lines := strings.Split(strings.TrimSpace(block), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "goroutine ") {
		return ""
	}
	var fns []string
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "\t") || l == "" {
			continue // file:line position lines
		}
		// "pkg.(*T).Func(0xc0000b2000, 0x1)" -> "pkg.(*T).Func": the
		// argument list is the LAST paren group (method receivers put
		// parens inside the name). Keep the "created by " prefix so
		// origin distinguishes otherwise identical parks.
		if i := strings.LastIndexByte(l, '('); i > 0 && strings.HasSuffix(l, ")") {
			l = l[:i]
		}
		// "created by pkg.start in goroutine 1" -> "created by pkg.start".
		if i := strings.Index(l, " in goroutine"); i > 0 {
			l = l[:i]
		}
		fns = append(fns, strings.TrimSpace(l))
	}
	key := strings.Join(fns, " <- ")
	for _, benign := range []string{
		"runtime.Stack",         // the snapshot-taking goroutine itself
		"simtest/leak.Take",     // ditto when the traceback elides runtime.Stack
		"testing.(*T).Run",      // test runner goroutines
		"testing.(*M).Run",      // the test main goroutine
		"testing.runFuzzing",    // fuzz workers
		"runtime.goexit <- ",    // malformed/partial blocks
		"os/signal.signal_recv", // signal handling, started lazily
	} {
		if strings.Contains(key, benign) {
			return ""
		}
	}
	if key == "" {
		return ""
	}
	return key
}

// Diff returns the stacks in cur that base cannot account for, with
// counts — the candidate leaks.
func Diff(base, cur Snapshot) Snapshot {
	out := make(Snapshot)
	for k, n := range cur {
		if extra := n - base[k]; extra > 0 {
			out[k] = extra
		}
	}
	return out
}

// settle polls until Diff(base, Take()) is empty or the timeout expires,
// returning the final diff.
func settle(base Snapshot, timeout time.Duration) Snapshot {
	deadline := time.Now().Add(timeout)
	for {
		d := Diff(base, Take())
		if len(d) == 0 || time.Now().After(deadline) {
			return d
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Check snapshots the running goroutines and registers a cleanup that
// fails the test if goroutines started after the snapshot are still
// running once the test (and every cleanup registered after this call)
// has finished. Call it before starting servers:
//
//	leak.Check(t)
//	srv := startServer(t) // t.Cleanup(srv.Close) runs before the check
func Check(t testing.TB) {
	t.Helper()
	base := Take()
	t.Cleanup(func() {
		leaked := settle(base, settleTimeout)
		if len(leaked) == 0 {
			return
		}
		keys := make([]string, 0, len(leaked))
		for k := range leaked {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "\n  %dx %s", leaked[k], k)
		}
		t.Errorf("leaked %d goroutine stack(s) after test:%s", len(leaked), b.String())
	})
}
