package simtest

import "testing"

// fakeCheck builds a CheckFn from a predicate, counting evaluations.
func fakeCheck(oracle string, failing func(Scenario) bool, calls *int) CheckFn {
	return func(s Scenario) *Failure {
		*calls++
		if failing(s) {
			return &Failure{Oracle: oracle, Msg: "synthetic"}
		}
		return nil
	}
}

// TestShrinkReachesFloor: a failure that holds regardless of scenario
// size must shrink all the way to the 1-request floor.
func TestShrinkReachesFloor(t *testing.T) {
	s := Generate(3001)
	calls := 0
	check := fakeCheck("always", func(Scenario) bool { return true }, &calls)
	min := Shrink(s, check(s), check)
	if min.Scenario.Requests != 1 || min.Scenario.Files != 1 {
		t.Errorf("always-failing scenario stopped at %d requests / %d files", min.Scenario.Requests, min.Scenario.Files)
	}
	if min.Scenario.DownNodes != 0 || min.Scenario.NodeCount != 1 {
		t.Errorf("cluster not minimized: nodes=%d down=%d", min.Scenario.NodeCount, min.Scenario.DownNodes)
	}
	if min.Failure == nil || min.Failure.Oracle != "always" {
		t.Errorf("minimal failure lost: %+v", min.Failure)
	}
}

// TestShrinkPreservesTrigger: when the failure depends on a property
// (requests above a threshold), the shrinker must stop at the boundary,
// not below it.
func TestShrinkPreservesTrigger(t *testing.T) {
	s := Generate(3002)
	if s.Requests < 50 {
		s.Requests = 200
	}
	calls := 0
	check := fakeCheck("thresh", func(c Scenario) bool { return c.Requests >= 37 }, &calls)
	min := Shrink(s, check(s), check)
	if min.Scenario.Requests != 37 {
		t.Errorf("shrunk to %d requests, want exactly the 37 trigger", min.Scenario.Requests)
	}
}

// TestShrinkSameOracleOnly: a candidate failing a *different* oracle must
// be rejected, so minimization never drifts onto an unrelated bug.
func TestShrinkSameOracleOnly(t *testing.T) {
	s := Generate(3003)
	if s.Requests < 10 {
		s.Requests = 100
	}
	calls := 0
	// Scenarios below 10 requests fail oracle B; at or above, oracle A.
	check := func(c Scenario) *Failure {
		calls++
		if c.Requests < 10 {
			return &Failure{Oracle: "B", Msg: "different bug"}
		}
		return &Failure{Oracle: "A", Msg: "original bug"}
	}
	min := Shrink(s, check(s), check)
	if min.Failure.Oracle != "A" {
		t.Fatalf("shrinker drifted from oracle A to %s", min.Failure.Oracle)
	}
	if min.Scenario.Requests != 10 {
		t.Errorf("want the smallest still-A scenario (10 requests), got %d", min.Scenario.Requests)
	}
}

// TestShrinkBudget: evaluations are bounded even for adversarial checks.
func TestShrinkBudget(t *testing.T) {
	s := Generate(3004)
	calls := 0
	// Alternate pass/fail so the fixed point is never reached quickly.
	check := fakeCheck("flaky", func(c Scenario) bool { return c.Requests%2 == 1 || c.Requests > 1 }, &calls)
	min := Shrink(s, &Failure{Oracle: "flaky"}, check)
	if min.Runs > shrinkMaxRuns {
		t.Fatalf("shrinker spent %d runs, budget is %d", min.Runs, shrinkMaxRuns)
	}
}

// TestShrinkPassingCandidatesRejected: reductions that make the failure
// vanish must not be accepted.
func TestShrinkPassingCandidatesRejected(t *testing.T) {
	s := Generate(3005)
	s.WritePct = 25
	if err := s.Valid(); err != nil {
		t.Fatalf("steered scenario invalid: %v", err)
	}
	calls := 0
	check := fakeCheck("writes", func(c Scenario) bool { return c.WritePct > 0 }, &calls)
	min := Shrink(s, check(s), check)
	if min.Scenario.WritePct == 0 {
		t.Fatal("shrinker accepted a passing candidate")
	}
	if min.Scenario.Requests != 1 {
		t.Errorf("orthogonal dimension not minimized: %d requests", min.Scenario.Requests)
	}
}

// TestShrinkResultAlwaysFails: whatever happens, the returned scenario
// must itself fail (it is the thing printed as the repro).
func TestShrinkResultAlwaysFails(t *testing.T) {
	for i := 0; i < 20; i++ {
		s := Generate(uint64(3100 + i))
		calls := 0
		pred := func(c Scenario) bool { return c.Files > i%5 }
		check := fakeCheck("p", pred, &calls)
		if f := check(s); f != nil {
			min := Shrink(s, f, check)
			if !pred(min.Scenario) {
				t.Fatalf("seed %d: Shrink returned a passing scenario %+v", s.Seed, min.Scenario)
			}
		}
	}
}
