package simtest

// Replay and shrink plumbing for live scenarios, mirroring the
// simulator's repro.go/shrink.go. The encoding is prefixed "live," so
// one -repro flag can carry either kind and the replayer can tell them
// apart.

import (
	"fmt"
	"strconv"
	"strings"
)

const liveReproPrefix = "live"

// liveFieldCodec binds one LiveScenario field to its repro key.
type liveFieldCodec struct {
	key string
	get func(*LiveScenario) string
	set func(*LiveScenario, string) error
}

func liveIntField(key string, p func(*LiveScenario) *int) liveFieldCodec {
	return liveFieldCodec{
		key: key,
		get: func(s *LiveScenario) string { return strconv.Itoa(*p(s)) },
		set: func(s *LiveScenario, v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return err
			}
			*p(s) = n
			return nil
		},
	}
}

// liveCodecs lists every LiveScenario field in encoding order. KillNode
// is stored off by one so its -1 default ("no kill") elides like every
// other zero value.
var liveCodecs = []liveFieldCodec{
	{
		key: "seed",
		get: func(s *LiveScenario) string { return strconv.FormatUint(s.Seed, 10) },
		set: func(s *LiveScenario, v string) error {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return err
			}
			s.Seed = n
			return nil
		},
	},
	liveIntField("nodes", func(s *LiveScenario) *int { return &s.Nodes }),
	liveIntField("files", func(s *LiveScenario) *int { return &s.Files }),
	liveIntField("ops", func(s *LiveScenario) *int { return &s.Ops }),
	liveIntField("writes", func(s *LiveScenario) *int { return &s.WritePct }),
	liveIntField("latms", func(s *LiveScenario) *int { return &s.LatencyMS }),
	liveIntField("k", func(s *LiveScenario) *int { return &s.PrefetchK }),
	{
		key: "kill",
		get: func(s *LiveScenario) string { return strconv.Itoa(s.KillNode + 1) },
		set: func(s *LiveScenario, v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return err
			}
			s.KillNode = n - 1
			return nil
		},
	},
	liveIntField("srv", func(s *LiveScenario) *int { return &s.Servers }),
	{
		key: "kp",
		get: func(s *LiveScenario) string {
			if s.KillPrimary {
				return "1"
			}
			return "0"
		},
		set: func(s *LiveScenario, v string) error {
			switch v {
			case "0":
				s.KillPrimary = false
			case "1":
				s.KillPrimary = true
			default:
				return fmt.Errorf("bad bool %q", v)
			}
			return nil
		},
	},
	{
		key: "inject",
		get: func(s *LiveScenario) string { return s.Inject },
		set: func(s *LiveScenario, v string) error { s.Inject = v; return nil },
	},
}

// Encode serializes the live scenario as "live,v1,seed=...". Zero-valued
// fields are elided; Servers encodes only when the run is replicated.
func (s LiveScenario) Encode() string {
	parts := []string{liveReproPrefix, reproVersion}
	for _, c := range liveCodecs {
		v := c.get(&s)
		if c.key == "srv" && v == "1" {
			continue // standalone is the default
		}
		if v != "" && v != "0" {
			parts = append(parts, c.key+"="+v)
		}
	}
	return strings.Join(parts, ",")
}

// IsLiveRepro reports whether an encoded repro string describes a live
// scenario rather than a simulator one.
func IsLiveRepro(repro string) bool {
	return strings.HasPrefix(repro, liveReproPrefix+",")
}

// DecodeLiveScenario parses a string produced by LiveScenario.Encode.
func DecodeLiveScenario(repro string) (LiveScenario, error) {
	parts := strings.Split(repro, ",")
	if len(parts) < 2 || parts[0] != liveReproPrefix || parts[1] != reproVersion {
		return LiveScenario{}, fmt.Errorf("simtest: repro string is not %s,%s-versioned: %q", liveReproPrefix, reproVersion, repro)
	}
	byKey := make(map[string]liveFieldCodec, len(liveCodecs))
	for _, c := range liveCodecs {
		byKey[c.key] = c
	}
	s := LiveScenario{KillNode: -1, Servers: 1}
	for _, p := range parts[2:] {
		if p == "" {
			continue
		}
		k, v, ok := strings.Cut(p, "=")
		c, known := byKey[k]
		if !ok || !known {
			return LiveScenario{}, fmt.Errorf("simtest: bad live repro field %q", p)
		}
		if err := c.set(&s, v); err != nil {
			return LiveScenario{}, fmt.Errorf("simtest: live repro field %q: %w", p, err)
		}
	}
	return s, nil
}

// LiveReproCommand renders the one-line replay command for a live
// failure.
func LiveReproCommand(s LiveScenario) string {
	return fmt.Sprintf("eevfssim -repro='%s'", s.Encode())
}

// validLive rejects reduction candidates that cannot run.
func validLive(s LiveScenario) bool {
	return s.Nodes >= 2 && s.Files >= 1 && s.Ops >= 1 &&
		s.KillNode >= -1 && s.KillNode < s.Nodes &&
		s.Servers >= 1 && s.WritePct >= 0 && s.WritePct <= 100
}

// LiveCheckFn judges one live scenario; nil means all invariants hold.
type LiveCheckFn func(LiveScenario) *LiveFailure

// LiveShrinkResult reports what the live shrinker found.
type LiveShrinkResult struct {
	Scenario LiveScenario
	Failure  *LiveFailure
	Runs     int
}

// liveShrinkMaxRuns bounds the live search much tighter than the
// simulator's: every evaluation boots a real TCP cluster and costs
// real wall time.
const liveShrinkMaxRuns = 40

// ShrinkLive minimizes a failing live scenario. A candidate counts as
// "still failing" only when check reports a failure from the same
// oracle, so the shrinker cannot drift onto an unrelated bug. The
// returned scenario always fails (the last accepted candidate, or the
// original).
func ShrinkLive(s LiveScenario, fail *LiveFailure, check LiveCheckFn) LiveShrinkResult {
	res := LiveShrinkResult{Scenario: s, Failure: fail}
	accept := func(cand LiveScenario) bool {
		if res.Runs >= liveShrinkMaxRuns {
			return false
		}
		if cand == res.Scenario || !validLive(cand) {
			return false
		}
		res.Runs++
		f := check(cand)
		if f == nil || f.Oracle != fail.Oracle {
			return false
		}
		res.Scenario, res.Failure = cand, f
		return true
	}
	for changed := true; changed && res.Runs < liveShrinkMaxRuns; {
		changed = false
		for _, reduce := range liveReducers {
			for _, cand := range reduce(res.Scenario) {
				if accept(cand) {
					changed = true
					break // re-propose from the smaller scenario
				}
			}
		}
	}
	return res
}

// liveReducers propose reduction candidates, strongest lever first.
var liveReducers = []func(LiveScenario) []LiveScenario{
	func(s LiveScenario) []LiveScenario {
		return liveIntLadder(s, s.Ops, 1, func(s LiveScenario, v int) LiveScenario { s.Ops = v; return s })
	},
	func(s LiveScenario) []LiveScenario {
		return liveIntLadder(s, s.Files, 1, func(s LiveScenario, v int) LiveScenario { s.Files = v; return s })
	},
	// Drop chaos dimensions one at a time.
	func(s LiveScenario) []LiveScenario {
		var out []LiveScenario
		for _, f := range []func(*LiveScenario){
			func(s *LiveScenario) { s.WritePct = 0 },
			func(s *LiveScenario) { s.LatencyMS = 0 },
			func(s *LiveScenario) { s.PrefetchK = 0 },
			func(s *LiveScenario) { s.KillNode = -1 },
			func(s *LiveScenario) { s.KillPrimary = false },
		} {
			c := s
			f(&c)
			out = append(out, c)
		}
		return out
	},
	// Shrink the cluster.
	func(s LiveScenario) []LiveScenario {
		return liveIntLadder(s, s.Servers, 1, func(s LiveScenario, v int) LiveScenario { s.Servers = v; return s })
	},
	func(s LiveScenario) []LiveScenario {
		return liveIntLadder(s, s.Nodes, 2, func(s LiveScenario, v int) LiveScenario {
			s.Nodes = v
			if s.KillNode >= v {
				s.KillNode = v - 1
			}
			return s
		})
	},
}

// liveIntLadder proposes floor, then halvings, then the decrement —
// the same delta-debugging ladder the simulator shrinker uses.
func liveIntLadder(s LiveScenario, cur, floor int, with func(LiveScenario, int) LiveScenario) []LiveScenario {
	if cur <= floor {
		return nil
	}
	var out []LiveScenario
	seen := map[int]bool{cur: true}
	propose := func(v int) {
		if v < floor || seen[v] {
			return
		}
		seen[v] = true
		out = append(out, with(s, v))
	}
	propose(floor)
	for v := cur / 2; v > floor; v /= 2 {
		propose(v)
	}
	propose(cur - 1)
	return out
}
