package simtest

// Live scenarios run the real fs.Server/Node TCP stack (on loopback,
// with faultnet chaos) instead of the simulator. Wall-clock timing here
// is inherently nondeterministic, so the oracles are timing-independent:
// whatever interleaving happened, typed errors only, and — after the
// cluster heals — the server's metadata must agree with what the nodes
// actually hold (the sharded map vs node-held per-disk metadata check).
// The operation *plan* is still derived from the seed, so a failing seed
// replays the same sequence of operations.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"reflect"
	"sync"
	"time"

	"eevfs/internal/disk"
	"eevfs/internal/faultnet"
	"eevfs/internal/fs"
	"eevfs/internal/proto"
	"eevfs/internal/rng"
)

// LiveScenario is one seeded chaos run against the real TCP stack.
type LiveScenario struct {
	Seed        uint64
	Nodes       int    // storage nodes (2..3)
	Files       int    // files created up front
	Ops         int    // randomized operations after the initial population
	WritePct    int    // probability an op overwrites instead of reading
	LatencyMS   int    // faultnet latency injected on every node link
	PrefetchK   int    // prefetch budget pushed before the op stream
	KillNode    int    // node index crashed mid-run and restarted (-1: none)
	Servers     int    // metadata servers in the replicated group (0/1: standalone)
	KillPrimary bool   // crash the primary mid-run (needs Servers > 1)
	Inject      string // deliberate-bug injection ("" or "silent-replication")
}

// LiveFailure is one live-oracle violation. Oracle names the invariant
// that broke, so the shrinker can insist a smaller scenario still fails
// the *same* way; Msg carries the specifics.
type LiveFailure struct {
	Oracle string
	Msg    string
}

func (f *LiveFailure) Error() string { return f.Oracle + ": " + f.Msg }

func liveFail(oracle, format string, args ...any) *LiveFailure {
	return &LiveFailure{Oracle: oracle, Msg: fmt.Sprintf(format, args...)}
}

// GenerateLive derives a live scenario from a seed. Inject is never set
// by generation: bug injection is a harness-testing knob, not a soak
// dimension.
func GenerateLive(seed uint64) LiveScenario {
	src := rng.New(seed)
	s := LiveScenario{
		Seed:     seed,
		Nodes:    2 + src.Intn(2),
		Files:    3 + src.Intn(8),
		Ops:      10 + src.Intn(21),
		KillNode: -1,
		Servers:  1,
	}
	if src.Float64() < 0.5 {
		s.WritePct = 10 + src.Intn(40)
	}
	if src.Float64() < 0.5 {
		s.LatencyMS = 1 + src.Intn(5)
	}
	s.PrefetchK = src.Intn(s.Files + 1)
	if src.Float64() < 0.5 {
		s.KillNode = src.Intn(s.Nodes)
	}
	// New dimensions draw after the original ones so the same seed keeps
	// producing the same base scenario it always did.
	if src.Float64() < 0.5 {
		s.Servers = 2 + src.Intn(2)
		if src.Float64() < 0.6 {
			s.KillPrimary = true
		}
	}
	return s
}

// liveTransport mirrors the chaos-test policy: aggressive timeouts so
// every failure mode resolves quickly and typed.
func liveTransport() proto.TransportConfig {
	return proto.TransportConfig{
		DialTimeout: 250 * time.Millisecond,
		RTTimeout:   250 * time.Millisecond,
		Retries:     1,
		RetryBase:   5 * time.Millisecond,
		RetryMax:    10 * time.Millisecond,
		Seed:        7,
	}
}

// typedError reports whether err is one of the failure modes the stack
// is allowed to surface while a node or server is down: the
// unavailable/not-found/not-primary sentinels or a typed transport
// error. Anything else (hangs are caught by the transport deadlines) is
// an invariant violation.
func typedError(err error) bool {
	var te *proto.TransportError
	var re *proto.RemoteError
	return errors.Is(err, fs.ErrNodeUnavailable) ||
		errors.Is(err, fs.ErrFileNotFound) ||
		errors.Is(err, fs.ErrNotPrimary) ||
		errors.As(err, &te) || errors.As(err, &re)
}

// CheckLive runs one live scenario end to end and returns the first
// invariant violation (nil: all held). It needs a scratch directory for
// the node disk roots; the caller owns cleanup of tmpDir.
func CheckLive(s LiveScenario, tmpDir string) *LiveFailure {
	quiet := log.New(io.Discard, "", 0)
	serverNet := faultnet.New(int64(s.Seed))
	clientNet := faultnet.New(int64(s.Seed) + 1)
	src := rng.New(s.Seed)
	numServers := s.Servers
	if numServers < 1 {
		numServers = 1
	}

	nodeCfg := func(i int, addr string) fs.NodeConfig {
		root := fmt.Sprintf("%s/n%d", tmpDir, i)
		return fs.NodeConfig{
			Addr:             addr,
			RootDir:          root,
			DataDisks:        2,
			DataModel:        disk.ModelType1,
			BufferModel:      disk.ModelType1,
			IdleThresholdSec: 5,
			TimeScale:        2000,
			InjectLatency:    true,
			WriteBuffer:      s.WritePct > 0,
			WriteTimeout:     time.Second,
			Logger:           quiet,
		}
	}

	nodes := make([]*fs.Node, s.Nodes)
	var addrs []string
	for i := range nodes {
		if err := os.MkdirAll(fmt.Sprintf("%s/n%d", tmpDir, i), 0o755); err != nil {
			return liveFail("setup", "mkdir: %v", err)
		}
		n, err := fs.StartNode(nodeCfg(i, "127.0.0.1:0"))
		if err != nil {
			return liveFail("setup", "start node %d: %v", i, err)
		}
		nodes[i] = n
		addrs = append(addrs, n.Addr())
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()

	if s.LatencyMS > 0 {
		for _, a := range addrs {
			f := faultnet.Fault{Latency: time.Duration(s.LatencyMS) * time.Millisecond}
			serverNet.SetFault(a, f)
			clientNet.SetFault(a, f)
		}
	}

	// Server plane: a standalone server, or a replicated group with
	// pre-bound listeners (every member must know the full peer list
	// before any member starts). Server 0 boots as primary; the injected
	// replication bug, when asked for, arms on it.
	srvCfg := func(i int) fs.ServerConfig {
		return fs.ServerConfig{
			Addr:      "127.0.0.1:0",
			NodeAddrs: addrs,
			Logger:    quiet,
			Dialer:    serverNet,
			Transport: liveTransport(),
			Health: fs.HealthConfig{
				FailThreshold: 2,
				ProbeInterval: 20 * time.Millisecond,
			},
			WriteTimeout: time.Second,
		}
	}
	srvs := make([]*fs.Server, numServers)
	srvDown := make([]bool, numServers)
	var srvAddrs []string
	if numServers == 1 {
		srv, err := fs.StartServer(srvCfg(0))
		if err != nil {
			return liveFail("setup", "start server: %v", err)
		}
		srvs[0] = srv
		srvAddrs = []string{srv.Addr()}
	} else {
		lns := make([]net.Listener, numServers)
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return liveFail("setup", "listen: %v", err)
			}
			lns[i] = ln
			srvAddrs = append(srvAddrs, ln.Addr().String())
		}
		for i := 0; i < numServers; i++ {
			cfg := srvCfg(i)
			cfg.Peers = srvAddrs
			cfg.Self = i
			cfg.Listener = lns[i]
			if i == 0 && s.Inject == "silent-replication" {
				cfg.ReplChaosSilentAfter = 1
			}
			srv, err := fs.StartServer(cfg)
			if err != nil {
				return liveFail("setup", "start server %d: %v", i, err)
			}
			srvs[i] = srv
		}
	}
	defer func() {
		for _, sv := range srvs {
			if sv != nil {
				sv.Close()
			}
		}
	}()
	// primarySrv returns the surviving server currently claiming primary
	// (nil during an election window).
	primarySrv := func() *fs.Server {
		for i, sv := range srvs {
			if !srvDown[i] && sv.IsPrimary() {
				return sv
			}
		}
		return nil
	}

	cl, err := fs.DialCluster(srvAddrs, fs.ClientConfig{Dialer: clientNet, Transport: liveTransport()})
	if err != nil {
		return liveFail("setup", "dial: %v", err)
	}
	defer cl.Close()

	// Phase 1: populate. The cluster is healthy, so every create must
	// succeed. acceptable tracks every content a later read may legally
	// return: a write that fails with a typed error may still have landed
	// on the node (the response, not the write, is what was lost), so
	// both the old and the attempted content stay acceptable.
	acceptable := make(map[string][][]byte, s.Files)
	written := make(map[string]bool, s.Files)
	names := make([]string, 0, s.Files)
	for i := 0; i < s.Files; i++ {
		name := fmt.Sprintf("live-%d", i)
		// Prefix the name so every file's content is unique: the
		// correlation phase below depends on a crossed response being
		// distinguishable from the right one.
		data := append([]byte(name+":"), bytes.Repeat([]byte{byte('a' + i%26)}, 200+src.Intn(4000))...)
		if err := cl.Create(name, data); err != nil {
			return liveFail("create", "create %s on healthy cluster: %v", name, err)
		}
		acceptable[name] = [][]byte{data}
		names = append(names, name)
	}
	if s.PrefetchK > 0 {
		if _, err := cl.Prefetch(s.PrefetchK); err != nil {
			return liveFail("prefetch", "prefetch on healthy cluster: %v", err)
		}
	}

	// Phase 1b: request-id correlation oracle. The cluster is healthy and
	// every file's content is unique, so concurrent readers pipelining on
	// the client's shared connections must each get back exactly the
	// content they asked for — a demux delivering a response to the wrong
	// request id would surface here as a cross-file content swap.
	if err := checkCorrelation(cl, names, acceptable); err != nil {
		return err
	}

	// Phase 1c: stream-content-integrity oracle. The same files pulled
	// concurrently through the chunked streaming data plane — data
	// frames for different streams interleave on the shared
	// connections, so a chunk demuxed to the wrong stream id shows up
	// as a cross-file content swap here.
	if err := checkStreamIntegrity(cl, names, acceptable); err != nil {
		return err
	}

	// Phase 2: randomized reads/writes, with an optional mid-run node
	// crash and — in a replicated group — an optional primary kill.
	// While a node or the primary is down, operations may fail — but
	// only with typed errors, and writes that fail must not corrupt the
	// surviving copy of the namespace.
	killAt := -1
	if s.KillNode >= 0 {
		killAt = s.Ops / 3
	}
	killPrimaryAt := -1
	if numServers > 1 && s.KillPrimary {
		killPrimaryAt = s.Ops / 2
	}
	for op := 0; op < s.Ops; op++ {
		if op == killAt {
			nodes[s.KillNode].Close()
		}
		if op == killPrimaryAt {
			srvs[0].Close()
			srvDown[0] = true
		}
		name := names[src.Intn(len(names))]
		if s.WritePct > 0 && int(src.Intn(100)) < s.WritePct {
			data := bytes.Repeat([]byte{byte('A' + op%26)}, 200+src.Intn(4000))
			_, err := cl.Write(name, data)
			written[name] = true
			switch {
			case err == nil:
				// The write definitely landed: it is now the only legal
				// content.
				acceptable[name] = [][]byte{data}
			case typedError(err):
				// The write may or may not have landed; both contents
				// stay legal. Anything in between would be torn.
				acceptable[name] = append(acceptable[name], data)
			default:
				return liveFail("op-write", "write %s failed untyped: %v", name, err)
			}
		} else {
			data, _, err := cl.Read(name)
			switch {
			case err == nil:
				if !anyEqual(data, acceptable[name]) {
					return liveFail("op-read", "read %s returned %d bytes matching no acceptable content (torn or corrupt copy)", name, len(data))
				}
			case typedError(err):
			default:
				return liveFail("op-read", "read %s failed untyped: %v", name, err)
			}
		}
	}

	// Phase 3a: failover quiesce. After a primary kill, exactly one
	// surviving follower must promote itself; all client traffic from
	// here on lands on it via redirects.
	srv := srvs[0]
	if killPrimaryAt >= 0 {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if p := primarySrv(); p != nil {
				srv = p
				break
			}
			if time.Now().After(deadline) {
				return liveFail("failover", "no surviving server promoted itself within 10s of the primary kill")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 3b: heal (restart the crashed node on its old address with
	// its old disk roots) and wait for the prober to readmit it.
	if s.KillNode >= 0 && killAt >= 0 {
		restarted, err := fs.StartNode(nodeCfg(s.KillNode, addrs[s.KillNode]))
		if err != nil {
			return liveFail("heal", "restart node %d: %v", s.KillNode, err)
		}
		nodes[s.KillNode] = restarted
		if err := waitHealthy(srv, s.KillNode, true, 10*time.Second); err != nil {
			return liveFail("heal", "%v", err)
		}
	}

	// Phase 3c: metadata-convergence oracle. Once the group quiesces,
	// every surviving replica must report the identical file table — a
	// replica that silently missed an acked mutation diverges here (or,
	// if all survivors missed it together, against the ground truth
	// below).
	if numServers > 1 {
		deadline := time.Now().Add(10 * time.Second)
		var diverge string
		for {
			want := srv.Files()
			diverge = ""
			for i, sv := range srvs {
				if srvDown[i] || sv == srv {
					continue
				}
				if got := sv.Files(); !reflect.DeepEqual(got, want) {
					diverge = fmt.Sprintf("server %d reports %d files, primary reports %d", i, len(got), len(want))
					break
				}
			}
			if diverge == "" {
				break
			}
			if time.Now().After(deadline) {
				return liveFail("convergence", "surviving replicas never converged: %s", diverge)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Oracle: metadata consistency. Every file the server's sharded map
	// claims must exist in the owning node's local metadata, the node's
	// recorded size must match what an end-to-end read returns, and the
	// content must be one the operation history can explain. The server's
	// own size is authoritative only for never-written files: data writes
	// go client -> node directly, so the server keeps the create-time
	// size by design.
	infos := srv.Files()
	if len(infos) != len(names) {
		return liveFail("metadata", "server metadata has %d files, created %d", len(infos), len(names))
	}
	nodeMeta := make([]map[int]int64, len(nodes))
	for i, n := range nodes {
		nodeMeta[i] = make(map[int]int64)
		for _, e := range n.Files() {
			nodeMeta[i][e.ID] = e.Size
		}
	}
	for _, fi := range infos {
		if fi.Node < 0 || fi.Node >= len(nodes) {
			return liveFail("metadata", "server places %s on node %d of %d", fi.Name, fi.Node, len(nodes))
		}
		size, ok := nodeMeta[fi.Node][fi.ID]
		if !ok {
			return liveFail("metadata", "server says %s (id %d) lives on node %d, but the node has no such entry", fi.Name, fi.ID, fi.Node)
		}
		if !written[fi.Name] && size != fi.Size {
			return liveFail("metadata", "never-written %s size disagrees: server %d, node %d", fi.Name, fi.Size, size)
		}
		data, _, err := cl.Read(fi.Name)
		if err != nil {
			return liveFail("metadata", "read %s after heal: %v", fi.Name, err)
		}
		if int64(len(data)) != size {
			return liveFail("metadata", "read %s returned %d bytes, node metadata says %d", fi.Name, len(data), size)
		}
		if !anyEqual(data, acceptable[fi.Name]) {
			return liveFail("metadata", "%s final content (%d bytes) matches no acceptable content", fi.Name, len(data))
		}
	}
	return nil
}

// checkCorrelation reads every file from several goroutines at once
// through one shared client and verifies each reader got its own file's
// exact content. Run only while the cluster is healthy, so any error —
// not just a content swap — is a violation.
func checkCorrelation(cl *fs.Client, names []string, acceptable map[string][][]byte) *LiveFailure {
	const rounds = 3
	errCh := make(chan *LiveFailure, len(names))
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				data, _, err := cl.Read(name)
				if err != nil {
					errCh <- liveFail("correlation", "concurrent read %s on healthy cluster: %v", name, err)
					return
				}
				if !bytes.Equal(data, acceptable[name][0]) {
					errCh <- liveFail("correlation", "concurrent read %s returned %d bytes of someone else's content (crossed request ids)", name, len(data))
					return
				}
			}
		}(name)
	}
	wg.Wait()
	close(errCh)
	for f := range errCh {
		return f
	}
	return nil
}

// checkStreamIntegrity streams every file from several goroutines at
// once — small chunk sizes force heavy data-frame interleaving on the
// shared connections — and verifies each stream reassembled its own
// file's exact bytes, while plain RPC reads run alongside on the same
// sockets. Run only while the cluster is healthy, so any error is a
// violation.
func checkStreamIntegrity(cl *fs.Client, names []string, acceptable map[string][][]byte) *LiveFailure {
	const rounds = 2
	errCh := make(chan *LiveFailure, 2*len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			// Vary the chunk schedule per file so frame boundaries differ
			// across the interleaved streams.
			opts := fs.StreamOptions{ChunkBytes: 512 << (i % 4), Window: 1 + i%4}
			for r := 0; r < rounds; r++ {
				rd, err := cl.OpenRead(name, opts)
				if err != nil {
					errCh <- liveFail("stream", "open stream %s on healthy cluster: %v", name, err)
					return
				}
				data, err := io.ReadAll(rd)
				rd.Close()
				if err != nil {
					errCh <- liveFail("stream", "stream %s on healthy cluster: %v", name, err)
					return
				}
				if !bytes.Equal(data, acceptable[name][0]) {
					errCh <- liveFail("stream", "stream %s reassembled %d bytes of someone else's content (crossed stream ids)", name, len(data))
					return
				}
			}
		}(i, name)
		// Interleave RPC traffic on the same multiplexed connections.
		if i%2 == 0 {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				data, _, err := cl.Read(name)
				if err != nil {
					errCh <- liveFail("stream", "rpc read %s beside streams: %v", name, err)
					return
				}
				if !bytes.Equal(data, acceptable[name][0]) {
					errCh <- liveFail("stream", "rpc read %s beside streams returned crossed content", name)
				}
			}(name)
		}
	}
	wg.Wait()
	close(errCh)
	for f := range errCh {
		return f
	}
	return nil
}

// anyEqual reports whether data matches one of the candidates.
func anyEqual(data []byte, candidates [][]byte) bool {
	for _, c := range candidates {
		if bytes.Equal(data, c) {
			return true
		}
	}
	return false
}

// waitHealthy polls the server's health view.
func waitHealthy(srv *fs.Server, idx int, want bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if srv.Healthy()[idx] == want {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("live: node %d never became healthy=%v", idx, want)
}
