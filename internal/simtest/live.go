package simtest

// Live scenarios run the real fs.Server/Node TCP stack (on loopback,
// with faultnet chaos) instead of the simulator. Wall-clock timing here
// is inherently nondeterministic, so the oracles are timing-independent:
// whatever interleaving happened, typed errors only, and — after the
// cluster heals — the server's metadata must agree with what the nodes
// actually hold (the sharded map vs node-held per-disk metadata check).
// The operation *plan* is still derived from the seed, so a failing seed
// replays the same sequence of operations.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"time"

	"eevfs/internal/disk"
	"eevfs/internal/faultnet"
	"eevfs/internal/fs"
	"eevfs/internal/proto"
	"eevfs/internal/rng"
)

// LiveScenario is one seeded chaos run against the real TCP stack.
type LiveScenario struct {
	Seed      uint64
	Nodes     int // storage nodes (2..3)
	Files     int // files created up front
	Ops       int // randomized operations after the initial population
	WritePct  int // probability an op overwrites instead of reading
	LatencyMS int // faultnet latency injected on every node link
	PrefetchK int // prefetch budget pushed before the op stream
	KillNode  int // node index crashed mid-run and restarted (-1: none)
}

// GenerateLive derives a live scenario from a seed.
func GenerateLive(seed uint64) LiveScenario {
	src := rng.New(seed)
	s := LiveScenario{
		Seed:     seed,
		Nodes:    2 + src.Intn(2),
		Files:    3 + src.Intn(8),
		Ops:      10 + src.Intn(21),
		KillNode: -1,
	}
	if src.Float64() < 0.5 {
		s.WritePct = 10 + src.Intn(40)
	}
	if src.Float64() < 0.5 {
		s.LatencyMS = 1 + src.Intn(5)
	}
	s.PrefetchK = src.Intn(s.Files + 1)
	if src.Float64() < 0.5 {
		s.KillNode = src.Intn(s.Nodes)
	}
	return s
}

// liveTransport mirrors the chaos-test policy: aggressive timeouts so
// every failure mode resolves quickly and typed.
func liveTransport() proto.TransportConfig {
	return proto.TransportConfig{
		DialTimeout: 250 * time.Millisecond,
		RTTimeout:   250 * time.Millisecond,
		Retries:     1,
		RetryBase:   5 * time.Millisecond,
		RetryMax:    10 * time.Millisecond,
		Seed:        7,
	}
}

// typedError reports whether err is one of the failure modes the stack
// is allowed to surface while a node is down: the unavailable/not-found
// sentinels or a typed transport error. Anything else (hangs are caught
// by the transport deadlines) is an invariant violation.
func typedError(err error) bool {
	var te *proto.TransportError
	var re *proto.RemoteError
	return errors.Is(err, fs.ErrNodeUnavailable) ||
		errors.Is(err, fs.ErrFileNotFound) ||
		errors.As(err, &te) || errors.As(err, &re)
}

// CheckLive runs one live scenario end to end and returns the first
// invariant violation (nil: all held). It needs a scratch directory for
// the node disk roots; the caller owns cleanup of tmpDir.
func CheckLive(s LiveScenario, tmpDir string) error {
	quiet := log.New(io.Discard, "", 0)
	serverNet := faultnet.New(int64(s.Seed))
	clientNet := faultnet.New(int64(s.Seed) + 1)
	src := rng.New(s.Seed)

	nodeCfg := func(i int, addr string) fs.NodeConfig {
		root := fmt.Sprintf("%s/n%d", tmpDir, i)
		return fs.NodeConfig{
			Addr:             addr,
			RootDir:          root,
			DataDisks:        2,
			DataModel:        disk.ModelType1,
			BufferModel:      disk.ModelType1,
			IdleThresholdSec: 5,
			TimeScale:        2000,
			InjectLatency:    true,
			WriteBuffer:      s.WritePct > 0,
			WriteTimeout:     time.Second,
			Logger:           quiet,
		}
	}

	nodes := make([]*fs.Node, s.Nodes)
	var addrs []string
	for i := range nodes {
		if err := os.MkdirAll(fmt.Sprintf("%s/n%d", tmpDir, i), 0o755); err != nil {
			return fmt.Errorf("live: mkdir: %w", err)
		}
		n, err := fs.StartNode(nodeCfg(i, "127.0.0.1:0"))
		if err != nil {
			return fmt.Errorf("live: start node %d: %w", i, err)
		}
		nodes[i] = n
		addrs = append(addrs, n.Addr())
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()

	if s.LatencyMS > 0 {
		for _, a := range addrs {
			f := faultnet.Fault{Latency: time.Duration(s.LatencyMS) * time.Millisecond}
			serverNet.SetFault(a, f)
			clientNet.SetFault(a, f)
		}
	}

	srv, err := fs.StartServer(fs.ServerConfig{
		Addr:      "127.0.0.1:0",
		NodeAddrs: addrs,
		Logger:    quiet,
		Dialer:    serverNet,
		Transport: liveTransport(),
		Health: fs.HealthConfig{
			FailThreshold: 2,
			ProbeInterval: 20 * time.Millisecond,
		},
		WriteTimeout: time.Second,
	})
	if err != nil {
		return fmt.Errorf("live: start server: %w", err)
	}
	defer srv.Close()

	cl, err := fs.DialConfig(srv.Addr(), fs.ClientConfig{Dialer: clientNet, Transport: liveTransport()})
	if err != nil {
		return fmt.Errorf("live: dial: %w", err)
	}
	defer cl.Close()

	// Phase 1: populate. The cluster is healthy, so every create must
	// succeed. acceptable tracks every content a later read may legally
	// return: a write that fails with a typed error may still have landed
	// on the node (the response, not the write, is what was lost), so
	// both the old and the attempted content stay acceptable.
	acceptable := make(map[string][][]byte, s.Files)
	written := make(map[string]bool, s.Files)
	names := make([]string, 0, s.Files)
	for i := 0; i < s.Files; i++ {
		name := fmt.Sprintf("live-%d", i)
		// Prefix the name so every file's content is unique: the
		// correlation phase below depends on a crossed response being
		// distinguishable from the right one.
		data := append([]byte(name+":"), bytes.Repeat([]byte{byte('a' + i%26)}, 200+src.Intn(4000))...)
		if err := cl.Create(name, data); err != nil {
			return fmt.Errorf("live: create %s on healthy cluster: %w", name, err)
		}
		acceptable[name] = [][]byte{data}
		names = append(names, name)
	}
	if s.PrefetchK > 0 {
		if _, err := cl.Prefetch(s.PrefetchK); err != nil {
			return fmt.Errorf("live: prefetch on healthy cluster: %w", err)
		}
	}

	// Phase 1b: request-id correlation oracle. The cluster is healthy and
	// every file's content is unique, so concurrent readers pipelining on
	// the client's shared connections must each get back exactly the
	// content they asked for — a demux delivering a response to the wrong
	// request id would surface here as a cross-file content swap.
	if err := checkCorrelation(cl, names, acceptable); err != nil {
		return err
	}

	// Phase 2: randomized reads/writes, with an optional mid-run crash.
	// While a node is down, operations touching it may fail — but only
	// with typed errors, and writes that fail must not corrupt the
	// surviving copy of the namespace.
	killAt := -1
	if s.KillNode >= 0 {
		killAt = s.Ops / 3
	}
	for op := 0; op < s.Ops; op++ {
		if op == killAt {
			nodes[s.KillNode].Close()
		}
		name := names[src.Intn(len(names))]
		if s.WritePct > 0 && int(src.Intn(100)) < s.WritePct {
			data := bytes.Repeat([]byte{byte('A' + op%26)}, 200+src.Intn(4000))
			_, err := cl.Write(name, data)
			written[name] = true
			switch {
			case err == nil:
				// The write definitely landed: it is now the only legal
				// content.
				acceptable[name] = [][]byte{data}
			case typedError(err):
				// The write may or may not have landed; both contents
				// stay legal. Anything in between would be torn.
				acceptable[name] = append(acceptable[name], data)
			default:
				return fmt.Errorf("live: write %s failed untyped: %w", name, err)
			}
		} else {
			data, _, err := cl.Read(name)
			switch {
			case err == nil:
				if !anyEqual(data, acceptable[name]) {
					return fmt.Errorf("live: read %s returned %d bytes matching no acceptable content (torn or corrupt copy)", name, len(data))
				}
			case typedError(err):
			default:
				return fmt.Errorf("live: read %s failed untyped: %w", name, err)
			}
		}
	}

	// Phase 3: heal (restart the crashed node on its old address with
	// its old disk roots) and wait for the prober to readmit it.
	if s.KillNode >= 0 && killAt >= 0 {
		restarted, err := fs.StartNode(nodeCfg(s.KillNode, addrs[s.KillNode]))
		if err != nil {
			return fmt.Errorf("live: restart node %d: %w", s.KillNode, err)
		}
		nodes[s.KillNode] = restarted
		if err := waitHealthy(srv, s.KillNode, true, 10*time.Second); err != nil {
			return err
		}
	}

	// Oracle: metadata consistency. Every file the server's sharded map
	// claims must exist in the owning node's local metadata, the node's
	// recorded size must match what an end-to-end read returns, and the
	// content must be one the operation history can explain. The server's
	// own size is authoritative only for never-written files: data writes
	// go client -> node directly, so the server keeps the create-time
	// size by design.
	infos := srv.Files()
	if len(infos) != len(names) {
		return fmt.Errorf("live: server metadata has %d files, created %d", len(infos), len(names))
	}
	nodeMeta := make([]map[int]int64, len(nodes))
	for i, n := range nodes {
		nodeMeta[i] = make(map[int]int64)
		for _, e := range n.Files() {
			nodeMeta[i][e.ID] = e.Size
		}
	}
	for _, fi := range infos {
		if fi.Node < 0 || fi.Node >= len(nodes) {
			return fmt.Errorf("live: server places %s on node %d of %d", fi.Name, fi.Node, len(nodes))
		}
		size, ok := nodeMeta[fi.Node][fi.ID]
		if !ok {
			return fmt.Errorf("live: server says %s (id %d) lives on node %d, but the node has no such entry", fi.Name, fi.ID, fi.Node)
		}
		if !written[fi.Name] && size != fi.Size {
			return fmt.Errorf("live: never-written %s size disagrees: server %d, node %d", fi.Name, fi.Size, size)
		}
		data, _, err := cl.Read(fi.Name)
		if err != nil {
			return fmt.Errorf("live: read %s after heal: %w", fi.Name, err)
		}
		if int64(len(data)) != size {
			return fmt.Errorf("live: read %s returned %d bytes, node metadata says %d", fi.Name, len(data), size)
		}
		if !anyEqual(data, acceptable[fi.Name]) {
			return fmt.Errorf("live: %s final content (%d bytes) matches no acceptable content", fi.Name, len(data))
		}
	}
	return nil
}

// checkCorrelation reads every file from several goroutines at once
// through one shared client and verifies each reader got its own file's
// exact content. Run only while the cluster is healthy, so any error —
// not just a content swap — is a violation.
func checkCorrelation(cl *fs.Client, names []string, acceptable map[string][][]byte) error {
	const rounds = 3
	errCh := make(chan error, len(names))
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				data, _, err := cl.Read(name)
				if err != nil {
					errCh <- fmt.Errorf("live: concurrent read %s on healthy cluster: %w", name, err)
					return
				}
				if !bytes.Equal(data, acceptable[name][0]) {
					errCh <- fmt.Errorf("live: concurrent read %s returned %d bytes of someone else's content (crossed request ids)", name, len(data))
					return
				}
			}
		}(name)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	return nil
}

// anyEqual reports whether data matches one of the candidates.
func anyEqual(data []byte, candidates [][]byte) bool {
	for _, c := range candidates {
		if bytes.Equal(data, c) {
			return true
		}
	}
	return false
}

// waitHealthy polls the server's health view.
func waitHealthy(srv *fs.Server, idx int, want bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if srv.Healthy()[idx] == want {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("live: node %d never became healthy=%v", idx, want)
}
