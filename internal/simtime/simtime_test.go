package simtime

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var e Engine
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		e.Schedule(at, func(now Time) { got = append(got, now) })
	}
	e.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestTiesBreakInSchedulingOrder(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func(Time) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	var e Engine
	e.Schedule(2.5, func(now Time) {
		if now != 2.5 {
			t.Errorf("callback now = %v, want 2.5", now)
		}
	})
	final := e.Run()
	if final != 2.5 || e.Now() != 2.5 {
		t.Fatalf("final time = %v, Now = %v, want 2.5", final, e.Now())
	}
}

func TestAfterRelative(t *testing.T) {
	var e Engine
	var times []Time
	e.Schedule(10, func(now Time) {
		e.After(5, func(n2 Time) { times = append(times, n2) })
	})
	e.Run()
	if len(times) != 1 || times[0] != 15 {
		t.Fatalf("After scheduled at %v, want [15]", times)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	var e Engine
	fired := false
	ev := e.Schedule(1, func(Time) { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() should report true")
	}
}

func TestCancelNilAndDoubleCancel(t *testing.T) {
	var e Engine
	e.Cancel(nil) // must not panic
	ev := e.Schedule(1, func(Time) {})
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Run()
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(5, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(1, func(Time) {})
}

func TestNegativeAfterPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-1, func(Time) {})
}

func TestNilCallbackPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	var e Engine
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		e.Schedule(at, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3: %v", len(fired), fired)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 5 {
		t.Fatalf("after Run fired %d, want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockPastLastEvent(t *testing.T) {
	var e Engine
	e.Schedule(1, func(Time) {})
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	var e Engine
	ev := e.Schedule(1, func(Time) { t.Fatal("cancelled event fired") })
	e.Schedule(2, func(Time) {})
	e.Cancel(ev)
	e.RunUntil(5)
	if e.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", e.Fired())
	}
}

func TestRunLimit(t *testing.T) {
	var e Engine
	count := 0
	var reschedule func(Time)
	reschedule = func(Time) {
		count++
		e.After(1, reschedule)
	}
	e.Schedule(0, reschedule)
	n := e.RunLimit(50)
	if n != 50 || count != 50 {
		t.Fatalf("RunLimit fired %d (count %d), want 50", n, count)
	}
}

func TestCascadingEvents(t *testing.T) {
	var e Engine
	depth := 0
	var recurse func(Time)
	recurse = func(Time) {
		depth++
		if depth < 100 {
			e.After(0.5, recurse)
		}
	}
	e.Schedule(0, recurse)
	final := e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if final != 49.5 {
		t.Fatalf("final time = %v, want 49.5", final)
	}
}

func TestZeroDelaySameTimeOrdering(t *testing.T) {
	// An event scheduled with After(0) from within a callback must run at
	// the same virtual time but after already-queued events at that time.
	var e Engine
	var got []string
	e.Schedule(1, func(Time) {
		e.After(0, func(Time) { got = append(got, "child") })
	})
	e.Schedule(1, func(Time) { got = append(got, "sibling") })
	e.Run()
	if len(got) != 2 || got[0] != "sibling" || got[1] != "child" {
		t.Fatalf("order = %v, want [sibling child]", got)
	}
}

func TestMaxQueueLenAndFired(t *testing.T) {
	var e Engine
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func(Time) {})
	}
	if e.MaxQueueLen() != 10 {
		t.Fatalf("MaxQueueLen = %d, want 10", e.MaxQueueLen())
	}
	e.Run()
	if e.Fired() != 10 {
		t.Fatalf("Fired = %d, want 10", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

// Property: any batch of events fires in nondecreasing time order, and the
// count of fired events matches the non-cancelled schedule.
func TestQuickOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var e Engine
		var fired []Time
		for _, r := range raw {
			at := Time(r % 1000)
			e.Schedule(at, func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func(Time) {})
		}
		e.Run()
	}
}
