// Package simtime implements the virtual clock and discrete-event scheduler
// that drive the EEVFS cluster simulator.
//
// Time is a float64 number of seconds since simulation start. Events are
// ordered by (time, sequence number): ties break in scheduling order, which
// makes every run fully deterministic.
package simtime

import "container/heap"

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Event is a scheduled callback. Fire is invoked with the engine so the
// callback can schedule follow-up events.
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index, -1 once popped or cancelled
	canceled bool
	fire     func(now Time)
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	maxLen int
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// MaxQueueLen returns the high-water mark of the pending-event queue,
// useful for asserting that simulations do not leak events.
func (e *Engine) MaxQueueLen() int { return e.maxLen }

// Pending returns the number of events currently scheduled (including
// cancelled events not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule registers fire to run at absolute virtual time at. Scheduling in
// the past (at < Now) panics: it always indicates a modeling bug, and
// silently clamping would hide it.
func (e *Engine) Schedule(at Time, fire func(now Time)) *Event {
	if at < e.now {
		panic("simtime: event scheduled in the past")
	}
	if fire == nil {
		panic("simtime: nil event callback")
	}
	ev := &Event{at: at, seq: e.seq, fire: fire}
	e.seq++
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.maxLen {
		e.maxLen = len(e.queue)
	}
	return ev
}

// After schedules fire to run d seconds from now. Negative d panics.
func (e *Engine) After(d Duration, fire func(now Time)) *Event {
	if d < 0 {
		panic("simtime: negative delay")
	}
	return e.Schedule(e.now+Time(d), fire)
}

// Cancel marks the event so it will not fire. Cancelling an already-fired
// or already-cancelled event is a no-op. The event stays in the heap until
// its time comes (lazy deletion), which keeps Cancel O(1).
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	ev.canceled = true
}

// Step pops and fires the next non-cancelled event. It returns false when
// the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic("simtime: time went backwards")
		}
		e.now = ev.at
		e.fired++
		ev.fire(e.now)
		return true
	}
	return false
}

// Run fires events until the queue drains. It returns the final virtual
// time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time <= deadline, then advances the clock to
// the deadline (if it is later than the last event). Events scheduled
// beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 {
		// Peek: drain cancelled heads first so they don't block the check.
		head := e.queue[0]
		if head.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if head.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunLimit fires at most n events; it returns the number actually fired.
// Useful as a runaway guard in tests.
func (e *Engine) RunLimit(n uint64) uint64 {
	var fired uint64
	for fired < n && e.Step() {
		fired++
	}
	return fired
}

// eventHeap is a min-heap ordered by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
