package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptySampler(t *testing.T) {
	var s Sampler
	if s.N() != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty sampler should return zeros")
	}
	sum := s.Summarize()
	if sum != (Summary{}) {
		t.Fatalf("empty Summarize = %+v", sum)
	}
}

func TestMean(t *testing.T) {
	var s Sampler
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if got := s.Mean(); got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
}

func TestQuantiles(t *testing.T) {
	var s Sampler
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5}, {-0.5, 1}, {1.5, 100},
	}
	for _, tc := range cases {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestQuantileUnsortedInput(t *testing.T) {
	var s Sampler
	for _, v := range []float64{9, 1, 5, 3, 7} {
		s.Add(v)
	}
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("median = %g, want 5", got)
	}
	// Adding after a quantile query must re-sort.
	s.Add(0)
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("min after new add = %g, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	var s Sampler
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	sum := s.Summarize()
	if sum.N != 8 || sum.Min != 2 || sum.Max != 9 {
		t.Fatalf("Summary = %+v", sum)
	}
	if math.Abs(sum.Mean-5) > 1e-9 {
		t.Errorf("Mean = %g, want 5", sum.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(sum.StdDev-want) > 1e-9 {
		t.Errorf("StdDev = %g, want %g", sum.StdDev, want)
	}
	if sum.String() == "" {
		t.Error("String() empty")
	}
}

func TestSingleSampleStdDevZero(t *testing.T) {
	var s Sampler
	s.Add(42)
	if got := s.Summarize().StdDev; got != 0 {
		t.Fatalf("StdDev of one sample = %g", got)
	}
}

func TestReset(t *testing.T) {
	var s Sampler
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.Quantile(0.5) != 2 {
		t.Fatal("setup median wrong")
	}
	s.Reset()
	if s.N() != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("Reset did not clear the sampler")
	}
	if got := s.Summarize(); got != (Summary{}) {
		t.Fatalf("Summarize after Reset = %+v", got)
	}
	// The sampler must be fully reusable: fresh observations only.
	s.Add(10)
	s.Add(20)
	sum := s.Summarize()
	if sum.N != 2 || sum.Mean != 15 || sum.Min != 10 || sum.Max != 20 {
		t.Fatalf("Summary after Reset+Add = %+v", sum)
	}
}

func TestStringIncludesStdDev(t *testing.T) {
	s := Summary{N: 3, Mean: 1.5, StdDev: 0.25, P50: 1.4, P95: 2, P99: 2.1, Max: 2.2}
	got := s.String()
	for _, want := range []string{"n=3", "mean=1.5s", "stddev=0.25s", "p50=1.4s", "max=2.2s"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}

func TestPercentChange(t *testing.T) {
	if got := PercentChange(100, 150); got != 50 {
		t.Errorf("PercentChange(100,150) = %g", got)
	}
	if got := PercentChange(0, 5); got != 0 {
		t.Errorf("PercentChange(0,5) = %g, want 0", got)
	}
	if got := PercentChange(200, 100); got != -50 {
		t.Errorf("PercentChange(200,100) = %g", got)
	}
}

func TestSavingsPercent(t *testing.T) {
	if got := SavingsPercent(100, 83); math.Abs(got-17) > 1e-9 {
		t.Errorf("SavingsPercent(100,83) = %g, want 17", got)
	}
	if got := SavingsPercent(0, 5); got != 0 {
		t.Errorf("SavingsPercent(0,5) = %g, want 0", got)
	}
}

// Property: quantiles are monotone in q and bounded by [min, max].
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sampler
		for _, v := range raw {
			s.Add(float64(v))
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		sum := s.Summarize()
		return sum.Min <= sum.P50 && sum.P50 <= sum.P95 && sum.P95 <= sum.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean is invariant to sample order and within [min,max].
func TestQuickMeanBounded(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sampler
		min, max := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			fv := float64(v)
			s.Add(fv)
			min = math.Min(min, fv)
			max = math.Max(max, fv)
		}
		m := s.Mean()
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddAndSummarize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var s Sampler
		for j := 0; j < 1000; j++ {
			s.Add(float64(j % 97))
		}
		_ = s.Summarize()
	}
}
