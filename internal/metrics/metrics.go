// Package metrics provides the response-time and throughput accounting
// used by the evaluation harness (Section V-C of the paper uses energy,
// state transitions, and response time as its three metrics; energy and
// transitions live with the disk model, response times live here).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Sampler accumulates a stream of float64 observations and produces a
// Summary. It keeps all samples (evaluation runs are bounded), which makes
// exact percentiles possible.
type Sampler struct {
	samples []float64
	sum     float64
	sorted  bool
}

// Add records one observation.
func (s *Sampler) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sum += v
	s.sorted = false
}

// N returns the number of observations.
func (s *Sampler) N() int { return len(s.samples) }

// Reset discards all accumulated observations, keeping the backing
// storage for reuse (windowed reporting: summarize, reset, keep going).
func (s *Sampler) Reset() {
	s.samples = s.samples[:0]
	s.sum = 0
	s.sorted = false
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (s *Sampler) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

func (s *Sampler) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear
// interpolation, or 0 with no samples.
func (s *Sampler) Quantile(q float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	if q <= 0 {
		s.ensureSorted()
		return s.samples[0]
	}
	if q >= 1 {
		s.ensureSorted()
		return s.samples[len(s.samples)-1]
	}
	s.ensureSorted()
	pos := q * float64(len(s.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.samples[lo]
	}
	frac := pos - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac
}

// Summary is a frozen snapshot of a Sampler.
type Summary struct {
	N                   int
	Mean                float64
	Min, Max            float64
	P50, P95, P99, P999 float64
	StdDev              float64
}

// Summarize computes the Summary.
func (s *Sampler) Summarize() Summary {
	if len(s.samples) == 0 {
		return Summary{}
	}
	s.ensureSorted()
	sum2 := 0.0
	mean := s.Mean()
	for _, v := range s.samples {
		d := v - mean
		sum2 += d * d
	}
	std := 0.0
	if len(s.samples) > 1 {
		std = math.Sqrt(sum2 / float64(len(s.samples)-1))
	}
	return Summary{
		N:      len(s.samples),
		Mean:   mean,
		Min:    s.samples[0],
		Max:    s.samples[len(s.samples)-1],
		P50:    s.Quantile(0.50),
		P95:    s.Quantile(0.95),
		P99:    s.Quantile(0.99),
		P999:   s.Quantile(0.999),
		StdDev: std,
	}
}

// String renders the summary compactly for logs and tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4gs stddev=%.4gs p50=%.4gs p95=%.4gs p99=%.4gs p999=%.4gs max=%.4gs",
		s.N, s.Mean, s.StdDev, s.P50, s.P95, s.P99, s.P999, s.Max)
}

// PercentChange returns 100*(with-without)/without — the paper's
// "response time degradation" and "energy efficiency gain" arithmetic.
// It returns 0 when without is 0.
func PercentChange(without, with float64) float64 {
	if without == 0 {
		return 0
	}
	return 100 * (with - without) / without
}

// SavingsPercent returns 100*(baseline-improved)/baseline, the paper's
// energy-savings convention. It returns 0 when baseline is 0.
func SavingsPercent(baseline, improved float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (baseline - improved) / baseline
}
