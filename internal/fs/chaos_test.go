package fs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"strings"
	"sync"
	"testing"
	"time"

	"eevfs/internal/disk"
	"eevfs/internal/faultnet"
	"eevfs/internal/proto"
	"eevfs/internal/simtest/leak"
)

// chaosTransport is the deliberately aggressive timeout/retry policy the
// chaos tests run under: every failure mode must resolve in well under a
// second so the bounded-time assertions are meaningful.
func chaosTransport() proto.TransportConfig {
	return proto.TransportConfig{
		DialTimeout: 250 * time.Millisecond,
		RTTimeout:   250 * time.Millisecond,
		Retries:     1,
		RetryBase:   5 * time.Millisecond,
		RetryMax:    10 * time.Millisecond,
		Seed:        7,
	}
}

// chaosCluster builds a cluster whose server->node path runs over one
// fault-injecting network and whose client->server/node path runs over a
// second, independent one — so scripted fault budgets on one path (e.g.
// "refuse the next dial") cannot be consumed by the other, keeping the
// chaos scripts deterministic.
func chaosCluster(t *testing.T, numNodes int) (cl *Client, srv *Server, nodes []*Node, serverNet, clientNet *faultnet.Network) {
	t.Helper()
	// Every chaos test spawns server probe loops and node accept
	// goroutines; the Close paths must join them all, even after forced
	// failures. Registered first so it runs after the other cleanups.
	leak.Check(t)
	quiet := log.New(io.Discard, "", 0)
	serverNet = faultnet.New(1)
	clientNet = faultnet.New(2)

	var addrs []string
	for i := 0; i < numNodes; i++ {
		n, err := StartNode(NodeConfig{
			Addr:             "127.0.0.1:0",
			RootDir:          t.TempDir(),
			DataDisks:        2,
			DataModel:        disk.ModelType1,
			BufferModel:      disk.ModelType1,
			IdleThresholdSec: 5,
			TimeScale:        2000,
			InjectLatency:    true,
			WriteTimeout:     time.Second,
			Logger:           quiet,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		nodes = append(nodes, n)
		addrs = append(addrs, n.Addr())
	}

	srv, err := StartServer(ServerConfig{
		Addr:      "127.0.0.1:0",
		NodeAddrs: addrs,
		Logger:    quiet,
		Dialer:    serverNet,
		Transport: chaosTransport(),
		Health: HealthConfig{
			FailThreshold: 2,
			ProbeInterval: 20 * time.Millisecond,
		},
		WriteTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	cl, err = DialConfig(srv.Addr(), ClientConfig{
		Dialer:    clientNet,
		Transport: chaosTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, srv, nodes, serverNet, clientNet
}

// waitHealthy polls the server's health view until node idx reaches the
// wanted state.
func waitHealthy(t *testing.T, srv *Server, idx int, want bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Healthy()[idx] == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node %d never became healthy=%v", idx, want)
}

// TestChaosPartitionBoundedTypedError is the acceptance scenario: with
// one node partitioned, requests touching it fail within the configured
// deadlines with typed errors (never a hang), the server degrades
// placement to the healthy node, and healing the partition restores full
// service.
func TestChaosPartitionBoundedTypedError(t *testing.T) {
	cl, srv, nodes, serverNet, clientNet := chaosCluster(t, 2)
	if err := cl.Create("f0", bytes.Repeat([]byte("a"), 2000)); err != nil { // node 0
		t.Fatal(err)
	}
	if err := cl.Create("f1", bytes.Repeat([]byte("b"), 2000)); err != nil { // node 1
		t.Fatal(err)
	}

	// Partition node 0 on both paths: the server's probes and the
	// client's direct data connections all black-hole.
	victim := nodes[0].Addr()
	serverNet.Partition(victim)
	clientNet.Partition(victim)

	// A read racing ahead of failure detection must come back quickly
	// with a transport-typed error, not hang on the dead socket. Bound:
	// 2 attempts x 250ms RTTimeout + backoff + lookup, with margin.
	start := time.Now()
	_, _, err := cl.Read("f0")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("read through a partition succeeded")
	}
	var te *proto.TransportError
	if !errors.Is(err, ErrNodeUnavailable) && !errors.As(err, &te) {
		t.Fatalf("partition read error = %v, want typed transport or unavailable error", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("partition read took %v, want bounded by deadlines (~500ms)", elapsed)
	}

	// The prober marks the node unhealthy; from then on lookups fail
	// fast with the typed unavailable sentinel instead of timing out.
	waitHealthy(t, srv, 0, false)
	start = time.Now()
	_, _, err = cl.Read("f0")
	if !errors.Is(err, ErrNodeUnavailable) {
		t.Fatalf("degraded lookup error = %v, want ErrNodeUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("degraded lookup took %v, want fast server-side rejection", elapsed)
	}
	if err := cl.Delete("f0"); !errors.Is(err, ErrNodeUnavailable) {
		t.Fatalf("degraded delete error = %v, want ErrNodeUnavailable", err)
	}

	// Degraded placement: every new file lands on the healthy node.
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("g%d", i)
		if err := cl.Create(name, []byte("degraded")); err != nil {
			t.Fatalf("create %s during partition: %v", name, err)
		}
		fi, ok := srv.meta.LookupName(name)
		if !ok {
			t.Fatalf("%s missing from metadata", name)
		}
		if fi.Node != 1 {
			t.Fatalf("%s placed on partitioned node %d", name, fi.Node)
		}
	}

	// Degraded stats: the partitioned node is skipped, not fatal.
	stats, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats during partition: %v", err)
	}
	for _, d := range stats.Disks {
		if strings.HasPrefix(d.Name, "node0/") {
			t.Fatalf("stats include partitioned node: %s", d.Name)
		}
	}

	// The healthy node keeps serving reads throughout.
	if _, _, err := cl.Read("f1"); err != nil {
		t.Fatalf("healthy node read during partition: %v", err)
	}

	// Heal: the prober readmits the node and its files come back.
	serverNet.Heal(victim)
	clientNet.Heal(victim)
	waitHealthy(t, srv, 0, true)
	got, _, err := cl.Read("f0")
	if err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte("a"), 2000)) {
		t.Fatal("content corrupted across partition/heal")
	}
}

// TestChaosTransientDialRefusalRetried: one refused dial is absorbed by
// the retry policy — the caller never sees it.
func TestChaosTransientDialRefusalRetried(t *testing.T) {
	cl, srv, nodes, _, clientNet := chaosCluster(t, 1)
	if err := cl.Create("f", bytes.Repeat([]byte("x"), 500)); err != nil {
		t.Fatal(err)
	}

	// A fresh client holds no node connection yet; its first data dial
	// gets refused once and must transparently retry.
	cl2, err := DialConfig(srv.Addr(), ClientConfig{Dialer: clientNet, Transport: chaosTransport()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	clientNet.SetFault(nodes[0].Addr(), faultnet.Fault{RefuseDials: 1})
	if _, _, err := cl2.Read("f"); err != nil {
		t.Fatalf("read with one refused dial: %v", err)
	}

	// With the live connection killed and every redial refused, the
	// retry budget exhausts and the error surfaces typed.
	clientNet.SetFault(nodes[0].Addr(), faultnet.Fault{DropAfterBytes: 1, RefuseDials: -1})
	_, _, err = cl2.Read("f")
	var te *proto.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("exhausted retries error = %v, want *proto.TransportError", err)
	}
	clientNet.Heal(nodes[0].Addr())
}

// TestChaosMidStreamDropRetried: a connection that dies mid-response is
// discarded and the retry completes the read on a fresh connection.
func TestChaosMidStreamDropRetried(t *testing.T) {
	cl, srv, nodes, _, clientNet := chaosCluster(t, 1)
	content := bytes.Repeat([]byte("z"), 4000)
	if err := cl.Create("f", content); err != nil {
		t.Fatal(err)
	}

	// Script: the next connection dialed to the node dies after 512
	// bytes — mid-way through the 4000-byte response. The connection
	// after it is clean.
	clientNet.SetFault(nodes[0].Addr(), faultnet.Fault{DropAfterBytes: 512, DropConns: 1})
	cl2, err := DialConfig(srv.Addr(), ClientConfig{Dialer: clientNet, Transport: chaosTransport()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	got, _, err := cl2.Read("f")
	if err != nil {
		t.Fatalf("read across mid-stream drop: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("retried read returned wrong content")
	}
}

// TestChaosCorruptionPoisonsAllOutstanding: with many calls pipelined on
// the client's one server connection, a mid-stream corruption poisons the
// whole connection — every outstanding request must fail with a typed
// *proto.TransportError (no hangs, no silent wrong answers at the
// transport layer), and once the fault heals the next call must redial a
// fresh connection and succeed.
func TestChaosCorruptionPoisonsAllOutstanding(t *testing.T) {
	_, srv, _, _, clientNet := chaosCluster(t, 1)

	// Single-attempt transport: retries would mask the poison we want to
	// observe.
	cfg := chaosTransport()
	cfg.Retries = -1
	cl2, err := DialConfig(srv.Addr(), ClientConfig{Dialer: clientNet, Transport: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()

	// Prime the shared connection so every goroutine below pipelines on
	// the same socket rather than racing the first dial.
	if _, err := cl2.List(); err != nil {
		t.Fatal(err)
	}

	// Corrupt a byte every 7 transferred: frame headers are guaranteed
	// casualties, so the stream desyncs rather than merely smudging a
	// payload.
	clientNet.SetFault(srv.Addr(), faultnet.Fault{CorruptEvery: 7})

	const outstanding = 6
	var wg sync.WaitGroup
	errs := make(chan error, outstanding)
	for i := 0; i < outstanding; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl2.List()
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("call over a corrupted stream reported success")
		}
		var te *proto.TransportError
		if !errors.As(err, &te) {
			t.Fatalf("corrupted-stream error = %v, want *proto.TransportError", err)
		}
	}

	// Heal: the poisoned connection was discarded, so the next call can
	// only succeed by redialing.
	clientNet.Heal(srv.Addr())
	if _, err := cl2.List(); err != nil {
		t.Fatalf("call after heal must redial and succeed, got %v", err)
	}
}

// TestChaosNodeRestartRecovery: a crashed node is detected, its files
// report unavailable, and after a restart on the same address the prober
// readmits it with content intact.
func TestChaosNodeRestartRecovery(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	cl, srv, nodes, _, _ := chaosCluster(t, 2)
	content := bytes.Repeat([]byte("r"), 1500)
	if err := cl.Create("f0", content); err != nil { // node 0
		t.Fatal(err)
	}

	addr := nodes[0].Addr()
	rootDir := nodes[0].cfg.RootDir
	nodes[0].Close() // crash

	waitHealthy(t, srv, 0, false)
	if _, _, err := cl.Read("f0"); !errors.Is(err, ErrNodeUnavailable) {
		t.Fatalf("read from crashed node = %v, want ErrNodeUnavailable", err)
	}

	restarted, err := StartNode(NodeConfig{
		Addr:             addr,
		RootDir:          rootDir,
		DataDisks:        2,
		DataModel:        disk.ModelType1,
		BufferModel:      disk.ModelType1,
		IdleThresholdSec: 5,
		TimeScale:        2000,
		InjectLatency:    true,
		WriteTimeout:     time.Second,
		Logger:           quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { restarted.Close() })

	waitHealthy(t, srv, 0, true)
	got, _, err := cl.Read("f0")
	if err != nil {
		t.Fatalf("read after node restart: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content lost across node restart")
	}
}

// TestChaosAllNodesDown: with every node unhealthy, creates fail fast
// with the unavailable sentinel instead of hanging.
func TestChaosAllNodesDown(t *testing.T) {
	cl, srv, nodes, serverNet, clientNet := chaosCluster(t, 2)
	for _, n := range nodes {
		serverNet.Partition(n.Addr())
		clientNet.Partition(n.Addr())
	}
	waitHealthy(t, srv, 0, false)
	waitHealthy(t, srv, 1, false)

	start := time.Now()
	err := cl.Create("doomed", []byte("x"))
	if !errors.Is(err, ErrNodeUnavailable) {
		t.Fatalf("create with no healthy nodes = %v, want ErrNodeUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("no-healthy-node create took %v, want fast rejection", elapsed)
	}
}

// TestChaosConcurrentClientsUnderFaults is the concurrency stress test:
// N clients hammer a cluster that suffers latency, a partition, and a
// heal mid-run. Every failure must surface as a typed error, and every
// file that was reported created must be readable once the dust settles.
func TestChaosConcurrentClientsUnderFaults(t *testing.T) {
	cl, srv, nodes, serverNet, clientNet := chaosCluster(t, 2)
	_ = cl

	for _, n := range nodes {
		clientNet.SetFault(n.Addr(), faultnet.Fault{Latency: 2 * time.Millisecond})
	}

	const goroutines = 8
	const filesEach = 6
	var mu sync.Mutex
	var created []string
	var typedErrs, untypedErrs []error

	noteErr := func(err error) {
		var te *proto.TransportError
		var re *proto.RemoteError
		mu.Lock()
		defer mu.Unlock()
		if errors.Is(err, ErrNodeUnavailable) || errors.Is(err, ErrFileNotFound) ||
			errors.As(err, &te) || errors.As(err, &re) {
			typedErrs = append(typedErrs, err)
		} else {
			untypedErrs = append(untypedErrs, err)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := DialConfig(srv.Addr(), ClientConfig{Dialer: clientNet, Transport: chaosTransport()})
			if err != nil {
				noteErr(err)
				return
			}
			defer c.Close()
			for i := 0; i < filesEach; i++ {
				name := fmt.Sprintf("w%d-%d", g, i)
				if err := c.Create(name, bytes.Repeat([]byte{byte(g)}, 700)); err != nil {
					noteErr(err)
					continue
				}
				mu.Lock()
				created = append(created, name)
				mu.Unlock()
				if _, _, err := c.Read(name); err != nil {
					noteErr(err)
				}
				if _, err := c.List(); err != nil {
					noteErr(err)
				}
			}
		}(g)
	}

	// Mid-run: partition node 1, let the prober degrade the cluster,
	// then heal it while the writers keep running.
	victim := nodes[1].Addr()
	time.Sleep(20 * time.Millisecond)
	serverNet.Partition(victim)
	clientNet.Partition(victim)
	time.Sleep(150 * time.Millisecond)
	serverNet.Heal(victim)
	clientNet.Heal(victim)

	wg.Wait()

	if len(untypedErrs) > 0 {
		t.Fatalf("%d untyped errors under chaos, first: %v", len(untypedErrs), untypedErrs[0])
	}

	// After healing, everything that was acknowledged must be readable.
	waitHealthy(t, srv, 1, true)
	c, err := DialConfig(srv.Addr(), ClientConfig{Dialer: clientNet, Transport: chaosTransport()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, name := range created {
		if _, _, err := c.Read(name); err != nil {
			t.Fatalf("file %s acknowledged but unreadable after heal: %v", name, err)
		}
	}
	t.Logf("chaos run: %d files created, %d typed errors surfaced", len(created), len(typedErrs))
}
