package fs

import (
	"fmt"
	"net"
	"sync"

	"eevfs/internal/proto"
)

// Client talks to a storage server for metadata and directly to storage
// nodes for data (steps 5-6 of the paper's process flow). Safe for
// concurrent use; each underlying connection carries one round trip at a
// time.
type Client struct {
	mu     sync.Mutex
	server net.Conn
	nodes  map[string]net.Conn
}

// Dial connects to the storage server.
func Dial(serverAddr string) (*Client, error) {
	conn, err := net.Dial("tcp", serverAddr)
	if err != nil {
		return nil, fmt.Errorf("fs: dialing server %s: %w", serverAddr, err)
	}
	return &Client{server: conn, nodes: make(map[string]net.Conn)}, nil
}

// Close shuts down all connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.server.Close()
	for _, conn := range c.nodes {
		conn.Close()
	}
	c.nodes = map[string]net.Conn{}
	return err
}

// serverRT performs one round trip on the server connection.
func (c *Client) serverRT(t proto.Type, payload []byte) (proto.Type, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return proto.RoundTrip(c.server, t, payload)
}

// nodeRT performs one round trip on a (cached) node connection.
func (c *Client) nodeRT(addr string, t proto.Type, payload []byte) (proto.Type, []byte, error) {
	c.mu.Lock()
	conn, ok := c.nodes[addr]
	if !ok {
		var err error
		conn, err = net.Dial("tcp", addr)
		if err != nil {
			c.mu.Unlock()
			return 0, nil, fmt.Errorf("fs: dialing node %s: %w", addr, err)
		}
		c.nodes[addr] = conn
	}
	rt, rp, err := proto.RoundTrip(conn, t, payload)
	if err != nil && !isRemoteErr(err) {
		// Transport failure: drop the cached connection so the next call
		// redials.
		conn.Close()
		delete(c.nodes, addr)
	}
	c.mu.Unlock()
	return rt, rp, err
}

// Create registers a new file with the server and uploads its content to
// the assigned storage node.
func (c *Client) Create(name string, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("fs: refusing to create empty file %q", name)
	}
	_, payload, err := c.serverRT(proto.TCreateReq,
		proto.CreateReq{Name: name, Size: int64(len(data))}.Encode())
	if err != nil {
		return err
	}
	resp, err := proto.DecodeCreateResp(payload)
	if err != nil {
		return err
	}
	_, _, err = c.nodeRT(resp.NodeAddr, proto.TNodeWriteReq,
		proto.NodeWriteReq{FileID: resp.FileID, Data: data}.Encode())
	return err
}

// Read fetches a file. fromBuffer reports whether the storage node served
// it from its buffer disk.
func (c *Client) Read(name string) (data []byte, fromBuffer bool, err error) {
	_, payload, err := c.serverRT(proto.TLookupReq, proto.LookupReq{Name: name}.Encode())
	if err != nil {
		return nil, false, err
	}
	loc, err := proto.DecodeLookupResp(payload)
	if err != nil {
		return nil, false, err
	}
	_, payload, err = c.nodeRT(loc.NodeAddr, proto.TNodeReadReq,
		proto.NodeReadReq{FileID: loc.FileID}.Encode())
	if err != nil {
		return nil, false, err
	}
	resp, err := proto.DecodeNodeReadResp(payload)
	if err != nil {
		return nil, false, err
	}
	out := make([]byte, len(resp.Data))
	copy(out, resp.Data)
	return out, resp.FromBuffer, nil
}

// ReadAt fetches length bytes of a file starting at off. fromBuffer
// reports whether the storage node's buffer disk served the range.
func (c *Client) ReadAt(name string, off, length int64) (data []byte, fromBuffer bool, err error) {
	_, payload, err := c.serverRT(proto.TLookupReq, proto.LookupReq{Name: name}.Encode())
	if err != nil {
		return nil, false, err
	}
	loc, err := proto.DecodeLookupResp(payload)
	if err != nil {
		return nil, false, err
	}
	_, payload, err = c.nodeRT(loc.NodeAddr, proto.TNodeReadAtReq,
		proto.NodeReadAtReq{FileID: loc.FileID, Offset: off, Length: length}.Encode())
	if err != nil {
		return nil, false, err
	}
	resp, err := proto.DecodeNodeReadResp(payload)
	if err != nil {
		return nil, false, err
	}
	out := make([]byte, len(resp.Data))
	copy(out, resp.Data)
	return out, resp.FromBuffer, nil
}

// Write replaces a file's content. buffered reports whether the node's
// write-buffer area absorbed it (Section III-C).
func (c *Client) Write(name string, data []byte) (buffered bool, err error) {
	if len(data) == 0 {
		return false, fmt.Errorf("fs: refusing to write empty content to %q", name)
	}
	_, payload, err := c.serverRT(proto.TLookupReq, proto.LookupReq{Name: name}.Encode())
	if err != nil {
		return false, err
	}
	loc, err := proto.DecodeLookupResp(payload)
	if err != nil {
		return false, err
	}
	_, payload, err = c.nodeRT(loc.NodeAddr, proto.TNodeWriteReq,
		proto.NodeWriteReq{FileID: loc.FileID, Data: data}.Encode())
	if err != nil {
		return false, err
	}
	resp, err := proto.DecodeNodeWriteResp(payload)
	if err != nil {
		return false, err
	}
	return resp.Buffered, nil
}

// List returns all file names.
func (c *Client) List() ([]string, error) {
	_, payload, err := c.serverRT(proto.TListReq, nil)
	if err != nil {
		return nil, err
	}
	resp, err := proto.DecodeListResp(payload)
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Delete removes a file.
func (c *Client) Delete(name string) error {
	_, _, err := c.serverRT(proto.TDeleteReq, proto.DeleteReq{Name: name}.Encode())
	return err
}

// Prefetch asks the server to prefetch the top-k popular files into the
// storage nodes' buffer disks; it returns how many files were copied.
func (c *Client) Prefetch(k int) (int, error) {
	_, payload, err := c.serverRT(proto.TPrefetchReq, proto.PrefetchReq{K: int64(k)}.Encode())
	if err != nil {
		return 0, err
	}
	resp, err := proto.DecodePrefetchResp(payload)
	if err != nil {
		return 0, err
	}
	return int(resp.Prefetched), nil
}

// Stats fetches cluster-wide per-disk accounting.
func (c *Client) Stats() (proto.StatsResp, error) {
	_, payload, err := c.serverRT(proto.TStatsReq, nil)
	if err != nil {
		return proto.StatsResp{}, err
	}
	return proto.DecodeStatsResp(payload)
}
