package fs

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"eevfs/internal/proto"
	"eevfs/internal/telemetry"
)

// ClientConfig configures a client's transport behavior.
type ClientConfig struct {
	// Dialer opens connections to the server and nodes (nil = plain TCP).
	Dialer proto.Dialer
	// Transport bounds and retries every round trip.
	Transport proto.TransportConfig
	// FailoverRetries bounds how many extra attempts a server operation
	// gets across not-primary redirects and — with multiple server
	// addresses — server transport faults (default 8; -1 disables).
	FailoverRetries int
	// FailoverBackoff is the base pause between failover attempts; it
	// grows linearly so a group mid-election has time to settle
	// (default 25ms).
	FailoverBackoff time.Duration
	// Tracer, when set, opens a root span per client operation and a
	// child span per server/node round trip, propagating the trace
	// context on the wire so the daemons' spans join the same tree.
	// Nil disables tracing.
	Tracer *telemetry.Tracer
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.FailoverRetries == 0 {
		c.FailoverRetries = 8
	}
	if c.FailoverRetries < 0 {
		c.FailoverRetries = 0
	}
	if c.FailoverBackoff == 0 {
		c.FailoverBackoff = 25 * time.Millisecond
	}
	return c
}

// Client talks to a storage server for metadata and directly to storage
// nodes for data (steps 5-6 of the paper's process flow). Safe for
// concurrent use: every endpoint multiplexes its one connection, so any
// number of goroutines can have round trips in flight to the server and
// to each node simultaneously, correlated by request id.
//
// Against a replicated server group the client tracks which member it
// believes is primary: a typed not-primary rejection switches it to the
// redirect hint, and a transport fault rotates it to the next known
// address. All of that happens inside serverRT, so callers see at most
// a typed error after the retry budget runs out.
type Client struct {
	cfg     ClientConfig
	servers []string // all known server addresses, dial order

	mu      sync.Mutex
	current string // address currently believed primary
	eps     map[string]*proto.Endpoint
	nodes   map[string]*proto.Endpoint
}

// Dial connects to the storage server with default transport settings.
func Dial(serverAddr string) (*Client, error) {
	return DialConfig(serverAddr, ClientConfig{})
}

// DialConfig connects to the storage server with explicit transport
// settings.
func DialConfig(serverAddr string, cfg ClientConfig) (*Client, error) {
	return DialCluster([]string{serverAddr}, cfg)
}

// DialCluster connects to a replicated server group. The first
// reachable address becomes the believed primary; serverRT follows
// not-primary redirects from there.
func DialCluster(serverAddrs []string, cfg ClientConfig) (*Client, error) {
	if len(serverAddrs) == 0 {
		return nil, errors.New("fs: no server addresses")
	}
	c := &Client{
		cfg:     cfg.withDefaults(),
		servers: append([]string(nil), serverAddrs...),
		eps:     make(map[string]*proto.Endpoint),
		nodes:   make(map[string]*proto.Endpoint),
	}
	var firstErr error
	for _, addr := range c.servers {
		if err := c.serverEp(addr).Connect(); err == nil {
			c.mu.Lock()
			c.current = addr
			c.mu.Unlock()
			return c, nil
		} else if firstErr == nil {
			firstErr = err
		}
	}
	c.Close()
	return nil, fmt.Errorf("fs: dialing server %s: %w", c.servers[0], firstErr)
}

// Close shuts down all connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	for _, ep := range c.eps {
		if cerr := ep.Close(); err == nil {
			err = cerr
		}
	}
	c.eps = map[string]*proto.Endpoint{}
	for _, ep := range c.nodes {
		ep.Close()
	}
	c.nodes = map[string]*proto.Endpoint{}
	return err
}

// serverEp returns the (cached) endpoint for one server address.
func (c *Client) serverEp(addr string) *proto.Endpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	ep, ok := c.eps[addr]
	if !ok {
		ep = proto.NewEndpoint(addr, c.cfg.Dialer, c.cfg.Transport)
		c.eps[addr] = ep
	}
	return ep
}

// currentServer returns the address currently believed primary.
func (c *Client) currentServer() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current == "" {
		c.current = c.servers[0]
	}
	return c.current
}

// switchServer repoints the client at addr (a redirect hint), learning
// it if it was not in the configured list.
func (c *Client) switchServer(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.current = addr
	known := false
	for _, a := range c.servers {
		if a == addr {
			known = true
			break
		}
	}
	if !known {
		c.servers = append(c.servers, addr)
	}
}

// rotateServer advances from a failed address to the next configured
// one, unless a concurrent operation already moved on.
func (c *Client) rotateServer(failed string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current != failed {
		return
	}
	for i, a := range c.servers {
		if a == failed {
			c.current = c.servers[(i+1)%len(c.servers)]
			return
		}
	}
	c.current = c.servers[0]
}

// startOp opens the root span of one client operation (nil when tracing
// is off).
func (c *Client) startOp(name, file string) *telemetry.Span {
	sp := c.cfg.Tracer.StartRoot("client", "client."+name)
	if file != "" {
		sp.Annotate("file", file)
	}
	return sp
}

// serverRT performs one round trip against the believed primary,
// following not-primary redirects and rotating on transport faults
// while the retry budget lasts. Remote failures come back re-typed so
// callers can errors.Is against the fs sentinels. Each attempt gets its
// own child span under parent, annotated with the peer tried and any
// redirect followed, so the trace tree shows the whole failover walk.
func (c *Client) serverRT(t proto.Type, payload []byte, parent *telemetry.Span) (proto.Type, []byte, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.FailoverRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * c.cfg.FailoverBackoff)
		}
		addr := c.currentServer()
		att := parent.Child("client.rt.server")
		att.Annotate("peer", addr)
		if attempt > 0 {
			att.Annotate("retry", strconv.Itoa(attempt))
		}
		rt, rp, err := c.serverEp(addr).CallCtx(t, payload, att.Context())
		if err == nil {
			att.Finish()
			return rt, rp, nil
		}
		lastErr = mapRemote(err)
		switch {
		case errors.Is(lastErr, ErrNotPrimary):
			if hint := redirectHint(err); hint != "" && hint != addr {
				att.Annotate("redirect", hint)
				c.switchServer(hint)
			} else {
				c.rotateServer(addr)
			}
			att.End(lastErr)
		case isTransportErr(err) && len(c.servers) > 1:
			c.rotateServer(addr)
			att.End(lastErr)
		default:
			att.End(lastErr)
			return rt, rp, lastErr
		}
	}
	return 0, nil, lastErr
}

// nodeEp returns the (cached) endpoint for one storage-node address.
func (c *Client) nodeEp(addr string) *proto.Endpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	ep, ok := c.nodes[addr]
	if !ok {
		ep = proto.NewEndpoint(addr, c.cfg.Dialer, c.cfg.Transport)
		c.nodes[addr] = ep
	}
	return ep
}

// nodeRT performs one round trip on a (cached) node endpoint. The
// endpoint handles redials, deadlines, and retries; a dead connection is
// always discarded before the next attempt.
func (c *Client) nodeRT(addr string, t proto.Type, payload []byte, parent *telemetry.Span) (proto.Type, []byte, error) {
	ep := c.nodeEp(addr)
	sp := parent.Child("client.rt.node")
	sp.Annotate("peer", addr)
	rt, rp, err := ep.CallCtx(t, payload, sp.Context())
	if err != nil {
		err = mapRemote(err)
	}
	sp.End(err)
	return rt, rp, err
}

// Create registers a new file with the server and uploads its content to
// the assigned storage node.
func (c *Client) Create(name string, data []byte) (err error) {
	if len(data) == 0 {
		return fmt.Errorf("fs: refusing to create empty file %q", name)
	}
	sp := c.startOp("create", name)
	defer func() { sp.End(err) }()
	_, payload, err := c.serverRT(proto.TCreateReq,
		proto.CreateReq{Name: name, Size: int64(len(data))}.Encode(), sp)
	if err != nil {
		return err
	}
	resp, err := proto.DecodeCreateResp(payload)
	if err != nil {
		return err
	}
	_, _, err = c.nodeRT(resp.NodeAddr, proto.TNodeWriteReq,
		proto.NodeWriteReq{FileID: resp.FileID, Data: data}.Encode(), sp)
	return err
}

// Read fetches a file. fromBuffer reports whether the storage node served
// it from its buffer disk.
func (c *Client) Read(name string) (data []byte, fromBuffer bool, err error) {
	sp := c.startOp("read", name)
	defer func() { sp.End(err) }()
	_, payload, err := c.serverRT(proto.TLookupReq, proto.LookupReq{Name: name}.Encode(), sp)
	if err != nil {
		return nil, false, err
	}
	loc, err := proto.DecodeLookupResp(payload)
	if err != nil {
		return nil, false, err
	}
	_, payload, err = c.nodeRT(loc.NodeAddr, proto.TNodeReadReq,
		proto.NodeReadReq{FileID: loc.FileID}.Encode(), sp)
	if err != nil {
		return nil, false, err
	}
	resp, err := proto.DecodeNodeReadResp(payload)
	if err != nil {
		return nil, false, err
	}
	out := make([]byte, len(resp.Data))
	copy(out, resp.Data)
	return out, resp.FromBuffer, nil
}

// ReadAt fetches length bytes of a file starting at off. fromBuffer
// reports whether the storage node's buffer disk served the range.
func (c *Client) ReadAt(name string, off, length int64) (data []byte, fromBuffer bool, err error) {
	sp := c.startOp("readat", name)
	defer func() { sp.End(err) }()
	_, payload, err := c.serverRT(proto.TLookupReq, proto.LookupReq{Name: name}.Encode(), sp)
	if err != nil {
		return nil, false, err
	}
	loc, err := proto.DecodeLookupResp(payload)
	if err != nil {
		return nil, false, err
	}
	_, payload, err = c.nodeRT(loc.NodeAddr, proto.TNodeReadAtReq,
		proto.NodeReadAtReq{FileID: loc.FileID, Offset: off, Length: length}.Encode(), sp)
	if err != nil {
		return nil, false, err
	}
	resp, err := proto.DecodeNodeReadResp(payload)
	if err != nil {
		return nil, false, err
	}
	out := make([]byte, len(resp.Data))
	copy(out, resp.Data)
	return out, resp.FromBuffer, nil
}

// Write replaces a file's content. The lookup declares write intent so
// the server can invalidate any buffer-disk replica before the new
// bytes land. buffered reports whether the node's write-buffer area
// absorbed it (Section III-C).
func (c *Client) Write(name string, data []byte) (buffered bool, err error) {
	if len(data) == 0 {
		return false, fmt.Errorf("fs: refusing to write empty content to %q", name)
	}
	sp := c.startOp("write", name)
	defer func() { sp.End(err) }()
	_, payload, err := c.serverRT(proto.TLookupWriteReq, proto.LookupReq{Name: name}.Encode(), sp)
	if err != nil {
		return false, err
	}
	loc, err := proto.DecodeLookupResp(payload)
	if err != nil {
		return false, err
	}
	_, payload, err = c.nodeRT(loc.NodeAddr, proto.TNodeWriteReq,
		proto.NodeWriteReq{FileID: loc.FileID, Data: data}.Encode(), sp)
	if err != nil {
		return false, err
	}
	resp, err := proto.DecodeNodeWriteResp(payload)
	if err != nil {
		return false, err
	}
	return resp.Buffered, nil
}

// List returns all file names.
func (c *Client) List() (names []string, err error) {
	sp := c.startOp("list", "")
	defer func() { sp.End(err) }()
	_, payload, err := c.serverRT(proto.TListReq, nil, sp)
	if err != nil {
		return nil, err
	}
	resp, err := proto.DecodeListResp(payload)
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Delete removes a file.
func (c *Client) Delete(name string) (err error) {
	sp := c.startOp("delete", name)
	defer func() { sp.End(err) }()
	_, _, err = c.serverRT(proto.TDeleteReq, proto.DeleteReq{Name: name}.Encode(), sp)
	return err
}

// Prefetch asks the server to prefetch the top-k popular files into the
// storage nodes' buffer disks; it returns how many files were copied.
func (c *Client) Prefetch(k int) (count int, err error) {
	sp := c.startOp("prefetch", "")
	defer func() { sp.End(err) }()
	_, payload, err := c.serverRT(proto.TPrefetchReq, proto.PrefetchReq{K: int64(k)}.Encode(), sp)
	if err != nil {
		return 0, err
	}
	resp, err := proto.DecodePrefetchResp(payload)
	if err != nil {
		return 0, err
	}
	return int(resp.Prefetched), nil
}

// Stats fetches cluster-wide per-disk accounting.
func (c *Client) Stats() (resp proto.StatsResp, err error) {
	sp := c.startOp("stats", "")
	defer func() { sp.End(err) }()
	_, payload, err := c.serverRT(proto.TStatsReq, nil, sp)
	if err != nil {
		return proto.StatsResp{}, err
	}
	return proto.DecodeStatsResp(payload)
}
