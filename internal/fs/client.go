package fs

import (
	"fmt"
	"sync"

	"eevfs/internal/proto"
)

// ClientConfig configures a client's transport behavior.
type ClientConfig struct {
	// Dialer opens connections to the server and nodes (nil = plain TCP).
	Dialer proto.Dialer
	// Transport bounds and retries every round trip.
	Transport proto.TransportConfig
}

// Client talks to a storage server for metadata and directly to storage
// nodes for data (steps 5-6 of the paper's process flow). Safe for
// concurrent use: every endpoint multiplexes its one connection, so any
// number of goroutines can have round trips in flight to the server and
// to each node simultaneously, correlated by request id.
type Client struct {
	cfg    ClientConfig
	server *proto.Endpoint

	mu    sync.Mutex
	nodes map[string]*proto.Endpoint
}

// Dial connects to the storage server with default transport settings.
func Dial(serverAddr string) (*Client, error) {
	return DialConfig(serverAddr, ClientConfig{})
}

// DialConfig connects to the storage server with explicit transport
// settings.
func DialConfig(serverAddr string, cfg ClientConfig) (*Client, error) {
	c := &Client{
		cfg:    cfg,
		server: proto.NewEndpoint(serverAddr, cfg.Dialer, cfg.Transport),
		nodes:  make(map[string]*proto.Endpoint),
	}
	if err := c.server.Connect(); err != nil {
		return nil, fmt.Errorf("fs: dialing server %s: %w", serverAddr, err)
	}
	return c, nil
}

// Close shuts down all connections.
func (c *Client) Close() error {
	err := c.server.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ep := range c.nodes {
		ep.Close()
	}
	c.nodes = map[string]*proto.Endpoint{}
	return err
}

// serverRT performs one round trip on the server connection. Remote
// failures come back re-typed so callers can errors.Is against
// ErrNodeUnavailable / ErrFileNotFound.
func (c *Client) serverRT(t proto.Type, payload []byte) (proto.Type, []byte, error) {
	rt, rp, err := c.server.Call(t, payload)
	if err != nil {
		return rt, rp, mapRemote(err)
	}
	return rt, rp, nil
}

// nodeRT performs one round trip on a (cached) node endpoint. The
// endpoint handles redials, deadlines, and retries; a dead connection is
// always discarded before the next attempt.
func (c *Client) nodeRT(addr string, t proto.Type, payload []byte) (proto.Type, []byte, error) {
	c.mu.Lock()
	ep, ok := c.nodes[addr]
	if !ok {
		ep = proto.NewEndpoint(addr, c.cfg.Dialer, c.cfg.Transport)
		c.nodes[addr] = ep
	}
	c.mu.Unlock()
	rt, rp, err := ep.Call(t, payload)
	if err != nil {
		return rt, rp, mapRemote(err)
	}
	return rt, rp, nil
}

// Create registers a new file with the server and uploads its content to
// the assigned storage node.
func (c *Client) Create(name string, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("fs: refusing to create empty file %q", name)
	}
	_, payload, err := c.serverRT(proto.TCreateReq,
		proto.CreateReq{Name: name, Size: int64(len(data))}.Encode())
	if err != nil {
		return err
	}
	resp, err := proto.DecodeCreateResp(payload)
	if err != nil {
		return err
	}
	_, _, err = c.nodeRT(resp.NodeAddr, proto.TNodeWriteReq,
		proto.NodeWriteReq{FileID: resp.FileID, Data: data}.Encode())
	return err
}

// Read fetches a file. fromBuffer reports whether the storage node served
// it from its buffer disk.
func (c *Client) Read(name string) (data []byte, fromBuffer bool, err error) {
	_, payload, err := c.serverRT(proto.TLookupReq, proto.LookupReq{Name: name}.Encode())
	if err != nil {
		return nil, false, err
	}
	loc, err := proto.DecodeLookupResp(payload)
	if err != nil {
		return nil, false, err
	}
	_, payload, err = c.nodeRT(loc.NodeAddr, proto.TNodeReadReq,
		proto.NodeReadReq{FileID: loc.FileID}.Encode())
	if err != nil {
		return nil, false, err
	}
	resp, err := proto.DecodeNodeReadResp(payload)
	if err != nil {
		return nil, false, err
	}
	out := make([]byte, len(resp.Data))
	copy(out, resp.Data)
	return out, resp.FromBuffer, nil
}

// ReadAt fetches length bytes of a file starting at off. fromBuffer
// reports whether the storage node's buffer disk served the range.
func (c *Client) ReadAt(name string, off, length int64) (data []byte, fromBuffer bool, err error) {
	_, payload, err := c.serverRT(proto.TLookupReq, proto.LookupReq{Name: name}.Encode())
	if err != nil {
		return nil, false, err
	}
	loc, err := proto.DecodeLookupResp(payload)
	if err != nil {
		return nil, false, err
	}
	_, payload, err = c.nodeRT(loc.NodeAddr, proto.TNodeReadAtReq,
		proto.NodeReadAtReq{FileID: loc.FileID, Offset: off, Length: length}.Encode())
	if err != nil {
		return nil, false, err
	}
	resp, err := proto.DecodeNodeReadResp(payload)
	if err != nil {
		return nil, false, err
	}
	out := make([]byte, len(resp.Data))
	copy(out, resp.Data)
	return out, resp.FromBuffer, nil
}

// Write replaces a file's content. buffered reports whether the node's
// write-buffer area absorbed it (Section III-C).
func (c *Client) Write(name string, data []byte) (buffered bool, err error) {
	if len(data) == 0 {
		return false, fmt.Errorf("fs: refusing to write empty content to %q", name)
	}
	_, payload, err := c.serverRT(proto.TLookupReq, proto.LookupReq{Name: name}.Encode())
	if err != nil {
		return false, err
	}
	loc, err := proto.DecodeLookupResp(payload)
	if err != nil {
		return false, err
	}
	_, payload, err = c.nodeRT(loc.NodeAddr, proto.TNodeWriteReq,
		proto.NodeWriteReq{FileID: loc.FileID, Data: data}.Encode())
	if err != nil {
		return false, err
	}
	resp, err := proto.DecodeNodeWriteResp(payload)
	if err != nil {
		return false, err
	}
	return resp.Buffered, nil
}

// List returns all file names.
func (c *Client) List() ([]string, error) {
	_, payload, err := c.serverRT(proto.TListReq, nil)
	if err != nil {
		return nil, err
	}
	resp, err := proto.DecodeListResp(payload)
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Delete removes a file.
func (c *Client) Delete(name string) error {
	_, _, err := c.serverRT(proto.TDeleteReq, proto.DeleteReq{Name: name}.Encode())
	return err
}

// Prefetch asks the server to prefetch the top-k popular files into the
// storage nodes' buffer disks; it returns how many files were copied.
func (c *Client) Prefetch(k int) (int, error) {
	_, payload, err := c.serverRT(proto.TPrefetchReq, proto.PrefetchReq{K: int64(k)}.Encode())
	if err != nil {
		return 0, err
	}
	resp, err := proto.DecodePrefetchResp(payload)
	if err != nil {
		return 0, err
	}
	return int(resp.Prefetched), nil
}

// Stats fetches cluster-wide per-disk accounting.
func (c *Client) Stats() (proto.StatsResp, error) {
	_, payload, err := c.serverRT(proto.TStatsReq, nil)
	if err != nil {
		return proto.StatsResp{}, err
	}
	return proto.DecodeStatsResp(payload)
}
