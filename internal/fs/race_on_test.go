//go:build race

package fs

// raceEnabled reports whether this test binary was built with the race
// detector (which intentionally randomizes sync.Pool reuse, invalidating
// allocation-count assertions).
const raceEnabled = true
