package fs

import (
	"time"

	"eevfs/internal/disk"
	"eevfs/internal/proto"
	"eevfs/internal/simtime"
	"eevfs/internal/telemetry"
)

// opName maps a request type to the short operation name used in metric
// names ("<prefix>.op.<name>.seconds" / ".errors").
func opName(t proto.Type) string {
	switch t {
	case proto.TCreateReq, proto.TNodeCreateReq:
		return "create"
	case proto.TLookupReq:
		return "lookup"
	case proto.TListReq:
		return "list"
	case proto.TDeleteReq, proto.TNodeDeleteReq:
		return "delete"
	case proto.TPrefetchReq, proto.TNodePrefetchReq:
		return "prefetch"
	case proto.TStatsReq, proto.TNodeStatsReq:
		return "stats"
	case proto.TNodeReadReq:
		return "read"
	case proto.TNodeReadAtReq:
		return "readat"
	case proto.TNodeWriteReq:
		return "write"
	case proto.TNodeHintsReq:
		return "hints"
	case proto.TLookupWriteReq:
		return "lookupwrite"
	case proto.TRepAppendReq:
		return "repl.append"
	case proto.TRepSnapshotReq:
		return "repl.snapshot"
	case proto.TRepStatusReq:
		return "repl.status"
	case proto.TStreamReadReq:
		return "stream.read"
	case proto.TStreamWriteReq:
		return "stream.write"
	default:
		return "other"
	}
}

// opMetrics pre-resolves one per-operation latency histogram and error
// counter per request type, so the dispatch path never takes the
// registry lock. All handles are nil (no-op) on a nil registry.
type opMetrics struct {
	seconds map[proto.Type]*telemetry.Histogram
	errors  map[proto.Type]*telemetry.Counter
}

func newOpMetrics(reg *telemetry.Registry, prefix string, types []proto.Type) opMetrics {
	m := opMetrics{
		seconds: make(map[proto.Type]*telemetry.Histogram, len(types)),
		errors:  make(map[proto.Type]*telemetry.Counter, len(types)),
	}
	for _, t := range types {
		name := prefix + ".op." + opName(t)
		m.seconds[t] = reg.Histogram(name+".seconds", nil)
		m.errors[t] = reg.Counter(name + ".errors")
	}
	return m
}

// observe records one handled request. Unknown types (the "unexpected
// message type" error path) are simply not recorded.
func (m opMetrics) observe(t proto.Type, d time.Duration, err error) {
	m.seconds[t].Observe(d.Seconds())
	if err != nil {
		m.errors[t].Inc()
	}
}

// transitionObserver returns a disk.Observer that counts spin-ups and
// spin-downs and tracks how many disks are currently spinning. Returns
// nil (no observer installed) on a nil registry.
func transitionObserver(reg *telemetry.Registry, prefix string) disk.Observer {
	if reg == nil {
		return nil
	}
	spinUps := reg.Counter(prefix + ".disk.spinups")
	spinDowns := reg.Counter(prefix + ".disk.spindowns")
	standby := reg.Gauge(prefix + ".disks.standby")
	return func(now simtime.Time, from, to disk.PowerState) {
		switch to {
		case disk.SpinningUp:
			spinUps.Inc()
		case disk.SpinningDown:
			spinDowns.Inc()
		case disk.Standby:
			standby.Add(1)
		}
		if from == disk.Standby {
			standby.Add(-1)
		}
	}
}
