package fs

import (
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"eevfs/internal/adaptive"
	"eevfs/internal/metadata"
	"eevfs/internal/prefetch"
	"eevfs/internal/proto"
	"eevfs/internal/telemetry"
	"eevfs/internal/trace"
)

// HealthConfig tunes node failure detection and recovery.
type HealthConfig struct {
	// FailThreshold marks a node unhealthy after this many consecutive
	// transport failures (default 3).
	FailThreshold int
	// ProbeInterval is the background health-check period: every tick the
	// server pings each node over a dedicated probe connection, so
	// partitions are detected without client traffic and dead nodes are
	// readmitted when they return. Default 1s; negative disables probing.
	ProbeInterval time.Duration
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	return c
}

// ServerConfig configures the storage-server daemon.
type ServerConfig struct {
	// Addr is the TCP listen address.
	Addr string
	// NodeAddrs lists the storage-node daemons, in the order the
	// popularity round-robin should use.
	NodeAddrs []string
	// StateFile, when set, persists the server's metadata (name -> node
	// assignments) as JSON so a restarted server keeps its namespace.
	StateFile string
	// Logger receives operational messages (nil = stderr default).
	Logger *log.Logger
	// Dialer opens the server -> node connections (nil = plain TCP).
	// Chaos tests inject a faultnet.Network here.
	Dialer proto.Dialer
	// Transport bounds and retries every server -> node round trip.
	Transport proto.TransportConfig
	// Health tunes node failure detection and recovery probing.
	Health HealthConfig
	// WriteTimeout bounds writing one response frame to a client, so a
	// stalled client cannot pin a serving goroutine (default 30s).
	WriteTimeout time.Duration
	// AcceptLoops is how many goroutines accept on the listener in
	// parallel (default 4). Under connection-storm fan-in a single loop's
	// post-accept bookkeeping gates the accept rate.
	AcceptLoops int
	// ConnWorkers caps concurrent in-flight requests per client
	// connection (default 128); ConnStreams caps open streams per
	// connection (default 64).
	ConnWorkers int
	ConnStreams int
	// Peers lists every metadata server of a replicated group (client
	// addresses, including this server's own), index-aligned across the
	// group. Empty means standalone: no replication, exactly the classic
	// single-server behavior.
	Peers []string
	// Self is this server's index in Peers. Index 0 boots as primary on
	// a cold start; any server follows an already-running primary it
	// discovers at startup.
	Self int
	// Listener, when set, is used instead of listening on Addr. Tests
	// pre-bind ephemeral ports with it so a replicated group can know
	// every member's address before any member starts.
	Listener net.Listener
	// MirrorPrefetch copies each prefetched file to a second node's
	// buffer disk and records the replica, so reads survive the owning
	// node's death (pre-work for full data replication).
	MirrorPrefetch bool
	// Policy selects the prefetch-management policy. "static" (or
	// empty, the default) prefetches only when a client commands it;
	// "adaptive" additionally watches the live access stream with a
	// churn detector and re-prefetches on its own — ranked over the
	// recent window, not whole history — whenever the observed hot set
	// diverges from the buffered one.
	Policy string
	// AdaptiveParams tunes the adaptive policy's churn detector and
	// windowed selection (nil = adaptive.Defaults()). Only consulted
	// when Policy is "adaptive".
	AdaptiveParams *adaptive.Params
	// AdaptiveK caps how many files one adaptive re-prefetch selects
	// (default 32). A client-commanded prefetch's K takes over as the
	// cap afterwards.
	AdaptiveK int
	// ReplChaosSilentAfter is a test-only fault injection: a primary
	// stops replicating (but keeps acking clients) once its op log
	// passes this seq. It exists so the failover test battery can prove
	// the convergence oracle and shrinker catch real divergence. Zero
	// disables it.
	ReplChaosSilentAfter int
	// Metrics, when set, receives the server's telemetry: per-op latency
	// histograms and error counters (server.op.*), node-health
	// transitions (server.health.*), placement decisions
	// (server.placement.*), and — shared with the node endpoints — the
	// proto.rt.* transport metrics. Nil disables instrumentation.
	Metrics *telemetry.Registry
	// Tracer, when set, records a span per handled request (joined to the
	// client's trace when the frame carried a context) plus child spans
	// for node fan-out and replication appends. Nil disables tracing.
	Tracer *telemetry.Tracer
}

// nodeHandle is the server's persistent connection to one storage node
// (step 1 of the process flow: "the server ... establishes a TCP/IP
// connection to each storage node") plus its health state. The probe
// endpoint is separate so background health checks never queue behind —
// or get stuck ahead of — real traffic on the main connection.
type nodeHandle struct {
	addr  string
	ep    *proto.Endpoint
	probe *proto.Endpoint

	mu        sync.Mutex
	fails     int // consecutive transport failures
	unhealthy bool
}

// healthy reports whether the node is currently in service.
func (h *nodeHandle) healthy() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.unhealthy
}

// note feeds one round-trip outcome into the health state, returning +1
// when the node just recovered, -1 when it was just marked unhealthy,
// and 0 on no transition. Remote application errors count as proof of
// life: the node answered.
func (h *nodeHandle) note(err error, failThreshold int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err == nil || isRemoteErr(err) {
		h.fails = 0
		if h.unhealthy {
			h.unhealthy = false
			return +1
		}
		return 0
	}
	h.fails++
	if !h.unhealthy && h.fails >= failThreshold {
		h.unhealthy = true
		return -1
	}
	return 0
}

// Server is a running storage-server daemon.
//
// Concurrency model: there is no global server mutex. File metadata
// lives in a striped map (metadata.Sharded), the popularity journal is a
// lock-free append-only log (trace.AtomicLog), and the id/placement
// cursors are atomics — so independent client operations on different
// files never contend on a shared lock. The only mutexes left guard the
// connection set (accept/close lifecycle), each node's health word, and
// state-file snapshotting.
type Server struct {
	cfg    ServerConfig
	ln     net.Listener
	meta   *metadata.Sharded
	nodes  []*nodeHandle
	clock  *Clock
	logger *log.Logger

	// Pre-resolved telemetry handles (all no-ops with a nil registry).
	met               opMetrics
	healthTransitions *telemetry.Counter
	healthyNodes      *telemetry.Gauge
	placements        []*telemetry.Counter
	accessCtr         *telemetry.Counter

	// Adaptive policy state (nil churn = static policy). churnMu guards
	// the detector ring and the buffered-set snapshot; the actual
	// re-prefetch runs in a single-flight background goroutine so the
	// read path never waits on node RPCs.
	churnMu      sync.Mutex
	churn        *adaptive.Churn
	buffered     map[int]bool
	adParams     adaptive.Params
	adBusy       atomic.Bool
	lastK        atomic.Int64
	reprefetches *telemetry.Counter
	// churnCh decouples churn detection from the lookup hot path: the
	// read path does one non-blocking send and a single churnLoop
	// goroutine owns the detector, so concurrent lookups never serialize
	// on churnMu. Overflow drops the observation (counted) — under the
	// load that fills 4096 slots the detector has evidence to spare.
	churnCh      chan int
	churnDropped *telemetry.Counter

	accesses trace.AtomicLog
	sizes    sizeTable    // per file id (dense); slots survive deletes
	hints    hintTable    // per file id incremental {count, first, last}
	nextID   atomic.Int64 // next file id
	nextNode atomic.Int64 // placement round-robin cursor

	connMu  sync.Mutex
	closing bool
	conns   map[net.Conn]struct{}
	saveMu  sync.Mutex // serializes state-file snapshots
	wg      sync.WaitGroup
	probeWg sync.WaitGroup
	repWg   sync.WaitGroup
	stop    chan struct{}

	// Replication plane (see replication.go). peers is index-aligned
	// with cfg.Peers; peers[cfg.Self] is nil. repMu orders mutations
	// into the op log and their fan-out to followers; repSeq is the
	// canonical last-applied seq under repMu, mirrored in repSeqA for
	// lock-free status answers.
	peers      []*peerHandle
	primary    atomic.Bool
	primaryIdx atomic.Int64
	epoch      atomic.Uint64
	forceElect atomic.Bool
	repMu      sync.Mutex
	repSeq     uint64
	repSeqA    atomic.Uint64
	accessMark int64 // access-journal seq horizon already replicated
	watchFails int   // consecutive failed primary probes (repLoop-owned)

	replLag    *telemetry.Gauge
	roleG      *telemetry.Gauge
	failoversC *telemetry.Counter
}

// StartServer binds the listener and begins serving. Node daemons must be
// reachable by the time a request needs them (connections are lazy).
func StartServer(cfg ServerConfig) (*Server, error) {
	if len(cfg.NodeAddrs) == 0 {
		return nil, errors.New("fs: server needs at least one storage node")
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(os.Stderr, "eevfs-server ", log.LstdFlags)
	}
	cfg.Health = cfg.Health.withDefaults()
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	s := &Server{
		cfg:    cfg,
		meta:   metadata.NewSharded(),
		clock:  NewClock(1),
		logger: cfg.Logger,
		conns:  make(map[net.Conn]struct{}),
		stop:   make(chan struct{}),
	}
	switch cfg.Policy {
	case "", "static":
	case "adaptive":
		p := adaptive.Defaults()
		if cfg.AdaptiveParams != nil {
			p = *cfg.AdaptiveParams
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		s.adParams = p
		s.churn = adaptive.NewChurn(p)
		s.buffered = make(map[int]bool)
		s.churnCh = make(chan int, 4096)
		k := cfg.AdaptiveK
		if k <= 0 {
			k = 32
		}
		s.lastK.Store(int64(k))
	default:
		return nil, fmt.Errorf("fs: unknown policy %q (want static or adaptive)", cfg.Policy)
	}
	s.met = newOpMetrics(cfg.Metrics, "server", []proto.Type{
		proto.TCreateReq, proto.TLookupReq, proto.TListReq, proto.TDeleteReq,
		proto.TPrefetchReq, proto.TStatsReq,
	})
	s.healthTransitions = cfg.Metrics.Counter("server.health.transitions")
	s.healthyNodes = cfg.Metrics.Gauge("server.nodes.healthy")
	s.healthyNodes.Set(float64(len(cfg.NodeAddrs)))
	s.accessCtr = cfg.Metrics.Counter("server.accesses")
	s.reprefetches = cfg.Metrics.Counter("server.adaptive.reprefetches")
	s.churnDropped = cfg.Metrics.Counter("server.adaptive.churn.dropped")
	s.replLag = cfg.Metrics.Gauge("server.repl.lag")
	s.roleG = cfg.Metrics.Gauge("server.repl.primary")
	s.failoversC = cfg.Metrics.Counter("server.repl.failovers")
	for i, addr := range cfg.NodeAddrs {
		tc := cfg.Transport
		tc.Seed = cfg.Transport.Seed + int64(i) + 1 // decorrelate per-node jitter
		tc.Metrics = cfg.Metrics                    // node round trips feed proto.rt.*
		probeCfg := tc
		probeCfg.Retries = -1  // probes are frequent; one attempt each
		probeCfg.Metrics = nil // keep the per-second probe chatter out of the RPC metrics
		s.nodes = append(s.nodes, &nodeHandle{
			addr:  addr,
			ep:    proto.NewEndpoint(addr, cfg.Dialer, tc),
			probe: proto.NewEndpoint(addr, cfg.Dialer, probeCfg),
		})
		s.placements = append(s.placements,
			cfg.Metrics.Counter(fmt.Sprintf("server.placement.node%d", i)))
	}
	if err := s.loadState(); err != nil {
		return nil, err
	}
	if err := s.initReplication(); err != nil {
		return nil, err
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, err
		}
	}
	s.ln = ln
	loops := cfg.AcceptLoops
	if loops <= 0 {
		loops = 4
	}
	for i := 0; i < loops; i++ {
		s.wg.Add(1)
		go s.acceptLoop()
	}
	if s.churn != nil {
		s.wg.Add(1)
		go s.churnLoop()
	}
	if cfg.Health.ProbeInterval > 0 {
		s.probeWg.Add(1)
		go s.probeLoop()
	}
	if len(s.peers) > 0 {
		s.repWg.Add(1)
		go s.repLoop()
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the daemon and drains connections.
func (s *Server) Close() error {
	s.connMu.Lock()
	if s.closing {
		s.connMu.Unlock()
		return nil
	}
	s.closing = true
	close(s.stop)
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	s.probeWg.Wait()
	s.repWg.Wait()
	for _, h := range s.nodes {
		h.ep.Close()
		h.probe.Close()
	}
	for _, p := range s.peers {
		if p != nil {
			p.ep.Close()
			p.probe.Close()
		}
	}
	return err
}

// roundTrip runs one request on a node's main connection and feeds the
// outcome into its health state.
func (s *Server) roundTrip(h *nodeHandle, t proto.Type, payload []byte) (proto.Type, []byte, error) {
	return s.roundTripCtx(h, t, payload, nil)
}

// roundTripCtx is roundTrip under a parent span: the fan-out RPC gets a
// child span of its own and carries that child's context to the node,
// so the node's server-side span parents correctly under this hop.
func (s *Server) roundTripCtx(h *nodeHandle, t proto.Type, payload []byte, parent *telemetry.Span) (proto.Type, []byte, error) {
	sp := s.cfg.Tracer.StartChild(parent.Context(), "server", "node."+opName(t))
	sp.Annotate("peer", h.addr)
	rt, rp, err := h.ep.CallCtx(t, payload, sp.Context())
	sp.End(err)
	s.noteNode(h, err)
	return rt, rp, err
}

func (s *Server) noteNode(h *nodeHandle, err error) {
	switch h.note(err, s.cfg.Health.FailThreshold) {
	case -1:
		s.logger.Printf("node %s marked unhealthy: %v", h.addr, err)
		s.healthTransitions.Inc()
		s.healthyNodes.Add(-1)
	case +1:
		s.logger.Printf("node %s recovered", h.addr)
		s.healthTransitions.Inc()
		s.healthyNodes.Add(1)
	}
}

// probeLoop pings every node each interval on its dedicated probe
// connection: detection for partitions no client is exercising, and the
// recovery path for nodes marked unhealthy.
func (s *Server) probeLoop() {
	defer s.probeWg.Done()
	ticker := time.NewTicker(s.cfg.Health.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		// Only the primary owns the node-health relationship; a follower
		// inherits a fresh view through the probe round its promotion
		// runs (node re-registration on primary change).
		if !s.isPrimary() {
			continue
		}
		s.probeNodesOnce()
	}
}

// probeNodesOnce probes all nodes concurrently: detection latency stays
// one round trip even on wide clusters. Also the "re-register every
// node" step a freshly promoted primary runs.
func (s *Server) probeNodesOnce() {
	var wg sync.WaitGroup
	for _, h := range s.nodes {
		wg.Add(1)
		go func(h *nodeHandle) {
			defer wg.Done()
			_, _, err := h.probe.Call(proto.TNodeStatsReq, nil)
			s.noteNode(h, err)
		}(h)
	}
	wg.Wait()
}

// Healthy reports each node's current health (index-aligned with the
// configured NodeAddrs).
func (s *Server) Healthy() []bool {
	out := make([]bool, len(s.nodes))
	for i, h := range s.nodes {
		out[i] = h.healthy()
	}
	return out
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	acceptConns(s.ln, s.logger.Printf, func(conn net.Conn) {
		s.connMu.Lock()
		if s.closing {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	})
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	// The metadata server has no data plane: nil stream handler, so
	// stream opens are rejected with a typed error.
	serveFrames(conn, s.cfg.WriteTimeout, s.dispatch, nil,
		connLimits{workers: s.cfg.ConnWorkers, streams: s.cfg.ConnStreams})
}

func (s *Server) dispatch(t proto.Type, payload []byte, sc telemetry.SpanContext) (proto.Type, []byte, error) {
	start := time.Now()
	sp := s.cfg.Tracer.StartRemote(sc, "server", "server."+opName(t))
	rt, rp, err := s.dispatchInner(t, payload, sp)
	s.met.observe(t, time.Since(start), err)
	sp.End(err)
	return rt, rp, err
}

func (s *Server) dispatchInner(t proto.Type, payload []byte, sp *telemetry.Span) (proto.Type, []byte, error) {
	// Replication frames are server-to-server and valid in every role;
	// status must stay answerable even mid-election.
	switch t {
	case proto.TRepStatusReq:
		return proto.TRepStatusResp, s.handleRepStatus().Encode(), nil
	case proto.TRepAppendReq:
		req, err := proto.DecodeRepAppendReq(payload)
		if err != nil {
			return 0, nil, err
		}
		resp, err := s.handleRepAppend(req)
		if err != nil {
			return 0, nil, err
		}
		return proto.TRepAppendResp, resp.Encode(), nil
	case proto.TRepSnapshotReq:
		snap, err := proto.DecodeRepSnapshot(payload)
		if err != nil {
			return 0, nil, err
		}
		if err := s.handleRepSnapshot(snap); err != nil {
			return 0, nil, err
		}
		return proto.TRepSnapshotResp, nil, nil
	}

	// Client operations only run on the primary: a follower serving even
	// reads could hand out stale placement during a partition, so it
	// redirects everything.
	if len(s.peers) > 0 && !s.isPrimary() {
		return 0, nil, s.notPrimaryErr()
	}

	switch t {
	case proto.TCreateReq:
		req, err := proto.DecodeCreateReq(payload)
		if err != nil {
			return 0, nil, err
		}
		resp, err := s.handleCreate(req, sp)
		if err != nil {
			return 0, nil, err
		}
		return proto.TCreateResp, resp.Encode(), nil

	case proto.TLookupReq:
		req, err := proto.DecodeLookupReq(payload)
		if err != nil {
			return 0, nil, err
		}
		resp, err := s.handleLookup(req)
		if err != nil {
			return 0, nil, err
		}
		return proto.TLookupResp, resp.Encode(), nil

	case proto.TLookupWriteReq:
		req, err := proto.DecodeLookupReq(payload)
		if err != nil {
			return 0, nil, err
		}
		resp, err := s.handleLookupWrite(req, sp)
		if err != nil {
			return 0, nil, err
		}
		return proto.TLookupResp, resp.Encode(), nil

	case proto.TListReq:
		return proto.TListResp, proto.ListResp{Names: s.meta.Names()}.Encode(), nil

	case proto.TDeleteReq:
		req, err := proto.DecodeDeleteReq(payload)
		if err != nil {
			return 0, nil, err
		}
		if err := s.handleDelete(req, sp); err != nil {
			return 0, nil, err
		}
		return proto.TDeleteResp, nil, nil

	case proto.TPrefetchReq:
		req, err := proto.DecodePrefetchReq(payload)
		if err != nil {
			return 0, nil, err
		}
		count, err := s.handlePrefetch(int(req.K), sp)
		if err != nil {
			return 0, nil, err
		}
		return proto.TPrefetchResp, proto.PrefetchResp{Prefetched: count}.Encode(), nil

	case proto.TStatsReq:
		resp, err := s.handleStats(sp)
		if err != nil {
			return 0, nil, err
		}
		return proto.TStatsResp, resp.Encode(), nil

	default:
		return 0, nil, fmt.Errorf("fs: server got unexpected message type %d", t)
	}
}

// pickNode chooses the next healthy node round-robin (creation order
// embodies popularity order, Section IV-A; unhealthy nodes are skipped so
// new files land only where they can be written — degraded-mode
// placement). Lock-free: the cursor is an atomic, so concurrent creates
// each claim a distinct slot.
func (s *Server) pickNode() (int, error) {
	for i := 0; i < len(s.nodes); i++ {
		idx := int((s.nextNode.Add(1) - 1) % int64(len(s.nodes)))
		if s.nodes[idx].healthy() {
			return idx, nil
		}
	}
	return 0, fmt.Errorf("fs: %w: all %d storage nodes unhealthy",
		ErrNodeUnavailable, len(s.nodes))
}

// handleCreate assigns the next healthy node, registers metadata, and
// tells the node. The name is claimed atomically via PutIfAbsent before
// the node RPC — of N racing creates of one name, exactly one wins and
// the rest fail with "already exists"; a failed node RPC rolls the claim
// back.
func (s *Server) handleCreate(req proto.CreateReq, sp *telemetry.Span) (proto.CreateResp, error) {
	if req.Name == "" {
		return proto.CreateResp{}, errors.New("fs: empty file name")
	}
	if req.Size <= 0 {
		return proto.CreateResp{}, fmt.Errorf("fs: create %q with size %d", req.Name, req.Size)
	}

	nodeIdx, err := s.pickNode()
	if err != nil {
		return proto.CreateResp{}, err
	}
	id := s.nextID.Add(1) - 1
	s.sizes.set(id, req.Size)

	claimed, err := s.meta.PutIfAbsent(metadata.FileInfo{
		Name: req.Name, ID: int(id), Size: req.Size, Node: nodeIdx,
	})
	if err != nil {
		return proto.CreateResp{}, err
	}
	if !claimed {
		return proto.CreateResp{}, fmt.Errorf("fs: file %q already exists", req.Name)
	}

	h := s.nodes[nodeIdx]
	s.placements[nodeIdx].Inc()
	if _, _, err := s.roundTripCtx(h, proto.TNodeCreateReq,
		proto.NodeCreateReq{FileID: id, Size: req.Size}.Encode(), sp); err != nil {
		s.meta.Delete(req.Name) // roll back the claim; the id slot is burned
		return proto.CreateResp{}, err
	}
	// Replicate before acking: once the client sees success, the create
	// survives a primary crash as long as one in-sync follower does.
	s.commit(proto.RepOp{
		Kind: proto.RepOpCreate, Name: req.Name, ID: id, Size: req.Size,
		Node: int64(nodeIdx), Cursor: s.nextNode.Load(),
	}, sp)
	return proto.CreateResp{FileID: id, NodeAddr: h.addr}, nil
}

// handleLookup resolves a name and journals the access (the append-only
// popularity log of Section IV). Lookups of files on unhealthy nodes
// fall back to a buffer-disk replica when mirroring has placed one on a
// healthy node; otherwise they fail fast with a typed unavailable error
// instead of handing the client an address that would hang it.
func (s *Server) handleLookup(req proto.LookupReq) (proto.LookupResp, error) {
	fi, ok := s.meta.LookupName(req.Name)
	if !ok {
		return proto.LookupResp{}, fmt.Errorf("fs: %w %q", ErrFileNotFound, req.Name)
	}
	h := s.nodes[fi.Node]
	if !h.healthy() {
		ridx, hasReplica := fi.ReplicaNode()
		if !hasReplica || ridx >= len(s.nodes) || !s.nodes[ridx].healthy() {
			return proto.LookupResp{}, fmt.Errorf("fs: %w: file %q is on node %s",
				ErrNodeUnavailable, req.Name, h.addr)
		}
		h = s.nodes[ridx] // degraded read from the mirror copy
	}
	s.journalAccess(fi)
	return proto.LookupResp{
		FileID:   int64(fi.ID),
		Size:     fi.Size,
		NodeAddr: h.addr,
	}, nil
}

// handleLookupWrite resolves a name for a client about to overwrite the
// file. It never routes to a replica (writes go to the owner only), and
// it invalidates any recorded mirror first — the write is about to make
// that copy stale, and a reader redirected there later must not see old
// bytes.
func (s *Server) handleLookupWrite(req proto.LookupReq, sp *telemetry.Span) (proto.LookupResp, error) {
	fi, ok := s.meta.LookupName(req.Name)
	if !ok {
		return proto.LookupResp{}, fmt.Errorf("fs: %w %q", ErrFileNotFound, req.Name)
	}
	h := s.nodes[fi.Node]
	if !h.healthy() {
		return proto.LookupResp{}, fmt.Errorf("fs: %w: file %q is on node %s",
			ErrNodeUnavailable, req.Name, h.addr)
	}
	if ridx, hasReplica := fi.ReplicaNode(); hasReplica {
		fi.Replica = 0
		if err := s.meta.Put(fi); err != nil {
			return proto.LookupResp{}, err
		}
		s.commit(proto.RepOp{Kind: proto.RepOpReplica, Name: fi.Name, Replica: 0}, sp)
		if ridx < len(s.nodes) {
			// Best-effort space reclaim on the mirror; the marker is
			// already gone, so a failure only leaves an orphaned copy.
			rh := s.nodes[ridx]
			go s.roundTrip(rh, proto.TNodeDeleteReq,
				proto.NodeDeleteReq{FileID: int64(fi.ID)}.Encode())
		}
	}
	s.journalAccess(fi)
	return proto.LookupResp{
		FileID:   int64(fi.ID),
		Size:     fi.Size,
		NodeAddr: h.addr,
	}, nil
}

// journalAccess appends one popularity record for fi and, under the
// adaptive policy, hands the access to the churn loop — the lookup hot
// path takes no lock and waits on no detector.
func (s *Server) journalAccess(fi metadata.FileInfo) {
	s.recordAccess(fi.ID, float64(s.clock.Now()), fi.Size)
	s.accessCtr.Inc()
	if s.churn == nil {
		return
	}
	select {
	case s.churnCh <- fi.ID:
	default:
		s.churnDropped.Inc()
	}
}

// recordAccess appends one popularity record and folds it into the
// incremental hint aggregate; every append into the access journal —
// live lookups, replicated epochs, snapshot installs — must go through
// here so the two views never diverge.
func (s *Server) recordAccess(fileID int, timeS float64, size int64) {
	s.accesses.Append(trace.Record{ // Seq is assigned atomically by the log
		TimeS:  timeS,
		Op:     trace.Read,
		FileID: fileID,
		Size:   size,
	})
	s.hints.note(int64(fileID), timeS)
}

// churnLoop is the single consumer of churnCh: it scores each observed
// access against the buffered set and kicks off a background
// re-prefetch when the detector fires.
func (s *Server) churnLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case id := <-s.churnCh:
			s.churnMu.Lock()
			fire := s.churn.Observe(id, s.buffered[id])
			s.churnMu.Unlock()
			if fire && s.primary.Load() && s.adBusy.CompareAndSwap(false, true) {
				s.wg.Add(1)
				go s.adaptiveRecompute()
			}
		}
	}
}

// adaptiveRecompute is the churn-triggered re-prefetch: rank the files
// seen in the detector's recent window (not whole-history counts — the
// point is to chase the hot set as it moves), command the nodes through
// the same fan-out a client-issued prefetch uses, and record the new
// buffered set. Single-flight via adBusy; failures are logged, not
// fatal, and do not reset the detector, so a transient node error gets
// retried on the next trigger.
func (s *Server) adaptiveRecompute() {
	defer s.wg.Done()
	defer s.adBusy.Store(false)
	select {
	case <-s.stop:
		return
	default:
	}
	s.churnMu.Lock()
	counts := s.churn.Counts()
	s.churnMu.Unlock()
	ids := prefetch.SelectWindowed(counts, s.adParams.MinFetchHits, int(s.lastK.Load()))
	if len(ids) == 0 {
		return
	}
	// Counted at command time: a concurrent read may be served from a
	// freshly staged buffer before the whole fan-out returns.
	s.reprefetches.Inc()
	if _, err := s.commandPrefetch(ids, nil); err != nil {
		s.logger.Printf("adaptive reprefetch: %v", err)
		return
	}
	s.noteBuffered(ids)
}

// noteBuffered replaces the buffered-set snapshot the churn detector
// scores hits against and starts its cooldown.
func (s *Server) noteBuffered(ids []int) {
	if s.churn == nil {
		return
	}
	set := make(map[int]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	s.churnMu.Lock()
	s.buffered = set
	s.churn.Reset()
	s.churn.Rescore(func(fid int) bool { return set[fid] })
	s.churnMu.Unlock()
}

func (s *Server) handleDelete(req proto.DeleteReq, sp *telemetry.Span) error {
	fi, ok := s.meta.LookupName(req.Name)
	if !ok {
		return fmt.Errorf("fs: %w %q", ErrFileNotFound, req.Name)
	}
	h := s.nodes[fi.Node]
	if !h.healthy() {
		return fmt.Errorf("fs: %w: file %q is on node %s",
			ErrNodeUnavailable, req.Name, h.addr)
	}
	if _, _, err := s.roundTripCtx(h, proto.TNodeDeleteReq,
		proto.NodeDeleteReq{FileID: int64(fi.ID)}.Encode(), sp); err != nil {
		return err
	}
	if ridx, hasReplica := fi.ReplicaNode(); hasReplica && ridx < len(s.nodes) {
		// Drop the mirror copy too; best effort, the namespace entry is
		// going away regardless.
		go s.roundTrip(s.nodes[ridx], proto.TNodeDeleteReq,
			proto.NodeDeleteReq{FileID: int64(fi.ID)}.Encode())
	}
	s.meta.Delete(req.Name)
	s.commit(proto.RepOp{Kind: proto.RepOpDelete, Name: req.Name}, sp)
	return nil
}

// handlePrefetch ranks files by logged popularity, picks the global top
// K, groups the picks by owning node, and commands each node (steps 2-3
// of the process flow). Unhealthy nodes are skipped — a degraded cluster
// still prefetches everywhere it can.
func (s *Server) handlePrefetch(k int, sp *telemetry.Span) (int64, error) {
	if k < 0 {
		return 0, fmt.Errorf("fs: negative prefetch count %d", k)
	}
	// Ship the popularity observed since the last epoch to the followers
	// first: if this primary dies right after prefetching, its successor
	// ranks files from the same evidence.
	s.flushAccessEpoch()
	// Consistent-enough snapshot without any lock: load the id horizon
	// first, then counts and sizes. A file created after the horizon load
	// simply misses this prefetch round; a file mid-create reads count 0
	// and is never selected (Select skips zero-count files).
	numFiles := s.nextID.Load()
	counts := s.accesses.Counts(int(numFiles))
	sizes := s.sizes.snapshot(numFiles)

	ids, err := prefetch.Select(counts, sizes, k, 0)
	if err != nil {
		return 0, err
	}
	if k > 0 {
		s.lastK.Store(int64(k)) // the operator's depth becomes the adaptive cap
	}
	total, err := s.commandPrefetch(ids, sp)
	if err == nil {
		s.noteBuffered(ids)
	}
	return total, err
}

// commandPrefetch groups the selected ids by owning node, commands each
// node's staging concurrently, forwards access-pattern hints, and
// mirrors when configured — the fan-out shared by client-issued and
// adaptive re-prefetches.
func (s *Server) commandPrefetch(ids []int, sp *telemetry.Span) (int64, error) {
	perNode := make(map[int][]int64)
	for _, id := range ids {
		fi, ok := s.meta.LookupID(id)
		if !ok {
			continue // deleted since it was accessed
		}
		perNode[fi.Node] = append(perNode[fi.Node], int64(id))
	}

	// Fan the per-node prefetch commands out concurrently: each node's
	// RPC rides its own multiplexed endpoint, so a slow spindle on one
	// node no longer serializes the whole round. Results are folded in
	// node order so the first error reported is deterministic.
	type nodeResult struct {
		count int64
		err   error
	}
	results := make(map[int]nodeResult, len(perNode))
	var (
		resMu sync.Mutex
		wg    sync.WaitGroup
	)
	for nodeIdx, fileIDs := range perNode {
		h := s.nodes[nodeIdx]
		if !h.healthy() {
			s.logger.Printf("prefetch: skipping unhealthy node %s (%d files)",
				h.addr, len(fileIDs))
			continue
		}
		wg.Add(1)
		go func(nodeIdx int, h *nodeHandle, fileIDs []int64) {
			defer wg.Done()
			var res nodeResult
			_, payload, err := s.roundTripCtx(h, proto.TNodePrefetchReq,
				proto.NodePrefetchReq{FileIDs: fileIDs}.Encode(), sp)
			if err != nil {
				res.err = fmt.Errorf("fs: prefetch on node %d: %w", nodeIdx, err)
			} else if resp, derr := proto.DecodePrefetchResp(payload); derr != nil {
				res.err = derr
			} else {
				res.count = resp.Prefetched
			}
			resMu.Lock()
			results[nodeIdx] = res
			resMu.Unlock()
		}(nodeIdx, h, fileIDs)
	}
	wg.Wait()

	var total int64
	var firstErr error
	for nodeIdx := 0; nodeIdx < len(s.nodes); nodeIdx++ {
		res, ok := results[nodeIdx]
		if !ok {
			continue
		}
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		total += res.count
	}
	if firstErr != nil {
		return total, firstErr
	}

	// Step 4 of the process flow: forward the observed access patterns as
	// hints so the nodes can predict idle windows, again one concurrent
	// RPC per node. Failures are logged, not fatal — hints are advisory
	// ("EEVFS can operate without the application hints", Section IV-C).
	for nodeIdx, hints := range s.hintsPerNode() {
		if len(hints) == 0 || !s.nodes[nodeIdx].healthy() {
			continue
		}
		wg.Add(1)
		go func(nodeIdx int, hints []proto.FileHint) {
			defer wg.Done()
			if _, _, err := s.roundTripCtx(s.nodes[nodeIdx], proto.TNodeHintsReq,
				proto.NodeHintsReq{Hints: hints}.Encode(), sp); err != nil {
				s.logger.Printf("forwarding hints to node %d: %v", nodeIdx, err)
			}
		}(nodeIdx, hints)
	}
	wg.Wait()
	if s.cfg.MirrorPrefetch {
		s.mirrorFiles(ids, sp)
	}
	return total, nil
}

// mirrorFiles copies each prefetched file to a second healthy node's
// buffer disk and records the replica, so the read path can fall back
// there while the owner is down. Failures are logged, never fatal —
// mirroring is an availability bonus, not a correctness requirement.
// Known race: a write landing between the copy and the marker commit
// leaves the marker pointing at pre-write bytes until the next write
// lookup invalidates it.
func (s *Server) mirrorFiles(ids []int, sp *telemetry.Span) {
	if len(s.nodes) < 2 {
		return
	}
	for _, id := range ids {
		fi, ok := s.meta.LookupID(id)
		if !ok {
			continue // deleted since selection
		}
		if ridx, has := fi.ReplicaNode(); has && ridx < len(s.nodes) && s.nodes[ridx].healthy() {
			continue // already mirrored somewhere usable
		}
		owner := s.nodes[fi.Node]
		if !owner.healthy() {
			continue
		}
		mirror := -1
		for j := 1; j < len(s.nodes); j++ {
			cand := (fi.Node + j) % len(s.nodes)
			if cand != fi.Node && s.nodes[cand].healthy() {
				mirror = cand
				break
			}
		}
		if mirror < 0 {
			continue
		}
		if err := s.copyToMirror(fi, mirror, sp); err != nil {
			s.logger.Printf("mirror %s to node %d: %v", fi.Name, mirror, err)
			continue
		}
		// Re-read before marking: the file may have been deleted or
		// recreated under the same name while the bytes moved.
		cur, ok := s.meta.LookupName(fi.Name)
		if !ok || cur.ID != fi.ID {
			continue
		}
		cur.Replica = mirror + 1
		if err := s.meta.Put(cur); err != nil {
			continue
		}
		s.commit(proto.RepOp{Kind: proto.RepOpReplica, Name: cur.Name, Replica: int64(mirror + 1)}, sp)
	}
}

// copyToMirror moves one file's bytes owner -> server -> mirror, then
// has the mirror stage them on its buffer disk (the paper's prefetch
// mechanics reused for the replica).
func (s *Server) copyToMirror(fi metadata.FileInfo, mirror int, sp *telemetry.Span) error {
	_, payload, err := s.roundTripCtx(s.nodes[fi.Node], proto.TNodeReadReq,
		proto.NodeReadReq{FileID: int64(fi.ID)}.Encode(), sp)
	if err != nil {
		return err
	}
	data, err := proto.DecodeNodeReadResp(payload)
	if err != nil {
		return err
	}
	mh := s.nodes[mirror]
	if _, _, err := s.roundTripCtx(mh, proto.TNodeCreateReq,
		proto.NodeCreateReq{FileID: int64(fi.ID), Size: int64(len(data.Data))}.Encode(), sp); err != nil {
		return err
	}
	_, wp, err := s.roundTripCtx(mh, proto.TNodeWriteReq,
		proto.NodeWriteReq{FileID: int64(fi.ID), Data: data.Data}.Encode(), sp)
	if err != nil {
		return err
	}
	wresp, err := proto.DecodeNodeWriteResp(wp)
	if err != nil {
		return err
	}
	if !wresp.Buffered {
		// The write landed on a data disk; stage the copy onto the
		// mirror's buffer disk like any prefetch.
		if _, _, err := s.roundTripCtx(mh, proto.TNodePrefetchReq,
			proto.NodePrefetchReq{FileIDs: []int64{int64(fi.ID)}}.Encode(), sp); err != nil {
			return err
		}
	}
	return nil
}

// hintsPerNode derives each file's mean request inter-arrival from the
// incremental hint aggregate and groups the hints by owning node —
// O(number of files), not O(length of the access history) as the
// original whole-journal walk was. Files seen fewer than twice yield no
// estimate.
func (s *Server) hintsPerNode() map[int][]proto.FileHint {
	out := make(map[int][]proto.FileHint)
	s.hints.each(s.nextID.Load(), func(id, count int64, first, last float64) {
		if count < 2 || last <= first {
			return
		}
		fi, ok := s.meta.LookupID(int(id))
		if !ok {
			return
		}
		out[fi.Node] = append(out[fi.Node], proto.FileHint{
			FileID:          id,
			MeanIntervalSec: (last - first) / float64(count-1),
		})
	})
	return out
}

// handleStats gathers per-disk stats from every healthy node — one
// concurrent RPC per node — prefixing disk names with the node index.
// Results are folded in node order, so the response layout is identical
// to the old sequential sweep. Unhealthy nodes are skipped so a
// degraded cluster still reports what it can.
func (s *Server) handleStats(sp *telemetry.Span) (proto.StatsResp, error) {
	perNode := make([]*proto.StatsResp, len(s.nodes))
	errs := make([]error, len(s.nodes))
	var wg sync.WaitGroup
	for i, h := range s.nodes {
		if !h.healthy() {
			s.logger.Printf("stats: skipping unhealthy node %s", h.addr)
			continue
		}
		wg.Add(1)
		go func(i int, h *nodeHandle) {
			defer wg.Done()
			_, payload, err := s.roundTripCtx(h, proto.TNodeStatsReq, nil, sp)
			if err != nil {
				errs[i] = fmt.Errorf("fs: stats from node %d: %w", i, err)
				return
			}
			resp, err := proto.DecodeStatsResp(payload)
			if err != nil {
				errs[i] = err
				return
			}
			perNode[i] = &resp
		}(i, h)
	}
	wg.Wait()

	var out proto.StatsResp
	for i := range s.nodes {
		if errs[i] != nil {
			return proto.StatsResp{}, errs[i]
		}
		resp := perNode[i]
		if resp == nil {
			continue
		}
		for _, ds := range resp.Disks {
			ds.Name = fmt.Sprintf("node%d/%s", i, ds.Name)
			out.Disks = append(out.Disks, ds)
		}
		for _, c := range resp.Counters {
			c.Name = fmt.Sprintf("node%d/%s", i, c.Name)
			out.Counters = append(out.Counters, c)
		}
	}
	// The server's own telemetry counters ride along un-prefixed (their
	// names already carry the server./proto. namespaces).
	if reg := s.cfg.Metrics; reg != nil {
		for _, name := range reg.CounterNames() {
			out.Counters = append(out.Counters,
				proto.CounterStat{Name: name, Value: reg.Counter(name).Value()})
		}
	}
	return out, nil
}

// AccessCount reports the number of journaled accesses (for tests).
func (s *Server) AccessCount() int {
	return s.accesses.Len()
}

// Files returns a snapshot of the server's metadata records, in name
// order. The simulation-testing harness compares this view against each
// node's local metadata after chaos runs; a file the server claims must
// exist on the node it names, with the same size.
func (s *Server) Files() []metadata.FileInfo {
	names := s.meta.Names()
	out := make([]metadata.FileInfo, 0, len(names))
	for _, name := range names {
		if fi, ok := s.meta.LookupName(name); ok {
			out = append(out, fi)
		}
	}
	return out
}
