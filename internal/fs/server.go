package fs

import (
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"sync"

	"eevfs/internal/metadata"
	"eevfs/internal/prefetch"
	"eevfs/internal/proto"
	"eevfs/internal/trace"
)

// ServerConfig configures the storage-server daemon.
type ServerConfig struct {
	// Addr is the TCP listen address.
	Addr string
	// NodeAddrs lists the storage-node daemons, in the order the
	// popularity round-robin should use.
	NodeAddrs []string
	// StateFile, when set, persists the server's metadata (name -> node
	// assignments) as JSON so a restarted server keeps its namespace.
	StateFile string
	// Logger receives operational messages (nil = stderr default).
	Logger *log.Logger
}

// nodeHandle is the server's persistent connection to one storage node
// (step 1 of the process flow: "the server ... establishes a TCP/IP
// connection to each storage node").
type nodeHandle struct {
	addr string
	mu   sync.Mutex // one in-flight round trip per node connection
	conn net.Conn
}

// roundTrip sends a request to the node, redialing once on a dead
// connection.
func (h *nodeHandle) roundTrip(t proto.Type, payload []byte) (proto.Type, []byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if h.conn == nil {
			c, err := net.Dial("tcp", h.addr)
			if err != nil {
				return 0, nil, fmt.Errorf("fs: dialing node %s: %w", h.addr, err)
			}
			h.conn = c
		}
		rt, rp, err := proto.RoundTrip(h.conn, t, payload)
		if err == nil {
			return rt, rp, nil
		}
		// Remote application errors are final; transport errors get one
		// redial.
		if isRemoteErr(err) || attempt > 0 {
			return 0, nil, err
		}
		h.conn.Close()
		h.conn = nil
	}
}

func isRemoteErr(err error) bool {
	return err != nil && len(err.Error()) > 7 && err.Error()[:7] == "remote:"
}

// Server is a running storage-server daemon.
type Server struct {
	cfg    ServerConfig
	ln     net.Listener
	meta   *metadata.ServerMap
	nodes  []*nodeHandle
	clock  *Clock
	logger *log.Logger

	mu       sync.Mutex
	accesses trace.AccessLog
	nextID   int64
	nextNode int
	sizes    []int64 // per file id (dense)
	closing  bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// StartServer binds the listener and begins serving. Node daemons must be
// reachable by the time a request needs them (connections are lazy).
func StartServer(cfg ServerConfig) (*Server, error) {
	if len(cfg.NodeAddrs) == 0 {
		return nil, errors.New("fs: server needs at least one storage node")
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(os.Stderr, "eevfs-server ", log.LstdFlags)
	}
	s := &Server{
		cfg:    cfg,
		meta:   metadata.NewServerMap(),
		clock:  NewClock(1),
		logger: cfg.Logger,
		conns:  make(map[net.Conn]struct{}),
	}
	for _, addr := range cfg.NodeAddrs {
		s.nodes = append(s.nodes, &nodeHandle{addr: addr})
	}
	if err := s.loadState(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the daemon and drains connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	for _, h := range s.nodes {
		h.mu.Lock()
		if h.conn != nil {
			h.conn.Close()
		}
		h.mu.Unlock()
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		t, payload, err := proto.ReadFrame(conn)
		if err != nil {
			return
		}
		if err := s.dispatch(conn, t, payload); err != nil {
			if werr := proto.WriteFrame(conn, proto.TError,
				proto.ErrorMsg{Msg: err.Error()}.Encode()); werr != nil {
				return
			}
		}
	}
}

func (s *Server) dispatch(conn net.Conn, t proto.Type, payload []byte) error {
	switch t {
	case proto.TCreateReq:
		req, err := proto.DecodeCreateReq(payload)
		if err != nil {
			return err
		}
		resp, err := s.handleCreate(req)
		if err != nil {
			return err
		}
		return proto.WriteFrame(conn, proto.TCreateResp, resp.Encode())

	case proto.TLookupReq:
		req, err := proto.DecodeLookupReq(payload)
		if err != nil {
			return err
		}
		resp, err := s.handleLookup(req)
		if err != nil {
			return err
		}
		return proto.WriteFrame(conn, proto.TLookupResp, resp.Encode())

	case proto.TListReq:
		return proto.WriteFrame(conn, proto.TListResp,
			proto.ListResp{Names: s.meta.Names()}.Encode())

	case proto.TDeleteReq:
		req, err := proto.DecodeDeleteReq(payload)
		if err != nil {
			return err
		}
		if err := s.handleDelete(req); err != nil {
			return err
		}
		return proto.WriteFrame(conn, proto.TDeleteResp, nil)

	case proto.TPrefetchReq:
		req, err := proto.DecodePrefetchReq(payload)
		if err != nil {
			return err
		}
		count, err := s.handlePrefetch(int(req.K))
		if err != nil {
			return err
		}
		return proto.WriteFrame(conn, proto.TPrefetchResp,
			proto.PrefetchResp{Prefetched: count}.Encode())

	case proto.TStatsReq:
		resp, err := s.handleStats()
		if err != nil {
			return err
		}
		return proto.WriteFrame(conn, proto.TStatsResp, resp.Encode())

	default:
		return fmt.Errorf("fs: server got unexpected message type %d", t)
	}
}

// handleCreate assigns the next node round-robin (creation order embodies
// popularity order, Section IV-A), registers metadata, and tells the node.
func (s *Server) handleCreate(req proto.CreateReq) (proto.CreateResp, error) {
	if req.Name == "" {
		return proto.CreateResp{}, errors.New("fs: empty file name")
	}
	if req.Size <= 0 {
		return proto.CreateResp{}, fmt.Errorf("fs: create %q with size %d", req.Name, req.Size)
	}
	if _, exists := s.meta.LookupName(req.Name); exists {
		return proto.CreateResp{}, fmt.Errorf("fs: file %q already exists", req.Name)
	}

	s.mu.Lock()
	id := s.nextID
	s.nextID++
	nodeIdx := s.nextNode % len(s.nodes)
	s.nextNode++
	s.sizes = append(s.sizes, req.Size)
	s.mu.Unlock()

	h := s.nodes[nodeIdx]
	if _, _, err := h.roundTrip(proto.TNodeCreateReq,
		proto.NodeCreateReq{FileID: id, Size: req.Size}.Encode()); err != nil {
		return proto.CreateResp{}, err
	}

	if err := s.meta.Put(metadata.FileInfo{
		Name: req.Name, ID: int(id), Size: req.Size, Node: nodeIdx,
	}); err != nil {
		return proto.CreateResp{}, err
	}
	s.saveState()
	return proto.CreateResp{FileID: id, NodeAddr: h.addr}, nil
}

// handleLookup resolves a name and journals the access (the append-only
// popularity log of Section IV).
func (s *Server) handleLookup(req proto.LookupReq) (proto.LookupResp, error) {
	fi, ok := s.meta.LookupName(req.Name)
	if !ok {
		return proto.LookupResp{}, fmt.Errorf("fs: no such file %q", req.Name)
	}
	s.mu.Lock()
	s.accesses.Append(trace.Record{
		Seq:    int64(s.accesses.Len()),
		TimeS:  float64(s.clock.Now()),
		Op:     trace.Read,
		FileID: fi.ID,
		Size:   fi.Size,
	})
	s.mu.Unlock()
	return proto.LookupResp{
		FileID:   int64(fi.ID),
		Size:     fi.Size,
		NodeAddr: s.nodes[fi.Node].addr,
	}, nil
}

func (s *Server) handleDelete(req proto.DeleteReq) error {
	fi, ok := s.meta.LookupName(req.Name)
	if !ok {
		return fmt.Errorf("fs: no such file %q", req.Name)
	}
	h := s.nodes[fi.Node]
	if _, _, err := h.roundTrip(proto.TNodeDeleteReq,
		proto.NodeDeleteReq{FileID: int64(fi.ID)}.Encode()); err != nil {
		return err
	}
	s.meta.Delete(req.Name)
	s.saveState()
	return nil
}

// handlePrefetch ranks files by logged popularity, picks the global top
// K, groups the picks by owning node, and commands each node (steps 2-3
// of the process flow).
func (s *Server) handlePrefetch(k int) (int64, error) {
	if k < 0 {
		return 0, fmt.Errorf("fs: negative prefetch count %d", k)
	}
	s.mu.Lock()
	numFiles := int(s.nextID)
	counts := s.accesses.Counts(numFiles)
	sizes := make([]int64, numFiles)
	copy(sizes, s.sizes)
	s.mu.Unlock()

	ids, err := prefetch.Select(counts, sizes, k, 0)
	if err != nil {
		return 0, err
	}

	perNode := make(map[int][]int64)
	for _, id := range ids {
		fi, ok := s.meta.LookupID(id)
		if !ok {
			continue // deleted since it was accessed
		}
		perNode[fi.Node] = append(perNode[fi.Node], int64(id))
	}

	var total int64
	for nodeIdx, fileIDs := range perNode {
		_, payload, err := s.nodes[nodeIdx].roundTrip(proto.TNodePrefetchReq,
			proto.NodePrefetchReq{FileIDs: fileIDs}.Encode())
		if err != nil {
			return total, fmt.Errorf("fs: prefetch on node %d: %w", nodeIdx, err)
		}
		resp, err := proto.DecodePrefetchResp(payload)
		if err != nil {
			return total, err
		}
		total += resp.Prefetched
	}

	// Step 4 of the process flow: forward the observed access patterns as
	// hints so the nodes can predict idle windows. Failures are logged,
	// not fatal — hints are advisory ("EEVFS can operate without the
	// application hints", Section IV-C).
	for nodeIdx, hints := range s.hintsPerNode() {
		if len(hints) == 0 {
			continue
		}
		if _, _, err := s.nodes[nodeIdx].roundTrip(proto.TNodeHintsReq,
			proto.NodeHintsReq{Hints: hints}.Encode()); err != nil {
			s.logger.Printf("forwarding hints to node %d: %v", nodeIdx, err)
		}
	}
	return total, nil
}

// hintsPerNode derives each file's mean request inter-arrival from the
// access log and groups the hints by owning node. Files seen fewer than
// twice yield no estimate.
func (s *Server) hintsPerNode() map[int][]proto.FileHint {
	s.mu.Lock()
	type span struct {
		first, last float64
		count       int
	}
	spans := make(map[int]*span)
	for _, rec := range s.accesses.Entries() {
		sp, ok := spans[rec.FileID]
		if !ok {
			spans[rec.FileID] = &span{first: rec.TimeS, last: rec.TimeS, count: 1}
			continue
		}
		if rec.TimeS < sp.first {
			sp.first = rec.TimeS
		}
		if rec.TimeS > sp.last {
			sp.last = rec.TimeS
		}
		sp.count++
	}
	s.mu.Unlock()

	out := make(map[int][]proto.FileHint)
	for id, sp := range spans {
		if sp.count < 2 || sp.last <= sp.first {
			continue
		}
		fi, ok := s.meta.LookupID(id)
		if !ok {
			continue
		}
		out[fi.Node] = append(out[fi.Node], proto.FileHint{
			FileID:          int64(id),
			MeanIntervalSec: (sp.last - sp.first) / float64(sp.count-1),
		})
	}
	return out
}

// handleStats gathers per-disk stats from every node, prefixing disk
// names with the node index.
func (s *Server) handleStats() (proto.StatsResp, error) {
	var out proto.StatsResp
	for i, h := range s.nodes {
		_, payload, err := h.roundTrip(proto.TNodeStatsReq, nil)
		if err != nil {
			return proto.StatsResp{}, fmt.Errorf("fs: stats from node %d: %w", i, err)
		}
		resp, err := proto.DecodeStatsResp(payload)
		if err != nil {
			return proto.StatsResp{}, err
		}
		for _, ds := range resp.Disks {
			ds.Name = fmt.Sprintf("node%d/%s", i, ds.Name)
			out.Disks = append(out.Disks, ds)
		}
	}
	return out, nil
}

// AccessCount reports the number of journaled accesses (for tests).
func (s *Server) AccessCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accesses.Len()
}
