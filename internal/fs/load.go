package fs

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eevfs/internal/proto"
	"eevfs/internal/rng"
	"eevfs/internal/telemetry"
	"eevfs/internal/workload"
)

// Load harness (DESIGN.md §21): drives a live cluster — in-process or
// attached over TCP — with thousands of concurrent logical clients whose
// requests arrive on an open-loop schedule, and reports per-op-class
// tail latency, achieved vs offered throughput, and a typed error
// taxonomy. The engine lives in this package (not cmd/eevfsload) so the
// BenchmarkLoad* suite can gate it through internal/benchcmp.

// loadBuckets is the latency bucket layout for load-harness histograms:
// denser than DefBuckets between 1ms and 1s, where the knee search needs
// p99 resolution.
var loadBuckets = []float64{
	0.0002, 0.0005, 0.001, 0.002, 0.003, 0.005, 0.0075, 0.01, 0.015,
	0.02, 0.03, 0.05, 0.075, 0.1, 0.15, 0.25, 0.5, 0.75, 1, 1.5,
	2.5, 5, 10, 30,
}

// Load op classes.
const (
	LoadOpRead   = "read"   // whole-file RPC read (lookup + node read)
	LoadOpWrite  = "write"  // RPC write (write-intent lookup + node write)
	LoadOpStream = "stream" // chunked streamed read over the data plane
)

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// ServerAddrs are the metadata servers (one, or a replicated group).
	ServerAddrs []string
	// Clients is the number of concurrent logical clients. Each is one
	// goroutine with its own arrival schedule and popularity stream.
	Clients int
	// Conns is the number of fs.Client instances (and hence TCP
	// connections per daemon) the logical clients share via the v2 mux.
	// Default min(Clients, 64).
	Conns int
	// Duration bounds the measured phase by wall clock; MaxOps bounds it
	// by operation count. At least one must be set; whichever trips first
	// ends the run.
	Duration time.Duration
	MaxOps   int64
	// RatePerSec is the aggregate offered arrival rate across all
	// clients. Zero means closed-loop: every client issues its next op
	// the moment the previous one completes (back-to-back), which
	// measures capacity rather than latency-at-rate.
	RatePerSec float64
	// Process, BurstFactor, BurstFraction, BurstMeanSec select the
	// arrival process (see workload.OpenLoopConfig). Ignored when
	// RatePerSec is zero.
	Process       string
	BurstFactor   float64
	BurstFraction float64
	BurstMeanSec  float64
	// Files is the working-set size; FileSize the bytes per file. The
	// harness preloads (or re-attaches to) files named load-%06d.dat.
	Files    int
	FileSize int
	// ZipfS is the popularity exponent over the working set (default 1.1,
	// the Berkeley-web shape).
	ZipfS float64
	// WriteFrac and StreamFrac split the op mix: a request is a write
	// with probability WriteFrac, else a streamed read with probability
	// StreamFrac/(1-WriteFrac), else an RPC read.
	WriteFrac  float64
	StreamFrac float64
	Seed       uint64
	// Client configures the shared fs.Clients (transport, dialer,
	// failover budget). Client.Transport.Metrics is pointed at Registry
	// so the transport taxonomy (proto.rt.*) lands in the results.
	Client ClientConfig
	// Registry receives the harness metrics (load.* and proto.rt.*).
	// Nil means a private registry whose snapshot still backs the result.
	Registry *telemetry.Registry
	// ReportEvery, when positive, emits a live LoadReport on each tick.
	ReportEvery time.Duration
	OnReport    func(LoadReport)
	// SkipPreload attaches to an existing working set without creating
	// it (the files must exist, e.g. from a previous run on the same
	// cluster).
	SkipPreload bool
}

func (c *LoadConfig) withDefaults() error {
	if len(c.ServerAddrs) == 0 {
		return errors.New("fs: load: no server addresses")
	}
	if c.Clients <= 0 {
		return fmt.Errorf("fs: load: Clients must be positive, got %d", c.Clients)
	}
	if c.Duration <= 0 && c.MaxOps <= 0 {
		return errors.New("fs: load: need Duration or MaxOps")
	}
	if c.RatePerSec < 0 {
		return fmt.Errorf("fs: load: negative rate %g", c.RatePerSec)
	}
	if c.WriteFrac < 0 || c.StreamFrac < 0 || c.WriteFrac+c.StreamFrac > 1 {
		return fmt.Errorf("fs: load: op mix write=%g stream=%g out of range", c.WriteFrac, c.StreamFrac)
	}
	if c.Conns <= 0 {
		c.Conns = 64
	}
	if c.Conns > c.Clients {
		c.Conns = c.Clients
	}
	if c.Files <= 0 {
		c.Files = 512
	}
	if c.FileSize <= 0 {
		c.FileSize = 16 << 10
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.1
	}
	if c.RatePerSec > 0 {
		probe := workload.OpenLoopConfig{
			RatePerSec: c.RatePerSec, Process: c.Process,
			BurstFactor: c.BurstFactor, BurstFraction: c.BurstFraction,
			BurstMeanSec: c.BurstMeanSec,
		}
		if err := probe.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// OpStats summarizes one op class over a whole run.
type OpStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	Mean   float64 `json:"mean_sec"`
	P50    float64 `json:"p50_sec"`
	P99    float64 `json:"p99_sec"`
	P999   float64 `json:"p999_sec"`
}

// LoadResult is the machine-readable outcome of one load run.
type LoadResult struct {
	DurationSec  float64 `json:"duration_sec"`
	Clients      int     `json:"clients"`
	Conns        int     `json:"conns"`
	Issued       int64   `json:"issued"`
	Completed    int64   `json:"completed"`
	Failed       int64   `json:"failed"`
	OfferedRate  float64 `json:"offered_rate"`  // 0 for closed-loop runs
	AchievedRate float64 `json:"achieved_rate"` // completed / duration
	// Ops maps op class -> latency stats. Open-loop latencies are
	// measured from the scheduled arrival time (coordinated-omission
	// corrected); closed-loop from issue time.
	Ops map[string]OpStats `json:"ops"`
	// Errors maps error taxonomy class -> count (empty on a clean run).
	Errors map[string]int64 `json:"errors,omitempty"`
	// Counters is the full counter snapshot (load.*, proto.rt.*, …).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// LoadReport is one live reporting tick: windowed (recent, not
// cumulative) latency per op class plus cumulative accounting.
type LoadReport struct {
	Elapsed    time.Duration
	Issued     int64
	Completed  int64
	Failed     int64
	WindowRate float64 // completions/sec since the previous tick
	Window     map[string]telemetry.HistogramSnapshot
}

// loadOpName returns the preloaded file name for working-set index i.
func loadOpName(i int) string { return fmt.Sprintf("load-%06d.dat", i) }

// classifyLoadErr files one op error into the harness taxonomy.
func classifyLoadErr(err error) string {
	switch {
	case errors.Is(err, ErrNotPrimary):
		return "remote.notprimary"
	case errors.Is(err, ErrFileNotFound):
		return "remote.notfound"
	case errors.Is(err, ErrNodeUnavailable):
		return "remote.unavailable"
	}
	var te *proto.TransportError
	if errors.As(err, &te) {
		if te.Timeout() {
			return "transport.timeout"
		}
		return "transport"
	}
	if isRemoteErr(err) {
		return "remote.generic"
	}
	return "other"
}

// loadClass holds one op class's instrumentation.
type loadClass struct {
	hist   *telemetry.Histogram
	window *telemetry.Windowed
	count  *telemetry.Counter
	errs   *telemetry.Counter
}

// RunLoad executes one load run against a live cluster and blocks until
// every in-flight op has completed, so issued == completed + failed holds
// on the result. The engine is open-loop when cfg.RatePerSec > 0: each
// logical client carries an arrival schedule at rate/Clients (independent
// Poisson streams superpose to the aggregate rate) and measures latency
// from the scheduled arrival, so queueing delay the server causes is
// charged to the server even when the client goroutine was still waiting
// on the previous op.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	if err := cfg.withDefaults(); err != nil {
		return LoadResult{}, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	ccfg := cfg.Client
	ccfg.Transport.Metrics = reg

	// The shared connection pool: Conns real clients, each multiplexing
	// one connection per daemon across Clients/Conns logical clients.
	pool := make([]*Client, cfg.Conns)
	for i := range pool {
		cl, err := DialCluster(cfg.ServerAddrs, ccfg)
		if err != nil {
			for _, p := range pool[:i] {
				p.Close()
			}
			return LoadResult{}, fmt.Errorf("fs: load: dialing cluster: %w", err)
		}
		pool[i] = cl
	}
	defer func() {
		for _, cl := range pool {
			cl.Close()
		}
	}()

	if !cfg.SkipPreload {
		if err := preloadFiles(pool, cfg.Files, cfg.FileSize); err != nil {
			return LoadResult{}, err
		}
	}

	classes := map[string]*loadClass{}
	for _, name := range []string{LoadOpRead, LoadOpWrite, LoadOpStream} {
		classes[name] = &loadClass{
			hist:   reg.Histogram("load.lat."+name, loadBuckets),
			window: telemetry.NewWindowed(5, loadBuckets),
			count:  reg.Counter("load.ops." + name),
			errs:   reg.Counter("load.errors.ops." + name),
		}
	}
	var (
		issued, completed, failed atomic.Int64
		claimed                   atomic.Int64 // MaxOps admission, separate from issued
		errMu                     sync.Mutex
		errCounts                 = map[string]int64{}
	)
	countErr := func(err error) {
		class := classifyLoadErr(err)
		reg.Counter("load.errors." + class).Inc()
		errMu.Lock()
		errCounts[class]++
		errMu.Unlock()
	}

	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	if cfg.Duration > 0 {
		timer := time.AfterFunc(cfg.Duration, halt)
		defer timer.Stop()
	}

	start := time.Now()
	var reportWg sync.WaitGroup
	if cfg.ReportEvery > 0 && cfg.OnReport != nil {
		reportWg.Add(1)
		go func() {
			defer reportWg.Done()
			ticker := time.NewTicker(cfg.ReportEvery)
			defer ticker.Stop()
			var lastDone int64
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				win := make(map[string]telemetry.HistogramSnapshot, len(classes))
				for name, c := range classes {
					win[name] = c.window.Snapshot()
					c.window.Advance()
				}
				done := completed.Load()
				cfg.OnReport(LoadReport{
					Elapsed:    time.Since(start),
					Issued:     issued.Load(),
					Completed:  done,
					Failed:     failed.Load(),
					WindowRate: float64(done-lastDone) / cfg.ReportEvery.Seconds(),
					Window:     win,
				})
				lastDone = done
			}
		}()
	}

	perClientRate := cfg.RatePerSec / float64(cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := pool[i%len(pool)]
			src := rng.New(cfg.Seed + uint64(i)*0x9e3779b9)
			zipf := rng.NewZipf(src, cfg.Files, cfg.ZipfS)
			var arr *workload.Arrivals
			if cfg.RatePerSec > 0 {
				arr, _ = workload.NewArrivals(workload.OpenLoopConfig{
					RatePerSec: perClientRate, Process: cfg.Process,
					BurstFactor: cfg.BurstFactor, BurstFraction: cfg.BurstFraction,
					BurstMeanSec: cfg.BurstMeanSec, Seed: cfg.Seed + uint64(i),
				})
			}
			var payload []byte
			if cfg.WriteFrac > 0 {
				payload = make([]byte, cfg.FileSize)
				for j := range payload {
					payload[j] = byte(i + j)
				}
			}
			// next is the open-loop schedule; latency is measured from it.
			next := time.Now()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if cfg.MaxOps > 0 && claimed.Add(1) > cfg.MaxOps {
					halt() // everyone else can stop scheduling too
					return
				}
				sched := time.Now()
				if arr != nil {
					next = next.Add(arr.Next())
					if d := time.Until(next); d > 0 {
						timer := time.NewTimer(d)
						select {
						case <-stop:
							timer.Stop()
							return
						case <-timer.C:
						}
					}
					sched = next // coordinated-omission correction
				}

				name := loadOpName(zipf.Sample())
				class := LoadOpRead
				u := src.Float64()
				switch {
				case u < cfg.WriteFrac:
					class = LoadOpWrite
				case u < cfg.WriteFrac+cfg.StreamFrac:
					class = LoadOpStream
				}
				issued.Add(1)
				var err error
				switch class {
				case LoadOpWrite:
					_, err = cl.Write(name, payload)
				case LoadOpStream:
					_, _, err = cl.ReadTo(name, io.Discard)
				default:
					_, _, err = cl.Read(name)
				}
				lat := time.Since(sched).Seconds()
				c := classes[class]
				c.count.Inc()
				c.hist.Observe(lat)
				c.window.Observe(lat)
				if err != nil {
					failed.Add(1)
					c.errs.Inc()
					countErr(err)
				} else {
					completed.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	halt()
	reportWg.Wait()
	elapsed := time.Since(start)

	res := LoadResult{
		DurationSec:  elapsed.Seconds(),
		Clients:      cfg.Clients,
		Conns:        cfg.Conns,
		Issued:       issued.Load(),
		Completed:    completed.Load(),
		Failed:       failed.Load(),
		OfferedRate:  cfg.RatePerSec,
		AchievedRate: float64(completed.Load()) / elapsed.Seconds(),
		Ops:          map[string]OpStats{},
		Errors:       map[string]int64{},
		Counters:     map[string]int64{},
	}
	snap := reg.Snapshot()
	for name, c := range classes {
		hs := snap.Histograms["load.lat."+name]
		res.Ops[name] = OpStats{
			Count:  c.count.Value(),
			Errors: c.errs.Value(),
			Mean:   hs.Mean(),
			P50:    hs.P50,
			P99:    hs.P99,
			P999:   hs.P999,
		}
	}
	errMu.Lock()
	for class, n := range errCounts {
		res.Errors[class] = n
	}
	errMu.Unlock()
	for name, v := range snap.Counters {
		res.Counters[name] = v
	}
	return res, nil
}

// preloadFiles makes sure the working set exists: load-%06d.dat for
// i in [0, files), each fileSize bytes. Racing creates (and re-attach to
// a populated cluster) treat "already exists" as success.
func preloadFiles(pool []*Client, files, fileSize int) error {
	content := make([]byte, fileSize)
	for i := range content {
		content[i] = byte(i)
	}
	workers := 16
	if workers > len(pool)*4 {
		workers = len(pool) * 4
	}
	var (
		wg       sync.WaitGroup
		nextFile atomic.Int64
		firstErr atomic.Pointer[error]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := pool[w%len(pool)]
			for {
				i := int(nextFile.Add(1)) - 1
				if i >= files || firstErr.Load() != nil {
					return
				}
				err := cl.Create(loadOpName(i), content)
				if err != nil && !strings.Contains(err.Error(), "already exists") {
					e := fmt.Errorf("fs: load: preloading %s: %w", loadOpName(i), err)
					firstErr.CompareAndSwap(nil, &e)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}
