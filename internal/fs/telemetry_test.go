package fs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"eevfs/internal/faultnet"
	"eevfs/internal/telemetry"
)

// TestTelemetryAdminEndToEnd is the observability acceptance scenario: a
// client whose transport carries a telemetry registry runs traffic against
// a cluster (with one dial refusal forcing a retry), and the resulting RPC
// latency histogram and retry counter are visible over the admin HTTP
// endpoint as JSON.
func TestTelemetryAdminEndToEnd(t *testing.T) {
	cl, srv, nodes, _, clientNet := chaosCluster(t, 1)
	if err := cl.Create("f", bytes.Repeat([]byte("x"), 800)); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	tc := chaosTransport()
	tc.Metrics = reg
	cl2, err := DialConfig(srv.Addr(), ClientConfig{Dialer: clientNet, Transport: tc})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()

	// The instrumented client's first data dial to the node is refused
	// once; the retry policy absorbs it and the retry counter records it.
	clientNet.SetFault(nodes[0].Addr(), faultnet.Fault{RefuseDials: 1})
	if _, _, err := cl2.Read("f"); err != nil {
		t.Fatalf("read with one refused dial: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl2.List(); err != nil {
			t.Fatal(err)
		}
	}

	admin, err := telemetry.StartAdmin("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	resp, err := http.Get("http://" + admin.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /metrics JSON: %v", err)
	}

	if got := snap.Counters["proto.rt.retries"]; got < 1 {
		t.Errorf("proto.rt.retries over admin endpoint = %d, want >= 1", got)
	}
	h, ok := snap.Histograms["proto.rt.seconds"]
	if !ok {
		t.Fatal("proto.rt.seconds histogram missing from admin snapshot")
	}
	// Read (lookup + data RPC) + 3 lists, at minimum.
	if h.Count < 5 {
		t.Errorf("proto.rt.seconds count = %d, want >= 5", h.Count)
	}
	if snap.Counters["proto.rt.calls"] <= snap.Counters["proto.rt.retries"] {
		t.Errorf("calls (%d) should exceed retries (%d)",
			snap.Counters["proto.rt.calls"], snap.Counters["proto.rt.retries"])
	}
}

// TestStatsCountersEndToEnd: counters flow over the wire in StatsResp —
// the node exports its registry (or built-in counters), and the server
// prefixes each node's counters with "nodeN/" and appends its own.
func TestStatsCountersEndToEnd(t *testing.T) {
	cl, _, nodes, _, _ := chaosCluster(t, 2)
	if err := cl.Create("f", bytes.Repeat([]byte("y"), 600)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Read("f"); err != nil {
		t.Fatal(err)
	}

	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	counters := make(map[string]int64, len(stats.Counters))
	for _, c := range stats.Counters {
		counters[c.Name] = c.Value
	}

	// chaosCluster attaches no registries, so the node falls back to its
	// built-in buffer counters; one miss from the read must show up on
	// one of the nodes.
	var misses int64
	for i := range nodes {
		misses += counters[fmt.Sprintf("node%d/node.buffer.misses", i)]
	}
	if misses < 1 {
		t.Errorf("aggregated node buffer misses = %d, want >= 1; counters: %v",
			misses, counters)
	}
	for name := range counters {
		if !strings.HasPrefix(name, "node0/") && !strings.HasPrefix(name, "node1/") &&
			strings.HasPrefix(name, "node.") {
			t.Errorf("node counter %q reached the client without a node prefix", name)
		}
	}
}
