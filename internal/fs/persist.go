package fs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"eevfs/internal/metadata"
)

// Metadata persistence. The paper's prototype kept metadata in memory;
// for a restartable daemon we journal it as JSON manifests: the storage
// node keeps one in its root directory (next to the disk directories),
// and the storage server keeps one at an operator-chosen path. Manifests
// are written atomically (temp file + rename) on every mutation — the
// metadata is tiny compared to the data it describes.

// nodeManifest is the storage node's on-disk metadata.
type nodeManifest struct {
	Version  int             `json:"version"`
	NextDisk int             `json:"next_disk"`
	Files    []nodeFileEntry `json:"files"`
	Dirty    []dirtyEntry    `json:"dirty,omitempty"`
}

type nodeFileEntry struct {
	ID         int   `json:"id"`
	Size       int64 `json:"size"`
	Disk       int   `json:"disk"`
	Prefetched bool  `json:"prefetched,omitempty"`
}

type dirtyEntry struct {
	ID   int   `json:"id"`
	Size int64 `json:"size"`
}

const manifestVersion = 1

func (n *Node) manifestPath() string {
	return filepath.Join(n.cfg.RootDir, "manifest.json")
}

// saveManifest snapshots the node's metadata. Callers must not hold n.mu.
func (n *Node) saveManifest() {
	n.mu.Lock()
	m := nodeManifest{Version: manifestVersion, NextDisk: n.nextDisk}
	for id, size := range n.dirty {
		m.Dirty = append(m.Dirty, dirtyEntry{ID: id, Size: size})
	}
	n.mu.Unlock()

	for _, id := range n.meta.IDs() {
		if e, ok := n.meta.Lookup(id); ok {
			m.Files = append(m.Files, nodeFileEntry{
				ID: e.ID, Size: e.Size, Disk: e.Disk, Prefetched: e.Prefetched,
			})
		}
	}
	sort.Slice(m.Files, func(i, j int) bool { return m.Files[i].ID < m.Files[j].ID })
	sort.Slice(m.Dirty, func(i, j int) bool { return m.Dirty[i].ID < m.Dirty[j].ID })

	if err := writeJSONAtomic(n.manifestPath(), m); err != nil {
		n.logger.Printf("manifest save failed: %v", err)
	}
}

// decodeNodeManifest parses and version-checks a node manifest. Split
// from loadManifest so the decode path is directly fuzzable.
func decodeNodeManifest(raw []byte) (nodeManifest, error) {
	var m nodeManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nodeManifest{}, err
	}
	if m.Version != manifestVersion {
		return nodeManifest{}, fmt.Errorf("fs: manifest version %d unsupported", m.Version)
	}
	return m, nil
}

// loadManifest restores metadata from a previous run; a missing manifest
// means a fresh node.
func (n *Node) loadManifest() error {
	raw, err := os.ReadFile(n.manifestPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("fs: reading manifest: %w", err)
	}
	m, err := decodeNodeManifest(raw)
	if err != nil {
		return fmt.Errorf("fs: corrupt manifest %s: %w", n.manifestPath(), err)
	}
	for _, f := range m.Files {
		if f.Disk >= n.cfg.DataDisks {
			return fmt.Errorf("fs: manifest file %d on disk %d, node has %d", f.ID, f.Disk, n.cfg.DataDisks)
		}
		if err := n.meta.Put(metadata.NodeEntry{
			ID: f.ID, Size: f.Size, Disk: f.Disk, Prefetched: f.Prefetched,
		}); err != nil {
			return err
		}
	}
	n.mu.Lock()
	n.nextDisk = m.NextDisk
	for _, d := range m.Dirty {
		n.dirty[d.ID] = d.Size
	}
	n.mu.Unlock()
	return nil
}

// serverState is the storage server's on-disk metadata. RepSeq and
// Epoch only matter for members of a replicated group; pre-replication
// state files decode with both zero, which is exactly "fresh log".
type serverState struct {
	Version  int               `json:"version"`
	NextID   int64             `json:"next_id"`
	NextNode int               `json:"next_node"`
	RepSeq   uint64            `json:"rep_seq,omitempty"`
	Epoch    uint64            `json:"epoch,omitempty"`
	Files    []serverFileEntry `json:"files"`
}

type serverFileEntry struct {
	Name    string `json:"name"`
	ID      int    `json:"id"`
	Size    int64  `json:"size"`
	Node    int    `json:"node"`
	Replica int    `json:"replica,omitempty"`
}

// saveState snapshots the server metadata to cfg.StateFile (no-op when
// persistence is not configured). The snapshot walks the sharded map one
// stripe at a time — no global lock exists to freeze the whole namespace,
// so concurrent mutations may or may not appear; each stripe is
// internally consistent and the final mutation of any burst triggers its
// own save. saveMu serializes writers so snapshots cannot interleave on
// the temp file.
func (s *Server) saveState() {
	if s.cfg.StateFile == "" {
		return
	}
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	st := serverState{
		Version:  manifestVersion,
		NextID:   s.nextID.Load(),
		NextNode: int(s.nextNode.Load()),
		RepSeq:   s.repSeqA.Load(),
		Epoch:    s.epoch.Load(),
	}
	for _, name := range s.meta.Names() {
		if fi, ok := s.meta.LookupName(name); ok {
			st.Files = append(st.Files, serverFileEntry{
				Name: fi.Name, ID: fi.ID, Size: fi.Size, Node: fi.Node, Replica: fi.Replica,
			})
		}
	}
	if err := writeJSONAtomic(s.cfg.StateFile, st); err != nil {
		s.logger.Printf("state save failed: %v", err)
	}
}

// decodeServerState parses and version-checks a server state file. Split
// from loadState so the decode path is directly fuzzable.
func decodeServerState(raw []byte) (serverState, error) {
	var st serverState
	if err := json.Unmarshal(raw, &st); err != nil {
		return serverState{}, err
	}
	if st.Version != manifestVersion {
		return serverState{}, fmt.Errorf("fs: server state version %d unsupported", st.Version)
	}
	return st, nil
}

// loadState restores server metadata; a missing file means a fresh server.
func (s *Server) loadState() error {
	if s.cfg.StateFile == "" {
		return nil
	}
	raw, err := os.ReadFile(s.cfg.StateFile)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("fs: reading server state: %w", err)
	}
	st, err := decodeServerState(raw)
	if err != nil {
		return fmt.Errorf("fs: corrupt server state %s: %w", s.cfg.StateFile, err)
	}
	for _, f := range st.Files {
		if f.Node >= len(s.nodes) {
			return fmt.Errorf("fs: state file %q on node %d, server has %d", f.Name, f.Node, len(s.nodes))
		}
		if err := s.meta.Put(metadata.FileInfo{
			Name: f.Name, ID: f.ID, Size: f.Size, Node: f.Node, Replica: f.Replica,
		}); err != nil {
			return err
		}
	}
	s.nextID.Store(st.NextID)
	s.nextNode.Store(int64(st.NextNode))
	s.repSeq = st.RepSeq
	s.repSeqA.Store(st.RepSeq)
	if st.Epoch > 0 {
		s.epoch.Store(st.Epoch)
	}
	for _, f := range st.Files {
		if f.ID >= 0 && int64(f.ID) < st.NextID {
			s.sizes.set(int64(f.ID), f.Size)
		}
	}
	return nil
}

// writeJSONAtomic writes v as indented JSON via a temp file + rename.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
