package fs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"eevfs/internal/metadata"
)

// Metadata persistence. The paper's prototype kept metadata in memory;
// for a restartable daemon we journal it as JSON manifests: the storage
// node keeps one in its root directory (next to the disk directories),
// and the storage server keeps one at an operator-chosen path. Manifests
// are written atomically (temp file + rename) on every mutation — the
// metadata is tiny compared to the data it describes.

// nodeManifest is the storage node's on-disk metadata.
type nodeManifest struct {
	Version  int             `json:"version"`
	NextDisk int             `json:"next_disk"`
	Files    []nodeFileEntry `json:"files"`
	Dirty    []dirtyEntry    `json:"dirty,omitempty"`
}

type nodeFileEntry struct {
	ID         int   `json:"id"`
	Size       int64 `json:"size"`
	Disk       int   `json:"disk"`
	Prefetched bool  `json:"prefetched,omitempty"`
}

type dirtyEntry struct {
	ID   int   `json:"id"`
	Size int64 `json:"size"`
}

const manifestVersion = 1

func (n *Node) manifestPath() string {
	return filepath.Join(n.cfg.RootDir, "manifest.json")
}

// saveManifest snapshots the node's metadata. Callers must not hold n.mu.
func (n *Node) saveManifest() {
	n.mu.Lock()
	m := nodeManifest{Version: manifestVersion, NextDisk: n.nextDisk}
	for id, size := range n.dirty {
		m.Dirty = append(m.Dirty, dirtyEntry{ID: id, Size: size})
	}
	n.mu.Unlock()

	for _, id := range n.meta.IDs() {
		if e, ok := n.meta.Lookup(id); ok {
			m.Files = append(m.Files, nodeFileEntry{
				ID: e.ID, Size: e.Size, Disk: e.Disk, Prefetched: e.Prefetched,
			})
		}
	}
	sort.Slice(m.Files, func(i, j int) bool { return m.Files[i].ID < m.Files[j].ID })
	sort.Slice(m.Dirty, func(i, j int) bool { return m.Dirty[i].ID < m.Dirty[j].ID })

	if err := writeJSONAtomic(n.manifestPath(), m); err != nil {
		n.logger.Printf("manifest save failed: %v", err)
	}
}

// loadManifest restores metadata from a previous run; a missing manifest
// means a fresh node.
func (n *Node) loadManifest() error {
	raw, err := os.ReadFile(n.manifestPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("fs: reading manifest: %w", err)
	}
	var m nodeManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("fs: corrupt manifest %s: %w", n.manifestPath(), err)
	}
	if m.Version != manifestVersion {
		return fmt.Errorf("fs: manifest version %d unsupported", m.Version)
	}
	for _, f := range m.Files {
		if f.Disk >= n.cfg.DataDisks {
			return fmt.Errorf("fs: manifest file %d on disk %d, node has %d", f.ID, f.Disk, n.cfg.DataDisks)
		}
		if err := n.meta.Put(metadata.NodeEntry{
			ID: f.ID, Size: f.Size, Disk: f.Disk, Prefetched: f.Prefetched,
		}); err != nil {
			return err
		}
	}
	n.mu.Lock()
	n.nextDisk = m.NextDisk
	for _, d := range m.Dirty {
		n.dirty[d.ID] = d.Size
	}
	n.mu.Unlock()
	return nil
}

// serverState is the storage server's on-disk metadata.
type serverState struct {
	Version  int               `json:"version"`
	NextID   int64             `json:"next_id"`
	NextNode int               `json:"next_node"`
	Files    []serverFileEntry `json:"files"`
}

type serverFileEntry struct {
	Name string `json:"name"`
	ID   int    `json:"id"`
	Size int64  `json:"size"`
	Node int    `json:"node"`
}

// saveState snapshots the server metadata to cfg.StateFile (no-op when
// persistence is not configured). Callers must not hold s.mu.
func (s *Server) saveState() {
	if s.cfg.StateFile == "" {
		return
	}
	s.mu.Lock()
	st := serverState{Version: manifestVersion, NextID: s.nextID, NextNode: s.nextNode}
	s.mu.Unlock()

	for _, name := range s.meta.Names() {
		if fi, ok := s.meta.LookupName(name); ok {
			st.Files = append(st.Files, serverFileEntry{
				Name: fi.Name, ID: fi.ID, Size: fi.Size, Node: fi.Node,
			})
		}
	}
	if err := writeJSONAtomic(s.cfg.StateFile, st); err != nil {
		s.logger.Printf("state save failed: %v", err)
	}
}

// loadState restores server metadata; a missing file means a fresh server.
func (s *Server) loadState() error {
	if s.cfg.StateFile == "" {
		return nil
	}
	raw, err := os.ReadFile(s.cfg.StateFile)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("fs: reading server state: %w", err)
	}
	var st serverState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("fs: corrupt server state %s: %w", s.cfg.StateFile, err)
	}
	if st.Version != manifestVersion {
		return fmt.Errorf("fs: server state version %d unsupported", st.Version)
	}
	maxSizeID := -1
	for _, f := range st.Files {
		if f.Node >= len(s.nodes) {
			return fmt.Errorf("fs: state file %q on node %d, server has %d", f.Name, f.Node, len(s.nodes))
		}
		if err := s.meta.Put(metadata.FileInfo{
			Name: f.Name, ID: f.ID, Size: f.Size, Node: f.Node,
		}); err != nil {
			return err
		}
		if f.ID > maxSizeID {
			maxSizeID = f.ID
		}
	}
	s.mu.Lock()
	s.nextID = st.NextID
	s.nextNode = st.NextNode
	s.sizes = make([]int64, s.nextID)
	for _, f := range st.Files {
		if f.ID >= 0 && int64(f.ID) < s.nextID {
			s.sizes[f.ID] = f.Size
		}
	}
	s.mu.Unlock()
	return nil
}

// writeJSONAtomic writes v as indented JSON via a temp file + rename.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
