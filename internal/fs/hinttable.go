package fs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Chunk geometry for hintTable, mirroring sizeTable: file ids are dense
// and monotonic, so a chunked grow-only array beats a map and needs no
// per-read lock.
const (
	hintChunkBits = 10
	hintChunkSize = 1 << hintChunkBits
)

// hintStat is one file's incremental access aggregate: how often it was
// read and the first/last access times, which is exactly what the
// inter-arrival hint (Section IV-C) needs. Times are stored as
// math.Float64bits(t)+1 so zero means "never set" — the bits of
// non-negative floats order the same as the floats, so CAS min/max works
// on the encoded form.
type hintStat struct {
	count atomic.Int64
	first atomic.Uint64
	last  atomic.Uint64
}

type hintChunk [hintChunkSize]hintStat

// hintTable folds every journaled access into per-file {count, first,
// last} as it happens, so hint derivation at prefetch time reads one
// slot per file instead of re-walking the whole access history (the
// O(history) stall the load harness exposed on the prefetch path).
// Writes are lock-free after the chunk exists. Must not be copied.
type hintTable struct {
	chunks atomic.Pointer[[]*hintChunk]
	grow   sync.Mutex
}

// note folds one access at timeS (model seconds, non-negative) into the
// aggregate for id.
func (t *hintTable) note(id int64, timeS float64) {
	st := t.slot(id)
	enc := math.Float64bits(timeS) + 1
	for {
		cur := st.first.Load()
		if cur != 0 && cur <= enc {
			break
		}
		if st.first.CompareAndSwap(cur, enc) {
			break
		}
	}
	for {
		cur := st.last.Load()
		if cur >= enc {
			break
		}
		if st.last.CompareAndSwap(cur, enc) {
			break
		}
	}
	st.count.Add(1)
}

// each visits every file id in [0, n) that has at least one recorded
// access, passing its count and decoded first/last access times.
func (t *hintTable) each(n int64, visit func(id, count int64, first, last float64)) {
	cs := t.chunks.Load()
	if cs == nil {
		return
	}
	for id := int64(0); id < n; id++ {
		idx := int(id >> hintChunkBits)
		if idx >= len(*cs) {
			return
		}
		st := &(*cs)[idx][id&(hintChunkSize-1)]
		count := st.count.Load()
		if count == 0 {
			continue
		}
		first, last := st.first.Load(), st.last.Load()
		if first == 0 || last == 0 {
			continue // mid-publication by a concurrent note
		}
		visit(id, count, math.Float64frombits(first-1), math.Float64frombits(last-1))
	}
}

// slot returns the stat cell for a file id, growing the chunk directory
// on first touch of a new chunk.
func (t *hintTable) slot(id int64) *hintStat {
	idx := int(id >> hintChunkBits)
	for {
		if cs := t.chunks.Load(); cs != nil && idx < len(*cs) {
			return &(*cs)[idx][id&(hintChunkSize-1)]
		}
		t.grow.Lock()
		cs := t.chunks.Load()
		if cs == nil || idx >= len(*cs) {
			var grown []*hintChunk
			if cs != nil {
				grown = append(grown, *cs...)
			}
			for len(grown) <= idx {
				grown = append(grown, new(hintChunk))
			}
			t.chunks.Store(&grown)
		}
		t.grow.Unlock()
	}
}
