package fs

import (
	"io"
	"log"
	"testing"
	"time"

	"eevfs/internal/disk"
)

// The gated load suite (BENCH_load.json): fixed work per iteration, run
// with -benchtime 1x -count 3 like the stream suite, so ns/op is the
// wall-clock of a deterministic op count and benchcmp can diff it. Each
// benchmark boots a fresh cluster per iteration — connection setup and
// accept-path behavior are part of what the suite guards.

// benchLoadCluster boots one server over two nodes shaped for load:
// latency injection off, probes off, DPM off.
func benchLoadCluster(b *testing.B) *Server {
	b.Helper()
	quiet := log.New(io.Discard, "", 0)
	var addrs []string
	for i := 0; i < 2; i++ {
		n, err := StartNode(NodeConfig{
			Addr:        "127.0.0.1:0",
			RootDir:     b.TempDir(),
			DataDisks:   2,
			DataModel:   disk.ModelType1,
			BufferModel: disk.ModelType1,
			TimeScale:   2000,
			Logger:      quiet,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { n.Close() })
		addrs = append(addrs, n.Addr())
	}
	srv, err := StartServer(ServerConfig{
		Addr:      "127.0.0.1:0",
		NodeAddrs: addrs,
		Logger:    quiet,
		Health:    HealthConfig{ProbeInterval: -1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

func runLoadBench(b *testing.B, cfg LoadConfig) {
	b.Helper()
	srv := benchLoadCluster(b)
	cfg.ServerAddrs = []string{srv.Addr()}
	cfg.Duration = 5 * time.Minute // backstop; MaxOps is the real bound
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.SkipPreload = i > 0 // the working set survives across iterations
		res, err := RunLoad(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Issued != res.Completed+res.Failed {
			b.Fatalf("accounting broken: %+v", res)
		}
		if res.Failed != 0 {
			b.Fatalf("load bench produced %d errors: %v", res.Failed, res.Errors)
		}
		b.ReportMetric(res.AchievedRate, "ops/s")
		b.ReportMetric(res.Ops[LoadOpRead].P99*1000, "p99-ms")
	}
}

// BenchmarkLoadRPC: closed-loop whole-file RPC reads from 128 pipelined
// clients over 16 shared connections — the metadata+data round-trip
// capacity number.
func BenchmarkLoadRPC(b *testing.B) {
	runLoadBench(b, LoadConfig{
		Clients: 128, Conns: 16, MaxOps: 6000,
		Files: 128, FileSize: 4 << 10, Seed: 1,
	})
}

// BenchmarkLoadMixed: closed-loop mixed traffic (10% writes, 10%
// streamed reads) from 96 clients — exercises the write-intent lookup,
// the node write path, and the stream plane under the same fan-in.
func BenchmarkLoadMixed(b *testing.B) {
	runLoadBench(b, LoadConfig{
		Clients: 96, Conns: 16, MaxOps: 4000,
		Files: 128, FileSize: 4 << 10,
		WriteFrac: 0.1, StreamFrac: 0.1, Seed: 2,
	})
}

// BenchmarkLoadFanIn: 1000 logical clients over 32 connections,
// closed-loop reads — the per-connection worker model's queueing under
// deep fan-in is the thing this number moves with.
func BenchmarkLoadFanIn(b *testing.B) {
	runLoadBench(b, LoadConfig{
		Clients: 1000, Conns: 32, MaxOps: 8000,
		Files: 256, FileSize: 2 << 10, Seed: 3,
	})
}

// BenchmarkLoadConnSetup: 200 fresh dial→read→close cycles per
// iteration, 8 at a time — the accept-path number (listener loop,
// preface sniff, connection teardown).
func BenchmarkLoadConnSetup(b *testing.B) {
	srv := benchLoadCluster(b)
	// One preload pass so every dial cycle reads an existing file.
	if _, err := RunLoad(LoadConfig{
		ServerAddrs: []string{srv.Addr()}, Clients: 8, MaxOps: 8,
		Duration: time.Minute, Files: 16, FileSize: 1 << 10, Seed: 4,
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		const cycles, par = 200, 8
		errs := make(chan error, par)
		for w := 0; w < par; w++ {
			go func(w int) {
				for j := 0; j < cycles/par; j++ {
					cl, err := Dial(srv.Addr())
					if err != nil {
						errs <- err
						return
					}
					_, _, err = cl.Read(loadOpName(j % 16))
					cl.Close()
					if err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}(w)
		}
		for w := 0; w < par; w++ {
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
	}
}
