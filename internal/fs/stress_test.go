package fs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// Concurrency stress tests for the sharded server (ISSUE 3): goroutine
// clients hammer lookup/read/stat while popularity recomputation runs,
// and the atomic access log must not lose a single update. Run with
// -race for the full payoff.

func TestStressClientsAgainstPrefetchRecomputation(t *testing.T) {
	cl, srv, _ := testCluster(t, 2, nil)

	const files = 16
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("f%02d", i)
		if err := cl.Create(name, bytes.Repeat([]byte{byte('a' + i)}, 500+i)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		clients        = 8
		readsPerClient = 25
	)
	var reads atomic.Int64
	errs := make(chan error, clients+1)

	// One goroutine drives popularity recomputation and hint derivation
	// (Counts + Snapshot walks over the live atomic log) for as long as
	// the readers run.
	stopPrefetch := make(chan struct{})
	var prefetchWg sync.WaitGroup
	prefetchWg.Add(1)
	go func() {
		defer prefetchWg.Done()
		c, err := Dial(srv.Addr())
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		for {
			select {
			case <-stopPrefetch:
				return
			default:
			}
			if _, err := c.Prefetch(4); err != nil {
				errs <- fmt.Errorf("prefetch: %w", err)
				return
			}
		}
	}()

	var readerWg sync.WaitGroup
	for g := 0; g < clients; g++ {
		readerWg.Add(1)
		go func(g int) {
			defer readerWg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < readsPerClient; i++ {
				name := fmt.Sprintf("f%02d", (g*7+i)%files)
				if _, _, err := c.Read(name); err != nil {
					errs <- fmt.Errorf("read %s: %w", name, err)
					return
				}
				reads.Add(1)
				if i%5 == 0 {
					if _, err := c.Stats(); err != nil {
						errs <- fmt.Errorf("stats: %w", err)
						return
					}
				}
			}
		}(g)
	}

	readerWg.Wait()
	close(stopPrefetch)
	prefetchWg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// No lost updates: every read journaled exactly one access.
	if got, want := srv.AccessCount(), int(reads.Load()); got != want {
		t.Errorf("access log has %d entries, want %d (lost updates)", got, want)
	}
	// Clean shutdown with traffic recently in flight.
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestStressDuplicateCreateRace: N clients race to create one name;
// the PutIfAbsent gate must let exactly one win.
func TestStressDuplicateCreateRace(t *testing.T) {
	cl, srv, _ := testCluster(t, 2, nil)
	const racers = 8
	var wins, dups atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, racers)
	for g := 0; g < racers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			err = c.Create("contested", []byte("payload"))
			switch {
			case err == nil:
				wins.Add(1)
			case strings.Contains(err.Error(), "already exists"):
				dups.Add(1)
			default:
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if wins.Load() != 1 || dups.Load() != racers-1 {
		t.Fatalf("create race: %d winners, %d duplicates (want 1/%d)",
			wins.Load(), dups.Load(), racers-1)
	}
	if data, _, err := cl.Read("contested"); err != nil || !bytes.Equal(data, []byte("payload")) {
		t.Fatalf("winner's file unreadable: %v", err)
	}
}
