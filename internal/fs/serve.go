package fs

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"time"

	"eevfs/internal/proto"
	"eevfs/internal/telemetry"
)

// maxConnWorkers bounds how many requests from one connection may be in
// flight in handler goroutines at once. The bound is per connection:
// one greedy pipelining peer cannot starve the daemon, and Close still
// drains quickly.
const maxConnWorkers = 32

// handlerFunc handles one decoded request and returns the response
// frame. sc is the trace context extracted from the frame (zero when
// untraced). A returned error becomes a TError frame; the connection
// stays up either way (malformed payloads answer with an error rather
// than a hangup, matching the v1 behavior the tests pin).
type handlerFunc func(t proto.Type, payload []byte, sc telemetry.SpanContext) (proto.Type, []byte, error)

// serveFrames drives one accepted connection until it dies, speaking
// whichever protocol version the peer opened with:
//
//   - v2 (the 4-byte EEV2 preface): requests are dispatched to a bounded
//     pool of worker goroutines, so many round trips from one peer are
//     serviced concurrently; responses carry the request's id and are
//     written whole under a per-connection mutex (ordered, never
//     interleaved), in whatever order the handlers finish.
//   - v1 (no preface — the first four bytes are a frame length):
//     requests are served one at a time, in order, exactly as before the
//     multiplexed framing existed.
//
// writeTimeout bounds each response write so a stalled peer cannot pin
// a handler goroutine.
func serveFrames(conn net.Conn, writeTimeout time.Duration, handle handlerFunc) {
	var first [4]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return
	}
	dc := &deadlineConn{Conn: conn, writeTimeout: writeTimeout}
	if binary.BigEndian.Uint32(first[:]) == proto.MagicV2 {
		serveV2(conn, dc, handle)
		return
	}
	// v1 peer: replay the sniffed bytes as the first frame's length.
	serveV1(io.MultiReader(bytes.NewReader(first[:]), conn), dc, handle)
}

func serveV1(r io.Reader, w io.Writer, handle handlerFunc) {
	for {
		t, payload, err := proto.ReadFrame(r)
		if err != nil {
			return
		}
		t, payload, sc, herr := proto.ExtractContext(t, payload)
		var rt proto.Type
		var rp []byte
		if herr == nil {
			rt, rp, herr = handle(t, payload, sc)
		}
		if herr != nil {
			rt, rp = proto.TError, errorPayload(herr)
		}
		if err := proto.WriteFrame(w, rt, rp); err != nil {
			return
		}
	}
}

func serveV2(conn net.Conn, w io.Writer, handle handlerFunc) {
	var (
		wg      sync.WaitGroup
		writeMu sync.Mutex
		slots   = make(chan struct{}, maxConnWorkers)
	)
	for {
		t, id, payload, err := proto.ReadFrameID(conn)
		if err != nil {
			break
		}
		slots <- struct{}{}
		wg.Add(1)
		go func(t proto.Type, id uint32, payload []byte) {
			defer wg.Done()
			defer func() { <-slots }()
			t, payload, sc, herr := proto.ExtractContext(t, payload)
			var rt proto.Type
			var rp []byte
			if herr == nil {
				rt, rp, herr = handle(t, payload, sc)
			}
			if herr != nil {
				rt, rp = proto.TError, errorPayload(herr)
			}
			writeMu.Lock()
			werr := proto.WriteFrameID(w, rt, id, rp)
			writeMu.Unlock()
			if werr != nil {
				// A response we cannot deliver poisons the stream for the
				// peer anyway; close so the read loop exits too.
				conn.Close()
			}
		}(t, id, payload)
	}
	wg.Wait()
}
