package fs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"eevfs/internal/proto"
	"eevfs/internal/telemetry"
)

// defaultConnWorkers bounds how many requests from one connection may be
// in flight in handler goroutines at once. The bound is per connection:
// one greedy pipelining peer cannot starve the daemon, and Close still
// drains quickly. 128 (up from the original 32) because the load harness
// showed tens of logical clients multiplexed onto one connection stalling
// behind the cap long before the node's disks were busy (DESIGN.md §21).
const defaultConnWorkers = 128

// defaultConnStreams bounds how many streams one connection may hold open
// at once. Stream handlers are deliberately NOT drawn from the RPC worker
// pool: a handler parks in waitCredit for as long as its peer dawdles,
// and the demux read loop must never block on slot acquisition — it has
// to keep reading inbound credit frames or every running stream on the
// connection wedges behind the very loop that would feed it. Excess
// opens are rejected with a typed error; the connection stays healthy.
const defaultConnStreams = 64

// connLimits carries the per-connection concurrency caps into
// serveFrames. The zero value means defaults.
type connLimits struct {
	workers int // concurrent RPC handlers (default defaultConnWorkers)
	streams int // concurrent open streams (default defaultConnStreams)
}

func (l connLimits) withDefaults() connLimits {
	if l.workers <= 0 {
		l.workers = defaultConnWorkers
	}
	if l.streams <= 0 {
		l.streams = defaultConnStreams
	}
	return l
}

// acceptConns runs one accept loop on ln, handing each connection to
// accept. Transient errors — file-table exhaustion, handshakes aborted
// under heavy fan-in — are retried with capped exponential backoff
// instead of silently killing the listener (the original loop returned
// on any error, so one EMFILE burst left a daemon alive but deaf); only
// the listener's own closure ends the loop. Several acceptConns
// goroutines may share one listener: Accept is safe to call
// concurrently, and parallel loops keep the post-accept bookkeeping
// (connection registration, handler spawn) off the accept rate's
// critical path.
func acceptConns(ln net.Listener, logf func(format string, args ...any), accept func(net.Conn)) {
	var delay time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if delay == 0 {
				delay = 5 * time.Millisecond
			} else if delay *= 2; delay > time.Second {
				delay = time.Second
			}
			logf("accept: %v (retrying in %v)", err, delay)
			time.Sleep(delay)
			continue
		}
		delay = 0
		accept(conn)
	}
}

// handlerFunc handles one decoded request and returns the response
// frame. sc is the trace context extracted from the frame (zero when
// untraced). A returned error becomes a TError frame; the connection
// stays up either way (malformed payloads answer with an error rather
// than a hangup, matching the v1 behavior the tests pin).
type handlerFunc func(t proto.Type, payload []byte, sc telemetry.SpanContext) (proto.Type, []byte, error)

// streamHandlerFunc serves one open stream (DESIGN.md §19): t is the
// opening frame type (TStreamReadReq or TStreamWriteReq), payload its
// StreamOpenReq body, and st the stream's server half. The handler owns
// the stream until it returns; every exit path must have sent a terminal
// frame (end or abort) unless the connection itself is dead.
type streamHandlerFunc func(t proto.Type, payload []byte, sc telemetry.SpanContext, st *srvStream)

// serveFrames drives one accepted connection until it dies, speaking
// whichever protocol version the peer opened with:
//
//   - v2 (the 4-byte EEV2 preface): requests are dispatched to a bounded
//     pool of worker goroutines, so many round trips from one peer are
//     serviced concurrently; responses carry the request's id and are
//     written whole under a per-connection mutex (ordered, never
//     interleaved), in whatever order the handlers finish. Stream opens
//     spawn a dedicated handler goroutine outside the worker pool
//     (bounded by lim.streams instead), and later frames of an open
//     stream are routed to it by id.
//   - v1 (no preface — the first four bytes are a frame length):
//     requests are served one at a time, in order, exactly as before the
//     multiplexed framing existed. Streams are v2-only.
//
// writeTimeout bounds each response write so a stalled peer cannot pin
// a handler goroutine. shandle may be nil: stream opens then answer with
// a typed TError and the connection stays healthy (the metadata server
// does not serve file bytes).
func serveFrames(conn net.Conn, writeTimeout time.Duration, handle handlerFunc, shandle streamHandlerFunc, lim connLimits) {
	var first [4]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return
	}
	dc := &deadlineConn{Conn: conn, writeTimeout: writeTimeout}
	if binary.BigEndian.Uint32(first[:]) == proto.MagicV2 {
		serveV2(conn, dc, handle, shandle, lim.withDefaults())
		return
	}
	// v1 peer: replay the sniffed bytes as the first frame's length.
	serveV1(io.MultiReader(bytes.NewReader(first[:]), conn), dc, handle)
}

func serveV1(r io.Reader, w io.Writer, handle handlerFunc) {
	for {
		t, payload, err := proto.ReadFrame(r)
		if err != nil {
			return
		}
		t, payload, sc, herr := proto.ExtractContext(t, payload)
		var rt proto.Type
		var rp []byte
		if herr == nil {
			rt, rp, herr = handle(t, payload, sc)
		}
		if herr != nil {
			rt, rp = proto.TError, errorPayload(herr)
		}
		if err := proto.WriteFrame(w, rt, rp); err != nil {
			return
		}
	}
}

// srvMsg is one inbound frame of a server-side stream. Data payloads are
// pooled chunk buffers; the consumer returns them via proto.PutChunk.
type srvMsg struct {
	t       proto.Type
	payload []byte
}

// errStreamConnDead reports that the connection under a server-side
// stream died while its handler was mid-transfer.
var errStreamConnDead = errors.New("fs: stream connection closed")

// srvStream is the server half of one open stream: the handler's window
// onto the shared connection. Inbound frames for the stream's id arrive
// on recv (bounded; overflow is a peer credit violation that tears the
// connection down); outbound frames go through the connection's shared
// write mutex. credits tracks the send allowance granted by the peer.
type srvStream struct {
	id   uint32
	w    io.Writer
	wmu  *sync.Mutex
	conn net.Conn
	recv chan srvMsg
	done chan struct{}

	mu      sync.Mutex
	err     error
	credits int
}

func newSrvStream(id uint32, w io.Writer, wmu *sync.Mutex, conn net.Conn) *srvStream {
	return &srvStream{
		id:   id,
		w:    w,
		wmu:  wmu,
		conn: conn,
		// The queue must absorb a full credit window of data frames plus
		// interleaved control frames; overflow means the peer ignored the
		// window we granted.
		recv: make(chan srvMsg, proto.MaxStreamWindow+16),
		done: make(chan struct{}),
	}
}

// deliver routes one inbound frame to the handler. It reports false on
// queue overflow (a flow-control violation; the caller tears the
// connection down).
func (st *srvStream) deliver(t proto.Type, payload []byte) bool {
	select {
	case st.recv <- srvMsg{t: t, payload: payload}:
		return true
	default:
		if t == proto.TDataFrame {
			proto.PutChunk(payload)
		}
		return false
	}
}

// fail marks the stream dead (connection-level fault) and wakes the
// handler. Idempotent.
func (st *srvStream) fail(err error) {
	st.mu.Lock()
	if st.err != nil {
		st.mu.Unlock()
		return
	}
	st.err = err
	st.mu.Unlock()
	close(st.done)
}

// fault returns the connection-level error (nil while healthy).
func (st *srvStream) fault() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// drain empties the inbound queue, returning pooled chunks. Called after
// the handler exits, so late frames never leak buffers.
func (st *srvStream) drain() {
	for {
		select {
		case msg := <-st.recv:
			if msg.t == proto.TDataFrame {
				proto.PutChunk(msg.payload)
			}
		default:
			return
		}
	}
}

// recvMsg blocks for the stream's next inbound frame: queued frames
// first, then the connection's death or the deadline. A deadline expiry
// closes the connection — a peer that stops mid-stream would otherwise
// pin a worker slot forever.
func (st *srvStream) recvMsg(timeout time.Duration) (srvMsg, error) {
	select {
	case msg := <-st.recv:
		return msg, nil
	default:
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case msg := <-st.recv:
		return msg, nil
	case <-st.done:
		select {
		case msg := <-st.recv:
			return msg, nil
		default:
		}
		if err := st.fault(); err != nil {
			return srvMsg{}, err
		}
		return srvMsg{}, errStreamConnDead
	case <-timer.C:
		st.conn.Close()
		return srvMsg{}, fmt.Errorf("fs: stream %d stalled: no frame within %v", st.id, timeout)
	}
}

// sendFrame writes one outbound frame under the connection's write
// mutex. A write error closes the connection (matching the RPC path).
func (st *srvStream) sendFrame(t proto.Type, payload []byte) error {
	st.wmu.Lock()
	err := proto.WriteFrameID(st.w, t, st.id, payload)
	st.wmu.Unlock()
	if err != nil {
		st.conn.Close()
	}
	return err
}

// sendData sends one data chunk, consuming a send credit; it blocks
// waiting for replenishment when the window is exhausted.
func (st *srvStream) sendData(chunk []byte, timeout time.Duration) error {
	if err := st.waitCredit(timeout); err != nil {
		return err
	}
	st.mu.Lock()
	st.credits--
	st.mu.Unlock()
	return st.sendFrame(proto.TDataFrame, chunk)
}

// grantCredits seeds the stream's send window (reads: from the open
// request's negotiated window).
func (st *srvStream) grantCredits(n int) {
	st.mu.Lock()
	st.credits += n
	st.mu.Unlock()
}

// waitCredit consumes inbound control frames until a send credit is
// available. A peer abort surfaces as the decoded remote error so the
// handler can stop reading the disk immediately.
func (st *srvStream) waitCredit(timeout time.Duration) error {
	for {
		st.mu.Lock()
		ok := st.credits > 0
		st.mu.Unlock()
		if ok {
			return nil
		}
		msg, err := st.recvMsg(timeout)
		if err != nil {
			return err
		}
		switch msg.t {
		case proto.TStreamCredit:
			c, derr := proto.DecodeStreamCredit(msg.payload)
			if derr != nil {
				st.conn.Close()
				return derr
			}
			st.grantCredits(int(c.N))
		case proto.TStreamAbort:
			return decodeStreamAbort(msg.payload)
		default:
			st.conn.Close()
			return fmt.Errorf("fs: unexpected frame type %d on read stream", msg.t)
		}
	}
}

// sendEnd terminates the stream cleanly.
func (st *srvStream) sendEnd(buffered bool) error {
	return st.sendFrame(proto.TStreamEnd, proto.StreamEnd{Buffered: buffered}.Encode())
}

// sendAbort terminates the stream with a typed failure; the connection
// and its other streams stay healthy.
func (st *srvStream) sendAbort(err error) {
	_ = st.sendFrame(proto.TStreamAbort, errorPayload(err))
}

// decodeStreamAbort turns a peer's abort payload into an error.
func decodeStreamAbort(payload []byte) error {
	em, derr := proto.DecodeErrorMsg(payload)
	if derr != nil {
		return fmt.Errorf("fs: undecodable stream abort: %w", derr)
	}
	return fmt.Errorf("fs: stream aborted by peer: %s", em.Msg)
}

func serveV2(conn net.Conn, w io.Writer, handle handlerFunc, shandle streamHandlerFunc, lim connLimits) {
	var (
		wg      sync.WaitGroup
		writeMu sync.Mutex
		// One handler goroutine per in-flight request, bounded by a slot
		// semaphore. (A persistent worker pool was tried and measured
		// ~20% slower on the load benchmarks: every hand-off through a
		// shared channel pays a contended wake-up, while a fresh
		// goroutine usually runs on the spawning P's runnext slot.)
		slots = make(chan struct{}, lim.workers)

		smu     sync.Mutex
		streams = make(map[uint32]*srvStream)
	)
	addStream := func(st *srvStream) (ok, dup bool) {
		smu.Lock()
		defer smu.Unlock()
		if _, d := streams[st.id]; d {
			return false, true
		}
		if len(streams) >= lim.streams {
			return false, false
		}
		streams[st.id] = st
		return true, false
	}
	getStream := func(id uint32) *srvStream {
		smu.Lock()
		defer smu.Unlock()
		return streams[id]
	}
	dropStream := func(id uint32) {
		smu.Lock()
		delete(streams, id)
		smu.Unlock()
	}

	for {
		t, id, n, err := proto.ReadFrameHeader(conn)
		if err != nil {
			break
		}
		base := t &^ proto.FlagTraced
		switch base {
		case proto.TDataFrame, proto.TStreamCredit, proto.TStreamEnd, proto.TStreamAbort:
			st := getStream(id)
			if st == nil {
				// Late frame for a stream whose handler already finished
				// (e.g. an abort racing our end): discard, keep framing.
				if _, err := io.CopyN(io.Discard, conn, int64(n)); err != nil {
					goto out
				}
				continue
			}
			var payload []byte
			if base == proto.TDataFrame {
				payload = proto.GetChunk(n)
			} else {
				payload = make([]byte, n)
			}
			if _, err := io.ReadFull(conn, payload); err != nil {
				if base == proto.TDataFrame {
					proto.PutChunk(payload)
				}
				goto out
			}
			if !st.deliver(base, payload) {
				// Credit violation: the peer flooded past the granted
				// window. The connection can no longer be trusted.
				goto out
			}
		case proto.TStreamReadReq, proto.TStreamWriteReq:
			payload := make([]byte, n)
			if _, err := io.ReadFull(conn, payload); err != nil {
				goto out
			}
			t, payload, sc, herr := proto.ExtractContext(t, payload)
			if herr != nil {
				writeMu.Lock()
				werr := proto.WriteFrameID(w, proto.TError, id, errorPayload(herr))
				writeMu.Unlock()
				if werr != nil {
					goto out
				}
				continue
			}
			if shandle == nil {
				// This daemon has no data plane (the metadata server):
				// reject the open with a typed error; the connection and
				// its other round trips stay healthy.
				writeMu.Lock()
				werr := proto.WriteFrameID(w, proto.TError, id,
					errorPayload(fmt.Errorf("unexpected message type %d", t)))
				writeMu.Unlock()
				if werr != nil {
					goto out
				}
				continue
			}
			st := newSrvStream(id, w, &writeMu, conn)
			ok, dup := addStream(st)
			if dup {
				// Duplicate open for a live id: protocol violation.
				goto out
			}
			if !ok {
				// Stream cap: reject the open, keep the connection (and
				// every running stream on it) healthy.
				writeMu.Lock()
				werr := proto.WriteFrameID(w, proto.TError, id,
					errorPayload(fmt.Errorf("%w: too many open streams on one connection", ErrNodeUnavailable)))
				writeMu.Unlock()
				if werr != nil {
					goto out
				}
				continue
			}
			wg.Add(1)
			go func(t proto.Type, payload []byte, sc telemetry.SpanContext, st *srvStream) {
				defer wg.Done()
				shandle(t, payload, sc, st)
				dropStream(st.id)
				st.drain()
			}(t, payload, sc, st)
		default:
			payload := make([]byte, n)
			if _, err := io.ReadFull(conn, payload); err != nil {
				goto out
			}
			slots <- struct{}{}
			wg.Add(1)
			go func(t proto.Type, id uint32, payload []byte) {
				defer wg.Done()
				defer func() { <-slots }()
				t, payload, sc, herr := proto.ExtractContext(t, payload)
				var rt proto.Type
				var rp []byte
				if herr == nil {
					rt, rp, herr = handle(t, payload, sc)
				}
				if herr != nil {
					rt, rp = proto.TError, errorPayload(herr)
				}
				writeMu.Lock()
				werr := proto.WriteFrameID(w, rt, id, rp)
				writeMu.Unlock()
				if werr != nil {
					// A response we cannot deliver poisons the stream for
					// the peer anyway; close so the read loop exits too.
					conn.Close()
				}
			}(t, id, payload)
		}
	}
out:
	conn.Close()
	// Fail every open stream so mid-transfer handlers unblock, then wait
	// for all workers (RPC and stream) to finish.
	smu.Lock()
	doomed := make([]*srvStream, 0, len(streams))
	for _, st := range streams {
		doomed = append(doomed, st)
	}
	smu.Unlock()
	for _, st := range doomed {
		st.fail(errStreamConnDead)
	}
	wg.Wait()
}
