package fs

import (
	"errors"
	"net"
	"strings"
	"time"

	"eevfs/internal/proto"
)

// ErrNodeUnavailable marks operations refused (or failed) because the
// target storage node is unhealthy: partitioned, crashed, or repeatedly
// timing out. Callers check it with errors.Is; over the wire it travels
// as proto.CodeUnavailable and the client maps it back.
var ErrNodeUnavailable = errors.New("node unavailable")

// ErrFileNotFound marks requests naming an unknown file. Over the wire it
// travels as proto.CodeNotFound.
var ErrFileNotFound = errors.New("no such file")

// ErrNotPrimary marks client operations sent to a replication follower.
// Over the wire it travels as proto.CodeNotPrimary with a redirect to
// the address the follower believes is primary; the client retries
// there.
var ErrNotPrimary = errors.New("not the primary metadata server")

// notPrimaryError is the server-side carrier for ErrNotPrimary: it holds
// the redirect hint that errorPayload puts on the wire.
type notPrimaryError struct {
	primary string // believed primary address; "" when unknown (election pending)
}

func (e *notPrimaryError) Error() string {
	if e.primary == "" {
		return "fs: not the primary metadata server (election pending)"
	}
	return "fs: not the primary metadata server; primary is " + e.primary
}

func (e *notPrimaryError) Is(target error) bool { return target == ErrNotPrimary }

// redirectHint extracts the primary-address hint from a (possibly
// wrapped) remote not-primary error.
func redirectHint(err error) string {
	var re *proto.RemoteError
	if errors.As(err, &re) {
		return re.Redirect
	}
	return ""
}

// isRemoteErr reports whether err is the peer's application-level
// failure (a typed proto.RemoteError — previously detected by slicing
// err.Error(), which broke on wrapped errors).
func isRemoteErr(err error) bool {
	var re *proto.RemoteError
	return errors.As(err, &re)
}

// isTransportErr reports whether err died below the application layer
// (dial failure, timeout, reset, short frame).
func isTransportErr(err error) bool {
	var te *proto.TransportError
	return errors.As(err, &te)
}

// errCode classifies an error for the wire.
func errCode(err error) proto.Code {
	var re *proto.RemoteError
	switch {
	case errors.Is(err, ErrNotPrimary):
		return proto.CodeNotPrimary
	case errors.Is(err, ErrNodeUnavailable):
		return proto.CodeUnavailable
	case errors.Is(err, ErrFileNotFound):
		return proto.CodeNotFound
	case errors.As(err, &re):
		return re.Code // forwarded node error keeps its classification
	default:
		return proto.CodeGeneric
	}
}

// mapRemote re-types a classified remote error so client-side callers can
// use errors.Is(err, ErrNodeUnavailable) / errors.Is(err, ErrFileNotFound)
// across the wire gap.
func mapRemote(err error) error {
	var re *proto.RemoteError
	if !errors.As(err, &re) {
		return err
	}
	switch re.Code {
	case proto.CodeUnavailable:
		return &classifiedError{err: err, is: ErrNodeUnavailable}
	case proto.CodeNotFound:
		return &classifiedError{err: err, is: ErrFileNotFound}
	case proto.CodeNotPrimary:
		return &classifiedError{err: err, is: ErrNotPrimary}
	default:
		return err
	}
}

// classifiedError carries a remote error plus the sentinel it maps to.
type classifiedError struct {
	err error
	is  error
}

func (e *classifiedError) Error() string        { return e.err.Error() }
func (e *classifiedError) Unwrap() error        { return e.err }
func (e *classifiedError) Is(target error) bool { return target == e.is }

// deadlineConn arms a write deadline before every Write, so responding to
// a stalled or partitioned peer cannot hang a serving goroutine forever.
type deadlineConn struct {
	net.Conn
	writeTimeout time.Duration
}

func (c *deadlineConn) Write(p []byte) (int, error) {
	if c.writeTimeout > 0 {
		c.Conn.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	return c.Conn.Write(p)
}

// errorPayload builds the TError frame body for err. Remote-error text is
// forwarded without re-prefixing ("remote: remote: ..." chains confuse
// more than they explain).
func errorPayload(err error) []byte {
	msg := err.Error()
	msg = strings.TrimPrefix(msg, "remote: ")
	var np *notPrimaryError
	var redirect string
	if errors.As(err, &np) {
		redirect = np.primary
	}
	return proto.ErrorMsg{Msg: msg, Code: errCode(err), Redirect: redirect}.Encode()
}
