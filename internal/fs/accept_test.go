package fs

import (
	"errors"
	"net"
	"testing"
	"time"
)

// flakyListener serves a scripted sequence of Accept outcomes: transient
// errors (nil conn, non-closed error), connections, and finally
// net.ErrClosed.
type flakyListener struct {
	script []error // nil entry = hand out a connection
	pos    int
}

var errTransient = errors.New("accept: too many open files")

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.pos >= len(l.script) {
		return nil, net.ErrClosed
	}
	err := l.script[l.pos]
	l.pos++
	if err != nil {
		return nil, err
	}
	c, s := net.Pipe()
	s.Close()
	return c, nil
}

func (l *flakyListener) Close() error   { return nil }
func (l *flakyListener) Addr() net.Addr { return &net.TCPAddr{} }

// TestAcceptConnsSurvivesTransientErrors: an EMFILE-style burst must not
// kill the accept loop — connections after the burst are still served,
// and the loop ends only on the listener's closure. The original loop
// returned on the first error, leaving a daemon alive but deaf.
func TestAcceptConnsSurvivesTransientErrors(t *testing.T) {
	ln := &flakyListener{script: []error{
		nil, errTransient, errTransient, nil, errTransient, nil,
	}}
	var got int
	var logs int
	done := make(chan struct{})
	go func() {
		defer close(done)
		acceptConns(ln,
			func(string, ...any) { logs++ },
			func(c net.Conn) { got++; c.Close() })
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("acceptConns did not exit on listener closure")
	}
	if got != 3 {
		t.Fatalf("served %d connections through the error burst, want 3", got)
	}
	if logs != 3 {
		t.Fatalf("logged %d transient errors, want 3", logs)
	}
}

// TestHintTableAggregates: the incremental per-file aggregate must match
// what a full journal walk would have computed — counts, first/last
// times, and absence below two observations.
func TestHintTableAggregates(t *testing.T) {
	var ht hintTable
	// File 0: three accesses out of order; file 1: one access (no hint);
	// file 2000 forces a chunk grow.
	ht.note(0, 5.0)
	ht.note(0, 1.0)
	ht.note(0, 9.0)
	ht.note(1, 3.0)
	ht.note(2000, 0.0)
	ht.note(2000, 4.0)

	type agg struct {
		count       int64
		first, last float64
	}
	got := map[int64]agg{}
	ht.each(4096, func(id, count int64, first, last float64) {
		got[id] = agg{count, first, last}
	})
	want := map[int64]agg{
		0:    {3, 1.0, 9.0},
		1:    {1, 3.0, 3.0},
		2000: {2, 0.0, 4.0},
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d files, want %d: %v", len(got), len(want), got)
	}
	for id, w := range want {
		if got[id] != w {
			t.Errorf("file %d: got %+v, want %+v", id, got[id], w)
		}
	}
	// A horizon below the populated ids must not visit them.
	n := 0
	ht.each(1, func(int64, int64, float64, float64) { n++ })
	if n != 1 {
		t.Fatalf("horizon 1 visited %d files, want 1", n)
	}
}
