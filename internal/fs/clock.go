// Package fs is the EEVFS prototype over real TCP sockets: a storage
// server daemon that owns coarse metadata and popularity, storage node
// daemons that manage directories standing in for buffer and data disks,
// and a client library (Section IV of the paper).
//
// Disks are directories, but their performance and power behaviour comes
// from the same disk.Model state machines the simulator uses: service and
// transition latencies are injected as (scaled) sleeps, and energy is
// integrated over the model-time dwell in each state. TimeScale > 1 runs
// the model faster than real time, which is how the test suite exercises
// spin-downs in milliseconds.
package fs

import (
	"time"

	"eevfs/internal/simtime"
)

// Clock maps wall-clock time to model seconds. TimeScale is the number of
// model seconds that elapse per real second (1 = real time).
type Clock struct {
	start time.Time
	scale float64
}

// NewClock starts a model clock. Scale <= 0 defaults to 1.
func NewClock(scale float64) *Clock {
	if scale <= 0 {
		scale = 1
	}
	return &Clock{start: time.Now(), scale: scale}
}

// Now returns the current model time.
func (c *Clock) Now() simtime.Time {
	return simtime.Time(time.Since(c.start).Seconds() * c.scale)
}

// Sleep blocks for the given number of model seconds.
func (c *Clock) Sleep(modelSec float64) {
	if modelSec <= 0 {
		return
	}
	time.Sleep(time.Duration(modelSec / c.scale * float64(time.Second)))
}

// Scale returns the model-seconds-per-real-second factor.
func (c *Clock) Scale() float64 { return c.scale }

// RealDuration converts a model duration to the real duration it takes.
func (c *Clock) RealDuration(modelSec float64) time.Duration {
	return time.Duration(modelSec / c.scale * float64(time.Second))
}
