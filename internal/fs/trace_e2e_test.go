package fs

import (
	"io"
	"log"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"eevfs/internal/disk"
	"eevfs/internal/simtest/leak"
	"eevfs/internal/telemetry"
)

// tracedGroup is a replicated server group plus nodes that all share one
// tracer and one energy ledger, so a single-process test can assemble
// the complete cross-process span tree of a request and join it against
// the per-request joule attribution.
type tracedGroup struct {
	*testGroup
	tracer *telemetry.Tracer
	energy *telemetry.EnergyLedger
}

// startTracedGroup mirrors startGroup but threads a shared Tracer into
// every server and a shared Tracer+EnergyLedger into every node. Nodes
// run without latency injection and with a short idle threshold at
// TimeScale 100, so data disks reach standby ~10ms (real) after their
// last request and modeled durations (spin-up, service) are exact — the
// property the energy assertions lean on.
func startTracedGroup(t *testing.T, numServers, numNodes int, mirror bool) *tracedGroup {
	t.Helper()
	leak.Check(t)
	quiet := log.New(io.Discard, "", 0)
	tracer := telemetry.NewTracer(telemetry.TracerConfig{Capacity: 1 << 16})
	energy := telemetry.NewEnergyLedger(0)

	g := &testGroup{t: t, closed: make([]bool, numServers)}
	var nodeAddrs []string
	for i := 0; i < numNodes; i++ {
		n, err := StartNode(NodeConfig{
			Addr:             "127.0.0.1:0",
			RootDir:          t.TempDir(),
			DataDisks:        2,
			DataModel:        disk.ModelType1,
			BufferModel:      disk.ModelType1,
			IdleThresholdSec: 1,
			TimeScale:        100,
			WriteTimeout:     time.Second,
			Logger:           quiet,
			Tracer:           tracer,
			Energy:           energy,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		g.nodes = append(g.nodes, n)
		nodeAddrs = append(nodeAddrs, n.Addr())
	}

	lns := make([]net.Listener, numServers)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		g.addrs = append(g.addrs, ln.Addr().String())
	}
	for i := 0; i < numServers; i++ {
		srv, err := StartServer(ServerConfig{
			NodeAddrs: nodeAddrs,
			Logger:    quiet,
			Transport: chaosTransport(),
			Health: HealthConfig{
				FailThreshold: 2,
				ProbeInterval: 20 * time.Millisecond,
			},
			WriteTimeout:   time.Second,
			Peers:          g.addrs,
			Self:           i,
			Listener:       lns[i],
			MirrorPrefetch: mirror,
			Tracer:         tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		idx := i
		t.Cleanup(func() { g.kill(idx) })
		g.servers = append(g.servers, srv)
	}
	return &tracedGroup{testGroup: g, tracer: tracer, energy: energy}
}

// waitDiskState polls one node disk until it reaches the wanted power
// state.
func waitDiskState(t *testing.T, nd *nodeDisk, want disk.PowerState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		nd.mu.Lock()
		st := nd.d.State()
		nd.mu.Unlock()
		if st == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("disk %s never reached %v", nd.label, want)
}

// lastTrace returns the spans of the newest trace whose root span has
// the given name, keyed off the recorded ring.
func lastTrace(tr *telemetry.Tracer, rootName string) []telemetry.SpanData {
	spans := tr.Spans()
	var rootID uint64
	var rootStart int64
	for _, d := range spans {
		if d.ParentID == 0 && d.Name == rootName && d.StartNs >= rootStart {
			rootID, rootStart = d.TraceID, d.StartNs
		}
	}
	if rootID == 0 {
		return nil
	}
	var out []telemetry.SpanData
	for _, d := range spans {
		if d.TraceID == rootID {
			out = append(out, d)
		}
	}
	return out
}

// spanBy returns the spans in the trace matching service+name.
func spanBy(trace []telemetry.SpanData, service, name string) []telemetry.SpanData {
	var out []telemetry.SpanData
	for _, d := range trace {
		if d.Service == service && d.Name == name {
			out = append(out, d)
		}
	}
	return out
}

func attrVal(d telemetry.SpanData, key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// TestTraceE2EReplicatedRead drives client operations through a
// 3-server replicated group over 2 nodes and asserts the resulting span
// trees cover, end to end:
//
//   - a client retry following a not-primary redirect (the read's first
//     round trip lands on a follower),
//   - the primary's fan-out to every node (prefetch) and to its
//     replication peers (op-log appends),
//   - the node-level disk work, including a buffer-disk spin-up,
//   - a node fault surviving via the mirrored replica,
//
// and that the energy ledger attributes exactly the modeled joules
// (spin-up + active service) to the read that woke the disk.
func TestTraceE2EReplicatedRead(t *testing.T) {
	g := startTracedGroup(t, 3, 2, true)
	if _, err := g.currentPrimary(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Seed two files through a primary-first client: one per node via
	// round-robin placement.
	seedCl, err := DialCluster(g.addrs, ClientConfig{
		Transport: chaosTransport(), Tracer: g.tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seedCl.Close()
	hot := make([]byte, 64<<10)
	for i := range hot {
		hot[i] = byte(i)
	}
	if err := seedCl.Create("hot", hot); err != nil {
		t.Fatal(err)
	}
	if err := seedCl.Create("cold", []byte("cold content")); err != nil {
		t.Fatal(err)
	}

	// Let every serviced data disk spin down to standby.
	for _, n := range g.nodes {
		for _, nd := range n.data {
			nd.mu.Lock()
			serviced := nd.d.Stats().Requests > 0
			nd.mu.Unlock()
			if serviced {
				waitDiskState(t, nd, disk.Standby)
			}
		}
	}

	// A fresh client dialed follower-first: its first operation must walk
	// a not-primary redirect before reaching the primary, and the read
	// lands on a standby disk — retry, redirect, spin-up, and service all
	// in one trace.
	followerFirst := []string{g.addrs[1], g.addrs[0], g.addrs[2]}
	cl, err := DialCluster(followerFirst, ClientConfig{
		Transport: chaosTransport(), Tracer: g.tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	data, fromBuffer, err := cl.Read("hot")
	if err != nil {
		t.Fatal(err)
	}
	if fromBuffer || len(data) != len(hot) {
		t.Fatalf("read: fromBuffer=%v len=%d", fromBuffer, len(data))
	}

	trace := lastTrace(g.tracer, "client.read")
	if len(trace) == 0 {
		t.Fatal("no client.read trace recorded")
	}
	if or := telemetry.Orphans(trace); len(or) != 0 {
		t.Fatalf("read trace has orphan spans: %+v", or)
	}
	// Client retry across the redirect: at least two server round-trip
	// attempts, the first of which failed with not-primary.
	attempts := spanBy(trace, "client", "client.rt.server")
	if len(attempts) < 2 {
		t.Fatalf("read trace has %d server attempts, want >= 2 (redirect retry)", len(attempts))
	}
	var sawRedirect bool
	for _, a := range attempts {
		if strings.Contains(a.Err, "not the primary") || attrVal(a, "redirect") != "" {
			sawRedirect = true
		}
	}
	if !sawRedirect {
		t.Fatalf("no attempt span shows the not-primary redirect: %+v", attempts)
	}
	// The primary's handler span, the node round trip, and the node-side
	// disk work — including the spin-up the standby disk paid.
	for _, want := range [][2]string{
		{"server", "server.lookup"},
		{"client", "client.rt.node"},
		{"node", "node.read"},
		{"node", "disk.read"},
		{"node", "disk.spinup"},
	} {
		if len(spanBy(trace, want[0], want[1])) == 0 {
			t.Fatalf("read trace missing %s/%s span; got %+v", want[0], want[1], trace)
		}
	}
	homeAddr := attrVal(spanBy(trace, "client", "client.rt.node")[0], "peer")
	if homeAddr == "" {
		t.Fatal("node round-trip span missing peer annotation")
	}

	// Energy attribution: the read woke one standby disk and ran one
	// service on it, so its trace must be charged exactly the modeled
	// spin-up plus active-service joules (latency injection is off, so
	// dwell times are the model's own — same tolerance discipline as the
	// simulation oracles).
	m := disk.ModelType1
	wantJ := m.SpinUpJ + m.PActive*m.ServiceTime(int64(len(hot)))
	gotJ := g.energy.TraceJ(trace[0].TraceID)
	if math.Abs(gotJ-wantJ) > 1e-6*wantJ {
		t.Fatalf("read trace energy = %.9f J, want %.9f J", gotJ, wantJ)
	}
	var spanJ float64
	for _, d := range trace {
		spanJ += d.EnergyJ
	}
	if math.Abs(spanJ-wantJ) > 1e-6*wantJ {
		t.Fatalf("span-level energy = %.9f J, want %.9f J", spanJ, wantJ)
	}

	// Prefetch fans out from the primary to every node and replicates
	// the resulting metadata ops to both peers; the trace must cover the
	// whole fan-out.
	if _, err := cl.Prefetch(2); err != nil {
		t.Fatal(err)
	}
	ptrace := lastTrace(g.tracer, "client.prefetch")
	if or := telemetry.Orphans(ptrace); len(or) != 0 {
		t.Fatalf("prefetch trace has orphan spans: %+v", or)
	}
	if got := len(spanBy(ptrace, "server", "node.prefetch")); got < 2 {
		t.Fatalf("prefetch trace shows fan-out to %d nodes, want >= 2", got)
	}
	if got := len(spanBy(ptrace, "server", "repl.append.peer")); got < 1 {
		t.Fatalf("prefetch trace shows no replication append spans")
	}

	// Node fault: kill the home node of "hot" and keep reading until the
	// prober notices and the lookup falls back to the mirrored replica on
	// the surviving node.
	for _, n := range g.nodes {
		if n.Addr() == homeAddr {
			n.Close()
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	var recovered bool
	for time.Now().Before(deadline) {
		data, fromBuffer, err = cl.Read("hot")
		if err == nil {
			ft := lastTrace(g.tracer, "client.read")
			nrt := spanBy(ft, "client", "client.rt.node")
			if len(nrt) > 0 && nrt[0].Err == "" && attrVal(nrt[0], "peer") != homeAddr {
				if !fromBuffer {
					t.Fatalf("mirror fallback read not served from buffer replica")
				}
				if or := telemetry.Orphans(ft); len(or) != 0 {
					t.Fatalf("fallback trace has orphan spans: %+v", or)
				}
				recovered = true
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("read never recovered onto the mirror replica")
	}

	// Ledger-internal conservation, the same invariant the simulation
	// oracles enforce on the disks: everything attributed somewhere.
	snap := g.energy.Snapshot()
	var perTrace float64
	for _, j := range snap.PerTrace {
		perTrace += j
	}
	if math.Abs(snap.TotalJ-(snap.BackgroundJ+perTrace)) > 1e-6*snap.TotalJ {
		t.Fatalf("energy not conserved: total %.9f != background %.9f + traces %.9f",
			snap.TotalJ, snap.BackgroundJ, perTrace)
	}

	// Finally: the whole recorded ring is a forest — every span's parent
	// resolves within its own trace.
	if or := telemetry.Orphans(g.tracer.Spans()); len(or) != 0 {
		t.Fatalf("recorded ring has %d orphan spans: %+v", len(or), or)
	}
}

// TestTraceTreeSurvivesPrimaryKill asserts trace trees stay well-formed
// (no orphan spans) when the primary dies mid-workload and the client
// redials onto the new primary — the spans of interrupted round trips
// must still close into their trees.
func TestTraceTreeSurvivesPrimaryKill(t *testing.T) {
	g := startTracedGroup(t, 3, 1, false)
	pi, err := g.currentPrimary(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialCluster(g.addrs, ClientConfig{
		Transport: chaosTransport(), Tracer: g.tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Create("steady", []byte("steady content")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := cl.Read("steady"); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the primary and keep the workload going until the client has
	// redialed onto the new primary and succeeded repeatedly.
	g.kill(pi)
	deadline := time.Now().Add(10 * time.Second)
	succeeded := 0
	sawFailure := false
	for succeeded < 5 && time.Now().Before(deadline) {
		if _, _, err := cl.Read("steady"); err != nil {
			sawFailure = true
			time.Sleep(10 * time.Millisecond)
			continue
		}
		succeeded++
	}
	if succeeded < 5 {
		t.Fatal("workload never recovered after primary kill")
	}

	spans := g.tracer.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	if or := telemetry.Orphans(spans); len(or) != 0 {
		t.Fatalf("%d orphan spans after primary kill: %+v", len(or), or)
	}
	// The kill must actually be visible in the trace record: either a
	// failed read attempt or an errored span.
	var sawErrSpan bool
	for _, d := range spans {
		if d.Err != "" {
			sawErrSpan = true
			break
		}
	}
	if !sawFailure && !sawErrSpan {
		t.Log("note: failover completed without an observable failed attempt")
	}
}
