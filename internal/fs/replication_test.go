package fs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"eevfs/internal/disk"
	"eevfs/internal/faultnet"
	"eevfs/internal/proto"
	"eevfs/internal/simtest/leak"
)

// startGroup boots numServers metadata servers over numNodes storage
// nodes. Listeners are pre-bound so every member knows the full peer
// list before any member starts; server 0 boots as primary. Individual
// servers are killed through the returned group (Close is idempotent).
type testGroup struct {
	t       *testing.T
	servers []*Server
	addrs   []string // server client addresses
	nodes   []*Node
	closed  []bool
}

func startGroup(t *testing.T, numServers, numNodes int, tweak func(int, *ServerConfig)) *testGroup {
	t.Helper()
	leak.Check(t)
	quiet := log.New(io.Discard, "", 0)

	g := &testGroup{t: t, closed: make([]bool, numServers)}
	var nodeAddrs []string
	for i := 0; i < numNodes; i++ {
		n, err := StartNode(NodeConfig{
			Addr:             "127.0.0.1:0",
			RootDir:          t.TempDir(),
			DataDisks:        2,
			DataModel:        disk.ModelType1,
			BufferModel:      disk.ModelType1,
			IdleThresholdSec: 5,
			TimeScale:        2000,
			WriteTimeout:     time.Second,
			Logger:           quiet,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		g.nodes = append(g.nodes, n)
		nodeAddrs = append(nodeAddrs, n.Addr())
	}

	lns := make([]net.Listener, numServers)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		g.addrs = append(g.addrs, ln.Addr().String())
	}
	for i := 0; i < numServers; i++ {
		cfg := ServerConfig{
			NodeAddrs: nodeAddrs,
			Logger:    quiet,
			Transport: chaosTransport(),
			Health: HealthConfig{
				FailThreshold: 2,
				ProbeInterval: 20 * time.Millisecond,
			},
			WriteTimeout: time.Second,
			Peers:        g.addrs,
			Self:         i,
			Listener:     lns[i],
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		srv, err := StartServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		idx := i
		t.Cleanup(func() { g.kill(idx) })
		g.servers = append(g.servers, srv)
	}
	return g
}

func (g *testGroup) kill(i int) {
	if g.closed[i] {
		return
	}
	g.closed[i] = true
	g.servers[i].Close()
}

// currentPrimary polls the surviving servers until exactly one claims
// primary, and returns its index.
func (g *testGroup) currentPrimary(timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		idx := -1
		count := 0
		for i, srv := range g.servers {
			if g.closed[i] {
				continue
			}
			if srv.IsPrimary() {
				idx = i
				count++
			}
		}
		if count == 1 {
			return idx, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return -1, errors.New("no unique primary emerged")
}

// waitConverged polls until every surviving server reports the same
// file set as the primary.
func (g *testGroup) waitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		pi, err := g.currentPrimary(timeout)
		if err != nil {
			return err
		}
		want := g.servers[pi].Files()
		ok := true
		for i, srv := range g.servers {
			if g.closed[i] || i == pi {
				continue
			}
			got := srv.Files()
			if !reflect.DeepEqual(got, want) {
				ok = false
				last = fmt.Sprintf("server %d has %d files, primary %d has %d", i, len(got), pi, len(want))
				break
			}
		}
		if ok {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("replicas never converged: %s", last)
}

// TestReplicatedGroupServes: a 3-server group behaves like one server —
// creates, reads, deletes — and followers redirect rather than serve.
func TestReplicatedGroupServes(t *testing.T) {
	g := startGroup(t, 3, 2, nil)

	// Dialing a follower first must work: the redirect points the client
	// at the primary.
	cl, err := DialCluster([]string{g.addrs[2], g.addrs[1], g.addrs[0]}, ClientConfig{
		Transport: chaosTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	content := map[string][]byte{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("rep-%d", i)
		data := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		if err := cl.Create(name, data); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		content[name] = data
	}
	for name, want := range content {
		got, _, err := cl.Read(name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %s: wrong content", name)
		}
	}
	if err := cl.Delete("rep-0"); err != nil {
		t.Fatal(err)
	}
	if err := g.waitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Followers hold the same namespace but refuse to serve it.
	follower := g.servers[1]
	if follower.IsPrimary() {
		t.Fatal("server 1 should be a follower")
	}
	if got := len(follower.Files()); got != 5 {
		t.Fatalf("follower has %d files, want 5", got)
	}
	fcl, err := DialConfig(g.addrs[1], ClientConfig{
		Transport:       chaosTransport(),
		FailoverRetries: -1, // do not follow the redirect: we want the raw rejection
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fcl.Close()
	_, _, err = fcl.Read("rep-1")
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("follower read = %v, want ErrNotPrimary", err)
	}
	if hint := redirectHint(err); hint != g.addrs[0] {
		t.Fatalf("redirect hint %q, want %q", hint, g.addrs[0])
	}
}

// TestFailoverPromotesAndServes: kill the primary; a follower promotes,
// re-registers the nodes, and the same client keeps working.
func TestFailoverPromotesAndServes(t *testing.T) {
	g := startGroup(t, 3, 2, nil)
	cl, err := DialCluster(g.addrs, ClientConfig{Transport: chaosTransport()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Create("before", bytes.Repeat([]byte{'x'}, 256)); err != nil {
		t.Fatal(err)
	}
	g.kill(0)
	pi, err := g.currentPrimary(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pi == 0 {
		t.Fatal("dead server still counted as primary")
	}
	// The acked create survived the crash.
	if got, _, err := cl.Read("before"); err != nil || len(got) != 256 {
		t.Fatalf("read across failover: %d bytes, %v", len(got), err)
	}
	// New mutations land on the new primary.
	if err := cl.Create("after", bytes.Repeat([]byte{'y'}, 128)); err != nil {
		t.Fatalf("create after failover: %v", err)
	}
	if err := g.waitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Node re-registration: the new primary owns a fresh health view.
	deadline := time.Now().Add(5 * time.Second)
	for {
		all := true
		for _, h := range g.servers[pi].Healthy() {
			all = all && h
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("new primary never saw all nodes healthy: %v", g.servers[pi].Healthy())
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, epoch, _ := g.servers[pi].ReplStatus()
	if epoch < 2 {
		t.Fatalf("promotion did not bump the epoch: %d", epoch)
	}
}

// TestChaosFailoverPipelined: clients pipeline creates and reads while
// the primary dies. Invariants: only typed errors surface, and every
// acked create is readable after the dust settles ("no lost creates").
func TestChaosFailoverPipelined(t *testing.T) {
	g := startGroup(t, 3, 2, nil)

	const workers = 4
	const opsPerWorker = 30
	var (
		mu    sync.Mutex
		acked []string
	)
	errCh := make(chan error, workers*opsPerWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := DialCluster(g.addrs, ClientConfig{
				Transport:       chaosTransport(),
				FailoverRetries: 20,
				FailoverBackoff: 10 * time.Millisecond,
			})
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			for i := 0; i < opsPerWorker; i++ {
				name := fmt.Sprintf("w%d-f%d", w, i)
				err := cl.Create(name, bytes.Repeat([]byte{byte('a' + w)}, 64+i))
				if err == nil {
					mu.Lock()
					acked = append(acked, name)
					mu.Unlock()
				} else if !typedTestErr(err) {
					errCh <- fmt.Errorf("create %s failed untyped: %w", name, err)
					return
				}
				if _, _, err := cl.Read(name); err != nil && !typedTestErr(err) {
					errCh <- fmt.Errorf("read %s failed untyped: %w", name, err)
					return
				}
			}
		}(w)
	}
	// Let the workers build up traffic, then kill the primary under them.
	time.Sleep(50 * time.Millisecond)
	g.kill(0)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	pi, err := g.currentPrimary(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Redirect must eventually land on the new primary and serve.
	cl, err := DialCluster(g.addrs, ClientConfig{Transport: chaosTransport()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	have := map[string]bool{}
	for _, fi := range g.servers[pi].Files() {
		have[fi.Name] = true
	}
	mu.Lock()
	defer mu.Unlock()
	for _, name := range acked {
		if !have[name] {
			t.Fatalf("acked create %s lost across failover (%d acked, %d survived)",
				name, len(acked), len(have))
		}
		if _, _, err := cl.Read(name); err != nil {
			t.Fatalf("acked create %s unreadable after failover: %v", name, err)
		}
	}
}

// typedTestErr mirrors the simtest typedError contract: sentinels,
// remote errors, transport errors. Anything else is an invariant
// violation.
func typedTestErr(err error) bool {
	var te *proto.TransportError
	var re *proto.RemoteError
	return errors.Is(err, ErrNodeUnavailable) || errors.Is(err, ErrFileNotFound) ||
		errors.Is(err, ErrNotPrimary) || errors.As(err, &te) || errors.As(err, &re)
}

// snapshotBytes grabs a follower's state fingerprint under its own
// replication lock, with the member identity zeroed so two different
// followers can be compared byte-for-byte.
func snapshotBytes(s *Server) []byte {
	s.repMu.Lock()
	snap := s.snapshotLocked()
	s.repMu.Unlock()
	snap.From = 0
	return snap.Encode()
}

// TestOpLogReplayDeterminism: two followers fed the same op log land in
// byte-identical states; duplicates ack idempotently; gaps are loud.
func TestOpLogReplayDeterminism(t *testing.T) {
	g := startGroup(t, 3, 2, nil)
	f1, f2 := g.servers[1], g.servers[2]

	// One real create through the group pins both followers at seq 1 and
	// guarantees the primary's initial snapshot resync is behind us, so
	// the hand-fed appends below cannot race it.
	cl, err := DialCluster(g.addrs, ClientConfig{Transport: chaosTransport()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("seed", bytes.Repeat([]byte{'s'}, 32)); err != nil {
		t.Fatal(err)
	}
	if err := g.waitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	ops := []proto.RepOp{
		{Seq: 2, Kind: proto.RepOpCreate, Name: "a", ID: 10, Size: 100, Node: 0, Cursor: 1},
		{Seq: 3, Kind: proto.RepOpCreate, Name: "b", ID: 11, Size: 200, Node: 1, Cursor: 2},
		{Seq: 4, Kind: proto.RepOpAccess, Records: []proto.RepAccess{
			{FileID: 10, TimeS: 1, Size: 100}, {FileID: 11, TimeS: 2, Size: 200},
		}},
		{Seq: 5, Kind: proto.RepOpReplica, Name: "a", Replica: 2},
		{Seq: 6, Kind: proto.RepOpDelete, Name: "b"},
	}
	req := proto.RepAppendReq{Epoch: 1, From: 0, Ops: ops}
	for _, f := range []*Server{f1, f2} {
		resp, err := f.handleRepAppend(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.LastSeq != 6 {
			t.Fatalf("LastSeq %d, want 6", resp.LastSeq)
		}
	}
	if !reflect.DeepEqual(f1.Files(), f2.Files()) {
		t.Fatalf("replica states diverge:\n%v\nvs\n%v", f1.Files(), f2.Files())
	}
	before := snapshotBytes(f1)
	if !bytes.Equal(before, snapshotBytes(f2)) {
		t.Fatal("same op log produced different snapshot bytes")
	}

	// Duplicate delivery: idempotent ack, state unchanged.
	resp, err := f1.handleRepAppend(req)
	if err != nil || resp.LastSeq != 6 {
		t.Fatalf("duplicate delivery: %+v, %v", resp, err)
	}
	if !bytes.Equal(before, snapshotBytes(f1)) {
		t.Fatal("duplicate delivery mutated state")
	}

	// Gap: rejected with the gap marker, nothing applied.
	gap := proto.RepAppendReq{Epoch: 1, From: 0, Ops: []proto.RepOp{
		{Seq: 9, Kind: proto.RepOpCreate, Name: "z", ID: 8, Size: 1, Node: 0},
	}}
	if _, err := f1.handleRepAppend(gap); err == nil || !strings.Contains(err.Error(), repMsgGap) {
		t.Fatalf("gap delivery: %v, want %q", err, repMsgGap)
	}
	if _, ok := f1.meta.LookupName("z"); ok {
		t.Fatal("gapped op was applied")
	}

	// Stale epoch: fenced.
	stale := proto.RepAppendReq{Epoch: 0, From: 0, Ops: nil}
	if _, err := f1.handleRepAppend(stale); err == nil || !strings.Contains(err.Error(), repMsgStaleEpoch) {
		t.Fatalf("stale epoch: %v, want %q", err, repMsgStaleEpoch)
	}
}

// TestReplicaFallbackRead: a mirrored file stays readable while its
// owner is down, and a write invalidates the mirror so no stale bytes
// can ever be served.
func TestReplicaFallbackRead(t *testing.T) {
	leak.Check(t)
	quiet := log.New(io.Discard, "", 0)
	serverNet := faultnet.New(1)
	clientNet := faultnet.New(2)
	var nodeAddrs []string
	for i := 0; i < 2; i++ {
		n, err := StartNode(NodeConfig{
			Addr:             "127.0.0.1:0",
			RootDir:          t.TempDir(),
			DataDisks:        2,
			DataModel:        disk.ModelType1,
			BufferModel:      disk.ModelType1,
			IdleThresholdSec: 5,
			TimeScale:        2000,
			WriteTimeout:     time.Second,
			Logger:           quiet,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		nodeAddrs = append(nodeAddrs, n.Addr())
	}
	srv, err := StartServer(ServerConfig{
		Addr:           "127.0.0.1:0",
		NodeAddrs:      nodeAddrs,
		Logger:         quiet,
		Dialer:         serverNet,
		Transport:      chaosTransport(),
		MirrorPrefetch: true,
		Health: HealthConfig{
			FailThreshold: 2,
			ProbeInterval: 20 * time.Millisecond,
		},
		WriteTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := DialConfig(srv.Addr(), ClientConfig{
		Dialer:    clientNet,
		Transport: chaosTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	data := bytes.Repeat([]byte{'m'}, 2048)
	if err := cl.Create("hot", data); err != nil {
		t.Fatal(err)
	}
	// Journal some popularity, then prefetch: the mirror rides along.
	for i := 0; i < 3; i++ {
		if _, _, err := cl.Read("hot"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Prefetch(1); err != nil {
		t.Fatal(err)
	}
	fi, ok := srv.meta.LookupName("hot")
	if !ok {
		t.Fatal("hot vanished")
	}
	ridx, has := fi.ReplicaNode()
	if !has {
		t.Fatal("prefetch did not mirror the file")
	}
	if ridx == fi.Node {
		t.Fatal("mirror landed on the owner")
	}

	// Partition the owner; the read must be served from the mirror.
	ownerAddr := srv.cfg.NodeAddrs[fi.Node]
	serverNet.Partition(ownerAddr)
	clientNet.Partition(ownerAddr)
	waitHealthy(t, srv, fi.Node, false)
	got, _, err := cl.Read("hot")
	if err != nil {
		t.Fatalf("read with owner down: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mirror served wrong bytes")
	}
	// Writes never go to the mirror: with the owner down they fail typed.
	if _, err := cl.Write("hot", bytes.Repeat([]byte{'n'}, 64)); !errors.Is(err, ErrNodeUnavailable) {
		t.Fatalf("write with owner down = %v, want ErrNodeUnavailable", err)
	}

	// Heal, overwrite (write-intent lookup drops the mirror), re-kill the
	// owner: the stale copy must NOT be served.
	serverNet.Heal(ownerAddr)
	clientNet.Heal(ownerAddr)
	waitHealthy(t, srv, fi.Node, true)
	if _, err := cl.Write("hot", bytes.Repeat([]byte{'n'}, 64)); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if fi, _ := srv.meta.LookupName("hot"); fi.Replica != 0 {
		t.Fatalf("write did not invalidate the mirror marker: %d", fi.Replica)
	}
	serverNet.Partition(ownerAddr)
	clientNet.Partition(ownerAddr)
	waitHealthy(t, srv, fi.Node, false)
	if _, _, err := cl.Read("hot"); !errors.Is(err, ErrNodeUnavailable) {
		t.Fatalf("read after invalidation = %v, want ErrNodeUnavailable (stale mirror must not serve)", err)
	}
}

// TestChaosSilentReplicationLoss: with the convergence-bug injection
// armed, an acked create after the silence point must vanish on
// failover — proving the oracle in the simtest battery detects real
// divergence, not a vacuous truth.
func TestChaosSilentReplicationLoss(t *testing.T) {
	g := startGroup(t, 2, 1, func(i int, cfg *ServerConfig) {
		if i == 0 {
			cfg.ReplChaosSilentAfter = 1
		}
	})
	cl, err := DialCluster(g.addrs, ClientConfig{Transport: chaosTransport()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("replicated", bytes.Repeat([]byte{'r'}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("silent", bytes.Repeat([]byte{'s'}, 64)); err != nil {
		t.Fatal(err)
	}
	g.kill(0)
	pi, err := g.currentPrimary(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, fi := range g.servers[pi].Files() {
		names[fi.Name] = true
	}
	if !names["replicated"] {
		t.Fatal("pre-silence create lost")
	}
	if names["silent"] {
		t.Fatal("injection had no effect: post-silence create replicated anyway")
	}
}
