package fs

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"testing"

	"eevfs/internal/disk"
	"eevfs/internal/proto"
)

// Server ops/sec under concurrent clients: the before/after number for
// the sharded-metadata refactor (a single global mutex serialized every
// lookup; the striped map and atomic access log let distinct connections
// proceed independently).

func benchCluster(b *testing.B) *Server {
	b.Helper()
	quiet := log.New(io.Discard, "", 0)
	n, err := StartNode(NodeConfig{
		Addr:             "127.0.0.1:0",
		RootDir:          b.TempDir(),
		DataDisks:        2,
		DataModel:        disk.ModelType1,
		BufferModel:      disk.ModelType1,
		IdleThresholdSec: 5,
		TimeScale:        2000,
		Logger:           quiet,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { n.Close() })
	srv, err := StartServer(ServerConfig{
		Addr:      "127.0.0.1:0",
		NodeAddrs: []string{n.Addr()},
		Logger:    quiet,
		Health:    HealthConfig{ProbeInterval: -1}, // no probe noise in the numbers
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

func BenchmarkServerLookupParallel(b *testing.B) {
	srv := benchCluster(b)
	cl, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	const files = 64
	for i := 0; i < files; i++ {
		if err := cl.Create(fmt.Sprintf("f%02d", i), bytes.Repeat([]byte("x"), 256)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ep := proto.NewEndpoint(srv.Addr(), nil, proto.TransportConfig{})
		defer ep.Close()
		i := 0
		for pb.Next() {
			name := fmt.Sprintf("f%02d", i%files)
			i++
			if _, _, err := ep.Call(proto.TLookupReq, proto.LookupReq{Name: name}.Encode()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkServerStatsParallel(b *testing.B) {
	srv := benchCluster(b)
	cl, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("probe", []byte("x")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ep := proto.NewEndpoint(srv.Addr(), nil, proto.TransportConfig{})
		defer ep.Close()
		for pb.Next() {
			if _, _, err := ep.Call(proto.TStatsReq, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
