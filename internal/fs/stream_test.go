package fs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"eevfs/internal/proto"
	"eevfs/internal/telemetry"
)

// patternedContent builds size bytes whose value at offset i is a
// deterministic function of (seed, i) — unique per file, so a chunk
// delivered to the wrong stream or landed at the wrong offset changes
// the bytes and is caught by comparison.
func patternedContent(seed int64, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte((seed*31 + int64(i)) * 2654435761 >> 16)
	}
	return b
}

func TestStreamReadRoundTrip(t *testing.T) {
	cl, _, _ := testCluster(t, 2, nil)
	content := patternedContent(1, 300<<10) // > one default chunk
	if err := cl.Create("big.dat", content); err != nil {
		t.Fatal(err)
	}
	r, err := cl.OpenRead("big.dat", StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != int64(len(content)) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(content))
	}
	if r.FromBuffer() {
		t.Fatal("unprefetched stream claimed to come from the buffer disk")
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("streamed content mismatch")
	}
}

func TestStreamWriteRoundTrip(t *testing.T) {
	cl, _, _ := testCluster(t, 2, nil)
	if err := cl.Create("w.dat", []byte("placeholder")); err != nil {
		t.Fatal(err)
	}
	content := patternedContent(2, 700<<10)
	buffered, err := cl.WriteFrom("w.dat", int64(len(content)), bytes.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	if buffered {
		t.Fatal("buffered=true with the write buffer disabled")
	}
	// Both paths must see the streamed bytes: the RPC read and a second
	// stream.
	got, _, err := cl.Read("w.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("RPC read after streamed write mismatch")
	}
	var sb bytes.Buffer
	if _, _, err := cl.ReadTo("w.dat", &sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), content) {
		t.Fatal("streamed read after streamed write mismatch")
	}
}

func TestStreamReadFromBufferAfterPrefetch(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	content := patternedContent(3, 64<<10)
	if err := cl.Create("hot.dat", content); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Read("hot.dat"); err != nil { // popularity signal
		t.Fatal(err)
	}
	if _, err := cl.Prefetch(1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, fromBuffer, err := cl.ReadTo("hot.dat", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !fromBuffer {
		t.Fatal("prefetched file streamed from the data disk")
	}
	if !bytes.Equal(buf.Bytes(), content) {
		t.Fatal("buffered stream content mismatch")
	}
}

// TestStreamWriteInvalidatesMirror pins the mirror-invalidation
// interplay: a streamed write to a prefetched file must drop the stale
// buffer-disk replica, exactly like the RPC write path.
func TestStreamWriteInvalidatesMirror(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	old := patternedContent(4, 32<<10)
	if err := cl.Create("m.dat", old); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Read("m.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Prefetch(1); err != nil {
		t.Fatal(err)
	}
	fresh := patternedContent(5, 48<<10)
	if _, err := cl.WriteFrom("m.dat", int64(len(fresh)), bytes.NewReader(fresh)); err != nil {
		t.Fatal(err)
	}
	got, fromBuffer, err := cl.Read("m.dat")
	if err != nil {
		t.Fatal(err)
	}
	if fromBuffer {
		t.Fatal("read after streamed write served a stale buffer mirror")
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("read after streamed write returned old content")
	}
}

func TestStreamWriteBuffered(t *testing.T) {
	cl, _, _ := testCluster(t, 1, func(cfg *NodeConfig) { cfg.WriteBuffer = true })
	if err := cl.Create("b.dat", []byte("seed")); err != nil {
		t.Fatal(err)
	}
	content := patternedContent(6, 100<<10)
	buffered, err := cl.WriteFrom("b.dat", int64(len(content)), bytes.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	if !buffered {
		t.Fatal("write buffer enabled but streamed write was not absorbed")
	}
	got, fromBuffer, err := cl.Read("b.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !fromBuffer {
		t.Fatal("dirty buffered write not served from the buffer disk")
	}
	if !bytes.Equal(got, content) {
		t.Fatal("buffered streamed write content mismatch")
	}
}

// TestStreamStriped exercises the chunked path over a striped layout:
// the stream must reassemble the stripe chunks in order, and a streamed
// write must land them where the RPC read path looks.
func TestStreamStriped(t *testing.T) {
	cl, _, _ := testCluster(t, 1, func(cfg *NodeConfig) { cfg.StripeChunkBytes = 16 << 10 })
	content := patternedContent(7, 100<<10) // 7 stripe chunks
	if err := cl.Create("s.dat", content); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, _, err := cl.ReadTo("s.dat", &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), content) {
		t.Fatal("striped streamed read mismatch")
	}
	fresh := patternedContent(8, 90<<10)
	if _, err := cl.WriteFrom("s.dat", int64(len(fresh)), bytes.NewReader(fresh)); err != nil {
		t.Fatal(err)
	}
	got, _, err := cl.Read("s.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("RPC read after striped streamed write mismatch")
	}
}

// TestStreamEarlyCloseLeavesConnectionUsable pins the tombstone
// semantics: abandoning a stream mid-transfer must not poison the
// connection — later streams and RPCs on the same endpoint still work.
func TestStreamEarlyCloseLeavesConnectionUsable(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	content := patternedContent(9, 1<<20)
	if err := cl.Create("e.dat", content); err != nil {
		t.Fatal(err)
	}
	r, err := cl.OpenRead("e.dat", StreamOptions{ChunkBytes: 4 << 10, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 8192)
	if _, err := io.ReadFull(r, small); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // abandon the remaining ~1 MB
		t.Fatal(err)
	}
	// The same node endpoint must serve fresh work on the same
	// connection generation.
	got, _, err := cl.Read("e.dat")
	if err != nil {
		t.Fatalf("RPC read after early stream close: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch after early close")
	}
	var buf bytes.Buffer
	if _, _, err := cl.ReadTo("e.dat", &buf); err != nil {
		t.Fatalf("stream after early stream close: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), content) {
		t.Fatal("second stream content mismatch")
	}
}

// TestStreamOpenOnMetadataServerRejected pins byte-compatibility with
// non-streaming v2 peers: a daemon without a data plane answers a stream
// open with a typed remote error and keeps the connection healthy.
func TestStreamOpenOnMetadataServerRejected(t *testing.T) {
	cl, srv, _ := testCluster(t, 1, nil)
	if err := cl.Create("x.dat", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ep := proto.NewEndpoint(srv.Addr(), nil, proto.TransportConfig{Retries: -1})
	defer ep.Close()
	_, err := ep.OpenReadStream(proto.StreamOpenReq{FileID: 1}, telemetry.SpanContext{})
	var re *proto.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	// The rejection must not have poisoned the connection.
	if _, _, err := ep.Call(proto.TListReq, nil); err != nil {
		t.Fatalf("round trip after rejected stream open: %v", err)
	}
}

func TestStreamReadMissingFileTyped(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	_, err := cl.OpenRead("ghost", StreamOptions{})
	if !errors.Is(err, ErrFileNotFound) {
		t.Fatalf("err = %v, want ErrFileNotFound", err)
	}
}

func TestStreamWriteSizeMismatchRejected(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	if err := cl.Create("short.dat", []byte("seed")); err != nil {
		t.Fatal(err)
	}
	w, err := cl.OpenWrite("short.dat", 1000, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("short streamed write committed")
	}
	// The placeholder content must have survived the aborted write.
	got, _, err := cl.Read("short.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("seed")) {
		t.Fatal("aborted streamed write clobbered the file")
	}
}

// TestStreamPropertyConcurrentIntegrity is the seeded random property
// test: ≥8 concurrent streams with random chunk-size/window schedules,
// each file carrying unique patterned contents, reassembled
// byte-identical while plain RPC reads interleave on the same
// connections. A single crossed chunk anywhere changes some file's
// bytes.
func TestStreamPropertyConcurrentIntegrity(t *testing.T) {
	cl, _, _ := testCluster(t, 2, func(cfg *NodeConfig) { cfg.StripeChunkBytes = 32 << 10 })
	const files = 10
	contents := make([][]byte, files)
	rng := rand.New(rand.NewSource(20260808))
	for i := range contents {
		size := 1<<10 + rng.Intn((2<<20)-(1<<10)) // 1 KB .. 2 MB
		contents[i] = patternedContent(int64(100+i), size)
		if err := cl.Create(fmt.Sprintf("p%02d.dat", i), contents[i]); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 3
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, files*2)
		for i := 0; i < files; i++ {
			// Per-stream random schedule, derived deterministically from
			// the base seed so failures reproduce.
			chunk := 512 + rng.Intn(64<<10)
			window := 1 + rng.Intn(16)
			wg.Add(1)
			go func(i, chunk, window int) {
				defer wg.Done()
				name := fmt.Sprintf("p%02d.dat", i)
				r, err := cl.OpenRead(name, StreamOptions{ChunkBytes: chunk, Window: window})
				if err != nil {
					errs <- fmt.Errorf("%s: open: %w", name, err)
					return
				}
				got, err := io.ReadAll(r)
				r.Close()
				if err != nil {
					errs <- fmt.Errorf("%s: read: %w", name, err)
					return
				}
				if !bytes.Equal(got, contents[i]) {
					errs <- fmt.Errorf("%s: streamed bytes differ (len %d vs %d)",
						name, len(got), len(contents[i]))
				}
			}(i, chunk, window)
			// Interleave plain RPC reads on the same multiplexed
			// connections.
			if i%3 == 0 {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					name := fmt.Sprintf("p%02d.dat", i)
					got, _, err := cl.Read(name)
					if err != nil {
						errs <- fmt.Errorf("%s: rpc read: %w", name, err)
						return
					}
					if !bytes.Equal(got, contents[i]) {
						errs <- fmt.Errorf("%s: rpc bytes differ", name)
					}
				}(i)
			}
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestStreamReadAllocsFlat is the O(chunk) memory guard: streaming a
// 16 MB file must allocate barely more than streaming a 1 MB file —
// the per-chunk buffers are pooled, so total allocations are flat in
// file size, not linear.
func TestStreamReadAllocsFlat(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; allocation counts are meaningless")
	}
	cl, _, _ := testCluster(t, 1, func(cfg *NodeConfig) {
		cfg.InjectLatency = false // pure data-path measurement
	})
	small := patternedContent(11, 1<<20)
	large := patternedContent(12, 16<<20)
	if err := cl.Create("small.dat", small); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("large.dat", large); err != nil {
		t.Fatal(err)
	}

	measure := func(name string, size int64) uint64 {
		// Warm up the pools and connection once.
		var warm bytes.Buffer
		if _, _, err := cl.ReadTo(name, &warm); err != nil {
			t.Fatal(err)
		}
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		r, err := cl.OpenRead(name, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		n, err := io.Copy(io.Discard, r)
		r.Close()
		if err != nil || n != size {
			t.Fatalf("copy %s: n=%d err=%v", name, n, err)
		}
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}

	smallAlloc := measure("small.dat", int64(len(small)))
	largeAlloc := measure("large.dat", int64(len(large)))
	t.Logf("alloc: 1MB=%d bytes, 16MB=%d bytes", smallAlloc, largeAlloc)
	// 16x the data must not cost anywhere near 16x the allocations. The
	// bound is generous (pool misses under GC pressure, socket buffers)
	// but far below the 16 MB a whole-payload path would copy.
	if largeAlloc > smallAlloc+8<<20 {
		t.Fatalf("streaming allocations scale with file size: 1MB=%d, 16MB=%d",
			smallAlloc, largeAlloc)
	}
}
